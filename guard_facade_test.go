package tacoma

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cash"
)

// The facade drives the whole security story: keyring, policy, firewall,
// meter, signed launch, termination, and the billing record at home.
func TestFacadeGuardEndToEnd(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(2, SystemConfig{Seed: 9})
	defer sys.Wait()
	home, fw := sys.SiteAt(0), sys.SiteAt(1)

	keys := NewKeyring()
	keys.Enroll("alice")
	keys.Enroll("site/site-1")
	InstallGuard(home, NewGuard(nil, keys))

	policy := NewPolicy()
	policy.SetFirewall(true)
	policy.Grant("alice", Capability{Meet: []string{"echo"}})
	g := NewGuard(policy, keys)
	g.Meter = NewMeter(10, 1)
	InstallGuard(fw, g)

	fw.Register("echo", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
		bc.PutString(ResultFolder, "echoed")
		return nil
	}))

	// Unsigned agents bounce off the firewall.
	if _, err := RunScript(ctx, home, `if {[host] eq "site-0"} { jump site-1 }`, nil); err == nil {
		t.Fatal("unsigned agent admitted through the firewall")
	}

	// A signed, funded agent runs, pays, and returns.
	bc, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		meet echo
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bills, err := cash.NewMint().IssueMany(1, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFolder()
	for _, s := range cash.FormatECUs(bills) {
		f.PushString(s)
	}
	bc.Put(CashFolder, f)
	if err := LaunchSigned(ctx, home, bc); err != nil {
		t.Fatal(err)
	}
	if got, _ := bc.GetString(ResultFolder); got != "echoed" {
		t.Fatalf("RESULT = %q", got)
	}
	// The principal claim still travels with the returned briefcase (the
	// signature itself is checked at boundaries, before ag_tacl pops CODE).
	if p := Principal(bc); p != "alice" {
		t.Fatalf("principal after roam = %q", p)
	}
	if g.Meter.Earned() == 0 {
		t.Fatal("meter collected nothing")
	}

	// A runaway is terminated and the bill lands at home.
	bc2, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		while {1} { set x 1 }
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bills2, err := cash.NewMint().IssueMany(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFolder()
	for _, s := range cash.FormatECUs(bills2) {
		f2.PushString(s)
	}
	bc2.Put(CashFolder, f2)
	err = LaunchSigned(ctx, home, bc2)
	if err == nil || !strings.Contains(err.Error(), "terminated") {
		t.Fatalf("err = %v, want termination", err)
	}
	sys.Wait()
	if home.Cabinet().FolderLen(BillingFolder) == 0 {
		t.Fatal("no billing record at the launching site")
	}
}
