// Benchmarks for the meet hot path (see DESIGN.md §Hot path). Unlike
// bench_test.go, which regenerates the paper experiments, these measure the
// kernel primitives a production deployment exercises per meet: dispatch,
// briefcase/folder copying, cabinet access, codec round-trips, and the TCP
// transport. cmd/tacobench drives the same paths from a CLI and emits
// BENCH_meet.json; scripts/benchdiff.go gates CI on these numbers.
package tacoma

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/store"
	"repro/internal/vnet"
)

// hotSite builds a single-site system with a "visit" agent that does the
// work a realistic service meet does: read a scalar argument, record the
// visit in the site cabinet, and hand back a snapshot of a site-local
// folder through the briefcase.
func hotSite(b *testing.B, dataElems, elemSize int) *core.Site {
	b.Helper()
	sys := core.NewSystem(1, core.SystemConfig{Seed: 7})
	s := sys.SiteAt(0)
	payload := bytes.Repeat([]byte("d"), elemSize)
	for i := 0; i < dataElems; i++ {
		s.Cabinet().Append("DATA", payload)
	}
	s.Register("visit", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		id, err := bc.GetString("REQ")
		if err != nil {
			return err
		}
		mc.Site.Cabinet().TestAndAppendString("SEEN", id)
		bc.Put(folder.ResultFolder, mc.Site.Cabinet().Snapshot("DATA"))
		return nil
	}))
	return s
}

func BenchmarkMeetHotPath(b *testing.B) {
	b.Run("localMeet", func(b *testing.B) {
		// Pure dispatch cost: registry lookup, guard probe, context build.
		sys := core.NewSystem(1, core.SystemConfig{Seed: 7})
		sys.SiteAt(0).Register("noop", core.AgentFunc(
			func(*core.MeetContext, *folder.Briefcase) error { return nil }))
		bc := folder.NewBriefcase()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.SiteAt(0).MeetClient(context.Background(), "noop", bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localMeetCabinet/256x64", func(b *testing.B) {
		// The realistic service meet: argument read + cabinet visit record +
		// snapshot of a 256-element site folder returned via the briefcase.
		s := hotSite(b, 256, 64)
		bc := folder.NewBriefcase()
		bc.PutString("REQ", "client-0")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.MeetClient(context.Background(), "visit", bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localMeetParallel", func(b *testing.B) {
		// Concurrent meets against many distinct agents: measures registry
		// and cabinet lock contention (the sharding target).
		sys := core.NewSystem(1, core.SystemConfig{Seed: 7})
		s := sys.SiteAt(0)
		const agents = 64
		for i := 0; i < agents; i++ {
			s.Register(fmt.Sprintf("svc-%d", i), core.AgentFunc(
				func(mc *core.MeetContext, bc *folder.Briefcase) error {
					mc.Site.Cabinet().TestAndAppendString("SEEN", mc.Agent)
					return nil
				}))
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			bc := folder.NewBriefcase()
			for pb.Next() {
				name := fmt.Sprintf("svc-%d", i%agents)
				i++
				if err := s.MeetClient(context.Background(), name, bc); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("folderClone/64x1KiB", func(b *testing.B) {
		payload := bytes.Repeat([]byte("c"), 1024)
		elems := make([][]byte, 64)
		for i := range elems {
			elems[i] = payload
		}
		f := folder.Of(elems...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g := f.Clone(); g.Len() != 64 {
				b.Fatal("bad clone")
			}
		}
	})
	b.Run("cabinetSnapshot/256x64", func(b *testing.B) {
		s := hotSite(b, 256, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := s.Cabinet().Snapshot("DATA"); f.Len() != 256 {
				b.Fatal("bad snapshot")
			}
		}
	})
	b.Run("codecRoundtrip/8x512", func(b *testing.B) {
		bc := folder.NewBriefcase()
		payload := bytes.Repeat([]byte("p"), 512)
		for i := 0; i < 8; i++ {
			bc.Put(fmt.Sprintf("F%d", i), folder.Of(payload, payload))
		}
		b.ReportAllocs()
		b.SetBytes(int64(folder.EncodedSize(bc)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc := folder.EncodeBriefcase(bc)
			if _, err := folder.DecodeBriefcase(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remoteMeetSim", func(b *testing.B) {
		sys := core.NewSystem(2, core.SystemConfig{Seed: 7})
		sys.SiteAt(1).Register("noop", core.AgentFunc(
			func(*core.MeetContext, *folder.Briefcase) error { return nil }))
		bc := folder.NewBriefcase()
		bc.PutString("PAYLOAD", "x")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.SiteAt(0).RemoteMeet(context.Background(), "site-1", "noop", bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remoteMeetTCP", func(b *testing.B) {
		benchRemoteMeetTCP(b)
	})
}

// BenchmarkScriptedMeet measures a full scripted-agent activation of
// core.ScriptWorkloadSrc (the paper's actual workload shape — a roaming
// script doing folder work at a site): CODE push, ag_tacl dispatch, script
// execution. Before the compile-once engine this re-parsed the script,
// every control-flow body, and every expr string on each activation and
// each loop iteration.
func BenchmarkScriptedMeet(b *testing.B) {
	sys := core.NewSystem(1, core.SystemConfig{Seed: 7})
	s := sys.SiteAt(0)
	bc := folder.NewBriefcase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Ensure(folder.CodeFolder).PushString(core.ScriptWorkloadSrc)
		if err := s.MeetClient(context.Background(), core.AgTacl, bc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRemoteMeetTCP measures a remote meet over real sockets: dominated by
// connection setup until the transport reuses connections.
func benchRemoteMeetTCP(b *testing.B) {
	epA, err := vnet.NewTCPEndpoint("site-a", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer epA.Close()
	epB, err := vnet.NewTCPEndpoint("site-b", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("site-b", epB.Addr())
	epB.AddPeer("site-a", epA.Addr())
	siteA := core.NewSite(epA, core.SiteConfig{})
	siteB := core.NewSite(epB, core.SiteConfig{})
	siteB.Register("noop", core.AgentFunc(
		func(*core.MeetContext, *folder.Briefcase) error { return nil }))
	bc := folder.NewBriefcase()
	bc.PutString("PAYLOAD", "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := siteA.RemoteMeet(context.Background(), "site-b", "noop", bc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableMeet quantifies the durability tax and the group-commit
// win (see DESIGN.md § Durable cabinets). A meet appends one element to a
// worker-private cabinet folder and marks the visit; the sub-benchmarks run
// it with no WAL (the in-memory ceiling), with the group-committed WAL (one
// shared fdatasync per batch of concurrent meets), and with the naive
// fsync-per-mutation WAL the group commit is measured against. Runs with
// exactly 8 concurrent workers: group commit is a concurrency phenomenon.
func BenchmarkDurableMeet(b *testing.B) {
	for _, mode := range []string{"off", "group", "naive"} {
		b.Run("wal="+mode, func(b *testing.B) {
			sys := core.NewSystem(1, core.SystemConfig{Seed: 7})
			s := sys.SiteAt(0)
			if mode != "off" {
				wal, err := store.Open(b.TempDir(), s.Cabinet(), store.Options{
					SyncEveryRecord: mode == "naive",
				})
				if err != nil {
					b.Fatal(err)
				}
				defer wal.Close()
				s.SetDurable(wal)
			}
			s.Register("deliver", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
				id, err := bc.GetString("REQ")
				if err != nil {
					return err
				}
				elem, err := bc.Folder("PAYLOAD")
				if err != nil {
					return err
				}
				mc.Site.Cabinet().Append("MBOX:"+id, elem.RawAt(0))
				return nil
			}))
			// Exactly 8 workers whatever GOMAXPROCS is (SetParallelism is a
			// multiplier, which would vary the batching factor with core
			// count); matches the tacobench durable lane's pinned
			// concurrency so the two measurements stay comparable.
			const workers = 8
			b.ReportAllocs()
			b.ResetTimer()
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					bc := folder.NewBriefcase()
					bc.PutString("REQ", fmt.Sprintf("w%d", w))
					p := folder.New()
					p.Push(bytes.Repeat([]byte("p"), 64))
					bc.Put("PAYLOAD", p)
					for remaining.Add(-1) >= 0 {
						if err := s.MeetClient(context.Background(), "deliver", bc); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
