// Package tacoma is the public API of this reproduction of "Operating
// System Support for Mobile Agents" (Johansen, van Renesse, Schneider,
// HotOS-V 1995) — the TACOMA system.
//
// TACOMA structures distributed computations as agents: processes that
// migrate through a network to satisfy requests made by their clients.
// The operating-system support consists of a small set of abstractions —
// folders, briefcases, file cabinets, and the meet operation — on which
// everything else (migration, couriers, diffusion, electronic cash,
// brokers, rear guards) is built as ordinary agents.
//
// # Quick start
//
//	sys := tacoma.NewSystem(3, tacoma.SystemConfig{})
//	bc, err := tacoma.RunScript(ctx, sys.SiteAt(0), `
//	    bc_push TRAIL [host]
//	    if {[host] eq "site-0"} { jump site-1 }
//	    bc_push TRAIL [host]
//	`, nil)
//
// Agents written in TacL (a small Tcl-like language, as in the paper's
// Tcl-based prototype) carry their source in the briefcase CODE folder and
// migrate by meeting the rexec agent; the jump command is sugar for that.
// Native Go services implement the Agent interface and are registered at
// sites with Site.Register.
//
// Subsystem entry points:
//
//   - electronic cash:  cash.NewBank, cash.Purchase, cash.NewCycleBilling
//   - scheduling:       broker.Install, broker.NewMonitor, broker.InstallTicketAgent
//   - fault tolerance:  rearguard.Install, Manager.Launch
//   - applications:     stormcast.NewField, mail.Send
//
// Those packages live under internal/ in this module; the facade re-exports
// the kernel types needed to use them together.
package tacoma

import (
	"context"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/tacl"
	"repro/internal/vnet"
)

// Core kernel types.
type (
	// Site is one autonomous TACOMA node: a place where agents execute.
	Site = core.Site
	// SiteConfig tunes a site's autonomy policies.
	SiteConfig = core.SiteConfig
	// System is a set of sites on one simulated network.
	System = core.System
	// SystemConfig configures a simulated system.
	SystemConfig = core.SystemConfig
	// Agent is anything that can be met.
	Agent = core.Agent
	// AgentFunc adapts a function to the Agent interface.
	AgentFunc = core.AgentFunc
	// MeetContext carries the execution context of one meet.
	MeetContext = core.MeetContext
)

// Data abstractions.
type (
	// Folder is an ordered list of uninterpreted byte elements.
	Folder = folder.Folder
	// Briefcase is the collection of named folders that travels with an
	// agent.
	Briefcase = folder.Briefcase
	// FileCabinet groups site-local folders.
	FileCabinet = folder.FileCabinet
)

// Network types.
type (
	// SiteID names a site on the network.
	SiteID = vnet.SiteID
	// Network is the simulated network sites run on.
	Network = vnet.Network
	// LinkParams model one directed link.
	LinkParams = vnet.LinkParams
	// Endpoint abstracts a site's network attachment (simulated or TCP).
	Endpoint = vnet.Endpoint
)

// Interp is a TacL interpreter, exposed for embedding TacL outside agents.
type Interp = tacl.Interp

// System agent names.
const (
	AgTacl      = core.AgTacl
	AgRexec     = core.AgRexec
	AgCourier   = core.AgCourier
	AgDiffusion = core.AgDiffusion
)

// Well-known folder names.
const (
	CodeFolder    = folder.CodeFolder
	HostFolder    = folder.HostFolder
	ContactFolder = folder.ContactFolder
	SitesFolder   = folder.SitesFolder
	ResultFolder  = folder.ResultFolder
	ErrorFolder   = folder.ErrorFolder
)

// NewSystem creates n sites named "site-0" .. "site-(n-1)" on a fresh
// simulated network.
func NewSystem(n int, cfg SystemConfig) *System { return core.NewSystem(n, cfg) }

// NewNamedSystem creates sites with explicit names.
func NewNamedSystem(names []SiteID, cfg SystemConfig) *System {
	return core.NewNamedSystem(names, cfg)
}

// NewSite creates a single site on an endpoint (for TCP deployments).
func NewSite(ep Endpoint, cfg SiteConfig) *Site { return core.NewSite(ep, cfg) }

// NewNetwork creates an empty simulated network.
func NewNetwork(opts ...vnet.Option) *Network { return vnet.NewNetwork(opts...) }

// NewTCPEndpoint starts a TCP site endpoint (used by cmd/tacomad).
func NewTCPEndpoint(id SiteID, addr string) (*vnet.TCPEndpoint, error) {
	return vnet.NewTCPEndpoint(id, addr)
}

// NewBriefcase returns an empty briefcase.
func NewBriefcase() *Briefcase { return folder.NewBriefcase() }

// NewFolder returns an empty folder.
func NewFolder() *Folder { return folder.New() }

// RunScript injects a TacL agent at a site: the script goes into the CODE
// folder of bc (created when nil) and ag_tacl is met.
func RunScript(ctx context.Context, s *Site, src string, bc *Briefcase) (*Briefcase, error) {
	return core.RunScript(ctx, s, src, bc)
}

// NewInterp creates a standalone TacL interpreter with the builtin
// commands but no site bindings.
func NewInterp() *Interp { return tacl.New() }
