// Package tacoma is the public API of this reproduction of "Operating
// System Support for Mobile Agents" (Johansen, van Renesse, Schneider,
// HotOS-V 1995) — the TACOMA system.
//
// TACOMA structures distributed computations as agents: processes that
// migrate through a network to satisfy requests made by their clients.
// The operating-system support consists of a small set of abstractions —
// folders, briefcases, file cabinets, and the meet operation — on which
// everything else (migration, couriers, diffusion, electronic cash,
// brokers, rear guards) is built as ordinary agents.
//
// # Quick start
//
//	sys := tacoma.NewSystem(3, tacoma.SystemConfig{})
//	bc, err := tacoma.RunScript(ctx, sys.SiteAt(0), `
//	    bc_push TRAIL [host]
//	    if {[host] eq "site-0"} { jump site-1 }
//	    bc_push TRAIL [host]
//	`, nil)
//
// Agents written in TacL (a small Tcl-like language, as in the paper's
// Tcl-based prototype) carry their source in the briefcase CODE folder and
// migrate by meeting the rexec agent; the jump command is sugar for that.
// Native Go services implement the Agent interface and are registered at
// sites with Site.Register.
//
// A client meets an agent through the unified entry point
//
//	err := site.Meet(ctx, "ag_mailbox", bc)                       // local, synchronous
//	err = site.Meet(ctx, "ag_mailbox", bc, tacoma.At("site-2"))   // at another site
//	err = site.Meet(ctx, "worker", bc, tacoma.Async(&h))          // detached; h reports completion
//
// and agents that want to wait without holding a goroutine park
// themselves (TacL: the park command); a parked agent is pure cabinet
// state until a meet, a mail deposit, or a Wake on its watched folder
// re-schedules it.
//
// Subsystem entry points:
//
//   - electronic cash:  cash.NewBank, cash.Purchase, cash.NewCycleBilling
//   - security:         InstallGuard, SignedScript, NewMeter
//   - scheduling:       InstallBroker, broker.NewMonitor, broker.InstallTicketAgent
//   - fault tolerance:  InstallRearGuard, RearGuard.Launch
//   - fleet membership: NewMesh (gossip discovery + consistent-hash placement)
//   - applications:     InstallMailbox, SendMail; stormcast.NewField
//
// Those packages live under internal/ in this module; the facade re-exports
// the kernel types needed to use them together.
package tacoma

import (
	"context"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/guard"
	"repro/internal/mail"
	"repro/internal/mesh"
	"repro/internal/rearguard"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/tacl"
	"repro/internal/vnet"
)

// Core kernel types.
type (
	// Site is one autonomous TACOMA node: a place where agents execute.
	Site = core.Site
	// SiteConfig tunes a site's autonomy policies.
	SiteConfig = core.SiteConfig
	// System is a set of sites on one simulated network.
	System = core.System
	// SystemConfig configures a simulated system.
	SystemConfig = core.SystemConfig
	// Agent is anything that can be met.
	Agent = core.Agent
	// AgentFunc adapts a function to the Agent interface.
	AgentFunc = core.AgentFunc
	// MeetContext carries the execution context of one meet.
	MeetContext = core.MeetContext
	// MeetOption tunes one Site.Meet call (At, Async, Deadline).
	MeetOption = core.MeetOption
	// WireStats is a snapshot of a site's delta-protocol accounting.
	WireStats = core.WireStats
)

// Scheduler types. Every site runs a zero-goroutine agent scheduler:
// activations are tasks on per-shard run queues, parked agents are pure
// cabinet state, and the worker pool never exceeds GOMAXPROCS.
type (
	// Handle reports completion of a detached (Async) meet.
	Handle = sched.Handle
	// SchedStats is a snapshot of a site scheduler's counters.
	SchedStats = sched.Stats
)

// Data abstractions.
type (
	// Folder is an ordered list of uninterpreted byte elements.
	Folder = folder.Folder
	// Briefcase is the collection of named folders that travels with an
	// agent.
	Briefcase = folder.Briefcase
	// FileCabinet groups site-local folders.
	FileCabinet = folder.FileCabinet
)

// Durable storage types (the write-ahead-log cabinet engine).
type (
	// WAL is the write-ahead log that makes a file cabinet crash-durable.
	WAL = store.WAL
	// WALOptions tunes a WAL (sync policy, compaction thresholds).
	WALOptions = store.Options
)

// Network types.
type (
	// SiteID names a site on the network.
	SiteID = vnet.SiteID
	// Network is the simulated network sites run on.
	Network = vnet.Network
	// LinkParams model one directed link.
	LinkParams = vnet.LinkParams
	// Endpoint abstracts a site's network attachment (simulated or TCP).
	Endpoint = vnet.Endpoint
)

// Security and accountability types (the guard subsystem).
type (
	// Guard bundles a site's security state: capability policy, signature
	// keyring, and optional cycle meter.
	Guard = guard.Guard
	// Policy is one site's capability ACL and firewall switches.
	Policy = guard.Policy
	// Capability lists what a principal may do at a site.
	Capability = guard.Capability
	// Keyring maps principal names to briefcase-signing keys.
	Keyring = guard.Keyring
	// Meter charges visiting agents electronic cash for cycles.
	Meter = guard.Meter
	// BillingRecord documents one accountability event.
	BillingRecord = guard.BillingRecord
)

// Fleet-membership types (the mesh subsystem: gossip discovery and
// consistent-hash agent placement across many sites).
type (
	// Mesh is one site's membership view of the fleet.
	Mesh = mesh.Mesh
	// MeshConfig tunes gossip cadence, fanout, and failure detection.
	MeshConfig = mesh.Config
	// Ring is an immutable consistent-hash snapshot of the live sites.
	Ring = mesh.Ring
)

// Brokerage types (resource scheduling via broker agents).
type Broker = broker.Broker

// Fault-tolerance types (the rear-guard subsystem).
type (
	// RearGuard manages rear-guard agents: checkpointed itinerant
	// computations that relaunch from the last checkpoint on site failure.
	RearGuard = rearguard.Manager
	// RearGuardConfig describes one guarded itinerant launch.
	RearGuardConfig = rearguard.Config
	// RearGuardResult reports how a guarded computation ended.
	RearGuardResult = rearguard.Result
)

// Message is one electronic-mail message (the paper's mail application).
type Message = mail.Message

// Interp is a TacL interpreter, exposed for embedding TacL outside agents.
type Interp = tacl.Interp

// System agent names.
const (
	AgTacl      = core.AgTacl
	AgRexec     = core.AgRexec
	AgCourier   = core.AgCourier
	AgDiffusion = core.AgDiffusion
	AgBilling   = guard.AgBilling
)

// Well-known folder names.
const (
	CodeFolder    = folder.CodeFolder
	HostFolder    = folder.HostFolder
	ContactFolder = folder.ContactFolder
	SitesFolder   = folder.SitesFolder
	ResultFolder  = folder.ResultFolder
	ErrorFolder   = folder.ErrorFolder
	SigFolder     = guard.SigFolder
	HomeFolder    = guard.HomeFolder
	BillingFolder = guard.BillingFolder
	CashFolder    = guard.CashFolder
)

// NewSystem creates n sites named "site-0" .. "site-(n-1)" on a fresh
// simulated network.
func NewSystem(n int, cfg SystemConfig) *System { return core.NewSystem(n, cfg) }

// NewNamedSystem creates sites with explicit names.
func NewNamedSystem(names []SiteID, cfg SystemConfig) *System {
	return core.NewNamedSystem(names, cfg)
}

// NewSite creates a single site on an endpoint (for TCP deployments).
func NewSite(ep Endpoint, cfg SiteConfig) *Site { return core.NewSite(ep, cfg) }

// NewNetwork creates an empty simulated network.
func NewNetwork(opts ...vnet.Option) *Network { return vnet.NewNetwork(opts...) }

// NewTCPEndpoint starts a TCP site endpoint (used by cmd/tacomad).
func NewTCPEndpoint(id SiteID, addr string) (*vnet.TCPEndpoint, error) {
	return vnet.NewTCPEndpoint(id, addr)
}

// OpenWAL recovers the write-ahead log in dir into cab (snapshot + log
// tail, rear-guard checkpoints included) and attaches it as the cabinet's
// journal, making every subsequent mutation crash-durable. For a serving
// site, recover before the site exists and hand both to NewSite, so no
// call is ever served against a half-recovered cabinet or acknowledged
// without its durability barrier:
//
//	cab := tacoma.NewFileCabinet()
//	wal, err := tacoma.OpenWAL(dir, cab, tacoma.WALOptions{})
//	site := tacoma.NewSite(ep, tacoma.SiteConfig{Cabinet: cab, Durable: wal})
func OpenWAL(dir string, cab *FileCabinet, opt WALOptions) (*WAL, error) {
	return store.Open(dir, cab, opt)
}

// NewBriefcase returns an empty briefcase.
func NewBriefcase() *Briefcase { return folder.NewBriefcase() }

// NewFolder returns an empty folder.
func NewFolder() *Folder { return folder.New() }

// NewFileCabinet returns an empty file cabinet (sites create their own; a
// standalone cabinet is useful with OpenWAL for offline inspection of a
// WAL directory's contents).
func NewFileCabinet() *FileCabinet { return folder.NewCabinet() }

// RunScript injects a TacL agent at a site: the script goes into the CODE
// folder of bc (created when nil) and ag_tacl is met.
func RunScript(ctx context.Context, s *Site, src string, bc *Briefcase) (*Briefcase, error) {
	return core.RunScript(ctx, s, src, bc)
}

// NewInterp creates a standalone TacL interpreter with the builtin
// commands but no site bindings.
func NewInterp() *Interp { return tacl.New() }

// NewGuard creates a guard over a policy and keyring (nil arguments get
// fresh permissive defaults).
func NewGuard(p *Policy, k *Keyring) *Guard { return guard.New(p, k) }

// NewPolicy returns an empty, permissive capability policy.
func NewPolicy() *Policy { return guard.NewPolicy() }

// NewKeyring returns an empty signing keyring.
func NewKeyring() *Keyring { return guard.NewKeyring() }

// NewMeter creates a cycle meter charging activationFee per activation plus
// one ECU per stepsPerUnit TacL steps.
func NewMeter(stepsPerUnit int, activationFee int64) *Meter {
	return guard.NewMeter(stepsPerUnit, activationFee)
}

// InstallGuard attaches a guard to a site: meets, arrivals, cabinet access,
// and step accounting flow through it from then on.
func InstallGuard(s *Site, g *Guard) *Guard { return guard.Install(s, g) }

// SignBriefcase signs the named briefcase folders under the principal's
// key (default: CODE, plus HOME when present).
func SignBriefcase(k *Keyring, principal string, bc *Briefcase, folders ...string) error {
	return guard.Sign(k, principal, bc, folders...)
}

// VerifyBriefcase checks a briefcase signature and returns the principal.
func VerifyBriefcase(k *Keyring, bc *Briefcase) (string, error) {
	return guard.Verify(k, bc)
}

// Principal returns a briefcase's claimed principal without verifying the
// signature ("" when unsigned); verification happens at trust boundaries.
func Principal(bc *Briefcase) string { return guard.Principal(bc) }

// SignedScript prepares a briefcase for a signed roaming TacL agent; start
// it with LaunchSigned.
func SignedScript(k *Keyring, principal, home, src string, bc *Briefcase) (*Briefcase, error) {
	return guard.SignedScript(k, principal, home, src, bc)
}

// LaunchSigned starts a prepared signed agent at a site.
func LaunchSigned(ctx context.Context, s *Site, bc *Briefcase) error {
	return guard.Launch(ctx, s, bc)
}

// At directs a Meet to the named site: the briefcase travels there, the
// agent executes there, and the mutated briefcase folds back on success.
func At(dest SiteID) MeetOption { return core.At(dest) }

// Async detaches a Meet: the call returns immediately and h reports
// completion. Site.Wait quiesces outstanding asynchronous meets.
func Async(h *Handle) MeetOption { return core.Async(h) }

// Deadline bounds a Meet: the cancellation context expires at t.
func Deadline(t time.Time) MeetOption { return core.Deadline(t) }

// NewMesh attaches a fleet-membership mesh to a site. Join (or Start, on
// the first site) brings it into the gossip group; Ring() then places
// agents on live sites by consistent hashing.
func NewMesh(s *Site, cfg MeshConfig) *Mesh { return mesh.New(s, cfg) }

// NewBroker creates a standalone broker (resource scheduling state).
func NewBroker() *Broker { return broker.NewBroker() }

// InstallBroker registers the broker agent at a site and returns its
// broker, ready for provider registrations and client requests.
func InstallBroker(s *Site) *Broker { return broker.Install(s) }

// InstallRearGuard registers the rear-guard agents at a site and returns
// the manager used to Launch guarded itinerant computations and Recover
// persisted checkpoints after a restart.
func InstallRearGuard(s *Site) *RearGuard { return rearguard.Install(s) }

// InstallMailbox registers the mailbox agent at a site, making it a mail
// host for addresses of the form "user@site". Depositing mail wakes any
// agent parked on the recipient's mailbox folder.
func InstallMailbox(s *Site) { mail.InstallMailbox(s) }

// SendMail dispatches a message via a courier agent from the given site;
// wantReceipt asks the courier to carry a delivery receipt home.
func SendMail(ctx context.Context, from *Site, msg Message, wantReceipt bool) error {
	return mail.Send(ctx, from, msg, wantReceipt)
}

// ListMail fetches the messages in user's mailbox at a mail host.
func ListMail(ctx context.Context, client *Site, user string, at SiteID) ([]Message, error) {
	return mail.List(ctx, client, user, at)
}
