package tacoma

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := NewSystem(3, SystemConfig{Seed: 1})
	defer sys.Wait()
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push TRAIL [host]
		if {[host] eq "site-0"} { jump site-1 }
		if {[host] eq "site-1"} { jump site-2 }
		bc_push TRAIL done
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := bc.Folder("TRAIL")
	if err != nil {
		t.Fatal(err)
	}
	got := trail.Strings()
	want := []string{"site-0", "site-1", "site-2", "done"}
	if len(got) != len(want) {
		t.Fatalf("TRAIL = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TRAIL = %v", got)
		}
	}
}

func TestFacadeNamedSystem(t *testing.T) {
	sys := NewNamedSystem([]SiteID{"tromso", "ithaca"}, SystemConfig{})
	defer sys.Wait()
	if sys.Site("tromso") == nil || sys.Site("ithaca") == nil {
		t.Fatal("named sites missing")
	}
	bc, err := RunScript(context.Background(), sys.Site("tromso"), `
		if {[host] eq "tromso"} { jump ithaca }
		bc_push RESULT "at [host]"
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bc.GetString(ResultFolder)
	if res != "at ithaca" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeNativeAgent(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	defer sys.Wait()
	sys.SiteAt(0).Register("adder", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
		a, _ := bc.GetString("A")
		b, _ := bc.GetString("B")
		bc.PutString(ResultFolder, a+"+"+b)
		return nil
	}))
	bc := NewBriefcase()
	bc.PutString("A", "1")
	bc.PutString("B", "2")
	if err := sys.SiteAt(0).MeetClient(context.Background(), "adder", bc); err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(ResultFolder); res != "1+2" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeInterp(t *testing.T) {
	in := NewInterp()
	got, err := in.Eval(`expr {2 ** 1}`)
	if err == nil {
		t.Fatalf("unsupported operator evaluated to %q", got)
	}
	got, err = in.Eval(`expr {6 * 7}`)
	if err != nil || got != "42" {
		t.Fatalf("got %q, %v", got, err)
	}
}

// TestTCPDeployment wires two sites the way cmd/tacomad does — real TCP
// sockets — and roams a TacL agent between them through the public API.
func TestTCPDeployment(t *testing.T) {
	epA, err := NewTCPEndpoint("alpha", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewTCPEndpoint("beta", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("beta", epB.Addr())
	epB.AddPeer("alpha", epA.Addr())
	siteA := NewSite(epA, SiteConfig{})
	siteB := NewSite(epB, SiteConfig{})
	defer siteA.Wait()
	defer siteB.Wait()

	siteB.Register("oracle", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
		bc.PutString("ANSWER", "42")
		return nil
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	bc, err := RunScript(ctx, siteA, `
		if {[host] eq "alpha"} { jump beta }
		meet oracle
		bc_push RESULT "oracle says [bc_get ANSWER 0], signed [host]"
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bc.GetString(ResultFolder)
	if res != "oracle says 42, signed beta" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeSystemAgentConstants(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	for _, name := range []string{AgTacl, AgRexec, AgCourier, AgDiffusion} {
		if _, ok := sys.SiteAt(0).Lookup(name); !ok {
			t.Errorf("system agent %q not registered", name)
		}
	}
}

func TestFacadeCabinetAccess(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	cab := sys.SiteAt(0).Cabinet()
	cab.AppendString("NOTES", "hello")
	if !cab.ContainsString("NOTES", "hello") {
		t.Fatal("cabinet write lost")
	}
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push RESULT [cab_list NOTES]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(ResultFolder); !strings.Contains(res, "hello") {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeNetworkControls(t *testing.T) {
	sys := NewSystem(2, SystemConfig{CallTimeout: 20 * time.Millisecond})
	sys.Net.Crash("site-1")
	_, err := RunScript(context.Background(), sys.SiteAt(0), `jump site-1`, nil)
	if err == nil {
		t.Fatal("jump to crashed site succeeded")
	}
	sys.Net.Restart("site-1")
	if _, err := RunScript(context.Background(), sys.SiteAt(0), `
		if {[host] eq "site-0"} { jump site-1 }
	`, nil); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}
