package tacoma

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := NewSystem(3, SystemConfig{Seed: 1})
	defer sys.Wait()
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push TRAIL [host]
		if {[host] eq "site-0"} { jump site-1 }
		if {[host] eq "site-1"} { jump site-2 }
		bc_push TRAIL done
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := bc.Folder("TRAIL")
	if err != nil {
		t.Fatal(err)
	}
	got := trail.Strings()
	want := []string{"site-0", "site-1", "site-2", "done"}
	if len(got) != len(want) {
		t.Fatalf("TRAIL = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TRAIL = %v", got)
		}
	}
}

func TestFacadeNamedSystem(t *testing.T) {
	sys := NewNamedSystem([]SiteID{"tromso", "ithaca"}, SystemConfig{})
	defer sys.Wait()
	if sys.Site("tromso") == nil || sys.Site("ithaca") == nil {
		t.Fatal("named sites missing")
	}
	bc, err := RunScript(context.Background(), sys.Site("tromso"), `
		if {[host] eq "tromso"} { jump ithaca }
		bc_push RESULT "at [host]"
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bc.GetString(ResultFolder)
	if res != "at ithaca" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeNativeAgent(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	defer sys.Wait()
	sys.SiteAt(0).Register("adder", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
		a, _ := bc.GetString("A")
		b, _ := bc.GetString("B")
		bc.PutString(ResultFolder, a+"+"+b)
		return nil
	}))
	bc := NewBriefcase()
	bc.PutString("A", "1")
	bc.PutString("B", "2")
	if err := sys.SiteAt(0).MeetClient(context.Background(), "adder", bc); err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(ResultFolder); res != "1+2" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeInterp(t *testing.T) {
	in := NewInterp()
	got, err := in.Eval(`expr {2 ** 1}`)
	if err == nil {
		t.Fatalf("unsupported operator evaluated to %q", got)
	}
	got, err = in.Eval(`expr {6 * 7}`)
	if err != nil || got != "42" {
		t.Fatalf("got %q, %v", got, err)
	}
}

// TestTCPDeployment wires two sites the way cmd/tacomad does — real TCP
// sockets — and roams a TacL agent between them through the public API.
func TestTCPDeployment(t *testing.T) {
	epA, err := NewTCPEndpoint("alpha", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewTCPEndpoint("beta", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("beta", epB.Addr())
	epB.AddPeer("alpha", epA.Addr())
	siteA := NewSite(epA, SiteConfig{})
	siteB := NewSite(epB, SiteConfig{})
	defer siteA.Wait()
	defer siteB.Wait()

	siteB.Register("oracle", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
		bc.PutString("ANSWER", "42")
		return nil
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	bc, err := RunScript(ctx, siteA, `
		if {[host] eq "alpha"} { jump beta }
		meet oracle
		bc_push RESULT "oracle says [bc_get ANSWER 0], signed [host]"
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bc.GetString(ResultFolder)
	if res != "oracle says 42, signed beta" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestFacadeSystemAgentConstants(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	for _, name := range []string{AgTacl, AgRexec, AgCourier, AgDiffusion} {
		if _, ok := sys.SiteAt(0).Lookup(name); !ok {
			t.Errorf("system agent %q not registered", name)
		}
	}
}

func TestFacadeCabinetAccess(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	cab := sys.SiteAt(0).Cabinet()
	cab.AppendString("NOTES", "hello")
	if !cab.ContainsString("NOTES", "hello") {
		t.Fatal("cabinet write lost")
	}
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push RESULT [cab_list NOTES]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(ResultFolder); !strings.Contains(res, "hello") {
		t.Fatalf("RESULT = %q", res)
	}
}

// TestFacadeUnifiedMeet drives the redesigned entry point and its options
// entirely through the facade.
func TestFacadeUnifiedMeet(t *testing.T) {
	sys := NewSystem(2, SystemConfig{Seed: 1})
	defer sys.Wait()
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	for _, s := range []*Site{a, b} {
		s.Register("where", AgentFunc(func(mc *MeetContext, bc *Briefcase) error {
			bc.PutString("AT", string(mc.Site.ID()))
			return nil
		}))
	}
	bc := NewBriefcase()
	if err := a.Meet(context.Background(), "where", bc,
		At(b.ID()), Deadline(time.Now().Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
	if at, _ := bc.GetString("AT"); at != "site-1" {
		t.Fatalf("At(site-1) ran at %q", at)
	}
	var h Handle
	bc = NewBriefcase()
	if err := a.Meet(context.Background(), "where", bc, Async(&h)); err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if at, _ := bc.GetString("AT"); at != "site-0" {
		t.Fatalf("Async ran at %q", at)
	}
	if st := a.WireStats(); st.MeetsV2+st.MeetsV1 == 0 {
		t.Fatalf("WireStats = %+v, expected a sent meet", st)
	}
}

// TestFacadeSubsystemCatchUp exercises the re-exported subsystem surface:
// mesh, broker, rear guard, and mail — including a mail deposit waking a
// parked agent through the facade.
func TestFacadeSubsystemCatchUp(t *testing.T) {
	sys := NewSystem(2, SystemConfig{Seed: 1})
	defer sys.Wait()
	a, b := sys.SiteAt(0), sys.SiteAt(1)

	m := NewMesh(a, MeshConfig{})
	m.Start()
	defer m.Stop()
	var ring *Ring = m.Ring()
	if owner, ok := ring.Owner("anyone"); !ok || owner != a.ID() {
		t.Fatalf("one-site ring owner = %q, %v", owner, ok)
	}

	var br *Broker = InstallBroker(a)
	if br == nil {
		t.Fatal("InstallBroker returned nil")
	}
	var rg *RearGuard = InstallRearGuard(a)
	if rg.ActiveGuards() != 0 {
		t.Fatal("fresh rear-guard manager has active guards")
	}

	InstallMailbox(a)
	InstallMailbox(b)
	if _, err := RunScript(context.Background(), b, `
		if {![bc_has PARK_HOP]} { park fred-notifier MBOX:fred }
		cab_append NOTIFIED x
	`, nil); err != nil {
		t.Fatal(err)
	}
	msg := Message{From: "ann@site-0", To: "fred@site-1", Subject: "hi", Body: "wake up"}
	if err := SendMail(context.Background(), a, msg, false); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	if n := b.Cabinet().FolderLen("NOTIFIED"); n != 1 {
		t.Fatalf("mail deposit woke parked agent %d times, want 1", n)
	}
	msgs, err := ListMail(context.Background(), a, "fred", b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Subject != "hi" {
		t.Fatalf("ListMail = %+v", msgs)
	}
}

func TestFacadeNetworkControls(t *testing.T) {
	sys := NewSystem(2, SystemConfig{CallTimeout: 20 * time.Millisecond})
	sys.Net.Crash("site-1")
	_, err := RunScript(context.Background(), sys.SiteAt(0), `jump site-1`, nil)
	if err == nil {
		t.Fatal("jump to crashed site succeeded")
	}
	sys.Net.Restart("site-1")
	if _, err := RunScript(context.Background(), sys.SiteAt(0), `
		if {[host] eq "site-0"} { jump site-1 }
	`, nil); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}
