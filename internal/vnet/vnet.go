// Package vnet provides the network substrate TACOMA sites run on.
//
// The paper's prototype ran on UNIX workstations connected by a LAN; here
// the default substrate is an in-process simulated network whose links have
// configurable latency, bandwidth, and loss, with exact byte accounting per
// link — the instrumentation the bandwidth-conservation experiments need.
// Sites can be crashed and restarted to drive the fault-tolerance
// experiments. A real TCP transport implementing the same Endpoint
// interface lives in tcp.go and backs cmd/tacomad.
//
// The simulator charges transfer cost (latency + bytes/bandwidth) to
// virtual-time counters instead of sleeping, so experiments measuring
// "network seconds" run in microseconds of wall time. Construct the network
// with RealTime() to make Call actually sleep for the simulated delay.
package vnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SiteID names a site on the network.
type SiteID string

// Errors returned by network operations.
var (
	ErrUnknownSite = errors.New("vnet: unknown site")
	ErrCrashed     = errors.New("vnet: site crashed")
	ErrTimeout     = errors.New("vnet: call timed out")
	ErrNoHandler   = errors.New("vnet: site has no handler")
	ErrClosed      = errors.New("vnet: endpoint closed")
)

// HandlerFunc serves an incoming call on a site. It runs on the callee's
// node; the returned bytes travel back to the caller.
//
// Ownership: the payload belongs to the handler (it may alias it into
// long-lived structures); the returned bytes belong to the caller and must
// not be retained or reused by the handler after it returns.
type HandlerFunc func(from SiteID, kind string, payload []byte) ([]byte, error)

// Endpoint abstracts one site's attachment to a network. Both the simulated
// node and the TCP transport implement it, so the TACOMA kernel is
// transport-agnostic.
type Endpoint interface {
	// ID returns the site's name.
	ID() SiteID
	// Call sends a request to another site and waits for its reply.
	//
	// Ownership: the endpoint does not retain payload after Call returns
	// (callers may recycle the buffer), and the returned bytes belong to
	// the caller (they may be aliased by a zero-copy decode).
	Call(ctx context.Context, to SiteID, kind string, payload []byte) ([]byte, error)
	// SetHandler installs the function that serves incoming calls.
	SetHandler(h HandlerFunc)
	// Incarnation identifies this boot of the site: it changes whenever
	// the site restarts after a crash, so a peer comparing incarnations
	// across probes can tell "slow but alive" from "crashed and rebooted,
	// volatile state lost". Failure detectors (rear guards) rely on it.
	Incarnation() int64
	// Close detaches the endpoint.
	Close() error
}

// LinkParams model one directed link.
type LinkParams struct {
	// Latency is the propagation delay charged per message.
	Latency time.Duration
	// Bandwidth in bytes per second; 0 means infinite.
	Bandwidth int64
	// Loss is the probability in [0,1) that a message is dropped.
	Loss float64
}

// TransferTime returns the simulated time to move n bytes over the link.
func (p LinkParams) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

type linkKey struct{ from, to SiteID }

// Faults injects adverse behavior on a directed link, layered on top of the
// link's base LinkParams. Where LinkParams model the physics of a healthy
// link (propagation delay, bandwidth, background loss), Faults model a
// misbehaving one: the chaos harness sets them per link to prove protocols
// survive drops, delays, and reordering — the takeover test kills a leader
// under these knobs. Partition/Heal remain the fourth knob: a 100% fault.
//
// Fault delays are wall-clock sleeps even on a virtual-time network:
// injection exists to perturb real goroutine interleavings, not to model
// transfer cost (which LinkParams already charge).
type Faults struct {
	// Drop is the probability in [0,1] that a message vanishes, on top of
	// the link's base Loss.
	Drop float64
	// Delay is a fixed extra hold applied to every message.
	Delay time.Duration
	// Jitter adds a uniform random hold in [0, Jitter) per message.
	Jitter time.Duration
	// Reorder is the probability a message is held until the next message
	// on the same link has been fully delivered, swapping their order. At
	// most one message per link is held at a time; a held message with no
	// successor is released after ReorderWindow.
	Reorder float64
	// ReorderWindow bounds how long a reorder-held message waits for a
	// successor; 0 means a 5ms default.
	ReorderWindow time.Duration
}

const defaultReorderWindow = 5 * time.Millisecond

// headerOverhead approximates per-message framing cost (ids, kind, lengths)
// so byte accounting is not flattered by tiny payloads.
const headerOverhead = 24

// Network is the simulated network. It is safe for concurrent use.
type Network struct {
	mu          sync.Mutex
	rng         *rand.Rand
	nodes       map[SiteID]*Node
	links       map[linkKey]LinkParams
	partitioned map[linkKey]bool
	faults      map[linkKey]Faults
	held        map[linkKey]chan struct{}
	defaults    LinkParams
	realTime    bool
	callTimeout time.Duration

	bytesTotal   atomic.Int64
	msgsTotal    atomic.Int64
	virtualNanos atomic.Int64
	bytesByLink  map[linkKey]*atomic.Int64
	bytesByKind  map[string]*atomic.Int64
}

// Option configures a Network.
type Option func(*Network)

// WithDefaults sets the link parameters used where SetLink was not called.
func WithDefaults(p LinkParams) Option { return func(n *Network) { n.defaults = p } }

// WithSeed seeds the simulator's randomness (loss decisions).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// RealTime makes Call sleep for the simulated transfer time instead of only
// charging virtual-time counters.
func RealTime() Option { return func(n *Network) { n.realTime = true } }

// WithCallTimeout bounds how long Call waits for a reply when the callee has
// crashed. The default is 250ms.
func WithCallTimeout(d time.Duration) Option {
	return func(n *Network) { n.callTimeout = d }
}

// NewNetwork creates an empty simulated network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		rng:         rand.New(rand.NewSource(1)),
		nodes:       make(map[SiteID]*Node),
		links:       make(map[linkKey]LinkParams),
		partitioned: make(map[linkKey]bool),
		faults:      make(map[linkKey]Faults),
		held:        make(map[linkKey]chan struct{}),
		bytesByLink: make(map[linkKey]*atomic.Int64),
		bytesByKind: make(map[string]*atomic.Int64),
		callTimeout: 250 * time.Millisecond,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// AddNode attaches a new site and returns its endpoint. Adding an existing
// site returns the existing node.
func (n *Network) AddNode(id SiteID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok {
		return nd
	}
	nd := &Node{id: id, net: n}
	n.nodes[id] = nd
	return nd
}

// Node returns the endpoint for id, or nil if absent.
func (n *Network) Node(id SiteID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// Sites returns all site IDs in sorted order.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]SiteID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetLink sets the parameters of the directed link a→b.
func (n *Network) SetLink(a, b SiteID, p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
}

// SetBidirLink sets both directions of a link.
func (n *Network) SetBidirLink(a, b SiteID, p LinkParams) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// SetFaults installs fault injection on the directed link a→b. A zero
// Faults value disables injection for the link.
func (n *Network) SetFaults(a, b SiteID, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == (Faults{}) {
		delete(n.faults, linkKey{a, b})
		return
	}
	n.faults[linkKey{a, b}] = f
}

// SetBidirFaults installs the same faults on both directions of a link.
func (n *Network) SetBidirFaults(a, b SiteID, f Faults) {
	n.SetFaults(a, b, f)
	n.SetFaults(b, a, f)
}

// ClearFaults removes all injected faults network-wide. Messages currently
// held for reordering drain on their window timer.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = make(map[linkKey]Faults)
}

// applyFaults runs the injected-fault pipeline for one message direction.
// It returns dropped=true when the message must vanish. When release is
// non-nil, the caller owes a close(release) after this message's delivery
// completes — that wakes the reorder-held message it superseded, which is
// what actually swaps their order. A non-nil error is ctx expiring during
// an injected hold.
func (n *Network) applyFaults(ctx context.Context, from, to SiteID) (dropped bool, release chan struct{}, err error) {
	key := linkKey{from, to}
	n.mu.Lock()
	f, ok := n.faults[key]
	if !ok {
		n.mu.Unlock()
		return false, nil, nil
	}
	if f.Drop > 0 && n.rng.Float64() < f.Drop {
		n.mu.Unlock()
		return true, nil, nil
	}
	var jitter time.Duration
	if f.Jitter > 0 {
		jitter = time.Duration(n.rng.Int63n(int64(f.Jitter)))
	}
	reorder := f.Reorder > 0 && n.rng.Float64() < f.Reorder
	var wait chan struct{}
	if held := n.held[key]; held != nil {
		// A predecessor is parked on this link: we are its successor and
		// will release it after our own delivery, even if we too were
		// selected for reordering (at most one held message per link —
		// no chains, so injection can never wedge a link).
		release = held
		delete(n.held, key)
	} else if reorder {
		wait = make(chan struct{})
		n.held[key] = wait
	}
	n.mu.Unlock()

	if d := f.Delay + jitter; d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			n.unhold(key, wait)
			return false, release, err
		}
	}
	if wait != nil {
		window := f.ReorderWindow
		if window <= 0 {
			window = defaultReorderWindow
		}
		select {
		case <-wait:
		case <-time.After(window):
			n.unhold(key, wait)
		case <-ctx.Done():
			n.unhold(key, wait)
			return false, release, ctx.Err()
		}
	}
	return false, release, nil
}

// unhold retracts a reorder slot if it is still ours (a successor may have
// claimed it concurrently, in which case its close is a harmless wake).
func (n *Network) unhold(key linkKey, wait chan struct{}) {
	if wait == nil {
		return
	}
	n.mu.Lock()
	if n.held[key] == wait {
		delete(n.held, key)
	}
	n.mu.Unlock()
}

// Partition severs both directions between a and b until Heal is called.
func (n *Network) Partition(a, b SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[linkKey{a, b}] = true
	n.partitioned[linkKey{b, a}] = true
}

// Heal restores a previously partitioned pair.
func (n *Network) Heal(a, b SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, linkKey{a, b})
	delete(n.partitioned, linkKey{b, a})
}

// Crash marks a site as failed: its handler stops being invoked and calls to
// it time out, exactly as a caller would observe a dead machine.
func (n *Network) Crash(id SiteID) error {
	nd := n.Node(id)
	if nd == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSite, id)
	}
	nd.crashed.Store(true)
	return nil
}

// Restart brings a crashed site back under a new incarnation. Its handler
// is preserved; site-level volatile state recovery is the kernel's concern,
// not the network's.
func (n *Network) Restart(id SiteID) error {
	nd := n.Node(id)
	if nd == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSite, id)
	}
	nd.incarnation.Add(1)
	nd.crashed.Store(false)
	return nil
}

// Crashed reports whether the site is currently down.
func (n *Network) Crashed(id SiteID) bool {
	nd := n.Node(id)
	return nd != nil && nd.crashed.Load()
}

func (n *Network) linkFor(a, b SiteID) (LinkParams, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned[linkKey{a, b}] {
		return LinkParams{}, false
	}
	if p, ok := n.links[linkKey{a, b}]; ok {
		return p, true
	}
	return n.defaults, true
}

func (n *Network) lossDrop(p float64) bool {
	if p <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < p
}

func (n *Network) chargeTransfer(from, to SiteID, kind string, bytes int, p LinkParams) {
	size := bytes + headerOverhead
	n.bytesTotal.Add(int64(size))
	n.msgsTotal.Add(1)
	n.virtualNanos.Add(int64(p.TransferTime(size)))
	key := linkKey{from, to}
	n.mu.Lock()
	ctr, ok := n.bytesByLink[key]
	if !ok {
		ctr = new(atomic.Int64)
		n.bytesByLink[key] = ctr
	}
	kctr, ok := n.bytesByKind[kind]
	if !ok {
		kctr = new(atomic.Int64)
		n.bytesByKind[kind] = kctr
	}
	n.mu.Unlock()
	ctr.Add(int64(size))
	kctr.Add(int64(size))
}

// Stats is a snapshot of global transfer counters.
type Stats struct {
	// BytesTotal counts every byte placed on any link, including framing.
	BytesTotal int64
	// Messages counts link-level messages (a call is two messages).
	Messages int64
	// VirtualTime is accumulated simulated transfer time across all
	// messages, i.e. serialized network seconds.
	VirtualTime time.Duration
}

// Stats returns the current global counters.
func (n *Network) Stats() Stats {
	return Stats{
		BytesTotal:  n.bytesTotal.Load(),
		Messages:    n.msgsTotal.Load(),
		VirtualTime: time.Duration(n.virtualNanos.Load()),
	}
}

// LinkBytes returns bytes carried on the directed link a→b.
func (n *Network) LinkBytes(a, b SiteID) int64 {
	n.mu.Lock()
	ctr := n.bytesByLink[linkKey{a, b}]
	n.mu.Unlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// KindBytes returns bytes carried by messages of one kind (both directions
// of every call with that request kind — replies are charged to the request's
// kind). The mesh tests use it to bound gossip overhead per protocol period.
func (n *Network) KindBytes(kind string) int64 {
	n.mu.Lock()
	ctr := n.bytesByKind[kind]
	n.mu.Unlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// ResetStats zeroes all byte/message/time counters.
func (n *Network) ResetStats() {
	n.bytesTotal.Store(0)
	n.msgsTotal.Store(0)
	n.virtualNanos.Store(0)
	n.mu.Lock()
	n.bytesByLink = make(map[linkKey]*atomic.Int64)
	n.bytesByKind = make(map[string]*atomic.Int64)
	n.mu.Unlock()
}

// Node is one site's attachment to the simulated network.
type Node struct {
	id          SiteID
	net         *Network
	crashed     atomic.Bool
	closed      atomic.Bool
	incarnation atomic.Int64

	hmu     sync.RWMutex
	handler HandlerFunc
}

var _ Endpoint = (*Node)(nil)

// ID returns the site name.
func (nd *Node) ID() SiteID { return nd.id }

// Incarnation returns the node's current boot number.
func (nd *Node) Incarnation() int64 { return nd.incarnation.Load() }

// SetHandler installs the serving function for incoming calls.
func (nd *Node) SetHandler(h HandlerFunc) {
	nd.hmu.Lock()
	nd.handler = h
	nd.hmu.Unlock()
}

// Close detaches the node; subsequent calls fail with ErrClosed.
func (nd *Node) Close() error {
	nd.closed.Store(true)
	return nil
}

// Call performs a synchronous request/response exchange with another site.
// Bytes are charged in both directions. A crashed or unreachable callee
// manifests as ErrTimeout after the network's call timeout — callers cannot
// distinguish a dead site from a slow one, which is what the rear-guard
// failure detector must cope with.
func (nd *Node) Call(ctx context.Context, to SiteID, kind string, payload []byte) ([]byte, error) {
	if nd.closed.Load() {
		return nil, ErrClosed
	}
	if nd.crashed.Load() {
		return nil, fmt.Errorf("%w: %s (caller)", ErrCrashed, nd.id)
	}
	dest := nd.net.Node(to)
	if dest == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	params, connected := nd.net.linkFor(nd.id, to)
	// The request leaves the caller regardless of what happens next: a
	// partitioned or crashed destination still costs the send on real
	// networks only up to the break, but charging the full message keeps
	// accounting simple and pessimistic for the agent side.
	nd.net.chargeTransfer(nd.id, to, kind, len(payload), params)

	// Context deadlines are handled by the ctx.Done cases below; timeout
	// only models the network-level "no reply" detection.
	timeout := nd.net.callTimeout
	if !connected || dest.crashed.Load() || nd.net.lossDrop(params.Loss) {
		return nil, awaitTimeout(ctx, timeout, to)
	}
	dropped, release, ferr := nd.net.applyFaults(ctx, nd.id, to)
	if release != nil {
		// The reorder-held predecessor on this link resumes only after our
		// delivery fully completes (including the reply), which is what
		// makes the swap deterministic.
		defer close(release)
	}
	if ferr != nil {
		return nil, ferr
	}
	if dropped {
		return nil, awaitTimeout(ctx, timeout, to)
	}

	dest.hmu.RLock()
	h := dest.handler
	dest.hmu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, to)
	}

	if nd.net.realTime {
		if err := sleepCtx(ctx, params.TransferTime(len(payload)+headerOverhead)); err != nil {
			return nil, err
		}
	}

	type result struct {
		data []byte
		err  error
	}
	// The handler gets a private copy of the payload: Endpoint.Call promises
	// the caller its buffer is free for reuse once Call returns, while the
	// handler (which may outlive an abandoned call, and whose zero-copy
	// briefcase decode aliases its input) owns what it receives — the same
	// ownership transfer a real wire performs.
	req := append([]byte(nil), payload...)
	ch := make(chan result, 1)
	go func() {
		data, err := h(nd.id, kind, req)
		ch <- result{data, err}
	}()

	// A live handler is waited on without a network-level timeout: the
	// timeout models unreachability (crash, partition, loss), not slow
	// computation. Nested synchronous meets would otherwise cascade inner
	// failure-detection delays into spurious outer timeouts. Callers bound
	// total time with ctx.
	var res result
	select {
	case res = <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	// The callee may have crashed while serving; the reply is then lost.
	if dest.crashed.Load() {
		return nil, awaitTimeout(ctx, timeout, to)
	}
	back, backOK := nd.net.linkFor(to, nd.id)
	if !backOK || nd.net.lossDrop(back.Loss) {
		return nil, awaitTimeout(ctx, timeout, to)
	}
	rdropped, rrelease, rerr := nd.net.applyFaults(ctx, to, nd.id)
	if rrelease != nil {
		defer close(rrelease)
	}
	if rerr != nil {
		return nil, rerr
	}
	if rdropped {
		return nil, awaitTimeout(ctx, timeout, to)
	}
	nd.net.chargeTransfer(to, nd.id, kind, len(res.data), back)
	if nd.net.realTime {
		if err := sleepCtx(ctx, back.TransferTime(len(res.data)+headerOverhead)); err != nil {
			return nil, err
		}
	}
	return res.data, res.err
}

func awaitTimeout(ctx context.Context, d time.Duration, to SiteID) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return fmt.Errorf("%w: no reply from %s", ErrTimeout, to)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}
