package vnet

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net"
	"runtime"
	"sync"
	"time"
)

// maxWriteStall bounds how long one request frame may take to drain into a
// shared pooled connection before the connection is declared dead; it
// protects every caller queued on the connection's write lock from a peer
// that stopped reading.
const maxWriteStall = 30 * time.Second

// ErrAuth is wrapped by all TCP authentication failures.
var ErrAuth = errors.New("vnet: authentication failed")

// TCPEndpoint implements Endpoint over real TCP sockets, so the same TACOMA
// kernel that runs on the simulator runs between processes and machines
// (cmd/tacomad).
//
// Connections are persistent and pipelined: the first Call to a peer dials
// one connection, and every subsequent Call reuses it. Requests carry a
// per-connection id; multiple calls may be in flight at once, their
// responses demultiplexed by id, so concurrent remote meets batch onto one
// socket instead of paying a dial + teardown per meet. A connection that
// dies (peer restart, idle reset) fails its in-flight calls and is redialed
// on the next Call.
//
// Pipelined frame layout, all variable parts uvarint-length-prefixed and the
// id a bare uvarint:
//
//	request  := 'q' id from kind payload
//	response := 'r' id status(1: 0=ok, 1=error) payload-or-error-text
//
// With a shared auth key installed (SetAuthKey), frames carry an HMAC
// handshake instead:
//
//	request  := 'a' id from nonce kind payload mac
//	response := 's' id status payload-or-error-text mac
//
// The request MAC covers (id, from, nonce, kind, payload) under HMAC-SHA256
// of the shared key; the response MAC covers (id, nonce, status, body),
// binding the reply to the caller's nonce so a recorded response cannot be
// replayed against a later call. An endpoint with a key refuses plain 'q'
// frames and requests whose MAC does not verify — this is the firewall
// handshake at the transport layer, below the site-level briefcase checks.
//
// The server side also still accepts the legacy single-shot 'Q'/'A' frames
// (one request, one 'R'/'S' response) used by older clients and by
// hand-crafted probes; they share the same auth rules.
type TCPEndpoint struct {
	id          SiteID
	incarnation int64

	mu      sync.RWMutex
	peers   map[SiteID]string // site -> host:port
	handler HandlerFunc
	authKey []byte

	// Nonce replay window: two generations of seen request nonces,
	// rotated when the current one fills. A recorded authenticated frame
	// replays successfully only after at least nonceWindow further
	// requests have rotated its nonce out — a bounded-memory defense, not
	// an absolute one.
	nonceMu    sync.Mutex
	noncesCur  map[string]struct{}
	noncesPrev map[string]struct{}

	// pcmu guards the client-side connection pool: one persistent
	// multiplexed connection per peer.
	pcmu   sync.Mutex
	pconns map[SiteID]*peerConn

	// scmu tracks accepted server-side connections so Close can shut down
	// persistent streams that would otherwise outlive the listener.
	scmu   sync.Mutex
	sconns map[net.Conn]struct{}

	ln     net.Listener
	closed chan struct{}
	wg     sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCPEndpoint starts a listener on addr (e.g. "127.0.0.1:0") serving
// calls addressed to site id.
func NewTCPEndpoint(id SiteID, addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vnet: listen %s: %w", addr, err)
	}
	var incb [8]byte
	if _, err := rand.Read(incb[:]); err != nil {
		ln.Close()
		return nil, fmt.Errorf("vnet: incarnation: %w", err)
	}
	ep := &TCPEndpoint{
		id:          id,
		incarnation: int64(binary.LittleEndian.Uint64(incb[:]) >> 1),
		peers:       make(map[SiteID]string),
		pconns:      make(map[SiteID]*peerConn),
		sconns:      make(map[net.Conn]struct{}),
		ln:          ln,
		closed:      make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID returns the site name.
func (ep *TCPEndpoint) ID() SiteID { return ep.id }

// Incarnation identifies this process's boot; a fresh daemon gets a fresh
// random incarnation, which is what "restart" means for real processes.
func (ep *TCPEndpoint) Incarnation() int64 { return ep.incarnation }

// Addr returns the listener's actual address, useful with port 0.
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// AddPeer registers the network address of another site.
func (ep *TCPEndpoint) AddPeer(id SiteID, addr string) {
	ep.mu.Lock()
	ep.peers[id] = addr
	ep.mu.Unlock()
}

// SetHandler installs the serving function for incoming calls.
func (ep *TCPEndpoint) SetHandler(h HandlerFunc) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// SetAuthKey installs the cluster's shared authentication key. With a key
// set, outgoing calls use the authenticated handshake and incoming calls
// must pass it; a nil key restores the open protocol. Pooled connections
// are retired so the new key takes effect for subsequent calls.
func (ep *TCPEndpoint) SetAuthKey(key []byte) {
	ep.mu.Lock()
	if key == nil {
		ep.authKey = nil
	} else {
		ep.authKey = append([]byte(nil), key...)
	}
	ep.mu.Unlock()
	ep.pcmu.Lock()
	for id, pc := range ep.pconns {
		pc.fail(errors.New("vnet: auth key changed"))
		delete(ep.pconns, id)
	}
	ep.pcmu.Unlock()
}

func (ep *TCPEndpoint) auth() []byte {
	ep.mu.RLock()
	defer ep.mu.RUnlock()
	return ep.authKey
}

// nonceWindow bounds how many request nonces each generation remembers.
const nonceWindow = 4096

// nonceFresh records a request nonce, reporting false when it was already
// seen within the replay window.
func (ep *TCPEndpoint) nonceFresh(nonce []byte) bool {
	ep.nonceMu.Lock()
	defer ep.nonceMu.Unlock()
	k := string(nonce)
	if _, ok := ep.noncesCur[k]; ok {
		return false
	}
	if _, ok := ep.noncesPrev[k]; ok {
		return false
	}
	if ep.noncesCur == nil {
		ep.noncesCur = make(map[string]struct{}, nonceWindow)
	}
	ep.noncesCur[k] = struct{}{}
	if len(ep.noncesCur) >= nonceWindow {
		ep.noncesPrev = ep.noncesCur
		ep.noncesCur = make(map[string]struct{}, nonceWindow)
	}
	return true
}

// frameMAC computes the handshake MAC over length-prefixed parts, with a
// domain label separating request from response MACs.
func frameMAC(key []byte, label string, parts ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	var tmp [binary.MaxVarintLen64]byte
	mac.Write([]byte(label))
	for _, p := range parts {
		n := binary.PutUvarint(tmp[:], uint64(len(p)))
		mac.Write(tmp[:n])
		mac.Write(p)
	}
	return mac.Sum(nil)
}

// uvarintBytes renders v as a uvarint for inclusion in a MAC.
func uvarintBytes(v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return tmp[:n]
}

// --- write coalescing ---
//
// Every frame (request or response) is rendered into a pooled scratch buffer
// and handed to the connection's connWriter. The writer batches frames that
// arrive while a flush is in progress into the next single flush: a lone
// caller flushes immediately (no added latency), while N concurrent callers
// on one connection pay ~1 flush syscall instead of N. Frame bytes reach the
// socket atomically per frame, so batching never interleaves frames.

// maxPooledFrame bounds the capacity of scratch buffers kept in framePool so
// one huge briefcase cannot pin its buffer in the pool forever.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getFrame() []byte { return (*framePool.Get().(*[]byte))[:0] }

func putFrame(b []byte) {
	if cap(b) > maxPooledFrame {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// appendChunk appends a uvarint-length-prefixed chunk.
func appendChunk(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendChunkString is appendChunk without a []byte(s) conversion alloc.
func appendChunkString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Write-failure classification for the redial logic in callOnce.
var (
	// errWriteUnsent marks a frame that was never handed to the socket
	// (queued behind a flush that failed, or enqueued on an already-dead
	// writer). The peer cannot have seen it; redialing is always safe.
	errWriteUnsent = errors.New("vnet: frame not sent")
	// errWriteLone marks a single-frame batch whose flush failed. As with
	// the old per-call flush, a failed lone flush cannot have delivered a
	// complete frame, so one redial on a reused connection is safe.
	errWriteLone = errors.New("vnet: lone frame flush failed")
)

// wframe is one queued frame: pooled bytes, an optional write-outcome
// channel (buffered; nil for fire-and-forget server responses), and an
// optional caller deadline that tightens the cycle's write deadline (zero
// for none).
type wframe struct {
	buf []byte
	res chan error
	dl  time.Time
}

// maxCycleBytes bounds how much one flush cycle writes before flushing and
// returning to the outer loop. The gather loop is naturally bounded for
// client writers (one frame in flight per caller) but not for a server
// writer under sustained pipelined load; without this cap a healthy
// saturated connection could keep gathering past the cycle's write
// deadline and fail on a spurious timeout. Each cycle re-arms the
// deadline, so steady progress never trips it.
const maxCycleBytes = 256 << 10

// connWriter serializes and batches frame writes on one connection.
type connWriter struct {
	conn  net.Conn
	bw    *bufio.Writer
	onErr func(error) // invoked once, outside mu, on the first write error

	mu       sync.Mutex
	queue    []wframe
	batch    []wframe // recycled accumulator for flushCycle
	flushing bool
	err      error
}

func newConnWriter(conn net.Conn, onErr func(error)) *connWriter {
	return &connWriter{
		conn:  conn,
		bw:    bufio.NewWriterSize(conn, 64<<10),
		onErr: onErr,
	}
}

// enqueue hands one frame to the writer, taking ownership of buf (a pooled
// frame buffer). If no flush is in progress the calling goroutine becomes
// the flusher and drains the queue — including frames other goroutines
// append while it is flushing — with one buffered flush per batch.
func (w *connWriter) enqueue(buf []byte, res chan error, dl time.Time) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		putFrame(buf)
		if res != nil {
			res <- fmt.Errorf("%w: %v", errWriteUnsent, err)
		}
		return
	}
	w.queue = append(w.queue, wframe{buf, res, dl})
	if w.flushing {
		w.mu.Unlock()
		return
	}
	w.flushing = true
	for w.err == nil && len(w.queue) > 0 {
		w.flushCycle() // unlocks and relocks w.mu around the socket I/O
	}
	w.flushing = false
	w.mu.Unlock()
}

// flushCycle writes every queued frame and flushes once. Called with w.mu
// held by the flusher; the lock is released around socket I/O.
//
// Between writing frames and flushing, the flusher yields the processor
// once: callers that are already runnable get to append their frames, which
// the flusher then folds into the same flush. Under load this turns N
// concurrent calls into one write syscall; on an idle connection the yield
// returns immediately and a lone frame flushes with no added latency.
// Gathering is bounded two ways: each client caller has at most one frame
// in flight per connection, and a cycle flushes after maxCycleBytes even
// when new frames keep arriving (the server's fire-and-forget responses
// under sustained pipelined load), so a healthy saturated connection makes
// steady progress and re-arms its write deadline every cycle.
func (w *connWriter) flushCycle() {
	// Bound the write: the connection is shared, so a peer that stops
	// reading (frozen process, full receive window) must fail this batch —
	// and thereby the connection — rather than hang every caller forever.
	// A caller deadline sooner than the stall cap tightens it, as the old
	// per-call flush did; a timed-out write fails the shared connection.
	dl := time.Now().Add(maxWriteStall)
	w.conn.SetWriteDeadline(dl)
	// The queue and batch backing arrays live on the connWriter and are
	// reused across cycles, so steady-state coalescing allocates nothing.
	batch := w.batch[:0]
	w.batch = nil
	var werr error
	written := 0    // frames fully handed to the buffered writer
	cycleBytes := 0 // flush early once the cycle has written maxCycleBytes
	for werr == nil && len(w.queue) > 0 && cycleBytes < maxCycleBytes {
		wrote := len(batch)
		batch = append(batch, w.queue...)
		clear(w.queue) // drop frame refs so the array does not pin buffers
		w.queue = w.queue[:0]
		w.mu.Unlock()
		for _, f := range batch[wrote:] {
			if !f.dl.IsZero() && f.dl.Before(dl) {
				dl = f.dl
				w.conn.SetWriteDeadline(dl)
			}
			if _, werr = w.bw.Write(f.buf); werr != nil {
				break
			}
			written++
			cycleBytes += len(f.buf)
		}
		if werr == nil {
			runtime.Gosched() // gather: let runnable callers join this flush
		}
		w.mu.Lock()
	}
	w.mu.Unlock()
	if werr == nil {
		werr = w.bw.Flush()
	}
	for i, f := range batch {
		putFrame(f.buf)
		if f.res == nil {
			continue
		}
		switch {
		case werr == nil:
			f.res <- nil
		case i > written:
			// Never handed to the buffered writer: the failure hit an
			// earlier frame's Write. Provably unsent, safe to redial.
			f.res <- fmt.Errorf("%w: %v", errWriteUnsent, werr)
		case len(batch) == 1:
			f.res <- fmt.Errorf("%w: %v", errWriteLone, werr)
		default:
			// At or before the failure point of a multi-frame batch: bytes
			// may have reached the peer; the caller must not resend.
			f.res <- werr
		}
	}
	w.mu.Lock()
	clear(batch)
	w.batch = batch[:0]
	if werr != nil {
		w.err = werr
		// Frames enqueued while the failing batch was in flight were never
		// handed to the socket.
		stranded := w.queue
		w.queue = nil
		w.mu.Unlock()
		for _, f := range stranded {
			putFrame(f.buf)
			if f.res != nil {
				f.res <- fmt.Errorf("%w: %v", errWriteUnsent, werr)
			}
		}
		if w.onErr != nil {
			w.onErr(werr)
		}
		w.mu.Lock()
	}
}

// Close stops the listener, retires pooled client connections, shuts down
// persistent server streams, and waits for in-flight handlers.
func (ep *TCPEndpoint) Close() error {
	select {
	case <-ep.closed:
		return nil
	default:
	}
	close(ep.closed)
	err := ep.ln.Close()
	ep.pcmu.Lock()
	for id, pc := range ep.pconns {
		pc.fail(ErrClosed)
		delete(ep.pconns, id)
	}
	ep.pcmu.Unlock()
	ep.scmu.Lock()
	for c := range ep.sconns {
		c.Close()
	}
	ep.scmu.Unlock()
	ep.wg.Wait()
	return err
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			select {
			case <-ep.closed:
				return
			default:
				continue
			}
		}
		ep.scmu.Lock()
		ep.sconns[conn] = struct{}{}
		ep.scmu.Unlock()
		// Close may have swept sconns between the Accept and the insert
		// above; re-checking here guarantees every registered connection is
		// either swept by Close or closed by us, so wg.Wait cannot hang on
		// a serveConn blocked reading an open pipelined stream.
		select {
		case <-ep.closed:
			conn.Close()
		default:
		}
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer func() {
				ep.scmu.Lock()
				delete(ep.sconns, conn)
				ep.scmu.Unlock()
				conn.Close()
			}()
			ep.serveConn(conn)
		}()
	}
}

// request is one decoded inbound request frame.
type request struct {
	pipelined bool // 'q'/'a' (id-tagged, stream stays open) vs legacy 'Q'/'A'
	authed    bool // 'a'/'A'
	id        uint64
	from      []byte
	nonce     []byte
	kind      []byte
	payload   []byte
	mac       []byte
}

// readRequest parses one request frame, returning io.EOF-ish errors when the
// stream ends or the bytes are not a valid frame.
func readRequest(r *bufio.Reader) (*request, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	req := &request{}
	switch tag {
	case 'Q':
	case 'A':
		req.authed = true
	case 'q':
		req.pipelined = true
	case 'a':
		req.pipelined = true
		req.authed = true
	default:
		return nil, fmt.Errorf("vnet: unknown frame tag %q", tag)
	}
	if req.pipelined {
		if req.id, err = binary.ReadUvarint(r); err != nil {
			return nil, err
		}
	}
	if req.from, err = readChunk(r); err != nil {
		return nil, err
	}
	if req.authed {
		if req.nonce, err = readChunk(r); err != nil {
			return nil, err
		}
	}
	if req.kind, err = readChunk(r); err != nil {
		return nil, err
	}
	if req.payload, err = readChunk(r); err != nil {
		return nil, err
	}
	if req.authed {
		if req.mac, err = readChunk(r); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// serveConn serves one inbound connection: a loop over request frames.
// Legacy clients send a single frame and close; pipelined clients keep the
// stream open and may have several requests outstanding, each answered —
// possibly out of order — through the connection's coalescing writer, so
// responses that finish together leave in one flush.
func (ep *TCPEndpoint) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	// A response write error means the client is gone (or stopped reading
	// past the stall bound); closing the connection unblocks the read loop.
	cw := newConnWriter(conn, func(error) { conn.Close() })
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		req, err := readRequest(r)
		if err != nil {
			return
		}
		if req.pipelined {
			// Pipelined requests are served concurrently: a slow meet must
			// not head-of-line-block the responses of later requests on the
			// same stream.
			handlers.Add(1)
			ep.wg.Add(1)
			go func() {
				defer handlers.Done()
				defer ep.wg.Done()
				ep.serveRequest(req, cw)
			}()
			continue
		}
		ep.serveRequest(req, cw)
	}
}

// serveRequest authenticates, dispatches, and answers one request frame.
func (ep *TCPEndpoint) serveRequest(req *request, cw *connWriter) {
	ep.mu.RLock()
	h := ep.handler
	key := ep.authKey
	ep.mu.RUnlock()

	// The handshake: a keyed endpoint admits only requests proving
	// knowledge of the shared key; a keyless endpoint cannot verify (or
	// sign) and refuses authenticated frames rather than guessing.
	var status byte
	var resp []byte
	switch {
	case key != nil && !req.authed:
		status, resp = 1, []byte(fmt.Sprintf("site %s requires authentication", ep.id))
	case key == nil && req.authed:
		status, resp = 1, []byte(fmt.Sprintf("site %s does not accept authenticated frames", ep.id))
	case key != nil && !hmac.Equal(req.mac, ep.requestMAC(key, req)):
		status, resp = 1, []byte(fmt.Sprintf("site %s: request authentication failed", ep.id))
	case key != nil && !ep.nonceFresh(req.nonce):
		status, resp = 1, []byte(fmt.Sprintf("site %s: replayed request refused", ep.id))
	case h == nil:
		status, resp = 1, []byte(ErrNoHandler.Error())
	default:
		if data, herr := h(SiteID(req.from), string(req.kind), req.payload); herr != nil {
			status, resp = 1, []byte(herr.Error())
		} else {
			status, resp = 0, data
		}
	}

	buf := getFrame()
	switch {
	case req.pipelined && req.authed && key != nil:
		buf = append(buf, 's')
		buf = binary.AppendUvarint(buf, req.id)
		buf = append(buf, status)
		buf = appendChunk(buf, resp)
		buf = appendChunk(buf, frameMAC(key, "presp", uvarintBytes(req.id), req.nonce, []byte{status}, resp))
	case req.pipelined:
		buf = append(buf, 'r')
		buf = binary.AppendUvarint(buf, req.id)
		buf = append(buf, status)
		buf = appendChunk(buf, resp)
	case req.authed && key != nil:
		buf = append(buf, 'S', status)
		buf = appendChunk(buf, resp)
		buf = appendChunk(buf, frameMAC(key, "resp", req.nonce, []byte{status}, resp))
	default:
		buf = append(buf, 'R', status)
		buf = appendChunk(buf, resp)
	}
	cw.enqueue(buf, nil, time.Time{})
}

// requestMAC computes the expected MAC for an inbound authenticated request.
func (ep *TCPEndpoint) requestMAC(key []byte, req *request) []byte {
	if req.pipelined {
		return frameMAC(key, "preq", uvarintBytes(req.id), req.from, req.nonce, req.kind, req.payload)
	}
	return frameMAC(key, "req", req.from, req.nonce, req.kind, req.payload)
}

// rpcResult is one demultiplexed response frame (or a connection error).
type rpcResult struct {
	authed bool // 's' frame
	status byte
	body   []byte
	mac    []byte
	err    error
}

// Channel pools for the two per-call rendezvous channels. A channel is
// recycled only after its receiver got a value: every registered response
// channel and every write-result channel is sent to exactly once, so a
// completed receive proves no other goroutine still holds the channel.
// Abandoned channels (context cancellation) are left to the GC.
var (
	rpcChPool = sync.Pool{New: func() any { return make(chan rpcResult, 1) }}
	werrPool  = sync.Pool{New: func() any { return make(chan error, 1) }}
)

// peerConn is one persistent multiplexed client connection to a peer.
type peerConn struct {
	conn net.Conn
	w    *connWriter // coalesces concurrent request frames

	mu      sync.Mutex
	pending map[uint64]chan rpcResult
	nextID  uint64
	dead    bool
	err     error
}

// register allocates a call id and its response channel.
func (pc *peerConn) register() (uint64, chan rpcResult, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.dead {
		return 0, nil, pc.err
	}
	pc.nextID++
	id := pc.nextID
	ch := rpcChPool.Get().(chan rpcResult)
	pc.pending[id] = ch
	return id, ch, nil
}

// forget abandons a call (context cancellation); a late response frame for
// the id is discarded by the read loop.
func (pc *peerConn) forget(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// fail marks the connection dead and fails every in-flight call.
func (pc *peerConn) fail(err error) {
	pc.mu.Lock()
	if pc.dead {
		pc.mu.Unlock()
		return
	}
	pc.dead = true
	pc.err = err
	pending := pc.pending
	pc.pending = make(map[uint64]chan rpcResult)
	pc.mu.Unlock()
	pc.conn.Close()
	for _, ch := range pending {
		ch <- rpcResult{err: err}
	}
}

// readLoop demultiplexes response frames to their callers.
func (pc *peerConn) readLoop() {
	r := bufio.NewReader(pc.conn)
	for {
		tag, err := r.ReadByte()
		if err != nil {
			pc.fail(fmt.Errorf("%w: connection lost: %v", ErrTimeout, err))
			return
		}
		if tag != 'r' && tag != 's' {
			pc.fail(fmt.Errorf("%w: bad response tag %q", ErrTimeout, tag))
			return
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			pc.fail(fmt.Errorf("%w: bad response id: %v", ErrTimeout, err))
			return
		}
		status, err := r.ReadByte()
		if err != nil {
			pc.fail(fmt.Errorf("%w: bad response status: %v", ErrTimeout, err))
			return
		}
		body, err := readChunk(r)
		if err != nil {
			pc.fail(fmt.Errorf("%w: bad response body: %v", ErrTimeout, err))
			return
		}
		res := rpcResult{authed: tag == 's', status: status, body: body}
		if res.authed {
			if res.mac, err = readChunk(r); err != nil {
				pc.fail(fmt.Errorf("%w: bad response mac: %v", ErrTimeout, err))
				return
			}
		}
		pc.mu.Lock()
		ch, ok := pc.pending[id]
		if ok {
			delete(pc.pending, id)
		}
		pc.mu.Unlock()
		if ok {
			ch <- res
		}
	}
}

// peerConn returns the pooled connection to a peer, dialing a fresh one when
// none is alive. The second return reports whether the connection was
// reused (a reused connection that fails mid-call is worth one redial).
func (ep *TCPEndpoint) peerConn(ctx context.Context, to SiteID) (*peerConn, bool, error) {
	ep.mu.RLock()
	addr, ok := ep.peers[to]
	ep.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	ep.pcmu.Lock()
	if pc, ok := ep.pconns[to]; ok && !pc.isDead() {
		ep.pcmu.Unlock()
		return pc, true, nil
	}
	ep.pcmu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrTimeout, to, err)
	}
	pc := &peerConn{
		conn:    conn,
		pending: make(map[uint64]chan rpcResult),
	}
	pc.w = newConnWriter(conn, func(werr error) {
		pc.fail(fmt.Errorf("%w: send to %s: %v", ErrTimeout, to, werr))
	})
	ep.pcmu.Lock()
	if cur, ok := ep.pconns[to]; ok && !cur.isDead() {
		// Lost the dial race; use the winner and retire ours.
		ep.pcmu.Unlock()
		conn.Close()
		return cur, true, nil
	}
	ep.pconns[to] = pc
	ep.pcmu.Unlock()
	// As with server connections: if Close swept pconns while we were
	// dialing, retire this connection immediately instead of leaking its
	// read loop past shutdown.
	select {
	case <-ep.closed:
		ep.pcmu.Lock()
		if ep.pconns[to] == pc {
			delete(ep.pconns, to)
		}
		ep.pcmu.Unlock()
		pc.fail(ErrClosed)
		return nil, false, ErrClosed
	default:
	}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		pc.readLoop()
	}()
	return pc, false, nil
}

func (pc *peerConn) isDead() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.dead
}

// Call performs one request/response exchange with a peer over the pooled
// pipelined connection. Concurrent Calls to the same peer share the
// connection; a dead pooled connection is redialed once.
func (ep *TCPEndpoint) Call(ctx context.Context, to SiteID, kind string, payload []byte) ([]byte, error) {
	select {
	case <-ep.closed:
		return nil, ErrClosed
	default:
	}
	key := ep.auth()
	res, id, nonce, err := ep.callOnce(ctx, to, kind, payload, key)
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}

	switch {
	case key != nil && !res.authed:
		// The peer answered in the clear; surface its refusal as a
		// handshake failure rather than a framing error.
		if res.status != 0 {
			return nil, fmt.Errorf("%w: remote %s: %s", ErrAuth, to, res.body)
		}
		return nil, fmt.Errorf("%w: unauthenticated reply from %s", ErrAuth, to)
	case key == nil && res.authed:
		return nil, fmt.Errorf("%w: unexpected authenticated reply from %s", ErrTimeout, to)
	case key != nil:
		if !hmac.Equal(res.mac, frameMAC(key, "presp", uvarintBytes(id), nonce, []byte{res.status}, res.body)) {
			return nil, fmt.Errorf("%w: response from %s", ErrAuth, to)
		}
	}
	if res.status != 0 {
		return nil, fmt.Errorf("vnet: remote %s: %s", to, res.body)
	}
	return res.body, nil
}

// redialBackoff sleeps a small jittered delay before a stale-pool redial.
// When a pooled connection to a restarted peer dies, every caller queued on
// it fails at once; without jitter they would all redial in the same
// instant, a thundering herd the dial-race handling resolves by dialing N
// connections and keeping one.
func redialBackoff(ctx context.Context) {
	d := time.Duration(200+mrand.Int64N(1800)) * time.Microsecond
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// callOnce sends one request frame and waits for its response, redialing a
// stale pooled connection once. It returns the raw result, the call id, and
// the nonce used (both needed for response MAC verification).
func (ep *TCPEndpoint) callOnce(ctx context.Context, to SiteID, kind string, payload []byte, key []byte) (rpcResult, uint64, []byte, error) {
	for attempt := 0; ; attempt++ {
		pc, reused, err := ep.peerConn(ctx, to)
		if err != nil {
			return rpcResult{}, 0, nil, err
		}
		id, ch, err := pc.register()
		if err != nil {
			if reused && attempt == 0 {
				redialBackoff(ctx)
				continue
			}
			return rpcResult{}, 0, nil, err
		}

		var nonce []byte
		if key != nil {
			nonce = make([]byte, 16)
			if _, err := rand.Read(nonce); err != nil {
				pc.forget(id)
				return rpcResult{}, 0, nil, fmt.Errorf("vnet: nonce: %w", err)
			}
		}

		// Render the request into a pooled scratch buffer and hand it to
		// the connection's coalescing writer: a lone call flushes at once,
		// concurrent calls batch into one flush.
		buf := getFrame()
		if key != nil {
			buf = append(buf, 'a')
			buf = binary.AppendUvarint(buf, id)
			buf = appendChunkString(buf, string(ep.id))
			buf = appendChunk(buf, nonce)
			buf = appendChunkString(buf, kind)
			buf = appendChunk(buf, payload)
			buf = appendChunk(buf, frameMAC(key, "preq", uvarintBytes(id), []byte(ep.id), nonce, []byte(kind), payload))
		} else {
			buf = append(buf, 'q')
			buf = binary.AppendUvarint(buf, id)
			buf = appendChunkString(buf, string(ep.id))
			buf = appendChunkString(buf, kind)
			buf = appendChunk(buf, payload)
		}
		var wdl time.Time
		if d, ok := ctx.Deadline(); ok {
			wdl = d
		}
		wres := werrPool.Get().(chan error)
		pc.w.enqueue(buf, wres, wdl)

		var werr error
		select {
		case werr = <-wres:
			// Fast path: when this call became the flusher, enqueue returned
			// with the outcome already delivered.
			werrPool.Put(wres)
		default:
			select {
			case werr = <-wres:
				werrPool.Put(wres)
			case <-ctx.Done():
				// The frame may still be flushed by the active batch; a late
				// response for the forgotten id is discarded by the read loop.
				pc.forget(id)
				return rpcResult{}, 0, nil, ctx.Err()
			case <-ep.closed:
				pc.forget(id)
				return rpcResult{}, 0, nil, ErrClosed
			}
		}
		if werr != nil {
			pc.forget(id)
			// Fail the connection here, synchronously, even though the
			// flusher's onErr hook does the same: the write outcome is
			// delivered before onErr runs, so a retry racing ahead of it
			// could otherwise pull the same dying connection back out of
			// the pool and burn its one redial on it. fail is idempotent.
			pc.fail(fmt.Errorf("%w: send to %s: %v", ErrTimeout, to, werr))
			// Redial only when this frame provably never reached the peer:
			// it was never handed to the socket (errWriteUnsent), or it was
			// a lone-frame batch whose failed flush cannot have delivered a
			// complete frame (errWriteLone). A frame inside a failed
			// multi-frame batch may have been executed by the peer;
			// re-sending would run a non-idempotent meet twice.
			if (errors.Is(werr, errWriteUnsent) || errors.Is(werr, errWriteLone)) && reused && attempt == 0 {
				redialBackoff(ctx)
				continue
			}
			return rpcResult{}, 0, nil, fmt.Errorf("%w: send to %s: %v", ErrTimeout, to, werr)
		}

		select {
		case res := <-ch:
			// No retry here even on a connection error: the request was
			// fully flushed, so the peer may already have executed the meet
			// — re-sending would run a non-idempotent meet (cabinet
			// mutations, cash debits) twice. Only pre-flush failures above
			// are safe to redial.
			rpcChPool.Put(ch)
			return res, id, nonce, nil
		case <-ctx.Done():
			pc.forget(id)
			return rpcResult{}, 0, nil, ctx.Err()
		case <-ep.closed:
			pc.forget(id)
			return rpcResult{}, 0, nil, ErrClosed
		}
	}
}

func readChunk(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxChunk = 64 << 20 // refuse absurd frames rather than OOM
	if n > maxChunk {
		return nil, fmt.Errorf("vnet: chunk of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
