package vnet

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint implements Endpoint over real TCP sockets, so the same TACOMA
// kernel that runs on the simulator runs between processes and machines
// (cmd/tacomad). Each Call opens one connection, sends one request frame,
// and reads one response frame; there is no connection pooling because site
// daemons are long-lived and calls are coarse (whole briefcases).
//
// Frame layout, all lengths uvarint-prefixed:
//
//	request  := 'Q' from kind payload
//	response := 'R' status(1: 0=ok, 1=error) payload-or-error-text
type TCPEndpoint struct {
	id          SiteID
	incarnation int64

	mu      sync.RWMutex
	peers   map[SiteID]string // site -> host:port
	handler HandlerFunc

	ln     net.Listener
	closed chan struct{}
	wg     sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCPEndpoint starts a listener on addr (e.g. "127.0.0.1:0") serving
// calls addressed to site id.
func NewTCPEndpoint(id SiteID, addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vnet: listen %s: %w", addr, err)
	}
	var incb [8]byte
	if _, err := rand.Read(incb[:]); err != nil {
		ln.Close()
		return nil, fmt.Errorf("vnet: incarnation: %w", err)
	}
	ep := &TCPEndpoint{
		id:          id,
		incarnation: int64(binary.LittleEndian.Uint64(incb[:]) >> 1),
		peers:       make(map[SiteID]string),
		ln:          ln,
		closed:      make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID returns the site name.
func (ep *TCPEndpoint) ID() SiteID { return ep.id }

// Incarnation identifies this process's boot; a fresh daemon gets a fresh
// random incarnation, which is what "restart" means for real processes.
func (ep *TCPEndpoint) Incarnation() int64 { return ep.incarnation }

// Addr returns the listener's actual address, useful with port 0.
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// AddPeer registers the network address of another site.
func (ep *TCPEndpoint) AddPeer(id SiteID, addr string) {
	ep.mu.Lock()
	ep.peers[id] = addr
	ep.mu.Unlock()
}

// SetHandler installs the serving function for incoming calls.
func (ep *TCPEndpoint) SetHandler(h HandlerFunc) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// Close stops the listener and waits for in-flight handlers.
func (ep *TCPEndpoint) Close() error {
	select {
	case <-ep.closed:
		return nil
	default:
	}
	close(ep.closed)
	err := ep.ln.Close()
	ep.wg.Wait()
	return err
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			select {
			case <-ep.closed:
				return
			default:
				continue
			}
		}
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer conn.Close()
			ep.serveConn(conn)
		}()
	}
}

func (ep *TCPEndpoint) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	tag, err := r.ReadByte()
	if err != nil || tag != 'Q' {
		return
	}
	from, err := readChunk(r)
	if err != nil {
		return
	}
	kind, err := readChunk(r)
	if err != nil {
		return
	}
	payload, err := readChunk(r)
	if err != nil {
		return
	}
	ep.mu.RLock()
	h := ep.handler
	ep.mu.RUnlock()

	var status byte
	var resp []byte
	if h == nil {
		status, resp = 1, []byte(ErrNoHandler.Error())
	} else if data, herr := h(SiteID(from), string(kind), payload); herr != nil {
		status, resp = 1, []byte(herr.Error())
	} else {
		status, resp = 0, data
	}
	w := bufio.NewWriter(conn)
	w.WriteByte('R')
	w.WriteByte(status)
	writeChunk(w, resp)
	w.Flush()
}

// Call dials the peer registered for to and performs one exchange.
func (ep *TCPEndpoint) Call(ctx context.Context, to SiteID, kind string, payload []byte) ([]byte, error) {
	select {
	case <-ep.closed:
		return nil, ErrClosed
	default:
	}
	ep.mu.RLock()
	addr, ok := ep.peers[to]
	ep.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTimeout, to, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}

	w := bufio.NewWriter(conn)
	w.WriteByte('Q')
	writeChunk(w, []byte(ep.id))
	writeChunk(w, []byte(kind))
	writeChunk(w, payload)
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("vnet: send to %s: %w", to, err)
	}

	r := bufio.NewReader(conn)
	tag, err := r.ReadByte()
	if err != nil || tag != 'R' {
		return nil, fmt.Errorf("%w: bad response from %s", ErrTimeout, to)
	}
	status, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("vnet: read status from %s: %w", to, err)
	}
	body, err := readChunk(r)
	if err != nil {
		return nil, fmt.Errorf("vnet: read body from %s: %w", to, err)
	}
	if status != 0 {
		return nil, fmt.Errorf("vnet: remote %s: %s", to, body)
	}
	return body, nil
}

func writeChunk(w *bufio.Writer, b []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	w.Write(tmp[:n])
	w.Write(b)
}

func readChunk(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxChunk = 64 << 20 // refuse absurd frames rather than OOM
	if n > maxChunk {
		return nil, fmt.Errorf("vnet: chunk of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
