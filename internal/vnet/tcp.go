package vnet

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// ErrAuth is wrapped by all TCP authentication failures.
var ErrAuth = errors.New("vnet: authentication failed")

// TCPEndpoint implements Endpoint over real TCP sockets, so the same TACOMA
// kernel that runs on the simulator runs between processes and machines
// (cmd/tacomad). Each Call opens one connection, sends one request frame,
// and reads one response frame; there is no connection pooling because site
// daemons are long-lived and calls are coarse (whole briefcases).
//
// Frame layout, all lengths uvarint-prefixed:
//
//	request  := 'Q' from kind payload
//	response := 'R' status(1: 0=ok, 1=error) payload-or-error-text
//
// With a shared auth key installed (SetAuthKey), frames carry an HMAC
// handshake instead:
//
//	request  := 'A' from nonce kind payload mac
//	response := 'S' status payload-or-error-text mac
//
// The request MAC covers (from, nonce, kind, payload) under HMAC-SHA256 of
// the shared key; the response MAC covers (nonce, status, body), binding
// the reply to the caller's nonce so a recorded response cannot be replayed
// against a later call. An endpoint with a key refuses plain 'Q' frames and
// requests whose MAC does not verify — this is the firewall handshake at
// the transport layer, below the site-level briefcase checks.
type TCPEndpoint struct {
	id          SiteID
	incarnation int64

	mu      sync.RWMutex
	peers   map[SiteID]string // site -> host:port
	handler HandlerFunc
	authKey []byte

	// Nonce replay window: two generations of seen request nonces,
	// rotated when the current one fills. A recorded authenticated frame
	// replays successfully only after at least nonceWindow further
	// requests have rotated its nonce out — a bounded-memory defense, not
	// an absolute one.
	nonceMu    sync.Mutex
	noncesCur  map[string]struct{}
	noncesPrev map[string]struct{}

	ln     net.Listener
	closed chan struct{}
	wg     sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCPEndpoint starts a listener on addr (e.g. "127.0.0.1:0") serving
// calls addressed to site id.
func NewTCPEndpoint(id SiteID, addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vnet: listen %s: %w", addr, err)
	}
	var incb [8]byte
	if _, err := rand.Read(incb[:]); err != nil {
		ln.Close()
		return nil, fmt.Errorf("vnet: incarnation: %w", err)
	}
	ep := &TCPEndpoint{
		id:          id,
		incarnation: int64(binary.LittleEndian.Uint64(incb[:]) >> 1),
		peers:       make(map[SiteID]string),
		ln:          ln,
		closed:      make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID returns the site name.
func (ep *TCPEndpoint) ID() SiteID { return ep.id }

// Incarnation identifies this process's boot; a fresh daemon gets a fresh
// random incarnation, which is what "restart" means for real processes.
func (ep *TCPEndpoint) Incarnation() int64 { return ep.incarnation }

// Addr returns the listener's actual address, useful with port 0.
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// AddPeer registers the network address of another site.
func (ep *TCPEndpoint) AddPeer(id SiteID, addr string) {
	ep.mu.Lock()
	ep.peers[id] = addr
	ep.mu.Unlock()
}

// SetHandler installs the serving function for incoming calls.
func (ep *TCPEndpoint) SetHandler(h HandlerFunc) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// SetAuthKey installs the cluster's shared authentication key. With a key
// set, outgoing calls use the authenticated handshake and incoming calls
// must pass it; a nil key restores the open protocol.
func (ep *TCPEndpoint) SetAuthKey(key []byte) {
	ep.mu.Lock()
	if key == nil {
		ep.authKey = nil
	} else {
		ep.authKey = append([]byte(nil), key...)
	}
	ep.mu.Unlock()
}

func (ep *TCPEndpoint) auth() []byte {
	ep.mu.RLock()
	defer ep.mu.RUnlock()
	return ep.authKey
}

// nonceWindow bounds how many request nonces each generation remembers.
const nonceWindow = 4096

// nonceFresh records a request nonce, reporting false when it was already
// seen within the replay window.
func (ep *TCPEndpoint) nonceFresh(nonce []byte) bool {
	ep.nonceMu.Lock()
	defer ep.nonceMu.Unlock()
	k := string(nonce)
	if _, ok := ep.noncesCur[k]; ok {
		return false
	}
	if _, ok := ep.noncesPrev[k]; ok {
		return false
	}
	if ep.noncesCur == nil {
		ep.noncesCur = make(map[string]struct{}, nonceWindow)
	}
	ep.noncesCur[k] = struct{}{}
	if len(ep.noncesCur) >= nonceWindow {
		ep.noncesPrev = ep.noncesCur
		ep.noncesCur = make(map[string]struct{}, nonceWindow)
	}
	return true
}

// frameMAC computes the handshake MAC over length-prefixed parts, with a
// domain label separating request from response MACs.
func frameMAC(key []byte, label string, parts ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	var tmp [binary.MaxVarintLen64]byte
	mac.Write([]byte(label))
	for _, p := range parts {
		n := binary.PutUvarint(tmp[:], uint64(len(p)))
		mac.Write(tmp[:n])
		mac.Write(p)
	}
	return mac.Sum(nil)
}

// Close stops the listener and waits for in-flight handlers.
func (ep *TCPEndpoint) Close() error {
	select {
	case <-ep.closed:
		return nil
	default:
	}
	close(ep.closed)
	err := ep.ln.Close()
	ep.wg.Wait()
	return err
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			select {
			case <-ep.closed:
				return
			default:
				continue
			}
		}
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer conn.Close()
			ep.serveConn(conn)
		}()
	}
}

func (ep *TCPEndpoint) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	tag, err := r.ReadByte()
	if err != nil || (tag != 'Q' && tag != 'A') {
		return
	}
	from, err := readChunk(r)
	if err != nil {
		return
	}
	var nonce []byte
	if tag == 'A' {
		if nonce, err = readChunk(r); err != nil {
			return
		}
	}
	kind, err := readChunk(r)
	if err != nil {
		return
	}
	payload, err := readChunk(r)
	if err != nil {
		return
	}
	var mac []byte
	if tag == 'A' {
		if mac, err = readChunk(r); err != nil {
			return
		}
	}
	ep.mu.RLock()
	h := ep.handler
	key := ep.authKey
	ep.mu.RUnlock()

	// The handshake: a keyed endpoint admits only requests proving
	// knowledge of the shared key; a keyless endpoint cannot verify (or
	// sign) and refuses authenticated frames rather than guessing.
	var status byte
	var resp []byte
	switch {
	case key != nil && tag != 'A':
		status, resp = 1, []byte(fmt.Sprintf("site %s requires authentication", ep.id))
	case key == nil && tag == 'A':
		status, resp = 1, []byte(fmt.Sprintf("site %s does not accept authenticated frames", ep.id))
	case key != nil && !hmac.Equal(mac, frameMAC(key, "req", from, nonce, kind, payload)):
		status, resp = 1, []byte(fmt.Sprintf("site %s: request authentication failed", ep.id))
	case key != nil && !ep.nonceFresh(nonce):
		status, resp = 1, []byte(fmt.Sprintf("site %s: replayed request refused", ep.id))
	case h == nil:
		status, resp = 1, []byte(ErrNoHandler.Error())
	default:
		if data, herr := h(SiteID(from), string(kind), payload); herr != nil {
			status, resp = 1, []byte(herr.Error())
		} else {
			status, resp = 0, data
		}
	}
	w := bufio.NewWriter(conn)
	if tag == 'A' && key != nil {
		w.WriteByte('S')
		w.WriteByte(status)
		writeChunk(w, resp)
		writeChunk(w, frameMAC(key, "resp", nonce, []byte{status}, resp))
	} else {
		w.WriteByte('R')
		w.WriteByte(status)
		writeChunk(w, resp)
	}
	w.Flush()
}

// Call dials the peer registered for to and performs one exchange.
func (ep *TCPEndpoint) Call(ctx context.Context, to SiteID, kind string, payload []byte) ([]byte, error) {
	select {
	case <-ep.closed:
		return nil, ErrClosed
	default:
	}
	ep.mu.RLock()
	addr, ok := ep.peers[to]
	ep.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTimeout, to, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}

	key := ep.auth()
	var nonce []byte
	w := bufio.NewWriter(conn)
	if key != nil {
		nonce = make([]byte, 16)
		if _, err := rand.Read(nonce); err != nil {
			return nil, fmt.Errorf("vnet: nonce: %w", err)
		}
		w.WriteByte('A')
		writeChunk(w, []byte(ep.id))
		writeChunk(w, nonce)
		writeChunk(w, []byte(kind))
		writeChunk(w, payload)
		writeChunk(w, frameMAC(key, "req", []byte(ep.id), nonce, []byte(kind), payload))
	} else {
		w.WriteByte('Q')
		writeChunk(w, []byte(ep.id))
		writeChunk(w, []byte(kind))
		writeChunk(w, payload)
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("vnet: send to %s: %w", to, err)
	}

	r := bufio.NewReader(conn)
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: bad response from %s", ErrTimeout, to)
	}
	switch {
	case key != nil && tag == 'R':
		// The peer answered in the clear; read its error so a handshake
		// refusal surfaces as such rather than as a framing error.
		status, body, rerr := readPlainResponse(r)
		if rerr == nil && status != 0 {
			return nil, fmt.Errorf("%w: remote %s: %s", ErrAuth, to, body)
		}
		return nil, fmt.Errorf("%w: unauthenticated reply from %s", ErrAuth, to)
	case key != nil && tag != 'S', key == nil && tag != 'R':
		return nil, fmt.Errorf("%w: bad response from %s", ErrTimeout, to)
	}
	status, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("vnet: read status from %s: %w", to, err)
	}
	body, err := readChunk(r)
	if err != nil {
		return nil, fmt.Errorf("vnet: read body from %s: %w", to, err)
	}
	if key != nil {
		mac, err := readChunk(r)
		if err != nil {
			return nil, fmt.Errorf("vnet: read mac from %s: %w", to, err)
		}
		if !hmac.Equal(mac, frameMAC(key, "resp", nonce, []byte{status}, body)) {
			return nil, fmt.Errorf("%w: response from %s", ErrAuth, to)
		}
	}
	if status != 0 {
		return nil, fmt.Errorf("vnet: remote %s: %s", to, body)
	}
	return body, nil
}

// readPlainResponse reads the body of an open-protocol 'R' response whose
// tag byte has already been consumed.
func readPlainResponse(r *bufio.Reader) (byte, []byte, error) {
	status, err := r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	body, err := readChunk(r)
	if err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

func writeChunk(w *bufio.Writer, b []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	w.Write(tmp[:n])
	w.Write(b)
}

func readChunk(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxChunk = 64 << 20 // refuse absurd frames rather than OOM
	if n > maxChunk {
		return nil, fmt.Errorf("vnet: chunk of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
