package vnet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(from SiteID, kind string, payload []byte) ([]byte, error) {
	return []byte(fmt.Sprintf("%s/%s:%s", from, kind, payload)), nil
}

func testNet(t *testing.T, sites ...SiteID) (*Network, map[SiteID]*Node) {
	t.Helper()
	n := NewNetwork(WithSeed(42), WithCallTimeout(20*time.Millisecond))
	nodes := make(map[SiteID]*Node)
	for _, s := range sites {
		nd := n.AddNode(s)
		nd.SetHandler(echoHandler)
		nodes[s] = nd
	}
	return n, nodes
}

func TestCallRoundTrip(t *testing.T) {
	_, nodes := testNet(t, "a", "b")
	got, err := nodes["a"].Call(context.Background(), "b", "ping", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a/ping:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCallUnknownSite(t *testing.T) {
	_, nodes := testNet(t, "a")
	_, err := nodes["a"].Call(context.Background(), "ghost", "x", nil)
	if !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v, want ErrUnknownSite", err)
	}
}

func TestCallNoHandler(t *testing.T) {
	n := NewNetwork(WithCallTimeout(20 * time.Millisecond))
	a := n.AddNode("a")
	n.AddNode("b") // no handler installed
	_, err := a.Call(context.Background(), "b", "x", nil)
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestCallHandlerError(t *testing.T) {
	n := NewNetwork(WithCallTimeout(20 * time.Millisecond))
	a := n.AddNode("a")
	b := n.AddNode("b")
	boom := errors.New("boom")
	b.SetHandler(func(SiteID, string, []byte) ([]byte, error) { return nil, boom })
	_, err := a.Call(context.Background(), "b", "x", nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want handler error", err)
	}
}

func TestCrashedCalleeTimesOut(t *testing.T) {
	net, nodes := testNet(t, "a", "b")
	if err := net.Crash("b"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := nodes["a"].Call(context.Background(), "b", "x", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timed out too quickly to be a timeout")
	}
	// After restart the site serves again.
	net.Restart("b")
	if _, err := nodes["a"].Call(context.Background(), "b", "x", nil); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestCrashedCallerFailsFast(t *testing.T) {
	net, nodes := testNet(t, "a", "b")
	net.Crash("a")
	_, err := nodes["a"].Call(context.Background(), "b", "x", nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestCrashUnknownSite(t *testing.T) {
	net, _ := testNet(t, "a")
	if err := net.Crash("ghost"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("Crash(ghost) = %v", err)
	}
	if err := net.Restart("ghost"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("Restart(ghost) = %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net, nodes := testNet(t, "a", "b")
	net.Partition("a", "b")
	if _, err := nodes["a"].Call(context.Background(), "b", "x", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned call err = %v, want ErrTimeout", err)
	}
	net.Heal("a", "b")
	if _, err := nodes["a"].Call(context.Background(), "b", "x", nil); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestByteAccounting(t *testing.T) {
	net, nodes := testNet(t, "a", "b")
	payload := []byte(strings.Repeat("z", 1000))
	if _, err := nodes["a"].Call(context.Background(), "b", "k", payload); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (request+response)", st.Messages)
	}
	wantMin := int64(1000 + headerOverhead)
	if st.BytesTotal < wantMin {
		t.Fatalf("bytes = %d, want >= %d", st.BytesTotal, wantMin)
	}
	if net.LinkBytes("a", "b") < wantMin {
		t.Fatalf("link a->b bytes = %d", net.LinkBytes("a", "b"))
	}
	if net.LinkBytes("b", "a") <= 0 {
		t.Fatal("response direction not accounted")
	}
	net.ResetStats()
	if net.Stats().BytesTotal != 0 || net.LinkBytes("a", "b") != 0 {
		t.Fatal("ResetStats left residue")
	}
}

func TestVirtualTimeCharged(t *testing.T) {
	net, nodes := testNet(t, "a", "b")
	net.SetBidirLink("a", "b", LinkParams{Latency: 10 * time.Millisecond, Bandwidth: 1 << 20})
	start := time.Now()
	if _, err := nodes["a"].Call(context.Background(), "b", "k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("virtual time should not sleep, took %v", wall)
	}
	st := net.Stats()
	// 1 MiB at 1 MiB/s ≈ 1s plus latency; at minimum well over 500ms.
	if st.VirtualTime < 500*time.Millisecond {
		t.Fatalf("virtual time = %v, want >= 500ms", st.VirtualTime)
	}
}

func TestRealTimeSleeps(t *testing.T) {
	n := NewNetwork(RealTime(), WithCallTimeout(time.Second))
	a := n.AddNode("a")
	b := n.AddNode("b")
	b.SetHandler(echoHandler)
	n.SetBidirLink("a", "b", LinkParams{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall < 55*time.Millisecond {
		t.Fatalf("real-time call returned in %v, want >= 2×30ms", wall)
	}
}

func TestLossDropsMessages(t *testing.T) {
	n := NewNetwork(WithSeed(7), WithCallTimeout(5*time.Millisecond))
	a := n.AddNode("a")
	b := n.AddNode("b")
	b.SetHandler(echoHandler)
	n.SetLink("a", "b", LinkParams{Loss: 1.0})
	_, err := a.Call(context.Background(), "b", "k", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("lossy call err = %v, want ErrTimeout", err)
	}
}

func TestContextCancellation(t *testing.T) {
	n := NewNetwork(WithCallTimeout(10 * time.Second))
	a := n.AddNode("a")
	b := n.AddNode("b")
	b.SetHandler(func(SiteID, string, []byte) ([]byte, error) {
		time.Sleep(time.Second)
		return nil, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Call(ctx, "b", "k", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("cancellation not honored promptly")
	}
}

func TestClosedEndpoint(t *testing.T) {
	_, nodes := testNet(t, "a", "b")
	nodes["a"].Close()
	_, err := nodes["a"].Call(context.Background(), "b", "k", nil)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	n := NewNetwork()
	a1 := n.AddNode("a")
	a2 := n.AddNode("a")
	if a1 != a2 {
		t.Fatal("AddNode created a duplicate node")
	}
}

func TestSitesSorted(t *testing.T) {
	n := NewNetwork()
	for _, s := range []SiteID{"c", "a", "b"} {
		n.AddNode(s)
	}
	got := n.Sites()
	want := []SiteID{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v", got)
		}
	}
}

func TestTransferTime(t *testing.T) {
	p := LinkParams{Latency: time.Millisecond, Bandwidth: 1000}
	// 500 bytes at 1000 B/s = 500ms, plus 1ms latency.
	got := p.TransferTime(500)
	if got < 500*time.Millisecond || got > 502*time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
	inf := LinkParams{Latency: 2 * time.Millisecond}
	if inf.TransferTime(1<<30) != 2*time.Millisecond {
		t.Fatal("infinite bandwidth should charge latency only")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, nodes := testNet(t, "a", "b")
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := nodes["a"].Call(context.Background(), "b", "k", []byte{byte(i)})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
