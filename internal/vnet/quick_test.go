package vnet

import (
	"context"
	"testing"
	"testing/quick"
)

// Property: byte accounting is exact — after n calls with known payload
// and reply sizes, BytesTotal equals the sum of payloads, replies, and
// per-message framing overhead.
func TestByteAccountingProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		net := NewNetwork()
		a := net.AddNode("a")
		b := net.AddNode("b")
		b.SetHandler(func(_ SiteID, _ string, payload []byte) ([]byte, error) {
			// Reply with half the payload.
			return payload[:len(payload)/2], nil
		})
		var want int64
		for _, sz := range sizes {
			n := int(sz % 4096)
			payload := make([]byte, n)
			if _, err := a.Call(context.Background(), "b", "k", payload); err != nil {
				return false
			}
			want += int64(n + headerOverhead)   // request
			want += int64(n/2 + headerOverhead) // reply
		}
		st := net.Stats()
		return st.BytesTotal == want && st.Messages == int64(2*len(sizes))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-link counters sum to the global counter.
func TestLinkBytesSumProperty(t *testing.T) {
	prop := func(payloadSizes []uint8) bool {
		net := NewNetwork()
		a := net.AddNode("a")
		b := net.AddNode("b")
		c := net.AddNode("c")
		for _, nd := range []*Node{b, c} {
			nd.SetHandler(func(SiteID, string, []byte) ([]byte, error) { return []byte("ok"), nil })
		}
		for i, sz := range payloadSizes {
			dest := SiteID("b")
			if i%2 == 1 {
				dest = "c"
			}
			if _, err := a.Call(context.Background(), dest, "k", make([]byte, int(sz))); err != nil {
				return false
			}
		}
		sum := net.LinkBytes("a", "b") + net.LinkBytes("b", "a") +
			net.LinkBytes("a", "c") + net.LinkBytes("c", "a")
		return sum == net.Stats().BytesTotal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: restart always changes the incarnation, and crash alone never
// does.
func TestIncarnationProperty(t *testing.T) {
	prop := func(restarts uint8) bool {
		net := NewNetwork()
		nd := net.AddNode("x")
		prev := nd.Incarnation()
		n := int(restarts % 20)
		for i := 0; i < n; i++ {
			net.Crash("x")
			if nd.Incarnation() != prev {
				return false // crash must not bump
			}
			net.Restart("x")
			if nd.Incarnation() == prev {
				return false // restart must bump
			}
			prev = nd.Incarnation()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
