package vnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	a.SetHandler(echoHandler)
	b.SetHandler(echoHandler)
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, _ := tcpPair(t)
	got, err := a.Call(context.Background(), "b", "meet", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a/meet:payload" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPBothDirections(t *testing.T) {
	a, b := tcpPair(t)
	if _, err := a.Call(context.Background(), "b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call(context.Background(), "a", "k", nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, _ := tcpPair(t)
	big := []byte(strings.Repeat("q", 1<<20))
	got, err := a.Call(context.Background(), "b", "bulk", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big)+len("a/bulk:") {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestTCPHandlerError(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(SiteID, string, []byte) ([]byte, error) {
		return nil, errors.New("service refused")
	})
	_, err := a.Call(context.Background(), "b", "k", nil)
	if err == nil || !strings.Contains(err.Error(), "service refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPNoHandler(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(nil)
	_, err := a.Call(context.Background(), "b", "k", nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	_, err := a.Call(context.Background(), "nowhere", "k", nil)
	if !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPDeadPeer(t *testing.T) {
	a, b := tcpPair(t)
	addr := b.Addr()
	b.Close()
	a.AddPeer("b", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", "k", nil); err == nil {
		t.Fatal("call to closed peer succeeded")
	}
}

func TestTCPClosedCallerFails(t *testing.T) {
	a, _ := tcpPair(t)
	a.Close()
	if _, err := a.Call(context.Background(), "b", "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestTCPConcurrent(t *testing.T) {
	a, _ := tcpPair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.Call(context.Background(), "b", "k", []byte("x"))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
