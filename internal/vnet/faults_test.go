package vnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// faultNet builds a two-node network with a fast call timeout so dropped
// messages fail quickly.
func faultNet(t *testing.T, opts ...Option) (*Network, *Node, *Node) {
	t.Helper()
	opts = append([]Option{WithSeed(42), WithCallTimeout(20 * time.Millisecond)}, opts...)
	n := NewNetwork(opts...)
	a := n.AddNode("a")
	b := n.AddNode("b")
	b.SetHandler(func(from SiteID, kind string, payload []byte) ([]byte, error) {
		return append([]byte("ok:"), payload...), nil
	})
	return n, a, b
}

func TestFaultsDropTimesOut(t *testing.T) {
	n, a, _ := faultNet(t)
	n.SetFaults("a", "b", Faults{Drop: 1})
	_, err := a.Call(context.Background(), "b", "t", []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Drop=1 request: want ErrTimeout, got %v", err)
	}

	// Clearing faults restores the link.
	n.ClearFaults()
	if _, err := a.Call(context.Background(), "b", "t", []byte("x")); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}

	// Reply-direction drop also manifests as a timeout, but the handler ran.
	served := 0
	n.Node("b").SetHandler(func(from SiteID, kind string, payload []byte) ([]byte, error) {
		served++
		return nil, nil
	})
	n.SetFaults("b", "a", Faults{Drop: 1})
	_, err = a.Call(context.Background(), "b", "t", []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Drop=1 reply: want ErrTimeout, got %v", err)
	}
	if served != 1 {
		t.Fatalf("reply drop must not suppress delivery: served=%d", served)
	}
}

func TestFaultsDelayHoldsMessages(t *testing.T) {
	n, a, _ := faultNet(t)
	const hold = 30 * time.Millisecond
	n.SetFaults("a", "b", Faults{Delay: hold})
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "t", []byte("x")); err != nil {
		t.Fatalf("delayed call: %v", err)
	}
	if el := time.Since(start); el < hold {
		t.Fatalf("Delay=%v not applied: call took %v", hold, el)
	}

	// A ctx expiring inside the injected hold surfaces as ctx.Err, not a
	// phantom reply.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", "t", []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx during injected delay: want DeadlineExceeded, got %v", err)
	}
}

func TestFaultsReorderSwapsAdjacentMessages(t *testing.T) {
	n, a, b := faultNet(t)
	var mu sync.Mutex
	var order []string
	b.SetHandler(func(from SiteID, kind string, payload []byte) ([]byte, error) {
		mu.Lock()
		order = append(order, string(payload))
		mu.Unlock()
		return nil, nil
	})
	n.SetFaults("a", "b", Faults{Reorder: 1, ReorderWindow: time.Second})

	// m1 is selected for reordering (Reorder=1) and parks; m2 finds the
	// held slot occupied, becomes the releaser, and delivers first.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := a.Call(context.Background(), "b", "t", []byte("m1")); err != nil {
			t.Errorf("m1: %v", err)
		}
	}()
	// Give m1 time to reach the held slot before m2 enters.
	time.Sleep(20 * time.Millisecond)
	if _, err := a.Call(context.Background(), "b", "t", []byte("m2")); err != nil {
		t.Fatalf("m2: %v", err)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "m2" || order[1] != "m1" {
		t.Fatalf("want delivery order [m2 m1], got %v", order)
	}
}

func TestFaultsReorderWindowReleasesLoneMessage(t *testing.T) {
	n, a, _ := faultNet(t)
	n.SetFaults("a", "b", Faults{Reorder: 1, ReorderWindow: 10 * time.Millisecond})
	// No successor ever arrives: the hold must drain on the window timer
	// rather than wedging the link.
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "t", []byte("solo")); err != nil {
		t.Fatalf("lone reordered call: %v", err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("reorder window not applied: call took %v", el)
	}
}

func TestFaultsPartitionStillSevers(t *testing.T) {
	// Faults compose with the existing partition knob: partition wins.
	n, a, _ := faultNet(t)
	n.SetFaults("a", "b", Faults{Delay: time.Millisecond})
	n.Partition("a", "b")
	if _, err := a.Call(context.Background(), "b", "t", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned: want ErrTimeout, got %v", err)
	}
	n.Heal("a", "b")
	if _, err := a.Call(context.Background(), "b", "t", nil); err != nil {
		t.Fatalf("healed: %v", err)
	}
}
