package vnet

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
)

func echoHandlerFor(t *testing.T) HandlerFunc {
	t.Helper()
	return func(from SiteID, kind string, payload []byte) ([]byte, error) {
		return append([]byte(string(from)+"/"+kind+":"), payload...), nil
	}
}

// authPair builds two endpoints with per-side auth keys (nil = open).
func authPair(t *testing.T, keyA, keyB []byte) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	a.SetHandler(echoHandlerFor(t))
	b.SetHandler(echoHandlerFor(t))
	a.SetAuthKey(keyA)
	b.SetAuthKey(keyB)
	return a, b
}

func TestTCPAuthRoundTrip(t *testing.T) {
	secret := []byte("shared cluster secret")
	a, b := authPair(t, secret, secret)
	got, err := a.Call(context.Background(), "b", "meet", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a/meet:payload" {
		t.Fatalf("got %q", got)
	}
	// And the other direction.
	if _, err := b.Call(context.Background(), "a", "k", nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPAuthHandlerErrorStillAuthenticated(t *testing.T) {
	secret := []byte("shared cluster secret")
	a, b := authPair(t, secret, secret)
	b.SetHandler(func(SiteID, string, []byte) ([]byte, error) {
		return nil, errors.New("service refused")
	})
	_, err := a.Call(context.Background(), "b", "k", nil)
	if err == nil || !strings.Contains(err.Error(), "service refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPAuthBadKeyRejected(t *testing.T) {
	a, _ := authPair(t, []byte("the wrong key"), []byte("the right key"))
	_, err := a.Call(context.Background(), "b", "k", []byte("x"))
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestTCPAuthRequiredRejectsPlainCaller(t *testing.T) {
	a, _ := authPair(t, nil, []byte("server key"))
	_, err := a.Call(context.Background(), "b", "k", nil)
	if err == nil || !strings.Contains(err.Error(), "requires authentication") {
		t.Fatalf("err = %v, want authentication-required refusal", err)
	}
}

func TestTCPAuthCallerToOpenServerRejected(t *testing.T) {
	a, _ := authPair(t, []byte("caller key"), nil)
	_, err := a.Call(context.Background(), "b", "k", nil)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestTCPAuthTamperedPayloadRejected(t *testing.T) {
	// A MITM altering the payload invalidates the request MAC: simulate by
	// hand-crafting a frame with a stale MAC via a caller whose key is then
	// swapped mid-flight. Simpler equivalent: two different keys (covered
	// above); here verify large authenticated payloads survive intact.
	secret := []byte("s")
	a, _ := authPair(t, secret, secret)
	big := []byte(strings.Repeat("q", 1<<18))
	got, err := a.Call(context.Background(), "b", "bulk", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big)+len("a/bulk:") {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestTCPAuthReplayRejected(t *testing.T) {
	secret := []byte("shared cluster secret")
	_, b := authPair(t, secret, secret)

	// Hand-build one authenticated frame and send the identical bytes
	// twice — a recorded-and-replayed request.
	frame := func() []byte {
		nonce := []byte("0123456789abcdef")
		buf := []byte{'A'}
		buf = appendChunk(buf, []byte("a"))
		buf = appendChunk(buf, nonce)
		buf = appendChunk(buf, []byte("k"))
		buf = appendChunk(buf, []byte("payload"))
		buf = appendChunk(buf, frameMAC(secret, "req", []byte("a"), nonce, []byte("k"), []byte("payload")))
		return buf
	}()
	send := func() (byte, string) {
		conn, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		if tag, err := r.ReadByte(); err != nil || tag != 'S' {
			t.Fatalf("tag %q err %v", tag, err)
		}
		status, err := r.ReadByte()
		if err != nil {
			t.Fatal(err)
		}
		body, err := readChunk(r)
		if err != nil {
			t.Fatal(err)
		}
		return status, string(body)
	}
	if status, body := send(); status != 0 {
		t.Fatalf("first send refused: %s", body)
	}
	status, body := send()
	if status == 0 || !strings.Contains(body, "replayed") {
		t.Fatalf("replay accepted: status=%d body=%q", status, body)
	}
}

func TestTCPAuthKeyRemovalRestoresOpenProtocol(t *testing.T) {
	secret := []byte("shared")
	a, b := authPair(t, secret, secret)
	a.SetAuthKey(nil)
	b.SetAuthKey(nil)
	if _, err := a.Call(context.Background(), "b", "k", nil); err != nil {
		t.Fatal(err)
	}
}
