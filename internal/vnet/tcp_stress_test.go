package vnet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPStressCallDuringPeerRestart hammers the stale-pool redial path:
// many goroutines Call through one pooled connection while the peer
// repeatedly dies and comes back on the same address. Every caller that
// fails during a down window must get an error (never a hang), the
// herd of redials after each restart must converge on one pooled
// connection, and calls must succeed again once the peer is up. Run with
// -race: the coalescer, the dial race, and fail() all interleave here.
func TestTCPStressCallDuringPeerRestart(t *testing.T) {
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetHandler(echoHandler)

	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(echoHandler)
	addr := b.Addr()
	a.AddPeer("b", addr)

	const workers = 16
	var stop atomic.Bool
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				_, err := a.Call(ctx, "b", "k", []byte("x"))
				cancel()
				if err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}

	// Three restart cycles: close the peer mid-traffic, let the callers
	// fail against the dead address, bring a fresh endpoint up on it.
	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(50 * time.Millisecond)
		b.Close()
		time.Sleep(30 * time.Millisecond)
		for attempt := 0; ; attempt++ {
			b, err = NewTCPEndpoint("b", addr)
			if err == nil {
				break
			}
			if attempt > 100 {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("could not rebind %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		b.SetHandler(echoHandler)
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatalf("no call ever succeeded (failed=%d)", failed.Load())
	}
	// The pool must have recovered from the final restart: a fresh call
	// against the last endpoint generation succeeds.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.Call(ctx, "b", "k", []byte("x")); err != nil {
		t.Fatalf("call after final restart: %v", err)
	}
	b.Close()
	t.Logf("ok=%d failed=%d", ok.Load(), failed.Load())
}

// TestTCPStressCloseDuringCalls closes the calling endpoint while calls are
// in flight from many goroutines: everything must return promptly (ErrClosed
// or a connection error), and Close must not deadlock against the coalescing
// writer or the read loops.
func TestTCPStressCloseDuringCalls(t *testing.T) {
	a, b := tcpPair(t)
	slowDone := make(chan struct{})
	b.SetHandler(func(from SiteID, kind string, payload []byte) ([]byte, error) {
		select {
		case <-slowDone:
		case <-time.After(5 * time.Millisecond):
		}
		return payload, nil
	})
	defer close(slowDone)

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_, err := a.Call(ctx, "b", "k", []byte("payload"))
			errs <- err
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	a.Close() // must unblock every in-flight caller

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers did not return after Close")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			continue // raced ahead of Close; fine
		}
		if errors.Is(err, ErrClosed) || errors.Is(err, ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestTCPCoalescedConcurrentEcho floods one connection from many goroutines
// and checks every response routes back to its caller intact — the
// demultiplexer under maximum coalescing pressure.
func TestTCPCoalescedConcurrentEcho(t *testing.T) {
	a, _ := tcpPair(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				payload := []byte{byte(w), byte(i)}
				got, err := a.Call(context.Background(), "b", "k", payload)
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				want := "a/k:" + string(payload)
				if string(got) != want {
					t.Errorf("worker %d call %d: got %q want %q", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
