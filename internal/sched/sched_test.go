package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsTasks(t *testing.T) {
	s := New(0)
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		s.Submit(fmt.Sprintf("agent-%d", i), func() { n.Add(1) })
	}
	s.Quiesce()
	if got := n.Load(); got != 1000 {
		t.Fatalf("ran %d tasks, want 1000", got)
	}
	if st := s.Stats(); st.Submitted != 1000 {
		t.Fatalf("Submitted = %d, want 1000", st.Submitted)
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	s := New(4)
	var wg sync.WaitGroup
	release := make(chan struct{})
	var running atomic.Int64
	var maxSeen atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		s.Submit(fmt.Sprintf("a%d", i), func() {
			defer wg.Done()
			cur := running.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			<-release
			running.Add(-1)
		})
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if m := maxSeen.Load(); m > 4 {
		t.Fatalf("%d tasks ran concurrently, pool bound is 4", m)
	}
}

func TestWorkStealing(t *testing.T) {
	s := New(2)
	// Saturate one shard key so the second worker has to steal from it.
	var n atomic.Int64
	block := make(chan struct{})
	s.Submit("hot", func() { <-block; n.Add(1) })
	for i := 0; i < 100; i++ {
		s.Submit("hot", func() { n.Add(1) })
	}
	close(block)
	s.Quiesce()
	if got := n.Load(); got != 101 {
		t.Fatalf("ran %d, want 101", got)
	}
}

func TestQuiesceCoversSpawn(t *testing.T) {
	s := New(0)
	var done atomic.Bool
	s.Spawn(func() {
		time.Sleep(20 * time.Millisecond)
		s.Submit("child", func() {
			time.Sleep(10 * time.Millisecond)
			done.Store(true)
		})
	})
	s.Quiesce()
	if !done.Load() {
		t.Fatal("Quiesce returned before spawned-then-submitted work finished")
	}
}

func TestWorkersRetireWhenIdle(t *testing.T) {
	s := New(0)
	for i := 0; i < 32; i++ {
		s.Submit(fmt.Sprintf("a%d", i), func() {})
	}
	s.Quiesce()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.Workers == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("workers never retired: %+v", s.Stats())
}

// resumerFunc adapts a func to Resumer.
type resumerFunc func(key string)

func (f resumerFunc) Resume(key string) { f(key) }

func TestParkWakeBasics(t *testing.T) {
	s := New(0)
	var woken sync.Map
	r := resumerFunc(func(key string) { woken.Store(key, true) })

	s.Park("a", "topic-1", r)
	s.Park("b", "topic-1", r)
	s.Park("c", "", r)
	if !s.IsParked("a") || s.ParkedCount() != 3 {
		t.Fatalf("parked state wrong: count=%d", s.ParkedCount())
	}
	if !s.Wake("c") {
		t.Fatal("Wake(c) found nothing")
	}
	if s.Wake("c") {
		t.Fatal("double Wake(c) woke twice")
	}
	if n := s.WakeTopic("topic-1"); n != 2 {
		t.Fatalf("WakeTopic woke %d, want 2", n)
	}
	if n := s.WakeTopic("topic-1"); n != 0 {
		t.Fatalf("second WakeTopic woke %d, want 0", n)
	}
	s.Quiesce()
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := woken.Load(k); !ok {
			t.Fatalf("agent %s never resumed", k)
		}
	}
	if s.ParkedCount() != 0 {
		t.Fatalf("ParkedCount = %d after waking all", s.ParkedCount())
	}
}

func TestUnparkRemovesWithoutResume(t *testing.T) {
	s := New(0)
	var resumed atomic.Bool
	s.Park("x", "t", resumerFunc(func(string) { resumed.Store(true) }))
	if !s.Unpark("x") {
		t.Fatal("Unpark found nothing")
	}
	if s.Wake("x") || s.WakeTopic("t") != 0 {
		t.Fatal("unparked key still wakeable")
	}
	s.Quiesce()
	if resumed.Load() {
		t.Fatal("Unpark resumed the agent")
	}
}

func TestReparkReplacesTopic(t *testing.T) {
	s := New(0)
	var n atomic.Int64
	r := resumerFunc(func(string) { n.Add(1) })
	s.Park("x", "old-topic", r)
	s.Park("x", "new-topic", r)
	if s.WakeTopic("old-topic") != 0 {
		t.Fatal("stale topic still wakes after re-park")
	}
	if s.WakeTopic("new-topic") != 1 {
		t.Fatal("new topic did not wake")
	}
	s.Quiesce()
	if n.Load() != 1 {
		t.Fatalf("resumed %d times, want 1", n.Load())
	}
}

// TestParkWakeStorm is the -race stress: many depositors waking many parked
// agents across shards, with every agent re-parking itself a few times.
// Exactly one resume per wake must be observed, no matter how wakes race.
func TestParkWakeStorm(t *testing.T) {
	s := New(0)
	const agents = 200
	const rounds = 5
	var resumes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(agents * rounds)
	var r Resumer
	round := make([]atomic.Int64, agents)
	r = resumerFunc(func(key string) {
		resumes.Add(1)
		var idx int
		fmt.Sscanf(key, "agent-%d", &idx)
		if round[idx].Add(1) < rounds {
			s.Park(key, fmt.Sprintf("topic-%d", idx%7), r)
		}
		wg.Done()
	})
	for i := 0; i < agents; i++ {
		s.Park(fmt.Sprintf("agent-%d", i), fmt.Sprintf("topic-%d", i%7), r)
	}
	// Depositors race: half wake by key, half by topic; every agent must be
	// resumed exactly agents*rounds times in total.
	done := make(chan struct{})
	for d := 0; d < 8; d++ {
		go func(d int) {
			for {
				select {
				case <-done:
					return
				default:
				}
				if d%2 == 0 {
					s.WakeTopic(fmt.Sprintf("topic-%d", d%7))
				} else {
					s.Wake(fmt.Sprintf("agent-%d", d*13%agents))
				}
				for i := 0; i < agents; i += 3 {
					s.Wake(fmt.Sprintf("agent-%d", i))
				}
				for tp := 0; tp < 7; tp++ {
					s.WakeTopic(fmt.Sprintf("topic-%d", tp))
				}
			}
		}(d)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("storm stalled: %d resumes of %d", resumes.Load(), agents*rounds)
	}
	close(done)
	s.Quiesce()
	if got := resumes.Load(); got != agents*rounds {
		t.Fatalf("resumes = %d, want %d", got, agents*rounds)
	}
}

// TestParkedAgentsAddNoGoroutines is the scheduler-level goroutine
// invariant: parking any number of agents spawns nothing.
func TestParkedAgentsAddNoGoroutines(t *testing.T) {
	s := New(0)
	before := runtime.NumGoroutine()
	r := resumerFunc(func(string) {})
	for i := 0; i < 100000; i++ {
		s.Park(fmt.Sprintf("agent-%d", i), fmt.Sprintf("topic-%d", i%97), r)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("parking 100k agents grew goroutines %d -> %d", before, after)
	}
	if s.ParkedCount() != 100000 {
		t.Fatalf("ParkedCount = %d", s.ParkedCount())
	}
}

func TestHandle(t *testing.T) {
	var h Handle
	select {
	case <-h.Done():
		t.Fatal("zero Handle already done")
	default:
	}
	errBoom := errors.New("boom")
	go h.Complete(errBoom)
	if err := h.Wait(context.Background()); !errors.Is(err, errBoom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	h.Complete(nil) // idempotent; must not panic or overwrite
	if !errors.Is(h.Err(), errBoom) {
		t.Fatalf("Err = %v after second Complete", h.Err())
	}

	var h2 Handle
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h2.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v", err)
	}
}
