// Package sched is the zero-goroutine agent scheduler. Agent activations
// become runnable tasks on per-shard run queues served by a small worker
// pool — at most one worker goroutine per GOMAXPROCS, not one per agent —
// with work stealing between shards. A parked agent costs no goroutine at
// all: it is pure heap state (a run-queue key plus a Resumer), woken by
// depositing its task back onto a queue. The kernel (internal/core) owns
// the durable half of parking — the continuation briefcase in the site
// cabinet — and implements Resumer; this package owns the volatile half:
// who is parked, what topic wakes them, and which worker runs them next.
//
// Workers are started lazily on the first submission and retire after an
// idle timeout, so a site that never wakes anything holds zero scheduler
// goroutines and a site under load holds a flat, bounded number.
package sched

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/folder"
)

// Task is one runnable agent activation.
type Task func()

// shardCount is the number of run-queue stripes, mirroring the agent
// registry's lock striping: tasks for different agents land on different
// queues and their submitters never touch the same mutex. Power of two so
// the modulo is a mask.
const shardCount = 16

// idleTimeout is how long a worker waits for work before retiring. Long
// enough that a steady trickle of wakeups reuses warm workers; short
// enough that test processes quiesce to zero scheduler goroutines.
const idleTimeout = 250 * time.Millisecond

// runShard is one stripe of the run queue: a FIFO of tasks under its own
// mutex.
type runShard struct {
	mu   sync.Mutex
	head int
	q    []Task
}

func (sh *runShard) push(t Task) {
	sh.mu.Lock()
	sh.q = append(sh.q, t)
	sh.mu.Unlock()
}

func (sh *runShard) pop() Task {
	sh.mu.Lock()
	if sh.head >= len(sh.q) {
		sh.mu.Unlock()
		return nil
	}
	t := sh.q[sh.head]
	sh.q[sh.head] = nil
	sh.head++
	if sh.head == len(sh.q) {
		sh.q = sh.q[:0]
		sh.head = 0
	}
	sh.mu.Unlock()
	return t
}

// worker is one pool goroutine's wake channel; buffered so a submitter
// never blocks handing work to an idle worker.
type worker struct {
	wake chan struct{}
}

// Stats is a snapshot of scheduler accounting.
type Stats struct {
	// Submitted counts tasks ever submitted.
	Submitted int64
	// Steals counts tasks a worker popped from a shard other than its own.
	Steals int64
	// Workers is the current worker-goroutine count (bounded by GOMAXPROCS).
	Workers int
	// Idle is how many of those workers are waiting for work.
	Idle int
	// Parked is the current parked-agent population.
	Parked int
}

// Scheduler runs tasks on a bounded worker pool and tracks parked agents.
// The zero value is not usable; create one with New.
type Scheduler struct {
	shards     [shardCount]runShard
	maxWorkers int

	mu       sync.Mutex
	idle     []*worker
	nWorkers int

	// counter tracks live work — queued/running tasks plus Spawned
	// goroutines — under a mutex+cond rather than a WaitGroup: spawned work
	// submits further work from goroutines the tracker does not own, so Add
	// could race a concurrent Wait under WaitGroup rules. Quiesce returns at
	// a moment the counter is zero.
	wmu    sync.Mutex
	wcond  *sync.Cond
	inWork int

	submitted int64 // under mu
	steals    int64 // under mu

	parked [shardCount]parkShard
	topics [shardCount]topicShard
}

// New creates a scheduler. maxWorkers bounds the pool; 0 means GOMAXPROCS.
func New(maxWorkers int) *Scheduler {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{maxWorkers: maxWorkers}
	for i := range s.parked {
		s.parked[i].entries = make(map[string]*parkEntry)
	}
	for i := range s.topics {
		s.topics[i].keys = make(map[string]map[string]struct{})
	}
	return s
}

func shardOf(key string) int { return int(folder.NameHash(key) & (shardCount - 1)) }

// Submit enqueues a task on the shard selected by key (an agent name, so
// one agent's activations stay on one queue) and ensures a worker will run
// it: an idle worker is woken, a new one is started while the pool is
// below its bound, and otherwise a busy worker picks the task up when it
// finishes its current one.
func (s *Scheduler) Submit(key string, t Task) {
	s.workAdd()
	s.shards[shardOf(key)].push(t)
	s.mu.Lock()
	s.submitted++
	if n := len(s.idle); n > 0 {
		w := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		select {
		case w.wake <- struct{}{}:
		default:
		}
		return
	}
	if s.nWorkers < s.maxWorkers {
		s.nWorkers++
		slot := s.nWorkers % shardCount
		s.mu.Unlock()
		go s.run(slot)
		return
	}
	s.mu.Unlock()
}

// Spawn runs fn on its own goroutine, tracked so Quiesce can wait for it.
// It exists for work that blocks — network exchanges, failure-detector
// loops — which must not occupy a pool worker.
func (s *Scheduler) Spawn(fn func()) {
	s.workAdd()
	go func() {
		defer s.workDone()
		fn()
	}()
}

// Quiesce blocks until all submitted tasks and spawned goroutines have
// finished. Parked agents are at rest, not in flight, and do not count.
func (s *Scheduler) Quiesce() {
	s.wmu.Lock()
	if s.wcond == nil {
		s.wcond = sync.NewCond(&s.wmu)
	}
	for s.inWork > 0 {
		s.wcond.Wait()
	}
	s.wmu.Unlock()
}

func (s *Scheduler) workAdd() {
	s.wmu.Lock()
	s.inWork++
	s.wmu.Unlock()
}

func (s *Scheduler) workDone() {
	s.wmu.Lock()
	s.inWork--
	if s.inWork == 0 && s.wcond != nil {
		s.wcond.Broadcast()
	}
	s.wmu.Unlock()
}

// Stats returns a snapshot of scheduler accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted,
		Steals:    s.steals,
		Workers:   s.nWorkers,
		Idle:      len(s.idle),
	}
	s.mu.Unlock()
	st.Parked = s.ParkedCount()
	return st
}

// poll pops the next task, scanning the worker's own shard first and then
// stealing from the others.
func (s *Scheduler) poll(slot int) Task {
	if t := s.shards[slot].pop(); t != nil {
		return t
	}
	for i := 1; i < shardCount; i++ {
		if t := s.shards[(slot+i)&(shardCount-1)].pop(); t != nil {
			s.mu.Lock()
			s.steals++
			s.mu.Unlock()
			return t
		}
	}
	return nil
}

// exec runs one task and retires its work count.
func (s *Scheduler) exec(t Task) {
	defer s.workDone()
	t()
}

// removeIdle takes w off the idle stack; false means a submitter already
// popped it (and a wake signal is, or will be, in its channel).
func (s *Scheduler) removeIdle(w *worker) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeIdleLocked(w)
}

func (s *Scheduler) removeIdleLocked(w *worker) bool {
	for i, cand := range s.idle {
		if cand == w {
			s.idle = append(s.idle[:i], s.idle[i+1:]...)
			return true
		}
	}
	return false
}

// retire atomically deregisters an idle worker and shrinks the pool count,
// so a concurrent Submit either still finds the worker idle (and wakes it)
// or already sees the smaller pool (and spawns a replacement) — never a
// half-retired worker that looks alive but will not serve.
func (s *Scheduler) retire(w *worker) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.removeIdleLocked(w) {
		return false
	}
	s.nWorkers--
	return true
}

// run is the worker loop: drain the queues (stealing across shards), then
// park on the idle stack; retire after idleTimeout without work so an
// inactive scheduler holds zero goroutines.
func (s *Scheduler) run(slot int) {
	w := &worker{wake: make(chan struct{}, 1)}
	timer := time.NewTimer(idleTimeout)
	defer timer.Stop()
	for {
		for t := s.poll(slot); t != nil; t = s.poll(slot) {
			s.exec(t)
		}
		s.mu.Lock()
		s.idle = append(s.idle, w)
		s.mu.Unlock()
		// Close the lost-wakeup window: a task enqueued between the final
		// poll above and the idle registration saw no idle worker to wake.
		if t := s.poll(slot); t != nil {
			// If a submitter popped us in the same window its signal sits
			// buffered in w.wake; the next wait drains it as a spurious
			// wakeup and rescans — never a lost task either way.
			s.removeIdle(w)
			s.exec(t)
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(idleTimeout)
		select {
		case <-w.wake:
		case <-timer.C:
			if !s.retire(w) {
				// A submitter popped us concurrently with the timeout; its
				// signal is in flight. Absorb it and serve one more round.
				<-w.wake
				continue
			}
			// Retired. A task enqueued after our last poll but before the
			// retirement saw a full pool with no idle workers and woke
			// nobody; now that the pool count is down, one final scan
			// catches it (anything later spawns a fresh worker).
			if t := s.poll(slot); t != nil {
				s.mu.Lock()
				s.nWorkers++
				s.mu.Unlock()
				s.exec(t)
				continue
			}
			return
		}
	}
}
