package sched

import "sync"

// The parked-agent table: the volatile half of a parked agent. An entry is
// a few strings and an interface — no goroutine, no stack, no briefcase
// (the continuation lives durably in the site cabinet, owned by the
// kernel). Waking an agent removes its entry and submits its resume as an
// ordinary task, so a million parked agents cost heap, not stacks.
//
// Two independently sharded indexes: by agent key (Wake, the meet-delivery
// path) and by topic (WakeTopic, the mailbox-deposit path). Neither lock
// nests inside the other; the key shard is the single source of truth and
// a topic hit that loses the race to a concurrent Wake is a harmless
// no-op, so wakeups are idempotent.

// Resumer resumes a parked agent. The kernel's Site implements it: Resume
// reloads the agent's continuation briefcase from the cabinet and runs it.
// Resume is called on a pool worker, never on the waker's goroutine.
type Resumer interface {
	Resume(key string)
}

type parkEntry struct {
	key   string
	topic string
	r     Resumer
}

type parkShard struct {
	mu      sync.Mutex
	entries map[string]*parkEntry
}

type topicShard struct {
	mu   sync.Mutex
	keys map[string]map[string]struct{}
}

// Park registers a parked agent under key, to be woken by Wake(key) or —
// when topic is non-empty — by WakeTopic(topic). Re-parking an existing
// key replaces its entry (the agent re-parked with a fresh watermark).
// Park never blocks on the run queues and costs no goroutine.
func (s *Scheduler) Park(key, topic string, r Resumer) {
	e := &parkEntry{key: key, topic: topic, r: r}
	sh := &s.parked[shardOf(key)]
	sh.mu.Lock()
	old := sh.entries[key]
	sh.entries[key] = e
	sh.mu.Unlock()
	if old != nil && old.topic != "" && old.topic != topic {
		s.dropTopic(old.topic, key)
	}
	if topic != "" && (old == nil || old.topic != topic) {
		ts := &s.topics[shardOf(topic)]
		ts.mu.Lock()
		set := ts.keys[topic]
		if set == nil {
			set = make(map[string]struct{})
			ts.keys[topic] = set
		}
		set[key] = struct{}{}
		ts.mu.Unlock()
	}
}

// dropTopic removes key from a topic's waiter set.
func (s *Scheduler) dropTopic(topic, key string) {
	ts := &s.topics[shardOf(topic)]
	ts.mu.Lock()
	if set := ts.keys[topic]; set != nil {
		delete(set, key)
		if len(set) == 0 {
			delete(ts.keys, topic)
		}
	}
	ts.mu.Unlock()
}

// take removes and returns the parked entry for key, if any.
func (s *Scheduler) take(key string) *parkEntry {
	sh := &s.parked[shardOf(key)]
	sh.mu.Lock()
	e := sh.entries[key]
	if e != nil {
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	if e != nil && e.topic != "" {
		s.dropTopic(e.topic, key)
	}
	return e
}

// Wake unparks the agent under key and submits its resume to the run
// queues. It reports whether an agent was actually woken; waking an
// absent (or already-woken) key is a no-op, which is what makes
// concurrent wake sources — a meet delivery racing a mailbox deposit —
// safe without coordination.
func (s *Scheduler) Wake(key string) bool {
	e := s.take(key)
	if e == nil {
		return false
	}
	s.Submit(key, func() { e.r.Resume(e.key) })
	return true
}

// WakeTopic wakes every agent parked on topic, returning how many were
// woken. Each wake is an independent Wake(key), so a racer that already
// took one of the keys just shrinks the count.
func (s *Scheduler) WakeTopic(topic string) int {
	if topic == "" {
		return 0
	}
	ts := &s.topics[shardOf(topic)]
	ts.mu.Lock()
	set := ts.keys[topic]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	ts.mu.Unlock()
	n := 0
	for _, k := range keys {
		if s.Wake(k) {
			n++
		}
	}
	return n
}

// Unpark removes a parked agent without resuming it (retirement); it
// reports whether the key was parked.
func (s *Scheduler) Unpark(key string) bool {
	return s.take(key) != nil
}

// IsParked reports whether key currently has a parked entry.
func (s *Scheduler) IsParked(key string) bool {
	sh := &s.parked[shardOf(key)]
	sh.mu.Lock()
	_, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok
}

// ParkedCount reports the current parked-agent population.
func (s *Scheduler) ParkedCount() int {
	n := 0
	for i := range s.parked {
		sh := &s.parked[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
