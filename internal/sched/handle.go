package sched

import (
	"context"
	"sync"
)

// Handle tracks one asynchronous task. The zero value is ready for use:
// declare one and pass it to the submitting API (core's Async meet
// option); the submitter arms it and the task completes it.
type Handle struct {
	mu   sync.Mutex
	done chan struct{}
	err  error
}

// ch lazily creates the completion channel, so the zero value works and
// Done/Wait may be called before or after submission.
func (h *Handle) ch() chan struct{} {
	h.mu.Lock()
	if h.done == nil {
		h.done = make(chan struct{})
	}
	d := h.done
	h.mu.Unlock()
	return d
}

// Done returns a channel closed when the task has completed.
func (h *Handle) Done() <-chan struct{} { return h.ch() }

// Complete records the task's outcome and releases waiters. The scheduler
// or kernel calls it exactly once per submission; later calls are no-ops
// so a Handle cannot be double-closed.
func (h *Handle) Complete(err error) {
	h.mu.Lock()
	if h.done == nil {
		h.done = make(chan struct{})
	}
	select {
	case <-h.done:
	default:
		h.err = err
		close(h.done)
	}
	h.mu.Unlock()
}

// Err returns the task's error; call it after Done is closed (before
// completion it reports nil).
func (h *Handle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Wait blocks until the task completes (returning its error) or ctx is
// done (returning ctx's error).
func (h *Handle) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-h.ch():
		return h.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
