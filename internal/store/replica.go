package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/folder"
)

// Replica manages a follower's copy of a leader's WAL directory. It is a
// byte sink, not a storage engine: shipped chunks are raw segment bytes
// appended verbatim, so the replica directory is at all times a
// byte-for-byte prefix of the leader's durable files. Promotion is then
// just store.Open on the directory — the same torn-tail-tolerant recovery
// a local restart runs, which is the whole point: replication adds no new
// recovery code to trust.
//
// Replica is not safe for concurrent use; the repl follower serializes
// access (vnet handlers may run concurrently, so it locks around it).

// ErrWatermark reports a shipped chunk that does not land at the replica's
// append position. The follower answers with its actual watermark and the
// leader rewinds; no bytes are lost, the protocol just resynchronizes.
var ErrWatermark = errors.New("store: chunk does not match replica watermark")

// Replica is the follower-side WAL directory writer.
type Replica struct {
	dir  string
	seg  uint64   // current segment (0: none yet)
	size int64    // durable bytes in the current segment, header included
	f    *os.File // current segment, open for append (nil when seg == 0)
	sync bool     // fdatasync each append (false only in tests)
}

// OpenReplica scans (creating if needed) a replica directory and positions
// the write watermark at the end of the last segment's valid prefix. A
// torn tail — the follower crashed mid-append — is truncated exactly like
// local recovery would, so resumed shipping stays byte-aligned with the
// leader; the leader re-ships from the reported watermark.
func OpenReplica(dir string) (*Replica, error) {
	return openReplica(dir, true)
}

// OpenReplicaNoSync is OpenReplica without per-append fdatasync. Tests
// only: an ack from a no-sync replica promises nothing across a crash.
func OpenReplicaNoSync(dir string) (*Replica, error) {
	return openReplica(dir, false)
}

func openReplica(dir string, sync bool) (*Replica, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r := &Replica{dir: dir, sync: sync}
	segs, _, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return r, nil
	}
	last := segs[len(segs)-1]
	valid, err := validPrefix(segPath(dir, last), last)
	if err != nil {
		return nil, err
	}
	if err := os.Truncate(segPath(dir, last), valid); err != nil {
		return nil, fmt.Errorf("store: replica truncate: %w", err)
	}
	f, err := os.OpenFile(segPath(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r.f, r.seg, r.size = f, last, valid
	return r, nil
}

// validPrefix returns the length of the segment's valid prefix: header plus
// every whole CRC-clean record. The scan treats the file as final-segment,
// so a torn tail yields the offset to truncate at rather than an error;
// damage before the tail still refuses (the replica's earlier bytes were
// fdatasynced before they were acked, so they must verify).
func validPrefix(path string, seq uint64) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if len(data) < fileHdrSize {
		// The segment-creating chunk itself was torn; drop the remnant and
		// let the leader re-ship the segment from offset 0.
		return 0, os.Remove(path)
	}
	if got, err := parseFileHeader(data, segMagic); err != nil || got != seq {
		return 0, fmt.Errorf("%w: replica segment %d bad header", ErrCorrupt, seq)
	}
	rest := data[fileHdrSize:]
	off := int64(fileHdrSize)
	for len(rest) > 0 {
		_, next, err := nextRecord(rest, true)
		if errors.Is(err, errTorn) {
			return off, nil
		}
		if err != nil {
			return 0, fmt.Errorf("replica segment %d at %d: %w", seq, off, err)
		}
		off += int64(len(rest) - len(next))
		rest = next
	}
	return off, nil
}

// Watermark returns the replica's append position: the current segment and
// its size in bytes. A fresh replica reports (0, 0).
func (r *Replica) Watermark() (seg uint64, size int64) { return r.seg, r.size }

// Append applies one shipped chunk: seg's bytes [off, off+len(data)) from
// the leader's durable file. The chunk is fdatasynced before Append
// returns, so acking it never promises bytes the replica could lose.
//
//   - off == current watermark: plain append.
//   - off == 0, seg > current: a new segment begins (its first chunk
//     carries the 16-byte file header); the previous segment is sealed.
//   - chunk entirely below the watermark: duplicate delivery (the leader
//     resent after a lost ack) — a no-op, because shipped bytes are
//     verbatim leader bytes and therefore identical.
//   - overlapping chunk: the already-held prefix is trimmed, the rest
//     appends.
//
// Anything else is ErrWatermark; the caller replies with Watermark() and
// the leader rewinds.
func (r *Replica) Append(seg uint64, off int64, data []byte) error {
	if seg == r.seg && off < r.size {
		if off+int64(len(data)) <= r.size {
			return nil // pure duplicate
		}
		data = data[r.size-off:]
		off = r.size
	}
	switch {
	case r.f != nil && seg == r.seg && off == r.size:
		return r.append(data)
	case r.f != nil && seg == r.seg+1 && off == 0:
		// Strictly the next segment: a larger jump would write a gap the
		// promotion recovery must refuse.
		return r.startSegment(seg, data)
	case r.f == nil && off == 0 && (r.seg == 0 || seg == r.seg):
		// Fresh replica, or the first chunk of the segment a just-installed
		// snapshot points at (InstallSnapshot set seg with no file yet).
		return r.startSegment(seg, data)
	case seg < r.seg:
		return nil // duplicate from a sealed segment
	default:
		return fmt.Errorf("%w: got seg=%d off=%d, watermark seg=%d size=%d",
			ErrWatermark, seg, off, r.seg, r.size)
	}
}

// startSegment begins segment seq with its first chunk, which must carry a
// valid file header. The previous segment file is closed; its bytes are
// already durable.
func (r *Replica) startSegment(seq uint64, data []byte) error {
	if len(data) < fileHdrSize {
		return fmt.Errorf("%w: new segment %d chunk lacks header", ErrWatermark, seq)
	}
	if got, err := parseFileHeader(data, segMagic); err != nil || got != seq {
		return fmt.Errorf("%w: new segment %d chunk bad header", ErrCorrupt, seq)
	}
	f, err := os.OpenFile(segPath(r.dir, seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: replica segment: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: replica write: %w", err)
	}
	if r.sync {
		if err := fdatasync(f); err != nil {
			f.Close()
			return fmt.Errorf("store: replica sync: %w", err)
		}
		if err := syncDir(r.dir); err != nil {
			f.Close()
			return fmt.Errorf("store: replica dir sync: %w", err)
		}
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f, r.seg, r.size = f, seq, int64(len(data))
	return nil
}

// append extends the current segment.
func (r *Replica) append(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if _, err := r.f.Write(data); err != nil {
		return fmt.Errorf("store: replica write: %w", err)
	}
	if r.sync {
		if err := fdatasync(r.f); err != nil {
			return fmt.Errorf("store: replica sync: %w", err)
		}
	}
	r.size += int64(len(data))
	return nil
}

// InstallSnapshot replaces the replica's contents with a shipped snapshot:
// the briefcase is written as snapshot seq (durable before the old files
// go), every older segment and snapshot is removed, and the watermark
// resets to (seq, 0) — the leader ships segment seq from byte 0 next. A
// snapshot at or below the current watermark segment is a stale duplicate
// and is ignored.
func (r *Replica) InstallSnapshot(seq uint64, b *folder.Briefcase) error {
	if seq <= r.seg {
		return nil
	}
	enc := appendFileHeader(make([]byte, 0, fileHdrSize+folder.EncodedSize(b)), snapMagic, seq)
	enc = folder.AppendBriefcase(enc, b)
	if err := WriteFileAtomic(snapPath(r.dir, seq), r.sync, func(f io.Writer) error {
		_, err := f.Write(enc)
		return err
	}); err != nil {
		return fmt.Errorf("store: replica snapshot: %w", err)
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	segs, snaps, err := scanDir(r.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		os.Remove(segPath(r.dir, s))
	}
	for _, s := range snaps {
		if s < seq {
			os.Remove(snapPath(r.dir, s))
		}
	}
	r.seg, r.size = seq, 0
	// Snapshot seq claims coverage through segment seq-1 but segment seq
	// does not exist yet; store.Open handles exactly this shape (a
	// snapshot whose follow-on segment never became durable) by starting a
	// fresh segment, so even a promotion right here is safe.
	return nil
}

// Reset wipes the replica directory. The leader demands it when the
// replica's history diverged (e.g. the replica is ahead of a leader that
// lost its disk); everything re-ships from scratch.
func (r *Replica) Reset() error {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		os.Remove(filepath.Join(r.dir, e.Name()))
	}
	r.seg, r.size = 0, 0
	return nil
}

// Close releases the replica's file handle. The directory remains valid
// for promotion or a later OpenReplica.
func (r *Replica) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
