package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/folder"
)

// ErrWALClosed is returned by Sync once Close has run: a closed WAL
// silently refuses new records, so claiming durability for anything
// recorded afterwards would be a lie. Shut the site's traffic down before
// closing its WAL (tacomad does: endpoint close, quiesce, then Close).
var ErrWALClosed = errors.New("store: wal closed")

// Options tunes a WAL.
type Options struct {
	// SyncEveryRecord makes every recorded mutation write + fdatasync
	// inline before the mutation returns — the naive fsync-per-mutation
	// baseline. It exists to quantify the group-commit gap (the tacobench
	// durable-naive lane); production use wants the default group commit.
	SyncEveryRecord bool
	// NoSync skips fdatasync entirely (records are still written). For
	// tests that exercise log structure without paying disk latency;
	// provides no crash durability.
	NoSync bool
	// CompactRatio triggers background compaction when the live segment
	// holds more than CompactRatio× the last snapshot's bytes.
	// Default 4.
	CompactRatio int
	// CompactMinBytes is the floor below which the segment is never
	// compacted, whatever the ratio says. Default 1 MiB.
	CompactMinBytes int64
	// Logf, if non-nil, receives operational log lines (compaction results,
	// sticky failures).
	Logf func(format string, args ...any)
	// OnFailure, if non-nil, is invoked exactly once — from its own
	// goroutine — when the WAL takes its first sticky failure. Daemons use
	// it to raise a loud alarm the moment durability is lost, instead of
	// discovering the wreck at the next explicit Sync.
	OnFailure func(err error)
}

func (o *Options) setDefaults() {
	if o.CompactRatio <= 0 {
		o.CompactRatio = 4
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Stats is a snapshot of a WAL's accounting.
type Stats struct {
	// Records counts redo records accepted since Open.
	Records int64
	// Syncs counts fdatasync barriers issued. Records/Syncs is the group
	// commit batching factor.
	Syncs int64
	// Compactions counts completed snapshot compactions.
	Compactions int64
	// SegmentBytes is the record payload currently in the live segment.
	SegmentBytes int64
	// SnapshotBytes is the size of the newest durable snapshot.
	SnapshotBytes int64
	// SyncFailures counts write/sync errors. Failure is sticky, so this is
	// 0 or 1 in practice; it exists so monitors can alert on >0 without
	// having to provoke a Sync.
	SyncFailures int64
	// LastSyncError is the sticky failure's message, "" while healthy.
	LastSyncError string
	// BatchHist is the group-commit batch-size distribution:
	// BatchHist[i] counts fdatasync barriers whose record batch fell in
	// bucket i of batchHistBounds — 0, 1, 2, 3-4, 5-8, 9-16, 17-32,
	// 33-64, 65+ records per sync. Records/Syncs gives the mean batching
	// factor; the histogram shows its shape (a durable lane stuck at
	// batch=1 is paying one fsync per record no matter what the mean
	// says), which is what the group-commit barrier work needs to see.
	BatchHist [numBatchBuckets]int64
}

// batchHistBounds[i] is the inclusive upper bound of BatchHist bucket i;
// the last bucket is unbounded.
var batchHistBounds = [numBatchBuckets - 1]int64{0, 1, 2, 4, 8, 16, 32, 64}

const numBatchBuckets = 9

// batchBucket maps a records-per-sync count to its BatchHist bucket.
func batchBucket(n int64) int {
	for i, b := range batchHistBounds {
		if n <= b {
			return i
		}
	}
	return numBatchBuckets - 1
}

// FormatBatchHist renders the non-empty BatchHist buckets as
// "bucket:count" pairs, e.g. "1:3 5-8:12 65+:1". Empty when no syncs have
// happened.
func (s Stats) FormatBatchHist() string {
	labels := [numBatchBuckets]string{
		"0", "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+",
	}
	var b strings.Builder
	for i, n := range s.BatchHist {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", labels[i], n)
	}
	return b.String()
}

// WAL is a write-ahead log bound to one file cabinet. It implements
// folder.Journal: attach it with FileCabinet.SetJournal (Open does this)
// and every cabinet mutation appends a redo record to the in-memory tail;
// Sync is the durability barrier that group-commits the tail to disk.
//
// Group commit has the same first-writer-flushes shape as the TCP
// transport's write coalescer: the first barrier caller that finds no sync
// in flight becomes the flusher and syncs every record recorded so far —
// including other goroutines' — in one write + fdatasync; callers that
// arrive while a sync is in flight wait for the next cycle and share it.
// N concurrent meets therefore pay ~1 fsync, not N.
//
// A write or sync failure is sticky: the WAL stops accepting records,
// every current and future Sync returns the error, and the daemon is
// expected to treat it as fatal for durability. The in-memory cabinet
// keeps working.
type WAL struct {
	dir string
	cab *folder.FileCabinet
	opt Options

	mu   sync.Mutex
	cond *sync.Cond // signals sync-cycle completion (and compaction exit)

	f        *os.File // live segment, opened for append
	seg      uint64   // live segment sequence number
	buf      []byte   // records recorded but not yet written
	spare    []byte   // recycled buf backing array
	seq      uint64   // last record number assigned
	synced   uint64   // last record number durably on disk
	syncing  bool     // a flush cycle is in flight
	closed   bool
	err      error // sticky first failure
	segBytes int64 // record bytes durably in the live segment

	snapBytes  int64  // size of the newest snapshot's briefcase body
	snapSeq    uint64 // sequence of the newest durable snapshot (0: none)
	firstSeg   uint64 // oldest segment still on disk
	compacting bool

	notify chan<- struct{} // replication shipper wakeup (nonblocking sends)

	stRecords     atomic.Int64
	stSyncs       atomic.Int64
	stCompactions atomic.Int64
	stFailures    atomic.Int64
	stBatchHist   [numBatchBuckets]int64 // guarded by mu (flush + Stats)
}

// maxRetainedBuf bounds the recycled record buffer so one huge load record
// does not pin its allocation forever.
const maxRetainedBuf = 1 << 20

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.bin", seq))
}

// Open recovers the WAL directory's snapshot + log into cab (which must be
// the recovering process's otherwise-untouched cabinet), then attaches the
// returned WAL as the cabinet's journal so subsequent mutations are logged.
// A missing or empty directory starts a fresh log.
func Open(dir string, cab *folder.FileCabinet, opt Options) (*WAL, error) {
	opt.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &WAL{dir: dir, cab: cab, opt: opt}
	w.cond = sync.NewCond(&w.mu)
	if err := w.recover(); err != nil {
		return nil, err
	}
	cab.SetJournal(w)
	return w, nil
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash. Platforms that refuse directory syncs are tolerated
// (see fsync_other.go); exported so other atomic-rename writers (tacomad's
// cabinet flush) share one platform-aware implementation.
func SyncDir(dir string) error { return syncDir(dir) }

// WriteFileAtomic writes a file with the crash-safe discipline the engine
// uses for snapshots: temp file, write, fdatasync, rename, parent-directory
// fsync — a crash leaves either the old file or the new, never a
// half-written one. sync=false skips both syncs (throwaway/test data). The
// temp file is removed on every failure path. Exported so tacomad's cabinet
// flush shares this implementation instead of hand-rolling the sequence.
func WriteFileAtomic(path string, sync bool, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := fdatasync(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if !sync {
		return nil
	}
	return syncDir(filepath.Dir(path))
}

// Err reports the sticky failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns a snapshot of the WAL's accounting.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	seg, snap := w.segBytes, w.snapBytes
	hist := w.stBatchHist
	lastErr := ""
	if w.err != nil {
		lastErr = w.err.Error()
	}
	w.mu.Unlock()
	return Stats{
		Records:       w.stRecords.Load(),
		Syncs:         w.stSyncs.Load(),
		Compactions:   w.stCompactions.Load(),
		SegmentBytes:  seg,
		SnapshotBytes: snap,
		SyncFailures:  w.stFailures.Load(),
		LastSyncError: lastErr,
		BatchHist:     hist,
	}
}

// SetSyncNotify installs a wakeup channel that receives a nonblocking send
// after every successful sync cycle and compaction — state changes a
// replication shipper cares about. A nil channel disables notification.
// The channel should be buffered (capacity 1 suffices: a coalesced wakeup
// means "re-read TailView", not "one event each").
func (w *WAL) SetSyncNotify(ch chan<- struct{}) {
	w.mu.Lock()
	w.notify = ch
	w.mu.Unlock()
}

// notifyLocked pokes the sync-notify channel, dropping the wakeup if one is
// already pending. Called with w.mu held.
func (w *WAL) notifyLocked() {
	if w.notify == nil {
		return
	}
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// --- folder.Journal (called under the mutated shard's write lock) ---

// usableLocked reports whether the WAL still accepts records.
func (w *WAL) usableLocked() bool { return w.err == nil && !w.closed }

// RecordAppend logs an element append (and TestAndAppend's append half).
func (w *WAL) RecordAppend(name string, e []byte) {
	w.mu.Lock()
	if !w.usableLocked() {
		w.mu.Unlock()
		return
	}
	var start int
	w.buf, start = beginRecord(w.buf, opAppend)
	w.buf = appendName(w.buf, name)
	w.buf = append(w.buf, e...)
	w.sealRecordLocked(start) // unlocks
}

// RecordPut logs a wholesale folder replacement.
func (w *WAL) RecordPut(name string, f *folder.Folder) {
	w.mu.Lock()
	if !w.usableLocked() {
		w.mu.Unlock()
		return
	}
	var start int
	w.buf, start = beginRecord(w.buf, opPut)
	w.buf = appendName(w.buf, name)
	w.buf = folder.AppendFolder(w.buf, f)
	w.sealRecordLocked(start) // unlocks
}

// RecordDequeue logs removal of a folder's first element.
func (w *WAL) RecordDequeue(name string) { w.recordNameOnly(opDequeue, name) }

// RecordDelete logs removal of an entire folder.
func (w *WAL) RecordDelete(name string) { w.recordNameOnly(opDelete, name) }

func (w *WAL) recordNameOnly(op byte, name string) {
	w.mu.Lock()
	if !w.usableLocked() {
		w.mu.Unlock()
		return
	}
	var start int
	w.buf, start = beginRecord(w.buf, op)
	w.buf = appendName(w.buf, name)
	w.sealRecordLocked(start) // unlocks
}

// RecordLoad logs a wholesale cabinet replacement.
func (w *WAL) RecordLoad(enc []byte) {
	w.mu.Lock()
	if !w.usableLocked() {
		w.mu.Unlock()
		return
	}
	var start int
	w.buf, start = beginRecord(w.buf, opLoad)
	w.buf = append(w.buf, enc...)
	w.sealRecordLocked(start) // unlocks
}

// sealRecordLocked finishes the framed record started at start, assigns its
// sequence number, and — in naive mode — syncs it inline. Releases w.mu.
func (w *WAL) sealRecordLocked(start int) {
	finishRecord(w.buf, start)
	w.seq++
	w.stRecords.Add(1)
	if w.opt.SyncEveryRecord && w.err == nil {
		// The naive baseline: one unconditional write + fdatasync per
		// record, serialized — even when a concurrent flush already wrote
		// these bytes, exactly as fsync-per-mutation code behaves. No
		// gather, no sharing; this is the mode group commit is measured
		// against.
		for w.syncing {
			w.cond.Wait()
		}
		// Re-check after the wait: a Close that won the wakeup race has
		// already synced this record in its final cycle and nilled the
		// segment file — flushing here would poison the WAL with a
		// spurious EBADF.
		if w.usableLocked() {
			w.syncing = true
			w.flushLocked()
			w.syncing = false
			w.cond.Broadcast()
		}
	}
	w.mu.Unlock()
}

// --- group commit ---

// Sync is the durability barrier: it returns once every mutation recorded
// before the call is on stable storage, or with the sticky error. A clean
// WAL (nothing pending) returns immediately without touching the disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.seq
	for w.err == nil && w.synced < target {
		if w.syncing {
			w.cond.Wait() // share the in-flight (or next) cycle
			continue
		}
		w.runSyncCycleLocked()
	}
	// The sticky error wins even when nothing was pending: once the WAL
	// has failed — and likewise once it is closed — new records are being
	// refused (seq frozen), so "synced >= target" is vacuous; returning
	// nil would acknowledge durability for mutations that were never
	// journaled.
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrWALClosed
	}
	return nil
}

// runSyncCycleLocked makes the caller the flusher for one cycle: it writes
// and fdatasyncs everything recorded so far, then wakes the waiters that
// accumulated meanwhile. Called with w.mu held; w.mu is released around the
// disk I/O and re-held on return.
//
// Before paying the sync, the flusher yields the processor once — the same
// gather step as the TCP transport's write coalescer: meets that are
// already runnable (typically the waiters the previous cycle just woke)
// get to finish their mutations and join this cycle as waiters, so a full
// complement of concurrent meets shares every fdatasync instead of
// trickling in one sync behind. A lone committer's yield returns
// immediately and costs nothing.
func (w *WAL) runSyncCycleLocked() {
	w.syncing = true
	w.mu.Unlock()
	runtime.Gosched() // gather: let runnable recorders join this cycle
	w.mu.Lock()
	w.flushLocked()
	w.syncing = false
	w.cond.Broadcast()
}

// flushLocked writes the pending record tail to the live segment and
// fdatasyncs it. Called with w.mu held and w.syncing true; unlocks around
// the I/O.
func (w *WAL) flushLocked() {
	batch := w.buf
	target := w.seq
	pending := int64(target - w.synced) // records this barrier commits
	if w.spare != nil {
		w.buf, w.spare = w.spare[:0], nil
	} else {
		w.buf = nil
	}
	f := w.f
	w.mu.Unlock()

	var err error
	if len(batch) > 0 {
		if _, err = f.Write(batch); err != nil {
			err = fmt.Errorf("store: segment write: %w", err)
		}
	}
	if err == nil && !w.opt.NoSync {
		if serr := fdatasync(f); serr != nil {
			err = fmt.Errorf("store: segment sync: %w", serr)
		}
	}

	w.mu.Lock()
	if err != nil {
		w.failLocked(err)
	} else {
		w.synced = target
		w.segBytes += int64(len(batch))
		w.stSyncs.Add(1)
		w.stBatchHist[batchBucket(pending)]++
		if len(batch) > 0 {
			w.notifyLocked()
		}
		w.maybeCompactLocked()
	}
	if cap(batch) <= maxRetainedBuf && w.spare == nil {
		w.spare = batch[:0]
	}
}

// failLocked records the sticky failure. Durability is gone from here on:
// Sync reports the error, new records are refused, the in-memory cabinet
// keeps serving.
func (w *WAL) failLocked(err error) {
	if w.err == nil {
		w.err = err
		w.stFailures.Add(1)
		w.opt.logf("store: WAL failed, durability lost: %v", err)
		if cb := w.opt.OnFailure; cb != nil {
			// Own goroutine: the callback may call back into the WAL
			// (Stats, Sync) or block on logging without holding w.mu.
			go cb(err)
		}
	}
}

// Close flushes the tail, syncs, and closes the segment. The WAL accepts no
// records afterwards (the cabinet keeps working in memory); detach it from
// long-lived cabinets if mutations continue past Close.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	for w.syncing || w.compacting {
		w.cond.Wait()
	}
	if w.err == nil && w.synced < w.seq {
		w.runSyncCycleLocked()
	}
	err := w.err
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	return err
}

// createSegment creates segment seq with a durable header (file and
// directory synced) and returns it ready for appends. Reads only immutable
// WAL state, so it may run without w.mu — compaction creates the next
// segment before entering its locked rotation window.
func (w *WAL) createSegment(seq uint64) (*os.File, error) {
	f, err := os.OpenFile(segPath(w.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	hdr := appendFileHeader(make([]byte, 0, fileHdrSize), segMagic, seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: segment header: %w", err)
	}
	if !w.opt.NoSync {
		if err := fdatasync(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: segment header sync: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: segment dir sync: %w", err)
		}
	}
	return f, nil
}

// openSegmentLocked creates segment seq and swaps it in as the live
// segment. Called with w.mu held (recovery only, where nothing contends).
func (w *WAL) openSegmentLocked(seq uint64) error {
	f, err := w.createSegment(seq)
	if err != nil {
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = f
	w.seg = seq
	w.segBytes = 0
	return nil
}
