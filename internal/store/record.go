// Package store implements the durable-cabinet storage engine: a
// write-ahead log that gives every cabinet mutation crash durability at
// near-memory speed.
//
// The engine journals redo records for each mutation (hooked into
// folder.FileCabinet via the folder.Journal interface), group-commits
// concurrent transactions into one fdatasync, folds the log into a snapshot
// in the background once it outgrows the live data, and replays
// snapshot + log tail on recovery. See DESIGN.md § Durable cabinets.
//
// # On-disk layout
//
// A WAL directory holds numbered segment files and snapshot files:
//
//	wal-%016x.log   segment K: header, then CRC-framed redo records
//	snap-%016x.bin  snapshot K: the cabinet image before segment K's records
//
// Recovery loads the highest snapshot K (empty cabinet if none) and replays
// segments K, K+1, ... in order. Compaction rotates to segment K+1 at a
// consistent cabinet snapshot, writes snapshot K+1 (temp file, fsync,
// rename, directory fsync), then deletes segments ≤ K; old files are only
// removed once the snapshot that supersedes them is durable.
//
// # Record framing
//
//	record  := size:uint32le crc:uint32le payload
//	payload := op:byte body
//
// crc is CRC-32C over payload. Bodies reuse the folder codec's conventions
// (uvarint-prefixed names, canonical folder/briefcase encodings):
//
//	opAppend  name elem-bytes         element appended to folder
//	opPut     name folder-encoding    folder replaced wholesale
//	opDequeue name                    first element removed
//	opDelete  name                    folder removed
//	opLoad    briefcase-encoding      entire cabinet replaced
//
// A torn final record (truncated by a crash mid-write, detected by length or
// CRC at end-of-log) is silently truncated; a corrupt record anywhere else
// fails recovery — silent loss of acknowledged, synced data is never OK, but
// a tail the engine never acknowledged is exactly what "crash during write"
// looks like.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment and snapshot file headers. Both are 16 bytes: an 8-byte magic and
// the file's sequence number, little-endian.
const (
	segMagic    = "TACWAL1\n"
	snapMagic   = "TACSNAP1"
	fileHdrSize = 16
)

// Redo operation codes (see the package comment for bodies).
const (
	opAppend byte = iota + 1
	opPut
	opDequeue
	opDelete
	opLoad
)

// recordHdrSize is the size + crc framing prefix of every record.
const recordHdrSize = 8

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode/recovery errors.
var (
	// ErrCorrupt reports a record that fails its CRC or framing somewhere
	// other than the end of the final segment. Recovery refuses the log
	// rather than silently dropping acknowledged data.
	ErrCorrupt = errors.New("store: corrupt journal")
	// errTorn reports a record truncated or mangled at the very end of the
	// final segment — the signature of a crash mid-append. Internal:
	// recovery truncates the tail and proceeds.
	errTorn = errors.New("store: torn final record")
)

// appendFileHeader appends a segment or snapshot header.
func appendFileHeader(dst []byte, magic string, seq uint64) []byte {
	dst = append(dst, magic...)
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// parseFileHeader validates a file header and returns its sequence number.
func parseFileHeader(data []byte, magic string) (uint64, error) {
	if len(data) < fileHdrSize || string(data[:8]) != magic {
		return 0, fmt.Errorf("%w: bad file header", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(data[8:16]), nil
}

// finishRecord back-fills the size + crc header of the record whose payload
// starts at start+recordHdrSize in buf. Callers reserve the header with
// beginRecord, append the payload, then call finishRecord.
func finishRecord(buf []byte, start int) {
	payload := buf[start+recordHdrSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
}

// beginRecord reserves a record header and appends the opcode, returning the
// extended buffer and the record's start offset.
func beginRecord(buf []byte, op byte) ([]byte, int) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, op)
	return buf, start
}

// appendName appends a uvarint-prefixed folder name.
func appendName(dst []byte, name string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

// nextRecord parses one framed record at the head of data, returning the
// payload and the remainder. final marks the last segment of the log: a
// record truncated by end-of-data, or failing its CRC exactly at
// end-of-data, is reported as errTorn there (the caller truncates); any
// other mismatch is ErrCorrupt.
func nextRecord(data []byte, final bool) (payload, rest []byte, err error) {
	if len(data) < recordHdrSize {
		if final {
			return nil, nil, errTorn
		}
		return nil, nil, fmt.Errorf("%w: truncated record header", ErrCorrupt)
	}
	size := binary.LittleEndian.Uint32(data)
	want := binary.LittleEndian.Uint32(data[4:])
	if size == 0 && want == 0 {
		// No real record has size 0 (every payload carries an opcode). An
		// all-zero header at the log tail is what a crash that persisted
		// the file size before the data blocks leaves behind (zero-extended
		// tail): torn, not corrupt. Mid-log it is corruption.
		if final {
			return nil, nil, errTorn
		}
		return nil, nil, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	body := data[recordHdrSize:]
	if uint64(len(body)) < uint64(size) {
		if final {
			return nil, nil, errTorn
		}
		return nil, nil, fmt.Errorf("%w: record overruns segment", ErrCorrupt)
	}
	payload = body[:size]
	rest = body[size:]
	if crc32.Checksum(payload, castagnoli) != want {
		if final && allZero(rest) {
			// The mangled record is the last real thing in the log —
			// either byte-exactly last, or followed only by the zeros of a
			// zero-extended multi-record batch whose fdatasync never
			// returned (nothing after this offset was ever acknowledged):
			// a torn write, not corruption of acknowledged data. Non-zero
			// bytes after the failure mean acknowledged records follow, so
			// that case still refuses.
			return nil, nil, errTorn
		}
		return nil, nil, fmt.Errorf("%w: record CRC mismatch", ErrCorrupt)
	}
	// size==0 cannot reach here: the zero-header branch above consumed
	// size==0 && crc==0, and any other crc fails the checksum of the empty
	// payload.
	return payload, rest, nil
}

// allZero reports whether every byte of b is zero (a zero-extended tail).
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// parseName consumes a uvarint-prefixed name from a record body.
func parseName(body []byte) (name string, rest []byte, err error) {
	n, used := binary.Uvarint(body)
	if used <= 0 || uint64(len(body[used:])) < n {
		return "", nil, fmt.Errorf("%w: bad name length", ErrCorrupt)
	}
	return string(body[used : used+int(n)]), body[used+int(n):], nil
}
