package store

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/folder"
)

// Leader-side replication support: a shipper (internal/repl) reads durable
// WAL bytes through this API and sends them to a follower verbatim. The
// invariant everything rests on is that the follower's files are a
// byte-for-byte prefix of the leader's durable files — shipped chunks carry
// raw segment bytes (CRC framing included), never re-encoded records, so
// the follower's promotion is exactly a local recovery.

// ErrSegmentGone reports that a requested segment no longer exists: a
// compaction pruned it while the shipper was (or before it started)
// reading. The shipper reacts by re-reading TailView and switching to
// snapshot catch-up.
var ErrSegmentGone = errors.New("store: segment pruned")

// TailView is a consistent snapshot of the WAL's durable extent, the
// coordinates a shipper plans against.
type TailView struct {
	// Seg is the live segment's sequence number.
	Seg uint64
	// Size is the live segment's durable byte size, file header included.
	// Bytes recorded but not yet fdatasynced are excluded: shipping them
	// would let the follower get ahead of the leader's own durability.
	Size int64
	// FirstSeg is the oldest segment still on disk. A follower whose
	// watermark segment is below it (and below the snapshot) cannot be
	// caught up by log shipping alone.
	FirstSeg uint64
	// SnapSeq is the newest durable snapshot's sequence, 0 when none
	// exists.
	SnapSeq uint64
}

// Tail returns the WAL's current durable extent.
func (w *WAL) Tail() TailView {
	w.mu.Lock()
	defer w.mu.Unlock()
	return TailView{
		Seg:      w.seg,
		Size:     fileHdrSize + w.segBytes,
		FirstSeg: w.firstSeg,
		SnapSeq:  w.snapSeq,
	}
}

// ReadSegmentDurable reads up to max bytes of segment seq starting at byte
// offset off (0 includes the 16-byte file header), clipped to the durable
// extent. sealed reports that the durable extent of seq ends at
// off+len(chunk) and a newer segment exists — the shipper should advance to
// seq+1 at offset 0. A chunk may end mid-record; the follower appends bytes
// blindly and only the recovery path interprets them, so record boundaries
// do not matter on the wire.
//
// A pruned segment returns ErrSegmentGone. Reading at the durable frontier
// of the live segment returns an empty chunk (nothing to ship yet).
func (w *WAL) ReadSegmentDurable(seq uint64, off int64, max int) (chunk []byte, sealed bool, err error) {
	if max <= 0 || off < 0 {
		return nil, false, fmt.Errorf("store: bad read bounds off=%d max=%d", off, max)
	}
	w.mu.Lock()
	live := w.seg
	first := w.firstSeg
	durable := fileHdrSize + w.segBytes
	w.mu.Unlock()
	if seq < first {
		return nil, false, fmt.Errorf("%w: %d < first %d", ErrSegmentGone, seq, first)
	}
	if seq > live {
		return nil, false, fmt.Errorf("store: segment %d beyond live %d", seq, live)
	}

	f, err := os.Open(segPath(w.dir, seq))
	if err != nil {
		if os.IsNotExist(err) {
			// Pruned between the bounds check and the open.
			return nil, false, fmt.Errorf("%w: %d", ErrSegmentGone, seq)
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	limit := durable
	if seq != live {
		// A sealed segment is durable end to end: rotation flushes the old
		// segment before the swap, and it never grows again.
		st, err := f.Stat()
		if err != nil {
			return nil, false, fmt.Errorf("store: %w", err)
		}
		limit = st.Size()
	}
	// (For the live segment, the file may have rotated away between the
	// bounds snapshot and the open; it then holds at least `durable`
	// bytes, so the clip below stays correct.)
	if off > limit {
		return nil, false, fmt.Errorf("store: segment %d offset %d beyond durable %d", seq, off, limit)
	}
	n := limit - off
	if n > int64(max) {
		n = int64(max)
	}
	chunk = make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), chunk); err != nil {
		return nil, false, fmt.Errorf("store: segment %d read: %w", seq, err)
	}
	return chunk, seq != live && off+n == limit, nil
}

// LagFrom returns how many durable log bytes lie beyond position
// (seg, size) — a follower's replication lag. A position at or past the
// durable frontier reports 0; a position behind the pruned log reports the
// distance from the oldest surviving segment (the follower needs snapshot
// catch-up, so the number is a floor, not an exact byte count).
func (w *WAL) LagFrom(seg uint64, size int64) int64 {
	tail := w.Tail()
	if seg > tail.Seg || (seg == tail.Seg && size >= tail.Size) {
		return 0
	}
	if seg < tail.FirstSeg {
		seg, size = tail.FirstSeg, 0
	}
	if seg == tail.Seg {
		return tail.Size - size
	}
	lag := tail.Size
	for s := seg; s < tail.Seg; s++ {
		st, err := os.Stat(segPath(w.dir, s))
		if err != nil {
			continue // pruned under us; undercounts, never overcounts
		}
		lag += st.Size()
	}
	return lag - size
}

// SnapshotForShip returns the newest durable snapshot's sequence and its
// decoded briefcase, for catching up a follower that fell behind the
// pruned log. Racing compaction is handled by retrying against the newer
// snapshot when the one being read is pruned mid-flight. Returns an error
// when no snapshot exists (the follower can then be served from segment
// FirstSeg directly).
func (w *WAL) SnapshotForShip() (uint64, *folder.Briefcase, error) {
	for {
		w.mu.Lock()
		seq := w.snapSeq
		w.mu.Unlock()
		if seq == 0 {
			return 0, nil, errors.New("store: no snapshot to ship")
		}
		body, err := readSnapshot(snapPath(w.dir, seq), seq)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Compaction pruned this snapshot after publishing a newer
				// one; go read that instead.
				continue
			}
			return 0, nil, err
		}
		b, err := folder.DecodeBriefcase(body)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: snapshot %d: %v", ErrCorrupt, seq, err)
		}
		return seq, b, nil
	}
}
