//go:build !linux

package store

import "os"

// fdatasync falls back to a full fsync where fdatasync(2) is unavailable.
func fdatasync(f *os.File) error { return f.Sync() }

// syncDir fsyncs a directory; best-effort on platforms where directory
// handles cannot be synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some platforms refuse Sync on directories; rename durability is
		// then at the filesystem's mercy, as it was before this engine.
		return nil
	}
	return nil
}
