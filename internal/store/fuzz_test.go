package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/folder"
)

// cabImage returns a cabinet's canonical full-contents encoding (encode is
// deterministic, so equal cabinets produce equal images).
func cabImage(tb testing.TB, cab *folder.FileCabinet) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := cab.Flush(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// checkIndexConsistency asserts the cabinet's O(1) membership index agrees
// with the folder contents it was rebuilt for.
func checkIndexConsistency(tb testing.TB, cab *folder.FileCabinet) {
	tb.Helper()
	for _, name := range cab.Names() {
		f := cab.Snapshot(name)
		if cab.FolderLen(name) != f.Len() {
			tb.Fatalf("folder %q: FolderLen %d vs snapshot %d", name, cab.FolderLen(name), f.Len())
		}
		for i := 0; i < f.Len(); i++ {
			e, err := f.At(i)
			if err != nil {
				tb.Fatal(err)
			}
			if !cab.Contains(name, e) {
				tb.Fatalf("folder %q: element %d missing from index", name, i)
			}
		}
	}
}

// FuzzJournalReplay checks the recovery safety property the daemon relies
// on: whatever truncation or bit damage the log suffers, Open never panics,
// and when it succeeds the recovered cabinet is exactly the state after
// some prefix of the originally applied mutations, with a consistent
// membership index. (Damage behind the tail is allowed — and expected — to
// make Open refuse instead.)
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint32(0), false, false)
	f.Add([]byte{0, 1, 2, 1, 2, 3, 2, 3, 4, 3, 4, 5, 4, 5, 6}, uint16(9), uint32(77), true, false)
	f.Add([]byte{4, 0, 9, 4, 0, 9, 0, 1, 1, 2, 1, 0, 3, 2, 0}, uint16(30), uint32(12), false, true)
	f.Add([]byte{1, 1, 200, 0, 2, 100, 2, 1, 0, 3, 3, 0}, uint16(5), uint32(5), true, true)
	f.Fuzz(func(t *testing.T, script []byte, cut uint16, flip uint32, doCut, doFlip bool) {
		dir := t.TempDir()
		cab := folder.NewCabinet()
		// CompactMinBytes is huge so the whole history stays in segment 1.
		w, err := Open(dir, cab, Options{NoSync: true, CompactMinBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}

		// Apply a scripted mutation sequence, remembering the cabinet image
		// after every step (torn-tail truncation must land on one of them).
		images := [][]byte{cabImage(t, cab)}
		for i := 0; i+2 < len(script) && len(images) < 32; i += 3 {
			op, fb, vb := script[i], script[i+1], script[i+2]
			name := fmt.Sprintf("F%d", fb%4)
			val := []byte{vb, fb, op}
			switch op % 5 {
			case 0:
				cab.Append(name, val)
			case 1:
				cab.Put(name, folder.Of(val, []byte{op, vb}))
			case 2:
				cab.Dequeue(name) // may fail on empty: no record, no state change
			case 3:
				cab.Delete(name)
			case 4:
				cab.TestAndAppend(name, val)
			}
			images = append(images, cabImage(t, cab))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Damage the log.
		seg := segPath(dir, 1)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if doCut {
			data = data[:int(cut)%(len(data)+1)]
		}
		if doFlip && len(data) > 0 {
			data[int(flip)%len(data)] ^= 1 << (flip % 8)
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Recover: refusal is fine, a wrong answer is not.
		cab2 := folder.NewCabinet()
		w2, err := Open(dir, cab2, Options{NoSync: true, CompactMinBytes: 1 << 30})
		if err != nil {
			return
		}
		defer w2.Close()
		got := cabImage(t, cab2)
		for _, im := range images {
			if bytes.Equal(got, im) {
				checkIndexConsistency(t, cab2)
				return
			}
		}
		t.Fatalf("recovered cabinet (%d bytes) matches no prefix of the %d applied states",
			len(got), len(images))
	})
}
