package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/folder"
)

// recover rebuilds the cabinet from the directory's snapshot + log tail and
// leaves the WAL positioned to append to the final segment. Invariants:
//
//   - The highest snapshot K is authoritative: it is only written after its
//     contents are durable, and the segments it supersedes are only deleted
//     after that. Recovery loads it and replays segments K, K+1, ... in
//     order.
//   - A record that fails its CRC (or is cut short) at the very tail of the
//     final segment is a torn write from the crash: everything before it
//     was acknowledged and is kept, the tail is truncated, and the engine
//     appends from there.
//   - Any other damage — a bad record mid-log, a gap in the segment
//     sequence, an unreadable snapshot — aborts recovery with ErrCorrupt
//     rather than silently dropping acknowledged data.
func (w *WAL) recover() error {
	segs, snaps, err := scanDir(w.dir)
	if err != nil {
		return err
	}

	// Load the newest snapshot, if any.
	start := uint64(0)
	if len(snaps) > 0 {
		start = snaps[len(snaps)-1]
		body, err := readSnapshot(snapPath(w.dir, start), start)
		if err != nil {
			return err
		}
		if err := w.cab.Load(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("%w: snapshot %d: %v", ErrCorrupt, start, err)
		}
		w.snapBytes = int64(len(body))
		w.snapSeq = start
	}

	// Replay the segments the snapshot does not cover, oldest first.
	live := segs[:0]
	for _, s := range segs {
		if s >= start {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		// A fresh directory, or a snapshot with its follow-on segment never
		// made durable: start a new segment at the snapshot's position.
		seq := start
		if seq == 0 {
			seq = 1
		}
		w.mu.Lock()
		w.firstSeg = seq
		err := w.openSegmentLocked(seq)
		w.mu.Unlock()
		return err
	}
	if start > 0 && live[0] != start {
		return fmt.Errorf("%w: snapshot %d has no segment %d", ErrCorrupt, start, start)
	}
	if start == 0 && live[0] != 1 {
		// Segments earlier than the first survivor were pruned by a
		// compaction, so a snapshot must exist; with none readable,
		// replaying the tail alone would silently drop everything the
		// pruned segments held.
		return fmt.Errorf("%w: segments begin at %d but no snapshot covers 1..%d", ErrCorrupt, live[0], live[0]-1)
	}
	for i, s := range live {
		if i > 0 && s != live[i-1]+1 {
			return fmt.Errorf("%w: segment gap %d -> %d", ErrCorrupt, live[i-1], s)
		}
		if err := w.replaySegment(s, i == len(live)-1); err != nil {
			return err
		}
	}

	// Append to the final segment from its valid end.
	last := live[len(live)-1]
	f, err := os.OpenFile(segPath(w.dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: reopen segment: %w", err)
	}
	w.f = f
	w.seg = last
	w.segBytes = st.Size() - fileHdrSize
	w.firstSeg = live[0]
	return nil
}

// scanDir lists segment and snapshot sequence numbers (each sorted
// ascending) and removes leftover temporary files.
func scanDir(dir string) (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A snapshot whose write never completed; its rename never
			// happened, so it supersedes nothing.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(name, "snap-", ".bin"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// parseSeq extracts the hex sequence number from a prefixed file name.
// Only the exact shape the engine writes is accepted: 16 lowercase hex
// digits, nonzero.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexs := name[len(prefix) : len(name)-len(suffix)]
	if len(hexs) != 16 || hexs != strings.ToLower(hexs) {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexs, 16, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// readSnapshot returns the briefcase body of a snapshot file after
// validating its header.
func readSnapshot(path string, want uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seq, err := parseFileHeader(data, snapMagic)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	if seq != want {
		return nil, fmt.Errorf("%w: snapshot %s claims seq %d", ErrCorrupt, path, seq)
	}
	return data[fileHdrSize:], nil
}

// replaySegment applies one segment's records to the cabinet. final marks
// the log's last segment, where a torn tail is truncated instead of
// refused.
func (w *WAL) replaySegment(seq uint64, final bool) error {
	path := segPath(w.dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(data) < fileHdrSize {
		if final && tornSegmentHeader(data, seq) {
			// The header itself was torn (crash during rotation, leaving a
			// header prefix and nothing else): rewrite it. A short remnant
			// of anything OTHER than the expected header is damage to a
			// segment that may have held acknowledged records — refuse.
			return w.rewriteSegmentHeader(path, seq)
		}
		return fmt.Errorf("%w: segment %d truncated header", ErrCorrupt, seq)
	}
	got, err := parseFileHeader(data, segMagic)
	if err != nil || got != seq {
		if final && tornSegmentHeader(data, seq) {
			// A crash between openSegmentLocked's header write and its
			// fdatasync can persist the file size with zeroed (or
			// partially written) data blocks. No record was ever accepted
			// into the segment — records only land after the header sync —
			// so rewriting the header loses nothing.
			return w.rewriteSegmentHeader(path, seq)
		}
		return fmt.Errorf("%w: segment %d bad header", ErrCorrupt, seq)
	}
	rest := data[fileHdrSize:]
	off := int64(fileHdrSize)
	for len(rest) > 0 {
		payload, next, err := nextRecord(rest, final)
		if errors.Is(err, errTorn) {
			w.opt.logf("store: segment %d: torn final record, truncating at %d", seq, off)
			return os.Truncate(path, off)
		}
		if err != nil {
			return fmt.Errorf("segment %d at %d: %w", seq, off, err)
		}
		if err := w.apply(payload); err != nil {
			return fmt.Errorf("segment %d at %d: %w", seq, off, err)
		}
		off += int64(len(rest) - len(next))
		rest = next
	}
	return nil
}

// tornSegmentHeader reports whether a final segment's invalid header looks
// like a torn rotation write: every byte is either the expected header byte
// (a persisted prefix) or zero (never made it to disk), and nothing but
// zeros follows. Anything else is damage to a segment that once had a
// durable header — and possibly acknowledged records — so it is refused.
func tornSegmentHeader(data []byte, seq uint64) bool {
	hdr := appendFileHeader(make([]byte, 0, fileHdrSize), segMagic, seq)
	for i, b := range data {
		if i < fileHdrSize {
			if b != hdr[i] && b != 0 {
				return false
			}
		} else if b != 0 {
			return false
		}
	}
	return true
}

// rewriteSegmentHeader resets a final segment whose header write was itself
// interrupted.
func (w *WAL) rewriteSegmentHeader(path string, seq uint64) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(appendFileHeader(make([]byte, 0, fileHdrSize), segMagic, seq)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if w.opt.NoSync {
		return nil
	}
	return fdatasync(f)
}

// apply replays one redo record into the cabinet. The journal is not yet
// attached during recovery, so none of these re-journal.
func (w *WAL) apply(payload []byte) error {
	op, body := payload[0], payload[1:]
	switch op {
	case opAppend:
		name, elem, err := parseName(body)
		if err != nil {
			return err
		}
		w.cab.Append(name, elem)
	case opPut:
		name, enc, err := parseName(body)
		if err != nil {
			return err
		}
		f, err := folder.DecodeFolder(enc)
		if err != nil {
			return fmt.Errorf("%w: put: %v", ErrCorrupt, err)
		}
		w.cab.Put(name, f)
	case opDequeue:
		name, _, err := parseName(body)
		if err != nil {
			return err
		}
		if _, err := w.cab.Dequeue(name); err != nil {
			// A dequeue the log says succeeded must replay against a
			// non-empty folder; anything else means the log lies.
			return fmt.Errorf("%w: dequeue %q: %v", ErrCorrupt, name, err)
		}
	case opDelete:
		name, _, err := parseName(body)
		if err != nil {
			return err
		}
		w.cab.Delete(name)
	case opLoad:
		if err := w.cab.Load(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("%w: load: %v", ErrCorrupt, err)
		}
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
	return nil
}
