package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/folder"
)

// openTemp opens a WAL over a fresh cabinet in dir. NoSync keeps unit tests
// off the disk's sync latency; crash-shape tests override.
func openTemp(t *testing.T, dir string, opt Options) (*folder.FileCabinet, *WAL) {
	t.Helper()
	cab := folder.NewCabinet()
	w, err := Open(dir, cab, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cab, w
}

// image returns the canonical encoding of a cabinet's full contents.
func image(t *testing.T, cab *folder.FileCabinet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cab.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reopen recovers dir into a fresh cabinet and returns its image.
func reopen(t *testing.T, dir string) ([]byte, *folder.FileCabinet, *WAL) {
	t.Helper()
	cab := folder.NewCabinet()
	w, err := Open(dir, cab, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return image(t, cab), cab, w
}

func TestRoundTripAllOps(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})

	cab.AppendString("A", "one")
	cab.AppendString("A", "two")
	cab.Put("B", folder.OfStrings("x", "y", "z"))
	if !cab.TestAndAppendString("SEEN", "v1") {
		t.Fatal("TestAndAppend rejected fresh element")
	}
	cab.TestAndAppendString("SEEN", "v1") // duplicate: must not journal
	if _, err := cab.Dequeue("B"); err != nil {
		t.Fatal(err)
	}
	cab.AppendString("GONE", "doomed")
	cab.Delete("GONE")

	// A wholesale Load in the middle of the log must replay too.
	b := folder.NewBriefcase()
	b.Put("L", folder.OfStrings("after-load"))
	var enc bytes.Buffer
	enc.Write(folder.EncodeBriefcase(b))
	if err := cab.Load(&enc); err != nil {
		t.Fatal(err)
	}
	cab.AppendString("L", "tail")

	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	want := image(t, cab)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, cab2, w2 := reopen(t, dir)
	defer w2.Close()
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered image differs:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if cab2.ContainsString("GONE", "doomed") || cab2.ContainsString("A", "one") {
		t.Fatal("pre-Load state leaked through the load record")
	}
	if !cab2.ContainsString("L", "tail") {
		t.Fatal("post-load append lost")
	}
}

func TestRecoveredCabinetKeepsJournaling(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	cab.AppendString("K", "first")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, cab2, w2 := reopen(t, dir)
	cab2.AppendString("K", "second")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	_, cab3, w3 := reopen(t, dir)
	defer w3.Close()
	if got := cab3.Snapshot("K").Strings(); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("K = %v after two generations", got)
	}
}

// TestGroupCommitBatches proves concurrent barriers share fsyncs: N
// goroutines each record one mutation and Sync; the WAL must issue far
// fewer sync cycles than records.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{}) // real fdatasync: contention is the point
	defer w.Close()

	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cab.AppendString("LOG", fmt.Sprintf("w%d-%d", g, i))
				if err := w.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if st.Records != workers*rounds {
		t.Fatalf("records = %d, want %d", st.Records, workers*rounds)
	}
	if st.Syncs >= st.Records {
		t.Fatalf("no batching: %d syncs for %d records", st.Syncs, st.Records)
	}
	t.Logf("group commit: %d records in %d syncs (%.1fx batching)",
		st.Records, st.Syncs, float64(st.Records)/float64(st.Syncs))
}

// TestNaiveSyncEveryRecord: the comparison mode is durable at record
// granularity without any barrier call.
func TestNaiveSyncEveryRecord(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{SyncEveryRecord: true})
	cab.AppendString("N", "r1")
	cab.AppendString("N", "r2")
	st := w.Stats()
	if st.Syncs < 2 {
		t.Fatalf("naive mode issued %d syncs for 2 records", st.Syncs)
	}
	// Durable without Sync or graceful Close: recover from the raw files.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, cab2, w2 := reopen(t, dir)
	defer w2.Close()
	if cab2.FolderLen("N") != 2 {
		t.Fatalf("N has %d elements after recovery", cab2.FolderLen("N"))
	}
}

func TestSyncCleanIsFree(t *testing.T) {
	dir := t.TempDir()
	_, w := openTemp(t, dir, Options{})
	defer w.Close()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Syncs != 0 {
		t.Fatalf("clean barrier hit the disk: %d syncs", st.Syncs)
	}
}

// TestTornTailTruncated: garbage appended past the last full record (a
// crash mid-append) is discarded; everything acknowledged stays.
func TestTornTailTruncated(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"partial-header": {0x55, 0x01},
		"oversize-len":   {0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5},
		"crc-mismatch":   {4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'j', 'u', 'n', 'k'},
		// A crash that persists the inode size before the data blocks
		// (delayed allocation) zero-extends the tail; crc32(empty)==0, so
		// without the explicit zero-header rule this would parse as a
		// "valid" empty record and wrongly refuse recovery.
		"zero-extended": make([]byte, 16),
		// A group-commit batch whose fdatasync never returned: the first
		// record's header and a payload prefix persisted, the rest of the
		// batch only as zeros. Nothing after the failed record was ever
		// acknowledged, so recovery must truncate, not refuse.
		"batch-zero-extension": append([]byte{20, 0, 0, 0, 0xaa, 0xbb, 0xcc, 0xdd,
			0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11}, make([]byte, 40)...),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cab, w := openTemp(t, dir, Options{NoSync: true})
			cab.AppendString("D", "keep-1")
			cab.AppendString("D", "keep-2")
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			seg := segPath(dir, 1)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			_, cab2, w2 := reopen(t, dir)
			if got := cab2.Snapshot("D").Strings(); len(got) != 2 {
				t.Fatalf("D = %v after torn-tail recovery", got)
			}
			// The tail was truncated: appending must produce a log that
			// recovers cleanly again.
			cab2.AppendString("D", "keep-3")
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			_, cab3, w3 := reopen(t, dir)
			defer w3.Close()
			if got := cab3.Snapshot("D").Strings(); len(got) != 3 || got[2] != "keep-3" {
				t.Fatalf("D = %v after post-truncation append", got)
			}
		})
	}
}

// TestTornRotationHeaderRecovered: a crash between a rotation's header
// write and its fdatasync can leave the new final segment with a zeroed or
// partially-written header. No record was ever accepted into it, so
// recovery must rewrite the header and carry on, not refuse to boot.
func TestTornRotationHeaderRecovered(t *testing.T) {
	for name, hdr := range map[string][]byte{
		"all-zero":       make([]byte, fileHdrSize),
		"magic-prefix":   append([]byte(segMagic[:5]), make([]byte, fileHdrSize-5)...),
		"zero-extension": make([]byte, fileHdrSize+64),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cab, w := openTemp(t, dir, Options{NoSync: true})
			cab.AppendString("R", "pre-rotation")
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segPath(dir, 2), hdr, 0o644); err != nil {
				t.Fatal(err)
			}
			_, cab2, w2 := reopen(t, dir)
			if !cab2.ContainsString("R", "pre-rotation") {
				t.Fatal("segment-1 data lost across torn rotation")
			}
			cab2.AppendString("R", "post-recovery")
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			_, cab3, w3 := reopen(t, dir)
			defer w3.Close()
			if cab3.FolderLen("R") != 2 {
				t.Fatalf("R has %d elements after reuse of recovered segment", cab3.FolderLen("R"))
			}
		})
	}
}

// TestShortGarbageSegmentRefused: a final segment truncated to a short
// remnant that is NOT a prefix of its expected header is damage to a
// segment that may have held acknowledged records — recovery must refuse,
// not silently rewrite it into an empty segment.
func TestShortGarbageSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	cab.AppendString("G", "acknowledged")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 1), []byte("garbage!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, folder.NewCabinet(), Options{NoSync: true}); err == nil {
		t.Fatal("short garbage segment accepted as torn rotation")
	}
}

// TestSyncAfterCloseRefused: a closed WAL drops new records, so a barrier
// arriving after Close must report that rather than claim durability.
func TestSyncAfterCloseRefused(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	cab.AppendString("C", "pre-close")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cab.AppendString("C", "post-close") // silently dropped by the journal
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Sync after Close = %v, want ErrWALClosed", err)
	}
}

// TestMidLogCorruptionRefused: a bit flip in an acknowledged (non-tail)
// record must fail recovery loudly, not silently drop data.
func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	cab.AppendString("C", "first-record")
	cab.AppendString("C", "second-record")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[fileHdrSize+recordHdrSize+3] ^= 0x40 // inside the first record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, folder.NewCabinet(), Options{NoSync: true}); err == nil {
		t.Fatal("mid-log corruption accepted")
	}
}

// TestCompactionFoldsLog: once the segment outgrows the ratio the log is
// folded into a snapshot, obsolete files vanish, and recovery still
// reproduces the cabinet.
func TestCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true, CompactMinBytes: 1 << 10, CompactRatio: 2})

	elem := bytes.Repeat([]byte("x"), 128)
	for i := 0; i < 100; i++ {
		cab.Append("BULK", elem)
		cab.AppendString("IDS", fmt.Sprintf("id-%d", i))
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor is a background goroutine; under NoSync nothing in this
	// loop blocks, so on one CPU it may not have been scheduled yet. (With
	// real fdatasync every barrier blocks and hands it the processor.)
	for i := 0; i < 2000 && w.Stats().Compactions == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	want := image(t, cab)
	if err := w.Close(); err != nil { // Close waits out in-flight compaction
		t.Fatal(err)
	}
	if w.Stats().Compactions == 0 {
		t.Fatal("compaction never triggered")
	}

	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot on disk")
	}
	if len(segs) > 2 {
		t.Fatalf("obsolete segments not pruned: %v", segs)
	}

	got, _, w2 := reopen(t, dir)
	defer w2.Close()
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot+tail recovery differs from live cabinet")
	}
}

// TestStickyFailure: after the segment file dies, Sync reports the error,
// and the in-memory cabinet keeps serving.
func TestStickyFailure(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	cab.AppendString("S", "pre")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	w.f.Close() // simulate the disk going away
	w.mu.Unlock()

	cab.AppendString("S", "post")
	if err := w.Sync(); err == nil {
		t.Fatal("Sync succeeded on a dead segment file")
	}
	if w.Err() == nil {
		t.Fatal("failure not sticky")
	}
	if !cab.ContainsString("S", "post") {
		t.Fatal("in-memory cabinet lost the mutation")
	}
	// A failed WAL refuses new records, so seq freezes and "everything
	// synced" is vacuously true — the barrier must still report the error,
	// or meets would acknowledge durability that is lost.
	cab.AppendString("S", "dropped")
	if err := w.Sync(); err == nil {
		t.Fatal("quiescent Sync on a failed WAL returned nil")
	}
	// Close after failure must not hang or double-close panic.
	_ = w.Close()
}

// TestFailureReporting: the first sticky failure fires OnFailure exactly
// once and surfaces in Stats without anyone calling Sync.
func TestFailureReporting(t *testing.T) {
	dir := t.TempDir()
	fired := make(chan error, 2)
	cab := folder.NewCabinet()
	w, err := Open(dir, cab, Options{NoSync: true, OnFailure: func(err error) { fired <- err }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st := w.Stats(); st.SyncFailures != 0 || st.LastSyncError != "" {
		t.Fatalf("healthy WAL reports failures: %+v", st)
	}

	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
	cab.AppendString("S", "x")
	w.Sync()

	select {
	case err := <-fired:
		if err == nil {
			t.Fatal("OnFailure fired with nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnFailure never fired")
	}
	st := w.Stats()
	if st.SyncFailures != 1 {
		t.Fatalf("SyncFailures=%d, want 1", st.SyncFailures)
	}
	if st.LastSyncError == "" {
		t.Fatal("LastSyncError empty after failure")
	}
	// A second failed Sync must not re-fire the callback (failure is
	// sticky, the alarm is one-shot).
	cab.AppendString("S", "y")
	w.Sync()
	select {
	case <-fired:
		t.Fatal("OnFailure fired twice")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSnapshotGapRefused(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true, CompactMinBytes: 256, CompactRatio: 1})
	for i := 0; i < 50; i++ {
		cab.AppendString("G", fmt.Sprintf("row-%d", i))
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000 && w.Stats().Compactions == 0; i++ {
		time.Sleep(time.Millisecond) // let the background compactor run
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Compactions == 0 {
		t.Skip("compaction did not trigger; nothing to corrupt")
	}
	segs, snaps, err := scanDir(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("scan: %v %v", snaps, err)
	}
	// Delete the snapshot's own segment but leave a later one: recovery
	// must refuse the gap rather than replay a disconnected tail.
	last := snaps[len(snaps)-1]
	var hasLater bool
	for _, s := range segs {
		if s > last {
			hasLater = true
		}
	}
	if !hasLater {
		// Force a later segment so the gap is detectable.
		f, err := os.OpenFile(segPath(dir, last+1), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(appendFileHeader(nil, segMagic, last+1))
		f.Close()
	}
	if err := os.Remove(segPath(dir, last)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, folder.NewCabinet(), Options{NoSync: true}); err == nil {
		t.Fatal("segment gap accepted")
	}
}

// TestBatchHistogram pins the records-per-fdatasync distribution Stats
// exposes: one Sync over N pending records is a single barrier of N, and
// SyncEveryRecord commits every record as a batch of one. NoSync keeps the
// test off disk latency — the histogram counts barriers, not syscalls.
func TestBatchHistogram(t *testing.T) {
	dir := t.TempDir()
	cab, w := openTemp(t, dir, Options{NoSync: true})
	for i := 0; i < 5; i++ {
		cab.AppendString("K", fmt.Sprintf("e%d", i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if got := st.BatchHist[batchBucket(5)]; got != 1 {
		t.Errorf("batch-of-5 bucket = %d, want 1 (hist %v)", got, st.BatchHist)
	}
	var total int64
	for _, n := range st.BatchHist {
		total += n
	}
	if total != st.Syncs {
		t.Errorf("histogram total %d != Syncs %d", total, st.Syncs)
	}
	if s := st.FormatBatchHist(); s != "5-8:1" {
		t.Errorf("FormatBatchHist = %q, want \"5-8:1\"", s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dir2 := t.TempDir()
	cab2, w2 := openTemp(t, dir2, Options{SyncEveryRecord: true, NoSync: true})
	for i := 0; i < 3; i++ {
		cab2.AppendString("K", "x")
	}
	st2 := w2.Stats()
	if got := st2.BatchHist[batchBucket(1)]; got != 3 {
		t.Errorf("naive batch-of-1 bucket = %d, want 3 (hist %v)", got, st2.BatchHist)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
