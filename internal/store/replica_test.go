package store

import (
	"errors"
	"os"
	"testing"

	"repro/internal/folder"
)

// shipAll drains leader w into replica r chunk by chunk, exactly as the
// repl shipper does: read at the replica watermark, append, advance.
func shipAll(t *testing.T, w *WAL, r *Replica, chunk int) {
	t.Helper()
	for {
		seg, size := r.Watermark()
		tail := w.Tail()
		if seg == 0 {
			seg, size = tail.FirstSeg, 0
		}
		if seg == tail.Seg && size >= tail.Size {
			return
		}
		data, sealed, err := w.ReadSegmentDurable(seg, size, chunk)
		if err != nil {
			t.Fatalf("read seg %d off %d: %v", seg, size, err)
		}
		if err := r.Append(seg, size, data); err != nil {
			t.Fatalf("append seg %d off %d: %v", seg, size, err)
		}
		if sealed {
			if err := r.Append(seg+1, 0, mustRead(t, w, seg+1)); err != nil {
				t.Fatalf("start seg %d: %v", seg+1, err)
			}
		}
	}
}

// mustRead reads the opening chunk of a segment.
func mustRead(t *testing.T, w *WAL, seg uint64) []byte {
	t.Helper()
	data, _, err := w.ReadSegmentDurable(seg, 0, 1<<20)
	if err != nil {
		t.Fatalf("read seg %d: %v", seg, err)
	}
	return data
}

// promote opens the replica directory as a WAL — the follower's promotion
// path — and returns the recovered image.
func promote(t *testing.T, r *Replica, dir string) ([]byte, *folder.FileCabinet, *WAL) {
	t.Helper()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return reopen(t, dir)
}

func TestReplicaShipAndPromote(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	cab, w := openTemp(t, ldir, Options{NoSync: true})
	for i := 0; i < 50; i++ {
		cab.AppendString("LOG", "entry")
	}
	cab.Put("CFG", folder.OfStrings("a", "b"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, w, r, 64) // small chunks: most splits land mid-record

	got, _, w2 := promote(t, r, rdir)
	defer w2.Close()
	if want := image(t, cab); string(got) != string(want) {
		t.Fatal("promoted replica image differs from leader cabinet")
	}
}

func TestReplicaDuplicateAndRewind(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	cab, w := openTemp(t, ldir, Options{NoSync: true})
	cab.AppendString("A", "x")
	cab.AppendString("A", "y")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	tail := w.Tail()
	whole := mustRead(t, w, tail.Seg)

	if err := r.Append(tail.Seg, 0, whole); err != nil {
		t.Fatal(err)
	}
	// A lost ack makes the leader resend: pure duplicates and overlapping
	// chunks must be absorbed without corrupting the byte prefix.
	if err := r.Append(tail.Seg, 0, whole); err != nil {
		t.Fatalf("duplicate resend: %v", err)
	}
	if err := r.Append(tail.Seg, 0, whole[:len(whole)-3]); err != nil {
		t.Fatalf("shorter duplicate: %v", err)
	}
	if _, size := r.Watermark(); size != int64(len(whole)) {
		t.Fatalf("watermark %d after duplicates, want %d", size, len(whole))
	}
	// A chunk beyond the watermark is refused with ErrWatermark so the
	// leader rewinds to the acked position.
	if err := r.Append(tail.Seg, int64(len(whole))+10, []byte("zz")); !errors.Is(err, ErrWatermark) {
		t.Fatalf("future chunk: want ErrWatermark, got %v", err)
	}

	got, _, w2 := promote(t, r, rdir)
	defer w2.Close()
	if want := image(t, cab); string(got) != string(want) {
		t.Fatal("image diverged after duplicate handling")
	}
}

func TestReplicaTornTailTruncatedOnReopen(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	cab, w := openTemp(t, ldir, Options{NoSync: true})
	cab.AppendString("A", "first")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	tail := w.Tail()
	whole := mustRead(t, w, tail.Seg)
	if err := r.Append(tail.Seg, 0, whole); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The follower crashed mid-append: a torn half-record sits past the
	// durable prefix. Reopen must truncate it and report the pre-tear
	// watermark, keeping resumed shipping byte-aligned with the leader.
	f, err := os.OpenFile(segPath(rdir, tail.Seg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x03, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	if seg, size := r2.Watermark(); seg != tail.Seg || size != int64(len(whole)) {
		t.Fatalf("watermark (%d,%d) after torn tail, want (%d,%d)", seg, size, tail.Seg, len(whole))
	}
	// Shipping resumes from the truncated offset.
	cab.AppendString("A", "second")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	shipAll(t, w, r2, 1<<20)
	got, _, w2 := promote(t, r2, rdir)
	defer w2.Close()
	if want := image(t, cab); string(got) != string(want) {
		t.Fatal("image diverged after torn-tail resume")
	}
}

func TestReplicaRefusesSegmentGap(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	cab, w := openTemp(t, ldir, Options{NoSync: true})
	cab.AppendString("A", "x")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	tail := w.Tail()
	whole := mustRead(t, w, tail.Seg)
	if err := r.Append(tail.Seg, 0, whole); err != nil {
		t.Fatal(err)
	}
	// Applying segment N+2 with N+1 never shipped would persist a gap the
	// promotion recovery must refuse — Append rejects it up front.
	hdr := appendFileHeader(nil, segMagic, tail.Seg+2)
	if err := r.Append(tail.Seg+2, 0, hdr); !errors.Is(err, ErrWatermark) {
		t.Fatalf("gap append: want ErrWatermark, got %v", err)
	}

	// And if a gap somehow reaches disk (operator copy error), promotion
	// refuses with ErrCorrupt rather than silently dropping a segment.
	if err := os.WriteFile(segPath(rdir, tail.Seg+2), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := Open(rdir, folder.NewCabinet(), Options{NoSync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("promotion over gap: want ErrCorrupt, got %v", err)
	}
}

func TestReplicaSnapshotCatchUpRacingRotation(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	// Tiny compaction thresholds so rotations happen constantly under load.
	cab, w := openTemp(t, ldir, Options{NoSync: true, CompactMinBytes: 1, CompactRatio: 1})
	for i := 0; i < 200; i++ {
		cab.AppendString("LOG", "payload-payload-payload")
		if i%20 == 0 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	waitCompactions(t, w)

	tail := w.Tail()
	if tail.SnapSeq == 0 || tail.FirstSeg <= 1 {
		t.Fatalf("compaction never pruned: tail=%+v", tail)
	}

	// A fresh follower below FirstSeg needs snapshot catch-up; keep
	// mutating (and compacting) while it installs, the rotation race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			cab.AppendString("LOG", "concurrent-concurrent")
			w.Sync()
		}
	}()
	seq, b, err := w.SnapshotForShip()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	waitCompactions(t, w)

	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstallSnapshot(seq, b); err != nil {
		t.Fatal(err)
	}
	// The snapshot's follow-on segment may itself have been pruned by a
	// compaction that ran after SnapshotForShip — exactly ErrSegmentGone —
	// in which case the shipper re-snapshots; otherwise ship the log tail.
	for {
		seg, size := r.Watermark()
		tl := w.Tail()
		if seg >= tl.Seg && size >= tl.Size {
			break
		}
		data, _, err := w.ReadSegmentDurable(seg, size, 1<<20)
		if errors.Is(err, ErrSegmentGone) {
			seq, b, err := w.SnapshotForShip()
			if err != nil {
				t.Fatal(err)
			}
			if err := r.InstallSnapshot(seq, b); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Append(seg, size, data); err != nil {
			t.Fatal(err)
		}
		if seg < tl.Seg {
			sdata, _, err := w.ReadSegmentDurable(seg+1, 0, 1<<20)
			if err == nil {
				if err := r.Append(seg+1, 0, sdata); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	got, _, w2 := promote(t, r, rdir)
	defer w2.Close()
	if want := image(t, cab); string(got) != string(want) {
		t.Fatal("image diverged after snapshot catch-up under rotation")
	}
}

func TestReplicaReset(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	cab, w := openTemp(t, ldir, Options{NoSync: true})
	cab.AppendString("A", "x")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := openReplica(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	tail := w.Tail()
	if err := r.Append(tail.Seg, 0, mustRead(t, w, tail.Seg)); err != nil {
		t.Fatal(err)
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if seg, size := r.Watermark(); seg != 0 || size != 0 {
		t.Fatalf("watermark (%d,%d) after reset, want (0,0)", seg, size)
	}
	entries, err := os.ReadDir(rdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d files survive Reset", len(entries))
	}
}

// waitCompactions blocks until no compaction is in flight.
func waitCompactions(t *testing.T, w *WAL) {
	t.Helper()
	w.mu.Lock()
	for w.compacting {
		w.cond.Wait()
	}
	w.mu.Unlock()
}
