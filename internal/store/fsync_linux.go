//go:build linux

package store

import (
	"os"
	"syscall"
)

// fdatasync flushes a file's data (and the metadata needed to read it back)
// to stable storage. On Linux that is fdatasync(2), which skips the inode
// mtime update fsync(2) would also force — the difference is a second
// journal commit per barrier on ext4.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
