package store

import (
	"fmt"
	"io"
	"os"

	"repro/internal/folder"
)

// maybeCompactLocked starts a background compaction when the live segment
// has outgrown the last snapshot by the configured ratio. Called with w.mu
// held after a successful sync; at most one compaction runs at a time.
func (w *WAL) maybeCompactLocked() {
	if w.compacting || w.closed || w.err != nil {
		return
	}
	if w.segBytes < w.opt.CompactMinBytes {
		return
	}
	if w.segBytes < int64(w.opt.CompactRatio)*w.snapBytes {
		return
	}
	w.compacting = true
	go w.compact()
}

// compact folds the log into a snapshot: rotate to a fresh segment at a
// consistent cabinet snapshot, write the snapshot durably, then delete the
// files it supersedes. The next segment is created — with its header and
// directory entry already durable — before the rotation window, so the
// cabinet pauses only for one flush of the pending tail plus a file-handle
// swap; the snapshot encode and write happen concurrently with new
// traffic, which lands in the new segment.
//
// Failure is never fatal to durability: until the snapshot's rename is
// synced, recovery keeps using the previous snapshot plus every segment, so
// a half-finished compaction only costs disk space and replay time.
func (w *WAL) compact() {
	w.mu.Lock()
	nextSeq := w.seg + 1
	usable := w.usableLocked()
	w.mu.Unlock()
	if !usable {
		w.finishCompaction(0, 0, false)
		return
	}
	// Only compaction rotates and compactions are single-flight, so
	// nextSeq cannot go stale between here and the swap below.
	newF, err := w.createSegment(nextSeq)
	if err != nil {
		w.opt.logf("store: compaction could not create segment %d (will retry): %v", nextSeq, err)
		w.finishCompaction(0, 0, false)
		return
	}

	var (
		rotErr error
		seq    uint64
	)
	// SnapshotAll holds every cabinet shard lock across the callback, so no
	// mutation — and therefore no journal record — can land between the
	// snapshot image and the segment rotation: the snapshot is exactly the
	// state through the old segment's last record.
	b := w.cab.SnapshotAll(func() {
		w.mu.Lock()
		for w.syncing {
			w.cond.Wait()
		}
		if w.closed || w.err != nil {
			rotErr = fmt.Errorf("store: wal closed or failed")
			w.mu.Unlock()
			return
		}
		w.syncing = true
		w.flushLocked() // drain the recorded tail into the old segment
		if w.err != nil {
			rotErr = w.err
		} else {
			w.f.Close()
			w.f = newF
			w.seg = nextSeq
			w.segBytes = 0
			newF = nil // adopted as the live segment
		}
		seq = w.seg
		w.syncing = false
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	if newF != nil {
		// Rotation aborted: drop the pre-created segment. (A failed remove
		// just leaves an empty, validly-headered segment that recovery
		// replays as empty.)
		newF.Close()
		os.Remove(segPath(w.dir, nextSeq))
	}
	if rotErr != nil {
		w.finishCompaction(0, 0, false)
		return
	}

	if err := w.writeSnapshot(seq, b); err != nil {
		w.opt.logf("store: compaction of segment %d failed (will retry): %v", seq-1, err)
		w.finishCompaction(0, 0, false)
		return
	}
	w.pruneObsolete(seq)
	w.finishCompaction(seq, int64(folder.EncodedSize(b)), true)
	w.opt.logf("store: compacted through segment %d (%d folders)", seq-1, b.Len())
}

// finishCompaction publishes the compaction outcome and wakes Close waiters.
func (w *WAL) finishCompaction(seq uint64, snapBytes int64, ok bool) {
	w.mu.Lock()
	if ok {
		w.snapBytes = snapBytes
		w.snapSeq = seq
		w.firstSeg = seq
		w.stCompactions.Add(1)
		// A compaction moved the log's left edge: a shipper whose follower
		// sits below firstSeg must switch to snapshot catch-up.
		w.notifyLocked()
	}
	w.compacting = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// writeSnapshot durably writes snapshot seq via the shared atomic-write
// discipline (WriteFileAtomic), which tacomad's cabinet flush uses too.
func (w *WAL) writeSnapshot(seq uint64, b *folder.Briefcase) error {
	enc := appendFileHeader(make([]byte, 0, fileHdrSize+folder.EncodedSize(b)), snapMagic, seq)
	enc = folder.AppendBriefcase(enc, b)
	return WriteFileAtomic(snapPath(w.dir, seq), !w.opt.NoSync, func(f io.Writer) error {
		_, err := f.Write(enc)
		return err
	})
}

// pruneObsolete removes segments and snapshots superseded by snapshot seq.
// Only reached once that snapshot is durable; removal failures just leave
// dead files behind.
func (w *WAL) pruneObsolete(seq uint64) {
	segs, snaps, err := scanDir(w.dir)
	if err != nil {
		return
	}
	for _, s := range segs {
		if s < seq {
			os.Remove(segPath(w.dir, s))
		}
	}
	for _, s := range snaps {
		if s < seq {
			os.Remove(snapPath(w.dir, s))
		}
	}
}
