package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cash"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/guard"
)

// E11: "There are two aspects of the security problem: ensuring that
// TACOMA system installations are not endangered by imported agents, and
// protecting agents from hostile TACOMA installations. … One intriguing
// direction … is to structure systems so that agents pay for the resources
// they use. Electronic cash would limit the impact of an agent, because
// computation and communication on behalf of that agent cease when its
// funds are exhausted." (§3)
//
// The experiment drives four hostile-workload scenarios against a firewall
// site: an unsigned agent, an agent signed with an unknown key, a signed
// agent overstepping its capability ACL, and a signed, funded agent that
// burns cycles until its electronic-cash budget runs out and is terminated
// mid-itinerary — with the bill landing back at the launching site.

// E11Row is one security-experiment measurement.
type E11Row struct {
	UnsignedRejected  bool  // firewall refused the unsigned briefcase
	ForgedRejected    bool  // firewall refused the unknown-key signature
	ACLBlocked        bool  // capability ACL refused a forbidden meet
	HonestCompleted   bool  // a signed, funded, well-behaved agent ran fine
	RunawayTerminated bool  // the runaway agent was killed mid-itinerary
	RunawayBudget     int64 // ECUs the runaway carried
	SiteEarned        int64 // ECUs collected by the firewall site's meter
	BillingAtHome     int   // billing records visible at the launching site
	HonestSpent       int64 // ECUs the honest agent was charged
	HonestRemaining   int64 // ECUs the honest agent brought home
	MoneySupplyIntact bool  // every minted ECU is accounted for
}

// E11Security runs the hostile-agent experiment on a 3-site system where
// site-1 is a firewall with metered meets. The launching site is site-0.
func E11Security(ctx context.Context, budget int64, stepsPerUnit int, seed int64) (E11Row, error) {
	sys := core.NewSystem(3, core.SystemConfig{Seed: seed})
	defer sys.Wait()
	launch, fw := sys.SiteAt(0), sys.SiteAt(1)

	keys := guard.NewKeyring()
	keys.Enroll("alice")
	keys.Enroll("eve")
	keys.Enroll(guard.SitePrincipal(fw.ID()))

	// The launching site is guarded but open; the firewall site demands
	// signatures and meters cycles.
	guard.Install(launch, guard.New(nil, keys))
	fwPolicy := guard.NewPolicy()
	fwPolicy.SetFirewall(true)
	fwPolicy.Grant("alice", guard.Capability{Meet: []string{"appraiser"}})
	fwPolicy.Grant("eve", guard.Capability{Meet: []string{}}) // may run, may meet nothing
	mint := cash.NewMint()
	meter := guard.NewMeter(stepsPerUnit, 1)
	meter.Mint = mint // the meter validates every bill it collects
	fwGuard := guard.New(fwPolicy, keys)
	fwGuard.Meter = meter
	guard.Install(fw, fwGuard)

	fw.Register("appraiser", core.AgentFunc(
		func(_ *core.MeetContext, bc *folder.Briefcase) error {
			bc.PutString(folder.ResultFolder, "appraised")
			return nil
		}))

	row := E11Row{RunawayBudget: budget}
	fund := func(bc *folder.Briefcase, units int64) error {
		amounts := make([]int64, units)
		for i := range amounts {
			amounts[i] = 1
		}
		bills, err := mint.IssueMany(amounts...)
		if err != nil {
			return err
		}
		bc.Put(guard.CashFolder, folder.OfStrings(cash.FormatECUs(bills)...))
		return nil
	}
	hop := `if {[host] eq "site-0"} { jump site-1 }` + "\n"

	// Scenario 1: unsigned briefcase.
	_, err := core.RunScript(ctx, launch, hop+`meet appraiser`, nil)
	row.UnsignedRejected = errors.Is(err, core.ErrRefused) && strings.Contains(err.Error(), "unsigned")

	// Scenario 2: signature under a key the firewall has never enrolled.
	mallory := guard.NewKeyring()
	mallory.Enroll("mallory")
	bc, err := guard.SignedScript(mallory, "mallory", string(launch.ID()), hop+`meet appraiser`, nil)
	if err != nil {
		return row, err
	}
	err = guard.Launch(ctx, launch, bc)
	row.ForgedRejected = err != nil && strings.Contains(err.Error(), "unknown principal")

	// Scenario 3: eve is admitted but her capability allows no meets.
	bc, err = guard.SignedScript(keys, "eve", string(launch.ID()), hop+`meet appraiser`, nil)
	if err != nil {
		return row, err
	}
	err = guard.Launch(ctx, launch, bc)
	row.ACLBlocked = err != nil && strings.Contains(err.Error(), "may not meet")

	// Scenario 4: alice behaves, pays her way, and comes home with change
	// (the briefcase folds back to the launcher when the meet terminates).
	bc, err = guard.SignedScript(keys, "alice", string(launch.ID()), hop+`
		meet appraiser
	`, nil)
	if err != nil {
		return row, err
	}
	if err := fund(bc, budget); err != nil {
		return row, err
	}
	if err := guard.Launch(ctx, launch, bc); err == nil {
		row.HonestCompleted = true
		f, _ := bc.Folder(guard.CashFolder)
		row.HonestRemaining = cash.FolderBalance(f)
		row.HonestSpent = budget - row.HonestRemaining
	}
	earnedBefore := meter.Earned()

	// Scenario 5: the runaway — funded, signed, and hostile: it burns
	// cycles in an infinite loop until its budget is gone.
	bc, err = guard.SignedScript(keys, "alice", string(launch.ID()), hop+`
		while {1} { set x 1 }
	`, nil)
	if err != nil {
		return row, err
	}
	if err := fund(bc, budget); err != nil {
		return row, err
	}
	err = guard.Launch(ctx, launch, bc)
	row.RunawayTerminated = err != nil && strings.Contains(err.Error(), "terminated")
	sys.Wait() // let the detached billing notice reach home

	row.SiteEarned = meter.Earned() - earnedBefore
	row.BillingAtHome = launch.Cabinet().FolderLen(guard.BillingFolder)

	// Conservation: minted value = site earnings + what agents kept.
	total := meter.Earned() + row.HonestRemaining
	row.MoneySupplyIntact = total == mint.Issued()
	return row, nil
}

// E11Sweep exercises a few budgets for the results table.
func E11Sweep(ctx context.Context) ([]E11Row, error) {
	var rows []E11Row
	for _, budget := range []int64{3, 10, 50} {
		row, err := E11Security(ctx, budget, 25, 17)
		if err != nil {
			return nil, fmt.Errorf("e11 budget=%d: %w", budget, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
