package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/rearguard"
	"repro/internal/vnet"
)

// E8: "It is to be expected that sites in a computer network will fail.
// … The solutions we have studied involve leaving a rear guard agent
// behind whenever execution moves from one site to another." (§5)
//
// Agents walk an L-hop itinerary whose tasks take a few milliseconds; with
// probability crashProb an intermediate site is crashed while the agent is
// somewhere on its journey (and restarted shortly after, as machines are).
// We measure the completion rate with and without rear guards, and the
// ablation sweeps the guard's failure-detection interval against recovery
// latency.

// E8Row is one fault-tolerance measurement.
type E8Row struct {
	Guards     bool
	Trials     int
	CrashProb  float64
	HopLength  int
	Completed  int
	Relaunches int
	MeanTime   time.Duration // mean completion wall time (completed runs)
}

// E8Survival runs `trials` guarded or unguarded journeys under crash
// injection. With probability crashProb per trial, the site the agent is
// executing on goes down mid-task (the agent vanishes with it, exactly the
// failure the rear guard exists for) and restarts 40ms later.
func E8Survival(ctx context.Context, trials, hops int, crashProb float64, guards bool, seed int64) (E8Row, error) {
	row := E8Row{Guards: guards, Trials: trials, CrashProb: crashProb, HopLength: hops}
	rng := rand.New(rand.NewSource(seed))
	var totalTime time.Duration

	for trial := 0; trial < trials; trial++ {
		sys := core.NewSystem(hops+1, core.SystemConfig{
			Seed: seed + int64(trial), CallTimeout: 15 * time.Millisecond,
		})
		managers := make([]*rearguard.Manager, sys.Len())

		crash := rng.Float64() < crashProb
		victim := sys.SiteAt(1 + rng.Intn(hops)).ID()
		arrived := make(chan struct{})
		crashed := make(chan struct{})
		var once sync.Once

		for i := 0; i < sys.Len(); i++ {
			m := rearguard.Install(sys.SiteAt(i))
			m.Interval = 5 * time.Millisecond
			m.Misses = 2
			managers[i] = m
			site := sys.SiteAt(i)
			site.Register("work", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
				if crash && mc.Site.ID() == victim &&
					!mc.Site.Cabinet().ContainsString("E8CRASHED", "once") {
					// Hold the agent here until the crash takes the site
					// (and the agent) down.
					once.Do(func() { close(arrived) })
					<-crashed
				}
				time.Sleep(time.Millisecond)
				bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
				return nil
			}))
		}
		itin := make([]vnet.SiteID, hops)
		for i := range itin {
			itin[i] = sys.SiteAt(i + 1).ID()
		}

		if crash {
			net := sys.Net
			vic := sys.Site(victim)
			go func() {
				<-arrived
				vic.Cabinet().AppendString("E8CRASHED", "once")
				net.Crash(victim)
				close(crashed)
				time.Sleep(40 * time.Millisecond)
				net.Restart(victim)
			}()
		}

		start := time.Now()
		ch, err := managers[0].Launch(ctx, rearguard.Config{
			ID: fmt.Sprintf("e8-%d", trial), Task: "work", Itinerary: itin, Guards: guards,
		}, nil)
		if err != nil {
			return row, err
		}
		res := rearguard.Wait(ch, 2*time.Second)
		if res.Completed {
			row.Completed++
			row.Relaunches += res.Relaunches
			totalTime += time.Since(start)
		}
		sys.Wait()
	}
	if row.Completed > 0 {
		row.MeanTime = totalTime / time.Duration(row.Completed)
	}
	return row, nil
}

// E8Ablation sweeps the guard detection interval and reports recovery
// latency: time from a crash landing mid-journey to journey completion.
type E8AblationRow struct {
	Interval  time.Duration
	Trials    int
	Completed int
	MeanTime  time.Duration
}

// E8IntervalAblation measures completion time under a guaranteed
// mid-journey crash for several detection intervals.
func E8IntervalAblation(ctx context.Context, trials, hops int, intervals []time.Duration, seed int64) ([]E8AblationRow, error) {
	var rows []E8AblationRow
	for _, interval := range intervals {
		row := E8AblationRow{Interval: interval, Trials: trials}
		var total time.Duration
		for trial := 0; trial < trials; trial++ {
			sys := core.NewSystem(hops+1, core.SystemConfig{
				Seed: seed + int64(trial), CallTimeout: 15 * time.Millisecond,
			})
			var managers []*rearguard.Manager
			blocker := make(chan struct{})
			for i := 0; i < sys.Len(); i++ {
				m := rearguard.Install(sys.SiteAt(i))
				m.Interval = interval
				m.Misses = 2
				managers = append(managers, m)
				site := sys.SiteAt(i)
				site.Register("work", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
					if mc.Site.ID() == "site-2" && !mc.Site.Cabinet().ContainsString("CRASHED", "once") {
						<-blocker // hold the agent here until the crash fires
					}
					bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
					return nil
				}))
			}
			itin := make([]vnet.SiteID, hops)
			for i := range itin {
				itin[i] = sys.SiteAt(i + 1).ID()
			}
			// Deterministic crash: site-2 goes down while the agent is
			// blocked inside its task there.
			go func() {
				time.Sleep(10 * time.Millisecond)
				sys.SiteAt(2).Cabinet().AppendString("CRASHED", "once")
				sys.Net.Crash("site-2")
				close(blocker)
				time.Sleep(50 * time.Millisecond)
				sys.Net.Restart("site-2")
			}()

			start := time.Now()
			ch, err := managers[0].Launch(ctx, rearguard.Config{
				ID: fmt.Sprintf("e8a-%d", trial), Task: "work", Itinerary: itin, Guards: true,
			}, nil)
			if err != nil {
				return nil, err
			}
			res := rearguard.Wait(ch, 5*time.Second)
			if res.Completed {
				row.Completed++
				total += time.Since(start)
			}
			sys.Wait()
		}
		if row.Completed > 0 {
			row.MeanTime = total / time.Duration(row.Completed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
