package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/folder"
)

// E2: "One implementation would have each agent deliver the message and
// then create a clone of itself at every adjacent site. Unfortunately,
// here the number of agents increases without bound. If, instead, an agent
// also records its visit in a site-local folder, then an agent can simply
// terminate — rather than clone — when it finds itself at a site that has
// already been visited." (§2)
//
// We flood a ring and measure agent activations: the naive variant grows
// exponentially in its TTL (and would never terminate without one); the
// marking variant and the diffusion system agent stay linear in the number
// of sites.

// E2Row is one flooding measurement.
type E2Row struct {
	Variant     string
	Topology    string
	Sites       int
	TTL         int // 0 when not applicable
	Activations int64
	Delivered   int
	Duplicates  int
	Bytes       int64
}

// naive flooding: clone to every neighbour unconditionally, TTL-bounded.
const e2Naive = `
	cab_append DELIVERED msg
	set ttl [bc_pop TTL]
	if {$ttl > 0} {
		foreach n [neighbors] {
			bc_push TTL [expr {$ttl - 1}]
			spawn $n
			bc_pop TTL
		}
	}
`

// marking flood: record the visit site-locally, terminate when seen.
const e2Marking = `
	if {[cab_visit VISITED msg]} {
		cab_append DELIVERED msg
		foreach n [neighbors] {
			spawn $n
		}
	}
`

// briefcase-visited flood: the E2 ablation. The visited set travels in the
// briefcase instead of being recorded site-locally. It terminates on a
// ring (each branch stops when its own set covers the cycle) but the set
// bloats every message and concurrent branches cannot see each other's
// visits, so sites are delivered to more than once.
const e2Briefcase = `
	set me [host]
	set seen [bc_list VISITED]
	if {[lsearch $seen $me] < 0} {
		bc_push VISITED $me
		cab_append DELIVERED msg
		foreach n [neighbors] {
			if {[lsearch [bc_list VISITED] $n] < 0} {
				spawn $n
			}
		}
	}
`

func buildTopology(sys *core.System, topology string) error {
	switch topology {
	case "ring":
		sys.Ring()
	case "mesh":
		sys.FullMesh()
	case "grid":
		// Caller must pass a square count.
		n := sys.Len()
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return fmt.Errorf("e2: grid needs a square site count, got %d", n)
		}
		return sys.Grid(side, side)
	default:
		return fmt.Errorf("e2: unknown topology %q", topology)
	}
	return nil
}

// E2Flood runs one flooding variant and reports population and coverage.
func E2Flood(ctx context.Context, variant, topology string, sites, ttl int) (E2Row, error) {
	sys := core.NewSystem(sites, core.SystemConfig{Seed: 2})
	if err := buildTopology(sys, topology); err != nil {
		return E2Row{}, err
	}
	row := E2Row{Variant: variant, Topology: topology, Sites: sites, TTL: ttl}

	switch variant {
	case "naive", "marking", "briefcase":
		script := map[string]string{
			"naive": e2Naive, "marking": e2Marking, "briefcase": e2Briefcase,
		}[variant]
		bc := folder.NewBriefcase()
		if variant == "naive" {
			bc.PutString("TTL", fmt.Sprint(ttl))
		}
		if _, err := core.RunScript(ctx, sys.SiteAt(0), script, bc); err != nil {
			return row, err
		}
	case "diffusion":
		bc := folder.NewBriefcase()
		sys.Register("deliver", func(s *core.Site) core.Agent {
			return core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
				mc.Site.Cabinet().AppendString("DELIVERED", "msg")
				return nil
			})
		})
		bc.PutString(folder.ContactFolder, "deliver")
		if err := sys.SiteAt(0).MeetClient(ctx, core.AgDiffusion, bc); err != nil {
			return row, err
		}
	default:
		return row, fmt.Errorf("e2: unknown variant %q", variant)
	}
	sys.Wait()

	row.Activations = sys.TotalActivations()
	row.Bytes = sys.Net.Stats().BytesTotal
	for i := 0; i < sys.Len(); i++ {
		d := sys.SiteAt(i).Cabinet().FolderLen("DELIVERED")
		if d > 0 {
			row.Delivered++
		}
		if d > 1 {
			row.Duplicates += d - 1
		}
	}
	return row, nil
}

// E2Sweep compares the variants across topology sizes.
func E2Sweep(ctx context.Context) ([]E2Row, error) {
	var rows []E2Row
	for _, n := range []int{8, 16} {
		for ttl := 4; ttl <= 8; ttl += 2 {
			row, err := E2Flood(ctx, "naive", "ring", n, ttl)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		for _, variant := range []string{"briefcase", "marking", "diffusion"} {
			row, err := E2Flood(ctx, variant, "ring", n, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	// Grid and mesh coverage for the well-behaved variants.
	for _, topo := range []string{"grid", "mesh"} {
		for _, variant := range []string{"marking", "diffusion"} {
			row, err := E2Flood(ctx, variant, topo, 16, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
