// Package experiments implements the measurement programs behind
// EXPERIMENTS.md. The paper is a position paper without numbered tables or
// figures; each of its qualitative claims is reproduced here as a measured
// experiment (E1..E10 in DESIGN.md). The same code backs the root
// benchmarks and cmd/experiments, which prints the result tables.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// E1: "applications can be constructed in which communication-network
// bandwidth is conserved. Data may be accessed only by an agent executing
// at the same site as the data resides. An agent typically will filter or
// otherwise reduce the data it reads, carrying with it only the relevant
// information" (§1). We place M records of R bytes at each of N sites,
// with a fraction s matching a needle, and compare a roaming filter agent
// against a client that pulls raw data.

// E1Row is one parameter point of the bandwidth experiment.
type E1Row struct {
	Sites       int
	Records     int
	RecordBytes int
	Selectivity float64
	AgentBytes  int64
	ClientBytes int64
	Matches     int
}

// Ratio is client-server bytes over agent bytes (>1 means the agent wins).
func (r E1Row) Ratio() float64 {
	if r.AgentBytes == 0 {
		return 0
	}
	return float64(r.ClientBytes) / float64(r.AgentBytes)
}

// E1Workload builds N sites whose cabinets hold M records of R bytes;
// a fraction sel of the records contain the needle "STORM".
type E1Workload struct {
	Sys    *core.System
	Home   *core.Site
	Stores []vnet.SiteID
}

const e1Needle = "STORM"

// NewE1Workload deploys the record stores and the two access strategies'
// service agents.
func NewE1Workload(sites, records, recordBytes int, sel float64, seed int64) *E1Workload {
	sys := core.NewSystem(sites+1, core.SystemConfig{Seed: seed})
	w := &E1Workload{Sys: sys, Home: sys.SiteAt(0)}
	for i := 1; i <= sites; i++ {
		site := sys.SiteAt(i)
		w.Stores = append(w.Stores, site.ID())
		every := 0
		if sel > 0 {
			every = int(1 / sel)
		}
		for r := 0; r < records; r++ {
			rec := strings.Repeat("x", recordBytes)
			if every > 0 && r%every == 0 {
				rec = e1Needle + rec[len(e1Needle):]
			}
			site.Cabinet().AppendString("DATA", fmt.Sprintf("%03d:%s", r, rec))
		}
		// "store" serves raw records; "grep" filters at the data's site.
		site.Register("store", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			out := bc.Ensure("RAW")
			for _, rec := range mc.Site.Cabinet().Snapshot("DATA").Strings() {
				out.PushString(rec)
			}
			return nil
		}))
		site.Register("grep", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			out := bc.Ensure("MATCHES")
			for _, rec := range mc.Site.Cabinet().Snapshot("DATA").Strings() {
				if strings.Contains(rec, e1Needle) {
					out.PushString(rec)
				}
			}
			return nil
		}))
	}
	return w
}

// filterAgent roams the stores meeting the local grep service, then the
// chain unwinds home with only the matches.
const filterAgentScript = `
	meet grep
	if {[bc_len ITIN] > 0} {
		jump [bc_dequeue ITIN]
	}
`

// RunAgent performs the query with a roaming agent and returns matches.
func (w *E1Workload) RunAgent(ctx context.Context) (int, error) {
	bc := folder.NewBriefcase()
	itin := folder.New()
	for _, s := range w.Stores[1:] {
		itin.PushString(string(s))
	}
	bc.Put("ITIN", itin)
	bc.Ensure(folder.CodeFolder).PushString(filterAgentScript)
	if err := w.Home.RemoteMeet(ctx, w.Stores[0], core.AgTacl, bc); err != nil {
		return 0, err
	}
	m, err := bc.Folder("MATCHES")
	if err != nil {
		return 0, nil
	}
	return m.Len(), nil
}

// RunClient performs the query client-server style: pull all raw records
// home, filter there.
func (w *E1Workload) RunClient(ctx context.Context) (int, error) {
	matches := 0
	for _, s := range w.Stores {
		bc := folder.NewBriefcase()
		if err := w.Home.RemoteMeet(ctx, s, "store", bc); err != nil {
			return 0, err
		}
		raw, err := bc.Folder("RAW")
		if err != nil {
			continue
		}
		for _, rec := range raw.Strings() {
			if strings.Contains(rec, e1Needle) {
				matches++
			}
		}
	}
	return matches, nil
}

// E1Bandwidth measures one parameter point.
func E1Bandwidth(ctx context.Context, sites, records, recordBytes int, sel float64) (E1Row, error) {
	w := NewE1Workload(sites, records, recordBytes, sel, 1)
	defer w.Sys.Wait()
	row := E1Row{Sites: sites, Records: records, RecordBytes: recordBytes, Selectivity: sel}

	w.Sys.Net.ResetStats()
	agentMatches, err := w.RunAgent(ctx)
	if err != nil {
		return row, fmt.Errorf("e1 agent: %w", err)
	}
	row.AgentBytes = w.Sys.Net.Stats().BytesTotal

	w.Sys.Net.ResetStats()
	clientMatches, err := w.RunClient(ctx)
	if err != nil {
		return row, fmt.Errorf("e1 client: %w", err)
	}
	row.ClientBytes = w.Sys.Net.Stats().BytesTotal

	if agentMatches != clientMatches {
		return row, fmt.Errorf("e1: strategies disagree: agent=%d client=%d", agentMatches, clientMatches)
	}
	row.Matches = agentMatches
	return row, nil
}

// E1Sweep runs the standard parameter sweep: record sizes at fixed
// selectivity, then selectivities at fixed record size.
func E1Sweep(ctx context.Context) ([]E1Row, error) {
	var rows []E1Row
	for _, rb := range []int{64, 256, 1024, 4096} {
		row, err := E1Bandwidth(ctx, 8, 50, rb, 0.05)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, sel := range []float64{0.01, 0.1, 0.5} {
		row, err := E1Bandwidth(ctx, 8, 50, 1024, sel)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
