package experiments

import (
	"context"
	"testing"
	"time"
)

// skipIfShort guards the timing-based experiments (the E8 survival runs
// take ~20s of real sleeping) so `go test -short ./...` stays fast; CI runs
// the full suite.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow timing-based experiment; run without -short")
	}
}

func TestE1AgentWinsAtLargeRecords(t *testing.T) {
	row, err := E1Bandwidth(context.Background(), 4, 40, 2048, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if row.Ratio() < 2 {
		t.Fatalf("ratio = %.2f (agent %d vs client %d), want >= 2",
			row.Ratio(), row.AgentBytes, row.ClientBytes)
	}
	if row.Matches == 0 {
		t.Fatal("no matches found")
	}
}

func TestE1ClientWinsAtTinyRecords(t *testing.T) {
	// With tiny records the agent's code+itinerary overhead dominates:
	// the crossover is real and must be visible.
	row, err := E1Bandwidth(context.Background(), 4, 3, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if row.Ratio() > 1 {
		t.Fatalf("expected client-server to win at tiny records, ratio=%.2f", row.Ratio())
	}
}

func TestE2NaiveGrowsMarkingDoesNot(t *testing.T) {
	ctx := context.Background()
	naive4, err := E2Flood(ctx, "naive", "ring", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	naive6, err := E2Flood(ctx, "naive", "ring", 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if naive6.Activations < naive4.Activations*3 {
		t.Fatalf("naive flood not growing: ttl4=%d ttl6=%d", naive4.Activations, naive6.Activations)
	}
	marking, err := E2Flood(ctx, "marking", "ring", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if marking.Delivered != 8 || marking.Duplicates != 0 {
		t.Fatalf("marking flood: %+v", marking)
	}
	if marking.Activations >= naive6.Activations {
		t.Fatalf("marking (%d) should use far fewer activations than naive (%d)",
			marking.Activations, naive6.Activations)
	}
	diffusion, err := E2Flood(ctx, "diffusion", "ring", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diffusion.Delivered != 8 || diffusion.Duplicates != 0 {
		t.Fatalf("diffusion: %+v", diffusion)
	}
}

func TestE2BriefcaseAblation(t *testing.T) {
	// Carrying the visited set in the briefcase terminates but moves more
	// bytes than site-local marking.
	ctx := context.Background()
	briefcase, err := E2Flood(ctx, "briefcase", "ring", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	marking, err := E2Flood(ctx, "marking", "ring", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if briefcase.Delivered != 8 {
		t.Fatalf("briefcase variant delivered %d", briefcase.Delivered)
	}
	if briefcase.Bytes <= marking.Bytes {
		t.Fatalf("briefcase (%d bytes) should move more than marking (%d bytes)",
			briefcase.Bytes, marking.Bytes)
	}
}

func TestE2UnknownInputs(t *testing.T) {
	ctx := context.Background()
	if _, err := E2Flood(ctx, "bogus", "ring", 4, 0); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := E2Flood(ctx, "marking", "bogus", 4, 0); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := E2Flood(ctx, "marking", "grid", 7, 0); err == nil {
		t.Fatal("non-square grid accepted")
	}
}

func TestE5ValidatorStopsAllDoubleSpends(t *testing.T) {
	row, err := E5DoubleSpend(context.Background(), 300, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.WithValidator != 0 {
		t.Fatalf("validator accepted %d double spends", row.WithValidator)
	}
	if row.Naive == 0 {
		t.Fatal("naive acceptance saw no double spends — adversary broken")
	}
	if row.FraudsCaught == 0 {
		t.Fatal("no frauds recorded at the mint")
	}
}

func TestE6AuditAlwaysCorrect(t *testing.T) {
	rows, err := E6AuditMatrix(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Correct != row.Runs {
			t.Fatalf("%s: %d/%d correct", row.Behavior, row.Correct, row.Runs)
		}
	}
}

func TestE7BrokerBeatsRandom(t *testing.T) {
	caps := []int64{8, 4, 2, 1, 1}
	brokerRow, err := E7Placement("broker", 400, caps, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	randomRow, err := E7Placement("random", 400, caps, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	rrRow, err := E7Placement("round-robin", 400, caps, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if brokerRow.Imbalance >= randomRow.Imbalance {
		t.Fatalf("broker %.2f not better than random %.2f", brokerRow.Imbalance, randomRow.Imbalance)
	}
	if brokerRow.Imbalance >= rrRow.Imbalance {
		t.Fatalf("broker %.2f not better than round-robin %.2f", brokerRow.Imbalance, rrRow.Imbalance)
	}
}

func TestE7StalenessDegrades(t *testing.T) {
	caps := []int64{8, 4, 2, 1, 1}
	fresh, err := E7Placement("broker", 400, caps, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := E7Placement("broker", 400, caps, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Imbalance < fresh.Imbalance {
		t.Fatalf("staleness improved placement? fresh=%.2f stale=%.2f",
			fresh.Imbalance, stale.Imbalance)
	}
}

func TestE7UnknownPolicy(t *testing.T) {
	if _, err := E7Placement("bogus", 10, []int64{1}, 0, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestE8GuardsImproveSurvival(t *testing.T) {
	skipIfShort(t)
	ctx := context.Background()
	guarded, err := E8Survival(ctx, 10, 4, 1.0, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	unguarded, err := E8Survival(ctx, 10, 4, 1.0, false, 21)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Completed <= unguarded.Completed {
		t.Fatalf("guards did not help: guarded %d/%d vs unguarded %d/%d",
			guarded.Completed, guarded.Trials, unguarded.Completed, unguarded.Trials)
	}
	if guarded.Completed < 9 {
		t.Fatalf("guarded completion too low: %d/10", guarded.Completed)
	}
}

func TestE8IntervalAblation(t *testing.T) {
	skipIfShort(t)
	rows, err := E8IntervalAblation(context.Background(), 3, 4,
		[]time.Duration{5 * time.Millisecond, 40 * time.Millisecond}, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Completed != row.Trials {
			t.Fatalf("interval %v: %d/%d completed", row.Interval, row.Completed, row.Trials)
		}
	}
	// Slower detection must mean slower recovery.
	if rows[1].MeanTime < rows[0].MeanTime {
		t.Fatalf("recovery faster with slower detection? %v vs %v",
			rows[0].MeanTime, rows[1].MeanTime)
	}
}

func TestE9WindowCrossover(t *testing.T) {
	ctx := context.Background()
	small, err := E9StormCast(ctx, 3, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := E9StormCast(ctx, 3, 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !small.Agree || !large.Agree {
		t.Fatal("strategies disagree on the forecast")
	}
	// Agent bytes are roughly flat; pull bytes grow with the window.
	if large.AgentBytes >= large.PullBytes {
		t.Fatalf("large window: agent %d >= pull %d", large.AgentBytes, large.PullBytes)
	}
	if large.PullBytes < small.PullBytes*5 {
		t.Fatalf("pull bytes did not scale with window: %d vs %d", large.PullBytes, small.PullBytes)
	}
}

func TestE10MailDeliversAll(t *testing.T) {
	row, err := E10Mail(context.Background(), 4, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	if row.Delivered != 24 {
		t.Fatalf("delivered %d/24", row.Delivered)
	}
	withReceipts, err := E10Mail(context.Background(), 4, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if withReceipts.Delivered != 12 {
		t.Fatalf("delivered %d/12 with receipts", withReceipts.Delivered)
	}
}

// The hostile-agent scenario: every attack in E11 must be stopped, the
// honest agent must complete, and the runaway's bill must land at home.
func TestE11HostileAgentsContained(t *testing.T) {
	row, err := E11Security(context.Background(), 10, 25, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !row.UnsignedRejected {
		t.Error("unsigned briefcase was not rejected by the firewall")
	}
	if !row.ForgedRejected {
		t.Error("unknown-key signature was not rejected")
	}
	if !row.ACLBlocked {
		t.Error("capability ACL did not block the forbidden meet")
	}
	if !row.HonestCompleted {
		t.Error("honest funded agent failed to complete")
	}
	if !row.RunawayTerminated {
		t.Error("runaway agent was not terminated")
	}
	if row.SiteEarned != row.RunawayBudget {
		t.Errorf("firewall earned %d from the runaway, want its whole budget %d",
			row.SiteEarned, row.RunawayBudget)
	}
	if row.BillingAtHome == 0 {
		t.Error("no billing record visible at the launching site")
	}
	if !row.MoneySupplyIntact {
		t.Error("minted ECUs not conserved across the experiment")
	}
}

func TestE11HonestAgentKeepsChange(t *testing.T) {
	row, err := E11Security(context.Background(), 50, 25, 23)
	if err != nil {
		t.Fatal(err)
	}
	if !row.HonestCompleted {
		t.Fatal("honest agent failed")
	}
	if row.HonestSpent <= 0 || row.HonestSpent >= 50 {
		t.Fatalf("honest agent spent %d of 50; want a small positive charge", row.HonestSpent)
	}
	if row.HonestRemaining != 50-row.HonestSpent {
		t.Fatalf("remaining %d + spent %d != 50", row.HonestRemaining, row.HonestSpent)
	}
}
