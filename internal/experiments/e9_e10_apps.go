package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/stormcast"
)

// E9: StormCast (§6). A roaming collector agent filters observations at
// each sensor site versus a centralized puller; both must reach the same
// forecast. We sweep the observation window to expose the crossover: for
// tiny windows the agent's fixed briefcase overhead loses; for realistic
// windows filtering at the data site wins by a growing factor.

// E9Row is one StormCast measurement.
type E9Row struct {
	Grid        string
	Window      int
	AgentBytes  int64
	PullBytes   int64
	Agree       bool
	AccuracyPct float64
}

// E9StormCast measures one window size on a w×h grid.
func E9StormCast(ctx context.Context, w, h, window int) (E9Row, error) {
	field := stormcast.NewField(w, h, 1995, core.SystemConfig{})
	defer field.Sys.Wait()
	expert := stormcast.DefaultExpert()
	row := E9Row{Grid: fmt.Sprintf("%dx%d", w, h), Window: window}
	t := window + 10 // ensure full windows

	field.Sys.Net.ResetStats()
	roam, err := stormcast.RoamingForecast(ctx, field.Home, field.Sites, t, window, expert)
	if err != nil {
		return row, err
	}
	row.AgentBytes = field.Sys.Net.Stats().BytesTotal

	field.Sys.Net.ResetStats()
	central, err := stormcast.CentralForecast(ctx, field.Home, field.Sites, t, window, expert)
	if err != nil {
		return row, err
	}
	row.PullBytes = field.Sys.Net.Stats().BytesTotal
	row.Agree = roam.Storm == central.Storm

	acc, err := field.Accuracy(ctx, 0, 20, window, expert, stormcast.RoamingForecast)
	if err != nil {
		return row, err
	}
	row.AccuracyPct = acc * 100
	return row, nil
}

// E9Sweep sweeps the observation window on a 4×4 grid.
func E9Sweep(ctx context.Context) ([]E9Row, error) {
	var rows []E9Row
	for _, window := range []int{5, 15, 50, 150} {
		row, err := E9StormCast(ctx, 4, 4, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E10: agent mail (§6). M messages between users on distinct sites,
// measuring delivery integrity, receipt round trips, and throughput.

// E10Row is one mail measurement.
type E10Row struct {
	Users     int
	Messages  int
	Receipts  bool
	Delivered int
	MsgPerSec float64
}

// E10Mail sends messages pairwise between users and verifies mailboxes.
func E10Mail(ctx context.Context, users, messages int, receipts bool) (E10Row, error) {
	sys := core.NewSystem(users, core.SystemConfig{Seed: 10})
	defer sys.Wait()
	for i := 0; i < users; i++ {
		mail.InstallMailbox(sys.SiteAt(i))
	}
	row := E10Row{Users: users, Messages: messages, Receipts: receipts}

	start := time.Now()
	for i := 0; i < messages; i++ {
		fromSite := sys.SiteAt(i % users)
		toSite := sys.SiteAt((i + 1) % users)
		msg := mail.Message{
			From:    fmt.Sprintf("u%d@%s", i%users, fromSite.ID()),
			To:      fmt.Sprintf("u%d@%s", (i+1)%users, toSite.ID()),
			Subject: fmt.Sprintf("msg-%d", i),
			Body:    "the weather in Tromsø is dramatic",
		}
		if err := mail.Send(ctx, fromSite, msg, receipts); err != nil {
			return row, err
		}
	}
	elapsed := time.Since(start)

	for u := 0; u < users; u++ {
		headers, err := mail.List(ctx, sys.SiteAt(0), fmt.Sprintf("u%d", u), sys.SiteAt(u).ID())
		if err != nil {
			return row, err
		}
		row.Delivered += len(headers)
	}
	if receipts {
		// Every sender must have gotten a receipt back.
		total := 0
		for i := 0; i < users; i++ {
			for u := 0; u < users; u++ {
				total += len(mail.Receipts(sys.SiteAt(i), fmt.Sprintf("u%d", u)))
			}
		}
		if total != messages {
			return row, fmt.Errorf("e10: %d receipts for %d messages", total, messages)
		}
	}
	row.MsgPerSec = float64(messages) / elapsed.Seconds()
	return row, nil
}
