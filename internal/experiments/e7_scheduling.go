package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/broker"
)

// E7: "Brokers are expected to communicate among themselves and with the
// service providers, so that requests can be distributed amongst service
// providers based on load and capacity." (§4)
//
// J jobs of varying duration are placed on providers with skewed
// capacities. We compare broker placement (fed by monitor reports of
// queue length) against random placement, and ablate the monitor report
// staleness: reports every k placements. Queues drain at `capacity` units
// per placement tick, so the imbalance metric is the peak backlog relative
// to a perfectly balanced schedule.

// E7Row is one scheduling measurement.
type E7Row struct {
	Policy     string
	Jobs       int
	Providers  int
	StalenessK int     // monitor reports every k placements (broker policy)
	Imbalance  float64 // peak weighted backlog over ideal (1.0 = perfect)
	PeakQueue  int64
}

// e7Sim is a small discrete-time queueing simulation: one job arrives per
// tick, every provider drains capacity units per tick.
type e7Sim struct {
	caps   []int64
	queues []int64
	peak   float64
}

func newE7Sim(caps []int64) *e7Sim {
	return &e7Sim{caps: caps, queues: make([]int64, len(caps))}
}

func (s *e7Sim) place(provider int, work int64) {
	s.queues[provider] += work
	// Track the worst capacity-weighted backlog.
	worst := 0.0
	for i, q := range s.queues {
		if w := float64(q) / float64(s.caps[i]); w > worst {
			worst = w
		}
	}
	if worst > s.peak {
		s.peak = worst
	}
	for i := range s.queues {
		s.queues[i] -= s.caps[i]
		if s.queues[i] < 0 {
			s.queues[i] = 0
		}
	}
}

// idealPeak estimates the best achievable capacity-weighted backlog for
// the same arrival sequence: work spread exactly in proportion to
// capacity.
func idealPeak(caps []int64, work []int64) float64 {
	var totalCap int64
	for _, c := range caps {
		totalCap += c
	}
	var backlog int64
	peak := 0.0
	for _, w := range work {
		backlog += w
		if b := float64(backlog) / float64(totalCap); b > peak {
			peak = b
		}
		backlog -= totalCap
		if backlog < 0 {
			backlog = 0
		}
	}
	return peak
}

// E7Placement runs J jobs through a placement policy.
// Policies: "broker" (load reports every k placements), "random",
// "round-robin".
func E7Placement(policy string, jobs int, caps []int64, stalenessK int, seed int64) (E7Row, error) {
	rng := rand.New(rand.NewSource(seed))
	sim := newE7Sim(caps)
	b := broker.NewBroker()
	for i, c := range caps {
		b.Register("compute", fmt.Sprintf("s%d", i), "worker", c)
	}
	report := func(seq int64) {
		for i, q := range sim.queues {
			b.Report(fmt.Sprintf("s%d", i), q, seq)
		}
	}
	report(1)

	work := make([]int64, jobs)
	for i := range work {
		work[i] = 1 + rng.Int63n(9) // job durations 1..9
	}

	row := E7Row{Policy: policy, Jobs: jobs, Providers: len(caps), StalenessK: stalenessK}
	for j := 0; j < jobs; j++ {
		var chosen int
		switch policy {
		case "broker":
			site, _, err := b.Place("compute")
			if err != nil {
				return row, err
			}
			if _, err := fmt.Sscanf(site, "s%d", &chosen); err != nil {
				return row, fmt.Errorf("e7: bad site %q", site)
			}
		case "random":
			chosen = rng.Intn(len(caps))
		case "round-robin":
			chosen = j % len(caps)
		default:
			return row, fmt.Errorf("e7: unknown policy %q", policy)
		}
		sim.place(chosen, work[j])
		if policy == "broker" && stalenessK > 0 && (j+1)%stalenessK == 0 {
			report(int64(j + 2))
		}
	}

	ideal := idealPeak(caps, work)
	if ideal == 0 {
		ideal = 1
	}
	row.Imbalance = sim.peak / ideal
	for _, q := range sim.queues {
		if q > row.PeakQueue {
			row.PeakQueue = q
		}
	}
	row.PeakQueue = int64(sim.peak * 10) // peak weighted backlog ×10 for readability
	return row, nil
}

// E7Sweep compares policies and staleness settings on a skewed cluster.
func E7Sweep() ([]E7Row, error) {
	caps := []int64{8, 4, 2, 1, 1}
	const jobs = 400
	var rows []E7Row
	for _, policy := range []string{"random", "round-robin"} {
		row, err := E7Placement(policy, jobs, caps, 0, 7)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, k := range []int{1, 8, 64, 400} {
		row, err := E7Placement("broker", jobs, caps, k, 7)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
