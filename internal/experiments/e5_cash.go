package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cash"
	"repro/internal/core"
)

// E5: "The recipient of such a briefcase has no guarantee that the sending
// agent has not already spent (a copy of) the ECUs being transferred. To
// solve this problem, a trusted validation agent is employed. … An attempt
// by an agent to spend retired or copied ECUs will be foiled if a
// validation agent is always consulted before any service is rendered."
// (§3)
//
// W wallets perform T transfers; an adversary replays an already-spent
// bill with probability p per transfer. We count double-spends accepted
// when every recipient validates (must be 0) versus when recipients accept
// bills at face value (approaches p·T).

// E5Row is one double-spending measurement.
type E5Row struct {
	Transfers     int
	ReplayRate    float64
	WithValidator int // double spends accepted (must be 0)
	Naive         int // double spends accepted without validation
	FraudsCaught  int64
}

// E5DoubleSpend runs the double-spending experiment.
func E5DoubleSpend(ctx context.Context, transfers int, replayRate float64, seed int64) (E5Row, error) {
	sys := core.NewSystem(1, core.SystemConfig{Seed: seed})
	defer sys.Wait()
	bank, err := cash.NewBank(sys.SiteAt(0))
	if err != nil {
		return E5Row{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	row := E5Row{Transfers: transfers, ReplayRate: replayRate}

	// The adversary keeps copies of bills it has already spent.
	var spentCopies []cash.ECU
	naiveSeen := make(map[string]bool)

	for i := 0; i < transfers; i++ {
		var bill cash.ECU
		replay := len(spentCopies) > 0 && rng.Float64() < replayRate
		if replay {
			bill = spentCopies[rng.Intn(len(spentCopies))]
		} else {
			bill, err = bank.Mint.Issue(10)
			if err != nil {
				return row, err
			}
		}

		// Strategy A: recipient validates before rendering service.
		fresh, err := bank.Mint.Validate([]cash.ECU{bill}, nil)
		accepted := err == nil
		if accepted && !replay {
			spentCopies = append(spentCopies, bill) // adversary keeps a copy
			_ = fresh
		}
		if accepted && replay {
			row.WithValidator++ // a double spend slipped through
		}

		// Strategy B: naive recipient checks only that the bill *looks*
		// valid (well-formed, positive) — it cannot see mint state.
		if bill.Amount > 0 {
			if replay && naiveSeen[bill.Serial] {
				row.Naive++ // accepted a bill it (or anyone) already took
			}
			naiveSeen[bill.Serial] = true
		}
	}
	row.FraudsCaught = bank.Mint.Frauds()
	if row.WithValidator != 0 {
		return row, fmt.Errorf("e5: validator accepted %d double spends", row.WithValidator)
	}
	return row, nil
}

// E6: the audit protocol. "Participants document their actions so that a
// third party can perform an audit to find violations of a contract. An
// aggrieved agent requests an audit." (§3) We run purchases across every
// behavior and check the auditor's verdict against ground truth.

// E6Row is one audit-protocol measurement.
type E6Row struct {
	Behavior string
	Runs     int
	Correct  int // verdicts matching ground truth
}

// E6AuditMatrix runs `runs` purchases per behavior and scores the auditor.
func E6AuditMatrix(ctx context.Context, runs int) ([]E6Row, error) {
	behaviors := []struct {
		name string
		b    cash.Behavior
	}{
		{"honest", cash.HonestRun},
		{"buyer-skips-payment", cash.BuyerSkipsPayment},
		{"seller-denies-payment", cash.SellerDeniesPayment},
		{"seller-skips-delivery", cash.SellerSkipsDelivery},
		{"buyer-denies-receipt", cash.BuyerDeniesReceipt},
	}
	var rows []E6Row
	for _, tc := range behaviors {
		sys := core.NewSystem(1, core.SystemConfig{Seed: 6})
		bank, err := cash.NewBank(sys.SiteAt(0))
		if err != nil {
			return nil, err
		}
		row := E6Row{Behavior: tc.name, Runs: runs}
		for i := 0; i < runs; i++ {
			buyer := cash.NewParty(bank, fmt.Sprintf("b%d", i))
			seller := cash.NewParty(bank, fmt.Sprintf("s%d", i))
			funds, err := bank.Mint.IssueMany(100)
			if err != nil {
				return nil, err
			}
			buyer.Wallet.Add(funds...)
			out, err := cash.Purchase(ctx, bank, fmt.Sprintf("c-%s-%d", tc.name, i),
				"svc", 100, buyer, seller, tc.b)
			if err != nil {
				return nil, fmt.Errorf("e6 %s: %w", tc.name, err)
			}
			want := cash.ExpectedVerdict(tc.b)
			if tc.b == cash.HonestRun {
				if !out.Audited {
					row.Correct++ // honest runs need no audit at all
				}
			} else if out.Verdict == want {
				row.Correct++
			}
		}
		sys.Wait()
		rows = append(rows, row)
	}
	return rows, nil
}
