package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/folder"
)

// Meet request wire format:
//
//	request := agentLen:uvarint agent originLen:uvarint origin briefcase
//
// The response to a meet is simply the encoded mutated briefcase.

func encodeMeetRequest(agent, origin string, bc *folder.Briefcase) []byte {
	buf := make([]byte, 0, 16+len(agent)+len(origin)+folder.EncodedSize(bc))
	buf = binary.AppendUvarint(buf, uint64(len(agent)))
	buf = append(buf, agent...)
	buf = binary.AppendUvarint(buf, uint64(len(origin)))
	buf = append(buf, origin...)
	buf = append(buf, folder.EncodeBriefcase(bc)...)
	return buf
}

func decodeMeetRequest(data []byte) (agent, origin string, bc *folder.Briefcase, err error) {
	agent, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request agent: %w", err)
	}
	origin, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request origin: %w", err)
	}
	bc, err = folder.DecodeBriefcase(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request briefcase: %w", err)
	}
	return agent, origin, bc, nil
}

func takeString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data[used:])) < n {
		return "", nil, fmt.Errorf("truncated string field")
	}
	return string(data[used : used+int(n)]), data[used+int(n):], nil
}
