package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/folder"
)

// Meet request wire format:
//
//	request := agentLen:uvarint agent originLen:uvarint origin briefcase
//
// The response to a meet is simply the encoded mutated briefcase.

// appendMeetRequest frames a meet request into dst (typically a pooled
// buffer) and returns the extended slice.
func appendMeetRequest(dst []byte, agent, origin string, bc *folder.Briefcase) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(agent)))
	dst = append(dst, agent...)
	dst = binary.AppendUvarint(dst, uint64(len(origin)))
	dst = append(dst, origin...)
	return folder.AppendBriefcase(dst, bc)
}

func decodeMeetRequest(data []byte) (agent, origin string, bc *folder.Briefcase, err error) {
	agent, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request agent: %w", err)
	}
	origin, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request origin: %w", err)
	}
	bc, err = folder.DecodeBriefcase(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request briefcase: %w", err)
	}
	return agent, origin, bc, nil
}

func takeString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data[used:])) < n {
		return "", nil, fmt.Errorf("truncated string field")
	}
	return string(data[used : used+int(n)]), data[used+int(n):], nil
}
