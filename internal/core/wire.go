package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/folder"
)

// Meet request wire format, v1 (kind "meet"):
//
//	request := agentLen:uvarint agent originLen:uvarint origin briefcase
//
// The response to a v1 meet is simply the encoded mutated briefcase.
//
// Wire protocol v2 (kind "meet2") reuses the same envelope but carries the
// briefcase in the content-addressed delta format (folder/delta.go), and
// the response gains a one-byte tag so the callee can report unresolvable
// refs instead of executing:
//
//	request  := agentLen:uvarint agent originLen:uvarint origin briefcaseΔ
//	response := replyBriefcase briefcaseΔ
//	          | replyMiss count:uvarint { hash[32] }*
//
// A replyMiss means the meet did NOT run: the caller forgets the missed
// hashes and retries once with refs disabled, which cannot miss. Reply
// briefcases may ref only hashes pinned by this request (shipped or
// referenced in it), so a reply ref is always resolvable by the caller —
// there is no client-side miss path. Both ends of a link maintain one
// folder.DeltaCache per peer; see RemoteMeet and handleCall for the
// negotiation (v1 peers answer "unknown message kind", after which the
// caller falls back to v1 for that peer).

// v2 response tags.
const (
	replyBriefcase = 0x00
	replyMiss      = 0x01
)

// appendMeetRequest frames a v1 meet request into dst (typically a pooled
// buffer) and returns the extended slice.
func appendMeetRequest(dst []byte, agent, origin string, bc *folder.Briefcase) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(agent)))
	dst = append(dst, agent...)
	dst = binary.AppendUvarint(dst, uint64(len(origin)))
	dst = append(dst, origin...)
	return folder.AppendBriefcase(dst, bc)
}

// appendMeetRequestV2 frames a v2 meet request: the envelope of v1 with a
// delta-encoded briefcase.
func appendMeetRequestV2(dst []byte, agent, origin string, bc *folder.Briefcase,
	c *folder.DeltaCache, refs func(folder.Hash) ([]byte, bool),
	pin func(folder.Hash, []byte), rec folder.DeltaRecorder) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(agent)))
	dst = append(dst, agent...)
	dst = binary.AppendUvarint(dst, uint64(len(origin)))
	dst = append(dst, origin...)
	return folder.AppendBriefcaseDelta(dst, bc, c, refs, pin, rec)
}

// decodeMeetRequestV2 parses a v2 meet request. A nil briefcase with a
// non-empty missing list means every frame was well-formed but some refs
// could not be resolved; the caller must answer with a miss reply.
func decodeMeetRequestV2(data []byte, resolve func(folder.Hash) ([]byte, bool),
	cached func(folder.Hash, []byte)) (agent, origin string, bc *folder.Briefcase, missing []folder.Hash, err error) {
	agent, data, err = takeString(data)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("core: meet request agent: %w", err)
	}
	origin, data, err = takeString(data)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("core: meet request origin: %w", err)
	}
	bc, missing, err = folder.DecodeBriefcaseDelta(data, resolve, cached)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("core: meet request briefcase: %w", err)
	}
	return agent, origin, bc, missing, nil
}

// appendMissReply frames the "resend these in full" response.
func appendMissReply(dst []byte, missing []folder.Hash) []byte {
	dst = append(dst, replyMiss)
	dst = binary.AppendUvarint(dst, uint64(len(missing)))
	for i := range missing {
		dst = append(dst, missing[i][:]...)
	}
	return dst
}

// decodeMissReply parses the hash list of a replyMiss body.
func decodeMissReply(data []byte) ([]folder.Hash, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: bad miss reply count")
	}
	data = data[n:]
	hashLen := uint64(len(folder.Hash{}))
	// Bound count before multiplying: a forged count near 2^64 must not
	// overflow into a passing length check.
	if count > uint64(len(data))/hashLen || uint64(len(data)) != count*hashLen {
		return nil, fmt.Errorf("core: miss reply: %d bytes for %d hashes", len(data), count)
	}
	out := make([]folder.Hash, count)
	for i := range out {
		copy(out[i][:], data[:hashLen])
		data = data[hashLen:]
	}
	return out, nil
}

func decodeMeetRequest(data []byte) (agent, origin string, bc *folder.Briefcase, err error) {
	agent, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request agent: %w", err)
	}
	origin, data, err = takeString(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request origin: %w", err)
	}
	bc, err = folder.DecodeBriefcase(data)
	if err != nil {
		return "", "", nil, fmt.Errorf("core: meet request briefcase: %w", err)
	}
	return agent, origin, bc, nil
}

func takeString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data[used:])) < n {
		return "", nil, fmt.Errorf("truncated string field")
	}
	return string(data[used : used+int(n)]), data[used+int(n):], nil
}
