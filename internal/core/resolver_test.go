package core

import (
	"errors"
	"testing"

	"repro/internal/folder"
	"repro/internal/vnet"
)

// mapResolver is a fixed agent→site placement table.
type mapResolver map[string]vnet.SiteID

func (m mapResolver) Resolve(agent string) (vnet.SiteID, bool) {
	s, ok := m[agent]
	return s, ok
}

func TestSiteResolveLocalWins(t *testing.T) {
	sys := NewSystem(2, SystemConfig{})
	s0 := sys.SiteAt(0)
	s0.Register("ag_here", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error { return nil }))
	s0.SetResolver(mapResolver{"ag_here": sys.SiteAt(1).ID()})
	// A locally registered agent resolves to this site even when the
	// placement table claims another owner: local registration is ground
	// truth, the ring only covers agents we do not host.
	owner, ok := s0.Resolve("ag_here")
	if !ok || owner != s0.ID() {
		t.Fatalf("Resolve(ag_here) = %q, %v; want local site", owner, ok)
	}
	owner, ok = s0.Resolve("ag_elsewhere")
	if ok {
		t.Fatalf("Resolve(ag_elsewhere) = %q, want miss", owner)
	}
}

func TestMeetForwardsViaResolver(t *testing.T) {
	sys := NewSystem(2, SystemConfig{})
	s0, s1 := sys.SiteAt(0), sys.SiteAt(1)
	s1.Register("ag_remote", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("RAN_AT", string(mc.Site.ID()))
		return nil
	}))
	s0.SetResolver(mapResolver{"ag_remote": s1.ID()})

	bc := folder.NewBriefcase()
	if err := s0.Meet(nil, "ag_remote", bc); err != nil {
		t.Fatalf("forwarded meet: %v", err)
	}
	if ranAt, _ := bc.GetString("RAN_AT"); ranAt != string(s1.ID()) {
		t.Fatalf("ran at %q, want %s", ranAt, s1.ID())
	}
	if bc.Has(FwdFolder) {
		t.Fatal("forward marker leaked into result briefcase")
	}
}

// A meet with a nil briefcase must still forward (the redirect allocates
// one to carry the marker) — not panic on the marker write, and a miss at
// the owner still reports ErrNoAgent.
func TestMeetForwardsNilBriefcase(t *testing.T) {
	sys := NewSystem(2, SystemConfig{})
	s0, s1 := sys.SiteAt(0), sys.SiteAt(1)
	s1.Register("ag_remote", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("RAN_AT", string(mc.Site.ID()))
		return nil
	}))
	s0.SetResolver(mapResolver{"ag_remote": s1.ID(), "ag_ghost": s1.ID()})

	if err := s0.Meet(nil, "ag_remote", nil); err != nil {
		t.Fatalf("forwarded nil-briefcase meet: %v", err)
	}
	if err := s0.Meet(nil, "ag_ghost", nil); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("nil-briefcase meet of unhosted agent: %v, want ErrNoAgent", err)
	}
}

// Inconsistent placement tables must not ping-pong a meet: the forward
// marker caps redirection at exactly one hop, and the second site reports
// the miss instead of bouncing the agent back.
func TestMeetForwardExactlyOneHop(t *testing.T) {
	sys := NewSystem(2, SystemConfig{})
	s0, s1 := sys.SiteAt(0), sys.SiteAt(1)
	// Each site believes the other owns the agent; nobody hosts it.
	s0.SetResolver(mapResolver{"ag_ghost": s1.ID()})
	s1.SetResolver(mapResolver{"ag_ghost": s0.ID()})

	err := s0.Meet(nil, "ag_ghost", folder.NewBriefcase())
	if !errors.Is(err, ErrNoAgent) {
		t.Fatalf("meet of unhosted agent: %v, want ErrNoAgent", err)
	}
}

// A resolver that maps an agent to the asking site itself must not
// self-forward.
func TestMeetResolverSelfTarget(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	s0 := sys.SiteAt(0)
	s0.SetResolver(mapResolver{"ag_missing": s0.ID()})
	if err := s0.Meet(nil, "ag_missing", folder.NewBriefcase()); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("meet: %v, want ErrNoAgent", err)
	}
}

func TestSetResolverNil(t *testing.T) {
	sys := NewSystem(1, SystemConfig{})
	s0 := sys.SiteAt(0)
	s0.SetResolver(nil)
	if err := s0.Meet(nil, "ag_missing", folder.NewBriefcase()); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("meet with nil resolver: %v, want ErrNoAgent", err)
	}
}

func TestHandleKindDispatch(t *testing.T) {
	sys := NewSystem(2, SystemConfig{})
	s0, s1 := sys.SiteAt(0), sys.SiteAt(1)
	s1.HandleKind("test.echo", func(from vnet.SiteID, kind string, payload []byte) ([]byte, error) {
		return append([]byte("echo:"), payload...), nil
	})
	resp, err := s0.Endpoint().Call(t.Context(), s1.ID(), "test.echo", []byte("hi"))
	if err != nil {
		t.Fatalf("extension call: %v", err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	// Unknown kinds still fail with the kernel's standard error.
	if _, err := s0.Endpoint().Call(t.Context(), s1.ID(), "test.none", nil); err == nil {
		t.Fatal("unknown kind succeeded")
	}
}
