package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/folder"
	"repro/internal/vnet"
)

// bigFolder returns a folder whose canonical encoding is comfortably over
// the delta threshold.
func bigFolder(fill byte, n int) *folder.Folder {
	e := make([]byte, n)
	for i := range e {
		e[i] = fill
	}
	return folder.Of(e)
}

// TestRemoteMeetDeltaRoundTrip proves the v2 path is transparent: the
// briefcase a remote meet folds back is identical to what v1 would have
// produced, and a repeat meet with unchanged large folders ships refs.
func TestRemoteMeetDeltaRoundTrip(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	b.Register("stamp", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString(folder.ResultFolder, "stamped at "+string(mc.Site.ID()))
		return nil
	}))

	bc := folder.NewBriefcase()
	bc.Put("BLOB", bigFolder('x', 500))
	bc.Put("FROZEN", bigFolder('f', 300).Freeze())
	bc.PutString("TINY", "below threshold")

	if err := a.RemoteMeet(context.Background(), b.ID(), "stamp", bc); err != nil {
		t.Fatal(err)
	}
	if got, _ := bc.GetString(folder.ResultFolder); got != "stamped at site-1" {
		t.Fatalf("RESULT = %q", got)
	}
	if got, _ := bc.Folder("BLOB"); !got.Equal(bigFolder('x', 500)) {
		t.Fatal("BLOB changed in transit")
	}
	st := a.WireStats()
	if st.MeetsV2 != 1 || st.MeetsV1 != 0 {
		t.Fatalf("stats after first meet: %+v", st)
	}
	if st.RefFolders != 0 {
		t.Fatalf("first meet shipped refs with a cold cache: %+v", st)
	}
	firstFull := st.FullFolders

	// Second meet: BLOB and FROZEN are unchanged → both go as refs, in the
	// request and in the reply.
	if err := a.RemoteMeet(context.Background(), b.ID(), "stamp", bc); err != nil {
		t.Fatal(err)
	}
	st = a.WireStats()
	if st.RefFolders < 2 {
		t.Fatalf("repeat meet shipped no refs: %+v", st)
	}
	if st.FullFolders != firstFull {
		t.Fatalf("repeat meet re-shipped full folders: %+v", st)
	}
	if got, _ := bc.Folder("FROZEN"); !got.Equal(bigFolder('f', 300)) {
		t.Fatal("FROZEN changed in transit")
	}
}

// TestRemoteMeetDeltaMissRecovers evicts the callee's cache between meets:
// the caller's ref must come back as a miss, and the retry must re-ship
// full bytes and still execute the meet exactly once.
func TestRemoteMeetDeltaMissRecovers(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	var meets int
	b.Register("count", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		meets++
		return nil
	}))

	bc := folder.NewBriefcase()
	bc.Put("BLOB", bigFolder('x', 400))
	if err := a.RemoteMeet(context.Background(), b.ID(), "count", bc); err != nil {
		t.Fatal(err)
	}

	// Simulate the callee evicting everything: flood its cache for peer a
	// with junk until the BLOB entry is gone.
	pw := b.peerWire(a.ID())
	for i := 0; i < 20000 && pw.cache.Len() > 0; i++ {
		junk := folder.EncodeFolder(bigFolder(byte(i), 64))
		junk[10] = byte(i >> 8) // vary content
		pw.cache.PutCopy(folder.HashBytes(junk), junk)
	}

	if err := a.RemoteMeet(context.Background(), b.ID(), "count", bc); err != nil {
		t.Fatal(err)
	}
	if meets != 2 {
		t.Fatalf("meets = %d, want 2 (miss retry must not double-execute)", meets)
	}
	if st := a.WireStats(); st.Misses != 1 {
		t.Fatalf("caller observed %d misses, want 1 (%+v)", st.Misses, st)
	}
}

// TestCrossVersionV1CallerServedByV2Site hand-frames a legacy "meet"
// request — what a seed-era binary sends — against a current site.
func TestCrossVersionV1CallerServedByV2Site(t *testing.T) {
	sys := testSystem(t, 2)
	b := sys.SiteAt(1)
	b.Register("echo", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		v, _ := bc.GetString("IN")
		bc.PutString("OUT", "echo:"+v)
		return nil
	}))

	bc := folder.NewBriefcase()
	bc.PutString("IN", "legacy")
	payload := appendMeetRequest(nil, "echo", "site-0", bc)
	node := sys.Net.Node("site-0")
	resp, err := node.Call(context.Background(), b.ID(), msgMeet, payload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := folder.DecodeBriefcase(resp)
	if err != nil {
		t.Fatalf("v1 caller got a non-v1 reply: %v", err)
	}
	if got, _ := out.GetString("OUT"); got != "echo:legacy" {
		t.Fatalf("OUT = %q", got)
	}
}

// TestCrossVersionV2CallerFallsBackToV1Site points a current site at a
// seed-era peer (a raw endpoint speaking only "meet"); the first remote
// meet must negotiate down transparently and subsequent meets must skip
// straight to the legacy frame.
func TestCrossVersionV2CallerFallsBackToV1Site(t *testing.T) {
	net := vnet.NewNetwork(vnet.WithCallTimeout(50 * time.Millisecond))
	a := NewSite(net.AddNode("modern"), SiteConfig{})
	legacy := net.AddNode("legacy")
	// A faithful v1 site: serves "meet" with whole-briefcase framing and
	// answers everything else exactly as the seed kernel did.
	legacy.SetHandler(func(from vnet.SiteID, kind string, payload []byte) ([]byte, error) {
		if kind != msgMeet {
			return nil, fmtErrorfUnknownKind("legacy", kind)
		}
		agent, origin, bc, err := decodeMeetRequest(payload)
		if err != nil {
			return nil, err
		}
		_ = agent
		bc.PutString("SERVED_BY", "legacy for "+origin)
		return folder.EncodeBriefcase(bc), nil
	})

	bc := folder.NewBriefcase()
	bc.Put("BLOB", bigFolder('z', 300))
	for i := 0; i < 2; i++ {
		if err := a.RemoteMeet(context.Background(), "legacy", "anything", bc); err != nil {
			t.Fatalf("meet %d: %v", i, err)
		}
	}
	if got, _ := bc.GetString("SERVED_BY"); got != "legacy for modern" {
		t.Fatalf("SERVED_BY = %q", got)
	}
	st := a.WireStats()
	if st.LegacyPeerFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.LegacyPeerFallbacks)
	}
	if st.MeetsV2 != 1 || st.MeetsV1 != 2 {
		t.Fatalf("protocol mix = v2:%d v1:%d, want one v2 probe then v1 only", st.MeetsV2, st.MeetsV1)
	}
}

// fmtErrorfUnknownKind reproduces the seed kernel's unknown-kind error
// text, which the fallback negotiation keys on.
func fmtErrorfUnknownKind(site, kind string) error {
	return &unknownKindErr{site: site, kind: kind}
}

type unknownKindErr struct{ site, kind string }

func (e *unknownKindErr) Error() string {
	return "core: site " + e.site + ": unknown message kind \"" + e.kind + "\""
}

// TestFallbackMatchIsPeerScoped: an inner itinerary failure mentioning
// another site's unknown-kind refusal must not demote the outer peer.
func TestFallbackMatchIsPeerScoped(t *testing.T) {
	err := fmtErrorfUnknownKind("site-c", msgMeet2)
	if isUnknownKind(wrapAs("core: remote meet x at site-b: "+err.Error()), "site-b") {
		t.Fatal("inner site-c refusal demoted site-b")
	}
	if !isUnknownKind(wrapAs("core: remote meet x at site-b: core: site site-b: unknown message kind \"meet2\""), "site-b") {
		t.Fatal("genuine site-b refusal not detected")
	}
}

func wrapAs(s string) error { return &strErr{s} }

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }

// TestDeltaFoldersDecodeIdentical pins the codec equivalence the delta path
// rests on: a delta encode/decode round trip (cold cache and warm cache)
// yields a briefcase equal to the original.
func TestDeltaFoldersDecodeIdentical(t *testing.T) {
	bc := folder.NewBriefcase()
	bc.Put("A", bigFolder('a', 100))
	bc.Put("B", bigFolder('b', 200).Freeze())
	bc.PutString("C", "small")

	cacheTx := folder.NewDeltaCache(0)
	cacheRx := folder.NewDeltaCache(0)
	for round := 0; round < 2; round++ {
		enc := folder.AppendBriefcaseDelta(nil, bc, cacheTx, cacheTx.Get, nil, nil)
		got, missing, err := folder.DecodeBriefcaseDelta(enc, cacheRx.Get, func(h folder.Hash, seg []byte) {
			cacheRx.PutCopy(h, seg)
		})
		if err != nil || len(missing) > 0 {
			t.Fatalf("round %d: err=%v missing=%d", round, err, len(missing))
		}
		if !bc.Equal(got) {
			t.Fatalf("round %d: delta round trip changed briefcase", round)
		}
	}
}

func init() {
	// Guard against the unknown-kind error text drifting away from what
	// isUnknownKind matches: the negotiation would silently break, failing
	// every meet to a v1 peer instead of falling back.
	err := fmtErrorfUnknownKind("x", msgMeet2)
	if !strings.Contains(err.Error(), "unknown message kind") {
		panic("unknown-kind error text mismatch")
	}
}
