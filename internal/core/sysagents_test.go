package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/folder"
)

func TestAgTaclRunsCode(t *testing.T) {
	sys := testSystem(t, 1)
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push RESULT [expr {6 * 7}]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := bc.GetString(folder.ResultFolder)
	if got != "42" {
		t.Fatalf("RESULT = %q", got)
	}
}

func TestAgTaclMissingCode(t *testing.T) {
	sys := testSystem(t, 1)
	err := sys.SiteAt(0).MeetClient(context.Background(), AgTacl, folder.NewBriefcase())
	if err == nil || !strings.Contains(err.Error(), "CODE") {
		t.Fatalf("err = %v", err)
	}
}

func TestAgTaclPopsCode(t *testing.T) {
	// The paper's ag_tcl pops the CODE folder: after execution the script
	// is consumed unless the agent re-ships itself.
	sys := testSystem(t, 1)
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `bc_push X 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bc.Folder(folder.CodeFolder)
	if f.Len() != 0 {
		t.Fatalf("CODE folder still has %d elements", f.Len())
	}
}

func TestAgTaclScriptError(t *testing.T) {
	sys := testSystem(t, 1)
	_, err := RunScript(context.Background(), sys.SiteAt(0), `error "agent gave up"`, nil)
	if err == nil || !strings.Contains(err.Error(), "agent gave up") {
		t.Fatalf("err = %v", err)
	}
}

func TestAgTaclStepBudgetEnforced(t *testing.T) {
	sys := NewSystem(1, SystemConfig{Site: SiteConfig{MaxSteps: 100}})
	_, err := RunScript(context.Background(), sys.SiteAt(0), `while {1} {set x 1}`, nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestRexecMovesExecution(t *testing.T) {
	sys := testSystem(t, 2)
	dst := sys.SiteAt(1)
	dst.Register("target", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("WHERE", string(mc.Site.ID()))
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-1")
	bc.PutString(folder.ContactFolder, "target")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgRexec, bc); err != nil {
		t.Fatal(err)
	}
	where, _ := bc.GetString("WHERE")
	if where != "site-1" {
		t.Fatalf("WHERE = %q", where)
	}
	if bc.Has(folder.HostFolder) || bc.Has(folder.ContactFolder) {
		t.Fatal("rexec left HOST/CONTACT in the briefcase")
	}
}

func TestRexecMissingFolders(t *testing.T) {
	sys := testSystem(t, 1)
	err := sys.SiteAt(0).MeetClient(context.Background(), AgRexec, folder.NewBriefcase())
	if err == nil || !strings.Contains(err.Error(), "HOST") {
		t.Fatalf("err = %v", err)
	}
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-0")
	err = sys.SiteAt(0).MeetClient(context.Background(), AgRexec, bc)
	if err == nil || !strings.Contains(err.Error(), "CONTACT") {
		t.Fatalf("err = %v", err)
	}
}

func TestRexecDetach(t *testing.T) {
	sys := testSystem(t, 2)
	done := make(chan string, 1)
	sys.SiteAt(1).Register("sink", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		v, _ := bc.GetString("DATA")
		done <- v
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-1")
	bc.PutString(folder.ContactFolder, "sink")
	bc.PutString(DetachFolder, "1")
	bc.PutString("DATA", "async-payload")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgRexec, bc); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "async-payload" {
			t.Fatalf("DATA = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("detached rexec never delivered")
	}
	sys.Wait()
}

func TestCourierDeliversFolder(t *testing.T) {
	sys := testSystem(t, 2)
	var received *folder.Briefcase
	got := make(chan struct{})
	sys.SiteAt(1).Register("mailbox", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		received = bc.Clone()
		bc.PutString(folder.ResultFolder, "delivered-ok")
		close(got)
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-1")
	bc.PutString(folder.ContactFolder, "mailbox")
	bc.PutString(FolderNameFolder, "LETTER")
	bc.Put("LETTER", folder.OfStrings("dear", "agent"))
	bc.PutString("PRIVATE", "must not travel")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgCourier, bc); err != nil {
		t.Fatal(err)
	}
	<-got
	letter, err := received.Folder("LETTER")
	if err != nil || letter.Len() != 2 {
		t.Fatalf("LETTER = %v, %v", letter, err)
	}
	if received.Has("PRIVATE") {
		t.Fatal("courier leaked unrelated folders")
	}
	if origin, _ := received.GetString("ORIGIN"); origin != "site-0" {
		t.Fatalf("ORIGIN = %q", origin)
	}
	// The receiver's RESULT folder is folded back to the sender.
	if res, _ := bc.GetString(folder.ResultFolder); res != "delivered-ok" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestCourierMissingArgs(t *testing.T) {
	sys := testSystem(t, 1)
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-0")
	bc.PutString(folder.ContactFolder, "x")
	bc.PutString(FolderNameFolder, "NOPE")
	err := sys.SiteAt(0).MeetClient(context.Background(), AgCourier, bc)
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("err = %v", err)
	}
}

func TestCourierDetach(t *testing.T) {
	sys := testSystem(t, 2)
	got := make(chan struct{})
	sys.SiteAt(1).Register("mailbox", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		close(got)
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-1")
	bc.PutString(folder.ContactFolder, "mailbox")
	bc.PutString(FolderNameFolder, "LETTER")
	bc.Put("LETTER", folder.OfStrings("hi"))
	bc.PutString(DetachFolder, "1")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgCourier, bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("detached courier never delivered")
	}
	sys.Wait()
}

func TestDiffusionCoversRing(t *testing.T) {
	sys := testSystem(t, 8)
	sys.Ring()
	sys.Register("deliver", func(s *Site) Agent {
		return AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("DELIVERED", "yes")
			return nil
		})
	})
	bc := folder.NewBriefcase()
	bc.PutString(folder.ContactFolder, "deliver")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgDiffusion, bc); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	for i := 0; i < sys.Len(); i++ {
		if sys.SiteAt(i).Cabinet().FolderLen("DELIVERED") != 1 {
			t.Fatalf("site %d delivered %d times, want exactly 1",
				i, sys.SiteAt(i).Cabinet().FolderLen("DELIVERED"))
		}
	}
	sitesFolder, _ := bc.Folder(folder.SitesFolder)
	if sitesFolder.Len() != 8 {
		t.Fatalf("SITES covers %d, want 8: %v", sitesFolder.Len(), sitesFolder.Strings())
	}
}

func TestDiffusionCoversGridExactlyOnce(t *testing.T) {
	sys := testSystem(t, 16)
	if err := sys.Grid(4, 4); err != nil {
		t.Fatal(err)
	}
	sys.Register("deliver", func(s *Site) Agent {
		return AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("DELIVERED", "yes")
			return nil
		})
	})
	bc := folder.NewBriefcase()
	bc.PutString(folder.ContactFolder, "deliver")
	if err := sys.SiteAt(5).MeetClient(context.Background(), AgDiffusion, bc); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	for i := 0; i < sys.Len(); i++ {
		if n := sys.SiteAt(i).Cabinet().FolderLen("DELIVERED"); n != 1 {
			t.Fatalf("site %d delivered %d times", i, n)
		}
	}
}

func TestDiffusionTwoRunsIndependent(t *testing.T) {
	// Distinct DIFF_IDs must not share visit marks.
	sys := testSystem(t, 4)
	sys.Ring()
	sys.Register("deliver", func(s *Site) Agent {
		return AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("DELIVERED", "yes")
			return nil
		})
	})
	for run := 0; run < 2; run++ {
		bc := folder.NewBriefcase()
		bc.PutString(folder.ContactFolder, "deliver")
		if err := sys.SiteAt(0).MeetClient(context.Background(), AgDiffusion, bc); err != nil {
			t.Fatal(err)
		}
	}
	sys.Wait()
	for i := 0; i < sys.Len(); i++ {
		if n := sys.SiteAt(i).Cabinet().FolderLen("DELIVERED"); n != 2 {
			t.Fatalf("site %d delivered %d times, want 2", i, n)
		}
	}
}

func TestDiffusionSurvivesDeadNeighbour(t *testing.T) {
	sys := testSystem(t, 4)
	sys.Ring()
	sys.Register("deliver", func(s *Site) Agent {
		return AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("DELIVERED", "yes")
			return nil
		})
	})
	sys.Net.Crash("site-2")
	bc := folder.NewBriefcase()
	bc.PutString(folder.ContactFolder, "deliver")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgDiffusion, bc); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	// Ring 0-1-2-3: site-2 is dead but 1 and 3 are reachable around it.
	for _, i := range []int{0, 1, 3} {
		if n := sys.SiteAt(i).Cabinet().FolderLen("DELIVERED"); n != 1 {
			t.Fatalf("site %d delivered %d times", i, n)
		}
	}
	errs, err := bc.Folder(folder.ErrorFolder)
	if err != nil || errs.Len() == 0 {
		t.Fatal("failures to reach the dead site were not recorded")
	}
}

func TestDiffusionNoContact(t *testing.T) {
	// A diffusion without CONTACT still covers sites (pure flooding).
	sys := testSystem(t, 4)
	sys.FullMesh()
	bc := folder.NewBriefcase()
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgDiffusion, bc); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	f, _ := bc.Folder(folder.SitesFolder)
	if f.Len() != 4 {
		t.Fatalf("covered %d sites, want 4", f.Len())
	}
}

func TestJumpMigration(t *testing.T) {
	sys := testSystem(t, 3)
	script := `
		# Roam site-0 -> site-1 -> site-2 accumulating a trail.
		bc_push TRAIL [host]
		if {[host] eq "site-0"} { jump site-1 }
		if {[host] eq "site-1"} { jump site-2 }
		bc_push RESULT done
	`
	bc, err := RunScript(context.Background(), sys.SiteAt(0), script, nil)
	if err != nil {
		t.Fatal(err)
	}
	trail, _ := bc.Folder("TRAIL")
	want := []string{"site-0", "site-1", "site-2"}
	got := trail.Strings()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("TRAIL = %v", got)
	}
	if res, _ := bc.GetString(folder.ResultFolder); res != "done" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestJumpStateTravelsInBriefcaseNotVariables(t *testing.T) {
	sys := testSystem(t, 2)
	script := `
		if {[host] eq "site-0"} {
			set local_only precious
			bc_push SAVED kept
			jump site-1
		}
		# At site-1 the variable is gone (restart-style migration) but the
		# briefcase survived.
		if {[info exists local_only]} {
			bc_push RESULT variable-travelled
		} else {
			bc_push RESULT [bc_get SAVED 0]
		}
	`
	bc, err := RunScript(context.Background(), sys.SiteAt(0), script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(folder.ResultFolder); res != "kept" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestJumpToDeadSiteRecoverable(t *testing.T) {
	sys := testSystem(t, 2)
	sys.Net.Crash("site-1")
	script := `
		if {[catch {jump site-1} msg]} {
			bc_push RESULT "stayed: could not move"
		}
	`
	bc, err := RunScript(context.Background(), sys.SiteAt(0), script, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := bc.GetString(folder.ResultFolder)
	if !strings.Contains(res, "stayed") {
		t.Fatalf("RESULT = %q", res)
	}
	// The failed jump must not leave a duplicate CODE element behind.
	f, _ := bc.Folder(folder.CodeFolder)
	if f.Len() != 0 {
		t.Fatalf("CODE has %d elements after failed jump", f.Len())
	}
}

func TestSpawnClones(t *testing.T) {
	sys := testSystem(t, 3)
	script := `
		if {[host] eq "site-0"} {
			spawn site-1
			spawn site-2
			cab_append MARK origin
		} else {
			cab_append MARK clone
		}
	`
	if _, err := RunScript(context.Background(), sys.SiteAt(0), script, nil); err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	if n := sys.SiteAt(0).Cabinet().FolderLen("MARK"); n != 1 {
		t.Fatalf("origin marks = %d", n)
	}
	for i := 1; i < 3; i++ {
		if n := sys.SiteAt(i).Cabinet().FolderLen("MARK"); n != 1 {
			t.Fatalf("site %d marks = %d", i, n)
		}
	}
}

func TestTaclMeetBetweenAgents(t *testing.T) {
	sys := testSystem(t, 1)
	sys.SiteAt(0).Register("greeter", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		who, _ := bc.GetString("WHO")
		bc.PutString("GREETING", "hello "+who)
		return nil
	}))
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push WHO world
		meet greeter
		bc_push RESULT [bc_get GREETING 0]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(folder.ResultFolder); res != "hello world" {
		t.Fatalf("RESULT = %q", res)
	}
}

func TestTaclCabinetCommands(t *testing.T) {
	sys := testSystem(t, 1)
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		cab_append NOTES first
		cab_append NOTES second
		bc_push RESULT [cab_len NOTES]
		bc_push RESULT [cab_contains NOTES first]
		bc_push RESULT [cab_visit NOTES first]
		bc_push RESULT [cab_visit NOTES third]
		bc_push RESULT [cab_list NOTES]
		bc_push RESULT [cab_dequeue NOTES]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bc.Folder(folder.ResultFolder)
	got := f.Strings()
	want := []string{"2", "1", "0", "1", "first second third", "first"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RESULT[%d] = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestTaclBriefcaseCommands(t *testing.T) {
	sys := testSystem(t, 1)
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		bc_push F a
		bc_push F b
		bc_push F c
		bc_push OUT [bc_len F]
		bc_push OUT [bc_pop F]
		bc_push OUT [bc_dequeue F]
		bc_push OUT [bc_peek F]
		bc_push OUT [bc_get F 0]
		bc_set F 0 B
		bc_push OUT [bc_get F 0]
		bc_push OUT [bc_has F]
		bc_del F
		bc_push OUT [bc_has F]
		bc_putlist L {x y z}
		bc_push OUT [bc_list L]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bc.Folder("OUT")
	got := f.Strings()
	want := []string{"3", "c", "a", "b", "b", "B", "1", "0", "x y z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OUT[%d] = %q, want %q (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestTaclRandDeterministic(t *testing.T) {
	mk := func() string {
		sys := NewSystem(1, SystemConfig{Seed: 7})
		bc, err := RunScript(context.Background(), sys.SiteAt(0), `
			bc_push R [rand 1000]
			bc_push R [rand 1000]
		`, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := bc.Folder("R")
		return strings.Join(f.Strings(), ",")
	}
	if mk() != mk() {
		t.Fatal("rand not deterministic for equal seeds")
	}
}

func TestTaclLogGoesToCabinet(t *testing.T) {
	sys := testSystem(t, 1)
	if _, err := RunScript(context.Background(), sys.SiteAt(0), `log "hello log"`, nil); err != nil {
		t.Fatal(err)
	}
	logf := sys.SiteAt(0).Cabinet().Snapshot("LOG")
	if logf.Len() != 1 || !strings.Contains(logf.Strings()[0], "hello log") {
		t.Fatalf("LOG = %v", logf.Strings())
	}
}

func TestRunScriptJumpReportsSuccess(t *testing.T) {
	sys := testSystem(t, 2)
	// A successful jump must report success to the injector; the rest of
	// the script runs at the destination only.
	bc, err := RunScript(context.Background(), sys.SiteAt(0), `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push WHERE [host]
	`, nil)
	if err != nil {
		t.Fatalf("jump surfaced as error: %v", err)
	}
	f, ferr := bc.Folder("WHERE")
	if ferr != nil || f.Len() != 1 {
		t.Fatalf("WHERE = %v, %v", f, ferr)
	}
	if got := f.Strings()[0]; got != "site-1" {
		t.Fatalf("WHERE = %q", got)
	}
}
