// Package core implements the TACOMA kernel: sites, agents, and the meet
// operation. meet is the system's only IPC primitive — "services for
// agents — communication, synchronization, and so on — are provided
// directly by other agents". Migration, couriers, diffusion, brokers,
// electronic cash, and rear guards are all agents reached through meet.
//
// A Site hosts agents. Local meets are function calls that share a
// briefcase by reference; remote meets serialize the briefcase, perform one
// request/response exchange over the site's network endpoint, and fold the
// mutated briefcase back into the caller's. Agents written in TacL arrive
// as source code in their briefcase's CODE folder and are executed by the
// ag_tacl system agent, so a "running agent" never needs to be serialized:
// state travels in the briefcase and execution restarts at the destination.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/folder"
	"repro/internal/sched"
	"repro/internal/tacl"
	"repro/internal/vnet"
)

// Kernel-level errors.
var (
	// ErrNoAgent is returned by meet when the named agent is not
	// registered at the site.
	ErrNoAgent = errors.New("core: no such agent")
	// ErrMeetDepth bounds transitive meet recursion.
	ErrMeetDepth = errors.New("core: meet nesting too deep")
	// ErrRefused is returned when a site's admission policy rejects a meet.
	ErrRefused = errors.New("core: admission refused")
)

// maxMeetDepth bounds transitive meets (agent meets agent meets agent ...),
// protecting a site from mutually recursive agents.
const maxMeetDepth = 64

// Agent is anything that can be met. System agents and application services
// are implemented natively; roaming agents are TacL scripts executed by the
// ag_tacl Agent.
type Agent interface {
	// Meet executes the agent at mc.Site with the given briefcase. The
	// briefcase is shared: mutations are the agent's way of returning
	// results to the initiator.
	Meet(mc *MeetContext, bc *folder.Briefcase) error
}

// AgentFunc adapts a function to the Agent interface.
type AgentFunc func(mc *MeetContext, bc *folder.Briefcase) error

// Meet calls f.
func (f AgentFunc) Meet(mc *MeetContext, bc *folder.Briefcase) error { return f(mc, bc) }

// MeetContext carries the execution context of one meet.
type MeetContext struct {
	// Ctx is the cancellation context for the whole agent computation.
	Ctx context.Context
	// Site is where the agent is executing.
	Site *Site
	// From names the agent that initiated the meet ("" for external
	// clients injecting an agent into the system).
	From string
	// Agent names the agent being met.
	Agent string
	// Depth counts transitive meets.
	Depth int
}

// child derives the context for a nested meet.
func (mc *MeetContext) child(agent string) *MeetContext {
	return &MeetContext{
		Ctx:   mc.Ctx,
		Site:  mc.Site,
		From:  mc.Agent,
		Agent: agent,
		Depth: mc.Depth + 1,
	}
}

// SiteConfig tunes a site's autonomy policies.
type SiteConfig struct {
	// MaxSteps bounds TacL steps per agent activation (0 = default).
	MaxSteps int
	// Admission, if non-nil, is consulted before every meet; returning an
	// error refuses the visiting agent. Sites are autonomous: their
	// administrators control the resources they offer.
	Admission func(agent, from string) error
	// StepHookFactory, if non-nil, builds a per-activation hook invoked on
	// every TacL step of a visiting agent. Returning an error from the
	// hook aborts the agent. The cash package uses this to charge
	// electronic cash for cycles, the paper's mechanism for limiting the
	// damage a runaway agent can do.
	StepHookFactory func(agent, from string) func() error
	// Seed seeds the site-local deterministic RNG exposed to agents.
	Seed int64
	// Cabinet, if non-nil, is adopted as the site's file cabinet instead
	// of a fresh empty one. Durable deployments recover their WAL into a
	// cabinet *before* creating the site — NewSite installs the network
	// handler, so recovery must be complete by then or a boot-window meet
	// could be acknowledged un-journaled and wiped by the replay.
	Cabinet *folder.FileCabinet
	// Durable, if non-nil, is installed as the cabinet's commit barrier
	// (see SetDurable) before the site serves its first call, so no meet
	// is ever acknowledged without its durability barrier.
	Durable CommitSyncer
	// TaclEngine pins agent scripts to a TacL execution engine. The zero
	// value is the bytecode VM; tests pin tacl.EngineAST or
	// tacl.EngineReference to check the engines against each other through
	// the full host-command path.
	TaclEngine tacl.Engine
}

// defaultMaxSteps bounds runaway agents when the site does not configure a
// budget of its own.
const defaultMaxSteps = 1 << 20

// Site is one autonomous node in a TACOMA system: a place where agents
// execute, with its own agent registry and file cabinet.
type Site struct {
	id       vnet.SiteID
	endpoint vnet.Endpoint
	cabinet  *folder.FileCabinet
	cfg      SiteConfig

	// agents is the lock-striped agent registry (see registry.go):
	// concurrent meets on different agents resolve without contending.
	agents *registry

	// guardv holds the installed Guard (see guard.go); atomic so the hot
	// meet path avoids a lock when no guard is installed.
	guardv atomic.Value

	// durablev holds the optional durable-cabinet barrier (see SetDurable);
	// atomic so the hot meet path pays one lock-free load when the cabinet
	// is not write-ahead logged.
	durablev atomic.Value // CommitSyncer

	// resolverv holds the optional agent→site Resolver (see SetResolver):
	// one lock-free load on the meet path's miss branch, nothing when the
	// site is not in a mesh.
	resolverv atomic.Value // Resolver

	// kindExt is the extension dispatch table for network message kinds the
	// kernel itself does not speak (the mesh's gossip frames ride here).
	// Copy-on-write under kindMu, read with one atomic load per call.
	kindMu  sync.Mutex
	kindExt atomic.Value // map[string]vnet.HandlerFunc

	// taclTable is the site's shared TacL command table (builtins + host
	// commands), built once per site; scripts holds the site's compile-once
	// script cache. Together they make a scripted activation free of
	// per-activation parsing and command registration (see taclbind.go).
	taclTable *tacl.Table
	scripts   scriptCache

	// rngSeed/rngSeq drive the lock-free site RNG: each Rand call derives
	// an independent PCG stream from (seed, sequence counter), so
	// concurrent scripted meets never serialize on a shared generator.
	rngSeed uint64
	rngSeq  atomic.Uint64

	// Per-peer wire protocol state: the content-addressed folder cache and
	// the sticky "peer speaks only v1" flag (see RemoteMeet). One entry per
	// peer this site has exchanged meets with, in either direction.
	wiremu    sync.RWMutex
	wirePeers map[vnet.SiteID]*peerWire
	wireStats wireCounters
	wireRec   atomic.Value // func(peer vnet.SiteID, name string, tag byte, n int)

	activations atomic.Int64 // total meets served
	running     atomic.Int64 // currently executing meets

	// sched is the site's zero-goroutine agent scheduler: a bounded worker
	// pool for runnable activations (async meets, parked-agent resumes) and
	// the tracker for detached background work (Go/Wait). Parked agents are
	// registered here volatile-side; their durable continuations live in
	// the cabinet under PARKED: folders (see park.go).
	sched *sched.Scheduler

	// resumer is the site's sched.Resumer identity, allocated once so every
	// Park call registers the same adapter.
	resumer parkResumer
}

// peerWire is this site's wire-protocol state for one peer.
type peerWire struct {
	cache *folder.DeltaCache
	// rec feeds the site's wire counters (and any test hook) for traffic
	// with this peer; built once at peer creation so the hot path does not
	// allocate a closure per meet.
	rec folder.DeltaRecorder
	// v1 is set when the peer answered "unknown message kind" to a meet2:
	// subsequent remote meets to it skip straight to the legacy frame.
	// The demotion is deliberately not permanent — see v1Seq.
	v1 atomic.Bool
	// v1Seq counts meets served on the v1 path; every v1ReprobeEvery'th
	// meet retries v2. The unknown-kind signature is matched on error
	// *text*, which a hostile agent at the destination can forge in its
	// own meet error; periodic re-probing turns a forged demotion from a
	// permanent protocol downgrade into a bounded blip (and lets a peer
	// that upgraded from v1 in place get its delta lane back).
	v1Seq atomic.Uint64
}

// v1ReprobeEvery is how often a v1-demoted peer is retried with v2.
const v1ReprobeEvery = 256

// maxWirePeers bounds the per-peer wire state map. The map is keyed by the
// *claimed* sender site ID, which on an open (unauthenticated) endpoint is
// attacker-chosen: without a bound, a client claiming a fresh site name per
// request would mint a fresh 1MiB-budget DeltaCache each time. Evicting a
// random peer only costs protocol efficiency — its next ref misses and the
// miss fallback re-ships full bytes — never correctness.
const maxWirePeers = 1024

// peerWire returns (creating on first use) the wire state for a peer.
func (s *Site) peerWire(id vnet.SiteID) *peerWire {
	s.wiremu.RLock()
	pw, ok := s.wirePeers[id]
	s.wiremu.RUnlock()
	if ok {
		return pw
	}
	s.wiremu.Lock()
	defer s.wiremu.Unlock()
	if s.wirePeers == nil {
		s.wirePeers = make(map[vnet.SiteID]*peerWire)
	}
	pw, ok = s.wirePeers[id]
	if !ok {
		if len(s.wirePeers) >= maxWirePeers {
			for victim := range s.wirePeers { // random map order
				delete(s.wirePeers, victim)
				break
			}
		}
		pw = &peerWire{cache: folder.NewDeltaCache(0), rec: s.deltaRecorder(id)}
		s.wirePeers[id] = pw
	}
	return pw
}

// wireCounters aggregates delta-protocol accounting across all peers.
type wireCounters struct {
	meetsV2, meetsV1     atomic.Int64
	misses               atomic.Int64
	fullFolders          atomic.Int64
	fullBytes            atomic.Int64
	refFolders           atomic.Int64
	refSavedBytes        atomic.Int64
	legacyPeerFallbacks  atomic.Int64
	forcedFullRetransmit atomic.Int64
}

// WireStats is a snapshot of the site's delta-protocol accounting.
type WireStats struct {
	// MeetsV2/MeetsV1 count outbound remote meets by protocol version.
	MeetsV2, MeetsV1 int64
	// Misses counts miss round trips (a ref the peer could not resolve).
	Misses int64
	// FullFolders/FullBytes count delta-eligible folders (and their
	// canonical bytes) this site shipped in full, in either direction.
	FullFolders, FullBytes int64
	// RefFolders/RefSavedBytes count folders shipped as 32-byte refs and
	// the canonical bytes that therefore did not cross the wire.
	RefFolders, RefSavedBytes int64
	// ForcedFullRetransmits counts miss retries that re-shipped every
	// eligible folder in full.
	ForcedFullRetransmits int64
	// LegacyPeerFallbacks counts peers demoted to the v1 protocol.
	LegacyPeerFallbacks int64
}

// WireStats returns a snapshot of the site's wire accounting.
func (s *Site) WireStats() WireStats {
	return WireStats{
		MeetsV2:               s.wireStats.meetsV2.Load(),
		MeetsV1:               s.wireStats.meetsV1.Load(),
		Misses:                s.wireStats.misses.Load(),
		FullFolders:           s.wireStats.fullFolders.Load(),
		FullBytes:             s.wireStats.fullBytes.Load(),
		RefFolders:            s.wireStats.refFolders.Load(),
		RefSavedBytes:         s.wireStats.refSavedBytes.Load(),
		ForcedFullRetransmits: s.wireStats.forcedFullRetransmit.Load(),
		LegacyPeerFallbacks:   s.wireStats.legacyPeerFallbacks.Load(),
	}
}

// SetWireRecorder installs a hook observing every delta-eligible folder
// entry this site encodes (requests and replies): tag is
// folder.EntryFullCached or folder.EntryRef, n the canonical encoding size
// the entry represents. Tests use it to prove an itinerary ships SIG bytes
// only on the first hop. Pass nil to remove.
func (s *Site) SetWireRecorder(fn func(peer vnet.SiteID, name string, tag byte, n int)) {
	s.wireRec.Store(fn)
}

// deltaRecorder builds the folder.DeltaRecorder feeding the site counters
// (and the test hook, consulted per call so it may be installed any time)
// for traffic with one peer. Built once per peerWire.
func (s *Site) deltaRecorder(peer vnet.SiteID) folder.DeltaRecorder {
	return func(name string, tag byte, n int) {
		if tag == folder.EntryRef {
			s.wireStats.refFolders.Add(1)
			s.wireStats.refSavedBytes.Add(int64(n))
		} else {
			s.wireStats.fullFolders.Add(1)
			s.wireStats.fullBytes.Add(int64(n))
		}
		if hook, _ := s.wireRec.Load().(func(vnet.SiteID, string, byte, int)); hook != nil {
			hook(peer, name, tag, n)
		}
	}
}

// pinPool recycles the per-call hash → encoding pin maps.
var pinPool = sync.Pool{New: func() any { return make(map[folder.Hash][]byte, 8) }}

func getPins() map[folder.Hash][]byte { return pinPool.Get().(map[folder.Hash][]byte) }

func putPins(m map[folder.Hash][]byte) {
	clear(m)
	pinPool.Put(m)
}

// NewSite creates a site bound to the given endpoint and installs the
// system agents (ag_tacl, rexec, courier, diffusion). The endpoint's
// incoming-call handler is taken over by the site.
func NewSite(ep vnet.Endpoint, cfg SiteConfig) *Site {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	cab := cfg.Cabinet
	if cab == nil {
		cab = folder.NewCabinet()
	}
	s := &Site{
		id:        ep.ID(),
		endpoint:  ep,
		cabinet:   cab,
		cfg:       cfg,
		agents:    newRegistry(),
		taclTable: newHostTable(),
		rngSeed:   uint64(cfg.Seed + 1),
		sched:     sched.New(0),
	}
	s.resumer = parkResumer{s}
	if cfg.Durable != nil {
		s.durablev.Store(cfg.Durable)
	}
	registerSystemAgents(s)
	ep.SetHandler(s.handleCall)
	return s
}

// ID returns the site's name.
func (s *Site) ID() vnet.SiteID { return s.id }

// Cabinet returns the site-local file cabinet.
func (s *Site) Cabinet() *folder.FileCabinet { return s.cabinet }

// CommitSyncer is the durability barrier of a write-ahead-logged cabinet
// (store.WAL implements it). Sync returns once every cabinet mutation
// recorded before the call is on stable storage.
type CommitSyncer interface {
	Sync() error
}

// SetDurable marks the site's cabinet as durable: cs.Sync() is invoked at
// the end of every depth-0 meet, so a meet's caller — local client or
// remote peer — only sees the meet complete once its cabinet effects are
// crash-durable. Mutations inside the meet never block individually; the
// one barrier per transaction is what lets the WAL group-commit both the
// mutations of one meet and the barriers of concurrent meets into a single
// fdatasync. Install it right after recovery, before the site serves
// traffic.
func (s *Site) SetDurable(cs CommitSyncer) { s.durablev.Store(cs) }

// Durable returns the installed commit barrier, or nil.
func (s *Site) Durable() CommitSyncer {
	cs, _ := s.durablev.Load().(CommitSyncer)
	return cs
}

// DurableSync forces the durability barrier outside a meet (rear guards arm
// checkpoints from detached goroutines). A site without a durable cabinet
// returns nil immediately.
func (s *Site) DurableSync() error {
	if cs := s.Durable(); cs != nil {
		return cs.Sync()
	}
	return nil
}

// Endpoint returns the site's network attachment.
func (s *Site) Endpoint() vnet.Endpoint { return s.endpoint }

// HandleKind installs a handler for one network message kind, extending the
// kernel's own dispatch (meet, meet2, ping). The mesh layer uses it to serve
// gossip frames over the same endpoint meets travel on. Installing nil
// removes the kind. Kinds the kernel serves itself cannot be overridden.
func (s *Site) HandleKind(kind string, h vnet.HandlerFunc) {
	s.kindMu.Lock()
	defer s.kindMu.Unlock()
	old, _ := s.kindExt.Load().(map[string]vnet.HandlerFunc)
	next := make(map[string]vnet.HandlerFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if h == nil {
		delete(next, kind)
	} else {
		next[kind] = h
	}
	s.kindExt.Store(next)
}

// kindHandler returns the extension handler for kind, or nil.
func (s *Site) kindHandler(kind string) vnet.HandlerFunc {
	m, _ := s.kindExt.Load().(map[string]vnet.HandlerFunc)
	return m[kind]
}

// Resolver maps an agent name to the site that owns it. The mesh's
// consistent-hash ring implements it; the kernel consults it only when a
// meet misses the local registry, so resolution costs nothing on the
// resident hot path.
type Resolver interface {
	// Resolve returns the owning site for an agent, or false when the
	// agent's placement is unknown (the meet then fails with ErrNoAgent).
	Resolve(agent string) (vnet.SiteID, bool)
}

// SetResolver installs the agent→site resolver consulted when a meet misses
// the local registry: if the resolver places the agent at another site, the
// meet transparently forwards there — one hop, never more (see FwdFolder).
// Pass nil to remove.
func (s *Site) SetResolver(r Resolver) { s.resolverv.Store(&r) }

// resolver returns the installed Resolver, or nil.
func (s *Site) resolver() Resolver {
	if p, ok := s.resolverv.Load().(*Resolver); ok {
		return *p
	}
	return nil
}

// Resolve reports which site owns the named agent: this site when the agent
// is registered locally, otherwise whatever the installed resolver says.
func (s *Site) Resolve(agent string) (vnet.SiteID, bool) {
	if _, ok := s.Lookup(agent); ok {
		return s.id, true
	}
	if r := s.resolver(); r != nil {
		return r.Resolve(agent)
	}
	return "", false
}

// FwdFolder marks a briefcase as already redirected once by a resolver.
// The forwarding site plants it; the destination strips it before the agent
// executes and refuses to redirect a marked meet again, so membership-churn
// disagreement between two rings degrades to ErrNoAgent instead of a
// forwarding loop — the at-most-one-redirect-hop invariant.
const FwdFolder = "MESH_FWD"

// Register installs an agent under the given name, replacing any previous
// registration.
func (s *Site) Register(name string, a Agent) { s.agents.register(name, a) }

// Unregister removes a named agent.
func (s *Site) Unregister(name string) { s.agents.unregister(name) }

// Lookup returns the named agent.
func (s *Site) Lookup(name string) (Agent, bool) { return s.agents.lookup(name) }

// AgentNames lists registered agents in sorted order.
func (s *Site) AgentNames() []string { return s.agents.names() }

// Activations reports the total number of meets served by this site.
func (s *Site) Activations() int64 { return s.activations.Load() }

// AgentCount reports the number of registered agents — the resident
// population measure mesh load reports carry.
func (s *Site) AgentCount() int { return s.agents.count() }

// Load reports the number of currently executing meets; the scheduling
// monitor agent reports it to brokers.
func (s *Site) Load() int64 { return s.running.Load() }

// Rand returns a deterministic site-local random int in [0, n). Each call
// seeds a stack-local PCG with (site seed, call sequence number), so there
// is no shared generator state and no lock: concurrent scripted meets that
// used to serialize on one mutex now draw independently. Under
// single-threaded use the sequence is still a pure function of the site
// seed, so equal-seed runs stay identical.
func (s *Site) Rand(n int64) int64 {
	if n <= 0 {
		panic("core: Rand: n must be positive") // matches rand.Int63n's precondition
	}
	var p rand.PCG
	p.Seed(s.rngSeed, s.rngSeq.Add(1))
	// Map the 64-bit draw onto [0, n) with a 128-bit multiply (Lemire);
	// the bias for any realistic n is far below what agent decisions see.
	hi, _ := bits.Mul64(p.Uint64(), uint64(n))
	return int64(hi)
}

// Wait blocks until detached background work (async couriers, diffusion
// clones, async meets, in-flight parked-agent resumes) spawned by this
// site has finished. Tests and benchmarks use it to quiesce the system.
// Parked agents are at rest, not in flight, and do not hold Wait open.
func (s *Site) Wait() { s.sched.Quiesce() }

// Scheduler exposes the site's agent scheduler (stats, quiesce).
func (s *Site) Scheduler() *sched.Scheduler { return s.sched }

// meet executes the named agent locally with the briefcase — the engine
// under the public Meet (see meet.go): the caller blocks until the agent
// terminates the meet; information is exchanged through the shared
// briefcase.
func (s *Site) meet(mc *MeetContext, agent string, bc *folder.Briefcase) error {
	if mc == nil {
		mc = &MeetContext{Ctx: context.Background()}
	}
	if mc.Ctx == nil {
		mc.Ctx = context.Background()
	}
	if mc.Depth >= maxMeetDepth {
		return fmt.Errorf("%w (%d)", ErrMeetDepth, mc.Depth)
	}
	if err := mc.Ctx.Err(); err != nil {
		return err
	}
	// A briefcase carrying the forward marker has already been redirected
	// once: strip the marker (the executing agent never sees it) and
	// remember — a second redirect is refused below.
	forwarded := bc != nil && bc.Has(FwdFolder)
	if forwarded {
		bc.Delete(FwdFolder)
	}
	// The requester of this meet is the currently executing agent
	// (mc.Agent); for network arrivals that is "rexec@<origin>".
	if s.cfg.Admission != nil {
		if err := s.cfg.Admission(agent, mc.Agent); err != nil {
			return fmt.Errorf("%w: %s at %s: %v", ErrRefused, agent, s.id, err)
		}
	}
	if g := s.Guard(); g != nil {
		if err := g.CheckMeet(mc, agent, bc); err != nil {
			return fmt.Errorf("%w: %s at %s: %v", ErrRefused, agent, s.id, err)
		}
	}
	a, ok := s.Lookup(agent)
	if !ok {
		// A parked agent is not registered, but a meet addressed to it is
		// not a miss: deposit the briefcase in its pending folder and
		// enqueue its resume. Checked before the resolver — the parked
		// continuation lives here, so this site is the owner regardless of
		// what a churning ring says.
		if s.deliverParked(agent, bc) {
			if mc.Depth == 0 {
				if cs := s.Durable(); cs != nil {
					if serr := cs.Sync(); serr != nil {
						return fmt.Errorf("core: durable commit at %s: %w", s.id, serr)
					}
				}
			}
			return nil
		}
		if r := s.resolver(); r != nil && !forwarded {
			if owner, placed := r.Resolve(agent); placed && owner != s.id {
				// Misplaced meet: redirect one hop to the owning site. The
				// marker travels with the briefcase so the owner — whose ring
				// may disagree under membership churn — never redirects again.
				// A nil briefcase still needs one to carry the marker.
				if bc == nil {
					bc = folder.NewBriefcase()
				}
				bc.PutString(FwdFolder, string(s.id))
				err := s.remoteMeet(mc.Ctx, owner, agent, bc)
				bc.Delete(FwdFolder)
				return err
			}
		}
		return fmt.Errorf("%w: %q at site %s", ErrNoAgent, agent, s.id)
	}

	sub := &MeetContext{Ctx: mc.Ctx, Site: s, From: mc.Agent, Agent: agent, Depth: mc.Depth + 1}
	s.activations.Add(1)
	s.running.Add(1)
	defer s.running.Add(-1)
	err := a.Meet(sub, bc)
	if mc.Depth == 0 {
		// The whole transitive meet is one transaction: its cabinet
		// mutations become durable before the initiator sees it complete.
		// Nested meets skip the barrier, and a failed barrier fails the
		// meet — the caller must not act on an acknowledgement the site
		// could forget.
		if cs := s.Durable(); cs != nil {
			if serr := cs.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("core: durable commit at %s: %w", s.id, serr)
			}
		}
	}
	return err
}

// remoteMeet executes the named agent at another site, sending the
// briefcase there and folding the mutated briefcase back on success. This
// is the primitive under rexec and the At(dest) meet option; ordinary
// agents use the rexec agent. See RemoteMeet in meet.go for the wire
// format notes.
func (s *Site) remoteMeet(ctx context.Context, dest vnet.SiteID, agent string, bc *folder.Briefcase) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if dest == s.id {
		// A meet addressed to the local site short-circuits the network.
		return s.meet(&MeetContext{Ctx: ctx}, agent, bc)
	}
	pw := s.peerWire(dest)
	if pw.v1.Load() && pw.v1Seq.Add(1)%v1ReprobeEvery != 0 {
		return s.remoteMeetV1(ctx, dest, agent, bc)
	}
	err := s.remoteMeetV2(ctx, dest, agent, bc, pw)
	if err != nil && isUnknownKind(err, dest) && s.peerRefusesMeet2(ctx, dest) {
		// The probe confirmed the peer really cannot dispatch meet2, which
		// means the failed call above never executed — resending it on the
		// legacy frame cannot double-run the meet.
		if !pw.v1.Swap(true) {
			s.wireStats.legacyPeerFallbacks.Add(1) // count peers, not events
		}
		return s.remoteMeetV1(ctx, dest, agent, bc)
	}
	if err == nil && pw.v1.Load() {
		pw.v1.Store(false) // v2 works (again); leave the legacy lane
	}
	return err
}

// peerRefusesMeet2 sends a deliberately empty meet2 frame — which cannot
// dispatch any meet — and reports whether the peer rejects the message kind
// itself. The fallback match above is on error *text*, which an agent at
// the destination can forge inside its own meet error; acting on the text
// alone would resend (and so double-execute) a meet that already ran. The
// probe separates the two cases: a v1 peer refuses the kind, a v2 peer
// fails to decode the empty payload instead.
func (s *Site) peerRefusesMeet2(ctx context.Context, dest vnet.SiteID) bool {
	_, err := s.endpoint.Call(ctx, dest, msgMeet2, nil)
	return err != nil && isUnknownKind(err, dest)
}

// isUnknownKind reports whether err is dest refusing the meet2 message kind
// — the v1-peer signature. The site name is matched so a nested remote
// meet's failure deeper in an itinerary cannot demote the wrong peer.
func isUnknownKind(err error, dest vnet.SiteID) bool {
	return strings.Contains(err.Error(),
		fmt.Sprintf("site %s: unknown message kind %q", dest, msgMeet2))
}

// remoteMeetV1 is the legacy remote meet: whole briefcase bytes both ways.
func (s *Site) remoteMeetV1(ctx context.Context, dest vnet.SiteID, agent string, bc *folder.Briefcase) error {
	s.wireStats.meetsV1.Add(1)
	// The request is framed into a pooled buffer: Endpoint.Call contracts
	// not to retain the payload once it returns, so the buffer is recycled
	// immediately after the exchange.
	payload := appendMeetRequest(folder.GetBuffer(), agent, string(s.id), bc)
	resp, err := s.endpoint.Call(ctx, dest, msgMeet, payload)
	folder.PutBuffer(payload)
	if err != nil {
		return fmt.Errorf("core: remote meet %s at %s: %w", agent, dest, err)
	}
	out, err := folder.DecodeBriefcase(resp)
	if err != nil {
		return fmt.Errorf("core: remote meet %s at %s: bad reply: %w", agent, dest, err)
	}
	bc.ReplaceAll(out)
	return nil
}

// remoteMeetV2 performs one delta-framed remote meet. Pins accumulate the
// stable encodings of every eligible folder this call ships or references,
// and resolve the reply's refs without depending on cache residency; a
// miss reply (the peer evicted something we reffed) forgets the missed
// hashes and retries once with refs disabled, which cannot miss again.
func (s *Site) remoteMeetV2(ctx context.Context, dest vnet.SiteID, agent string, bc *folder.Briefcase, pw *peerWire) error {
	s.wireStats.meetsV2.Add(1)
	// The pin map is allocated (from the pool) only when something is
	// actually pinned: meets whose briefcases carry no delta-eligible
	// folders — the common small-payload case — skip it entirely.
	var pins map[folder.Hash][]byte
	defer func() {
		if pins != nil {
			putPins(pins)
		}
	}()
	pin := func(h folder.Hash, enc []byte) {
		if pins == nil {
			pins = getPins()
		}
		pins[h] = enc
	}
	resolve := func(h folder.Hash) ([]byte, bool) {
		if enc, ok := pins[h]; ok {
			return enc, true
		}
		return pw.cache.Get(h)
	}
	refs := pw.cache.Get
	for attempt := 0; ; attempt++ {
		payload := appendMeetRequestV2(folder.GetBuffer(), agent, string(s.id), bc, pw.cache, refs, pin, pw.rec)
		resp, err := s.endpoint.Call(ctx, dest, msgMeet2, payload)
		folder.PutBuffer(payload)
		if err != nil {
			return fmt.Errorf("core: remote meet %s at %s: %w", agent, dest, err)
		}
		if len(resp) == 0 {
			return fmt.Errorf("core: remote meet %s at %s: empty reply", agent, dest)
		}
		switch resp[0] {
		case replyBriefcase:
			out, missing, err := folder.DecodeBriefcaseDelta(resp[1:], resolve, func(h folder.Hash, enc []byte) {
				pw.cache.PutCopy(h, enc)
			})
			if err != nil {
				return fmt.Errorf("core: remote meet %s at %s: bad reply: %w", agent, dest, err)
			}
			if len(missing) > 0 {
				// The peer broke the pin rule (or our cache lost a same-call
				// pin, which pins exist to prevent); there is no safe retry —
				// the meet already executed.
				return fmt.Errorf("core: remote meet %s at %s: reply referenced %d unknown folder hashes", agent, dest, len(missing))
			}
			bc.ReplaceAll(out)
			return nil
		case replyMiss:
			missing, err := decodeMissReply(resp[1:])
			if err != nil {
				return fmt.Errorf("core: remote meet %s at %s: %w", agent, dest, err)
			}
			s.wireStats.misses.Add(1)
			for _, h := range missing {
				pw.cache.Forget(h)
			}
			if attempt >= 1 {
				return fmt.Errorf("core: remote meet %s at %s: persistent delta miss (%d hashes)", agent, dest, len(missing))
			}
			// Retry with refs disabled: every eligible folder re-ships as
			// cacheable full bytes, repopulating the peer.
			s.wireStats.forcedFullRetransmit.Add(1)
			refs = nil
		default:
			return fmt.Errorf("core: remote meet %s at %s: bad reply tag %#x", agent, dest, resp[0])
		}
	}
}

// Go runs fn detached from the current meet, tracked so Wait can quiesce.
// Detached work is how an agent "continues executing concurrently" after
// terminating a meet. The work runs on its own goroutine (it may block on
// the network); short runnable activations go through the scheduler's
// worker pool instead via Async meets and parked-agent wakeups.
func (s *Site) Go(fn func()) { s.sched.Spawn(fn) }

// Message kinds on the wire.
const (
	msgMeet  = "meet"
	msgMeet2 = "meet2" // delta-framed meet, wire protocol v2
	msgPing  = "ping"
)

// handleCall serves incoming network calls.
func (s *Site) handleCall(from vnet.SiteID, kind string, payload []byte) ([]byte, error) {
	switch kind {
	case msgPing:
		return []byte(strconv.FormatInt(s.endpoint.Incarnation(), 10)), nil
	case msgMeet:
		agent, origin, bc, err := decodeMeetRequest(payload)
		if err != nil {
			return nil, err
		}
		if _, err := s.serveMeet(agent, origin, bc); err != nil {
			return nil, err
		}
		return folder.EncodeBriefcase(bc), nil
	case msgMeet2:
		return s.serveMeet2(from, payload)
	default:
		if h := s.kindHandler(kind); h != nil {
			return h(from, kind, payload)
		}
		return nil, fmt.Errorf("core: site %s: unknown message kind %q", s.id, kind)
	}
}

// serveMeet runs the firewall check and the meet for a network arrival.
func (s *Site) serveMeet(agent, origin string, bc *folder.Briefcase) (*folder.Briefcase, error) {
	if err := s.checkArrival(agent, origin, bc); err != nil {
		return nil, err
	}
	if err := s.dispatchArrival(agent, origin, bc); err != nil {
		return nil, err
	}
	return bc, nil
}

// checkArrival is the firewall check: a guarded site screens inbound agents
// at the network boundary before any local meet is dispatched.
func (s *Site) checkArrival(agent, origin string, bc *folder.Briefcase) error {
	if g := s.Guard(); g != nil {
		if err := g.CheckArrival(origin, agent, bc); err != nil {
			return fmt.Errorf("%w: arrival from %s at %s: %v", ErrRefused, origin, s.id, err)
		}
	}
	return nil
}

// dispatchArrival runs the meet for an admitted network arrival. Meet
// derives the activation's From from mc.Agent, so the network caller's
// identity goes there: agents arriving over the wire are "rexec@<origin>"
// to the destination's policies (admission, billing).
func (s *Site) dispatchArrival(agent, origin string, bc *folder.Briefcase) error {
	mc := &MeetContext{
		Ctx:   context.Background(),
		Site:  s,
		Agent: "rexec@" + origin,
		Depth: 0,
	}
	return s.Meet(mc, agent, bc)
}

// serveMeet2 serves one delta-framed meet: resolve refs against the peer
// cache (answering a miss, without executing, when the caller reffed
// something we no longer hold), run the meet, and delta-encode the reply.
// Reply refs are restricted to hashes pinned by this request, so the
// caller can always resolve them.
func (s *Site) serveMeet2(from vnet.SiteID, payload []byte) ([]byte, error) {
	pw := s.peerWire(from)
	var pins map[folder.Hash][]byte // lazily pooled, as in remoteMeetV2
	defer func() {
		if pins != nil {
			putPins(pins)
		}
	}()
	resolve := func(h folder.Hash) ([]byte, bool) {
		enc, ok := pw.cache.Get(h)
		if ok {
			if pins == nil {
				pins = getPins()
			}
			pins[h] = enc
		}
		return enc, ok
	}
	// Cacheable segments are only *collected* during decode; nothing enters
	// the per-peer cache until the firewall has admitted the arrival. The
	// peer key is the attacker-mintable claimed sender ID, so inserting
	// before CheckArrival would let refused agents pin
	// maxWirePeers × cache-budget bytes of junk on a guarded open site.
	// The segments alias the request payload, which outlives the handler.
	type pending struct {
		h   folder.Hash
		enc []byte
	}
	var admit []pending
	cached := func(h folder.Hash, enc []byte) {
		if pins == nil {
			pins = getPins()
		}
		pins[h] = enc
		admit = append(admit, pending{h, enc})
	}
	agent, origin, bc, missing, err := decodeMeetRequestV2(payload, resolve, cached)
	if err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		s.wireStats.misses.Add(1)
		return appendMissReply(nil, missing), nil
	}
	if err := s.checkArrival(agent, origin, bc); err != nil {
		return nil, err
	}
	// Admitted: make the collected segments durable (the sender inserted
	// them optimistically on ship; a refusal above leaves it believing the
	// invariant holds, which at worst costs one miss round trip later).
	for _, p := range admit {
		pins[p.h] = pw.cache.PutCopy(p.h, p.enc)
	}
	if err := s.dispatchArrival(agent, origin, bc); err != nil {
		return nil, err
	}
	refs := func(h folder.Hash) ([]byte, bool) {
		enc, ok := pins[h]
		return enc, ok
	}
	out := append(make([]byte, 0, 64+bc.Size()), replyBriefcase)
	return folder.AppendBriefcaseDelta(out, bc, pw.cache, refs, nil, pw.rec), nil
}

// Ping checks reachability of another site.
func (s *Site) Ping(ctx context.Context, dest vnet.SiteID, timeout time.Duration) error {
	_, err := s.PingIncarnation(ctx, dest, timeout)
	return err
}

// PingIncarnation checks reachability and returns the destination's boot
// incarnation. The rear-guard failure detector compares incarnations across
// probes: a changed incarnation means the site crashed and restarted — and
// took the agents executing on it down — even if no individual probe ever
// failed.
func (s *Site) PingIncarnation(ctx context.Context, dest vnet.SiteID, timeout time.Duration) (int64, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := s.endpoint.Call(ctx, dest, msgPing, nil)
	if err != nil {
		return 0, err
	}
	inc, err := strconv.ParseInt(string(resp), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad ping reply from %s: %w", dest, err)
	}
	return inc, nil
}
