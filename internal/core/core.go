// Package core implements the TACOMA kernel: sites, agents, and the meet
// operation. meet is the system's only IPC primitive — "services for
// agents — communication, synchronization, and so on — are provided
// directly by other agents". Migration, couriers, diffusion, brokers,
// electronic cash, and rear guards are all agents reached through meet.
//
// A Site hosts agents. Local meets are function calls that share a
// briefcase by reference; remote meets serialize the briefcase, perform one
// request/response exchange over the site's network endpoint, and fold the
// mutated briefcase back into the caller's. Agents written in TacL arrive
// as source code in their briefcase's CODE folder and are executed by the
// ag_tacl system agent, so a "running agent" never needs to be serialized:
// state travels in the briefcase and execution restarts at the destination.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/folder"
	"repro/internal/tacl"
	"repro/internal/vnet"
)

// Kernel-level errors.
var (
	// ErrNoAgent is returned by meet when the named agent is not
	// registered at the site.
	ErrNoAgent = errors.New("core: no such agent")
	// ErrMeetDepth bounds transitive meet recursion.
	ErrMeetDepth = errors.New("core: meet nesting too deep")
	// ErrRefused is returned when a site's admission policy rejects a meet.
	ErrRefused = errors.New("core: admission refused")
)

// maxMeetDepth bounds transitive meets (agent meets agent meets agent ...),
// protecting a site from mutually recursive agents.
const maxMeetDepth = 64

// Agent is anything that can be met. System agents and application services
// are implemented natively; roaming agents are TacL scripts executed by the
// ag_tacl Agent.
type Agent interface {
	// Meet executes the agent at mc.Site with the given briefcase. The
	// briefcase is shared: mutations are the agent's way of returning
	// results to the initiator.
	Meet(mc *MeetContext, bc *folder.Briefcase) error
}

// AgentFunc adapts a function to the Agent interface.
type AgentFunc func(mc *MeetContext, bc *folder.Briefcase) error

// Meet calls f.
func (f AgentFunc) Meet(mc *MeetContext, bc *folder.Briefcase) error { return f(mc, bc) }

// MeetContext carries the execution context of one meet.
type MeetContext struct {
	// Ctx is the cancellation context for the whole agent computation.
	Ctx context.Context
	// Site is where the agent is executing.
	Site *Site
	// From names the agent that initiated the meet ("" for external
	// clients injecting an agent into the system).
	From string
	// Agent names the agent being met.
	Agent string
	// Depth counts transitive meets.
	Depth int
}

// child derives the context for a nested meet.
func (mc *MeetContext) child(agent string) *MeetContext {
	return &MeetContext{
		Ctx:   mc.Ctx,
		Site:  mc.Site,
		From:  mc.Agent,
		Agent: agent,
		Depth: mc.Depth + 1,
	}
}

// SiteConfig tunes a site's autonomy policies.
type SiteConfig struct {
	// MaxSteps bounds TacL steps per agent activation (0 = default).
	MaxSteps int
	// Admission, if non-nil, is consulted before every meet; returning an
	// error refuses the visiting agent. Sites are autonomous: their
	// administrators control the resources they offer.
	Admission func(agent, from string) error
	// StepHookFactory, if non-nil, builds a per-activation hook invoked on
	// every TacL step of a visiting agent. Returning an error from the
	// hook aborts the agent. The cash package uses this to charge
	// electronic cash for cycles, the paper's mechanism for limiting the
	// damage a runaway agent can do.
	StepHookFactory func(agent, from string) func() error
	// Seed seeds the site-local deterministic RNG exposed to agents.
	Seed int64
}

// defaultMaxSteps bounds runaway agents when the site does not configure a
// budget of its own.
const defaultMaxSteps = 1 << 20

// Site is one autonomous node in a TACOMA system: a place where agents
// execute, with its own agent registry and file cabinet.
type Site struct {
	id       vnet.SiteID
	endpoint vnet.Endpoint
	cabinet  *folder.FileCabinet
	cfg      SiteConfig

	// agents is the lock-striped agent registry (see registry.go):
	// concurrent meets on different agents resolve without contending.
	agents *registry

	// guardv holds the installed Guard (see guard.go); atomic so the hot
	// meet path avoids a lock when no guard is installed.
	guardv atomic.Value

	// taclTable is the site's shared TacL command table (builtins + host
	// commands), built once per site; scripts holds the site's compile-once
	// script cache. Together they make a scripted activation free of
	// per-activation parsing and command registration (see taclbind.go).
	taclTable *tacl.Table
	scripts   scriptCache

	// rngSeed/rngSeq drive the lock-free site RNG: each Rand call derives
	// an independent PCG stream from (seed, sequence counter), so
	// concurrent scripted meets never serialize on a shared generator.
	rngSeed uint64
	rngSeq  atomic.Uint64

	activations atomic.Int64 // total meets served
	running     atomic.Int64 // currently executing meets
	bg          workTracker
}

// workTracker counts detached background work. A plain sync.WaitGroup is
// the wrong tool here: detached agents spawn further detached work from
// network-handler goroutines the tracker does not own, so Add could start
// while a concurrent Wait observes zero — a documented WaitGroup misuse
// that the race detector flags. This tracker serializes the counter under
// a mutex and waits on a condition variable, giving the same quiesce
// semantics (Wait returns at a moment the counter is zero) without the
// race.
type workTracker struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (w *workTracker) add() {
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
}

func (w *workTracker) done() {
	w.mu.Lock()
	w.n--
	if w.n == 0 && w.cond != nil {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

func (w *workTracker) wait() {
	w.mu.Lock()
	if w.cond == nil {
		w.cond = sync.NewCond(&w.mu)
	}
	for w.n > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// NewSite creates a site bound to the given endpoint and installs the
// system agents (ag_tacl, rexec, courier, diffusion). The endpoint's
// incoming-call handler is taken over by the site.
func NewSite(ep vnet.Endpoint, cfg SiteConfig) *Site {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	s := &Site{
		id:        ep.ID(),
		endpoint:  ep,
		cabinet:   folder.NewCabinet(),
		cfg:       cfg,
		agents:    newRegistry(),
		taclTable: newHostTable(),
		rngSeed:   uint64(cfg.Seed + 1),
	}
	registerSystemAgents(s)
	ep.SetHandler(s.handleCall)
	return s
}

// ID returns the site's name.
func (s *Site) ID() vnet.SiteID { return s.id }

// Cabinet returns the site-local file cabinet.
func (s *Site) Cabinet() *folder.FileCabinet { return s.cabinet }

// Endpoint returns the site's network attachment.
func (s *Site) Endpoint() vnet.Endpoint { return s.endpoint }

// Register installs an agent under the given name, replacing any previous
// registration.
func (s *Site) Register(name string, a Agent) { s.agents.register(name, a) }

// Unregister removes a named agent.
func (s *Site) Unregister(name string) { s.agents.unregister(name) }

// Lookup returns the named agent.
func (s *Site) Lookup(name string) (Agent, bool) { return s.agents.lookup(name) }

// AgentNames lists registered agents in sorted order.
func (s *Site) AgentNames() []string { return s.agents.names() }

// Activations reports the total number of meets served by this site.
func (s *Site) Activations() int64 { return s.activations.Load() }

// Load reports the number of currently executing meets; the scheduling
// monitor agent reports it to brokers.
func (s *Site) Load() int64 { return s.running.Load() }

// Rand returns a deterministic site-local random int in [0, n). Each call
// seeds a stack-local PCG with (site seed, call sequence number), so there
// is no shared generator state and no lock: concurrent scripted meets that
// used to serialize on one mutex now draw independently. Under
// single-threaded use the sequence is still a pure function of the site
// seed, so equal-seed runs stay identical.
func (s *Site) Rand(n int64) int64 {
	if n <= 0 {
		panic("core: Rand: n must be positive") // matches rand.Int63n's precondition
	}
	var p rand.PCG
	p.Seed(s.rngSeed, s.rngSeq.Add(1))
	// Map the 64-bit draw onto [0, n) with a 128-bit multiply (Lemire);
	// the bias for any realistic n is far below what agent decisions see.
	hi, _ := bits.Mul64(p.Uint64(), uint64(n))
	return int64(hi)
}

// Wait blocks until detached background work (async couriers, diffusion
// clones) spawned by this site has finished. Tests and benchmarks use it to
// quiesce the system.
func (s *Site) Wait() { s.bg.wait() }

// Meet executes the named agent locally with the briefcase. It implements
// the paper's "meet B with bc": the caller blocks until B terminates the
// meet; information is exchanged through the shared briefcase.
func (s *Site) Meet(mc *MeetContext, agent string, bc *folder.Briefcase) error {
	if mc == nil {
		mc = &MeetContext{Ctx: context.Background()}
	}
	if mc.Ctx == nil {
		mc.Ctx = context.Background()
	}
	if mc.Depth >= maxMeetDepth {
		return fmt.Errorf("%w (%d)", ErrMeetDepth, mc.Depth)
	}
	if err := mc.Ctx.Err(); err != nil {
		return err
	}
	// The requester of this meet is the currently executing agent
	// (mc.Agent); for network arrivals that is "rexec@<origin>".
	if s.cfg.Admission != nil {
		if err := s.cfg.Admission(agent, mc.Agent); err != nil {
			return fmt.Errorf("%w: %s at %s: %v", ErrRefused, agent, s.id, err)
		}
	}
	if g := s.Guard(); g != nil {
		if err := g.CheckMeet(mc, agent, bc); err != nil {
			return fmt.Errorf("%w: %s at %s: %v", ErrRefused, agent, s.id, err)
		}
	}
	a, ok := s.Lookup(agent)
	if !ok {
		return fmt.Errorf("%w: %q at site %s", ErrNoAgent, agent, s.id)
	}

	sub := &MeetContext{Ctx: mc.Ctx, Site: s, From: mc.Agent, Agent: agent, Depth: mc.Depth + 1}
	s.activations.Add(1)
	s.running.Add(1)
	defer s.running.Add(-1)
	return a.Meet(sub, bc)
}

// MeetClient starts a computation from outside the agent system: it meets
// the named local agent with a fresh context.
func (s *Site) MeetClient(ctx context.Context, agent string, bc *folder.Briefcase) error {
	return s.Meet(&MeetContext{Ctx: ctx}, agent, bc)
}

// RemoteMeet executes the named agent at another site, sending the
// briefcase there and folding the mutated briefcase back on success. This
// is the primitive under rexec; ordinary agents use the rexec agent.
func (s *Site) RemoteMeet(ctx context.Context, dest vnet.SiteID, agent string, bc *folder.Briefcase) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if dest == s.id {
		// A meet addressed to the local site short-circuits the network.
		return s.Meet(&MeetContext{Ctx: ctx}, agent, bc)
	}
	// The request is framed into a pooled buffer: Endpoint.Call contracts
	// not to retain the payload once it returns, so the buffer is recycled
	// immediately after the exchange.
	payload := appendMeetRequest(folder.GetBuffer(), agent, string(s.id), bc)
	resp, err := s.endpoint.Call(ctx, dest, msgMeet, payload)
	folder.PutBuffer(payload)
	if err != nil {
		return fmt.Errorf("core: remote meet %s at %s: %w", agent, dest, err)
	}
	out, err := folder.DecodeBriefcase(resp)
	if err != nil {
		return fmt.Errorf("core: remote meet %s at %s: bad reply: %w", agent, dest, err)
	}
	bc.ReplaceAll(out)
	return nil
}

// Go runs fn detached from the current meet, tracked so Wait can quiesce.
// Detached work is how an agent "continues executing concurrently" after
// terminating a meet.
func (s *Site) Go(fn func()) {
	s.bg.add()
	go func() {
		defer s.bg.done()
		fn()
	}()
}

// Message kinds on the wire.
const (
	msgMeet = "meet"
	msgPing = "ping"
)

// handleCall serves incoming network calls.
func (s *Site) handleCall(from vnet.SiteID, kind string, payload []byte) ([]byte, error) {
	switch kind {
	case msgPing:
		return []byte(strconv.FormatInt(s.endpoint.Incarnation(), 10)), nil
	case msgMeet:
		agent, origin, bc, err := decodeMeetRequest(payload)
		if err != nil {
			return nil, err
		}
		// The firewall check: a guarded site screens inbound agents at the
		// network boundary before any local meet is dispatched.
		if g := s.Guard(); g != nil {
			if err := g.CheckArrival(origin, agent, bc); err != nil {
				return nil, fmt.Errorf("%w: arrival from %s at %s: %v", ErrRefused, origin, s.id, err)
			}
		}
		// Meet derives the activation's From from mc.Agent, so the network
		// caller's identity goes there: agents arriving over the wire are
		// "rexec@<origin>" to the destination's policies (admission,
		// billing).
		mc := &MeetContext{
			Ctx:   context.Background(),
			Site:  s,
			Agent: "rexec@" + origin,
			Depth: 0,
		}
		if err := s.Meet(mc, agent, bc); err != nil {
			return nil, err
		}
		return folder.EncodeBriefcase(bc), nil
	default:
		return nil, fmt.Errorf("core: site %s: unknown message kind %q", s.id, kind)
	}
}

// Ping checks reachability of another site.
func (s *Site) Ping(ctx context.Context, dest vnet.SiteID, timeout time.Duration) error {
	_, err := s.PingIncarnation(ctx, dest, timeout)
	return err
}

// PingIncarnation checks reachability and returns the destination's boot
// incarnation. The rear-guard failure detector compares incarnations across
// probes: a changed incarnation means the site crashed and restarted — and
// took the agents executing on it down — even if no individual probe ever
// failed.
func (s *Site) PingIncarnation(ctx context.Context, dest vnet.SiteID, timeout time.Duration) (int64, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := s.endpoint.Call(ctx, dest, msgPing, nil)
	if err != nil {
		return 0, err
	}
	inc, err := strconv.ParseInt(string(resp), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad ping reply from %s: %w", dest, err)
	}
	return inc, nil
}
