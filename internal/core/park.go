package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/folder"
)

// Parking: a resident agent between meets. The paper's vision is agents
// that live at sites for hours — StormCast sensors, broker monitors —
// waiting for work. A parked agent costs no goroutine and no registry
// entry; it is two pieces of state:
//
//   - volatile: an entry in the site scheduler's parked table (key, wake
//     topic, resumer) — see internal/sched.
//   - durable: a continuation in the site cabinet under "PARKED:<name>",
//     holding the agent's briefcase with its source re-pushed onto CODE —
//     the same restart-style trick migration uses, so resuming is just
//     another ag_tacl meet. The briefcase also carries the continuation
//     metadata (name, watch folder, watch watermark, park hop count) in
//     PARK_* folders the resumed script can read.
//
// The cabinet is the WAL-journaled store, so a parked agent survives a
// crash exactly like a rear-guard checkpoint: after store.Open replays the
// log, RecoverParked re-registers every PARKED: folder with the scheduler.
//
// Wakeup sources: a meet addressed to the parked name (deliverParked —
// briefcase deposited in "PARK_PENDING:<name>", task enqueued) and topic
// wakes (Site.Wake, called by mail on deposit with the mailbox folder as
// the topic). Both are idempotent and race-free against each other.

// Cabinet and briefcase folder names used by parking.
const (
	// ParkedFolderPrefix prefixes the cabinet folder holding one parked
	// agent's continuation: [name, watch folder, encoded briefcase].
	ParkedFolderPrefix = "PARKED:"
	// PendingFolderPrefix prefixes the cabinet folder queueing briefcases
	// delivered to a parked agent; each element is one encoded briefcase.
	PendingFolderPrefix = "PARK_PENDING:"

	// ParkNameFolder (in the parked briefcase) holds the park name.
	ParkNameFolder = "PARK_NAME"
	// ParkWatchFolder holds the cabinet folder the agent watches ("" none).
	ParkWatchFolder = "PARK_WATCH"
	// ParkWmarkFolder holds the watch folder's length at park time: the
	// resumed script reads entries past this watermark as new.
	ParkWmarkFolder = "PARK_WMARK"
	// ParkHopFolder counts how many times this agent has parked.
	ParkHopFolder = "PARK_HOP"
)

// ParkedFolder returns the cabinet folder holding name's continuation.
func ParkedFolder(name string) string { return ParkedFolderPrefix + name }

// PendingFolder returns the cabinet folder queueing name's deliveries.
func PendingFolder(name string) string { return PendingFolderPrefix + name }

// Park parks an agent continuation at this site under name. The briefcase
// must carry resumable source on CODE (hostPark re-pushes the running
// script, the same way jump does); it is stamped with the PARK_* metadata
// folders, persisted in the cabinet, and registered with the scheduler.
// The agent wakes when a meet is addressed to name, when Site.Wake is
// called with watch as the topic (mail does this on deposit), or — after a
// crash — when RecoverParked finds work arrived before the crash.
//
// Re-parking an existing name replaces its continuation with a fresh
// watermark. Park returns with the continuation durable in the cabinet
// (the WAL barrier, when installed, is the enclosing meet's depth-0 sync).
func (s *Site) Park(name, watch string, bc *folder.Briefcase) error {
	if name == "" {
		return errors.New("core: park: empty agent name")
	}
	if bc == nil || !bc.Has(folder.CodeFolder) {
		return fmt.Errorf("core: park %q: briefcase has no %s folder to resume", name, folder.CodeFolder)
	}
	hop := 0
	if h, err := bc.GetString(ParkHopFolder); err == nil {
		hop, _ = strconv.Atoi(h)
	}
	wmark := 0
	if watch != "" {
		wmark = s.cabinet.FolderLen(watch)
	}
	bc.PutString(ParkNameFolder, name)
	bc.PutString(ParkWatchFolder, watch)
	bc.PutString(ParkWmarkFolder, strconv.Itoa(wmark))
	bc.PutString(ParkHopFolder, strconv.Itoa(hop+1))

	f := folder.New()
	f.PushString(name)
	f.PushString(watch)
	f.PushOwned(folder.EncodeBriefcase(bc))
	s.cabinet.Put(ParkedFolder(name), f)
	s.sched.Park(name, watch, s.resumer)
	// Close the lost-wakeup window: a delivery or watched-folder append
	// that landed between the two registrations above saw the durable
	// continuation but no scheduler entry to wake. Re-checking after
	// registration means such work wakes the agent at most one extra time —
	// and a spurious resume re-parks harmlessly.
	if s.cabinet.FolderLen(PendingFolder(name)) > 0 ||
		(watch != "" && s.cabinet.FolderLen(watch) > wmark) {
		s.sched.Wake(name)
	}
	return nil
}

// deliverParked intercepts a meet addressed to a parked agent: the
// briefcase is deposited in the agent's pending folder and its resume is
// enqueued. Reports false when name has no parked continuation here.
//
// Delivery is asynchronous by construction — the meet returns before the
// parked agent runs — so unlike a rendezvous meet the caller sees no
// briefcase mutations. A delivery racing the agent's retirement (its
// resumed script finishing without re-parking) may be dropped with the
// continuation; agents that need an always-on inbox keep a mailbox, whose
// cabinet folder outlives any one park.
func (s *Site) deliverParked(name string, bc *folder.Briefcase) bool {
	if s.cabinet.FolderLen(ParkedFolder(name)) == 0 {
		return false
	}
	if bc == nil {
		bc = folder.NewBriefcase()
	}
	s.cabinet.Append(PendingFolder(name), folder.EncodeBriefcase(bc))
	s.sched.Wake(name)
	return true
}

// Wake wakes every agent parked on topic — typically a cabinet folder name
// some producer just appended to (mail wakes the mailbox folder on each
// deposit). Returns how many agents were woken. Waking a topic nobody is
// parked on is a free no-op, so producers call it unconditionally.
func (s *Site) Wake(topic string) int { return s.sched.WakeTopic(topic) }

// IsParked reports whether name has a parked continuation at this site.
func (s *Site) IsParked(name string) bool { return s.sched.IsParked(name) }

// ParkedCount reports the parked-agent population, the counterpart of
// AgentCount for resident agents at rest.
func (s *Site) ParkedCount() int { return s.sched.ParkedCount() }

// parkResumer adapts Site to sched.Resumer without widening Site's API.
type parkResumer struct{ s *Site }

// Resume runs a parked agent's continuation. It executes on a scheduler
// pool worker, as a fresh depth-0 ag_tacl meet of the continuation
// briefcase — restart-style, exactly like arrival after a jump. If the run
// ends without re-parking (the script completed, jumped away, or errored)
// the continuation is spent and its cabinet state is retired.
func (r parkResumer) Resume(key string) {
	s := r.s
	cont := s.cabinet.Snapshot(ParkedFolder(key))
	if cont.Len() < 3 {
		// Stale wake: the continuation was already retired (or never
		// committed). Nothing to run.
		return
	}
	enc, err := cont.At(2)
	if err == nil {
		var bc *folder.Briefcase
		if bc, err = folder.DecodeBriefcase(enc); err == nil {
			mc := &MeetContext{Ctx: context.Background(), Site: s, Agent: key}
			err = s.meet(mc, AgTacl, bc)
		}
	}
	if err != nil {
		s.cabinet.AppendString("LOG", fmt.Sprintf("park resume %s: %v", key, err))
	}
	// Retire only if the run left the continuation exactly as we found it —
	// meaning it did not re-park. The volatile parked bit is the wrong
	// signal here: a delivery racing this return may have already woken the
	// re-parked agent (consuming its scheduler entry and queueing the next
	// resume), and retiring on !IsParked would delete the continuation out
	// from under that in-flight task, losing the wakeup. A re-park always
	// rewrites PARKED:<key> with an incremented PARK_HOP, so unchanged
	// bytes mean spent: retire the durable continuation first so meets stop
	// treating the name as parked, then the pending queue (anything
	// deposited after this point is dead-lettered; see deliverParked).
	after := s.cabinet.Snapshot(ParkedFolder(key))
	if cur, aerr := after.At(2); after.Len() >= 3 && aerr == nil && bytes.Equal(cur, enc) {
		s.cabinet.Delete(ParkedFolder(key))
		s.cabinet.Delete(PendingFolder(key))
	}
}

// RecoverParked re-registers every parked continuation found in the
// cabinet with the scheduler, returning how many were recovered. Call it
// after store.Open has replayed the WAL (tacomad does, next to rear-guard
// recovery). Agents whose pending queue or watched folder gained entries
// before the crash are woken immediately; the rest stay parked, costing
// nothing until work arrives. Malformed continuations are dropped with a
// LOG entry rather than wedging recovery.
func (s *Site) RecoverParked() int {
	n := 0
	for _, name := range s.cabinet.Names() {
		if !strings.HasPrefix(name, ParkedFolderPrefix) {
			continue
		}
		key := strings.TrimPrefix(name, ParkedFolderPrefix)
		cont := s.cabinet.Snapshot(name)
		watch := ""
		wmark := 0
		ok := cont.Len() >= 3
		if ok {
			if w, err := cont.StringAt(1); err == nil {
				watch = w
			}
			enc, err := cont.At(2)
			if err != nil {
				ok = false
			} else if bc, derr := folder.DecodeBriefcase(enc); derr != nil {
				ok = false
			} else if m, merr := bc.GetString(ParkWmarkFolder); merr == nil {
				wmark, _ = strconv.Atoi(m)
			}
		}
		if !ok {
			s.cabinet.AppendString("LOG", "park recover: dropping malformed "+name)
			s.cabinet.Delete(name)
			s.cabinet.Delete(PendingFolder(key))
			continue
		}
		s.sched.Park(key, watch, s.resumer)
		if s.cabinet.FolderLen(PendingFolder(key)) > 0 ||
			(watch != "" && s.cabinet.FolderLen(watch) > wmark) {
			s.sched.Wake(key)
		}
		n++
	}
	return n
}
