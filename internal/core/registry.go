package core

import (
	"sort"
	"sync"

	"repro/internal/folder"
)

// registryShardCount is the number of lock stripes in a site's agent
// registry. Meets resolve agents by name on every dispatch; striping the map
// means concurrent meets on different agents never touch the same mutex. A
// power of two keeps the modulo a mask.
const registryShardCount = 16

// regShard is one lock stripe of the agent registry.
type regShard struct {
	mu     sync.RWMutex
	agents map[string]Agent
}

// registry is a lock-striped name → Agent map.
type registry struct {
	shards [registryShardCount]regShard
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].agents = make(map[string]Agent)
	}
	return r
}

func (r *registry) shard(name string) *regShard {
	return &r.shards[folder.NameHash(name)&(registryShardCount-1)]
}

func (r *registry) register(name string, a Agent) {
	sh := r.shard(name)
	sh.mu.Lock()
	sh.agents[name] = a
	sh.mu.Unlock()
}

func (r *registry) unregister(name string) {
	sh := r.shard(name)
	sh.mu.Lock()
	delete(sh.agents, name)
	sh.mu.Unlock()
}

func (r *registry) lookup(name string) (Agent, bool) {
	sh := r.shard(name)
	sh.mu.RLock()
	a, ok := sh.agents[name]
	sh.mu.RUnlock()
	return a, ok
}

// count reports the number of registered agents across all shards.
func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.agents)
		sh.mu.RUnlock()
	}
	return n
}

// names returns all registered agent names in sorted order. Each shard is
// read under its own lock; the listing is a per-shard-consistent snapshot,
// which is all directory listings need.
func (r *registry) names() []string {
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for n := range sh.agents {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
