package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/folder"
	"repro/internal/sched"
)

func TestMeetUnifiedEntryPoint(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	b.Register("echo", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("RAN_AT", string(mc.Site.ID()))
		return nil
	}))
	a.Register("echo", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("RAN_AT", string(mc.Site.ID()))
		return nil
	}))

	// Plain context: the client entry point (what MeetClient wrapped).
	bc := folder.NewBriefcase()
	if err := a.Meet(context.Background(), "echo", bc); err != nil {
		t.Fatal(err)
	}
	if at, _ := bc.GetString("RAN_AT"); at != "site-0" {
		t.Fatalf("ran at %q", at)
	}

	// Nil context works too.
	if err := a.Meet(nil, "echo", folder.NewBriefcase()); err != nil {
		t.Fatal(err)
	}

	// At(dest): the remote entry point (what RemoteMeet wrapped).
	bc = folder.NewBriefcase()
	if err := a.Meet(context.Background(), "echo", bc, At(b.ID())); err != nil {
		t.Fatal(err)
	}
	if at, _ := bc.GetString("RAN_AT"); at != "site-1" {
		t.Fatalf("At(site-1) ran at %q", at)
	}

	// At(self) short-circuits locally.
	bc = folder.NewBriefcase()
	if err := a.Meet(context.Background(), "echo", bc, At(a.ID())); err != nil {
		t.Fatal(err)
	}
	if at, _ := bc.GetString("RAN_AT"); at != "site-0" {
		t.Fatalf("At(self) ran at %q", at)
	}
}

func TestMeetContextIsContext(t *testing.T) {
	// *MeetContext satisfies context.Context, which is what lets every
	// pre-redesign nested-meet call site compile unchanged against the
	// unified signature — and nesting depth must still be tracked.
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	var depths []int
	s.Register("nest", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		depths = append(depths, mc.Depth)
		if mc.Depth < 3 {
			return s.Meet(mc, "nest", bc)
		}
		return nil
	}))
	if err := s.Meet(context.Background(), "nest", nil); err != nil {
		t.Fatal(err)
	}
	for i, d := range depths {
		if d != i+1 {
			t.Fatalf("depths = %v", depths)
		}
	}

	// Cancellation flows through the MeetContext's context methods.
	ctx, cancel := context.WithCancel(context.Background())
	mc := &MeetContext{Ctx: ctx}
	if mc.Err() != nil {
		t.Fatal("fresh MeetContext already cancelled")
	}
	cancel()
	if !errors.Is(mc.Err(), context.Canceled) {
		t.Fatalf("Err = %v", mc.Err())
	}
	select {
	case <-mc.Done():
	default:
		t.Fatal("Done channel not closed after cancel")
	}
	// A nil *MeetContext behaves as Background, so wrappers taking a
	// context.Context never see a panic from a typed nil.
	var nilMC *MeetContext
	if nilMC.Err() != nil || nilMC.Value("k") != nil {
		t.Fatal("nil MeetContext does not behave like Background")
	}
	if _, ok := nilMC.Deadline(); ok {
		t.Fatal("nil MeetContext reports a deadline")
	}
}

func TestMeetAsync(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	release := make(chan struct{})
	s.Register("slow", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		<-release
		bc.PutString("DONE", "1")
		return nil
	}))
	var h sched.Handle
	bc := folder.NewBriefcase()
	if err := s.Meet(context.Background(), "slow", bc, Async(&h)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
		t.Fatal("handle completed before the agent ran")
	default:
	}
	close(release)
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := bc.GetString("DONE"); v != "1" {
		t.Fatal("async meet did not run")
	}

	// Errors propagate through the handle.
	var h2 sched.Handle
	if err := s.Meet(context.Background(), "ag_missing", nil, Async(&h2)); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(context.Background()); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("async miss error = %v", err)
	}
	s.Wait() // async meets are tracked site work
}

func TestMeetDeadline(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	// Locally the deadline reaches the agent's own context.
	a.Register("checker", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		if _, ok := mc.Ctx.Deadline(); !ok {
			t.Error("local agent saw no deadline")
		}
		return nil
	}))
	if err := a.Meet(context.Background(), "checker", nil,
		Deadline(time.Now().Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
	b.Register("checker", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		return nil
	}))
	// Remotely it bounds the exchange; a live deadline lets the meet through.
	if err := a.Meet(context.Background(), "checker", nil, At(b.ID()),
		Deadline(time.Now().Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline fails the meet without running the agent.
	err := a.Meet(context.Background(), "checker", nil, At(b.ID()),
		Deadline(time.Now().Add(-time.Second)))
	if err == nil {
		t.Fatal("expired deadline met anyway")
	}
}

func TestDeprecatedWrappersBehaveIdentically(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	b.Register("mark", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("VIA", string(mc.Site.ID()))
		return nil
	}))
	bc := folder.NewBriefcase()
	if err := a.RemoteMeet(context.Background(), b.ID(), "mark", bc); err != nil {
		t.Fatal(err)
	}
	if v, _ := bc.GetString("VIA"); v != "site-1" {
		t.Fatalf("RemoteMeet ran at %q", v)
	}
	a.Register("mark", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("VIA", string(mc.Site.ID()))
		return nil
	}))
	bc = folder.NewBriefcase()
	if err := a.MeetClient(context.Background(), "mark", bc); err != nil {
		t.Fatal(err)
	}
	if v, _ := bc.GetString("VIA"); v != "site-0" {
		t.Fatalf("MeetClient ran at %q", v)
	}
}
