package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSiteRandConcurrent hammers the lock-free site RNG from many
// goroutines under -race: every concurrent scripted meet used to serialize
// on one rngMu; now draws must be contention-free, in range, and not
// obviously degenerate.
func TestSiteRandConcurrent(t *testing.T) {
	sys := NewSystem(1, SystemConfig{Seed: 42})
	s := sys.SiteAt(0)

	const (
		workers = 16
		draws   = 2000
		n       = 10
	)
	counts := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bucket := make([]int64, n)
			for i := 0; i < draws; i++ {
				v := s.Rand(n)
				if v < 0 || v >= n {
					t.Errorf("Rand(%d) = %d out of range", n, v)
					return
				}
				bucket[v]++
			}
			counts[w] = bucket
		}(w)
	}
	wg.Wait()

	total := make([]int64, n)
	for _, bucket := range counts {
		for i, c := range bucket {
			total[i] += c
		}
	}
	// With 32000 draws over 10 buckets, every bucket must be populated;
	// an empty one means the per-call stream derivation is broken.
	for i, c := range total {
		if c == 0 {
			t.Fatalf("bucket %d never drawn (distribution %v)", i, total)
		}
	}
}

// TestSiteRandConcurrentScriptedMeets drives the rand builtin through real
// concurrent scripted activations — the contention case the satellite fix
// targets — and checks the results land in range.
func TestSiteRandConcurrentScriptedMeets(t *testing.T) {
	sys := NewSystem(1, SystemConfig{Seed: 7})
	s := sys.SiteAt(0)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bc, err := RunScript(context.Background(), s, `
				set i 0
				while {$i < 50} {
					set v [rand 100]
					if {$v < 0 || $v > 99} { error "out of range: $v" }
					incr i
				}
				bc_push OK done
			`, nil)
			if err != nil {
				errs <- err
				return
			}
			if !bc.Has("OK") {
				errs <- fmt.Errorf("script did not complete")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
