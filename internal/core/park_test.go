package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/folder"
)

func TestParkValidation(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	if err := s.Park("", "", folder.NewBriefcase()); err == nil {
		t.Fatal("park with empty name accepted")
	}
	if err := s.Park("x", "", folder.NewBriefcase()); err == nil {
		t.Fatal("park without CODE accepted")
	}
	if err := s.Park("x", "", nil); err == nil {
		t.Fatal("park with nil briefcase accepted")
	}
}

func TestParkTacLAndMeetWakes(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	script := `
		if {![bc_has PARK_HOP]} {
			park greeter
		}
		cab_append WOKE [bc_get PARK_HOP 0]
	`
	if _, err := RunScript(context.Background(), s, script, nil); err != nil {
		t.Fatal(err)
	}
	if !s.IsParked("greeter") || s.ParkedCount() != 1 {
		t.Fatalf("not parked: count=%d", s.ParkedCount())
	}
	// The continuation is durable cabinet state with the park metadata.
	cont := s.Cabinet().Snapshot(ParkedFolder("greeter"))
	if cont.Len() != 3 {
		t.Fatalf("continuation has %d elements, want 3", cont.Len())
	}
	enc, _ := cont.At(2)
	bc, err := folder.DecodeBriefcase(enc)
	if err != nil {
		t.Fatal(err)
	}
	if hop, _ := bc.GetString(ParkHopFolder); hop != "1" {
		t.Fatalf("PARK_HOP = %q, want 1", hop)
	}
	if !bc.Has(folder.CodeFolder) {
		t.Fatal("continuation briefcase has no CODE")
	}

	// A meet addressed to the parked name is a delivery, not a miss.
	if err := s.Meet(nil, "greeter", folder.NewBriefcase()); err != nil {
		t.Fatalf("meet of parked agent: %v", err)
	}
	s.Wait()
	if woke := s.Cabinet().Snapshot("WOKE").Strings(); len(woke) != 1 || woke[0] != "1" {
		t.Fatalf("WOKE = %v", woke)
	}
	// The run ended without re-parking: everything retired.
	if s.IsParked("greeter") || s.ParkedCount() != 0 {
		t.Fatal("still parked after completing")
	}
	if s.Cabinet().FolderLen(ParkedFolder("greeter")) != 0 ||
		s.Cabinet().FolderLen(PendingFolder("greeter")) != 0 {
		t.Fatal("spent continuation not retired from the cabinet")
	}
	// And a meet now misses like any unknown agent.
	if err := s.Meet(nil, "greeter", folder.NewBriefcase()); err == nil {
		t.Fatal("meet of retired agent succeeded")
	}
}

func TestParkedAgentDrainsDeliveries(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	script := `
		if {![bc_has PARK_HOP]} {
			park collector
		}
		while {[cab_len PARK_PENDING:collector] > 0} {
			cab_dequeue PARK_PENDING:collector
			cab_append GOT x
		}
		if {[bc_get PARK_HOP 0] < 10} {
			park collector
		}
	`
	if _, err := RunScript(context.Background(), s, script, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		bc := folder.NewBriefcase()
		bc.PutString("PAYLOAD", strconv.Itoa(i))
		if err := s.Meet(nil, "collector", bc); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	s.Wait()
	if got := s.Cabinet().FolderLen("GOT"); got != 3 {
		t.Fatalf("collector drained %d deliveries, want 3", got)
	}
	if !s.IsParked("collector") {
		t.Fatal("collector should have re-parked")
	}
}

// TestParkClosesLostWakeupWindow: work that lands while the continuation is
// being written (after the cabinet Put, before the scheduler registration)
// finds nothing to wake — Park's post-registration re-check must catch it.
func TestParkClosesLostWakeupWindow(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	// Simulate the in-window delivery: pending work exists before Park runs.
	s.Cabinet().Append(PendingFolder("late"), folder.EncodeBriefcase(folder.NewBriefcase()))
	script := `
		if {![bc_has PARK_HOP]} {
			park late
		}
		cab_append WOKE x
	`
	if _, err := RunScript(context.Background(), s, script, nil); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	if n := s.Cabinet().FolderLen("WOKE"); n != 1 {
		t.Fatalf("WOKE = %d entries, want 1 (lost-wakeup window not closed)", n)
	}
}

// TestParkWatchFolderWake: appending to the watched folder and waking its
// topic resumes the agent — the mailbox-driven wakeup path, minus mail.
func TestParkWatchFolderWake(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	script := `
		if {![bc_has PARK_HOP]} {
			park watcher INBOX
		}
		cab_append SAW [cab_len INBOX]
	`
	if _, err := RunScript(context.Background(), s, script, nil); err != nil {
		t.Fatal(err)
	}
	if n := s.Wake("OTHER-TOPIC"); n != 0 {
		t.Fatalf("Wake on a topic nobody watches woke %d", n)
	}
	s.Cabinet().AppendString("INBOX", "item")
	if n := s.Wake("INBOX"); n != 1 {
		t.Fatalf("Wake(INBOX) woke %d, want 1", n)
	}
	s.Wait()
	if saw := s.Cabinet().Snapshot("SAW").Strings(); len(saw) != 1 || saw[0] != "1" {
		t.Fatalf("SAW = %v", saw)
	}
}

func TestRecoverParked(t *testing.T) {
	cab := folder.NewCabinet()
	cfg := SystemConfig{Seed: 1, CallTimeout: 50 * time.Millisecond}
	cfg.Site.Cabinet = cab
	sys := NewSystem(1, cfg)
	s := sys.SiteAt(0)
	script := `
		if {![bc_has PARK_HOP]} {
			park survivor INBOX
		}
		cab_append RESUMED [cab_len INBOX]
	`
	if _, err := RunScript(context.Background(), s, script, nil); err != nil {
		t.Fatal(err)
	}
	if !s.IsParked("survivor") {
		t.Fatal("not parked before crash")
	}
	sys.Wait()

	// Work arrives, then the site "crashes" before the wakeup is served:
	// only the cabinet survives into the new process.
	cab.AppendString("INBOX", "pre-crash work")
	sys2 := NewSystem(1, cfg)
	s2 := sys2.SiteAt(0)
	if s2.ParkedCount() != 0 {
		t.Fatal("fresh site already has parked agents")
	}
	if n := s2.RecoverParked(); n != 1 {
		t.Fatalf("RecoverParked = %d, want 1", n)
	}
	// The watched folder grew past the parked watermark, so recovery wakes
	// the agent immediately — no delivery needed to unstick it.
	sys2.Wait()
	if got := cab.Snapshot("RESUMED").Strings(); len(got) != 1 || got[0] != "1" {
		t.Fatalf("RESUMED = %v", got)
	}
	if s2.IsParked("survivor") {
		t.Fatal("survivor still parked after post-recovery run")
	}
}

func TestRecoverParkedIdleStaysIdle(t *testing.T) {
	cab := folder.NewCabinet()
	cfg := SystemConfig{Seed: 1, CallTimeout: 50 * time.Millisecond}
	cfg.Site.Cabinet = cab
	sys := NewSystem(1, cfg)
	script := `
		if {![bc_has PARK_HOP]} {
			park sleeper
		}
		cab_append RESUMED x
	`
	if _, err := RunScript(context.Background(), sys.SiteAt(0), script, nil); err != nil {
		t.Fatal(err)
	}
	sys.Wait()

	sys2 := NewSystem(1, cfg)
	s2 := sys2.SiteAt(0)
	if n := s2.RecoverParked(); n != 1 {
		t.Fatalf("RecoverParked = %d, want 1", n)
	}
	sys2.Wait()
	// No work arrived before the crash: the recovered agent must stay
	// parked, not spuriously resume.
	if cab.FolderLen("RESUMED") != 0 {
		t.Fatal("idle recovered agent spuriously resumed")
	}
	if !s2.IsParked("sleeper") {
		t.Fatal("recovered agent not parked")
	}
	// It still wakes on delivery.
	if err := s2.Meet(nil, "sleeper", nil); err != nil {
		t.Fatal(err)
	}
	sys2.Wait()
	if cab.FolderLen("RESUMED") != 1 {
		t.Fatal("recovered agent did not wake on delivery")
	}
}

// TestParkWakeStorm hammers a handful of re-parking agents from concurrent
// clients: every delivery must eventually be drained by a resume. This is
// the regression test for the retirement race where a delivery's Wake —
// landing between a script's re-park and the resumer's post-run check —
// consumed the fresh scheduler entry, made the agent look unparked, and
// got its live continuation retired out from under the queued resume.
func TestParkWakeStorm(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	script := `
		set me [bc_get SELF 0]
		if {![bc_has PARK_HOP]} { park $me }
		while {[cab_len PARK_PENDING:$me] > 0} {
			cab_dequeue PARK_PENDING:$me
			cab_append GOT x
		}
		park $me
	`
	const agents = 4
	for i := 0; i < agents; i++ {
		bc := folder.NewBriefcase()
		bc.PutString("SELF", fmt.Sprintf("storm-%d", i))
		if _, err := RunScript(context.Background(), s, script, bc); err != nil {
			t.Fatal(err)
		}
	}
	const clients = 4
	perClient := 500
	if testing.Short() {
		perClient = 100
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				name := fmt.Sprintf("storm-%d", (c+k)%agents)
				if err := s.Meet(nil, name, folder.NewBriefcase()); err != nil {
					t.Errorf("client %d delivery %d: %v", c, k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sys.Wait() // wakeups are tracked scheduler work
	if got := s.Cabinet().FolderLen("GOT"); got != clients*perClient {
		t.Fatalf("drained %d deliveries, want %d (lost wakeup)", got, clients*perClient)
	}
	for i := 0; i < agents; i++ {
		if !s.IsParked(fmt.Sprintf("storm-%d", i)) {
			t.Fatalf("storm-%d not parked after the storm", i)
		}
	}
}

// TestParkedAgentsAddNoGoroutinesSite is the site-level goroutine
// invariant: parking agents — continuation, cabinet state and all — spawns
// nothing.
func TestParkedAgentsAddNoGoroutinesSite(t *testing.T) {
	n := 100000
	if testing.Short() {
		n = 2000
	}
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Wait() // let any startup work drain before baselining
	before := runtime.NumGoroutine()
	bc := folder.NewBriefcase()
	bc.PutString(folder.CodeFolder, "cab_append WOKE x")
	for i := 0; i < n; i++ {
		if err := s.Park(fmt.Sprintf("resident-%d", i), "", bc); err != nil {
			t.Fatal(err)
		}
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("parking %d agents grew goroutines %d -> %d", n, before, after)
	}
	if s.ParkedCount() != n {
		t.Fatalf("ParkedCount = %d, want %d", s.ParkedCount(), n)
	}
}

// TestMillionIdleAgentsUnderGigabyte is the ROADMAP memory target: one
// million parked agents in under 1 GB of heap. ~20s of Park calls, so
// -short skips it; the tacobench parked lane covers the 100k point in CI.
func TestMillionIdleAgentsUnderGigabyte(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-agent RSS assertion skipped in -short")
	}
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Wait()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	goroutinesBefore := runtime.NumGoroutine()

	const n = 1_000_000
	bc := folder.NewBriefcase()
	bc.PutString(folder.CodeFolder, "cab_append WOKE x")
	for i := 0; i < n; i++ {
		if err := s.Park("r"+strconv.Itoa(i), "", bc); err != nil {
			t.Fatal(err)
		}
	}
	if s.ParkedCount() != n {
		t.Fatalf("ParkedCount = %d", s.ParkedCount())
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heap := after.HeapAlloc - before.HeapAlloc
	t.Logf("1M parked agents: %.1f MB heap, %d B/agent",
		float64(heap)/(1<<20), heap/n)
	if heap >= 1<<30 {
		t.Fatalf("1M idle agents use %d bytes of heap, want < 1 GiB", heap)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore {
		t.Fatalf("goroutines grew %d -> %d", goroutinesBefore, g)
	}
}
