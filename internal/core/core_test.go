package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/folder"
	"repro/internal/vnet"
)

func testSystem(t *testing.T, n int) *System {
	t.Helper()
	sys := NewSystem(n, SystemConfig{Seed: 1, CallTimeout: 50 * time.Millisecond})
	t.Cleanup(sys.Wait)
	return sys
}

func TestLocalMeetSharesBriefcase(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Register("adder", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		a, _ := bc.GetString("A")
		b, _ := bc.GetString("B")
		bc.PutString(folder.ResultFolder, a+b)
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString("A", "foo")
	bc.PutString("B", "bar")
	if err := s.MeetClient(context.Background(), "adder", bc); err != nil {
		t.Fatal(err)
	}
	got, _ := bc.GetString(folder.ResultFolder)
	if got != "foobar" {
		t.Fatalf("RESULT = %q", got)
	}
}

func TestMeetUnknownAgent(t *testing.T) {
	sys := testSystem(t, 1)
	err := sys.SiteAt(0).MeetClient(context.Background(), "ghost", folder.NewBriefcase())
	if !errors.Is(err, ErrNoAgent) {
		t.Fatalf("err = %v, want ErrNoAgent", err)
	}
}

func TestMeetContextIdentity(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	var sawFrom, sawAgent string
	s.Register("inner", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		sawFrom, sawAgent = mc.From, mc.Agent
		return nil
	}))
	s.Register("outer", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		return mc.Site.Meet(mc, "inner", bc)
	}))
	if err := s.MeetClient(context.Background(), "outer", folder.NewBriefcase()); err != nil {
		t.Fatal(err)
	}
	if sawFrom != "outer" || sawAgent != "inner" {
		t.Fatalf("from=%q agent=%q", sawFrom, sawAgent)
	}
}

func TestMeetDepthBounded(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Register("loop", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		return mc.Site.Meet(mc, "loop", bc)
	}))
	err := s.MeetClient(context.Background(), "loop", folder.NewBriefcase())
	if !errors.Is(err, ErrMeetDepth) {
		t.Fatalf("err = %v, want ErrMeetDepth", err)
	}
}

func TestAdmissionPolicy(t *testing.T) {
	net := vnet.NewNetwork()
	s := NewSite(net.AddNode("gated"), SiteConfig{
		Admission: func(agent, from string) error {
			if agent == "banned" {
				return errors.New("not welcome")
			}
			return nil
		},
	})
	s.Register("banned", AgentFunc(func(*MeetContext, *folder.Briefcase) error { return nil }))
	s.Register("fine", AgentFunc(func(*MeetContext, *folder.Briefcase) error { return nil }))
	if err := s.MeetClient(context.Background(), "banned", folder.NewBriefcase()); !errors.Is(err, ErrRefused) {
		t.Fatalf("banned err = %v", err)
	}
	if err := s.MeetClient(context.Background(), "fine", folder.NewBriefcase()); err != nil {
		t.Fatalf("fine err = %v", err)
	}
}

func TestRemoteMeetMutatesBriefcase(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	b.Register("stamper", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("STAMP", string(mc.Site.ID()))
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString("PAYLOAD", "data")
	if err := a.RemoteMeet(context.Background(), b.ID(), "stamper", bc); err != nil {
		t.Fatal(err)
	}
	stamp, _ := bc.GetString("STAMP")
	if stamp != "site-1" {
		t.Fatalf("STAMP = %q", stamp)
	}
	if payload, _ := bc.GetString("PAYLOAD"); payload != "data" {
		t.Fatalf("PAYLOAD lost: %q", payload)
	}
}

func TestRemoteMeetToSelfShortCircuits(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Register("echo", AgentFunc(func(mc *MeetContext, bc *folder.Briefcase) error {
		bc.PutString("OK", "1")
		return nil
	}))
	before := sys.Net.Stats().Messages
	bc := folder.NewBriefcase()
	if err := s.RemoteMeet(context.Background(), s.ID(), "echo", bc); err != nil {
		t.Fatal(err)
	}
	if sys.Net.Stats().Messages != before {
		t.Fatal("self meet used the network")
	}
	if ok, _ := bc.GetString("OK"); ok != "1" {
		t.Fatal("self meet lost mutation")
	}
}

func TestRemoteMeetErrorPropagates(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	b.Register("failing", AgentFunc(func(*MeetContext, *folder.Briefcase) error {
		return errors.New("service exploded")
	}))
	err := a.RemoteMeet(context.Background(), b.ID(), "failing", folder.NewBriefcase())
	if err == nil || !strings.Contains(err.Error(), "service exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteMeetCrashedSite(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	sys.Net.Crash(b.ID())
	err := a.RemoteMeet(context.Background(), b.ID(), AgTacl, folder.NewBriefcase())
	if !errors.Is(err, vnet.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestPing(t *testing.T) {
	sys := testSystem(t, 2)
	a, b := sys.SiteAt(0), sys.SiteAt(1)
	if err := a.Ping(context.Background(), b.ID(), time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Net.Crash(b.ID())
	if err := a.Ping(context.Background(), b.ID(), time.Second); err == nil {
		t.Fatal("ping to crashed site succeeded")
	}
}

func TestActivationAndLoadCounters(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("slow", AgentFunc(func(*MeetContext, *folder.Briefcase) error {
		close(started)
		<-release
		return nil
	}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.MeetClient(context.Background(), "slow", folder.NewBriefcase())
	}()
	<-started
	if s.Load() != 1 {
		t.Fatalf("Load = %d, want 1", s.Load())
	}
	close(release)
	wg.Wait()
	if s.Load() != 0 {
		t.Fatalf("Load after completion = %d", s.Load())
	}
	if s.Activations() != 1 {
		t.Fatalf("Activations = %d", s.Activations())
	}
}

func TestRegisterUnregisterLookup(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	s.Register("x", AgentFunc(func(*MeetContext, *folder.Briefcase) error { return nil }))
	if _, ok := s.Lookup("x"); !ok {
		t.Fatal("x not found")
	}
	s.Unregister("x")
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("x survived Unregister")
	}
	names := s.AgentNames()
	// System agents must be present.
	for _, want := range []string{AgTacl, AgRexec, AgCourier, AgDiffusion} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("system agent %q missing from %v", want, names)
		}
	}
}

func TestMeetRequestWireRoundTrip(t *testing.T) {
	bc := folder.NewBriefcase()
	bc.PutString("K", "v")
	data := appendMeetRequest(nil, "agent-x", "site-origin", bc)
	agent, origin, got, err := decodeMeetRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if agent != "agent-x" || origin != "site-origin" || !got.Equal(bc) {
		t.Fatalf("round trip: %q %q %v", agent, origin, got)
	}
}

func TestMeetRequestDecodeErrors(t *testing.T) {
	for _, data := range [][]byte{{}, {0x05, 'a'}, {0x01, 'a', 0x01, 'b', 0xFF}} {
		if _, _, _, err := decodeMeetRequest(data); err == nil {
			t.Errorf("decodeMeetRequest(%v) succeeded", data)
		}
	}
}

func TestHandleCallUnknownKind(t *testing.T) {
	sys := testSystem(t, 2)
	a := sys.SiteAt(0)
	_, err := a.Endpoint().Call(context.Background(), sys.SiteAt(1).ID(), "bogus", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown message kind") {
		t.Fatalf("err = %v", err)
	}
}

func TestSystemTopologies(t *testing.T) {
	ring := testSystem(t, 4)
	ring.Ring()
	n0 := ring.SiteAt(0).Cabinet().Snapshot(folder.SitesFolder).Strings()
	if len(n0) != 2 {
		t.Fatalf("ring degree = %d, want 2: %v", len(n0), n0)
	}

	mesh := testSystem(t, 4)
	mesh.FullMesh()
	if got := mesh.SiteAt(0).Cabinet().FolderLen(folder.SitesFolder); got != 3 {
		t.Fatalf("mesh degree = %d, want 3", got)
	}

	grid := testSystem(t, 6)
	if err := grid.Grid(3, 2); err != nil {
		t.Fatal(err)
	}
	// Corner has 2 neighbours, middle of long edge has 3.
	if got := grid.SiteAt(0).Cabinet().FolderLen(folder.SitesFolder); got != 2 {
		t.Fatalf("corner degree = %d", got)
	}
	if got := grid.SiteAt(1).Cabinet().FolderLen(folder.SitesFolder); got != 3 {
		t.Fatalf("edge degree = %d", got)
	}
	if err := grid.Grid(4, 2); err == nil {
		t.Fatal("mismatched grid accepted")
	}
}

func TestConnectIdempotent(t *testing.T) {
	sys := testSystem(t, 2)
	sys.Connect("site-0", "site-1")
	sys.Connect("site-0", "site-1")
	if got := sys.SiteAt(0).Cabinet().FolderLen(folder.SitesFolder); got != 1 {
		t.Fatalf("duplicate neighbours: %d", got)
	}
	sys.Connect("site-0", "nonexistent") // must not panic
}

func TestContextCancelsMeet(t *testing.T) {
	sys := testSystem(t, 1)
	s := sys.SiteAt(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.MeetClient(ctx, AgTacl, folder.NewBriefcase())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteMeetIdentityForPolicies(t *testing.T) {
	// Agents arriving over the wire must be identified as rexec@<origin>
	// to the destination's admission policy — sites are autonomous and
	// their policies need to know who is knocking.
	net := vnet.NewNetwork(vnet.WithCallTimeout(50 * time.Millisecond))
	var sawFrom string
	gated := NewSite(net.AddNode("gated"), SiteConfig{
		Admission: func(agent, from string) error {
			sawFrom = from
			if from == "rexec@blocked" {
				return errors.New("origin not welcome")
			}
			return nil
		},
	})
	gated.Register("svc", AgentFunc(func(*MeetContext, *folder.Briefcase) error { return nil }))

	friendly := NewSite(net.AddNode("friendly"), SiteConfig{})
	if err := friendly.RemoteMeet(context.Background(), "gated", "svc", folder.NewBriefcase()); err != nil {
		t.Fatal(err)
	}
	if sawFrom != "rexec@friendly" {
		t.Fatalf("admission saw from=%q", sawFrom)
	}

	blocked := NewSite(net.AddNode("blocked"), SiteConfig{})
	err := blocked.RemoteMeet(context.Background(), "gated", "svc", folder.NewBriefcase())
	if err == nil || !strings.Contains(err.Error(), "not welcome") {
		t.Fatalf("err = %v", err)
	}
}

func TestSystemWaitQuiesces(t *testing.T) {
	sys := testSystem(t, 2)
	done := make(chan struct{})
	sys.SiteAt(1).Register("slowsink", AgentFunc(func(*MeetContext, *folder.Briefcase) error {
		time.Sleep(30 * time.Millisecond)
		close(done)
		return nil
	}))
	bc := folder.NewBriefcase()
	bc.PutString(folder.HostFolder, "site-1")
	bc.PutString(folder.ContactFolder, "slowsink")
	bc.PutString(DetachFolder, "1")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgRexec, bc); err != nil {
		t.Fatal(err)
	}
	sys.Wait() // must block until the detached delivery lands
	select {
	case <-done:
	default:
		t.Fatal("Wait returned before detached work finished")
	}
}
