package core

import (
	"fmt"
	"time"

	"repro/internal/folder"
	"repro/internal/vnet"
)

// System is a set of TACOMA sites on one simulated network — the standard
// harness for tests, examples, and experiments. Topology helpers populate
// each site's site-local SITES folder, which is what the diffusion agent
// consults for neighbours.
type System struct {
	Net   *vnet.Network
	Sites map[vnet.SiteID]*Site
	order []vnet.SiteID
}

// SystemConfig configures a simulated system.
type SystemConfig struct {
	// Link is the default link parameter set for the network.
	Link vnet.LinkParams
	// Site is applied to every site.
	Site SiteConfig
	// Seed seeds network loss decisions and per-site RNGs.
	Seed int64
	// CallTimeout overrides the network's failure-detection timeout.
	CallTimeout time.Duration
}

// NewSystem creates n sites named "site-0" .. "site-(n-1)" on a fresh
// simulated network. No topology is installed; call FullMesh, Ring, Grid,
// or Connect.
func NewSystem(n int, cfg SystemConfig) *System {
	names := make([]vnet.SiteID, n)
	for i := range names {
		names[i] = vnet.SiteID(fmt.Sprintf("site-%d", i))
	}
	return NewNamedSystem(names, cfg)
}

// NewNamedSystem creates sites with explicit names.
func NewNamedSystem(names []vnet.SiteID, cfg SystemConfig) *System {
	opts := []vnet.Option{vnet.WithDefaults(cfg.Link), vnet.WithSeed(cfg.Seed)}
	if cfg.CallTimeout > 0 {
		opts = append(opts, vnet.WithCallTimeout(cfg.CallTimeout))
	}
	sys := &System{
		Net:   vnet.NewNetwork(opts...),
		Sites: make(map[vnet.SiteID]*Site, len(names)),
	}
	for i, name := range names {
		sc := cfg.Site
		sc.Seed = cfg.Seed + int64(i)
		sys.Sites[name] = NewSite(sys.Net.AddNode(name), sc)
		sys.order = append(sys.order, name)
	}
	return sys
}

// Site returns the site with the given name, or nil.
func (sys *System) Site(id vnet.SiteID) *Site { return sys.Sites[id] }

// SiteAt returns the i'th site in creation order.
func (sys *System) SiteAt(i int) *Site { return sys.Sites[sys.order[i]] }

// Names returns site names in creation order.
func (sys *System) Names() []vnet.SiteID {
	out := make([]vnet.SiteID, len(sys.order))
	copy(out, sys.order)
	return out
}

// Len reports the number of sites.
func (sys *System) Len() int { return len(sys.order) }

// Connect records a bidirectional neighbour relation in both sites'
// site-local SITES folders. It does not alter link parameters: the
// simulated network is fully connected at the transport level, and SITES
// defines the topology agents see — exactly the split the paper implies
// between the physical LAN and the agents' logical itineraries.
func (sys *System) Connect(a, b vnet.SiteID) {
	sa, sb := sys.Sites[a], sys.Sites[b]
	if sa == nil || sb == nil {
		return
	}
	sa.Cabinet().TestAndAppendString(folder.SitesFolder, string(b))
	sb.Cabinet().TestAndAppendString(folder.SitesFolder, string(a))
}

// FullMesh makes every site a neighbour of every other.
func (sys *System) FullMesh() {
	for i, a := range sys.order {
		for _, b := range sys.order[i+1:] {
			sys.Connect(a, b)
		}
	}
}

// Ring connects the sites in a cycle (the paper's cyclic-itinerary case).
func (sys *System) Ring() {
	n := len(sys.order)
	for i := 0; i < n; i++ {
		sys.Connect(sys.order[i], sys.order[(i+1)%n])
	}
}

// Grid connects the sites as a w×h mesh; len(sites) must be w*h.
func (sys *System) Grid(w, h int) error {
	if w*h != len(sys.order) {
		return fmt.Errorf("core: grid %dx%d needs %d sites, have %d", w, h, w*h, len(sys.order))
	}
	at := func(x, y int) vnet.SiteID { return sys.order[y*w+x] }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				sys.Connect(at(x, y), at(x+1, y))
			}
			if y+1 < h {
				sys.Connect(at(x, y), at(x, y+1))
			}
		}
	}
	return nil
}

// Wait quiesces all background work across the system.
func (sys *System) Wait() {
	for _, id := range sys.order {
		sys.Sites[id].Wait()
	}
}

// Register installs an agent under the same name on every site.
func (sys *System) Register(name string, mk func(s *Site) Agent) {
	for _, id := range sys.order {
		sys.Sites[id].Register(name, mk(sys.Sites[id]))
	}
}

// TotalActivations sums meets served across all sites — the agent
// population measure used by the flooding experiment.
func (sys *System) TotalActivations() int64 {
	var total int64
	for _, id := range sys.order {
		total += sys.Sites[id].Activations()
	}
	return total
}
