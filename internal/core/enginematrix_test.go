package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/folder"
	"repro/internal/tacl"
)

// The engine matrix pins the full host path — site, guard checks, briefcase
// commands — across all three TacL execution engines via SiteConfig.
// Behavior that only shows up under the kernel bindings (frozen-folder
// refusal, host command ordering) must not depend on which engine ran the
// script.

var matrixEngines = []struct {
	name   string
	engine tacl.Engine
}{
	{"vm", tacl.EngineVM},
	{"ast", tacl.EngineAST},
	{"reference", tacl.EngineReference},
}

// TestEngineMatrixFrozenFolder runs a loop that mutates a frozen briefcase
// folder: every engine must refuse with the same folder.ErrFrozen error —
// same text, same wrapping — raised from inside the loop's inlined host
// call.
func TestEngineMatrixFrozenFolder(t *testing.T) {
	const src = `set i 0
while {$i < 3} { bc_push LOCKED [format "x-%d" $i]; set i [expr $i + 1] }`
	var want string
	for i, e := range matrixEngines {
		sys := NewSystem(1, SystemConfig{Site: SiteConfig{TaclEngine: e.engine}})
		bc := folder.NewBriefcase()
		bc.Ensure("LOCKED").Freeze()
		_, err := RunScript(context.Background(), sys.SiteAt(0), src, bc)
		if err == nil || !errors.Is(err, folder.ErrFrozen) {
			t.Fatalf("engine %s: want ErrFrozen, got %v", e.name, err)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("engine %s: error %q, want %q (as engine %s)",
				e.name, err.Error(), want, matrixEngines[0].name)
		}
	}
}

// TestEngineMatrixScriptWorkload runs the benchmark workload itself through
// every engine and compares the briefcase it leaves behind.
func TestEngineMatrixScriptWorkload(t *testing.T) {
	var want string
	for i, e := range matrixEngines {
		sys := NewSystem(1, SystemConfig{Site: SiteConfig{TaclEngine: e.engine}})
		bc, err := RunScript(context.Background(), sys.SiteAt(0), ScriptWorkloadSrc, nil)
		if err != nil {
			t.Fatalf("engine %s: %v", e.name, err)
		}
		got, err := bc.GetString("OUT")
		if err != nil {
			t.Fatalf("engine %s: %v", e.name, err)
		}
		if i == 0 {
			want = got
			if want == "" {
				t.Fatal("workload produced empty OUT")
			}
		} else if got != want {
			t.Errorf("engine %s: OUT %q, want %q", e.name, got, want)
		}
	}
}
