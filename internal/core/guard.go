package core

import (
	"repro/internal/folder"
	"repro/internal/tacl"
)

// Guard is the kernel's security interception interface. A site with a
// guard installed consults it on every meet, on every network arrival, on
// every cabinet access by a TacL agent, and when building the per-step
// metering hook for an activation. The internal/guard package provides the
// standard implementation (signed briefcases, capability ACLs, firewall
// mode, metered meets); the kernel only defines the hook points so that
// core does not depend on any particular policy.
//
// All methods are called on hot paths; implementations must be cheap and
// safe for concurrent use.
type Guard interface {
	// CheckMeet is consulted before dispatching any meet at the site.
	// Returning an error refuses the meet (wrapped in ErrRefused).
	CheckMeet(mc *MeetContext, agent string, bc *folder.Briefcase) error

	// CheckArrival is consulted when a meet request arrives over the
	// network, before the meet is dispatched. This is the site's firewall:
	// origin is the sending site's name as reported by the transport.
	CheckArrival(origin, agent string, bc *folder.Briefcase) error

	// CheckCabinet is consulted when a TacL agent reads (write=false) or
	// mutates (write=true) a site-local cabinet folder.
	CheckCabinet(mc *MeetContext, bc *folder.Briefcase, name string, write bool) error

	// CheckBriefcase is consulted when a TacL agent mutates one of its own
	// briefcase folders. The guard uses it to protect the folders its
	// security rests on (SIG, CASH) from in-script tampering — without it
	// an admitted agent could shed its identity or forge its funds.
	CheckBriefcase(mc *MeetContext, bc *folder.Briefcase, name string) error

	// StepHook returns a per-activation hook run on every TacL step of the
	// agent, or nil for an unmetered activation. Returning an error from
	// the hook aborts the agent — this is how metered meets terminate an
	// agent whose electronic-cash budget is exhausted.
	StepHook(mc *MeetContext, bc *folder.Briefcase) func() error

	// Bind registers guard-aware TacL builtins (acl_check, sign_bc, ...)
	// for one activation.
	Bind(in *tacl.Interp, mc *MeetContext, bc *folder.Briefcase)
}

// guardCell wraps a Guard for atomic.Value storage (which requires a single
// concrete stored type).
type guardCell struct{ g Guard }

// SetGuard installs (or, with nil, removes) the site's security guard. The
// guard takes effect immediately for subsequent meets.
func (s *Site) SetGuard(g Guard) { s.guardv.Store(guardCell{g}) }

// Guard returns the installed guard, or nil.
func (s *Site) Guard() Guard {
	if v := s.guardv.Load(); v != nil {
		return v.(guardCell).g
	}
	return nil
}
