package core

import (
	"context"
	"time"

	"repro/internal/folder"
	"repro/internal/sched"
	"repro/internal/vnet"
)

// The unified meet entry point. Site.Meet(ctx, agent, bc, ...MeetOption)
// subsumes the three historical entry points:
//
//	s.Meet(mc, agent, bc)                  → s.Meet(mc, agent, bc)       (unchanged; *MeetContext is a context.Context)
//	s.MeetClient(ctx, agent, bc)           → s.Meet(ctx, agent, bc)
//	s.RemoteMeet(ctx, dest, agent, bc)     → s.Meet(ctx, agent, bc, At(dest))
//
// *MeetContext implements context.Context (delegating to its Ctx), so the
// first parameter accepts both a plain context — a client starting a
// computation from outside the agent system — and the MeetContext of a
// currently executing agent, which preserves nesting depth and caller
// identity exactly as the old Meet did. Every pre-redesign call site
// compiles and behaves unchanged.

// Deadline implements context.Context.
func (mc *MeetContext) Deadline() (time.Time, bool) { return mc.base().Deadline() }

// Done implements context.Context.
func (mc *MeetContext) Done() <-chan struct{} { return mc.base().Done() }

// Err implements context.Context.
func (mc *MeetContext) Err() error { return mc.base().Err() }

// Value implements context.Context.
func (mc *MeetContext) Value(key any) any { return mc.base().Value(key) }

// base returns the underlying cancellation context (Background when the
// MeetContext is nil or carries none).
func (mc *MeetContext) base() context.Context {
	if mc == nil || mc.Ctx == nil {
		return context.Background()
	}
	return mc.Ctx
}

// withCtx derives a copy of mc whose cancellation context is ctx; caller
// identity, agent, and nesting depth carry over.
func (mc *MeetContext) withCtx(ctx context.Context) *MeetContext {
	c := *mc
	c.Ctx = ctx
	return &c
}

// MeetOption tunes one Meet call.
type MeetOption func(*meetOpts)

type meetOpts struct {
	dest     vnet.SiteID
	deadline time.Time
	async    *sched.Handle
}

// At directs the meet to the named site: the briefcase travels there, the
// agent executes there, and the mutated briefcase folds back on success. A
// dest equal to the local site (or empty) short-circuits to a local meet.
func At(dest vnet.SiteID) MeetOption {
	return func(o *meetOpts) { o.dest = dest }
}

// Async detaches the meet: Meet submits it to the site scheduler and
// returns nil immediately, arming h to report completion (Wait/Done/Err).
// The caller must not touch the briefcase until h completes — the meet
// owns it in the meantime. Asynchronous meets count as site background
// work, so Site.Wait quiesces them.
func Async(h *sched.Handle) MeetOption {
	return func(o *meetOpts) { o.async = h }
}

// Deadline bounds the meet: the cancellation context expires at t. A local
// agent sees the deadline on its MeetContext; for a meet sent At() another
// site it bounds the network exchange (the remote activation starts fresh
// at the destination, as all arrivals do).
func Deadline(t time.Time) MeetOption {
	return func(o *meetOpts) { o.deadline = t }
}

// Meet executes the named agent with the briefcase — the paper's "meet B
// with bc". With no options the meet is local and synchronous: the caller
// blocks until the agent terminates the meet; information is exchanged
// through the shared briefcase. Options redirect (At), detach (Async), or
// bound (Deadline) the meet.
//
// ctx is either a plain context.Context (a client entering the agent
// system from outside) or the *MeetContext of the currently executing
// agent, which makes the nested meet carry the caller's identity and
// nesting depth. Passing nil is a fresh client context.
//
// Meeting an agent that is parked at this site does not block: the
// briefcase is deposited in the agent's pending folder, the agent's task
// is enqueued with the scheduler, and the meet returns nil immediately —
// delivery semantics, like mail, rather than rendezvous.
func (s *Site) Meet(ctx context.Context, agent string, bc *folder.Briefcase, opts ...MeetOption) error {
	var mc *MeetContext
	if m, ok := ctx.(*MeetContext); ok {
		mc = m // a typed-nil *MeetContext behaves like a nil ctx below
	} else if ctx != nil {
		mc = &MeetContext{Ctx: ctx}
	}
	if len(opts) == 0 {
		return s.meet(mc, agent, bc)
	}
	var o meetOpts
	for _, opt := range opts {
		opt(&o)
	}
	if mc == nil {
		mc = &MeetContext{Ctx: context.Background()}
	}
	var cancel context.CancelFunc
	if !o.deadline.IsZero() {
		var dctx context.Context
		dctx, cancel = context.WithDeadline(mc.base(), o.deadline)
		mc = mc.withCtx(dctx)
	}
	exec := func(mc *MeetContext) error {
		if o.dest != "" && o.dest != s.id {
			if bc == nil {
				// The wire path serializes the briefcase; a caller with
				// nothing to send still ships (and discards) an empty one.
				bc = folder.NewBriefcase()
			}
			return s.remoteMeet(mc.base(), o.dest, agent, bc)
		}
		return s.meet(mc, agent, bc)
	}
	if h := o.async; h != nil {
		task := mc
		s.sched.Submit(agent, func() {
			err := exec(task)
			if cancel != nil {
				cancel()
			}
			h.Complete(err)
		})
		return nil
	}
	if cancel != nil {
		defer cancel()
	}
	return exec(mc)
}

// MeetClient starts a computation from outside the agent system: it meets
// the named local agent with a fresh context. It is deprecated in favor of
// Meet(ctx, agent, bc), which it thinly wraps; it remains so pre-redesign
// callers keep compiling and behaving unchanged.
func (s *Site) MeetClient(ctx context.Context, agent string, bc *folder.Briefcase) error {
	return s.meet(&MeetContext{Ctx: ctx}, agent, bc)
}

// RemoteMeet executes the named agent at another site, sending the
// briefcase there and folding the mutated briefcase back on success. It is
// deprecated in favor of Meet(ctx, agent, bc, At(dest)), which it thinly
// wraps; it remains so pre-redesign callers keep compiling and behaving
// unchanged.
//
// The briefcase travels in the v2 delta format (see wire.go): folders the
// peer already holds ship as content refs instead of bytes, so a signed
// multi-hop agent stops re-shipping its own code after the first hop over
// a link. A peer that answers "unknown message kind" is remembered as
// v1-only and served the legacy format from then on.
func (s *Site) RemoteMeet(ctx context.Context, dest vnet.SiteID, agent string, bc *folder.Briefcase) error {
	return s.remoteMeet(ctx, dest, agent, bc)
}
