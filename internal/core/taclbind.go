package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/folder"
	"repro/internal/tacl"
)

// TacL host binding. The TACOMA host commands are registered once per site
// on a shared read-only tacl.Table (newHostTable); a visiting script sees:
//
//	Briefcase:    bc_push bc_pop bc_dequeue bc_peek bc_get bc_set bc_len
//	              bc_has bc_del bc_names bc_list bc_putlist
//	File cabinet: cab_append cab_contains cab_visit cab_len cab_list
//	              cab_dequeue
//	Kernel:       meet jump park spawn host from neighbors rand log
//
// plus globals $host (site name) and $from (initiating agent).
//
// Commands read their activation state (site, briefcase, script source)
// from the interpreter's Host field instead of closing over it, so an
// activation costs zero command registrations: runTacL takes a pooled
// interpreter, points Host at a pooled hostCtx, and runs the compiled
// script. Only guard-aware builtins (Guard.Bind) still register per
// activation, and only at guarded sites.

// hostCtx is the per-activation binding the shared host commands read
// through tacl.Interp.Host.
type hostCtx struct {
	mc  *MeetContext
	bc  *folder.Briefcase
	src string
}

var hostCtxPool = sync.Pool{New: func() any { return new(hostCtx) }}

func hctx(in *tacl.Interp) *hostCtx { return in.Host.(*hostCtx) }

// runTacL executes a TacL agent script with the TACOMA host commands bound
// to the current site and briefcase. The script is compiled through the
// site's content-hash cache, so repeat activations (and multi-hop
// itineraries of the same signed script) skip parsing entirely.
func runTacL(mc *MeetContext, bc *folder.Briefcase, src string) error {
	site := mc.Site
	prog, err := site.scripts.compiled(src)
	if err != nil {
		return err
	}
	in := tacl.Get(site.taclTable)
	in.SetEngine(site.cfg.TaclEngine)
	in.MaxSteps = site.cfg.MaxSteps
	// Scripted activations run on scheduler pool workers (async meets,
	// parked-agent resumes) as well as caller goroutines; yielding between
	// step-budget slices keeps one long script from monopolizing a worker.
	in.YieldEvery = taclYieldEvery
	in.Yield = runtime.Gosched
	if f := site.cfg.StepHookFactory; f != nil {
		in.StepHook = f(mc.Agent, mc.From)
	}
	g := site.Guard()
	if g != nil {
		// The guard's metering hook chains after any configured factory
		// hook, so cycle billing and guard metering compose.
		if h := g.StepHook(mc, bc); h != nil {
			if prev := in.StepHook; prev != nil {
				in.StepHook = func() error {
					if err := prev(); err != nil {
						return err
					}
					return h()
				}
			} else {
				in.StepHook = h
			}
		}
		// Guard-aware builtins (acl_check, sign_bc, principal, ecu_balance)
		// exist only at guarded sites.
		g.Bind(in, mc, bc)
	}
	h := hostCtxPool.Get().(*hostCtx)
	h.mc, h.bc, h.src = mc, bc, src
	in.Host = h
	in.SetGlobal("host", string(site.ID()))
	in.SetGlobal("from", mc.From)

	_, err = in.EvalScript(prog)

	h.mc, h.bc, h.src = nil, nil, ""
	hostCtxPool.Put(h)
	tacl.Put(in)
	if _, ok := tacl.IsJump(err); ok {
		return nil // the agent continues elsewhere; this activation is done
	}
	if _, ok := tacl.IsPark(err); ok {
		return nil // the agent is parked; this activation is done
	}
	return err
}

// taclYieldEvery is how many interpreter steps a script runs between
// scheduler yields — big enough to amortize the call, small enough that a
// budget-sized script yields hundreds of times.
const taclYieldEvery = 1024

func need(args []string, n int, usage string) error {
	if len(args) != n {
		return fmt.Errorf("wrong # args: should be %q", usage)
	}
	return nil
}

// checkCab enforces the site guard's capability ACL on cabinet access;
// the briefcase identifies the visiting agent's principal.
func (h *hostCtx) checkCab(name string, write bool) error {
	if g := h.mc.Site.Guard(); g != nil {
		return g.CheckCabinet(h.mc, h.bc, name, write)
	}
	return nil
}

// checkBc guards mutations of the briefcase's own folders: frozen
// folders (the guard freezes SIG after signing) refuse politely rather
// than panicking, and the site guard protects its managed folders (SIG,
// CASH) from in-script tampering even before they are frozen. It returns
// the named folder (nil when absent) so callers skip a second map lookup;
// the result is never held across other host commands, which may replace
// folders wholesale (guard signing, putlist).
func (h *hostCtx) checkBc(name string) (*folder.Folder, error) {
	f := h.bc.Lookup(name)
	if f != nil && f.IsFrozen() {
		return nil, fmt.Errorf("%w: %q", folder.ErrFrozen, name)
	}
	if g := h.mc.Site.Guard(); g != nil {
		if err := g.CheckBriefcase(h.mc, h.bc, name); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// newHostTable returns the shared command table: the TacL builtins plus the
// TACOMA host command set. All host commands are static (activation state
// flows through hostCtx), so one table serves every site in the process;
// it is built lazily exactly once.
func newHostTable() *tacl.Table {
	hostTableOnce.Do(func() { hostTableShared = buildHostTable() })
	return hostTableShared
}

var (
	hostTableOnce   sync.Once
	hostTableShared *tacl.Table
)

func buildHostTable() *tacl.Table {
	t := tacl.NewTable()
	t.RegisterAll(map[string]tacl.CmdFunc{
		"bc_push":      hostBcPush,
		"bc_pop":       hostBcPop,
		"bc_dequeue":   hostBcDequeue,
		"bc_peek":      hostBcPeek,
		"bc_get":       hostBcGet,
		"bc_set":       hostBcSet,
		"bc_len":       hostBcLen,
		"bc_has":       hostBcHas,
		"bc_del":       hostBcDel,
		"bc_names":     hostBcNames,
		"bc_list":      hostBcList,
		"bc_putlist":   hostBcPutlist,
		"cab_append":   hostCabAppend,
		"cab_contains": hostCabContains,
		"cab_visit":    hostCabVisit,
		"cab_len":      hostCabLen,
		"cab_list":     hostCabList,
		"cab_dequeue":  hostCabDequeue,
		"meet":         hostMeet,
		"host":         hostHost,
		"from":         hostFrom,
		"neighbors":    hostNeighbors,
		"rand":         hostRand,
		"log":          hostLog,
		"jump":         hostJump,
		"park":         hostPark,
		"spawn":        hostSpawn,
	})
	return t
}

// --- briefcase commands ---

func hostBcPush(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "bc_push folder value"); err != nil {
		return "", err
	}
	h := hctx(in)
	f, err := h.checkBc(args[0])
	if err != nil {
		return "", err
	}
	if f == nil {
		f = h.bc.Ensure(args[0])
	}
	// PushOwned of arena bytes: the briefcase push in a script's hot loop
	// costs no per-call allocation (the arena's pages are append-only, so
	// the folder's ownership of the copy is never violated).
	f.PushOwned(in.ArenaBytes(args[1]))
	return "", nil
}

func hostBcPop(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_pop folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	f, err := h.checkBc(args[0])
	if err != nil {
		return "", err
	}
	if f == nil {
		return "", fmt.Errorf("%w: %q", folder.ErrNoFolder, args[0])
	}
	return f.PopString()
}

func hostBcDequeue(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_dequeue folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	f, err := h.checkBc(args[0])
	if err != nil {
		return "", err
	}
	if f == nil {
		return "", fmt.Errorf("%w: %q", folder.ErrNoFolder, args[0])
	}
	return f.DequeueString()
}

func hostBcPeek(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_peek folder"); err != nil {
		return "", err
	}
	f, err := hctx(in).bc.Folder(args[0])
	if err != nil {
		return "", err
	}
	b, err := f.Peek()
	return string(b), err
}

func hostBcGet(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "bc_get folder index"); err != nil {
		return "", err
	}
	f, err := hctx(in).bc.Folder(args[0])
	if err != nil {
		return "", err
	}
	i, err := strconv.Atoi(args[1])
	if err != nil {
		return "", fmt.Errorf("bad index %q", args[1])
	}
	return f.StringAt(i)
}

func hostBcSet(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 3, "bc_set folder index value"); err != nil {
		return "", err
	}
	h := hctx(in)
	f, err := h.checkBc(args[0])
	if err != nil {
		return "", err
	}
	if f == nil {
		return "", fmt.Errorf("%w: %q", folder.ErrNoFolder, args[0])
	}
	i, err := strconv.Atoi(args[1])
	if err != nil {
		return "", fmt.Errorf("bad index %q", args[1])
	}
	return "", f.Set(i, []byte(args[2]))
}

func hostBcLen(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_len folder"); err != nil {
		return "", err
	}
	f, err := hctx(in).bc.Folder(args[0])
	if err != nil {
		return "0", nil
	}
	return strconv.Itoa(f.Len()), nil
}

func hostBcHas(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_has folder"); err != nil {
		return "", err
	}
	return tacl.FormatBool(hctx(in).bc.Has(args[0])), nil
}

func hostBcDel(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_del folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	if _, err := h.checkBc(args[0]); err != nil {
		return "", err
	}
	h.bc.Delete(args[0])
	return "", nil
}

func hostBcNames(in *tacl.Interp, args []string) (string, error) {
	return tacl.FormatList(hctx(in).bc.Names()), nil
}

func hostBcList(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "bc_list folder"); err != nil {
		return "", err
	}
	f, err := hctx(in).bc.Folder(args[0])
	if err != nil {
		return "", nil
	}
	return tacl.FormatList(f.Strings()), nil
}

func hostBcPutlist(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "bc_putlist folder list"); err != nil {
		return "", err
	}
	h := hctx(in)
	if _, err := h.checkBc(args[0]); err != nil {
		return "", err
	}
	elems, err := tacl.ParseList(args[1])
	if err != nil {
		return "", err
	}
	h.bc.Put(args[0], folder.OfStrings(elems...))
	return "", nil
}

// --- file cabinet commands ---

func hostCabAppend(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "cab_append folder value"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], true); err != nil {
		return "", err
	}
	h.mc.Site.Cabinet().AppendString(args[0], args[1])
	return "", nil
}

func hostCabContains(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "cab_contains folder value"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], false); err != nil {
		return "", err
	}
	return tacl.FormatBool(h.mc.Site.Cabinet().ContainsString(args[0], args[1])), nil
}

func hostCabVisit(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 2, "cab_visit folder value"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], true); err != nil {
		return "", err
	}
	return tacl.FormatBool(h.mc.Site.Cabinet().TestAndAppendString(args[0], args[1])), nil
}

func hostCabLen(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "cab_len folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], false); err != nil {
		return "", err
	}
	return strconv.Itoa(h.mc.Site.Cabinet().FolderLen(args[0])), nil
}

func hostCabList(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "cab_list folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], false); err != nil {
		return "", err
	}
	return tacl.FormatList(h.mc.Site.Cabinet().Snapshot(args[0]).Strings()), nil
}

func hostCabDequeue(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "cab_dequeue folder"); err != nil {
		return "", err
	}
	h := hctx(in)
	if err := h.checkCab(args[0], true); err != nil {
		return "", err
	}
	b, err := h.mc.Site.Cabinet().Dequeue(args[0])
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// --- kernel commands ---

func hostMeet(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "meet agent"); err != nil {
		return "", err
	}
	h := hctx(in)
	return "", h.mc.Site.Meet(h.mc, args[0], h.bc)
}

func hostHost(in *tacl.Interp, args []string) (string, error) {
	return string(hctx(in).mc.Site.ID()), nil
}

func hostFrom(in *tacl.Interp, args []string) (string, error) {
	return hctx(in).mc.From, nil
}

func hostNeighbors(in *tacl.Interp, args []string) (string, error) {
	return tacl.FormatList(hctx(in).mc.Site.Cabinet().Snapshot(folder.SitesFolder).Strings()), nil
}

func hostRand(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "rand n"); err != nil {
		return "", err
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || n <= 0 {
		return "", fmt.Errorf("rand needs a positive integer, got %q", args[0])
	}
	return strconv.FormatInt(hctx(in).mc.Site.Rand(n), 10), nil
}

func hostLog(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "log message"); err != nil {
		return "", err
	}
	h := hctx(in)
	h.mc.Site.Cabinet().AppendString("LOG", fmt.Sprintf("[%s] %s", h.mc.Agent, args[0]))
	return "", nil
}

// hostJump moves the agent to another site: the current source is pushed
// back onto CODE so the destination's ag_tacl can pop and run it, the
// briefcase travels via rexec, and execution here stops. State that
// must survive the move belongs in the briefcase; variables do not
// travel — this is restart-style migration, as in the paper.
func hostJump(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "jump site"); err != nil {
		return "", err
	}
	h := hctx(in)
	h.bc.Ensure(folder.CodeFolder).PushString(h.src)
	h.bc.PutString(folder.HostFolder, args[0])
	h.bc.PutString(folder.ContactFolder, AgTacl)
	if err := h.mc.Site.Meet(h.mc, AgRexec, h.bc); err != nil {
		// The move failed; the agent is still here and may handle it.
		if f, ferr := h.bc.Folder(folder.CodeFolder); ferr == nil {
			_, _ = f.Pop() // undo the re-pushed source
		}
		return "", err
	}
	return "", tacl.JumpSignal(args[0])
}

// hostPark parks the agent at this site until work arrives: the current
// source is pushed back onto CODE (restart-style, exactly like jump — the
// script reruns from the top on wakeup), the briefcase becomes the durable
// continuation in the site cabinet, and execution here stops without
// holding a goroutine. The optional watch folder names a cabinet folder
// whose growth wakes the agent (a mailbox, typically); a meet addressed to
// the park name always wakes it. The resumed script reads its identity and
// watermark from the PARK_NAME/PARK_WATCH/PARK_WMARK/PARK_HOP folders.
func hostPark(in *tacl.Interp, args []string) (string, error) {
	if len(args) < 1 || len(args) > 2 {
		return "", fmt.Errorf("wrong # args: should be %q", "park name ?watchfolder?")
	}
	h := hctx(in)
	watch := ""
	if len(args) == 2 {
		watch = args[1]
	}
	h.bc.Ensure(folder.CodeFolder).PushString(h.src)
	if err := h.mc.Site.Park(args[0], watch, h.bc); err != nil {
		// The park failed; the agent is still running and may handle it.
		if f, ferr := h.bc.Folder(folder.CodeFolder); ferr == nil {
			_, _ = f.Pop() // undo the re-pushed source
		}
		return "", err
	}
	return "", tacl.ParkSignal(args[0])
}

// hostSpawn clones the agent at another site and continues locally: the
// flooding pattern. The clone starts with a copy of the briefcase as
// it is at spawn time.
func hostSpawn(in *tacl.Interp, args []string) (string, error) {
	if err := need(args, 1, "spawn site"); err != nil {
		return "", err
	}
	h := hctx(in)
	h.bc.Ensure(folder.CodeFolder).PushString(h.src)
	h.bc.PutString(folder.HostFolder, args[0])
	h.bc.PutString(folder.ContactFolder, AgTacl)
	h.bc.PutString(DetachFolder, "1")
	err := h.mc.Site.Meet(h.mc, AgRexec, h.bc)
	// rexec consumed HOST/CONTACT/DETACH; remove the clone's code copy
	// from the local briefcase.
	if f, ferr := h.bc.Folder(folder.CodeFolder); ferr == nil {
		_, _ = f.Pop()
	}
	return "", err
}

// ScriptWorkloadSrc is the loop-heavy TacL agent that benchmarks the
// scripted-agent hot path: 100 iterations of briefcase push/pop, an
// expr-gated cabinet visit, and arithmetic in the while condition — ~800
// interpreter steps exercising expr evaluation, control-flow bodies, and
// host-command dispatch. BenchmarkScriptedMeet (hotpath_bench_test.go) and
// the tacobench `script` lane both run exactly this constant, so the CI
// gate and the Go benchmark always measure the same workload.
const ScriptWorkloadSrc = `
set total 0
set i 0
while {$i < 100} {
	bc_push WORK [format "item-%d" $i]
	set v [bc_pop WORK]
	if {[cab_visit SEEN $v]} {
		set total [expr {$total + 1}]
	}
	set i [expr {$i + 1}]
}
bc_putlist OUT [list $total]
`

// RunScript is a convenience for injecting a TacL agent into the system
// from Go: it wraps src into a CODE folder on bc (creating bc when nil) and
// meets ag_tacl at the site as an external client.
func RunScript(ctx context.Context, s *Site, src string, bc *folder.Briefcase) (*folder.Briefcase, error) {
	if bc == nil {
		bc = folder.NewBriefcase()
	}
	bc.Ensure(folder.CodeFolder).PushString(src)
	return bc, s.MeetClient(ctx, AgTacl, bc)
}
