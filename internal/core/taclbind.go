package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/folder"
	"repro/internal/tacl"
)

// runTacL executes a TacL agent script with the TACOMA host commands bound
// to the current site and briefcase. The script sees:
//
//	Briefcase:    bc_push bc_pop bc_dequeue bc_peek bc_get bc_set bc_len
//	              bc_has bc_del bc_names bc_list bc_putlist
//	File cabinet: cab_append cab_contains cab_visit cab_len cab_list
//	              cab_dequeue
//	Kernel:       meet jump spawn host from neighbors rand log
//
// plus globals $host (site name) and $from (initiating agent).
func runTacL(mc *MeetContext, bc *folder.Briefcase, src string) error {
	in := tacl.New()
	in.MaxSteps = mc.Site.cfg.MaxSteps
	if f := mc.Site.cfg.StepHookFactory; f != nil {
		in.StepHook = f(mc.Agent, mc.From)
	}
	if g := mc.Site.Guard(); g != nil {
		// The guard's metering hook chains after any configured factory
		// hook, so cycle billing and guard metering compose.
		if h := g.StepHook(mc, bc); h != nil {
			if prev := in.StepHook; prev != nil {
				in.StepHook = func() error {
					if err := prev(); err != nil {
						return err
					}
					return h()
				}
			} else {
				in.StepHook = h
			}
		}
	}
	bindHost(in, mc, bc, src)
	_, err := in.Eval(src)
	if _, ok := tacl.IsJump(err); ok {
		return nil // the agent continues elsewhere; this activation is done
	}
	return err
}

func bindHost(in *tacl.Interp, mc *MeetContext, bc *folder.Briefcase, src string) {
	site := mc.Site
	in.SetGlobal("host", string(site.ID()))
	in.SetGlobal("from", mc.From)

	need := func(args []string, n int, usage string) error {
		if len(args) != n {
			return fmt.Errorf("wrong # args: should be %q", usage)
		}
		return nil
	}

	// checkCab enforces the site guard's capability ACL on cabinet access;
	// the briefcase identifies the visiting agent's principal.
	checkCab := func(name string, write bool) error {
		if g := site.Guard(); g != nil {
			return g.CheckCabinet(mc, bc, name, write)
		}
		return nil
	}
	// checkBc guards mutations of the briefcase's own folders: frozen
	// folders (the guard freezes SIG after signing) refuse politely rather
	// than panicking, and the site guard protects its managed folders (SIG,
	// CASH) from in-script tampering even before they are frozen.
	checkBc := func(name string) error {
		if f := bc.Lookup(name); f != nil && f.IsFrozen() {
			return fmt.Errorf("%w: %q", folder.ErrFrozen, name)
		}
		if g := site.Guard(); g != nil {
			return g.CheckBriefcase(mc, bc, name)
		}
		return nil
	}

	// --- briefcase commands ---

	in.Register("bc_push", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "bc_push folder value"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		bc.Ensure(args[0]).PushString(args[1])
		return "", nil
	})
	in.Register("bc_pop", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_pop folder"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", err
		}
		return f.PopString()
	})
	in.Register("bc_dequeue", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_dequeue folder"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", err
		}
		return f.DequeueString()
	})
	in.Register("bc_peek", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_peek folder"); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", err
		}
		b, err := f.Peek()
		return string(b), err
	})
	in.Register("bc_get", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "bc_get folder index"); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", err
		}
		i, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		return f.StringAt(i)
	})
	in.Register("bc_set", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 3, "bc_set folder index value"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", err
		}
		i, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		return "", f.Set(i, []byte(args[2]))
	})
	in.Register("bc_len", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_len folder"); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "0", nil
		}
		return strconv.Itoa(f.Len()), nil
	})
	in.Register("bc_has", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_has folder"); err != nil {
			return "", err
		}
		return tacl.FormatBool(bc.Has(args[0])), nil
	})
	in.Register("bc_del", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_del folder"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		bc.Delete(args[0])
		return "", nil
	})
	in.Register("bc_names", func(_ *tacl.Interp, args []string) (string, error) {
		return tacl.FormatList(bc.Names()), nil
	})
	in.Register("bc_list", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "bc_list folder"); err != nil {
			return "", err
		}
		f, err := bc.Folder(args[0])
		if err != nil {
			return "", nil
		}
		return tacl.FormatList(f.Strings()), nil
	})
	in.Register("bc_putlist", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "bc_putlist folder list"); err != nil {
			return "", err
		}
		if err := checkBc(args[0]); err != nil {
			return "", err
		}
		elems, err := tacl.ParseList(args[1])
		if err != nil {
			return "", err
		}
		bc.Put(args[0], folder.OfStrings(elems...))
		return "", nil
	})

	// --- file cabinet commands ---

	in.Register("cab_append", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "cab_append folder value"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], true); err != nil {
			return "", err
		}
		site.Cabinet().AppendString(args[0], args[1])
		return "", nil
	})
	in.Register("cab_contains", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "cab_contains folder value"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], false); err != nil {
			return "", err
		}
		return tacl.FormatBool(site.Cabinet().ContainsString(args[0], args[1])), nil
	})
	in.Register("cab_visit", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 2, "cab_visit folder value"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], true); err != nil {
			return "", err
		}
		return tacl.FormatBool(site.Cabinet().TestAndAppendString(args[0], args[1])), nil
	})
	in.Register("cab_len", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "cab_len folder"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], false); err != nil {
			return "", err
		}
		return strconv.Itoa(site.Cabinet().FolderLen(args[0])), nil
	})
	in.Register("cab_list", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "cab_list folder"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], false); err != nil {
			return "", err
		}
		return tacl.FormatList(site.Cabinet().Snapshot(args[0]).Strings()), nil
	})
	in.Register("cab_dequeue", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "cab_dequeue folder"); err != nil {
			return "", err
		}
		if err := checkCab(args[0], true); err != nil {
			return "", err
		}
		b, err := site.Cabinet().Dequeue(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	})

	// --- kernel commands ---

	in.Register("meet", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "meet agent"); err != nil {
			return "", err
		}
		return "", site.Meet(mc, args[0], bc)
	})
	in.Register("host", func(_ *tacl.Interp, args []string) (string, error) {
		return string(site.ID()), nil
	})
	in.Register("from", func(_ *tacl.Interp, args []string) (string, error) {
		return mc.From, nil
	})
	in.Register("neighbors", func(_ *tacl.Interp, args []string) (string, error) {
		return tacl.FormatList(site.Cabinet().Snapshot(folder.SitesFolder).Strings()), nil
	})
	in.Register("rand", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "rand n"); err != nil {
			return "", err
		}
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil || n <= 0 {
			return "", fmt.Errorf("rand needs a positive integer, got %q", args[0])
		}
		return strconv.FormatInt(site.Rand(n), 10), nil
	})
	in.Register("log", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "log message"); err != nil {
			return "", err
		}
		site.Cabinet().AppendString("LOG", fmt.Sprintf("[%s] %s", mc.Agent, args[0]))
		return "", nil
	})

	// jump moves the agent to another site: the current source is pushed
	// back onto CODE so the destination's ag_tacl can pop and run it, the
	// briefcase travels via rexec, and execution here stops. State that
	// must survive the move belongs in the briefcase; variables do not
	// travel — this is restart-style migration, as in the paper.
	in.Register("jump", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "jump site"); err != nil {
			return "", err
		}
		bc.Ensure(folder.CodeFolder).PushString(src)
		bc.PutString(folder.HostFolder, args[0])
		bc.PutString(folder.ContactFolder, AgTacl)
		if err := site.Meet(mc, AgRexec, bc); err != nil {
			// The move failed; the agent is still here and may handle it.
			if f, ferr := bc.Folder(folder.CodeFolder); ferr == nil {
				_, _ = f.Pop() // undo the re-pushed source
			}
			return "", err
		}
		return "", tacl.JumpSignal(args[0])
	})

	// spawn clones the agent at another site and continues locally: the
	// flooding pattern. The clone starts with a copy of the briefcase as
	// it is at spawn time.
	in.Register("spawn", func(_ *tacl.Interp, args []string) (string, error) {
		if err := need(args, 1, "spawn site"); err != nil {
			return "", err
		}
		bc.Ensure(folder.CodeFolder).PushString(src)
		bc.PutString(folder.HostFolder, args[0])
		bc.PutString(folder.ContactFolder, AgTacl)
		bc.PutString(DetachFolder, "1")
		err := site.Meet(mc, AgRexec, bc)
		// rexec consumed HOST/CONTACT/DETACH; remove the clone's code copy
		// from the local briefcase.
		if f, ferr := bc.Folder(folder.CodeFolder); ferr == nil {
			_, _ = f.Pop()
		}
		return "", err
	})

	// Guard-aware builtins (acl_check, sign_bc, principal, ecu_balance)
	// exist only at guarded sites.
	if g := site.Guard(); g != nil {
		g.Bind(in, mc, bc)
	}
}

// RunScript is a convenience for injecting a TacL agent into the system
// from Go: it wraps src into a CODE folder on bc (creating bc when nil) and
// meets ag_tacl at the site as an external client.
func RunScript(ctx context.Context, s *Site, src string, bc *folder.Briefcase) (*folder.Briefcase, error) {
	if bc == nil {
		bc = folder.NewBriefcase()
	}
	bc.Ensure(folder.CodeFolder).PushString(src)
	return bc, s.MeetClient(ctx, AgTacl, bc)
}
