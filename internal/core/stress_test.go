package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/folder"
)

// TestShardedRegistryStress hammers the lock-striped agent registry from
// many goroutines at once — Register, Unregister, Lookup, AgentNames, and
// live meets against agents that stay registered — and is meant to run
// under -race.
func TestShardedRegistryStress(t *testing.T) {
	sys := NewSystem(1, SystemConfig{Seed: 3})
	s := sys.SiteAt(0)

	const stable = 16
	for i := 0; i < stable; i++ {
		s.Register(fmt.Sprintf("stable-%d", i), AgentFunc(
			func(mc *MeetContext, bc *folder.Briefcase) error {
				bc.PutString(folder.ResultFolder, string(mc.Site.ID()))
				return nil
			}))
	}

	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bc := folder.NewBriefcase()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					name := fmt.Sprintf("churn-%d-%d", w, i)
					s.Register(name, AgentFunc(func(*MeetContext, *folder.Briefcase) error { return nil }))
					if _, ok := s.Lookup(name); !ok {
						t.Error("registered agent not found")
						return
					}
					s.Unregister(name)
				case 1:
					if err := s.MeetClient(context.Background(), fmt.Sprintf("stable-%d", i%stable), bc); err != nil {
						t.Errorf("meet: %v", err)
						return
					}
				case 2:
					if _, ok := s.Lookup(fmt.Sprintf("stable-%d", (i*7)%stable)); !ok {
						t.Error("stable agent missing")
						return
					}
				case 3:
					names := s.AgentNames()
					if len(names) < stable {
						t.Errorf("listing lost agents: %d", len(names))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// All churned agents are gone, all stable agents remain.
	for _, n := range s.AgentNames() {
		if strings.HasPrefix(n, "churn-") {
			t.Fatalf("leaked churn agent %q", n)
		}
	}
	for i := 0; i < stable; i++ {
		if _, ok := s.Lookup(fmt.Sprintf("stable-%d", i)); !ok {
			t.Fatalf("stable-%d disappeared", i)
		}
	}
}

// TestShardedCabinetStress drives the lock-striped cabinet concurrently:
// appends, atomic test-and-set, snapshots, dequeues, membership checks, and
// whole-cabinet listings, across folders that share and do not share
// stripes. Run under -race.
func TestShardedCabinetStress(t *testing.T) {
	c := folder.NewCabinet()
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := fmt.Sprintf("worker-%d", w)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					c.AppendString(private, fmt.Sprintf("e%d", i))
				case 1:
					if !c.TestAndAppendString("SHARED", fmt.Sprintf("%d-%d", w, i)) {
						t.Error("fresh element reported as seen")
						return
					}
				case 2:
					snap := c.Snapshot(private)
					snap.PushString("local-mutation") // must not corrupt cabinet
				case 3:
					if _, err := c.Dequeue(private); err != nil &&
						!errors.Is(err, folder.ErrEmpty) && !errors.Is(err, folder.ErrNoFolder) {
						t.Errorf("dequeue: %v", err)
						return
					}
				case 4:
					c.ContainsString("SHARED", fmt.Sprintf("%d-%d", w, i-5))
					_ = c.Names()
					_ = c.FolderLen("SHARED")
				}
			}
		}(w)
	}
	wg.Wait()

	inserted := 0
	for i := 0; i < iters; i++ {
		if i%5 == 1 {
			inserted++
		}
	}
	if got := c.FolderLen("SHARED"); got != 8*inserted {
		t.Fatalf("SHARED has %d elements, want %d", got, 8*inserted)
	}
}

// TestFrozenFolderRefusedInScript: a frozen briefcase folder (the guard
// freezes SIG after signing) must surface as a script error, never a panic,
// when TacL tries to mutate it — even at an unguarded site.
func TestFrozenFolderRefusedInScript(t *testing.T) {
	sys := NewSystem(1, SystemConfig{Seed: 5})
	bc := folder.NewBriefcase()
	bc.PutString("SIG", "alice|CODE|deadbeef")
	if f := bc.Lookup("SIG"); f != nil {
		f.Freeze()
	}
	for _, script := range []string{
		`bc_push SIG forged`,
		`bc_pop SIG`,
		`bc_set SIG 0 forged`,
		`bc_dequeue SIG`,
	} {
		cp := bc.Clone()
		// Clone yields mutable folders; re-freeze SIG as the guard would
		// after a hop's ReplaceAll... the point under test is the builtin's
		// refusal path, so freeze explicitly.
		cp.Lookup("SIG").Freeze()
		_, err := RunScript(context.Background(), sys.SiteAt(0), script, cp)
		if err == nil || !errors.Is(err, folder.ErrFrozen) {
			t.Errorf("%s: err = %v, want ErrFrozen", script, err)
		}
	}
	// Reading a frozen folder is fine.
	out, err := RunScript(context.Background(), sys.SiteAt(0), `bc_push RESULT [bc_get SIG 0]`, bc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := out.GetString(folder.ResultFolder); s != "alice|CODE|deadbeef" {
		t.Fatalf("read through frozen folder: %q", s)
	}
}
