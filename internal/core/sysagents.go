package core

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"repro/internal/folder"
	"repro/internal/vnet"
)

// Well-known system agent names. These are the paper's basic services:
// everything else an agent needs is provided by meeting one of them.
const (
	// AgTacl executes a TacL script popped from the CODE folder (the
	// paper's ag_tcl).
	AgTacl = "ag_tacl"
	// AgRexec moves execution to another site: it expects a HOST folder
	// naming the destination and a CONTACT folder naming the agent to
	// execute there.
	AgRexec = "rexec"
	// AgCourier transfers a folder to a specified agent on a specified
	// machine, letting agents communicate without meeting on a common
	// machine.
	AgCourier = "courier"
	// AgDiffusion executes a CONTACT agent locally, then clones itself at
	// every site in the set difference of the site-local SITES folder and
	// the briefcase SITES folder.
	AgDiffusion = "diffusion"
)

// Folder names used by the system agents beyond those in package folder.
const (
	// DetachFolder, when present, asks rexec/courier to terminate the meet
	// immediately and perform the transfer in the background — the agent
	// "may continue executing concurrently" after the meet.
	DetachFolder = "DETACH"
	// FolderNameFolder names the folder a courier should transfer.
	FolderNameFolder = "FOLDER"
	// DiffIDFolder carries the unique id of one diffusion computation so
	// site-local visit marks from different diffusions never collide.
	DiffIDFolder = "DIFF_ID"
)

func registerSystemAgents(s *Site) {
	s.Register(AgTacl, AgentFunc(agTacl))
	s.Register(AgRexec, AgentFunc(agRexec))
	s.Register(AgCourier, AgentFunc(agCourier))
	s.Register(AgDiffusion, AgentFunc(agDiffusion))
}

// agTacl pops a TacL script from the CODE folder and executes it. The
// script's briefcase commands operate on the same briefcase the meet was
// invoked with, so results flow back to the initiator.
func agTacl(mc *MeetContext, bc *folder.Briefcase) error {
	code, err := bc.Folder(folder.CodeFolder)
	if err != nil {
		return fmt.Errorf("ag_tacl: %w", err)
	}
	src, err := code.Pop()
	if err != nil {
		return fmt.Errorf("ag_tacl: empty CODE folder: %w", err)
	}
	return runTacL(mc, bc, string(src))
}

// agRexec implements the paper's rexec agent: it expects a HOST folder
// naming the destination site and a CONTACT folder naming the agent to
// execute there; the rest of the briefcase travels along. With a DETACH
// folder present, rexec terminates the meet at once and ships the agent in
// the background.
func agRexec(mc *MeetContext, bc *folder.Briefcase) error {
	host, err := bc.GetString(folder.HostFolder)
	if err != nil {
		return fmt.Errorf("rexec: %w", err)
	}
	contact, err := bc.GetString(folder.ContactFolder)
	if err != nil {
		return fmt.Errorf("rexec: %w", err)
	}
	detach := bc.Has(DetachFolder)
	// HOST/CONTACT/DETACH are arguments to rexec, not part of the moving
	// agent's state.
	bc.Delete(folder.HostFolder)
	bc.Delete(folder.ContactFolder)
	bc.Delete(DetachFolder)

	if detach {
		shipped := bc.Clone()
		site := mc.Site
		site.Go(func() {
			// Background shipment: failures surface only in the site's
			// cabinet log, exactly like a lost letter.
			if err := site.RemoteMeet(mc.Ctx, vnet.SiteID(host), contact, shipped); err != nil {
				site.Cabinet().AppendString("LOG", "rexec detach: "+err.Error())
			}
		})
		return nil
	}
	return mc.Site.RemoteMeet(mc.Ctx, vnet.SiteID(host), contact, bc)
}

// agCourier transfers one named folder to a specified agent on a specified
// machine. Briefcase arguments: HOST (destination site), CONTACT (receiving
// agent), FOLDER (name of the folder to transfer), plus the folder itself.
func agCourier(mc *MeetContext, bc *folder.Briefcase) error {
	host, err := bc.GetString(folder.HostFolder)
	if err != nil {
		return fmt.Errorf("courier: %w", err)
	}
	contact, err := bc.GetString(folder.ContactFolder)
	if err != nil {
		return fmt.Errorf("courier: %w", err)
	}
	name, err := bc.GetString(FolderNameFolder)
	if err != nil {
		return fmt.Errorf("courier: %w", err)
	}
	payload, err := bc.Folder(name)
	if err != nil {
		return fmt.Errorf("courier: no folder %q to deliver: %w", name, err)
	}
	parcel := folder.NewBriefcase()
	parcel.Put(name, payload.Clone())
	parcel.PutString("SENDER", mc.From)
	parcel.PutString("ORIGIN", string(mc.Site.ID()))

	if bc.Has(DetachFolder) {
		site := mc.Site
		site.Go(func() {
			if err := site.RemoteMeet(mc.Ctx, vnet.SiteID(host), contact, parcel); err != nil {
				site.Cabinet().AppendString("LOG", "courier: "+err.Error())
			}
		})
		return nil
	}
	if err := mc.Site.RemoteMeet(mc.Ctx, vnet.SiteID(host), contact, parcel); err != nil {
		return fmt.Errorf("courier: %w", err)
	}
	// Fold any reply folder back for the sender.
	if reply, err := parcel.Folder(folder.ResultFolder); err == nil {
		bc.Put(folder.ResultFolder, reply.Clone())
	}
	return nil
}

// agDiffusion implements the paper's diffusion agent. At each site it
// executes the CONTACT agent locally, then clones itself at every site in
// the set difference of the site-local SITES folder (the neighbours this
// site knows) and the briefcase SITES folder (sites already covered). A
// site-local visit mark makes termination robust even when concurrent
// clones race along different paths of a cyclic topology — this is the
// paper's flooding example: mark the visit, and terminate rather than
// clone when the site has been seen.
func agDiffusion(mc *MeetContext, bc *folder.Briefcase) error {
	site := mc.Site
	id, err := bc.GetString(DiffIDFolder)
	if err != nil {
		id = newDiffusionID()
		bc.PutString(DiffIDFolder, id)
	}
	if !site.Cabinet().TestAndAppendString("DIFFUSION:"+id, string(site.ID())) {
		return nil // already visited by another clone; terminate
	}

	if contact, err := bc.GetString(folder.ContactFolder); err == nil {
		if err := site.Meet(mc, contact, bc); err != nil {
			bc.Ensure(folder.ErrorFolder).PushString(
				fmt.Sprintf("diffusion at %s: %v", site.ID(), err))
		}
	}

	covered := bc.Ensure(folder.SitesFolder)
	if !covered.ContainsString(string(site.ID())) {
		covered.PushString(string(site.ID()))
	}
	neighbours := site.Cabinet().Snapshot(folder.SitesFolder)
	var next []string
	for _, n := range neighbours.Strings() {
		if !covered.ContainsString(n) {
			next = append(next, n)
			covered.PushString(n)
		}
	}
	for _, dest := range next {
		clone := bc.Clone()
		if err := site.RemoteMeet(mc.Ctx, vnet.SiteID(dest), AgDiffusion, clone); err != nil {
			bc.Ensure(folder.ErrorFolder).PushString(
				fmt.Sprintf("diffusion clone to %s: %v", dest, err))
			continue
		}
		// Merge sites covered by the clone's subtree so siblings skip them,
		// and surface any failures its subtree recorded.
		if cs, err := clone.Folder(folder.SitesFolder); err == nil {
			for _, cSite := range cs.Strings() {
				if !covered.ContainsString(cSite) {
					covered.PushString(cSite)
				}
			}
		}
		if ce, err := clone.Folder(folder.ErrorFolder); err == nil && ce.Len() > 0 {
			errs := bc.Ensure(folder.ErrorFolder)
			for _, msg := range ce.Strings() {
				if !errs.ContainsString(msg) {
					errs.PushString(msg)
				}
			}
		}
	}
	return nil
}

func newDiffusionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable and cannot be handled here.
		panic("core: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
