package core

import (
	"sync"

	"repro/internal/tacl"
)

// scriptCache is a site's compile-once cache for TacL agent scripts, keyed
// by a 64-bit FNV-1a content hash and lock-striped 16 ways like the agent
// registry, so concurrent activations of different scripts never contend.
// Agent code is an uninterpreted byte string that travels verbatim in the
// CODE folder — and signed briefcases keep it byte-identical across every
// hop of an itinerary (guard.Sign covers CODE, so a mutated script is
// rejected before it runs) — which makes the content hash a stable identity
// for a roaming agent: the second and every later activation of the same
// script at this site skips Parse entirely.
const (
	scriptCacheShards   = 16
	scriptCacheShardCap = 64
	// maxCacheableScript bounds the size of a retained script, so the
	// cache's worst-case footprint is shards × cap × this. A legitimate
	// roaming agent is a few KB; anything larger still runs, it just
	// re-parses per activation.
	maxCacheableScript = 32 << 10
)

type scriptCache struct {
	shards [scriptCacheShards]scriptCacheShard
}

type scriptCacheShard struct {
	mu sync.RWMutex
	m  map[uint64]scriptEntry
}

type scriptEntry struct {
	src  string
	prog *tacl.Script
}

// scriptHash is 64-bit FNV-1a over the script source.
func scriptHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// compiled returns the parsed form of src, parsing at most once per content
// hash. On a hash collision (the stored source differs) the newcomer is
// parsed fresh and not cached — first writer wins, correctness never
// depends on the hash.
func (c *scriptCache) compiled(src string) (*tacl.Script, error) {
	h := scriptHash(src)
	sh := &c.shards[h&(scriptCacheShards-1)]
	sh.mu.RLock()
	e, ok := sh.m[h]
	sh.mu.RUnlock()
	if ok && e.src == src {
		return e.prog, nil
	}
	// Miss: parse through the process-wide cache, so the same script
	// arriving at many sites of one process shares a single parsed form.
	prog, err := tacl.ParseCached(src)
	if err != nil {
		return nil, err
	}
	if !ok && len(src) <= maxCacheableScript {
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[uint64]scriptEntry, 32)
		}
		if len(sh.m) >= scriptCacheShardCap {
			// Evict an arbitrary entry; a hot script that loses its slot is
			// simply re-parsed on its next activation.
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
		sh.m[h] = scriptEntry{src: src, prog: prog}
		sh.mu.Unlock()
	}
	return prog, nil
}
