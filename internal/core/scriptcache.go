package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/tacl"
)

// scriptCache is a site's compile-once cache for TacL agent scripts, keyed
// by a 64-bit FNV-1a content hash. Lookups are lock-free reads of an
// immutable copy-on-write map, so concurrent activations — even of the very
// same script — never touch a shared mutex: an RLock here still bounces the
// lock word between cores on every activation, which the GOMAXPROCS sweep
// (tacobench -cpus) surfaces as the first contention point on the scripted
// meet path. Writes (one per distinct script, ever) copy the shard map.
// Agent code is an uninterpreted byte string that travels verbatim in the
// CODE folder — and signed briefcases keep it byte-identical across every
// hop of an itinerary (guard.Sign covers CODE, so a mutated script is
// rejected before it runs) — which makes the content hash a stable identity
// for a roaming agent: the second and every later activation of the same
// script at this site skips Parse entirely.
const (
	scriptCacheShards   = 16
	scriptCacheShardCap = 64
	// maxCacheableScript bounds the size of a retained script, so the
	// cache's worst-case footprint is shards × cap × this. A legitimate
	// roaming agent is a few KB; anything larger still runs, it just
	// re-parses per activation.
	maxCacheableScript = 32 << 10
)

type scriptCache struct {
	shards [scriptCacheShards]scriptCacheShard
}

type scriptCacheShard struct {
	mu sync.Mutex   // serializes writers; readers never take it
	v  atomic.Value // map[uint64]scriptEntry, replaced wholesale on insert
}

type scriptEntry struct {
	src  string
	prog *tacl.Script
}

// scriptHash is 64-bit FNV-1a over the script source.
func scriptHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// compiled returns the parsed form of src, parsing at most once per content
// hash. On a hash collision (the stored source differs) the newcomer is
// parsed fresh and not cached — first writer wins, correctness never
// depends on the hash.
func (c *scriptCache) compiled(src string) (*tacl.Script, error) {
	h := scriptHash(src)
	sh := &c.shards[h&(scriptCacheShards-1)]
	m, _ := sh.v.Load().(map[uint64]scriptEntry)
	e, ok := m[h]
	if ok && e.src == src {
		return e.prog, nil
	}
	// Miss: parse through the process-wide cache, so the same script
	// arriving at many sites of one process shares a single parsed form.
	prog, err := tacl.ParseCached(src)
	if err != nil {
		return nil, err
	}
	if !ok && len(src) <= maxCacheableScript {
		// A retained script will run again: lower it to bytecode now, off
		// the next activation's critical path. The program attaches to the
		// shared *tacl.Script, so the byte-cap and admission policy above
		// bound the compiled form exactly as they bound the parse.
		prog.Precompile()
		sh.mu.Lock()
		cur, _ := sh.v.Load().(map[uint64]scriptEntry)
		if _, raced := cur[h]; !raced {
			next := make(map[uint64]scriptEntry, len(cur)+1)
			evict := len(cur) >= scriptCacheShardCap
			for k, v := range cur {
				if evict {
					// Skip an arbitrary entry; a hot script that loses its
					// slot is simply re-parsed on its next activation.
					evict = false
					continue
				}
				next[k] = v
			}
			next[h] = scriptEntry{src: src, prog: prog}
			sh.v.Store(next)
		}
		sh.mu.Unlock()
	}
	return prog, nil
}
