// Package rearguard implements TACOMA's fault-tolerance scheme (section 5
// of the paper): when an agent computation moves from one site to another,
// it leaves a rear guard behind. The rear guard (i) launches a new agent
// should a failure cause the agent it protects to vanish, and (ii)
// terminates itself when its function is no longer necessary because the
// protected agent has moved on safely or the computation has finished.
//
// A guarded computation is an itinerary of sites with a task executed at
// each. State travels in the briefcase; every hop's guard holds the
// checkpointed briefcase as of the agent's departure, so a relaunch resumes
// from the last completed hop rather than from the beginning. Itineraries
// may revisit sites (cycles); per-computation hop marks in site cabinets
// keep re-executions after a relaunch race idempotent.
package rearguard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// Agent names registered on every participating site.
const (
	// AgHop executes one itinerary hop and moves the computation forward.
	AgHop = "rg_agent"
	// AgGuard manages rear guards: arm and release operations.
	AgGuard = "rg_guard"
	// AgHome receives the finished computation at its origin.
	AgHome = "rg_home"
)

// Briefcase folder names used by the protocol.
const (
	IDFolder        = "RG_ID"
	HopFolder       = "RG_HOP"
	ItineraryFolder = "RG_ITIN"
	TaskFolder      = "RG_TASK"
	OriginFolder    = "RG_ORIGIN"
	GuardedFolder   = "RG_GUARDED" // present when guards are enabled
	SkippedFolder   = "RG_SKIPPED" // hops skipped because their site was dead
	RelaunchFolder  = "RG_RELAUNCHES"
	guardSiteFolder = "RG_GSITE" // site of the currently armed guard
	guardHopFolder  = "RG_GKEY"  // hop key of the currently armed guard
	opFolder        = "RG_OP"
	hopOfGuard      = "RG_GHOP"
)

// ArmFolderPrefix prefixes the cabinet folders holding armed-guard
// checkpoints. Every arm writes (and every release deletes) one
// "RG_ARM:<id>/<hop>" folder with [id, hop, watched site, encoded
// checkpoint briefcase], so on a site whose cabinet is write-ahead logged
// (store.WAL) the fault-tolerance subsystem survives the faults it exists
// for: Recover re-arms the guards a crash dropped, closing the paper's loop
// where stable storage and rear guards together make agent computations
// survive site failures.
const ArmFolderPrefix = "RG_ARM:"

// Errors.
var (
	// ErrAllDead is recorded when no remaining itinerary site is reachable.
	ErrAllDead = errors.New("rearguard: no reachable site left in itinerary")
	// ErrTimeout is returned by Wait when the computation never finished.
	ErrTimeout = errors.New("rearguard: computation did not complete")
)

// Config describes one guarded computation.
type Config struct {
	// ID must be unique per computation.
	ID string
	// Task names the agent met at every itinerary site to do the work.
	Task string
	// Itinerary is the ordered list of sites to visit; repeats allowed.
	Itinerary []vnet.SiteID
	// Guards enables rear guards; without them a single site failure
	// kills the computation (the experiment's baseline).
	Guards bool
}

// Result is the completed computation as delivered to its origin.
type Result struct {
	ID string
	// Completed is false when Wait timed out.
	Completed bool
	// Briefcase is the final briefcase (nil unless Completed).
	Briefcase *folder.Briefcase
	// Relaunches counts rear-guard recoveries that contributed.
	Relaunches int
	// Skipped lists hops abandoned because their site stayed dead.
	Skipped []string
}

// guard is one armed rear guard.
type guard struct {
	id     string
	hop    int // the hop index the guard would relaunch
	watch  vnet.SiteID
	bc     *folder.Briefcase // checkpoint to relaunch with
	cancel chan struct{}
	once   sync.Once
}

func (g *guard) release() { g.once.Do(func() { close(g.cancel) }) }

// Manager runs the rear-guard machinery at one site. Install one per site.
type Manager struct {
	site *core.Site
	// Interval is the guard's failure-detection period.
	Interval time.Duration
	// Misses is how many consecutive failed pings declare a site dead.
	Misses int

	mu      sync.Mutex
	guards  map[string]*guard      // key: id "/" hop
	waiters map[string]chan Result // home-site completion channels
}

// Install registers the rear-guard agents at a site and returns the
// manager. Every site on an itinerary (and the origin) needs one.
func Install(site *core.Site) *Manager {
	m := &Manager{
		site:     site,
		Interval: 20 * time.Millisecond,
		Misses:   2,
		guards:   make(map[string]*guard),
		waiters:  make(map[string]chan Result),
	}
	site.Register(AgHop, core.AgentFunc(m.hop))
	site.Register(AgGuard, core.AgentFunc(m.guardOps))
	site.Register(AgHome, core.AgentFunc(m.home))
	return m
}

func guardKey(id string, hop int) string { return id + "/" + strconv.Itoa(hop) }

// persistGuard checkpoints an armed guard into the site cabinet. Called
// with m.mu held: the Put is serialized against release's Delete, so a
// released guard can never be re-persisted into a stale checkpoint. The
// checkpoint briefcase is immutable once armed, so encoding it here is
// race-free. Callers force the durability barrier (DurableSync) after
// dropping m.mu — the barrier is the slow part, and holding the manager
// lock across an fdatasync would serialize every guard operation on disk
// latency.
func (m *Manager) persistGuard(g *guard) {
	f := folder.New()
	f.PushString(g.id)
	f.PushString(strconv.Itoa(g.hop))
	f.PushString(string(g.watch))
	f.PushOwned(folder.EncodeBriefcase(g.bc))
	// Checkpoint format v2: a fifth element carries the agent's park
	// continuation descriptor when the guarded briefcase has one — a
	// relaunch of a resident agent then restarts it as the parked
	// continuation it was, not a fresh hop. Empty for never-parked agents;
	// absent entirely in pre-scheduler checkpoints (Recover accepts both).
	f.PushString(ParkDescriptor(g.bc))
	m.site.Cabinet().Put(ArmFolderPrefix+guardKey(g.id, g.hop), f)
}

// ParkDescriptor summarizes the park continuation a briefcase carries
// ("name=<park name>;watch=<watched folder>"), or "" when it has none.
// Rear-guard checkpoints store it alongside the encoded briefcase so
// recovery tooling can see at a glance that a guarded agent is a resident
// (parked) one without decoding the briefcase.
func ParkDescriptor(bc *folder.Briefcase) string {
	if bc == nil {
		return ""
	}
	name, err := bc.GetString(core.ParkNameFolder)
	if err != nil || name == "" {
		return ""
	}
	watch, _ := bc.GetString(core.ParkWatchFolder)
	return "name=" + name + ";watch=" + watch
}

// syncCheckpoint forces the durability barrier for a checkpoint mutation.
// A failure (sticky WAL error) cannot be handled here — the guard still
// works for this process's lifetime, but a crash would lose it — so the
// degradation is surfaced in the site log; every meet on the site is
// already failing its own durability barrier with the same error, so the
// operator is being told loudly anyway.
func (m *Manager) syncCheckpoint(op string) {
	if err := m.site.DurableSync(); err != nil {
		m.site.Cabinet().AppendString("LOG",
			fmt.Sprintf("rearguard: %s checkpoint not durable: %v", op, err))
	}
}

// unpersistGuard drops a released guard's checkpoint.
func (m *Manager) unpersistGuard(id string, hop int) {
	m.site.Cabinet().Delete(ArmFolderPrefix + guardKey(id, hop))
}

// Recover re-arms every guard whose checkpoint survives in the site
// cabinet, returning how many were restored. Call it after the cabinet has
// been recovered from stable storage (tacomad does, right after its WAL
// replay) — a restarted site resumes watching the agents it was guarding
// when it crashed. Unreadable checkpoints are dropped rather than trusted.
// Both checkpoint formats recover: the legacy four-element folder and the
// five-element one whose tail is the park descriptor (see persistGuard).
func (m *Manager) Recover() int {
	n := 0
	for _, name := range m.site.Cabinet().Names() {
		if !strings.HasPrefix(name, ArmFolderPrefix) {
			continue
		}
		f := m.site.Cabinet().Snapshot(name)
		id, err0 := f.StringAt(0)
		hopStr, err1 := f.StringAt(1)
		watch, err2 := f.StringAt(2)
		enc, err3 := f.At(3)
		if err0 != nil || err1 != nil || err2 != nil || err3 != nil {
			m.site.Cabinet().Delete(name)
			continue
		}
		hop, err := strconv.Atoi(hopStr)
		if err != nil {
			m.site.Cabinet().Delete(name)
			continue
		}
		bc, err := folder.DecodeBriefcase(enc)
		if err != nil {
			m.site.Cabinet().Delete(name)
			continue
		}
		m.armGuard(id, hop, vnet.SiteID(watch), bc, false)
		n++
	}
	return n
}

// Launch starts a guarded computation from this manager's site and returns
// a channel that delivers the Result when the computation comes home.
func (m *Manager) Launch(ctx context.Context, cfg Config, payload *folder.Briefcase) (<-chan Result, error) {
	if cfg.ID == "" || cfg.Task == "" || len(cfg.Itinerary) == 0 {
		return nil, errors.New("rearguard: config needs ID, Task, and a non-empty Itinerary")
	}
	bc := folder.NewBriefcase()
	if payload != nil {
		bc.Merge(payload)
	}
	bc.PutString(IDFolder, cfg.ID)
	bc.PutString(HopFolder, "0")
	bc.PutString(TaskFolder, cfg.Task)
	bc.PutString(OriginFolder, string(m.site.ID()))
	bc.PutString(RelaunchFolder, "0")
	itin := folder.New()
	for _, s := range cfg.Itinerary {
		itin.PushString(string(s))
	}
	bc.Put(ItineraryFolder, itin)
	if cfg.Guards {
		bc.PutString(GuardedFolder, "1")
	}

	ch := make(chan Result, 1)
	m.mu.Lock()
	m.waiters[cfg.ID] = ch
	m.mu.Unlock()

	// The origin acts as hop -1: it arms a guard watching the first site
	// (when guards are on) and ships the agent. The briefcase carries a
	// pointer to the armed guard (site + key) so whoever advances next
	// knows exactly whom to dismiss — after a relaunch the guard does NOT
	// sit where the itinerary would suggest.
	first := cfg.Itinerary[0]
	if cfg.Guards {
		bc.PutString(guardSiteFolder, string(m.site.ID()))
		bc.PutString(guardHopFolder, "0")
		m.arm(cfg.ID, 0, first, bc.Clone())
	}
	site := m.site
	site.Go(func() {
		if err := site.RemoteMeet(ctx, first, AgHop, bc.Clone()); err != nil && !cfg.Guards {
			// Without guards a failed initial move is simply a lost agent.
			return
		}
	})
	return ch, nil
}

// Wait collects a launched computation's result, or Completed=false after
// the timeout.
func Wait(ch <-chan Result, timeout time.Duration) Result {
	select {
	case r := <-ch:
		return r
	case <-time.After(timeout):
		return Result{Completed: false}
	}
}

// hop executes one itinerary step at this site.
func (m *Manager) hop(mc *core.MeetContext, bc *folder.Briefcase) error {
	id, err := bc.GetString(IDFolder)
	if err != nil {
		return fmt.Errorf("rg_agent: %w", err)
	}
	hopStr, err := bc.GetString(HopFolder)
	if err != nil {
		return fmt.Errorf("rg_agent: %w", err)
	}
	hop, err := strconv.Atoi(hopStr)
	if err != nil {
		return fmt.Errorf("rg_agent: bad hop %q", hopStr)
	}
	task, _ := bc.GetString(TaskFolder)
	itin, err := bc.Folder(ItineraryFolder)
	if err != nil {
		return fmt.Errorf("rg_agent: %w", err)
	}

	// Idempotence across relaunch races: execute each hop's task at most
	// once per site per computation. A duplicate arrival (the guard
	// relaunched an agent that had in fact survived) continues the
	// journey without redoing work, and the march forward is then
	// deduplicated at the next hop too.
	fresh := m.site.Cabinet().TestAndAppendString("RG:"+id, hopStr)
	if fresh && task != "" {
		if err := m.site.Meet(mc, task, bc); err != nil {
			bc.Ensure(folder.ErrorFolder).PushString(
				fmt.Sprintf("task %s at %s hop %d: %v", task, m.site.ID(), hop, err))
		}
	}
	return m.advance(mc.Ctx, bc, id, hop, itin)
}

// advance moves the computation from the current hop toward the next,
// arming a new guard here and releasing the one behind.
func (m *Manager) advance(ctx context.Context, bc *folder.Briefcase, id string, hop int, itin *folder.Folder) error {
	guarded := bc.Has(GuardedFolder)

	next := hop + 1
	if next >= itin.Len() {
		// Journey complete: deliver home, then dismiss the guard behind.
		origin, _ := bc.GetString(OriginFolder)
		err := m.site.RemoteMeet(ctx, vnet.SiteID(origin), AgHome, bc.Clone())
		if guarded {
			m.releaseBehind(ctx, bc, id)
		}
		return err
	}

	// Find the next live site, skipping dead ones. The mover observes
	// move failures synchronously; the guard only covers failures after
	// a successful handoff.
	dest := vnet.SiteID("")
	for ; next < itin.Len(); next++ {
		cand, _ := itin.StringAt(next)
		if err := m.site.Ping(ctx, vnet.SiteID(cand), 0); err == nil {
			dest = vnet.SiteID(cand)
			break
		}
		bc.Ensure(SkippedFolder).PushString(cand)
	}
	if dest == "" {
		// Nothing left alive: deliver what we have, flagged.
		origin, _ := bc.GetString(OriginFolder)
		bc.Ensure(folder.ErrorFolder).PushString(ErrAllDead.Error())
		err := m.site.RemoteMeet(ctx, vnet.SiteID(origin), AgHome, bc.Clone())
		if guarded {
			m.releaseBehind(ctx, bc, id)
		}
		return err
	}

	// Remember who currently guards us, then arm the next guard here and
	// record its pointer — the checkpoint cloned for the new guard must
	// point at the new guard itself, so that an agent it relaunches knows
	// to dismiss it.
	oldSite, _ := bc.GetString(guardSiteFolder)
	oldKey, _ := bc.GetString(guardHopFolder)
	bc.PutString(HopFolder, strconv.Itoa(next))
	if guarded {
		bc.PutString(guardSiteFolder, string(m.site.ID()))
		bc.PutString(guardHopFolder, strconv.Itoa(next))
		m.arm(id, next, dest, bc.Clone())
	}
	// Detached move: no site holds an RPC open for the rest of the
	// journey, so a crash here after the handoff kills nothing.
	site := m.site
	moveBC := bc.Clone()
	site.Go(func() {
		if err := site.RemoteMeet(ctx, dest, AgHop, moveBC); err != nil {
			// The handoff failed after the ping said the site was alive.
			// The guard armed above (or an earlier one) will relaunch.
			site.Cabinet().AppendString("LOG",
				fmt.Sprintf("rg move %s hop %d to %s failed: %v", id, next, dest, err))
		}
	})
	if guarded {
		m.releaseAt(ctx, oldSite, oldKey, id)
	}
	return nil
}

// releaseBehind dismisses the guard the briefcase points at. Failures are
// ignored — a dead guard site needs no dismissal.
func (m *Manager) releaseBehind(ctx context.Context, bc *folder.Briefcase, id string) {
	gsite, _ := bc.GetString(guardSiteFolder)
	gkey, _ := bc.GetString(guardHopFolder)
	m.releaseAt(ctx, gsite, gkey, id)
}

// releaseAt sends a release for guard (id, key) to the named site.
func (m *Manager) releaseAt(ctx context.Context, gsite, gkey, id string) {
	if gsite == "" || gkey == "" {
		return
	}
	rel := folder.NewBriefcase()
	rel.PutString(opFolder, "release")
	rel.PutString(IDFolder, id)
	rel.PutString(hopOfGuard, gkey)
	site := m.site
	site.Go(func() {
		_ = site.RemoteMeet(ctx, vnet.SiteID(gsite), AgGuard, rel)
	})
}

// guardOps serves arm/release requests addressed to this site's guards.
func (m *Manager) guardOps(mc *core.MeetContext, bc *folder.Briefcase) error {
	op, err := bc.GetString(opFolder)
	if err != nil {
		return fmt.Errorf("rg_guard: %w", err)
	}
	id, err := bc.GetString(IDFolder)
	if err != nil {
		return fmt.Errorf("rg_guard: %w", err)
	}
	hopStr, err := bc.GetString(hopOfGuard)
	if err != nil {
		return fmt.Errorf("rg_guard: %w", err)
	}
	hop, err := strconv.Atoi(hopStr)
	if err != nil {
		return fmt.Errorf("rg_guard: bad hop %q", hopStr)
	}
	switch op {
	case "release":
		m.mu.Lock()
		g := m.guards[guardKey(id, hop)]
		delete(m.guards, guardKey(id, hop))
		m.unpersistGuard(id, hop)
		m.mu.Unlock()
		if g != nil {
			g.release()
		}
		return nil
	default:
		return fmt.Errorf("rg_guard: unknown op %q", op)
	}
}

// arm starts a rear guard at this site watching the given destination: if
// the destination stops answering pings before the guard is released, the
// guard relaunches the computation from its checkpoint.
func (m *Manager) arm(id string, hop int, watch vnet.SiteID, checkpoint *folder.Briefcase) {
	m.armGuard(id, hop, watch, checkpoint, true)
}

// armGuard arms a rear guard; persist=false is the recovery path, where
// the checkpoint being re-armed was just read from the cabinet — its
// durability is the very thing recovery proved, so re-journaling it (and
// paying one fdatasync per recovered guard) would be pure waste.
func (m *Manager) armGuard(id string, hop int, watch vnet.SiteID, checkpoint *folder.Briefcase, persist bool) {
	g := &guard{id: id, hop: hop, watch: watch, bc: checkpoint, cancel: make(chan struct{})}
	key := guardKey(id, hop)
	m.mu.Lock()
	if old := m.guards[key]; old != nil {
		old.release()
	}
	m.guards[key] = g
	if persist {
		// Checkpointed under m.mu so a racing release cannot be overtaken
		// and leave a stale checkpoint behind; the barrier below makes it
		// durable before the agent the guard protects is allowed to move
		// (arm is called before the detached hop meet is spawned).
		m.persistGuard(g)
	}
	m.mu.Unlock()
	if persist {
		m.syncCheckpoint("arm")
	}

	site := m.site
	site.Go(func() {
		misses := 0
		// Baseline the watched site's incarnation immediately: a crash and
		// restart that both happen before the first periodic probe would
		// otherwise go unnoticed.
		lastInc := int64(-1)
		if inc, err := site.PingIncarnation(context.Background(), g.watch, 0); err == nil {
			lastInc = inc
		}
		ticker := time.NewTicker(m.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.cancel:
				return
			case <-ticker.C:
				inc, err := site.PingIncarnation(context.Background(), g.watch, 0)
				if errors.Is(err, vnet.ErrCrashed) || errors.Is(err, vnet.ErrClosed) {
					// Our own site went down or is shutting down: the guard
					// dies with it — without releasing, so its durable
					// checkpoint survives for Recover to re-arm. (Without
					// the ErrClosed case, a graceful restart's endpoint
					// Close would drive the watcher through the all-dead
					// relaunch path, durably deleting the very checkpoint
					// the WAL exists to preserve.)
					return
				}
				restarted := err == nil && lastInc >= 0 && inc != lastInc
				if err == nil {
					lastInc = inc
					misses = 0
				} else {
					misses++
				}
				if !restarted && misses < m.Misses {
					continue
				}
				// The protected agent has vanished — either the watched
				// site stopped answering, or it answered under a new
				// incarnation (it crashed and rebooted between probes,
				// taking its agents with it). Relaunch from the
				// checkpoint; hop marks in cabinets deduplicate if the
				// original had in fact survived.
				m.relaunch(g)
				misses = 0
				lastInc = -1 // the watch target may have changed
			}
		}
	})
}

// relaunch re-injects the checkpointed agent at the first live site of the
// remaining itinerary.
func (m *Manager) relaunch(g *guard) {
	bc := g.bc.Clone()
	if n, err := bc.GetString(RelaunchFolder); err == nil {
		if v, err := strconv.Atoi(n); err == nil {
			bc.PutString(RelaunchFolder, strconv.Itoa(v+1))
		}
	}
	itin, err := bc.Folder(ItineraryFolder)
	if err != nil {
		return
	}
	ctx := context.Background()
	for next := g.hop; next < itin.Len(); next++ {
		cand, _ := itin.StringAt(next)
		if err := m.site.Ping(ctx, vnet.SiteID(cand), 0); err != nil {
			if errors.Is(err, vnet.ErrClosed) || errors.Is(err, vnet.ErrCrashed) {
				// Our own endpoint is closing (or crashed): every candidate
				// would look dead from here. Abandon the relaunch with the
				// guard and its durable checkpoint intact — falling through
				// to the all-dead path would delete the checkpoint and send
				// a spurious flagged result during a graceful restart.
				return
			}
			bc.Ensure(SkippedFolder).PushString(cand)
			continue
		}
		bc.PutString(HopFolder, strconv.Itoa(next))
		g.watch = vnet.SiteID(cand) // keep guarding the relaunched agent
		m.mu.Lock()
		if m.guards[guardKey(g.id, g.hop)] == g {
			// The durable checkpoint tracks the new watch — but only while
			// this guard is still the armed one: a release that landed
			// since the watcher woke has already deleted the checkpoint,
			// and re-persisting would resurrect it forever.
			m.persistGuard(g)
		}
		m.mu.Unlock()
		m.syncCheckpoint("relaunch")
		site := m.site
		launch := bc.Clone()
		site.Go(func() {
			_ = site.RemoteMeet(ctx, vnet.SiteID(cand), AgHop, launch)
		})
		return
	}
	// Everything ahead is dead; deliver the checkpoint home, flagged.
	origin, _ := bc.GetString(OriginFolder)
	bc.Ensure(folder.ErrorFolder).PushString(ErrAllDead.Error())
	site := m.site
	final := bc.Clone()
	site.Go(func() {
		_ = site.RemoteMeet(ctx, vnet.SiteID(origin), AgHome, final)
	})
	g.release()
	m.mu.Lock()
	delete(m.guards, guardKey(g.id, g.hop))
	m.unpersistGuard(g.id, g.hop)
	m.mu.Unlock()
	// This runs in the watcher goroutine, not a meet, so no depth-0 meet
	// barrier will sync the delete for us; without one a quiet site could
	// hold it in the WAL tail indefinitely, and a crash would resurrect
	// the guard — redelivering this flagged result after every reboot.
	m.syncCheckpoint("release")
}

// home receives a finished computation at its origin and wakes the waiter.
// Duplicate deliveries (relaunch races) are collapsed: first one wins.
func (m *Manager) home(mc *core.MeetContext, bc *folder.Briefcase) error {
	id, err := bc.GetString(IDFolder)
	if err != nil {
		return fmt.Errorf("rg_home: %w", err)
	}
	m.mu.Lock()
	ch := m.waiters[id]
	delete(m.waiters, id)
	m.mu.Unlock()
	if ch == nil {
		return nil // duplicate delivery
	}
	res := Result{ID: id, Completed: true, Briefcase: bc.Clone()}
	if n, err := bc.GetString(RelaunchFolder); err == nil {
		res.Relaunches, _ = strconv.Atoi(n)
	}
	if sk, err := bc.Folder(SkippedFolder); err == nil {
		res.Skipped = sk.Strings()
	}
	ch <- res
	return nil
}

// ActiveGuards reports how many guards are currently armed at this site.
func (m *Manager) ActiveGuards() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.guards)
}

// GuardKeys returns the sorted "id/hop" keys of every armed guard. The
// replication failover tests compare a promoted follower's guard set
// against the dead leader's to assert zero guards were lost.
func (m *Manager) GuardKeys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.guards))
	for k := range m.guards {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}
