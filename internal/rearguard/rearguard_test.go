package rearguard

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// testRig builds n sites with rearguard managers, a trail-recording task,
// and short detection intervals.
func testRig(t *testing.T, n int) (*core.System, []*Manager) {
	t.Helper()
	sys := core.NewSystem(n, core.SystemConfig{Seed: 11, CallTimeout: 25 * time.Millisecond})
	managers := make([]*Manager, n)
	for i := 0; i < n; i++ {
		m := Install(sys.SiteAt(i))
		m.Interval = 10 * time.Millisecond
		m.Misses = 2
		managers[i] = m
		sys.SiteAt(i).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
			return nil
		}))
	}
	return sys, managers
}

func itinerary(ids ...int) []vnet.SiteID {
	out := make([]vnet.SiteID, len(ids))
	for i, id := range ids {
		out[i] = vnet.SiteID(fmt.Sprintf("site-%d", id))
	}
	return out
}

func TestHappyPathNoFailures(t *testing.T) {
	sys, managers := testRig(t, 4)
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "c1", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("computation did not complete")
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	want := []string{"site-1", "site-2", "site-3"}
	got := trail.Strings()
	if len(got) != len(want) {
		t.Fatalf("TRAIL = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TRAIL = %v", got)
		}
	}
	if res.Relaunches != 0 || len(res.Skipped) != 0 {
		t.Fatalf("unexpected recovery: %+v", res)
	}
	// All guards must have self-terminated.
	deadline := time.After(2 * time.Second)
	for _, m := range managers {
		for m.ActiveGuards() != 0 {
			select {
			case <-deadline:
				t.Fatalf("guards leaked: %d", m.ActiveGuards())
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	sys.Wait()
}

func TestUnguardedDiesOnCrash(t *testing.T) {
	sys, managers := testRig(t, 4)
	// Crash the middle site before the agent reaches it... but the mover
	// skips dead sites. To kill an unguarded computation, crash the site
	// while the agent is executing there.
	blocker := make(chan struct{})
	reached := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		close(reached)
		<-blocker
		return nil
	}))
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "u1", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: false,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	sys.Net.Crash("site-2") // the agent vanishes mid-task
	close(blocker)
	res := Wait(ch, 300*time.Millisecond)
	if res.Completed {
		t.Fatal("unguarded computation survived a crash")
	}
}

func TestGuardedSurvivesCrash(t *testing.T) {
	sys, managers := testRig(t, 4)
	blocker := make(chan struct{})
	reached := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		close(reached)
		<-blocker
		return nil
	}))
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "g1", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	sys.Net.Crash("site-2")
	close(blocker)
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("guarded computation did not survive the crash")
	}
	if res.Relaunches == 0 {
		t.Fatalf("no relaunch recorded: %+v", res)
	}
	// site-2's hop was lost with the site; the relaunch skipped it.
	trail, _ := res.Briefcase.Folder("TRAIL")
	found1, found3 := false, false
	for _, s := range trail.Strings() {
		if s == "site-1" {
			found1 = true
		}
		if s == "site-3" {
			found3 = true
		}
	}
	if !found1 || !found3 {
		t.Fatalf("TRAIL = %v", trail.Strings())
	}
}

func TestGuardedSkipsDeadSiteAtMove(t *testing.T) {
	sys, managers := testRig(t, 4)
	sys.Net.Crash("site-2") // dead before the journey starts
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "s1", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("computation did not complete")
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "site-2" {
		t.Fatalf("Skipped = %v", res.Skipped)
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	got := trail.Strings()
	if len(got) != 2 || got[0] != "site-1" || got[1] != "site-3" {
		t.Fatalf("TRAIL = %v", got)
	}
}

func TestCyclicItinerary(t *testing.T) {
	// The paper flags cyclic traversals as the hard case: the same site
	// appears twice, so guard keys and idempotence marks must be
	// hop-scoped, not site-scoped.
	sys, managers := testRig(t, 3)
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "cyc", Task: "trail", Itinerary: itinerary(1, 2, 1, 2), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("cyclic computation did not complete")
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	want := []string{"site-1", "site-2", "site-1", "site-2"}
	got := trail.Strings()
	if len(got) != len(want) {
		t.Fatalf("TRAIL = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TRAIL = %v", got)
		}
	}
	sys.Wait()
}

func TestAllRemainingSitesDead(t *testing.T) {
	sys, managers := testRig(t, 4)
	sys.Net.Crash("site-2")
	sys.Net.Crash("site-3")
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "dead", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("partial result never delivered")
	}
	errs, err2 := res.Briefcase.Folder(folder.ErrorFolder)
	if err2 != nil || errs.Len() == 0 {
		t.Fatal("all-dead condition not flagged")
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	if got := trail.Strings(); len(got) != 1 || got[0] != "site-1" {
		t.Fatalf("TRAIL = %v", got)
	}
}

func TestFirstSiteDeadAtLaunch(t *testing.T) {
	sys, managers := testRig(t, 3)
	sys.Net.Crash("site-1")
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "f1", Task: "trail", Itinerary: itinerary(1, 2), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The origin's guard detects the failed handoff and relaunches at the
	// next live site.
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("computation lost on dead first site")
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	if got := trail.Strings(); len(got) != 1 || got[0] != "site-2" {
		t.Fatalf("TRAIL = %v", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	_, managers := testRig(t, 2)
	cases := []Config{
		{},
		{ID: "x"},
		{ID: "x", Task: "t"},
		{Task: "t", Itinerary: itinerary(1)},
	}
	for _, cfg := range cases {
		if _, err := managers[0].Launch(context.Background(), cfg, nil); err == nil {
			t.Errorf("Launch(%+v) succeeded", cfg)
		}
	}
}

func TestPayloadTravels(t *testing.T) {
	sys, managers := testRig(t, 2)
	payload := folder.NewBriefcase()
	payload.PutString("QUERY", "storm?")
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "p1", Task: "trail", Itinerary: itinerary(1), Guards: true,
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("not completed")
	}
	if q, _ := res.Briefcase.GetString("QUERY"); q != "storm?" {
		t.Fatalf("QUERY = %q", q)
	}
	sys.Wait()
}

func TestManyConcurrentComputations(t *testing.T) {
	sys, managers := testRig(t, 5)
	const n = 20
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := managers[0].Launch(context.Background(), Config{
			ID: fmt.Sprintf("многие-%d", i), Task: "trail",
			Itinerary: itinerary(1, 2, 3, 4), Guards: true,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		res := Wait(ch, 10*time.Second)
		if !res.Completed {
			t.Fatalf("computation %d incomplete", i)
		}
		if tr, _ := res.Briefcase.Folder("TRAIL"); tr.Len() != 4 {
			t.Fatalf("computation %d trail = %v", i, tr.Strings())
		}
	}
	sys.Wait()
}

func TestDuplicateHomeDeliveriesCollapsed(t *testing.T) {
	// Simulate a relaunch race by delivering the same result twice: the
	// second delivery must be dropped silently.
	sys, managers := testRig(t, 2)
	_ = sys
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "dup", Task: "trail", Itinerary: itinerary(1), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("not completed")
	}
	// Manual duplicate delivery.
	dupBC := res.Briefcase.Clone()
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgHome, dupBC); err != nil {
		t.Fatalf("duplicate home delivery errored: %v", err)
	}
}

func TestGuardReleaseOpValidation(t *testing.T) {
	sys, _ := testRig(t, 1)
	bad := folder.NewBriefcase()
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgGuard, bad); err == nil {
		t.Fatal("missing op accepted")
	}
	bad2 := folder.NewBriefcase()
	bad2.PutString(opFolder, "explode")
	bad2.PutString(IDFolder, "x")
	bad2.PutString(hopOfGuard, "0")
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgGuard, bad2); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCrashAfterHandoffBeforeRelease(t *testing.T) {
	// The agent moves 1 -> 2; site-1 (holding the guard for hop 1) crashes
	// right after. Releasing the dead guard must fail silently and the
	// computation still completes.
	sys, managers := testRig(t, 4)
	reached2 := make(chan struct{})
	blocker := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		bc.Ensure("TRAIL").PushString("site-2")
		close(reached2)
		<-blocker
		return nil
	}))
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "cr", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-reached2
	sys.Net.Crash("site-1")
	close(blocker)
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("crash of a guard site killed the computation")
	}
}

func TestPartitionFalsePositiveIsHarmless(t *testing.T) {
	// A partition between the guard's site and the watched site makes the
	// guard believe its agent vanished. The relaunch it triggers is a
	// duplicate — but hop marks keep task execution at-most-once per hop
	// and the home site collapses duplicate deliveries, so the computation
	// still completes exactly once with every hop's work done once.
	sys, managers := testRig(t, 5)
	slowdown := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
		<-slowdown // keep the agent here long enough for the guard to misfire
		return nil
	}))
	// Partition the guard at site-1 away from its watch target site-2.
	go func() {
		time.Sleep(5 * time.Millisecond)
		sys.Net.Partition("site-1", "site-2")
		time.Sleep(60 * time.Millisecond) // > Misses × Interval: guard misfires
		sys.Net.Heal("site-1", "site-2")
		close(slowdown)
	}()
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "part", Task: "trail", Itinerary: itinerary(1, 2, 3, 4), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("computation lost to a partition false positive")
	}
	// Every site's task ran exactly once despite the duplicate agent.
	for i := 1; i <= 4; i++ {
		marks := sys.SiteAt(i).Cabinet().FolderLen("RG:part")
		if marks != 1 {
			t.Fatalf("site-%d has %d hop marks, want 1", i, marks)
		}
	}
	sys.Wait()
}

func TestGuardIncarnationDetectsFastReboot(t *testing.T) {
	// The victim crashes AND restarts between two guard probes: no probe
	// ever fails, but the incarnation changed — the guard must still
	// relaunch the lost agent.
	sys, managers := testRig(t, 4)
	for i := range managers {
		managers[i].Interval = 50 * time.Millisecond // slow detector
	}
	blocker := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		if !mc.Site.Cabinet().ContainsString("REBOOTED", "once") {
			<-blocker
		}
		bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
		return nil
	}))
	go func() {
		time.Sleep(10 * time.Millisecond)
		sys.SiteAt(2).Cabinet().AppendString("REBOOTED", "once")
		sys.Net.Crash("site-2")
		close(blocker)
		time.Sleep(15 * time.Millisecond) // reboot well inside one probe gap
		sys.Net.Restart("site-2")
	}()
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "fastboot", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("fast reboot went undetected; computation lost")
	}
	if res.Relaunches == 0 {
		t.Fatalf("no relaunch recorded: %+v", res)
	}
	sys.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGuardCheckpointPersistedAndRecovered pins the durable rear-guard
// story: an armed guard's checkpoint lives in the site cabinet (so a
// WAL-backed cabinet carries it across a crash), Recover re-arms it from
// there, and the re-armed guard still does its job — relaunching the
// computation when the watched site dies.
func TestGuardCheckpointPersistedAndRecovered(t *testing.T) {
	sys, managers := testRig(t, 3)
	blocker := make(chan struct{})
	defer close(blocker)
	reached := make(chan struct{})
	sys.SiteAt(2).Register("trail", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		close(reached)
		<-blocker
		return nil
	}))

	// site-1 -> site-2 (stalls) -> site-1: while the agent is stuck at
	// site-2, site-1 holds the armed guard watching it.
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "persist-1", Task: "trail", Itinerary: itinerary(1, 2, 1), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	m1 := managers[1]
	waitFor(t, "guard armed at site-1", func() bool { return m1.ActiveGuards() == 1 })
	waitFor(t, "origin guard released", func() bool { return managers[0].ActiveGuards() == 0 })

	// The checkpoint must be in the cabinet — that is what the WAL journals.
	cab := sys.SiteAt(1).Cabinet()
	armed := 0
	for _, name := range cab.Names() {
		if strings.HasPrefix(name, ArmFolderPrefix) {
			armed++
		}
	}
	if armed != 1 {
		t.Fatalf("site-1 cabinet holds %d guard checkpoints, want 1", armed)
	}

	// Simulate site-1 crashing and rebooting with a recovered cabinet: the
	// in-memory guard state is wiped, the cabinet survives.
	m1.mu.Lock()
	for _, g := range m1.guards {
		g.release()
	}
	m1.guards = make(map[string]*guard)
	m1.mu.Unlock()
	if m1.ActiveGuards() != 0 {
		t.Fatal("in-memory guards not cleared")
	}

	if n := m1.Recover(); n != 1 {
		t.Fatalf("Recover re-armed %d guards, want 1", n)
	}
	if m1.ActiveGuards() != 1 {
		t.Fatalf("ActiveGuards = %d after recovery", m1.ActiveGuards())
	}

	// The recovered guard must still protect the computation: kill the
	// watched site and the journey finishes via relaunch (site-2 skipped,
	// the final site-1 hop executed).
	sys.Net.Crash("site-2")
	res := Wait(ch, 5*time.Second)
	if !res.Completed {
		t.Fatal("recovered guard never relaunched the computation")
	}
	if res.Relaunches == 0 {
		t.Fatalf("no relaunch recorded: %+v", res)
	}
	// Checkpoint removed once the recovered computation moved on.
	waitFor(t, "checkpoint cleared", func() bool {
		for _, name := range sys.SiteAt(1).Cabinet().Names() {
			if strings.HasPrefix(name, ArmFolderPrefix) {
				return false
			}
		}
		return true
	})
}

// TestCheckpointFormats pins the checkpoint wire format: persistGuard
// writes the five-element v2 folder (tail = park descriptor), and Recover
// accepts both v2 and the legacy four-element folder a pre-scheduler
// release persisted.
func TestCheckpointFormats(t *testing.T) {
	sys, managers := testRig(t, 2)
	m := managers[1]
	cab := sys.SiteAt(1).Cabinet()

	// A parked agent's briefcase checkpoints with its descriptor in tow.
	parked := folder.NewBriefcase()
	parked.PutString(core.ParkNameFolder, "sensor-7")
	parked.PutString(core.ParkWatchFolder, "MBOX:sensor-7")
	m.mu.Lock()
	m.persistGuard(&guard{id: "fmt-1", hop: 2, watch: "site-0", bc: parked})
	m.mu.Unlock()
	f := cab.Snapshot(ArmFolderPrefix + "fmt-1/2")
	if f.Len() != 5 {
		t.Fatalf("checkpoint has %d elements, want 5", f.Len())
	}
	if desc, _ := f.StringAt(4); desc != "name=sensor-7;watch=MBOX:sensor-7" {
		t.Fatalf("park descriptor = %q", desc)
	}
	if desc := ParkDescriptor(folder.NewBriefcase()); desc != "" {
		t.Fatalf("never-parked briefcase has descriptor %q", desc)
	}
	cab.Delete(ArmFolderPrefix + "fmt-1/2")

	// A legacy four-element checkpoint (no descriptor) still recovers.
	legacy := folder.New()
	legacy.PushString("legacy-1")
	legacy.PushString("1")
	legacy.PushString("site-0")
	legacy.PushOwned(folder.EncodeBriefcase(folder.NewBriefcase()))
	cab.Put(ArmFolderPrefix+"legacy-1/1", legacy)
	if n := m.Recover(); n != 1 {
		t.Fatalf("Recover re-armed %d guards from a legacy checkpoint, want 1", n)
	}
	if m.ActiveGuards() != 1 {
		t.Fatalf("ActiveGuards = %d", m.ActiveGuards())
	}
	m.mu.Lock()
	for _, g := range m.guards {
		g.release()
	}
	m.mu.Unlock()
}

// TestReleasedGuardRemovesCheckpoint: a clean journey leaves no checkpoint
// folders behind on any site.
func TestReleasedGuardRemovesCheckpoint(t *testing.T) {
	sys, managers := testRig(t, 4)
	ch, err := managers[0].Launch(context.Background(), Config{
		ID: "clean-1", Task: "trail", Itinerary: itinerary(1, 2, 3), Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := Wait(ch, 5*time.Second); !res.Completed {
		t.Fatal("computation did not complete")
	}
	for i := 0; i < 4; i++ {
		i := i
		waitFor(t, "checkpoints cleared", func() bool {
			for _, name := range sys.SiteAt(i).Cabinet().Names() {
				if strings.HasPrefix(name, ArmFolderPrefix) {
					return false
				}
			}
			return true
		})
	}
	sys.Wait()
}
