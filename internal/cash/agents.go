package cash

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/folder"
)

// Agent names and folder names of the cash subsystem.
const (
	// AgValidator is the trusted validation agent: it retires bills and
	// reissues equivalents, defeating double spending.
	AgValidator = "validator"
	// AgNotary stores signed statements documenting contract actions.
	AgNotary = "notary"
	// AgAuditor renders verdicts on contract disputes from notarized
	// statements and the mint's redemption log.
	AgAuditor = "auditor"

	// CashFolder carries ECU records between agents.
	CashFolder = "CASH"
	// SplitFolder carries requested denominations for validation.
	SplitFolder = "SPLIT"
	// StatementFolder carries one signed statement to the notary.
	StatementFolder = "STATEMENT"
	// ContractFolder carries a contract id to the auditor.
	ContractFolder = "CONTRACT"
	// ClaimFolder carries the aggrieved party's claim to the auditor.
	ClaimFolder = "CLAIM"
	// VerdictFolder carries the auditor's verdict back.
	VerdictFolder = "VERDICT"
)

// Statement phases documenting a purchase.
const (
	PhasePay       = "PAY"       // buyer: "I sent payment with commitment H"
	PhasePaid      = "PAID"      // seller: "I validated payment with commitment H"
	PhaseDelivered = "DELIVERED" // seller: "I delivered service with hash S"
	PhaseReceived  = "RECEIVED"  // buyer: "I received service with hash S"
)

// Verdicts returned by the auditor.
const (
	VerdictNoViolation  = "no-violation"
	VerdictBuyerCheated = "buyer-cheated"
	VerdictSellerCheats = "seller-cheated"
)

// Claims an aggrieved party may raise.
const (
	ClaimNoPayment = "no-payment" // raised by the seller
	ClaimNoService = "no-service" // raised by the buyer
)

// KeyRing maps party names to HMAC signing keys. The notary and auditor
// share it — they play the role of the court that can verify documents.
type KeyRing struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewKeyRing returns an empty key ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[string][]byte)}
}

// Enroll creates and stores a fresh signing key for a party, returning it
// so the party can sign statements.
func (k *KeyRing) Enroll(party string) []byte {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("cash: crypto/rand unavailable: " + err.Error())
	}
	k.mu.Lock()
	k.keys[party] = key
	k.mu.Unlock()
	return key
}

func (k *KeyRing) key(party string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.keys[party]
	return key, ok
}

// Statement is one signed, notarized assertion about a contract action.
type Statement struct {
	Contract string
	Party    string
	Phase    string
	Data     string // commitment hash or service hash
	Sig      string
}

func statementBase(contract, party, phase, data string) string {
	return strings.Join([]string{contract, party, phase, data}, "|")
}

// Sign produces a signed statement using the party's key.
func Sign(key []byte, contract, party, phase, data string) Statement {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(statementBase(contract, party, phase, data)))
	return Statement{
		Contract: contract, Party: party, Phase: phase, Data: data,
		Sig: hex.EncodeToString(mac.Sum(nil)),
	}
}

// Verify checks a statement's signature against the ring.
func (k *KeyRing) Verify(st Statement) error {
	key, ok := k.key(st.Party)
	if !ok {
		return fmt.Errorf("cash: unknown party %q", st.Party)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(statementBase(st.Contract, st.Party, st.Phase, st.Data)))
	want := mac.Sum(nil)
	got, err := hex.DecodeString(st.Sig)
	if err != nil || !hmac.Equal(want, got) {
		return fmt.Errorf("cash: bad signature on statement by %q", st.Party)
	}
	return nil
}

// Encode renders the statement as a folder element.
func (st Statement) Encode() string {
	return statementBase(st.Contract, st.Party, st.Phase, st.Data) + "|" + st.Sig
}

// DecodeStatement parses a folder element into a statement.
func DecodeStatement(s string) (Statement, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 5 {
		return Statement{}, fmt.Errorf("cash: malformed statement %q", s)
	}
	return Statement{
		Contract: parts[0], Party: parts[1], Phase: parts[2],
		Data: parts[3], Sig: parts[4],
	}, nil
}

// notaryFolder names the cabinet folder storing a contract's statements.
func notaryFolder(contract string) string { return "NOTARY:" + contract }

// ValidatorAgent wraps the mint as a TACOMA agent. Protocol: the briefcase
// CASH folder holds ECU strings; the optional SPLIT folder holds requested
// denominations (one per element). On success CASH is replaced by fresh
// equivalent bills. On failure the meet errors and CASH is cleared: a
// rejected bill is confiscated evidence, never returned to circulation.
type ValidatorAgent struct{ Mint *Mint }

// Meet implements core.Agent.
func (v *ValidatorAgent) Meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	cf, err := bc.Folder(CashFolder)
	if err != nil {
		return fmt.Errorf("validator: %w", err)
	}
	ecus, err := ParseECUs(cf.Strings())
	if err != nil {
		return fmt.Errorf("validator: %w", err)
	}
	var split []int64
	if sf, err := bc.Folder(SplitFolder); err == nil {
		for _, s := range sf.Strings() {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("validator: bad split amount %q", s)
			}
			split = append(split, n)
		}
	}
	fresh, err := v.Mint.Validate(ecus, split)
	if err != nil {
		bc.Put(CashFolder, folder.New())
		return fmt.Errorf("validator: %w", err)
	}
	bc.Put(CashFolder, folder.OfStrings(FormatECUs(fresh)...))
	bc.Delete(SplitFolder)
	return nil
}

// NotaryAgent stores signed statements in its site's file cabinet, one
// folder per contract. It refuses statements whose signature does not
// verify — documentation must be unforgeable to support audits.
type NotaryAgent struct{ Keys *KeyRing }

// Meet implements core.Agent.
func (n *NotaryAgent) Meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	sf, err := bc.Folder(StatementFolder)
	if err != nil {
		return fmt.Errorf("notary: %w", err)
	}
	raw, err := sf.StringAt(0)
	if err != nil {
		return fmt.Errorf("notary: %w", err)
	}
	st, err := DecodeStatement(raw)
	if err != nil {
		return fmt.Errorf("notary: %w", err)
	}
	if err := n.Keys.Verify(st); err != nil {
		return fmt.Errorf("notary: %w", err)
	}
	mc.Site.Cabinet().AppendString(notaryFolder(st.Contract), st.Encode())
	bc.PutString(folder.ResultFolder, "notarized")
	return nil
}

// AuditorAgent renders a verdict on a disputed contract. It must run at
// the same site as the notary (it reads the notary's cabinet folders) and
// holds a reference to the mint's redemption log. Briefcase protocol:
// CONTRACT holds the contract id, CLAIM holds the grievance
// (no-payment raised by the seller, no-service raised by the buyer);
// the verdict is returned in VERDICT.
type AuditorAgent struct {
	Mint *Mint
	Keys *KeyRing
}

// Meet implements core.Agent.
func (a *AuditorAgent) Meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	contract, err := bc.GetString(ContractFolder)
	if err != nil {
		return fmt.Errorf("auditor: %w", err)
	}
	claim, err := bc.GetString(ClaimFolder)
	if err != nil {
		return fmt.Errorf("auditor: %w", err)
	}
	records := mc.Site.Cabinet().Snapshot(notaryFolder(contract))
	byPhase := make(map[string]Statement)
	for _, raw := range records.Strings() {
		st, err := DecodeStatement(raw)
		if err != nil {
			continue // tolerate corrupt records; they simply don't count
		}
		if a.Keys.Verify(st) != nil {
			continue
		}
		byPhase[st.Phase+"/"+st.Party] = st
	}
	verdict, reason := a.judge(claim, byPhase)
	bc.Put(VerdictFolder, folder.OfStrings(verdict, reason))
	return nil
}

// judge applies the audit rules. find locates the unique statement for a
// phase regardless of which party filed it.
func (a *AuditorAgent) judge(claim string, byPhase map[string]Statement) (verdict, reason string) {
	find := func(phase string) (Statement, bool) {
		for k, st := range byPhase {
			if strings.HasPrefix(k, phase+"/") {
				return st, true
			}
		}
		return Statement{}, false
	}
	pay, hasPay := find(PhasePay)
	_, hasPaid := find(PhasePaid)
	delivered, hasDelivered := find(PhaseDelivered)
	received, hasReceived := find(PhaseReceived)

	switch claim {
	case ClaimNoPayment:
		// Seller says: I was never paid.
		if !hasPay {
			return VerdictBuyerCheated, "buyer filed no payment statement"
		}
		if a.Mint.Redeemed(pay.Data) {
			// The exact bills the buyer committed to were validated; only
			// a holder of those bills could have done that.
			return VerdictSellerCheats, "payment commitment was redeemed at the mint"
		}
		if hasPaid {
			return VerdictSellerCheats, "seller acknowledged payment then denied it"
		}
		return VerdictBuyerCheated, "payment commitment never redeemed"
	case ClaimNoService:
		// Buyer says: I paid and got nothing (or garbage).
		if !hasPay || !a.Mint.Redeemed(pay.Data) {
			return VerdictBuyerCheated, "no redeemed payment backs the claim"
		}
		if !hasDelivered {
			return VerdictSellerCheats, "payment redeemed but no delivery statement"
		}
		if hasReceived && received.Data == delivered.Data {
			return VerdictBuyerCheated, "buyer acknowledged matching delivery"
		}
		if hasReceived && received.Data != delivered.Data {
			return VerdictSellerCheats, "delivered service does not match what buyer received"
		}
		// Delivery is documented and the buyer offers no counter-evidence:
		// the claim is frivolous and the claimant is the violator.
		return VerdictBuyerCheated, "delivery documented; claim unsubstantiated"
	default:
		return VerdictNoViolation, "unknown claim " + claim
	}
}

// errNotRegistered guards Bank construction.
var errNotRegistered = errors.New("cash: bank site missing")

// Bank bundles the cash infrastructure installed at one trusted site: the
// mint with its validator, the notary, and the auditor.
type Bank struct {
	Mint *Mint
	Keys *KeyRing
	Site *core.Site
}

// NewBank creates a mint/keyring pair and registers the validator, notary,
// and auditor agents at the given site.
func NewBank(site *core.Site) (*Bank, error) {
	if site == nil {
		return nil, errNotRegistered
	}
	b := &Bank{Mint: NewMint(), Keys: NewKeyRing(), Site: site}
	site.Register(AgValidator, &ValidatorAgent{Mint: b.Mint})
	site.Register(AgNotary, &NotaryAgent{Keys: b.Keys})
	site.Register(AgAuditor, &AuditorAgent{Mint: b.Mint, Keys: b.Keys})
	return b, nil
}
