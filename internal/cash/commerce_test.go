package cash

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
)

func testBank(t *testing.T) *Bank {
	t.Helper()
	sys := core.NewSystem(1, core.SystemConfig{Seed: 3, CallTimeout: 50 * time.Millisecond})
	b, err := NewBank(sys.SiteAt(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Wait)
	return b
}

func fundedParty(t *testing.T, b *Bank, name string, bills ...int64) *Party {
	t.Helper()
	p := NewParty(b, name)
	ecus, err := b.Mint.IssueMany(bills...)
	if err != nil {
		t.Fatal(err)
	}
	p.Wallet.Add(ecus...)
	return p
}

func TestValidatorAgentRoundTrip(t *testing.T) {
	b := testBank(t)
	e, _ := b.Mint.Issue(100)
	bc := folder.NewBriefcase()
	bc.Put(CashFolder, folder.OfStrings(e.String()))
	if err := b.Site.MeetClient(context.Background(), AgValidator, bc); err != nil {
		t.Fatal(err)
	}
	cf, _ := bc.Folder(CashFolder)
	fresh, err := ParseECUs(cf.Strings())
	if err != nil {
		t.Fatal(err)
	}
	if Total(fresh) != 100 || fresh[0].Serial == e.Serial {
		t.Fatalf("fresh = %v", fresh)
	}
}

func TestValidatorAgentRejectsDoubleSpend(t *testing.T) {
	b := testBank(t)
	e, _ := b.Mint.Issue(100)
	spend := func() error {
		bc := folder.NewBriefcase()
		bc.Put(CashFolder, folder.OfStrings(e.String()))
		return b.Site.MeetClient(context.Background(), AgValidator, bc)
	}
	if err := spend(); err != nil {
		t.Fatal(err)
	}
	err := spend()
	if err == nil || !strings.Contains(err.Error(), "already spent") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidatorAgentConfiscatesOnFailure(t *testing.T) {
	b := testBank(t)
	forged := ECU{Amount: 7, Serial: newSerial()}
	bc := folder.NewBriefcase()
	bc.Put(CashFolder, folder.OfStrings(forged.String()))
	if err := b.Site.MeetClient(context.Background(), AgValidator, bc); err == nil {
		t.Fatal("forged bill validated")
	}
	cf, _ := bc.Folder(CashFolder)
	if cf.Len() != 0 {
		t.Fatal("rejected bills returned to presenter")
	}
}

func TestValidatorAgentSplit(t *testing.T) {
	b := testBank(t)
	e, _ := b.Mint.Issue(100)
	bc := folder.NewBriefcase()
	bc.Put(CashFolder, folder.OfStrings(e.String()))
	bc.Put(SplitFolder, folder.OfStrings("75", "25"))
	if err := b.Site.MeetClient(context.Background(), AgValidator, bc); err != nil {
		t.Fatal(err)
	}
	cf, _ := bc.Folder(CashFolder)
	fresh, _ := ParseECUs(cf.Strings())
	if len(fresh) != 2 || fresh[0].Amount != 75 || fresh[1].Amount != 25 {
		t.Fatalf("fresh = %v", fresh)
	}
	if bc.Has(SplitFolder) {
		t.Fatal("SPLIT folder left behind")
	}
}

func TestNotaryStoresAndVerifies(t *testing.T) {
	b := testBank(t)
	alice := NewParty(b, "alice")
	st := Sign(alice.Key, "c1", "alice", PhasePay, "aabb")
	bc := folder.NewBriefcase()
	bc.Put(StatementFolder, folder.OfStrings(st.Encode()))
	if err := b.Site.MeetClient(context.Background(), AgNotary, bc); err != nil {
		t.Fatal(err)
	}
	if b.Site.Cabinet().FolderLen("NOTARY:c1") != 1 {
		t.Fatal("statement not stored")
	}
	// Forged statement rejected.
	forged := st
	forged.Data = "tampered"
	bc2 := folder.NewBriefcase()
	bc2.Put(StatementFolder, folder.OfStrings(forged.Encode()))
	if err := b.Site.MeetClient(context.Background(), AgNotary, bc2); err == nil {
		t.Fatal("notary accepted forged statement")
	}
}

func TestPurchaseHonest(t *testing.T) {
	b := testBank(t)
	buyer := fundedParty(t, b, "buyer", 100, 50)
	seller := NewParty(b, "seller")
	out, err := Purchase(context.Background(), b, "c-honest", "weather data", 120, buyer, seller, HonestRun)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Paid || !out.Delivered || out.Audited {
		t.Fatalf("outcome = %+v", out)
	}
	if seller.Wallet.Balance() != 120 {
		t.Fatalf("seller balance = %d", seller.Wallet.Balance())
	}
	if buyer.Wallet.Balance() != 30 {
		t.Fatalf("buyer balance = %d (change lost?)", buyer.Wallet.Balance())
	}
}

func TestPurchaseCheatScenarios(t *testing.T) {
	cases := []struct {
		name     string
		behavior Behavior
	}{
		{"buyer skips payment", BuyerSkipsPayment},
		{"seller denies payment", SellerDeniesPayment},
		{"seller skips delivery", SellerSkipsDelivery},
		{"buyer denies receipt", BuyerDeniesReceipt},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := testBank(t)
			buyer := fundedParty(t, b, "buyer", 200)
			seller := NewParty(b, "seller")
			contract := fmt.Sprintf("c-%d", i)
			out, err := Purchase(context.Background(), b, contract, "svc", 100, buyer, seller, tc.behavior)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Audited {
				t.Fatal("dispute did not trigger an audit")
			}
			want := ExpectedVerdict(tc.behavior)
			if out.Verdict != want {
				t.Fatalf("verdict = %q (%s), want %q", out.Verdict, out.Reason, want)
			}
		})
	}
}

func TestAuditHonestContractNoViolation(t *testing.T) {
	b := testBank(t)
	buyer := fundedParty(t, b, "buyer", 100)
	seller := NewParty(b, "seller")
	if _, err := Purchase(context.Background(), b, "c-ok", "svc", 100, buyer, seller, HonestRun); err != nil {
		t.Fatal(err)
	}
	// A groundless complaint after an honest run must not convict the
	// seller.
	verdict, _, err := Audit(context.Background(), b, "c-ok", ClaimNoService)
	if err != nil {
		t.Fatal(err)
	}
	if verdict == VerdictSellerCheats {
		t.Fatalf("honest seller convicted: %q", verdict)
	}
}

func TestPurchaseInsufficientFunds(t *testing.T) {
	b := testBank(t)
	buyer := fundedParty(t, b, "buyer", 10)
	seller := NewParty(b, "seller")
	_, err := Purchase(context.Background(), b, "c-poor", "svc", 100, buyer, seller, HonestRun)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
}

func TestUntraceability(t *testing.T) {
	// The mint's state must contain no party identities after a full
	// purchase: amounts, serials, retirement marks, and anonymous
	// commitments only. We verify behaviourally: validating bills reveals
	// a redemption only to someone already holding the exact bill set, and
	// the mint never stores party names (no API exposes any).
	b := testBank(t)
	buyer := fundedParty(t, b, "buyer", 100)
	seller := NewParty(b, "seller")
	if _, err := Purchase(context.Background(), b, "c-priv", "svc", 100, buyer, seller, HonestRun); err != nil {
		t.Fatal(err)
	}
	// Commitments are one-way: knowing a redeemed commitment exists does
	// not identify the parties. The only cross-reference lives in the
	// notary's signed statements, which parties file voluntarily.
	if got := b.Mint.Frauds(); got != 0 {
		t.Fatalf("honest purchase recorded %d frauds", got)
	}
}

func TestCycleBillingChargesAndAborts(t *testing.T) {
	cb := NewCycleBilling(10)
	sys := core.NewSystem(1, core.SystemConfig{
		Site: core.SiteConfig{StepHookFactory: cb.Factory},
	})
	mint := NewMint()
	w := NewWallet()
	bills, _ := mint.IssueMany(1, 1, 1, 1, 1)
	w.Add(bills...)
	cb.Fund("", w) // external client injects the agent; From is ""

	// 5 units at 10 steps/unit: the agent dies between 50 and 60 steps.
	_, err := core.RunScript(context.Background(), sys.SiteAt(0), `
		set i 0
		while {1} { incr i }
	`, nil)
	if err == nil || !strings.Contains(err.Error(), "out of funds") {
		t.Fatalf("err = %v", err)
	}
	if w.Balance() != 0 {
		t.Fatalf("wallet balance = %d, want 0", w.Balance())
	}
	if cb.Earned() != 5 {
		t.Fatalf("treasury earned %d, want 5", cb.Earned())
	}
}

func TestCycleBillingUnmeteredAgentsRunFree(t *testing.T) {
	cb := NewCycleBilling(10)
	sys := core.NewSystem(1, core.SystemConfig{
		Site: core.SiteConfig{StepHookFactory: cb.Factory, MaxSteps: 500},
	})
	_, err := core.RunScript(context.Background(), sys.SiteAt(0), `
		set i 0
		while {$i < 40} { incr i }
		bc_push RESULT ok
	`, nil)
	if err != nil {
		t.Fatalf("unmetered agent aborted: %v", err)
	}
}

func TestCycleBillingSufficientFundsCompletes(t *testing.T) {
	cb := NewCycleBilling(10)
	sys := core.NewSystem(1, core.SystemConfig{
		Site: core.SiteConfig{StepHookFactory: cb.Factory},
	})
	mint := NewMint()
	w := NewWallet()
	bills, _ := mint.IssueMany(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	w.Add(bills...)
	cb.Fund("", w)
	bc, err := core.RunScript(context.Background(), sys.SiteAt(0), `
		set i 0
		while {$i < 20} { incr i }
		bc_push RESULT done
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := bc.GetString(folder.ResultFolder); res != "done" {
		t.Fatalf("RESULT = %q", res)
	}
	if w.Balance() >= 10 {
		t.Fatalf("no cycles charged: balance=%d", w.Balance())
	}
}
