package cash

import (
	"fmt"
	"sync"
)

// CycleBilling implements the paper's runaway-agent containment: "charging
// for services would limit possible damage by a run-away agent". It
// produces a core.SiteConfig.StepHookFactory that debits one currency unit
// from the visiting agent's wallet every stepsPerUnit TacL steps and
// credits the site's treasury. An agent whose wallet runs dry is aborted.
//
// Accounts maps an agent name to its wallet; agents without an account run
// free (system agents, the site's own services).
type CycleBilling struct {
	mu           sync.Mutex
	treasury     *Wallet
	accounts     map[string]*Wallet
	stepsPerUnit int
	earned       int64
}

// NewCycleBilling creates a billing policy charging 1 unit per
// stepsPerUnit interpreter steps.
func NewCycleBilling(stepsPerUnit int) *CycleBilling {
	if stepsPerUnit <= 0 {
		stepsPerUnit = 1000
	}
	return &CycleBilling{
		treasury:     NewWallet(),
		accounts:     make(map[string]*Wallet),
		stepsPerUnit: stepsPerUnit,
	}
}

// Fund attaches a wallet to an agent name.
func (cb *CycleBilling) Fund(agent string, w *Wallet) {
	cb.mu.Lock()
	cb.accounts[agent] = w
	cb.mu.Unlock()
}

// Treasury returns the site's earnings wallet.
func (cb *CycleBilling) Treasury() *Wallet { return cb.treasury }

// Earned reports total cycles revenue collected.
func (cb *CycleBilling) Earned() int64 {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.earned
}

// Factory is the core.SiteConfig.StepHookFactory implementation. The agent
// is identified by the initiating party recorded in the meet context: the
// kernel passes the visiting agent's name and its initiator; billing keys
// accounts by initiator first (the roaming agent's principal), falling
// back to the agent name.
func (cb *CycleBilling) Factory(agent, from string) func() error {
	cb.mu.Lock()
	w := cb.accounts[from]
	if w == nil {
		w = cb.accounts[agent]
	}
	cb.mu.Unlock()
	if w == nil {
		return nil // unmetered
	}
	steps := 0
	return func() error {
		steps++
		if steps%cb.stepsPerUnit != 0 {
			return nil
		}
		bills, err := w.Withdraw(1)
		if err != nil {
			return fmt.Errorf("cash: agent out of funds after %d steps: %w", steps, err)
		}
		// Overshoot is returned; exactly one unit is kept. With unit bills
		// this is a plain transfer; larger bills lose the remainder to the
		// treasury, which is the incentive to carry small denominations.
		cb.treasury.Add(bills...)
		cb.mu.Lock()
		cb.earned += Total(bills)
		cb.mu.Unlock()
		return nil
	}
}
