package cash

import (
	"fmt"

	"repro/internal/folder"
)

// Folder-level ECU operations. A roaming agent carries its funds as ECU
// strings in the briefcase CASH folder; the guard subsystem debits that
// folder directly when metering an activation, so the money an agent can
// spend is exactly the money it brought along.

// FolderBalance sums the ECUs held in a CASH-style folder. Malformed
// elements count as zero — a corrupt bill is worthless, not fatal.
func FolderBalance(f *folder.Folder) int64 {
	if f == nil {
		return 0
	}
	var total int64
	for _, s := range f.Strings() {
		if e, err := ParseECU(s); err == nil {
			total += e.Amount
		}
	}
	return total
}

// WithdrawFromFolder removes ECUs totalling at least amount from the folder
// and returns them, using the same greedy denomination policy as
// Wallet.Withdraw (pickGreedy). On ErrInsufficient the folder is unchanged.
func WithdrawFromFolder(f *folder.Folder, amount int64) ([]ECU, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: have 0, need %d", ErrInsufficient, amount)
	}
	ecus, err := ParseECUs(f.Strings())
	if err != nil {
		return nil, err
	}
	taken, err := pickGreedy(ecus, amount)
	if err != nil {
		return nil, err
	}
	picked := make(map[string]bool, len(taken))
	for _, e := range taken {
		picked[e.Serial] = true
	}
	var rest []string
	for _, e := range ecus {
		if !picked[e.Serial] {
			rest = append(rest, e.String())
		}
	}
	replaceFolder(f, rest)
	return taken, nil
}

// DrainFolder removes and returns every ECU in the folder — the guard's
// terminal confiscation when an agent's budget is exhausted mid-activation.
func DrainFolder(f *folder.Folder) []ECU {
	if f == nil {
		return nil
	}
	ecus, _ := ParseECUs(validElements(f))
	f.Clear()
	return ecus
}

// validElements filters the folder down to parseable ECU strings.
func validElements(f *folder.Folder) []string {
	var out []string
	for _, s := range f.Strings() {
		if _, err := ParseECU(s); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// replaceFolder rewrites f's contents in place (the briefcase holds the
// folder by reference, so the caller's view updates too).
func replaceFolder(f *folder.Folder, elems []string) {
	f.Clear()
	for _, s := range elems {
		f.PushString(s)
	}
}
