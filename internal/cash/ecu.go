// Package cash implements TACOMA's electronic cash (section 3 of the
// paper): electronic currency units (ECUs), the trusted validation agent
// that defeats double spending by retiring and reissuing bills, wallets for
// agents, cycle billing to contain runaway agents, and the audit protocol
// that replaces transactions for fair exchange of funds and services.
//
// Following Chaum, each ECU is a record containing an amount and a large
// random number (the serial). Only serials minted by the mint are valid.
// Because "copy" is cheap in a computer system, a recipient must consult
// the validation agent before rendering service: the validator checks the
// serial, retires it, and returns an equivalent ECU with a fresh serial.
// A copied or already-spent ECU fails validation. The validator never
// learns the source or destination of a transfer, preserving
// untraceability.
package cash

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Cash errors.
var (
	// ErrInvalid is returned for ECUs whose serial was never minted.
	ErrInvalid = errors.New("cash: invalid ECU")
	// ErrSpent is returned for ECUs whose serial was already retired —
	// the double-spend case.
	ErrSpent = errors.New("cash: ECU already spent")
	// ErrInsufficient is returned when a wallet cannot cover an amount.
	ErrInsufficient = errors.New("cash: insufficient funds")
	// ErrBadECU is returned for malformed ECU encodings.
	ErrBadECU = errors.New("cash: malformed ECU")
	// ErrBadSplit is returned when requested denominations do not sum to
	// the value presented.
	ErrBadSplit = errors.New("cash: split amounts do not match value presented")
)

// serialBytes is the size of the random serial. 16 bytes keeps the chance
// of guessing a valid serial negligible.
const serialBytes = 16

// ECU is one electronic currency unit: an amount and an unforgeable,
// untraceable serial. The record carries no owner identity by design.
type ECU struct {
	// Amount is the value in the system's smallest unit.
	Amount int64
	// Serial is the large random number identifying this bill.
	Serial string
}

// String encodes the ECU in the folder-element format "amount|serial".
func (e ECU) String() string {
	return strconv.FormatInt(e.Amount, 10) + "|" + e.Serial
}

// ParseECU decodes an ECU from its string form.
func ParseECU(s string) (ECU, error) {
	amt, serial, ok := strings.Cut(s, "|")
	if !ok {
		return ECU{}, fmt.Errorf("%w: %q", ErrBadECU, s)
	}
	n, err := strconv.ParseInt(amt, 10, 64)
	if err != nil || n < 0 {
		return ECU{}, fmt.Errorf("%w: bad amount in %q", ErrBadECU, s)
	}
	if len(serial) != 2*serialBytes || !isHex(serial) {
		return ECU{}, fmt.Errorf("%w: bad serial in %q", ErrBadECU, s)
	}
	return ECU{Amount: n, Serial: serial}, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// ParseECUs decodes a list of ECU strings.
func ParseECUs(ss []string) ([]ECU, error) {
	out := make([]ECU, 0, len(ss))
	for _, s := range ss {
		e, err := ParseECU(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// FormatECUs encodes ECUs to their string forms.
func FormatECUs(ecus []ECU) []string {
	out := make([]string, len(ecus))
	for i, e := range ecus {
		out[i] = e.String()
	}
	return out
}

// Total sums the amounts of a set of ECUs.
func Total(ecus []ECU) int64 {
	var t int64
	for _, e := range ecus {
		t += e.Amount
	}
	return t
}

func newSerial() string {
	var b [serialBytes]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cash: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Wallet stores the ECU records an agent owns. Wallets are safe for
// concurrent use.
type Wallet struct {
	mu   sync.Mutex
	ecus map[string]ECU // serial -> ECU
}

// NewWallet returns an empty wallet.
func NewWallet() *Wallet {
	return &Wallet{ecus: make(map[string]ECU)}
}

// Add deposits ECUs into the wallet. Duplicated serials collapse — a
// wallet cannot hold two copies of the same bill.
func (w *Wallet) Add(ecus ...ECU) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range ecus {
		w.ecus[e.Serial] = e
	}
}

// Balance returns the total value held.
func (w *Wallet) Balance() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var t int64
	for _, e := range w.ecus {
		t += e.Amount
	}
	return t
}

// Count returns the number of bills held.
func (w *Wallet) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.ecus)
}

// pickGreedy selects bills covering amount from all: deterministic greedy,
// largest bills first, serial to break ties, overshoot included (bills are
// indivisible — the validator performs splits). It is the one denomination
// policy shared by wallets and briefcase CASH folders; on ErrInsufficient
// nothing is selected.
func pickGreedy(all []ECU, amount int64) ([]ECU, error) {
	if amount <= 0 {
		return nil, fmt.Errorf("cash: withdraw of non-positive amount %d", amount)
	}
	sorted := append([]ECU(nil), all...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Amount != sorted[j].Amount {
			return sorted[i].Amount > sorted[j].Amount
		}
		return sorted[i].Serial < sorted[j].Serial
	})
	var picked []ECU
	var got int64
	for _, e := range sorted {
		if got >= amount {
			break
		}
		picked = append(picked, e)
		got += e.Amount
	}
	if got < amount {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, got, amount)
	}
	return picked, nil
}

// Withdraw removes ECUs totalling at least amount and returns them. The
// overshoot, if any, is included — the caller exchanges the bills with the
// validation agent for exact denominations (a "split"). Withdraw is
// all-or-nothing: on ErrInsufficient the wallet is unchanged.
func (w *Wallet) Withdraw(amount int64) ([]ECU, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	all := make([]ECU, 0, len(w.ecus))
	for _, e := range w.ecus {
		all = append(all, e)
	}
	picked, err := pickGreedy(all, amount)
	if err != nil {
		return nil, err
	}
	for _, e := range picked {
		delete(w.ecus, e.Serial)
	}
	return picked, nil
}

// Snapshot returns a copy of all held ECUs.
func (w *Wallet) Snapshot() []ECU {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ECU, 0, len(w.ecus))
	for _, e := range w.ecus {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}
