package cash

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestECUStringRoundTrip(t *testing.T) {
	m := NewMint()
	e, err := m.Issue(250)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseECU(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("round trip: %v vs %v", back, e)
	}
}

func TestParseECUErrors(t *testing.T) {
	bad := []string{
		"",
		"100",
		"abc|0011223344556677889900112233445566",
		"-5|00112233445566778899001122334455",
		"100|tooshort",
		"100|ZZ112233445566778899001122334455",
	}
	for _, s := range bad {
		if _, err := ParseECU(s); !errors.Is(err, ErrBadECU) {
			t.Errorf("ParseECU(%q) err = %v, want ErrBadECU", s, err)
		}
	}
}

func TestMintIssue(t *testing.T) {
	m := NewMint()
	e, err := m.Issue(100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Amount != 100 || len(e.Serial) != 2*serialBytes {
		t.Fatalf("bad ECU %v", e)
	}
	if m.Outstanding() != 100 || m.Issued() != 100 {
		t.Fatalf("outstanding=%d issued=%d", m.Outstanding(), m.Issued())
	}
	if _, err := m.Issue(0); err == nil {
		t.Fatal("issued zero-value bill")
	}
	if _, err := m.Issue(-5); err == nil {
		t.Fatal("issued negative bill")
	}
}

func TestSerialsUnique(t *testing.T) {
	m := NewMint()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		e, err := m.Issue(1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Serial] {
			t.Fatal("duplicate serial")
		}
		seen[e.Serial] = true
	}
}

func TestValidateRetiresAndReissues(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(100)
	fresh, err := m.Validate([]ECU{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Amount != 100 {
		t.Fatalf("fresh = %v", fresh)
	}
	if fresh[0].Serial == e.Serial {
		t.Fatal("serial not replaced")
	}
	if m.Outstanding() != 100 {
		t.Fatalf("money supply changed: %d", m.Outstanding())
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(100)
	if _, err := m.Validate([]ECU{e}, nil); err != nil {
		t.Fatal(err)
	}
	// The copy of the spent bill must be rejected.
	_, err := m.Validate([]ECU{e}, nil)
	if !errors.Is(err, ErrSpent) {
		t.Fatalf("err = %v, want ErrSpent", err)
	}
	if m.Frauds() != 1 {
		t.Fatalf("frauds = %d", m.Frauds())
	}
}

func TestForgedSerialRejected(t *testing.T) {
	m := NewMint()
	forged := ECU{Amount: 1000, Serial: newSerial()}
	if _, err := m.Validate([]ECU{forged}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestForgedAmountRejected(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(10)
	e.Amount = 10000 // inflate the bill
	if _, err := m.Validate([]ECU{e}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	// The genuine bill must still be spendable: rejection is all-or-nothing.
	e.Amount = 10
	if _, err := m.Validate([]ECU{e}, nil); err != nil {
		t.Fatalf("genuine bill rejected after failed forgery: %v", err)
	}
}

func TestValidateBatchAllOrNothing(t *testing.T) {
	m := NewMint()
	good, _ := m.Issue(50)
	spent, _ := m.Issue(50)
	m.Validate([]ECU{spent}, nil)
	_, err := m.Validate([]ECU{good, spent}, nil)
	if !errors.Is(err, ErrSpent) {
		t.Fatalf("err = %v", err)
	}
	// good must not have been retired by the failed batch.
	if _, err := m.Validate([]ECU{good}, nil); err != nil {
		t.Fatalf("good bill was retired by failed batch: %v", err)
	}
}

func TestValidateDuplicateInBatch(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(5)
	_, err := m.Validate([]ECU{e, e}, nil)
	if !errors.Is(err, ErrSpent) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateSplit(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(100)
	fresh, err := m.Validate([]ECU{e}, []int64{60, 30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 3 || Total(fresh) != 100 {
		t.Fatalf("fresh = %v", fresh)
	}
	if m.Outstanding() != 100 {
		t.Fatalf("supply = %d", m.Outstanding())
	}
}

func TestValidateSplitMismatch(t *testing.T) {
	m := NewMint()
	e, _ := m.Issue(100)
	if _, err := m.Validate([]ECU{e}, []int64{60, 30}); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Validate([]ECU{e}, []int64{100, -0}); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
	// Bill survives failed splits.
	if _, err := m.Validate([]ECU{e}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateEmptyBatch(t *testing.T) {
	m := NewMint()
	if _, err := m.Validate(nil, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestRedemptionLog(t *testing.T) {
	m := NewMint()
	bills, _ := m.IssueMany(10, 20)
	c := Commitment(bills)
	if m.Redeemed(c) {
		t.Fatal("commitment redeemed before validation")
	}
	if _, err := m.Validate(bills, nil); err != nil {
		t.Fatal(err)
	}
	if !m.Redeemed(c) {
		t.Fatal("commitment not recorded")
	}
}

func TestCommitmentDeterministicAndOrderSensitive(t *testing.T) {
	m := NewMint()
	a, _ := m.Issue(1)
	b, _ := m.Issue(2)
	if Commitment([]ECU{a, b}) != Commitment([]ECU{a, b}) {
		t.Fatal("commitment not deterministic")
	}
	if Commitment([]ECU{a, b}) == Commitment([]ECU{b, a}) {
		t.Fatal("commitment ignores order (collision-prone)")
	}
}

// Property: the money supply is conserved by any sequence of issues and
// validations with random splits.
func TestMoneySupplyInvariant(t *testing.T) {
	prop := func(amounts []uint8) bool {
		m := NewMint()
		var bills []ECU
		var supply int64
		for _, a := range amounts {
			if a == 0 {
				continue
			}
			e, err := m.Issue(int64(a))
			if err != nil {
				return false
			}
			bills = append(bills, e)
			supply += int64(a)
		}
		if len(bills) > 1 {
			// Validate the first two as a batch.
			if _, err := m.Validate(bills[:2], nil); err != nil {
				return false
			}
		}
		return m.Outstanding() == supply
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWalletBasics(t *testing.T) {
	m := NewMint()
	w := NewWallet()
	bills, _ := m.IssueMany(10, 20, 30)
	w.Add(bills...)
	if w.Balance() != 60 || w.Count() != 3 {
		t.Fatalf("balance=%d count=%d", w.Balance(), w.Count())
	}
}

func TestWalletDuplicateAdd(t *testing.T) {
	m := NewMint()
	w := NewWallet()
	e, _ := m.Issue(10)
	w.Add(e)
	w.Add(e) // same bill twice collapses
	if w.Balance() != 10 || w.Count() != 1 {
		t.Fatalf("balance=%d count=%d", w.Balance(), w.Count())
	}
}

func TestWalletWithdraw(t *testing.T) {
	m := NewMint()
	w := NewWallet()
	bills, _ := m.IssueMany(50, 20, 5)
	w.Add(bills...)
	got, err := w.Withdraw(60)
	if err != nil {
		t.Fatal(err)
	}
	if Total(got) < 60 {
		t.Fatalf("withdrew %d < 60", Total(got))
	}
	if w.Balance()+Total(got) != 75 {
		t.Fatalf("value leaked: wallet=%d withdrawn=%d", w.Balance(), Total(got))
	}
}

func TestWalletWithdrawInsufficient(t *testing.T) {
	m := NewMint()
	w := NewWallet()
	e, _ := m.Issue(10)
	w.Add(e)
	if _, err := w.Withdraw(100); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if w.Balance() != 10 {
		t.Fatal("failed withdraw mutated wallet")
	}
	if _, err := w.Withdraw(0); err == nil {
		t.Fatal("zero withdraw succeeded")
	}
}

func TestWalletSnapshotSorted(t *testing.T) {
	m := NewMint()
	w := NewWallet()
	bills, _ := m.IssueMany(1, 2, 3)
	w.Add(bills...)
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Serial >= snap[i].Serial {
			t.Fatal("snapshot not sorted")
		}
	}
}

func TestStatementSignVerify(t *testing.T) {
	keys := NewKeyRing()
	k := keys.Enroll("alice")
	st := Sign(k, "c1", "alice", PhasePay, "deadbeef")
	if err := keys.Verify(st); err != nil {
		t.Fatal(err)
	}
	// Tampering breaks verification.
	bad := st
	bad.Data = "cafebabe"
	if err := keys.Verify(bad); err == nil {
		t.Fatal("tampered statement verified")
	}
	// Unknown party fails.
	other := Sign(k, "c1", "mallory", PhasePay, "x")
	if err := keys.Verify(other); err == nil {
		t.Fatal("unknown party verified")
	}
	// A party cannot sign for another: mallory with her own key claiming
	// to be alice fails because the ring holds alice's real key.
	mk := keys.Enroll("mallory")
	forged := Sign(mk, "c1", "alice", PhasePay, "x")
	if err := keys.Verify(forged); err == nil {
		t.Fatal("forged authorship verified")
	}
}

func TestStatementEncodeDecode(t *testing.T) {
	keys := NewKeyRing()
	k := keys.Enroll("bob")
	st := Sign(k, "contract-9", "bob", PhaseDelivered, "hash123")
	back, err := DecodeStatement(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip: %+v vs %+v", back, st)
	}
	if _, err := DecodeStatement("not|enough"); err == nil {
		t.Fatal("malformed statement decoded")
	}
	if !strings.Contains(st.Encode(), "contract-9") {
		t.Fatal("encoding lost contract id")
	}
}
