package cash

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/folder"
)

// Behavior selects how each party acts in a purchase, driving the audit
// experiment's cheat scenarios.
type Behavior int

// Purchase behaviors.
const (
	// HonestRun: buyer pays, seller delivers, everyone documents.
	HonestRun Behavior = iota
	// BuyerSkipsPayment: buyer documents a payment but never sends bills,
	// then complains about missing service.
	BuyerSkipsPayment
	// SellerDeniesPayment: seller validates the payment, keeps the money,
	// and claims never to have been paid.
	SellerDeniesPayment
	// SellerSkipsDelivery: seller takes the payment and ships nothing.
	SellerSkipsDelivery
	// BuyerDeniesReceipt: buyer receives the service and claims otherwise.
	BuyerDeniesReceipt
)

// Outcome reports what a purchase run produced.
type Outcome struct {
	// Paid reports whether the seller validated a payment.
	Paid bool
	// Delivered reports whether the buyer received the service.
	Delivered bool
	// Audited reports whether a dispute was raised.
	Audited bool
	// Verdict is the auditor's verdict when Audited.
	Verdict string
	// Reason is the auditor's explanation.
	Reason string
}

// Party is one side of a purchase: a name, a signing key, and a wallet.
type Party struct {
	Name   string
	Key    []byte
	Wallet *Wallet
}

// NewParty enrolls a named party with the bank's key ring.
func NewParty(b *Bank, name string) *Party {
	return &Party{Name: name, Key: b.Keys.Enroll(name), Wallet: NewWallet()}
}

// serviceHash commits to the delivered goods.
func serviceHash(service string) string {
	h := sha256.Sum256([]byte(service))
	return hex.EncodeToString(h[:])
}

// notarize files one signed statement with the bank's notary.
func notarize(ctx context.Context, b *Bank, st Statement) error {
	bc := folder.NewBriefcase()
	bc.Put(StatementFolder, folder.OfStrings(st.Encode()))
	return b.Site.MeetClient(ctx, AgNotary, bc)
}

// validate presents bills to the bank's validator, returning fresh ones.
func validate(ctx context.Context, b *Bank, ecus []ECU, split []int64) ([]ECU, error) {
	bc := folder.NewBriefcase()
	bc.Put(CashFolder, folder.OfStrings(FormatECUs(ecus)...))
	if len(split) > 0 {
		sf := folder.New()
		for _, a := range split {
			sf.PushString(fmt.Sprintf("%d", a))
		}
		bc.Put(SplitFolder, sf)
	}
	if err := b.Site.MeetClient(ctx, AgValidator, bc); err != nil {
		return nil, err
	}
	cf, err := bc.Folder(CashFolder)
	if err != nil {
		return nil, err
	}
	return ParseECUs(cf.Strings())
}

// Audit raises a dispute with the bank's auditor and returns the verdict.
func Audit(ctx context.Context, b *Bank, contract, claim string) (verdict, reason string, err error) {
	bc := folder.NewBriefcase()
	bc.PutString(ContractFolder, contract)
	bc.PutString(ClaimFolder, claim)
	if err := b.Site.MeetClient(ctx, AgAuditor, bc); err != nil {
		return "", "", err
	}
	vf, err := bc.Folder(VerdictFolder)
	if err != nil {
		return "", "", err
	}
	verdict, _ = vf.StringAt(0)
	reason, _ = vf.StringAt(1)
	return verdict, reason, nil
}

// Purchase runs the paper's fair-exchange protocol for one contract: the
// buyer pays the seller for a service, both parties document their actions
// with the notary, and — because electronic cash is untraceable and
// two-step exchanges let either party cheat — any grievance is settled by
// an audit rather than by a transaction mechanism.
//
// The exchange itself is deliberately NOT atomic. Depending on behavior,
// one party defects; Purchase then raises the appropriate claim and
// returns the auditor's verdict.
func Purchase(ctx context.Context, b *Bank, contract, service string, price int64,
	buyer, seller *Party, behavior Behavior) (Outcome, error) {

	var out Outcome

	// --- Step 1: buyer withdraws bills and documents the payment. ---
	bills, err := buyer.Wallet.Withdraw(price)
	if err != nil {
		return out, fmt.Errorf("purchase %s: %w", contract, err)
	}
	if got := Total(bills); got > price {
		// Exchange for exact denominations at the validator: price + change.
		fresh, err := validate(ctx, b, bills, []int64{price, got - price})
		if err != nil {
			return out, fmt.Errorf("purchase %s: making change: %w", contract, err)
		}
		bills = fresh[:1]
		buyer.Wallet.Add(fresh[1:]...)
	}
	commitment := Commitment(bills)
	if err := notarize(ctx, b, Sign(buyer.Key, contract, buyer.Name, PhasePay, commitment)); err != nil {
		return out, err
	}

	if behavior == BuyerSkipsPayment {
		// The buyer documented a payment but keeps the bills, then has the
		// gall to complain about the missing service.
		buyer.Wallet.Add(bills...)
		out.Audited = true
		out.Verdict, out.Reason, err = Audit(ctx, b, contract, ClaimNoService)
		return out, err
	}

	// --- Step 2: bills travel to the seller (briefcase transfer), who
	// must validate before rendering service. ---
	validated, err := validate(ctx, b, bills, nil)
	if err != nil {
		return out, fmt.Errorf("purchase %s: seller validating: %w", contract, err)
	}
	seller.Wallet.Add(validated...)
	out.Paid = true

	if behavior == SellerDeniesPayment {
		// Seller keeps the validated bills and raises a false claim.
		out.Audited = true
		out.Verdict, out.Reason, err = Audit(ctx, b, contract, ClaimNoPayment)
		return out, err
	}
	if err := notarize(ctx, b, Sign(seller.Key, contract, seller.Name, PhasePaid, commitment)); err != nil {
		return out, err
	}

	// --- Step 3: seller delivers and documents; buyer documents receipt. ---
	if behavior == SellerSkipsDelivery {
		out.Audited = true
		out.Verdict, out.Reason, err = Audit(ctx, b, contract, ClaimNoService)
		return out, err
	}
	sh := serviceHash(service)
	if err := notarize(ctx, b, Sign(seller.Key, contract, seller.Name, PhaseDelivered, sh)); err != nil {
		return out, err
	}
	out.Delivered = true

	if behavior == BuyerDeniesReceipt {
		// Buyer got the goods, documents nothing, and demands an audit.
		out.Audited = true
		out.Verdict, out.Reason, err = Audit(ctx, b, contract, ClaimNoService)
		return out, err
	}
	if err := notarize(ctx, b, Sign(buyer.Key, contract, buyer.Name, PhaseReceived, sh)); err != nil {
		return out, err
	}
	return out, nil
}

// ExpectedVerdict maps a behavior to the verdict a correct auditor must
// reach, used by tests and the E6 experiment.
func ExpectedVerdict(behavior Behavior) string {
	switch behavior {
	case BuyerSkipsPayment, BuyerDeniesReceipt:
		return VerdictBuyerCheated
	case SellerDeniesPayment, SellerSkipsDelivery:
		return VerdictSellerCheats
	default:
		return VerdictNoViolation
	}
}
