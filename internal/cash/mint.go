package cash

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Mint is the issuing authority for ECUs. It remembers which serials are
// outstanding (valid, unspent) and which have been retired. It records
// no identity information whatsoever: a serial maps only to an amount, so
// funds transfers remain untraceable.
//
// The mint also keeps a redemption log of *payment commitments*: when a
// batch of ECUs is validated, the SHA-256 hash of the batch is recorded.
// A commitment reveals nothing about the parties; it exists so that an
// auditor, handed a signed statement "I paid, commitment H", can check
// whether H was in fact redeemed. This is the cryptographic documentation
// the paper's audit scheme relies on.
type Mint struct {
	mu       sync.Mutex
	valid    map[string]int64 // serial -> amount, outstanding bills
	retired  map[string]bool  // serials seen and withdrawn from circulation
	redeemed map[string]bool  // payment commitments validated
	issued   int64            // total value ever issued
	frauds   int64            // rejected validation attempts
}

// NewMint creates an empty mint.
func NewMint() *Mint {
	return &Mint{
		valid:    make(map[string]int64),
		retired:  make(map[string]bool),
		redeemed: make(map[string]bool),
	}
}

// Issue mints a new ECU of the given amount.
func (m *Mint) Issue(amount int64) (ECU, error) {
	if amount <= 0 {
		return ECU{}, fmt.Errorf("cash: cannot issue non-positive amount %d", amount)
	}
	e := ECU{Amount: amount, Serial: newSerial()}
	m.mu.Lock()
	m.valid[e.Serial] = e.Amount
	m.issued += amount
	m.mu.Unlock()
	return e, nil
}

// IssueMany mints one ECU per amount.
func (m *Mint) IssueMany(amounts ...int64) ([]ECU, error) {
	out := make([]ECU, 0, len(amounts))
	for _, a := range amounts {
		e, err := m.Issue(a)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Commitment returns the untraceable redemption commitment for a batch of
// ECUs: the hash of their canonical encoding.
func Commitment(ecus []ECU) string {
	h := sha256.New()
	for _, s := range FormatECUs(ecus) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Validate checks a batch of ECUs, retires their serials, and returns an
// equivalent batch with fresh serials — "effectively retiring an old bill
// and replacing it by a new one". If split is non-empty, the fresh batch
// uses those denominations instead (they must sum to the batch value).
//
// Validation is all-or-nothing: if any bill is invalid or already spent,
// no bill in the batch is retired and the whole batch is rejected. The
// rejected attempt is counted but not attributed — the mint does not know
// who presented it.
func (m *Mint) Validate(ecus []ECU, split []int64) ([]ECU, error) {
	if len(ecus) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	total := Total(ecus)
	if len(split) > 0 {
		var want int64
		for _, a := range split {
			if a <= 0 {
				return nil, fmt.Errorf("%w: non-positive denomination %d", ErrBadSplit, a)
			}
			want += a
		}
		if want != total {
			return nil, fmt.Errorf("%w: batch is %d, split sums to %d", ErrBadSplit, total, want)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Phase 1: check everything before touching state.
	seen := make(map[string]bool, len(ecus))
	for _, e := range ecus {
		if seen[e.Serial] {
			m.frauds++
			return nil, fmt.Errorf("%w: serial presented twice in one batch", ErrSpent)
		}
		seen[e.Serial] = true
		amt, ok := m.valid[e.Serial]
		if !ok {
			if m.retired[e.Serial] {
				m.frauds++
				return nil, fmt.Errorf("%w: serial %s…", ErrSpent, e.Serial[:8])
			}
			m.frauds++
			return nil, fmt.Errorf("%w: serial %s…", ErrInvalid, e.Serial[:8])
		}
		if amt != e.Amount {
			m.frauds++
			return nil, fmt.Errorf("%w: amount forged on serial %s…", ErrInvalid, e.Serial[:8])
		}
	}
	// Phase 2: retire and reissue.
	for _, e := range ecus {
		delete(m.valid, e.Serial)
		m.retired[e.Serial] = true
	}
	m.redeemed[commitmentLocked(ecus)] = true

	denoms := split
	if len(denoms) == 0 {
		denoms = make([]int64, len(ecus))
		for i, e := range ecus {
			denoms[i] = e.Amount
		}
	}
	fresh := make([]ECU, 0, len(denoms))
	for _, a := range denoms {
		e := ECU{Amount: a, Serial: newSerial()}
		m.valid[e.Serial] = a
		fresh = append(fresh, e)
	}
	return fresh, nil
}

func commitmentLocked(ecus []ECU) string { return Commitment(ecus) }

// Redeemed reports whether a payment commitment has been validated. Only
// auditors consult this; it exposes no identities.
func (m *Mint) Redeemed(commitment string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.redeemed[commitment]
}

// Outstanding returns the total value of unspent bills — the money-supply
// invariant checked by tests: issuing conserves it, validation preserves
// it, and fraud attempts never change it.
func (m *Mint) Outstanding() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, a := range m.valid {
		t += a
	}
	return t
}

// Issued returns the total value ever issued.
func (m *Mint) Issued() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.issued
}

// Frauds returns the number of rejected validation attempts.
func (m *Mint) Frauds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frauds
}
