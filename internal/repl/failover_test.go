package repl

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/rearguard"
	"repro/internal/store"
	"repro/internal/vnet"
)

// TestLeaderKillUnderLossFollowerTakesOver is the PR's acceptance
// scenario: a guarded itinerary is mid-flight, the leader site L holds an
// armed rear guard (watching the agent's current site D) and a parked
// resident, the whole replication link runs under injected packet loss —
// and then L is killed outright. The follower F must promote with:
//
//   - zero lost armed guards (F's guard set equals L's pre-kill set),
//   - the parked resident re-registered,
//   - no double relaunch (the agent at D is alive, so F's re-armed guard
//     must stay quiet; when D later dies, exactly one relaunch finishes
//     the computation).
func TestLeaderKillUnderLossFollowerTakesOver(t *testing.T) {
	net := vnet.NewNetwork(vnet.WithSeed(12345), vnet.WithCallTimeout(25*time.Millisecond))
	nodeO, nodeL := net.AddNode("O"), net.AddNode("L")
	nodeD, nodeF := net.AddNode("D"), net.AddNode("F")

	// O and D are plain sites; L is the durable leader.
	siteO := core.NewSite(nodeO, core.SiteConfig{})
	siteD := core.NewSite(nodeD, core.SiteConfig{})
	cabL := folder.NewCabinet()
	ldir := t.TempDir()
	walL, err := store.Open(ldir, cabL, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	siteL := core.NewSite(nodeL, core.SiteConfig{Cabinet: cabL, Durable: walL})

	mgrs := map[string]*rearguard.Manager{}
	for name, s := range map[string]*core.Site{"O": siteO, "L": siteL, "D": siteD} {
		m := rearguard.Install(s)
		m.Interval = 10 * time.Millisecond
		m.Misses = 3
		mgrs[name] = m
	}
	blocker := make(chan struct{})
	reached := make(chan struct{})
	for _, s := range []*core.Site{siteO, siteL} {
		s.Register("work", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
			return nil
		}))
	}
	siteD.Register("work", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		bc.Ensure("TRAIL").PushString("D")
		close(reached)
		<-blocker
		return nil
	}))

	// Follower F: standby site that refuses meets until promoted.
	siteF := core.NewSite(nodeF, core.SiteConfig{
		Admission: func(agent, from string) error { return fmt.Errorf("standby") },
	})
	fol, err := NewFollower(siteF, FollowerConfig{
		Dir: t.TempDir(), Leader: "L", NoSyncReplica: true,
		ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 25 * time.Millisecond,
		ProbeAttempts: 3, ProbeMisses: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ldr := StartLeader(nodeL, walL, LeaderConfig{
		Follower: "F", RetryInterval: 5 * time.Millisecond, CallTimeout: 100 * time.Millisecond,
	})
	defer ldr.Stop()

	// The chaos knobs: the replication and probe paths run lossy from the
	// start — shipping, acks, and failure detection all have to cope.
	net.SetBidirFaults("L", "F", vnet.Faults{Drop: 0.15, Jitter: 2 * time.Millisecond})
	net.SetBidirFaults("F", "L", vnet.Faults{Drop: 0.15})

	// A parked resident at L: it must survive the takeover.
	parkBC := folder.NewBriefcase()
	parkBC.Ensure(folder.CodeFolder).PushString("(noop)")
	if err := siteL.Park("resident-1", "", parkBC); err != nil {
		t.Fatal(err)
	}

	// Promotion trigger: the probe's death verdict promotes in place.
	tkCh := make(chan *Takeover, 1)
	fol.StartProbe(func() {
		tk, err := fol.Promote(core.SiteConfig{}, store.Options{NoSync: true},
			func(m *rearguard.Manager) { m.Interval = 10 * time.Millisecond; m.Misses = 3 })
		if err != nil {
			t.Errorf("promote: %v", err)
			return
		}
		tkCh <- tk
	})

	// Launch the guarded itinerary O → L → D and let it block at D: the
	// hop handoff leaves an armed guard at L watching D.
	resCh, err := mgrs["O"].Launch(context.Background(), rearguard.Config{
		ID: "fo1", Task: "work", Itinerary: []vnet.SiteID{"L", "D"}, Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("agent never reached D")
	}
	deadline := time.After(5 * time.Second)
	for len(mgrs["L"].GuardKeys()) == 0 {
		select {
		case <-deadline:
			t.Fatal("no guard armed at L")
		case <-time.After(2 * time.Millisecond):
		}
	}
	keysL := mgrs["L"].GuardKeys()

	// Drain: the kill is only lossless for state the follower has acked —
	// asynchronous replication's contract (and the paper's: recovery is
	// from the last *durable* checkpoint).
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := ldr.Drain(ctx); err != nil {
		t.Fatalf("drain under loss: %v", err)
	}

	// kill -9: the machine is gone mid-itinerary.
	if err := net.Crash("L"); err != nil {
		t.Fatal(err)
	}

	var tk *Takeover
	select {
	case tk = <-tkCh:
	case <-time.After(10 * time.Second):
		t.Fatal("follower never promoted")
	}
	defer tk.WAL.Close()

	// Zero lost armed guards: the promoted guard set is exactly L's.
	keysF := tk.Guards.GuardKeys()
	if len(keysF) != len(keysL) {
		t.Fatalf("guard sets differ: L=%v F=%v", keysL, keysF)
	}
	for i := range keysL {
		if keysF[i] != keysL[i] {
			t.Fatalf("guard sets differ: L=%v F=%v", keysL, keysF)
		}
	}
	if tk.RearmedGuards != len(keysL) {
		t.Fatalf("RearmedGuards=%d, want %d", tk.RearmedGuards, len(keysL))
	}
	// All parked residents re-registered.
	if tk.Parked != 1 || !tk.Site.IsParked("resident-1") {
		t.Fatalf("parked resident lost: Parked=%d IsParked=%v", tk.Parked, tk.Site.IsParked("resident-1"))
	}

	// No double relaunch: the agent at D is alive (blocked, but alive),
	// so the re-armed guard must hold its fire through many probe rounds.
	time.Sleep(150 * time.Millisecond)
	select {
	case res := <-resCh:
		t.Fatalf("computation finished while agent still blocked: %+v", res)
	default:
	}
	if got := tk.Guards.GuardKeys(); len(got) != len(keysL) {
		t.Fatalf("guards changed while D alive: %v", got)
	}

	// Now D dies too. Exactly one relaunch — from the follower's re-armed
	// guard — must finish the computation: D's hop is skipped (its site
	// stayed dead) and the result comes home to O.
	if err := net.Crash("D"); err != nil {
		t.Fatal(err)
	}
	close(blocker)
	res := rearguard.Wait(resCh, 10*time.Second)
	if !res.Completed {
		t.Fatal("computation lost despite replicated guard")
	}
	if res.Relaunches != 1 {
		t.Fatalf("Relaunches=%d, want exactly 1 (no double relaunch)", res.Relaunches)
	}
	found := false
	for _, s := range res.Skipped {
		if s == "D" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead D not skipped: %+v", res)
	}
	// The L hop ran before the kill; its trail entry came home.
	trail, _ := res.Briefcase.Folder("TRAIL")
	if ts := trail.Strings(); len(ts) == 0 || ts[0] != "L" {
		t.Fatalf("TRAIL=%v, want L first", ts)
	}
}
