package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/rearguard"
	"repro/internal/store"
	"repro/internal/vnet"
)

// FollowerConfig tunes a replica follower.
type FollowerConfig struct {
	// Dir is the replica WAL directory.
	Dir string
	// Leader is the site being replicated, the probe's target.
	Leader vnet.SiteID
	// ProbeInterval is the pause between probe rounds. Default 50ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one ping. Default 250ms.
	ProbeTimeout time.Duration
	// ProbeAttempts is how many pings one round tries before counting a
	// miss; retries within a round ride out packet loss without burning a
	// verdict. Default 3.
	ProbeAttempts int
	// ProbeMisses is how many consecutive failed rounds declare the
	// leader dead. Default 5.
	ProbeMisses int
	// NoSyncReplica skips fdatasync on shipped bytes (tests only: an ack
	// then promises nothing).
	NoSyncReplica bool
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) setDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.ProbeAttempts <= 0 {
		c.ProbeAttempts = 3
	}
	if c.ProbeMisses <= 0 {
		c.ProbeMisses = 5
	}
}

func (c *FollowerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// FollowerStats is a snapshot of a follower's apply progress.
type FollowerStats struct {
	// Chunks and Bytes count applied segment chunks.
	Chunks int64
	Bytes  int64
	// Snapshots counts installed catch-up snapshots.
	Snapshots int64
	// Resets counts replica wipes the leader demanded.
	Resets int64
	// Seg/Size is the durable watermark.
	Seg  uint64
	Size int64
	// Sealed reports the follower has promoted.
	Sealed bool
}

// Follower serves the repl lane at a standby site, writing shipped bytes
// into a replica WAL directory, and promotes on a leader-death verdict.
// Pre-promotion the site should refuse meets (core.SiteConfig.Admission);
// the follower is a disk, not a place where agents run — until it is.
type Follower struct {
	site *core.Site
	cfg  FollowerConfig

	mu     sync.Mutex
	rep    *store.Replica
	cache  *folder.DeltaCache
	sealed bool
	chunks int64
	bytes  int64
	snaps  int64
	resets int64

	probeStop chan struct{}
	probeDone chan struct{}
	deadOnce  sync.Once
	stopOnce  sync.Once
}

// NewFollower opens (or creates) the replica directory and registers the
// repl lane on site's endpoint. The site serves shipments immediately.
func NewFollower(site *core.Site, cfg FollowerConfig) (*Follower, error) {
	cfg.setDefaults()
	var rep *store.Replica
	var err error
	if cfg.NoSyncReplica {
		rep, err = store.OpenReplicaNoSync(cfg.Dir)
	} else {
		rep, err = store.OpenReplica(cfg.Dir)
	}
	if err != nil {
		return nil, err
	}
	f := &Follower{
		site:      site,
		cfg:       cfg,
		rep:       rep,
		cache:     folder.NewDeltaCache(0),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	site.HandleKind(Kind, f.handle)
	return f, nil
}

// Stats returns a snapshot of apply progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Chunks:    f.chunks,
		Bytes:     f.bytes,
		Snapshots: f.snaps,
		Resets:    f.resets,
		Sealed:    f.sealed,
	}
	if f.rep != nil {
		st.Seg, st.Size = f.rep.Watermark()
	}
	return st
}

// handle serves one replication frame. Serialized under f.mu: the replica
// is a single append cursor, and concurrent shipments would interleave.
func (f *Follower) handle(from vnet.SiteID, kind string, payload []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return appendReply(nil, reply{status: stSealed}), nil
	}
	r, err := decodeRequest(payload)
	if err != nil {
		return nil, err
	}
	wm := func(status byte) []byte {
		seg, size := f.rep.Watermark()
		return appendReply(nil, reply{status: status, seg: seg, size: size})
	}
	switch r.typ {
	case frHello:
		return wm(stOK), nil
	case frSeg:
		if err := f.rep.Append(r.seq, r.off, r.data); err != nil {
			if errors.Is(err, store.ErrWatermark) {
				// Not where we are: ack the true watermark, the leader
				// rewinds. Nothing was written.
				return wm(stOK), nil
			}
			f.cfg.logf("repl: apply seg %d@%d failed: %v", r.seq, r.off, err)
			return wm(stErr), nil
		}
		f.chunks++
		f.bytes += int64(len(r.data))
		return wm(stOK), nil
	case frSnap:
		b, missing, err := folder.DecodeBriefcaseDelta(r.data, f.cache.Get, func(h folder.Hash, enc []byte) {
			f.cache.PutCopy(h, enc)
		})
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			return wm(stMiss), nil
		}
		if err := f.rep.InstallSnapshot(r.seq, b); err != nil {
			f.cfg.logf("repl: snapshot %d install failed: %v", r.seq, err)
			return wm(stErr), nil
		}
		f.snaps++
		return wm(stOK), nil
	case frReset:
		if err := f.rep.Reset(); err != nil {
			f.cfg.logf("repl: reset failed: %v", err)
			return wm(stErr), nil
		}
		f.resets++
		return wm(stOK), nil
	}
	return nil, fmt.Errorf("%w: type %d", ErrFrame, r.typ)
}

// StartProbe launches the leader-death failure detector: periodic pings
// with in-round retries (so packet loss costs retries, not verdicts), and
// onDead fired exactly once after ProbeMisses consecutive failed rounds.
// A mesh death verdict can call LeaderDead directly; both trigger paths
// funnel into the same once.
func (f *Follower) StartProbe(onDead func()) {
	go func() {
		defer close(f.probeDone)
		misses := 0
		for {
			select {
			case <-f.probeStop:
				return
			case <-time.After(f.cfg.ProbeInterval):
			}
			alive := false
			for i := 0; i < f.cfg.ProbeAttempts; i++ {
				_, err := f.site.PingIncarnation(context.Background(), f.cfg.Leader, f.cfg.ProbeTimeout)
				if err == nil {
					alive = true
					break
				}
			}
			if alive {
				misses = 0
				continue
			}
			misses++
			if misses >= f.cfg.ProbeMisses {
				f.cfg.logf("repl: leader %s declared dead after %d failed probe rounds", f.cfg.Leader, misses)
				f.deadOnce.Do(onDead)
				return
			}
		}
	}()
}

// LeaderDead feeds an external death verdict (e.g. the mesh failure
// detector) into the same once-only trigger as the probe. onDead runs on
// the caller's goroutine if this is the first verdict.
func (f *Follower) LeaderDead(onDead func()) {
	f.deadOnce.Do(onDead)
}

// StopProbe ends the prober without promoting (planned shutdown).
func (f *Follower) StopProbe() {
	f.stopOnce.Do(func() { close(f.probeStop) })
}

// Takeover is the result of a promotion: a live site over the recovered
// state, with rear guards re-armed and parked residents re-registered.
type Takeover struct {
	// Site is the promoted site, serving on the follower's endpoint.
	Site *core.Site
	// Cabinet is the recovered file cabinet.
	Cabinet *folder.FileCabinet
	// WAL is the promoted site's own write-ahead log over the replica
	// directory.
	WAL *store.WAL
	// Guards is the rear-guard manager with every surviving guard armed.
	Guards *rearguard.Manager
	// RearmedGuards and Parked count what recovery brought back.
	RearmedGuards int
	Parked        int
}

// Promote turns the follower into a live site. The sequence is the
// paper's failover story made concrete:
//
//  1. Seal: the repl lane starts refusing shipments, fencing off a zombie
//     leader (a stale leader that was only partitioned, not dead, gets
//     stSealed and stops).
//  2. Recover: store.Open replays the replica directory — snapshot plus
//     segments through the watermark, torn tail truncated — exactly the
//     code path a local restart runs.
//  3. Serve: a new core.Site takes over the endpoint (NewSite installs
//     its handler, atomically replacing the standby's), with the WAL as
//     its durability barrier.
//  4. Re-arm: rearguard.Recover re-arms every guard checkpoint and
//     Site.RecoverParked re-registers every parked resident. In-flight
//     agents relaunch from their last durable checkpoint when their
//     watched site dies — or never, if they are still alive elsewhere
//     (hop marks make a double relaunch execute zero duplicate tasks).
//
// cfg is the promoted site's configuration (Cabinet and Durable are set
// here); tune, if non-nil, adjusts the rear-guard manager (Interval,
// Misses) before recovery arms the guards.
func (f *Follower) Promote(cfg core.SiteConfig, opt store.Options, tune func(*rearguard.Manager)) (*Takeover, error) {
	f.mu.Lock()
	if f.sealed {
		f.mu.Unlock()
		return nil, errors.New("repl: already promoted")
	}
	f.sealed = true
	rep := f.rep
	f.rep = nil
	f.mu.Unlock()
	f.StopProbe()
	if err := rep.Close(); err != nil {
		return nil, err
	}

	cab := folder.NewCabinet()
	w, err := store.Open(f.cfg.Dir, cab, opt)
	if err != nil {
		return nil, fmt.Errorf("repl: promote recovery: %w", err)
	}
	cfg.Cabinet = cab
	cfg.Durable = w
	site := core.NewSite(f.site.Endpoint(), cfg)
	// The promoted site answers stray shipments with the seal, so a
	// zombie leader (partitioned, not dead) learns it is fenced off
	// instead of seeing an opaque unknown-kind error forever.
	site.HandleKind(Kind, func(vnet.SiteID, string, []byte) ([]byte, error) {
		return appendReply(nil, reply{status: stSealed}), nil
	})
	m := rearguard.Install(site)
	if tune != nil {
		tune(m)
	}
	rearmed := m.Recover()
	parked := site.RecoverParked()
	f.cfg.logf("repl: promoted %s: %d guards re-armed, %d parked residents recovered",
		site.ID(), rearmed, parked)
	return &Takeover{
		Site:          site,
		Cabinet:       cab,
		WAL:           w,
		Guards:        m,
		RearmedGuards: rearmed,
		Parked:        parked,
	}, nil
}

// Close releases the follower without promoting.
func (f *Follower) Close() error {
	f.StopProbe()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sealed = true
	if f.rep == nil {
		return nil
	}
	err := f.rep.Close()
	f.rep = nil
	return err
}
