package repl

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []request{
		{typ: frHello},
		{typ: frReset},
		{typ: frSeg, seq: 7, off: 1234, data: []byte("raw segment bytes")},
		{typ: frSeg, seq: 1, off: 0, data: nil},
		{typ: frSnap, seq: 42, data: []byte{0xBC, 0x01, 0x02}},
	}
	for _, c := range cases {
		enc := appendRequest(nil, &c)
		got, err := decodeRequest(enc)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got.typ != c.typ || got.seq != c.seq || got.off != c.off || !bytes.Equal(got.data, c.data) {
			t.Fatalf("round trip %+v -> %+v", c, got)
		}
	}

	for _, p := range []reply{
		{status: stOK, seg: 3, size: 99999},
		{status: stSealed},
		{status: stMiss, seg: 1, size: 16},
	} {
		got, err := decodeReply(appendReply(nil, p))
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip %+v -> %+v", p, got)
		}
	}
}

func TestFrameHostileInput(t *testing.T) {
	// None of these may panic; all must error.
	bad := [][]byte{
		nil,
		{},
		{frameVersion},
		{99, frHello},               // wrong version
		{frameVersion, 200},         // unknown type
		{frameVersion, frHello, 1},  // trailing bytes
		{frameVersion, frSeg},       // missing fields
		{frameVersion, frSeg, 0x80}, // truncated uvarint
		{frameVersion, frSeg, 0, 0}, // zero segment
		{frameVersion, frSnap, 0},   // zero sequence
		{frameVersion, frSnap},      // missing seq
	}
	for _, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Fatalf("decodeRequest(%v) accepted hostile input", b)
		}
	}
	for _, b := range [][]byte{nil, {}, {frameVersion}, {9, stOK, 1, 1}, {frameVersion, stOK, 0x80}, {frameVersion, stOK, 1, 1, 1}} {
		if _, err := decodeReply(b); err == nil {
			t.Fatalf("decodeReply(%v) accepted hostile input", b)
		}
	}
}
