package repl

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/store"
	"repro/internal/vnet"
)

// rig is one leader/follower pair on a simulated network.
type rig struct {
	net  *vnet.Network
	cab  *folder.FileCabinet
	wal  *store.WAL
	ldr  *Leader
	fsit *core.Site
	fol  *Follower
	ldir string
}

// newRig builds a leader WAL on node L shipping to a standby follower on
// node F. walOpt tunes the leader WAL (compaction thresholds etc.).
func newRig(t *testing.T, walOpt store.Options) *rig {
	t.Helper()
	net := vnet.NewNetwork(vnet.WithSeed(7), vnet.WithCallTimeout(25*time.Millisecond))
	nodeL, nodeF := net.AddNode("L"), net.AddNode("F")

	walOpt.NoSync = true
	cab := folder.NewCabinet()
	ldir := t.TempDir()
	wal, err := store.Open(ldir, cab, walOpt)
	if err != nil {
		t.Fatal(err)
	}

	fsit := core.NewSite(nodeF, core.SiteConfig{
		Admission: func(agent, from string) error { return fmt.Errorf("standby") },
	})
	fol, err := NewFollower(fsit, FollowerConfig{
		Dir: t.TempDir(), Leader: "L", NoSyncReplica: true,
		ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 25 * time.Millisecond,
		ProbeAttempts: 2, ProbeMisses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ldr := StartLeader(nodeL, wal, LeaderConfig{
		Follower: "F", RetryInterval: 5 * time.Millisecond, CallTimeout: 100 * time.Millisecond,
	})
	r := &rig{net: net, cab: cab, wal: wal, ldr: ldr, fsit: fsit, fol: fol, ldir: ldir}
	t.Cleanup(func() { r.ldr.Stop() })
	return r
}

func (r *rig) drain(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.ldr.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func cabImage(t *testing.T, cab *folder.FileCabinet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cab.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShipAndPromoteMatchesLeader(t *testing.T) {
	r := newRig(t, store.Options{})
	for i := 0; i < 300; i++ {
		r.cab.AppendString("LOG", fmt.Sprintf("entry-%d", i))
	}
	r.cab.Put("CFG", folder.OfStrings("alpha", "beta"))
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	r.drain(t)

	st := r.ldr.Stats()
	if st.Lag != 0 || st.ShippedBytes == 0 || st.AckedSeg == 0 {
		t.Fatalf("leader stats after drain: %+v", st)
	}
	fst := r.fol.Stats()
	if fst.Bytes == 0 || fst.Seg != st.AckedSeg || fst.Size != st.AckedSize {
		t.Fatalf("follower stats %+v vs leader %+v", fst, st)
	}

	tk, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.WAL.Close()
	if got, want := cabImage(t, tk.Cabinet), cabImage(t, r.cab); !bytes.Equal(got, want) {
		t.Fatal("promoted cabinet differs from leader cabinet")
	}
	// The promoted site serves on the follower's endpoint.
	if tk.Site.ID() != "F" {
		t.Fatalf("promoted site ID %s", tk.Site.ID())
	}
}

func TestShipUnderPacketLoss(t *testing.T) {
	r := newRig(t, store.Options{})
	// Lossy both ways: shipped chunks and acks both drop. Idempotent
	// retransmits plus watermark acks must converge anyway.
	r.net.SetBidirFaults("L", "F", vnet.Faults{Drop: 0.25})
	for i := 0; i < 200; i++ {
		r.cab.AppendString("LOG", fmt.Sprintf("lossy-%d", i))
		if i%50 == 0 {
			if err := r.wal.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	r.drain(t)
	if st := r.ldr.Stats(); st.Errors == 0 {
		t.Fatalf("no exchange ever failed under 25%% loss: %+v", st)
	}
	r.net.ClearFaults()

	tk, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.WAL.Close()
	if got, want := cabImage(t, tk.Cabinet), cabImage(t, r.cab); !bytes.Equal(got, want) {
		t.Fatal("promoted cabinet differs after lossy shipping")
	}
}

func TestSnapshotCatchUpOverWire(t *testing.T) {
	// Tiny compaction thresholds: by the time the follower syncs, the
	// leader has pruned its early segments and must catch up by snapshot.
	r := newRig(t, store.Options{CompactMinBytes: 1, CompactRatio: 1})
	for i := 0; i < 300; i++ {
		r.cab.AppendString("LOG", fmt.Sprintf("compacted-%d-%s", i, "padding-padding-padding"))
		if i%10 == 0 {
			if err := r.wal.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	r.drain(t)
	tail := r.wal.Tail()
	if tail.SnapSeq == 0 {
		t.Skip("no compaction happened; thresholds too lax for this box")
	}
	if st := r.fol.Stats(); st.Snapshots == 0 {
		// The follower may have kept pace with the log before the first
		// prune; force the issue by checking it converged regardless.
		t.Logf("follower caught up without snapshot (kept pace with compaction)")
	}

	tk, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.WAL.Close()
	if got, want := cabImage(t, tk.Cabinet), cabImage(t, r.cab); !bytes.Equal(got, want) {
		t.Fatal("promoted cabinet differs after snapshot catch-up")
	}
}

func TestSealedFollowerFencesLeader(t *testing.T) {
	r := newRig(t, store.Options{})
	r.cab.AppendString("A", "x")
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	r.drain(t)
	tk, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.WAL.Close()

	// The old leader keeps writing — a zombie that was never really dead.
	// Its next shipment must be refused and shipping must stop for good.
	r.cab.AppendString("A", "zombie-write")
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !r.ldr.Stats().Sealed {
		select {
		case <-deadline:
			t.Fatal("leader never observed the seal")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Double promotion is refused.
	if _, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil); err == nil {
		t.Fatal("second Promote succeeded")
	}
}

func TestResetOnDivergedFollower(t *testing.T) {
	r := newRig(t, store.Options{})
	for i := 0; i < 100; i++ {
		r.cab.AppendString("LOG", "original-history-entry")
	}
	if err := r.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	r.drain(t)
	r.ldr.Stop()

	// The leader loses its disk and restarts empty: the follower is now
	// ahead of a history that no longer exists. The new leader must
	// demand a reset, then re-ship from scratch.
	cab2 := folder.NewCabinet()
	wal2, err := store.Open(t.TempDir(), cab2, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cab2.AppendString("LOG", "new-history")
	if err := wal2.Sync(); err != nil {
		t.Fatal(err)
	}
	ldr2 := StartLeader(r.net.Node("L"), wal2, LeaderConfig{
		Follower: "F", RetryInterval: 5 * time.Millisecond, CallTimeout: 100 * time.Millisecond,
	})
	defer ldr2.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ldr2.Drain(ctx); err != nil {
		t.Fatalf("drain after divergence: %v", err)
	}
	if st := ldr2.Stats(); st.Resets == 0 {
		t.Fatalf("no reset recorded: %+v", st)
	}
	if st := r.fol.Stats(); st.Resets == 0 {
		t.Fatalf("follower recorded no reset: %+v", st)
	}

	tk, err := r.fol.Promote(core.SiteConfig{}, store.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.WAL.Close()
	if got, want := cabImage(t, tk.Cabinet), cabImage(t, cab2); !bytes.Equal(got, want) {
		t.Fatal("promoted cabinet differs from the new leader's history")
	}
}
