// Package repl replicates a site's WAL to a follower that can take over.
//
// The paper's fault-tolerance story is that agents outlive failures:
// rear guards plus state in stable storage let an itinerary survive a site
// crash. PR 5 made that true for a site that *restarts* over its own disk;
// repl makes it true for a site that *dies*: a leader asynchronously ships
// its durable WAL bytes to a follower site over the ordinary meet
// transport (a HandleKind lane, like mesh gossip), and on a death verdict
// the follower promotes — replays its copy of the log through the same
// torn-tail-tolerant recovery as a local restart, re-arms every surviving
// rear guard, and resumes parked residents.
//
// # Wire protocol (lane "repl")
//
// Four request frames, one reply shape. All integers are uvarints; every
// frame begins with a version byte.
//
//	hello:               (watermark query)
//	seg   seq off data   (raw durable segment bytes [off, off+len(data)))
//	snap  seq delta      (briefcase delta of snapshot seq — catch-up)
//	reset:               (wipe the replica; history diverged)
//
//	reply status seg size
//
// The reply watermark (seg, size) is the follower's append position after
// applying the frame, fdatasynced before the reply is sent — an ack never
// promises bytes the follower could lose. The leader treats the reply
// watermark as authoritative: a chunk that does not land (duplicate, gap,
// follower restarted) simply moves the leader's cursor to wherever the
// follower actually is. Under packet loss this makes every frame safe to
// retransmit: shipped bytes are verbatim leader bytes, so replays are
// idempotent by construction.
//
// Status values: ok; miss (a snapshot delta referenced hashes the follower
// does not hold — the leader forgets them and re-ships full bytes, the PR 4
// miss-retry protocol); sealed (the follower has promoted and this leader
// must stop shipping — the fencing that prevents a zombie leader from
// writing to its successor); err (follower-side I/O failure, retryable).
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind is the HandleKind lane replication frames travel on.
const Kind = "repl"

const frameVersion = 1

// Request frame types.
const (
	frHello byte = iota + 1
	frSeg
	frSnap
	frReset
)

// Reply statuses.
const (
	stOK byte = iota
	stMiss
	stSealed
	stErr
)

// Codec errors.
var (
	// ErrVersion reports a frame from an incompatible peer.
	ErrVersion = errors.New("repl: unsupported frame version")
	// ErrFrame reports a malformed frame.
	ErrFrame = errors.New("repl: malformed frame")
)

// request is one decoded request frame.
type request struct {
	typ  byte
	seq  uint64 // frSeg: segment number; frSnap: snapshot sequence
	off  int64  // frSeg: byte offset of data within the segment
	data []byte // frSeg: raw segment bytes; frSnap: briefcase delta
}

// appendRequest encodes r.
func appendRequest(dst []byte, r *request) []byte {
	dst = append(dst, frameVersion, r.typ)
	switch r.typ {
	case frSeg:
		dst = binary.AppendUvarint(dst, r.seq)
		dst = binary.AppendUvarint(dst, uint64(r.off))
		dst = append(dst, r.data...)
	case frSnap:
		dst = binary.AppendUvarint(dst, r.seq)
		dst = append(dst, r.data...)
	}
	return dst
}

// decodeRequest parses a request frame. Hostile input must not panic; the
// data tail aliases the input.
func decodeRequest(data []byte) (*request, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: short request", ErrFrame)
	}
	if data[0] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, data[0])
	}
	r := &request{typ: data[1]}
	rest := data[2:]
	switch r.typ {
	case frHello, frReset:
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes", ErrFrame)
		}
	case frSeg:
		var err error
		if r.seq, rest, err = takeUvarint(rest); err != nil {
			return nil, err
		}
		var off uint64
		if off, rest, err = takeUvarint(rest); err != nil {
			return nil, err
		}
		r.off = int64(off)
		r.data = rest
	case frSnap:
		var err error
		if r.seq, rest, err = takeUvarint(rest); err != nil {
			return nil, err
		}
		r.data = rest
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrFrame, r.typ)
	}
	if r.seq == 0 && r.typ != frHello && r.typ != frReset {
		return nil, fmt.Errorf("%w: zero sequence", ErrFrame)
	}
	return r, nil
}

// reply is the single reply shape: a status plus the follower's durable
// watermark.
type reply struct {
	status byte
	seg    uint64
	size   int64
}

// appendReply encodes p.
func appendReply(dst []byte, p reply) []byte {
	dst = append(dst, frameVersion, p.status)
	dst = binary.AppendUvarint(dst, p.seg)
	return binary.AppendUvarint(dst, uint64(p.size))
}

// decodeReply parses a reply frame.
func decodeReply(data []byte) (reply, error) {
	if len(data) < 2 {
		return reply{}, fmt.Errorf("%w: short reply", ErrFrame)
	}
	if data[0] != frameVersion {
		return reply{}, fmt.Errorf("%w: %d", ErrVersion, data[0])
	}
	p := reply{status: data[1]}
	rest := data[2:]
	var err error
	if p.seg, rest, err = takeUvarint(rest); err != nil {
		return reply{}, err
	}
	var size uint64
	if size, rest, err = takeUvarint(rest); err != nil {
		return reply{}, err
	}
	if len(rest) != 0 {
		return reply{}, fmt.Errorf("%w: trailing bytes", ErrFrame)
	}
	p.size = int64(size)
	return p, nil
}

// takeUvarint consumes one uvarint.
func takeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrFrame)
	}
	return v, data[n:], nil
}
