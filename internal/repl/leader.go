package repl

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/folder"
	"repro/internal/store"
	"repro/internal/vnet"
)

// LeaderConfig tunes a shipping leader.
type LeaderConfig struct {
	// Follower is the replica site to ship to.
	Follower vnet.SiteID
	// ChunkBytes bounds one shipped segment chunk. Default 256 KiB.
	ChunkBytes int
	// RetryInterval is the backoff after a failed or lossy exchange, and
	// the idle heartbeat period. Default 100ms.
	RetryInterval time.Duration
	// CallTimeout bounds one ship RPC. Default 2s.
	CallTimeout time.Duration
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *LeaderConfig) setDefaults() {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 100 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
}

func (c *LeaderConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// LeaderStats is a snapshot of a leader's shipping progress.
type LeaderStats struct {
	// ShippedBytes counts segment bytes sent (retransmits included).
	ShippedBytes int64
	// ShippedChunks counts seg frames sent.
	ShippedChunks int64
	// AckedSeg/AckedSize is the follower's last acknowledged watermark:
	// everything before it is fdatasynced on the follower's disk.
	AckedSeg  uint64
	AckedSize int64
	// Lag is the durable log bytes the follower has not yet acked.
	Lag int64
	// Snapshots counts snapshot catch-ups shipped.
	Snapshots int64
	// Resets counts replica wipes demanded after divergence.
	Resets int64
	// Errors counts failed exchanges (timeouts, loss); each is retried.
	Errors int64
	// Sealed reports the follower has promoted: shipping is over, this
	// leader is fenced off.
	Sealed bool
}

// Leader ships a WAL's durable bytes to one follower. Shipping is
// asynchronous: meets commit locally at full speed and a single background
// shipper pushes the tail, so replication costs no meet latency — the
// trade the paper's rear-guard model already makes (failover replays from
// the last durable state, not from an unreplicated tail; the acceptance
// test therefore drains the leader before killing it when it wants a
// zero-loss takeover).
type Leader struct {
	ep  vnet.Endpoint
	w   *store.WAL
	cfg LeaderConfig

	cache  *folder.DeltaCache
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}

	mu       sync.Mutex
	wmValid  bool   // watermark learned via hello
	wmSeg    uint64 // follower's append position
	wmSize   int64
	sealed   bool
	shipped  int64
	chunks   int64
	snaps    int64
	resets   int64
	errs     int64
	noRefs   bool // next snapshot ships full bytes (after a miss)
	stopOnce sync.Once
}

// StartLeader begins shipping w's durable bytes to cfg.Follower over ep.
// The WAL's sync notifications drive the shipper; Stop (or Drain then
// Stop) ends it.
func StartLeader(ep vnet.Endpoint, w *store.WAL, cfg LeaderConfig) *Leader {
	cfg.setDefaults()
	l := &Leader{
		ep:     ep,
		w:      w,
		cfg:    cfg,
		cache:  folder.NewDeltaCache(0),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.SetSyncNotify(l.notify)
	go l.run()
	return l
}

// Stats returns a snapshot of shipping progress.
func (l *Leader) Stats() LeaderStats {
	l.mu.Lock()
	st := LeaderStats{
		ShippedBytes:  l.shipped,
		ShippedChunks: l.chunks,
		AckedSeg:      l.wmSeg,
		AckedSize:     l.wmSize,
		Snapshots:     l.snaps,
		Resets:        l.resets,
		Errors:        l.errs,
		Sealed:        l.sealed,
	}
	valid := l.wmValid
	l.mu.Unlock()
	if valid {
		st.Lag = l.w.LagFrom(st.AckedSeg, st.AckedSize)
	} else {
		st.Lag = l.w.LagFrom(0, 0)
	}
	return st
}

// Drain blocks until the follower has acked everything durable (lag 0) or
// ctx expires. Call it before a planned shutdown so the follower's copy is
// complete.
func (l *Leader) Drain(ctx context.Context) error {
	for {
		st := l.Stats()
		if st.Sealed {
			return errors.New("repl: follower sealed (promoted)")
		}
		if st.Lag == 0 && l.valid() {
			return nil
		}
		l.poke()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (l *Leader) valid() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wmValid
}

// Stop ends the shipper. It does not drain; pair with Drain for a graceful
// handoff.
func (l *Leader) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
	l.w.SetSyncNotify(nil)
}

// poke wakes the shipper immediately.
func (l *Leader) poke() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// run is the shipper loop: push until caught up, then sleep until a sync
// notification (or the retry heartbeat, which doubles as the error
// backoff) wakes it.
func (l *Leader) run() {
	defer close(l.done)
	for {
		if err := l.ship(); err != nil {
			l.mu.Lock()
			l.errs++
			sealed := l.sealed
			l.mu.Unlock()
			if sealed {
				l.cfg.logf("repl: follower %s promoted; shipping fenced off", l.cfg.Follower)
				return
			}
		}
		select {
		case <-l.stop:
			return
		case <-l.notify:
		case <-time.After(l.cfg.RetryInterval):
		}
	}
}

// ship pushes durable bytes until the follower is caught up or an exchange
// fails. Every error is retryable from the loop; the follower's reply
// watermark resynchronizes the cursor after any disagreement.
func (l *Leader) ship() error {
	if !l.valid() {
		if err := l.hello(); err != nil {
			return err
		}
	}
	for i := 0; ; i++ {
		select {
		case <-l.stop:
			return nil
		default:
		}
		l.mu.Lock()
		seg, size := l.wmSeg, l.wmSize
		l.mu.Unlock()
		tail := l.w.Tail()

		switch {
		case seg > tail.Seg || (seg == tail.Seg && size > tail.Size):
			// The follower holds bytes this leader never wrote: it was
			// following someone else (or our disk was replaced). Wipe it.
			if err := l.reset(); err != nil {
				return err
			}
		case seg == tail.Seg && size == tail.Size:
			return nil // caught up
		case seg < tail.FirstSeg && tail.SnapSeq > seg:
			// The log the follower needs is pruned; catch up by snapshot.
			if err := l.snapshot(); err != nil {
				return err
			}
		case seg < tail.FirstSeg:
			// Fresh follower, nothing pruned yet (FirstSeg has no snapshot
			// behind it): start shipping the oldest segment from byte 0.
			l.mu.Lock()
			l.wmSeg, l.wmSize = tail.FirstSeg, 0
			l.mu.Unlock()
		default:
			if err := l.shipChunk(seg, size); err != nil {
				if errors.Is(err, store.ErrSegmentGone) {
					// Compaction pruned under the cursor; re-plan — the
					// next iteration takes the snapshot path.
					continue
				}
				return err
			}
		}
	}
}

// call performs one lane RPC.
func (l *Leader) call(r *request) (reply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), l.cfg.CallTimeout)
	defer cancel()
	resp, err := l.ep.Call(ctx, l.cfg.Follower, Kind, appendRequest(nil, r))
	if err != nil {
		return reply{}, err
	}
	p, err := decodeReply(resp)
	if err != nil {
		return reply{}, err
	}
	if p.status == stSealed {
		l.mu.Lock()
		l.sealed = true
		l.mu.Unlock()
		return p, errors.New("repl: follower sealed")
	}
	if p.status == stErr {
		return p, errors.New("repl: follower I/O error")
	}
	return p, nil
}

// adopt records the follower's reply watermark as the shipping cursor.
func (l *Leader) adopt(p reply) {
	l.mu.Lock()
	l.wmSeg, l.wmSize, l.wmValid = p.seg, p.size, true
	l.mu.Unlock()
}

// hello learns the follower's watermark.
func (l *Leader) hello() error {
	p, err := l.call(&request{typ: frHello})
	if err != nil {
		return err
	}
	l.adopt(p)
	return nil
}

// reset wipes a diverged follower.
func (l *Leader) reset() error {
	l.cfg.logf("repl: follower %s diverged; resetting replica", l.cfg.Follower)
	p, err := l.call(&request{typ: frReset})
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.resets++
	l.mu.Unlock()
	l.adopt(p)
	return nil
}

// snapshot ships the newest snapshot as a briefcase delta. On a miss the
// referenced hashes are forgotten and the next attempt ships full bytes.
func (l *Leader) snapshot() error {
	seq, b, err := l.w.SnapshotForShip()
	if err != nil {
		return err
	}
	l.mu.Lock()
	noRefs := l.noRefs
	l.mu.Unlock()
	var refs func(folder.Hash) ([]byte, bool)
	if !noRefs {
		refs = l.cache.Get
	}
	enc := folder.AppendBriefcaseDelta(nil, b, l.cache, refs, nil, nil)
	p, err := l.call(&request{typ: frSnap, seq: seq, data: enc})
	if err != nil {
		return err
	}
	if p.status == stMiss {
		// The PR 4 miss-retry protocol: the follower lacks segments our
		// cache says it has (it restarted). Re-ship with refs disabled;
		// the full bytes repopulate both caches.
		l.mu.Lock()
		l.noRefs = true
		l.mu.Unlock()
		// Only the shipper goroutine touches the cache, so a wholesale
		// replacement is the cheapest way to drop every stale entry.
		l.cache = folder.NewDeltaCache(0)
		return errors.New("repl: snapshot delta miss (will re-ship full)")
	}
	l.mu.Lock()
	l.snaps++
	l.noRefs = false
	l.mu.Unlock()
	l.adopt(p)
	l.cfg.logf("repl: follower %s caught up by snapshot %d", l.cfg.Follower, seq)
	return nil
}

// shipChunk ships durable bytes at (seg, size) and advances the cursor to
// wherever the follower says it is.
func (l *Leader) shipChunk(seg uint64, size int64) error {
	chunk, sealedSeg, err := l.w.ReadSegmentDurable(seg, size, l.cfg.ChunkBytes)
	if err != nil {
		return err
	}
	if len(chunk) == 0 {
		if sealedSeg {
			// Already at the sealed segment's end: advance to the next.
			l.mu.Lock()
			l.wmSeg, l.wmSize = seg+1, 0
			l.mu.Unlock()
			return nil
		}
		return nil // durable frontier; nothing to ship yet
	}
	p, err := l.call(&request{typ: frSeg, seq: seg, off: size, data: chunk})
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.chunks++
	l.shipped += int64(len(chunk))
	l.mu.Unlock()
	if p.seg == seg && p.size == size+int64(len(chunk)) && sealedSeg {
		p.seg, p.size = seg+1, 0
	}
	l.adopt(p)
	return nil
}
