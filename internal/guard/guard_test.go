package guard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cash"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

func ctxb() context.Context { return context.Background() }

// --- signatures ---

func TestSignVerifyRoundTrip(t *testing.T) {
	keys := NewKeyring()
	keys.Enroll("alice")
	bc, err := SignedScript(keys, "alice", "site-0", `bc_push RESULT ok`, nil)
	if err != nil {
		t.Fatal(err)
	}
	principal, err := Verify(keys, bc)
	if err != nil {
		t.Fatal(err)
	}
	if principal != "alice" {
		t.Fatalf("principal = %q", principal)
	}
	if Principal(bc) != "alice" {
		t.Fatalf("Principal = %q", Principal(bc))
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	keys := NewKeyring()
	keys.Enroll("alice")
	bc, err := SignedScript(keys, "alice", "site-0", `bc_push RESULT ok`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A hostile site swaps the agent's code.
	bc.Put(folder.CodeFolder, folder.OfStrings(`cab_append LOOT everything`))
	if _, err := Verify(keys, bc); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	// ... or redirects the billing address.
	bc, _ = SignedScript(keys, "alice", "site-0", `bc_push RESULT ok`, nil)
	bc.PutString(HomeFolder, "evil-site")
	if _, err := Verify(keys, bc); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyUnsignedAndUnknown(t *testing.T) {
	keys := NewKeyring()
	if _, err := Verify(keys, folder.NewBriefcase()); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("err = %v, want ErrUnsigned", err)
	}
	other := NewKeyring()
	other.Enroll("mallory")
	bc, err := SignedScript(other, "mallory", "", `bc_push RESULT ok`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(keys, bc); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v, want ErrUnknownPrincipal", err)
	}
}

func TestSignUnknownPrincipal(t *testing.T) {
	keys := NewKeyring()
	if err := Sign(keys, "nobody", folder.NewBriefcase()); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v, want ErrUnknownPrincipal", err)
	}
}

// --- capabilities ---

func TestCapabilityMatching(t *testing.T) {
	c := compileCap(Capability{Meet: []string{"validator", "ag_*"}})
	for agent, want := range map[string]bool{
		"validator": true, "ag_mail": true, "broker": false, "": false,
	} {
		if got := c.meet.allows(agent); got != want {
			t.Errorf("allows(%q) = %v, want %v", agent, got, want)
		}
	}
	// nil list is unrestricted; empty non-nil list denies everything.
	open := compileCap(Capability{})
	if !open.meet.allows("anything") {
		t.Error("nil Meet should allow everything")
	}
	closed := compileCap(Capability{Meet: []string{}})
	if closed.meet.allows("anything") {
		t.Error("empty Meet should deny everything")
	}
}

// --- ACL enforcement on the meet path ---

func newGuardedPair(t *testing.T) (*core.System, *Keyring, *Policy, *Policy) {
	t.Helper()
	sys := core.NewSystem(2, core.SystemConfig{Seed: 11})
	keys := NewKeyring()
	p0, p1 := NewPolicy(), NewPolicy()
	Install(sys.SiteAt(0), New(p0, keys))
	Install(sys.SiteAt(1), New(p1, keys))
	t.Cleanup(sys.Wait)
	return sys, keys, p0, p1
}

func TestACLBlocksForbiddenMeet(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	sys.SiteAt(1).Register("secrets", core.AgentFunc(
		func(_ *core.MeetContext, bc *folder.Briefcase) error {
			bc.PutString("SECRET", "the plans")
			return nil
		}))
	keys.Enroll("alice")
	p1.Grant("alice", Capability{Meet: []string{"harmless"}})

	bc, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		meet secrets
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "may not meet") {
		t.Fatalf("err = %v, want ACL refusal", err)
	}
	if bc.Has("SECRET") {
		t.Fatal("blocked agent still obtained the secret")
	}
}

func TestACLAllowsGrantedMeet(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	sys.SiteAt(1).Register("greeter", core.AgentFunc(
		func(_ *core.MeetContext, bc *folder.Briefcase) error {
			bc.PutString(folder.ResultFolder, "hello")
			return nil
		}))
	keys.Enroll("alice")
	p1.Grant("alice", Capability{Meet: []string{"greeter"}})

	bc, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		meet greeter
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatal(err)
	}
	if got, _ := bc.GetString(folder.ResultFolder); got != "hello" {
		t.Fatalf("RESULT = %q", got)
	}
}

func TestACLCabinetReadWrite(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	sys.SiteAt(1).Cabinet().AppendString("PUBLIC", "open data")
	sys.SiteAt(1).Cabinet().AppendString("VAULT", "classified")
	keys.Enroll("alice")
	p1.Grant("alice", Capability{Read: []string{"PUBLIC"}, Write: []string{"SCRATCH"}})

	run := func(src string) error {
		bc, err := SignedScript(keys, "alice", "site-0", src, nil)
		if err != nil {
			t.Fatal(err)
		}
		return Launch(ctxb(), sys.SiteAt(0), bc)
	}
	if err := run("if {[host] eq \"site-0\"} { jump site-1 }\nbc_push OUT [cab_list PUBLIC]"); err != nil {
		t.Fatalf("allowed read failed: %v", err)
	}
	if err := run("if {[host] eq \"site-0\"} { jump site-1 }\nbc_push OUT [cab_list VAULT]"); err == nil ||
		!strings.Contains(err.Error(), "may not read") {
		t.Fatalf("vault read: err = %v, want refusal", err)
	}
	if err := run("if {[host] eq \"site-0\"} { jump site-1 }\ncab_append SCRATCH note"); err != nil {
		t.Fatalf("allowed write failed: %v", err)
	}
	if err := run("if {[host] eq \"site-0\"} { jump site-1 }\ncab_append PUBLIC graffiti"); err == nil ||
		!strings.Contains(err.Error(), "may not write") {
		t.Fatalf("public write: err = %v, want refusal", err)
	}
}

// --- firewall at the simulated network boundary ---

func TestFirewallRejectsUnsigned(t *testing.T) {
	sys, _, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)

	_, err := core.RunScript(ctxb(), sys.SiteAt(0), `if {[host] eq "site-0"} { jump site-1 }`, nil)
	if !errors.Is(err, core.ErrRefused) || !strings.Contains(err.Error(), "unsigned") {
		t.Fatalf("err = %v, want unsigned refusal", err)
	}
}

func TestFirewallRejectsUnknownAndForged(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	keys.Enroll("alice")
	p1.Grant("alice", Capability{})

	// mallory signs with a key the firewall has never seen.
	mkeys := NewKeyring()
	mkeys.Enroll("mallory")
	bc, err := SignedScript(mkeys, "mallory", "site-0", `if {[host] eq "site-0"} { jump site-1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "unknown principal") {
		t.Fatalf("err = %v, want unknown-principal refusal", err)
	}

	// alice's briefcase, tampered in flight (code swapped after signing).
	bc, err = SignedScript(keys, "alice", "site-0", `if {[host] eq "site-0"} { jump site-1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc.Put(folder.CodeFolder, folder.OfStrings(`cab_append LOOT x`))
	err = sys.SiteAt(0).RemoteMeet(ctxb(), "site-1", core.AgTacl, bc)
	if err == nil || !strings.Contains(err.Error(), "bad briefcase signature") {
		t.Fatalf("err = %v, want bad-signature refusal", err)
	}
}

func TestFirewallAdmitsSignedWithCapability(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	keys.Enroll("alice")
	p1.Grant("alice", Capability{})

	bc, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push RESULT arrived
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatal(err)
	}
	if got, _ := bc.GetString(folder.ResultFolder); got != "arrived" {
		t.Fatalf("RESULT = %q", got)
	}
}

func TestFirewallRejectsSignedWithoutCapability(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	keys.Enroll("bob") // enrolled, but no Grant at site-1 and no default

	bc, err := SignedScript(keys, "bob", "site-0", `if {[host] eq "site-0"} { jump site-1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "holds no capability") {
		t.Fatalf("err = %v, want no-capability refusal", err)
	}
}

func TestFirewallRequireCash(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	p1.SetRequireCash(true)
	keys.Enroll("alice")
	p1.Grant("alice", Capability{})

	bc, err := SignedScript(keys, "alice", "site-0", `if {[host] eq "site-0"} { jump site-1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "without funds") {
		t.Fatalf("err = %v, want no-funds refusal", err)
	}
}

// --- metered meets ---

// fundBriefcase mints unit bills into the briefcase CASH folder.
func fundBriefcase(t *testing.T, mint *cash.Mint, bc *folder.Briefcase, units int) {
	t.Helper()
	amounts := make([]int64, units)
	for i := range amounts {
		amounts[i] = 1
	}
	bills, err := mint.IssueMany(amounts...)
	if err != nil {
		t.Fatal(err)
	}
	bc.Put(CashFolder, folder.OfStrings(cash.FormatECUs(bills)...))
}

func TestMeteredMeetTerminatesAndBillsHome(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	keys.Enroll("bob")
	keys.Enroll(SitePrincipal("site-1")) // so the billing notice verifies at home
	p1.Grant("bob", Capability{})
	meter := NewMeter(10, 1)
	sys.SiteAt(1).Guard().(*Guard).Meter = meter
	mint := cash.NewMint()

	bc, err := SignedScript(keys, "bob", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		while {1} { set x 1 }
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fundBriefcase(t, mint, bc, 5)

	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "terminated at site-1") {
		t.Fatalf("err = %v, want mid-itinerary termination", err)
	}
	sys.Wait() // let the detached billing notice land

	if got := meter.Earned(); got != 5 {
		t.Fatalf("meter earned %d, want 5 (the agent's whole budget)", got)
	}
	if got := meter.Treasury().Balance(); got != 5 {
		t.Fatalf("treasury balance %d, want 5", got)
	}
	recs := meter.Records()
	if len(recs) != 1 || recs[0].Principal != "bob" || recs[0].Amount != 5 {
		t.Fatalf("records = %+v", recs)
	}
	// The billing record is visible at the launching site.
	home := sys.SiteAt(0).Cabinet().Snapshot(BillingFolder)
	if home.Len() != 1 {
		t.Fatalf("home BILLING has %d records, want 1", home.Len())
	}
	rec, err := DecodeBillingRecord(home.Strings()[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Principal != "bob" || rec.Site != "site-1" || rec.Amount != 5 {
		t.Fatalf("billing record = %+v", rec)
	}
	// Money is conserved: everything minted is now in the site treasury.
	if mint.Issued() != 5 {
		t.Fatalf("issued %d", mint.Issued())
	}
}

func TestMeteredMeetWithinBudgetSucceeds(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("bob")
	p1.Grant("bob", Capability{})
	meter := NewMeter(10, 1)
	sys.SiteAt(1).Guard().(*Guard).Meter = meter
	mint := cash.NewMint()

	bc, err := SignedScript(keys, "bob", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push RESULT [ecu_balance]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fundBriefcase(t, mint, bc, 5)
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatal(err)
	}
	if meter.Earned() == 0 {
		t.Fatal("meter collected nothing from a funded activation")
	}
	if meter.Earned()+cash.FolderBalance(mustFolder(t, bc, CashFolder)) != 5 {
		t.Fatalf("money not conserved: earned %d, remaining %d",
			meter.Earned(), cash.FolderBalance(mustFolder(t, bc, CashFolder)))
	}
	if len(meter.Records()) != 0 {
		t.Fatalf("no termination, but records = %+v", meter.Records())
	}
}

func TestUnfundedActivationRunsFreeWithoutRequireCash(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("bob")
	p1.Grant("bob", Capability{})
	sys.SiteAt(1).Guard().(*Guard).Meter = NewMeter(10, 1)

	bc, err := SignedScript(keys, "bob", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push RESULT free
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatal(err)
	}
}

// --- hostile in-script tampering ---

func TestScriptCannotShedSignature(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	sys.SiteAt(1).Register("secrets", core.AgentFunc(
		func(_ *core.MeetContext, bc *folder.Briefcase) error {
			bc.PutString("SECRET", "leaked")
			return nil
		}))
	keys.Enroll("eve")
	p1.Grant("eve", Capability{Meet: []string{}})

	// eve tries to drop her identity and meet the forbidden agent.
	bc, err := SignedScript(keys, "eve", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_del SIG
		meet secrets
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "guard-managed") {
		t.Fatalf("err = %v, want guard-managed refusal", err)
	}
	if bc.Has("SECRET") {
		t.Fatal("SIG-shedding agent reached the secrets agent")
	}
}

func TestFirewallDeniesUnsignedLocalMeetsByDefault(t *testing.T) {
	// Even if an agent somehow reached a firewall site without a SIG
	// folder, "no grant, no default" must deny — not fall open.
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	keys.Enroll("eve")
	p1.Grant("eve", Capability{Meet: []string{}})
	fw := sys.SiteAt(1)
	fw.Register("secrets", core.AgentFunc(
		func(*core.MeetContext, *folder.Briefcase) error { return nil }))

	err := fw.Meet(nil, "secrets", folder.NewBriefcase())
	if err == nil || !strings.Contains(err.Error(), "may not meet") {
		t.Fatalf("err = %v, want denial for unsigned briefcase at firewall", err)
	}
}

func TestScriptCannotForgeCash(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("eve")
	p1.Grant("eve", Capability{})
	sys.SiteAt(1).Guard().(*Guard).Meter = NewMeter(10, 1)

	bc, err := SignedScript(keys, "eve", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push CASH "9999|0123456789abcdef0123456789abcdef"
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "guard-managed") {
		t.Fatalf("err = %v, want guard-managed refusal", err)
	}
}

func TestMeterRejectsCounterfeitBills(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("eve")
	p1.Grant("eve", Capability{})
	mint := cash.NewMint()
	meter := NewMeter(10, 1)
	meter.Mint = mint
	sys.SiteAt(1).Guard().(*Guard).Meter = meter

	bc, err := SignedScript(keys, "eve", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		while {1} { set x 1 }
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Well-formed ECU strings whose serials the mint never issued.
	bc.Put(CashFolder, folder.OfStrings(
		"9999|0123456789abcdef0123456789abcdef",
		"9999|fedcba9876543210fedcba9876543210",
	))
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "counterfeit") {
		t.Fatalf("err = %v, want counterfeit termination", err)
	}
	if got := meter.Earned(); got != 0 {
		t.Fatalf("meter booked %d counterfeit ECUs as revenue", got)
	}
	if mint.Frauds() == 0 {
		t.Fatal("mint recorded no fraud attempt")
	}
}

func TestScriptCannotEscalateViaSignBc(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	p1.SetFirewall(true)
	sys.SiteAt(1).Register("secrets", core.AgentFunc(
		func(*core.MeetContext, *folder.Briefcase) error { return nil }))
	keys.Enroll("alice")
	keys.Enroll("eve")
	p1.Grant("alice", Capability{Meet: []string{"secrets"}})
	p1.Grant("eve", Capability{Meet: []string{}})

	// eve tries to re-sign her briefcase as the broader-privileged alice
	// using the firewall's own (symmetric) verification key.
	bc, err := SignedScript(keys, "eve", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		sign_bc alice DATA
		meet secrets
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc.PutString("DATA", "x")
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "disabled at sites enforcing capabilities") {
		t.Fatalf("err = %v, want sign_bc refusal", err)
	}
}

func TestScriptCannotRedirectBillingHome(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("eve")
	p1.Grant("eve", Capability{})
	sys.SiteAt(1).Guard().(*Guard).Meter = NewMeter(10, 1)

	bc, err := SignedScript(keys, "eve", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_del HOME
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), sys.SiteAt(0), bc)
	if err == nil || !strings.Contains(err.Error(), "guard-managed") {
		t.Fatalf("err = %v, want guard-managed refusal for HOME", err)
	}
}

func TestOpenSiteAdmitsUnknownPrincipal(t *testing.T) {
	// A metering-only (non-firewall) guarded site must not reject agents
	// signed for some other trust domain.
	sys, _, _, _ := newGuardedPair(t)
	elsewhere := NewKeyring()
	elsewhere.Enroll("stranger")
	bc, err := SignedScript(elsewhere, "stranger", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push RESULT welcomed
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatalf("open site rejected unknown-principal signature: %v", err)
	}
	if got, _ := bc.GetString(folder.ResultFolder); got != "welcomed" {
		t.Fatalf("RESULT = %q", got)
	}
}

func TestSpoofedBillingNoticeQuarantined(t *testing.T) {
	sys, keys, _, _ := newGuardedPair(t)
	home := sys.SiteAt(0)

	// An unsigned fabricated notice must not reach the attested log.
	fake := folder.NewBriefcase()
	fake.Ensure(BillingFolder).PushString("alice|ag_tacl|fw|1000|999|budget exhausted: fabricated")
	if err := sys.SiteAt(1).RemoteMeet(ctxb(), "site-0", AgBilling, fake); err != nil {
		t.Fatal(err)
	}
	if n := home.Cabinet().FolderLen(BillingFolder); n != 0 {
		t.Fatalf("forged notice reached the attested BILLING log (%d records)", n)
	}
	if n := home.Cabinet().FolderLen(UnverifiedBillingFolder); n != 1 {
		t.Fatalf("forged notice not quarantined (%d records)", n)
	}

	// A notice signed by an ordinary principal (not a site) is quarantined
	// too — only site-attested bills are trusted.
	keys.Enroll("alice")
	fake2 := folder.NewBriefcase()
	fake2.Ensure(BillingFolder).PushString("victim|ag_tacl|fw|1000|999|fabricated")
	if err := Sign(keys, "alice", fake2, BillingFolder); err != nil {
		t.Fatal(err)
	}
	if err := sys.SiteAt(1).RemoteMeet(ctxb(), "site-0", AgBilling, fake2); err != nil {
		t.Fatal(err)
	}
	if n := home.Cabinet().FolderLen(BillingFolder); n != 0 {
		t.Fatalf("principal-signed notice reached the attested log (%d)", n)
	}
}

// --- guard-aware TacL builtins ---

func TestTaclBuiltins(t *testing.T) {
	sys, keys, _, p1 := newGuardedPair(t)
	keys.Enroll("alice")
	p1.Grant("alice", Capability{Meet: []string{"allowed"}})

	bc, err := SignedScript(keys, "alice", "site-0", `
		if {[host] eq "site-0"} { jump site-1 }
		bc_push OUT [principal]
		bc_push OUT [acl_check allowed]
		bc_push OUT [acl_check forbidden]
		bc_push OUT [ecu_balance]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), sys.SiteAt(0), bc); err != nil {
		t.Fatal(err)
	}
	out := mustFolder(t, bc, "OUT").Strings()
	want := []string{"alice", "1", "0", "0"}
	if len(out) != len(want) {
		t.Fatalf("OUT = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("OUT[%d] = %q, want %q (all: %v)", i, out[i], want[i], out)
		}
	}
}

func TestTaclSignBc(t *testing.T) {
	sys, keys, _, _ := newGuardedPair(t)
	keys.Enroll("alice")

	// An unsigned agent signs itself at the launching site (where the key
	// lives), then roams.
	bc, err := core.RunScript(ctxb(), sys.SiteAt(0), `
		bc_putlist DATA {a b c}
		sign_bc alice DATA
		bc_push OUT [principal]
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Verify(keys, bc); got != "alice" {
		t.Fatalf("verified principal = %q", got)
	}
	if out := mustFolder(t, bc, "OUT").Strings(); out[0] != "alice" {
		t.Fatalf("principal builtin = %q", out[0])
	}
}

// --- firewall over the real TCP transport with the auth handshake ---

func TestTCPFirewallEndToEnd(t *testing.T) {
	secret := []byte("cluster shared secret")
	epA, err := vnet.NewTCPEndpoint("tcp-a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := vnet.NewTCPEndpoint("tcp-b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("tcp-b", epB.Addr())
	epB.AddPeer("tcp-a", epA.Addr())
	epA.SetAuthKey(secret)
	epB.SetAuthKey(secret)

	siteA := core.NewSite(epA, core.SiteConfig{})
	siteB := core.NewSite(epB, core.SiteConfig{})
	keys := NewKeyring()
	keys.Enroll("alice")
	pB := NewPolicy()
	pB.SetFirewall(true)
	pB.Grant("alice", Capability{})
	Install(siteA, New(NewPolicy(), keys))
	Install(siteB, New(pB, keys))

	// Signed agent passes both the transport handshake and the firewall.
	bc, err := SignedScript(keys, "alice", "tcp-a", `
		if {[host] eq "tcp-a"} { jump tcp-b }
		bc_push RESULT roamed
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Launch(ctxb(), siteA, bc); err != nil {
		t.Fatal(err)
	}
	if got, _ := bc.GetString(folder.ResultFolder); got != "roamed" {
		t.Fatalf("RESULT = %q", got)
	}

	// Unsigned agent clears the transport (the daemon knows the cluster
	// secret) but is stopped by the site firewall.
	_, err = core.RunScript(ctxb(), siteA, `if {[host] eq "tcp-a"} { jump tcp-b }`, nil)
	if err == nil || !strings.Contains(err.Error(), "unsigned") {
		t.Fatalf("err = %v, want unsigned refusal", err)
	}

	// A whole process with the wrong cluster secret cannot even complete
	// the transport handshake.
	epA.SetAuthKey([]byte("wrong secret"))
	bc2, err := SignedScript(keys, "alice", "tcp-a", `if {[host] eq "tcp-a"} { jump tcp-b }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Launch(ctxb(), siteA, bc2)
	if err == nil || !errors.Is(err, vnet.ErrAuth) {
		t.Fatalf("err = %v, want transport auth failure", err)
	}
	siteA.Wait()
	siteB.Wait()
}

func mustFolder(t *testing.T, bc *folder.Briefcase, name string) *folder.Folder {
	t.Helper()
	f, err := bc.Folder(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
