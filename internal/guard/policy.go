package guard

import (
	"path"
	"strings"
	"sync"
	"sync/atomic"
)

// Capability lists what a principal may do at a site. Each list is a set of
// glob patterns (path.Match syntax); nil means unrestricted, while a
// non-nil empty list denies everything. Patterns without metacharacters are
// matched exactly via a hash lookup, so large exact allowlists stay cheap.
type Capability struct {
	// Meet patterns name the agents the holder may meet. The kernel entry
	// agents ag_tacl and rexec, and the billing receiver ag_billing, are
	// always implicitly allowed — without them a visiting agent could
	// neither run nor leave.
	Meet []string
	// Read patterns name the cabinet folders the holder may read.
	Read []string
	// Write patterns name the cabinet folders the holder may mutate.
	Write []string
}

// compiledCap is the match-optimized form of a Capability.
type compiledCap struct {
	meet, read, write *patternSet
}

// patternSet matches a name against exact entries and glob patterns.
// nil *patternSet means unrestricted.
type patternSet struct {
	exact map[string]struct{}
	globs []string
}

func compilePatterns(patterns []string) *patternSet {
	if patterns == nil {
		return nil
	}
	ps := &patternSet{exact: make(map[string]struct{}, len(patterns))}
	for _, p := range patterns {
		if strings.ContainsAny(p, "*?[\\") {
			ps.globs = append(ps.globs, p)
		} else {
			ps.exact[p] = struct{}{}
		}
	}
	return ps
}

func (ps *patternSet) allows(name string) bool {
	if ps == nil {
		return true
	}
	if _, ok := ps.exact[name]; ok {
		return true
	}
	for _, g := range ps.globs {
		if ok, err := path.Match(g, name); err == nil && ok {
			return true
		}
	}
	return false
}

func compileCap(c Capability) *compiledCap {
	return &compiledCap{
		meet:  compilePatterns(c.Meet),
		read:  compilePatterns(c.Read),
		write: compilePatterns(c.Write),
	}
}

// Policy is one site's capability ACL: a map from principal to capability,
// an optional default for principals without an entry, and the firewall
// switches applied at the network boundary. Policies are safe for
// concurrent use; grants take effect immediately.
//
// Reads vastly outnumber mutations (every meet consults the policy, grants
// happen at configuration time), so the state lives in an immutable
// snapshot swapped atomically under a writer mutex — the per-meet read path
// is one atomic load and costs no lock.
type Policy struct {
	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[policySnapshot]
}

// policySnapshot is the immutable compiled state of a Policy.
type policySnapshot struct {
	caps     map[string]*compiledCap
	def      *compiledCap
	firewall bool
	needCash bool
	// permissive short-circuits the whole ACL when nothing is restricted:
	// no grants, no default — the common case for non-security sites.
	permissive bool
}

// NewPolicy returns an empty, permissive policy: every principal (and
// unsigned briefcases) may do anything. Restrictions opt in via Grant,
// SetDefault, and SetFirewall.
func NewPolicy() *Policy {
	p := &Policy{}
	p.snap.Store(&policySnapshot{caps: map[string]*compiledCap{}, permissive: true})
	return p
}

// mutate swaps in a new snapshot derived from the current one.
func (p *Policy) mutate(f func(s *policySnapshot)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.snap.Load()
	next := &policySnapshot{
		caps:     make(map[string]*compiledCap, len(old.caps)+1),
		def:      old.def,
		firewall: old.firewall,
		needCash: old.needCash,
	}
	for k, v := range old.caps {
		next.caps[k] = v
	}
	f(next)
	next.permissive = len(next.caps) == 0 && next.def == nil
	p.snap.Store(next)
}

// Grant installs a capability for a principal, replacing any previous one.
func (p *Policy) Grant(principal string, c Capability) {
	cc := compileCap(c)
	p.mutate(func(s *policySnapshot) { s.caps[principal] = cc })
}

// Revoke removes a principal's capability; it falls back to the default.
func (p *Policy) Revoke(principal string) {
	p.mutate(func(s *policySnapshot) { delete(s.caps, principal) })
}

// SetDefault installs the capability applied to principals without a Grant
// (including unsigned briefcases). A nil default restores permissiveness.
func (p *Policy) SetDefault(c *Capability) {
	var cc *compiledCap
	if c != nil {
		cc = compileCap(*c)
	}
	p.mutate(func(s *policySnapshot) { s.def = cc })
}

// SetFirewall switches firewall mode: inbound network agents must carry a
// valid signature by a known principal holding some capability (explicit or
// default), or they are rejected at the boundary.
func (p *Policy) SetFirewall(on bool) {
	p.mutate(func(s *policySnapshot) { s.firewall = on })
}

// Firewall reports whether firewall mode is on.
func (p *Policy) Firewall() bool { return p.snap.Load().firewall }

// SetRequireCash makes the firewall additionally reject inbound agents that
// carry no electronic cash — the paper's "pay for resources" stance taken
// literally at the door.
func (p *Policy) SetRequireCash(on bool) {
	p.mutate(func(s *policySnapshot) { s.needCash = on })
}

// RequireCash reports whether arrivals must carry funds.
func (p *Policy) RequireCash() bool { return p.snap.Load().needCash }

// capFor resolves the capability governing a principal: its own grant, else
// the default, else nil (unrestricted). principal may be the empty string
// for unsigned briefcases. The byte-slice key avoids allocating on the
// per-meet hot path (map lookups with string(b) do not allocate).
func (s *policySnapshot) capFor(principal []byte) *compiledCap {
	if c, ok := s.caps[string(principal)]; ok {
		return c
	}
	return s.def
}

// hasCapability reports whether the principal has any capability entry —
// what a firewall requires of an arrival (an explicit grant or a default).
func (p *Policy) hasCapability(principal string) bool {
	s := p.snap.Load()
	if _, ok := s.caps[principal]; ok {
		return true
	}
	return s.def != nil
}
