package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cash"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/tacl"
	"repro/internal/vnet"
)

// AgBilling is the system agent receiving billing notices at an agent's
// home site; Install registers it alongside the guard.
const AgBilling = "ag_billing"

// billingShipTimeout bounds the detached delivery of a billing notice.
const billingShipTimeout = 5 * time.Second

// Guard bundles a site's security state — capability policy, signature
// keyring, optional meter — and implements the kernel's core.Guard hook
// interface. Construct with New, then Install at a site.
type Guard struct {
	// Policy is the site's capability ACL and firewall switch (never nil).
	Policy *Policy
	// Keys verifies briefcase signatures at the boundary (never nil).
	Keys *Keyring
	// Meter, if non-nil, charges funded activations for their cycles.
	Meter *Meter

	site *core.Site

	// mcache memoizes the last CheckMeet verdict. An activation performs
	// many meets with the same briefcase under the same policy snapshot,
	// so one entry absorbs most lookups. Keying on the SIG *folder pointer*
	// (not contents) is sound because every operation that changes a
	// briefcase's identity — Sign, network arrival (ReplaceAll), Put —
	// installs a fresh *Folder; and keying on the snapshot pointer
	// invalidates the entry whenever the policy mutates.
	mcache atomic.Pointer[meetVerdict]
}

// meetVerdict is one memoized CheckMeet result.
type meetVerdict struct {
	snap    *policySnapshot
	sig     *folder.Folder
	agent   string
	allowed bool
}

var _ core.Guard = (*Guard)(nil)

// New creates a guard over the given policy and keyring; nil arguments get
// fresh permissive defaults.
func New(policy *Policy, keys *Keyring) *Guard {
	if policy == nil {
		policy = NewPolicy()
	}
	if keys == nil {
		keys = NewKeyring()
	}
	return &Guard{Policy: policy, Keys: keys}
}

// Install attaches the guard to a site: the site's meet path, network
// boundary, cabinet access, and TacL step accounting all start flowing
// through it, and the ag_billing receiver is registered so other sites can
// deliver billing notices here.
func Install(s *core.Site, g *Guard) *Guard {
	if g == nil {
		g = New(nil, nil)
	}
	g.site = s
	s.Register(AgBilling, core.AgentFunc(g.agBilling))
	s.SetGuard(g)
	return g
}

// implicitMeet reports whether the agent is always reachable: ag_tacl and
// rexec are the execution and departure primitives without which a visitor
// could not run or leave, and ag_billing must accept bills from anyone.
func implicitMeet(agent string) bool {
	return agent == core.AgTacl || agent == core.AgRexec || agent == AgBilling
}

// CheckMeet enforces the capability ACL on the meet path. It does no
// cryptography: the principal claim in SIG was verified when the briefcase
// crossed a trust boundary (CheckArrival), and locally injected briefcases
// are the site operator's own.
func (g *Guard) CheckMeet(mc *core.MeetContext, agent string, bc *folder.Briefcase) error {
	snap := g.Policy.snap.Load()
	if snap.permissive || implicitMeet(agent) {
		return nil
	}
	sig := bc.Lookup(SigFolder)
	if v := g.mcache.Load(); v != nil && v.snap == snap && v.sig == sig && v.agent == agent {
		if v.allowed {
			return nil
		}
		return g.refuseMeet(bc, agent)
	}
	cap := snap.capFor(principalOfSig(sig))
	// cap == nil means "no grant and no default". At an open site that is
	// unrestricted; at a firewall site it is a denial — otherwise an
	// admitted agent could shed its SIG folder (or arrive impersonating an
	// unknown principal) and escape the ACL entirely.
	allowed := cap == nil && !snap.firewall || cap != nil && cap.meet.allows(agent)
	g.mcache.Store(&meetVerdict{snap: snap, sig: sig, agent: agent, allowed: allowed})
	if allowed {
		return nil
	}
	return g.refuseMeet(bc, agent)
}

func (g *Guard) refuseMeet(bc *folder.Briefcase, agent string) error {
	return fmt.Errorf("guard: principal %q may not meet %q", Principal(bc), agent)
}

// CheckBriefcase protects the folders the guard's security rests on from
// in-script tampering: an agent must not be able to shed or rewrite its
// identity (SIG) or conjure funds (CASH) with briefcase builtins. Native
// agents (validator, signer) still manage these folders through Go APIs.
func (g *Guard) CheckBriefcase(mc *core.MeetContext, bc *folder.Briefcase, name string) error {
	if name == SigFolder || name == CashFolder || name == HomeFolder {
		return fmt.Errorf("guard: folder %q is guard-managed and cannot be mutated by scripts", name)
	}
	return nil
}

// CheckCabinet enforces the capability ACL on cabinet folder access. As on
// the meet path, "no grant and no default" denies at a firewall site.
func (g *Guard) CheckCabinet(mc *core.MeetContext, bc *folder.Briefcase, name string, write bool) error {
	snap := g.Policy.snap.Load()
	if snap.permissive {
		return nil
	}
	cap := snap.capFor(principalBytes(bc))
	if cap == nil {
		if !snap.firewall {
			return nil
		}
		return fmt.Errorf("guard: principal %q holds no capability for cabinet access", Principal(bc))
	}
	if write {
		if cap.write.allows(name) {
			return nil
		}
		return fmt.Errorf("guard: principal %q may not write cabinet folder %q", Principal(bc), name)
	}
	if cap.read.allows(name) {
		return nil
	}
	return fmt.Errorf("guard: principal %q may not read cabinet folder %q", Principal(bc), name)
}

// CheckArrival is the firewall: it screens inbound network agents before
// any meet is dispatched. A forged signature is rejected unconditionally;
// in firewall mode the briefcase must additionally be signed by a known
// principal holding some capability (billing notices excepted), and—when
// the policy demands it—carry electronic cash.
func (g *Guard) CheckArrival(origin, agent string, bc *folder.Briefcase) error {
	principal, err := Verify(g.Keys, bc)
	firewall := g.Policy.Firewall()
	if err != nil {
		// Unsigned briefcases and signatures by principals this site has
		// no key for are indistinguishable from "not addressed to my trust
		// domain": open sites admit them (a metering-only site must not
		// reject signed agents merely for being signed elsewhere), firewalls
		// refuse them. Only a provably forged signature — known principal,
		// wrong MAC — is hostile everywhere.
		if errors.Is(err, ErrUnsigned) || errors.Is(err, ErrUnknownPrincipal) {
			if !firewall {
				return nil
			}
			if errors.Is(err, ErrUnsigned) {
				return fmt.Errorf("firewall %s: unsigned briefcase from %s refused", g.site.ID(), origin)
			}
			return fmt.Errorf("firewall %s: %w", g.site.ID(), err)
		}
		return fmt.Errorf("firewall %s: %w", g.site.ID(), err)
	}
	if !firewall || agent == AgBilling {
		return nil
	}
	if !g.Policy.hasCapability(principal) {
		return fmt.Errorf("firewall %s: principal %q holds no capability here", g.site.ID(), principal)
	}
	if g.Policy.RequireCash() {
		f, ferr := bc.Folder(CashFolder)
		if ferr != nil || cash.FolderBalance(f) <= 0 {
			return fmt.Errorf("firewall %s: principal %q arrived without funds", g.site.ID(), principal)
		}
	}
	return nil
}

// StepHook implements metered meets: funded activations (briefcase carries
// a CASH folder) are charged the activation fee on their first step and one
// unit per Meter.StepsPerUnit steps thereafter. When the balance cannot
// cover a charge the remaining bills are confiscated, a billing record is
// filed and shipped to the agent's HOME site, and the activation is aborted.
func (g *Guard) StepHook(mc *core.MeetContext, bc *folder.Briefcase) func() error {
	m := g.Meter
	if m == nil || !bc.Has(CashFolder) {
		return nil
	}
	cashF, err := bc.Folder(CashFolder)
	if err != nil {
		return nil
	}
	steps := 0
	var charged int64
	return func() error {
		steps++
		var due int64
		if steps == 1 {
			due += m.ActivationFee
		}
		if m.StepsPerUnit > 0 && steps%m.StepsPerUnit == 0 {
			due++
		}
		if due == 0 {
			return nil
		}
		got, err := m.charge(cashF, due)
		charged += got
		if err == nil {
			return nil
		}
		charged += m.confiscate(cashF)
		rec := BillingRecord{
			Principal: Principal(bc),
			Agent:     mc.Agent,
			Site:      string(g.site.ID()),
			Amount:    charged,
			Steps:     steps,
			Reason:    "budget exhausted: " + err.Error(),
		}
		m.file(rec)
		g.shipBillingHome(bc, rec)
		return fmt.Errorf("guard: agent %q terminated at %s after %d steps: %w",
			rec.Principal, g.site.ID(), steps, err)
	}
}

// shipBillingHome files the record in the local cabinet and, when the
// briefcase names a HOME site, ships a copy there as a detached meet with
// ag_billing — the paper's accountability loop: the launching site sees
// what its agent was billed, even though the agent itself was terminated.
func (g *Guard) shipBillingHome(bc *folder.Briefcase, rec BillingRecord) {
	site := g.site
	site.Cabinet().AppendString(BillingFolder, rec.Encode())
	home, err := bc.GetString(HomeFolder)
	if err != nil || home == "" || home == string(site.ID()) {
		return
	}
	notice := folder.NewBriefcase()
	notice.Ensure(BillingFolder).PushString(rec.Encode())
	// Sign as this site when the keyring knows our key, so firewalled home
	// sites accept the notice.
	if sp := SitePrincipal(site.ID()); g.Keys.Has(sp) {
		if err := Sign(g.Keys, sp, notice, BillingFolder); err != nil {
			site.Cabinet().AppendString("LOG", "guard: sign billing notice: "+err.Error())
		}
	}
	site.Go(func() {
		ctx, cancel := context.WithTimeout(context.Background(), billingShipTimeout)
		defer cancel()
		if err := site.RemoteMeet(ctx, vnet.SiteID(home), AgBilling, notice); err != nil {
			site.Cabinet().AppendString("LOG", "guard: billing notice to "+home+": "+err.Error())
		}
	})
}

// Bind registers the guard-aware TacL builtins for one activation:
//
//	acl_check agent        → 1 if the current principal may meet agent
//	sign_bc principal      → sign this briefcase with a site-held key
//	principal              → the briefcase's (boundary-verified) principal
//	ecu_balance            → total ECU value in the CASH folder
func (g *Guard) Bind(in *tacl.Interp, mc *core.MeetContext, bc *folder.Briefcase) {
	in.Register("acl_check", func(_ *tacl.Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("wrong # args: should be %q", "acl_check agent")
		}
		return tacl.FormatBool(g.CheckMeet(mc, args[0], bc) == nil), nil
	})
	in.Register("sign_bc", func(_ *tacl.Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", fmt.Errorf("wrong # args: should be %q", "sign_bc principal ?folder ...?")
		}
		// HMAC keys are symmetric: any site that can verify a principal
		// can also sign as it. Exposing that to scripts is safe only at a
		// fully permissive site — the operator's own launching site. A
		// site enforcing any capability hosts untrusted visitors, and
		// handing them the pen would let any admitted agent escalate to
		// any enrolled principal.
		if !g.Policy.snap.Load().permissive {
			return "", fmt.Errorf("sign_bc: disabled at sites enforcing capabilities")
		}
		return "", Sign(g.Keys, args[0], bc, args[1:]...)
	})
	in.Register("principal", func(_ *tacl.Interp, args []string) (string, error) {
		return Principal(bc), nil
	})
	in.Register("ecu_balance", func(_ *tacl.Interp, args []string) (string, error) {
		f, err := bc.Folder(CashFolder)
		if err != nil {
			return "0", nil
		}
		return fmt.Sprintf("%d", cash.FolderBalance(f)), nil
	})
}

// agBilling receives billing notices. Notices whose briefcase verifies
// under a site principal ("site/<id>") are filed in the cabinet's BILLING
// folder — the launching party's accountability log; anything else (no
// signature, unknown key, or a non-site principal) is quarantined in
// UnverifiedBillingFolder so a visitor cannot pollute the attested log
// with fabricated bills.
func (g *Guard) agBilling(mc *core.MeetContext, bc *folder.Briefcase) error {
	f, err := bc.Folder(BillingFolder)
	if err != nil {
		return fmt.Errorf("ag_billing: %w", err)
	}
	target := UnverifiedBillingFolder
	if p, err := Verify(g.Keys, bc); err == nil && strings.HasPrefix(p, "site/") {
		target = BillingFolder
	}
	for _, rec := range f.Strings() {
		mc.Site.Cabinet().AppendString(target, rec)
	}
	bc.PutString(folder.ResultFolder, "billed")
	return nil
}
