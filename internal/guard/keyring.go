// Package guard is TACOMA's security and accountability subsystem. The
// paper names security as one of the two hard OS problems for mobile
// agents: sites must defend against hostile agents, agents against hostile
// sites, and the proposed mechanism for accountability is making agents pay
// for resources with electronic cash (section 3).
//
// The subsystem provides four mechanisms, all enforced through the kernel's
// core.Guard hook points:
//
//   - signed briefcases: HMAC signatures over selected folder contents,
//     binding a briefcase to a principal enrolled in a Keyring;
//   - capability ACLs: per-site Policy objects deciding which agents a
//     visiting principal may meet and which cabinet folders it may touch;
//   - firewall sites: a Policy mode under which unsigned or unauthorized
//     inbound agents are rejected at the network boundary;
//   - metered meets: a Meter debiting the electronic-cash balance carried
//     in the briefcase CASH folder as an activation consumes TacL steps,
//     terminating and billing agents that exhaust their budget.
package guard

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/folder"
	"repro/internal/vnet"
)

// Folder names used by the guard subsystem.
const (
	// SigFolder carries the briefcase signature: one element of the form
	// "principal|folder1,folder2|hex-mac".
	SigFolder = "SIG"
	// HomeFolder names the agent's launching site, the return address for
	// billing records. Sign it along with CODE so a hostile site cannot
	// redirect the bill.
	HomeFolder = "HOME"
	// BillingFolder carries billing records (briefcase and cabinet).
	BillingFolder = "BILLING"
	// UnverifiedBillingFolder is the cabinet quarantine for billing
	// notices that do not verify under a site principal.
	UnverifiedBillingFolder = "BILLING-UNVERIFIED"
	// CashFolder is the briefcase folder holding the agent's ECU budget;
	// it matches cash.CashFolder by construction.
	CashFolder = "CASH"
)

// Signature errors.
var (
	// ErrUnsigned is returned when a briefcase carries no SIG folder.
	ErrUnsigned = errors.New("guard: unsigned briefcase")
	// ErrBadSignature is returned when a signature fails to verify.
	ErrBadSignature = errors.New("guard: bad briefcase signature")
	// ErrUnknownPrincipal is returned for principals absent from the keyring.
	ErrUnknownPrincipal = errors.New("guard: unknown principal")
)

// Keyring maps principal names to HMAC signing keys, like cash.KeyRing maps
// contract parties. A launching site enrolls its principals; firewall sites
// need the same keys (distributed out of band) to verify arrivals.
type Keyring struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string][]byte)}
}

// Enroll creates and stores a fresh 32-byte signing key for a principal,
// returning it so the principal (or its launching site) can sign.
func (k *Keyring) Enroll(principal string) []byte {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("guard: crypto/rand unavailable: " + err.Error())
	}
	k.Add(principal, key)
	return key
}

// Add stores an externally distributed key for a principal.
func (k *Keyring) Add(principal string, key []byte) {
	k.mu.Lock()
	k.keys[principal] = append([]byte(nil), key...)
	k.mu.Unlock()
}

// Has reports whether the keyring holds a key for the principal.
func (k *Keyring) Has(principal string) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	_, ok := k.keys[principal]
	return ok
}

// Principals lists enrolled principals in sorted order.
func (k *Keyring) Principals() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, 0, len(k.keys))
	for p := range k.keys {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (k *Keyring) key(principal string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.keys[principal]
	return key, ok
}

// SitePrincipal is the conventional principal name a site signs under when
// it ships billing notices home.
func SitePrincipal(id vnet.SiteID) string { return "site/" + string(id) }

// sigMAC computes the HMAC over the principal name and the canonical
// encodings of the named folders, in the order given. Folder encodings go
// through one pooled scratch buffer: the bytes are consumed by the MAC
// before the buffer is recycled.
func sigMAC(key []byte, principal string, names []string, bc *folder.Briefcase) ([]byte, error) {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(principal))
	mac.Write([]byte{0})
	buf := folder.GetBuffer()
	defer func() { folder.PutBuffer(buf) }()
	for _, n := range names {
		f, err := bc.Folder(n)
		if err != nil {
			return nil, fmt.Errorf("guard: signed folder %q: %w", n, err)
		}
		mac.Write([]byte(n))
		mac.Write([]byte{0})
		buf = folder.AppendFolder(buf[:0], f)
		mac.Write(buf)
	}
	return mac.Sum(nil), nil
}

// Sign signs the named briefcase folders (default: CODE, plus HOME when
// present) under the principal's key and installs the signature in the SIG
// folder, replacing any previous signature. The covered folders must exist
// and their contents must be byte-identical at verification time — for a
// roaming TacL agent the CODE folder is restored before each hop, so one
// signature covers the whole itinerary.
func Sign(k *Keyring, principal string, bc *folder.Briefcase, folders ...string) error {
	key, ok := k.key(principal)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPrincipal, principal)
	}
	if strings.ContainsAny(principal, "|,") {
		return fmt.Errorf("guard: principal %q may not contain '|' or ','", principal)
	}
	if len(folders) == 0 {
		folders = []string{folder.CodeFolder}
		if bc.Has(HomeFolder) {
			folders = append(folders, HomeFolder)
		}
	}
	names := append([]string(nil), folders...)
	sort.Strings(names)
	for _, n := range names {
		if strings.ContainsAny(n, "|,") {
			return fmt.Errorf("guard: folder name %q may not contain '|' or ','", n)
		}
	}
	sum, err := sigMAC(key, principal, names, bc)
	if err != nil {
		return err
	}
	bc.PutString(SigFolder,
		principal+"|"+strings.Join(names, ",")+"|"+hex.EncodeToString(sum))
	// The signature itself is immutable from here on: freezing the SIG
	// folder instance means no agent — native or scripted — can corrupt it
	// in place; re-signing installs a fresh folder. (TacL builtins refuse
	// frozen-folder mutations with an error; see taclbind.)
	if f := bc.Lookup(SigFolder); f != nil {
		f.Freeze()
	}
	return nil
}

// Principal returns the briefcase's claimed principal without verifying the
// signature ("" when unsigned). Signatures are verified at trust boundaries
// (network arrival, firewall); within a site the claim is trusted, which
// keeps the per-meet ACL check free of crypto.
func Principal(bc *folder.Briefcase) string {
	p := principalBytes(bc)
	if p == nil {
		return ""
	}
	return string(p)
}

// principalBytes is the allocation-free form of Principal for hot paths:
// one briefcase lookup, an aliased element read, and a scan to '|'.
func principalBytes(bc *folder.Briefcase) []byte {
	return principalOfSig(bc.Lookup(SigFolder))
}

// principalOfSig extracts the claimed principal from a SIG folder (nil for
// unsigned).
func principalOfSig(f *folder.Folder) []byte {
	if f == nil {
		return nil
	}
	el := f.RawAt(0)
	for i, c := range el {
		if c == '|' {
			return el[:i]
		}
	}
	return nil
}

// Verify checks the briefcase signature against the keyring and returns the
// verified principal. It returns ErrUnsigned for briefcases without a SIG
// folder, ErrUnknownPrincipal when the keyring has no key for the claimed
// principal, and ErrBadSignature when the MAC does not match the current
// contents of the covered folders.
func Verify(k *Keyring, bc *folder.Briefcase) (string, error) {
	if !bc.Has(SigFolder) {
		return "", ErrUnsigned
	}
	raw, err := bc.GetString(SigFolder)
	if err != nil {
		return "", ErrUnsigned
	}
	parts := strings.SplitN(raw, "|", 3)
	if len(parts) != 3 {
		return "", fmt.Errorf("%w: malformed SIG %q", ErrBadSignature, raw)
	}
	principal, list, sig := parts[0], parts[1], parts[2]
	key, ok := k.key(principal)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownPrincipal, principal)
	}
	var names []string
	if list != "" {
		names = strings.Split(list, ",")
	}
	want, err := sigMAC(key, principal, names, bc)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	got, err := hex.DecodeString(sig)
	if err != nil || !hmac.Equal(want, got) {
		return "", fmt.Errorf("%w: principal %q", ErrBadSignature, principal)
	}
	return principal, nil
}
