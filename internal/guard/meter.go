package guard

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cash"
	"repro/internal/folder"
)

// Meter charges visiting agents electronic cash for the cycles they burn,
// wiring the kernel's step accounting into the cash subsystem: each TacL
// activation of a funded agent debits the ECU balance carried in its
// briefcase CASH folder. An agent whose balance runs dry is terminated and
// its remaining bills are confiscated — "charging for services would limit
// possible damage by a run-away agent" (§3).
type Meter struct {
	// StepsPerUnit charges one currency unit per this many TacL steps
	// (0 disables per-step charging).
	StepsPerUnit int
	// ActivationFee is charged once at the start of each activation.
	ActivationFee int64
	// Mint, if non-nil, is the trusted validation authority: every bill
	// withdrawn from an agent is validated (retired and reissued) before
	// it counts as revenue, exactly as the cash package prescribes for
	// any recipient. Without it the meter accepts bills at face value —
	// acceptable only when the treasury's own downstream spending
	// validates, since a forged bill would then be caught there.
	Mint *cash.Mint

	mu       sync.Mutex
	treasury *cash.Wallet
	earned   int64
	records  []BillingRecord
}

// NewMeter creates a meter charging activationFee per activation plus one
// unit per stepsPerUnit interpreter steps.
func NewMeter(stepsPerUnit int, activationFee int64) *Meter {
	return &Meter{
		StepsPerUnit:  stepsPerUnit,
		ActivationFee: activationFee,
		treasury:      cash.NewWallet(),
	}
}

// Treasury returns the wallet collecting the site's metering revenue.
func (m *Meter) Treasury() *cash.Wallet { return m.treasury }

// Earned reports total revenue collected by this meter.
func (m *Meter) Earned() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.earned
}

// Records returns a copy of all billing records filed at this meter.
func (m *Meter) Records() []BillingRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]BillingRecord(nil), m.records...)
}

// charge debits amount from the briefcase CASH folder into the treasury and
// returns the value actually collected (which may exceed amount: bills are
// indivisible and overshoot is kept, the incentive to carry small
// denominations). On ErrInsufficient nothing is collected. With a Mint
// configured, withdrawn bills are validated first; counterfeit or
// double-spent bills are confiscated as evidence (per the validator's
// protocol), collect nothing, and fail the charge — terminating the agent.
func (m *Meter) charge(f *folder.Folder, amount int64) (int64, error) {
	bills, err := cash.WithdrawFromFolder(f, amount)
	if err != nil {
		return 0, err
	}
	if m.Mint != nil {
		fresh, err := m.Mint.Validate(bills, nil)
		if err != nil {
			return 0, fmt.Errorf("counterfeit payment: %w", err)
		}
		bills = fresh
	}
	m.deposit(bills)
	return cash.Total(bills), nil
}

// confiscate drains every remaining bill into the treasury — the terminal
// debit when an agent exceeds its budget. Forged remainders are kept only
// as evidence, not revenue.
func (m *Meter) confiscate(f *folder.Folder) int64 {
	bills := cash.DrainFolder(f)
	if m.Mint != nil && len(bills) > 0 {
		fresh, err := m.Mint.Validate(bills, nil)
		if err != nil {
			return 0
		}
		bills = fresh
	}
	m.deposit(bills)
	return cash.Total(bills)
}

func (m *Meter) deposit(bills []cash.ECU) {
	if len(bills) == 0 {
		return
	}
	m.treasury.Add(bills...)
	m.mu.Lock()
	m.earned += cash.Total(bills)
	m.mu.Unlock()
}

func (m *Meter) file(r BillingRecord) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// BillingRecord documents one accountability event: which principal was
// charged how much at which site, and why. Records are filed at the
// metering site and shipped to the agent's HOME site so the launching party
// sees the bill.
type BillingRecord struct {
	Principal string
	Agent     string
	Site      string
	Amount    int64
	Steps     int
	Reason    string
}

// Encode renders the record as a folder element.
func (r BillingRecord) Encode() string {
	return strings.Join([]string{
		r.Principal, r.Agent, r.Site,
		strconv.FormatInt(r.Amount, 10), strconv.Itoa(r.Steps), r.Reason,
	}, "|")
}

// DecodeBillingRecord parses a folder element into a billing record.
func DecodeBillingRecord(s string) (BillingRecord, error) {
	parts := strings.SplitN(s, "|", 6)
	if len(parts) != 6 {
		return BillingRecord{}, fmt.Errorf("guard: malformed billing record %q", s)
	}
	amount, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return BillingRecord{}, fmt.Errorf("guard: bad amount in billing record %q", s)
	}
	steps, err := strconv.Atoi(parts[4])
	if err != nil {
		return BillingRecord{}, fmt.Errorf("guard: bad steps in billing record %q", s)
	}
	return BillingRecord{
		Principal: parts[0], Agent: parts[1], Site: parts[2],
		Amount: amount, Steps: steps, Reason: parts[5],
	}, nil
}
