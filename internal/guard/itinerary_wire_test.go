package guard

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// TestItineraryShipsSIGBytesOncePerLink is the wire-protocol-v2 byte
// counter for the paper's core workload: a signed agent carrying its frozen
// SIG folder around a multi-hop itinerary. The signature is created once at
// launch and stays byte-identical on every hop (jump restores CODE before
// each move), so after the first traversal of a link the SIG folder must
// cross as a 32-byte content ref — full SIG bytes ship exactly once per
// directed link, never per hop.
func TestItineraryShipsSIGBytesOncePerLink(t *testing.T) {
	sys := core.NewNamedSystem([]vnet.SiteID{"A", "B", "C"}, core.SystemConfig{Seed: 7})
	defer sys.Wait()

	// Wire accounting: every delta-eligible folder entry any site encodes,
	// keyed by (encoder, peer, folder, kind).
	type key struct {
		from, to vnet.SiteID
		name     string
		tag      byte
	}
	var mu sync.Mutex
	entries := make(map[key]int)
	fullSizes := make(map[key]int)
	for _, id := range sys.Names() {
		id := id
		sys.Site(id).SetWireRecorder(func(peer vnet.SiteID, name string, tag byte, n int) {
			mu.Lock()
			k := key{id, peer, name, tag}
			entries[k]++
			if tag == folder.EntryFullCached {
				fullSizes[k] = n
			}
			mu.Unlock()
		})
	}

	keys := NewKeyring()
	keys.Enroll("traveler")

	// Two full loops of the ring: A→B→C→A→B→C→A. The second traversal of
	// every link must ref SIG (and CODE) instead of re-shipping bytes.
	// The filler line keeps the CODE folder over the mutable-folder delta
	// threshold, as any realistic agent script would be.
	script := `
set mission "survey the ring, one TRAIL entry per station, then report home"
bc_push TRAIL [host]
if {[bc_len HOPS] > 0} {
	set next [bc_dequeue HOPS]
	jump $next
}
bc_push TRAIL done
`
	bc, err := SignedScript(keys, "traveler", "A", script, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc.Put("HOPS", folder.OfStrings("B", "C", "A", "B", "C", "A"))
	if err := Launch(context.Background(), sys.Site("A"), bc); err != nil {
		t.Fatal(err)
	}

	trail, err := bc.Folder("TRAIL")
	if err != nil || trail.Len() != 8 { // launch + 6 hops + "done"
		t.Fatalf("TRAIL = %v (err %v), want 8 stations", trail, err)
	}

	mu.Lock()
	defer mu.Unlock()
	links := [][2]vnet.SiteID{{"A", "B"}, {"B", "C"}, {"C", "A"}}
	var sigSize int
	for _, l := range links {
		kFull := key{l[0], l[1], SigFolder, folder.EntryFullCached}
		kRef := key{l[0], l[1], SigFolder, folder.EntryRef}
		if got := entries[kFull]; got != 1 {
			t.Errorf("link %s→%s shipped full SIG bytes %d times, want exactly 1", l[0], l[1], got)
		}
		if got := entries[kRef]; got < 1 {
			t.Errorf("link %s→%s never shipped SIG as a ref (second loop leaked bytes)", l[0], l[1])
		}
		if sigSize == 0 {
			sigSize = fullSizes[kFull]
		} else if fullSizes[kFull] != sigSize {
			t.Errorf("link %s→%s SIG encoding size %d != %d (SIG not byte-identical across hops)",
				l[0], l[1], fullSizes[kFull], sigSize)
		}
		// CODE is restored byte-identically before each hop, so it obeys
		// the same once-per-link rule.
		if got := entries[key{l[0], l[1], folder.CodeFolder, folder.EntryFullCached}]; got != 1 {
			t.Errorf("link %s→%s shipped full CODE bytes %d times, want exactly 1", l[0], l[1], got)
		}
	}
	// Replies carry SIG back down the nested meet chain; every one of those
	// must be a ref (the request pinned it), never full bytes.
	for k, n := range entries {
		if k.name == SigFolder && k.tag == folder.EntryFullCached {
			found := false
			for _, l := range links {
				if k.from == l[0] && k.to == l[1] {
					found = true
				}
			}
			if !found {
				t.Errorf("unexpected full SIG ship on %s→%s (%d times) — replies must ref", k.from, k.to, n)
			}
		}
	}
}
