package guard

import (
	"context"

	"repro/internal/core"
	"repro/internal/folder"
)

// SignedScript prepares a briefcase for a signed roaming TacL agent: the
// script becomes the sole CODE element, home (when non-empty) is recorded
// as the billing return address, and the briefcase is signed under the
// principal's key, covering CODE (and HOME). Because ag_tacl pops the
// script before running it and jump pushes it back before each hop, the
// CODE folder holds exactly this one element whenever the briefcase crosses
// a site boundary — so the one signature stays valid for the whole
// itinerary.
//
// Use Launch (not core.RunScript, which pushes a second CODE copy and would
// break the signature) to start the agent.
func SignedScript(k *Keyring, principal, home, src string, bc *folder.Briefcase) (*folder.Briefcase, error) {
	if bc == nil {
		bc = folder.NewBriefcase()
	}
	if home != "" {
		bc.PutString(HomeFolder, home)
	}
	bc.Put(folder.CodeFolder, folder.OfStrings(src))
	if err := Sign(k, principal, bc); err != nil {
		return nil, err
	}
	return bc, nil
}

// Launch starts a prepared signed agent at a site by meeting ag_tacl with
// its briefcase. It blocks until the agent's computation terminates (or is
// refused/terminated by a guard somewhere along its itinerary).
func Launch(ctx context.Context, s *core.Site, bc *folder.Briefcase) error {
	return s.MeetClient(ctx, core.AgTacl, bc)
}
