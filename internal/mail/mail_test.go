package mail

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
)

func mailSystem(t *testing.T, n int) *core.System {
	t.Helper()
	sys := core.NewSystem(n, core.SystemConfig{Seed: 9, CallTimeout: 50 * time.Millisecond})
	for i := 0; i < n; i++ {
		InstallMailbox(sys.SiteAt(i))
	}
	t.Cleanup(sys.Wait)
	return sys
}

func TestMessageEncodeDecode(t *testing.T) {
	m := Message{From: "dag@site-0", To: "fred@site-1", Subject: "agents", Body: "line1\nline2 | with pipes"}
	back, err := ParseMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip: %+v vs %+v", back, m)
	}
	if _, err := ParseMessage("no separators at all"); err == nil {
		t.Fatal("malformed message parsed")
	}
}

func TestAddress(t *testing.T) {
	u, s, err := Address("robbert@site-2")
	if err != nil || u != "robbert" || s != "site-2" {
		t.Fatalf("Address = %q, %q, %v", u, s, err)
	}
	for _, bad := range []string{"", "nosite", "@site", "user@"} {
		if _, _, err := Address(bad); err == nil {
			t.Errorf("Address(%q) succeeded", bad)
		}
	}
}

func TestSendAndRead(t *testing.T) {
	sys := mailSystem(t, 3)
	msg := Message{From: "dag@site-0", To: "fred@site-2", Subject: "hello", Body: "greetings from Tromso"}
	if err := Send(context.Background(), sys.SiteAt(0), msg, false); err != nil {
		t.Fatal(err)
	}
	headers, err := List(context.Background(), sys.SiteAt(0), "fred", "site-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 1 || headers[0].Subject != "hello" {
		t.Fatalf("headers = %v", headers)
	}
	got, err := Fetch(context.Background(), sys.SiteAt(0), "fred", "site-2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("fetched %+v", got)
	}
}

func TestSendWithReceipt(t *testing.T) {
	sys := mailSystem(t, 2)
	msg := Message{From: "dag@site-0", To: "fred@site-1", Subject: "rsvp", Body: "please confirm"}
	if err := Send(context.Background(), sys.SiteAt(0), msg, true); err != nil {
		t.Fatal(err)
	}
	// The message agent came back and deposited a receipt for dag.
	receipts := Receipts(sys.SiteAt(0), "dag")
	if len(receipts) != 1 {
		t.Fatalf("receipts = %v", receipts)
	}
	// And the message itself was delivered.
	headers, err := List(context.Background(), sys.SiteAt(0), "fred", "site-1")
	if err != nil || len(headers) != 1 {
		t.Fatalf("headers = %v, %v", headers, err)
	}
}

func TestSendSameSite(t *testing.T) {
	sys := mailSystem(t, 1)
	msg := Message{From: "a@site-0", To: "b@site-0", Subject: "local", Body: "x"}
	if err := Send(context.Background(), sys.SiteAt(0), msg, false); err != nil {
		t.Fatal(err)
	}
	headers, err := List(context.Background(), sys.SiteAt(0), "b", "site-0")
	if err != nil || len(headers) != 1 {
		t.Fatalf("headers = %v, %v", headers, err)
	}
}

func TestSendValidation(t *testing.T) {
	sys := mailSystem(t, 2)
	cases := []Message{
		{From: "bad-address", To: "b@site-1"},
		{From: "a@site-1", To: "b@site-0"}, // sender not at injection site
		{From: "a@site-0", To: "nowhere"},
	}
	for _, msg := range cases {
		if err := Send(context.Background(), sys.SiteAt(0), msg, false); err == nil {
			t.Errorf("Send(%+v) succeeded", msg)
		}
	}
}

func TestMultipleMessagesOrdered(t *testing.T) {
	sys := mailSystem(t, 2)
	for i, subj := range []string{"first", "second", "third"} {
		msg := Message{From: "a@site-0", To: "b@site-1", Subject: subj, Body: strings.Repeat("x", i)}
		if err := Send(context.Background(), sys.SiteAt(0), msg, false); err != nil {
			t.Fatal(err)
		}
	}
	headers, err := List(context.Background(), sys.SiteAt(0), "b", "site-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 || headers[0].Subject != "first" || headers[2].Subject != "third" {
		t.Fatalf("headers = %v", headers)
	}
}

func TestDelete(t *testing.T) {
	sys := mailSystem(t, 2)
	for _, subj := range []string{"keep-0", "remove", "keep-1"} {
		msg := Message{From: "a@site-0", To: "b@site-1", Subject: subj, Body: "."}
		if err := Send(context.Background(), sys.SiteAt(0), msg, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := Delete(context.Background(), sys.SiteAt(0), "b", "site-1", 1); err != nil {
		t.Fatal(err)
	}
	headers, _ := List(context.Background(), sys.SiteAt(0), "b", "site-1")
	if len(headers) != 2 {
		t.Fatalf("headers = %v", headers)
	}
	for _, h := range headers {
		if h.Subject == "remove" {
			t.Fatalf("deleted message still listed: %v", headers)
		}
	}
	if err := Delete(context.Background(), sys.SiteAt(0), "b", "site-1", 99); err == nil {
		t.Fatal("delete of missing index succeeded")
	}
}

func TestFetchErrors(t *testing.T) {
	sys := mailSystem(t, 2)
	if _, err := Fetch(context.Background(), sys.SiteAt(0), "nobody", "site-1", 0); err == nil {
		t.Fatal("fetch from empty mailbox succeeded")
	}
}

func TestMailboxSeparatesUsers(t *testing.T) {
	sys := mailSystem(t, 2)
	a := Message{From: "x@site-0", To: "alice@site-1", Subject: "for alice", Body: "."}
	b := Message{From: "x@site-0", To: "bob@site-1", Subject: "for bob", Body: "."}
	if err := Send(context.Background(), sys.SiteAt(0), a, false); err != nil {
		t.Fatal(err)
	}
	if err := Send(context.Background(), sys.SiteAt(0), b, false); err != nil {
		t.Fatal(err)
	}
	ha, _ := List(context.Background(), sys.SiteAt(0), "alice", "site-1")
	hb, _ := List(context.Background(), sys.SiteAt(0), "bob", "site-1")
	if len(ha) != 1 || len(hb) != 1 {
		t.Fatalf("alice=%v bob=%v", ha, hb)
	}
	if ha[0].Subject != "for alice" || hb[0].Subject != "for bob" {
		t.Fatalf("crossed mailboxes: alice=%v bob=%v", ha, hb)
	}
}

func TestMailboxOpValidation(t *testing.T) {
	sys := mailSystem(t, 1)
	site := sys.SiteAt(0)
	// Unknown op.
	bc := newBC("explode", "u")
	if err := site.MeetClient(context.Background(), AgMailbox, bc); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Deposit of malformed message.
	bc = newBC("deposit", "u")
	bc.PutString(MsgFolder, "garbage-without-separators")
	if err := site.MeetClient(context.Background(), AgMailbox, bc); err == nil {
		t.Fatal("malformed deposit accepted")
	}
}

func newBC(op, user string) *folder.Briefcase {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, op)
	bc.PutString(UserFolder, user)
	return bc
}

func TestDepositWakesParkedAgent(t *testing.T) {
	// A resident agent parks watching fred's mailbox folder; depositing
	// mail must wake it — no polling goroutine anywhere in between.
	sys := mailSystem(t, 2)
	site := sys.SiteAt(1)
	script := `
		if {![bc_has PARK_HOP]} {
			park fred-watcher MBOX:fred
		}
		cab_append WOKE [cab_len MBOX:fred]
	`
	if _, err := core.RunScript(context.Background(), site, script, nil); err != nil {
		t.Fatal(err)
	}
	if !site.IsParked("fred-watcher") || site.ParkedCount() != 1 {
		t.Fatalf("watcher not parked: count=%d", site.ParkedCount())
	}
	msg := Message{From: "dag@site-0", To: "fred@site-1", Subject: "wake up", Body: "."}
	if err := Send(context.Background(), sys.SiteAt(0), msg, false); err != nil {
		t.Fatal(err)
	}
	sys.Wait() // the wakeup is tracked scheduler work; quiesce covers it
	woke := site.Cabinet().Snapshot("WOKE").Strings()
	if len(woke) != 1 || woke[0] != "1" {
		t.Fatalf("WOKE = %v", woke)
	}
	if site.IsParked("fred-watcher") {
		t.Fatal("watcher still parked after its script completed")
	}
}

func TestMessageBodyWithTaclSpecials(t *testing.T) {
	// Message bodies travel inside a TacL agent's briefcase: braces,
	// brackets, dollars, and quotes must survive untouched because
	// folders are uninterpreted bytes, never re-parsed as code.
	sys := mailSystem(t, 2)
	msg := Message{
		From:    "a@site-0",
		To:      "b@site-1",
		Subject: `tricky {subject} [with] "specials"`,
		Body:    "set x $injection; [error boom] \\ {unbalanced",
	}
	if err := Send(context.Background(), sys.SiteAt(0), msg, true); err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(context.Background(), sys.SiteAt(0), "b", "site-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("message mangled:\n%+v\nvs\n%+v", got, msg)
	}
}
