// Package mail implements the paper's second evaluation application: "an
// interactive mail system where messages are implemented by agents".
//
// A message is a TacL agent that carries its own headers and body in its
// briefcase, jumps to the recipient's site, deposits itself in the
// recipient's mailbox (a site-local file cabinet folder), and — because a
// message is an agent, not inert data — optionally travels back to the
// sender's site to deposit a delivery receipt. Mailboxes are served by a
// mailbox agent; user programs read mail by meeting it.
package mail

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// ErrMalformed reports a mailbox entry that does not decode as a message.
// Deposits are validated on the way in, so hitting it from List or Fetch
// means the cabinet folder was mutated outside the mail protocol.
var ErrMalformed = errors.New("mail: malformed message")

// AgMailbox is the mailbox agent registered at every mail site.
const AgMailbox = "mailbox"

// Mailbox briefcase protocol folders.
const (
	OpFolder      = "OP"      // deposit | list | fetch | delete | receipt
	UserFolder    = "USER"    // mailbox owner
	MsgFolder     = "MSG"     // encoded message (deposit) or fetched copy
	IndexFolder   = "INDEX"   // message index for fetch/delete
	HeadersFolder = "HEADERS" // list results
)

// Message is one piece of agent mail.
type Message struct {
	From    string // user@site
	To      string // user@site
	Subject string
	Body    string
}

// Encode renders the message as a single folder element. The body may
// contain any characters; it is stored after headers as the tail.
func (m Message) Encode() string {
	return strings.Join([]string{m.From, m.To, m.Subject, m.Body}, "\x1f")
}

// ParseMessage decodes an encoded message; failures wrap ErrMalformed.
func ParseMessage(s string) (Message, error) {
	parts := strings.SplitN(s, "\x1f", 4)
	if len(parts) != 4 {
		return Message{}, fmt.Errorf("%w: %q", ErrMalformed, s)
	}
	return Message{From: parts[0], To: parts[1], Subject: parts[2], Body: parts[3]}, nil
}

// Address splits "user@site".
func Address(addr string) (user string, site vnet.SiteID, err error) {
	u, s, ok := strings.Cut(addr, "@")
	if !ok || u == "" || s == "" {
		return "", "", fmt.Errorf("mail: bad address %q", addr)
	}
	return u, vnet.SiteID(s), nil
}

func mboxFolder(user string) string    { return "MBOX:" + user }
func receiptFolder(user string) string { return "RECEIPTS:" + user }

// InstallMailbox registers the mailbox agent at a site.
func InstallMailbox(site *core.Site) {
	site.Register(AgMailbox, core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		op, err := bc.GetString(OpFolder)
		if err != nil {
			return fmt.Errorf("mailbox: missing OP: %w", err)
		}
		user, err := bc.GetString(UserFolder)
		if err != nil {
			return fmt.Errorf("mailbox: missing USER: %w", err)
		}
		cab := mc.Site.Cabinet()
		switch op {
		case "deposit":
			raw, err := bc.GetString(MsgFolder)
			if err != nil {
				return fmt.Errorf("mailbox: missing MSG: %w", err)
			}
			if _, err := ParseMessage(raw); err != nil {
				return err
			}
			cab.AppendString(mboxFolder(user), raw)
			// A deposit is a wakeup: any agent parked watching this mailbox
			// folder gets its task enqueued — no goroutine polls a mailbox.
			mc.Site.Wake(mboxFolder(user))
			return nil
		case "receipt":
			raw, err := bc.GetString(MsgFolder)
			if err != nil {
				return fmt.Errorf("mailbox: missing MSG: %w", err)
			}
			cab.AppendString(receiptFolder(user), raw)
			mc.Site.Wake(receiptFolder(user))
			return nil
		case "list":
			// Headers travel as raw encoded messages; the client side
			// (List) parses them into typed Messages. Older "i: from:
			// subject" strings were unparseable the moment a caller wanted
			// the subject back.
			headers := folder.New()
			for _, raw := range cab.Snapshot(mboxFolder(user)).Strings() {
				headers.PushString(raw)
			}
			bc.Put(HeadersFolder, headers)
			return nil
		case "fetch":
			idx, err := mboxIndex(bc)
			if err != nil {
				return err
			}
			msgs := cab.Snapshot(mboxFolder(user))
			raw, err := msgs.StringAt(idx)
			if err != nil {
				return fmt.Errorf("mailbox: no message %d for %s: %w", idx, user, err)
			}
			bc.PutString(MsgFolder, raw)
			return nil
		case "delete":
			idx, err := mboxIndex(bc)
			if err != nil {
				return err
			}
			// In place under the cabinet's shard lock: a snapshot/remove/put
			// sequence here would silently drop any message deposited between
			// the snapshot and the put.
			if err := cab.RemoveAt(mboxFolder(user), idx); err != nil {
				return fmt.Errorf("mailbox: no message %d for %s: %w", idx, user, err)
			}
			return nil
		default:
			return fmt.Errorf("mailbox: unknown op %q", op)
		}
	}))
}

func mboxIndex(bc *folder.Briefcase) (int, error) {
	s, err := bc.GetString(IndexFolder)
	if err != nil {
		return 0, fmt.Errorf("mailbox: missing INDEX: %w", err)
	}
	idx, err := strconv.Atoi(s)
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("mailbox: bad INDEX %q", s)
	}
	return idx, nil
}

// messageScript is the mail agent: jump to the recipient's site, deposit
// the carried message, then (if a receipt was requested) travel on to the
// sender's site and deposit a receipt. The message is code + data moving
// itself — not a payload pushed by infrastructure.
const messageScript = `
	if {[bc_get PHASE 0] eq "outbound"} {
		bc_set PHASE 0 deliver
		jump [bc_get DEST 0]
	}
	if {[bc_get PHASE 0] eq "deliver"} {
		bc_push OP deposit
		meet mailbox
		bc_del OP
		if {[bc_get WANTRECEIPT 0] eq "1"} {
			bc_set PHASE 0 receipt
			jump [bc_get HOME 0]
		}
	}
	if {[bc_get PHASE 0] eq "receipt"} {
		bc_push OP receipt
		bc_set USER 0 [bc_get SENDER 0]
		meet mailbox
		bc_del OP
	}
`

// Send mails a message: it builds the message agent and injects it at the
// sender's site, from which it migrates itself. Send is synchronous: it
// returns once the message agent has finished its journey (including the
// receipt leg when requested).
func Send(ctx context.Context, from *core.Site, msg Message, wantReceipt bool) error {
	fromUser, fromSite, err := Address(msg.From)
	if err != nil {
		return err
	}
	if fromSite != from.ID() {
		return fmt.Errorf("mail: sender %s is not at site %s", msg.From, from.ID())
	}
	toUser, toSite, err := Address(msg.To)
	if err != nil {
		return err
	}
	bc := folder.NewBriefcase()
	bc.PutString("PHASE", "outbound")
	bc.PutString("DEST", string(toSite))
	bc.PutString("HOME", string(fromSite))
	bc.PutString(UserFolder, toUser)
	bc.PutString("SENDER", fromUser)
	bc.PutString(MsgFolder, msg.Encode())
	receipt := "0"
	if wantReceipt {
		receipt = "1"
	}
	bc.PutString("WANTRECEIPT", receipt)
	_, err = core.RunScript(ctx, from, messageScript, bc)
	return err
}

// List returns the messages in a user's mailbox at a site, in mailbox
// order (the order Fetch and Delete index by, as of the snapshot the
// mailbox agent took). A mailbox entry that does not decode fails the
// whole listing with an error wrapping ErrMalformed — deposits are
// validated, so a corrupt entry means out-of-band cabinet tampering, and
// silently skipping it would shift every later index.
func List(ctx context.Context, client *core.Site, user string, at vnet.SiteID) ([]Message, error) {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "list")
	bc.PutString(UserFolder, user)
	if err := client.Meet(ctx, AgMailbox, bc, core.At(at)); err != nil {
		return nil, err
	}
	h, err := bc.Folder(HeadersFolder)
	if err != nil {
		return nil, err
	}
	raws := h.Strings()
	msgs := make([]Message, 0, len(raws))
	for i, raw := range raws {
		m, err := ParseMessage(raw)
		if err != nil {
			return nil, fmt.Errorf("mail: mailbox %s at %s, entry %d: %w", user, at, i, err)
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// Fetch retrieves message idx from a user's mailbox.
//
// Index contract: idx is a position in the mailbox folder at the moment
// the mailbox agent serves the meet, i.e. the order List returned. Indexes
// are not stable handles — a concurrent Delete (cabinet RemoveAt) shifts
// every later message down by one, and a concurrent deposit appends. A
// reader racing writers must be prepared for ErrMalformed-free misses
// ("no message idx") or fetching a neighbor of the message it listed;
// read-modify-delete sequences should be serialized per mailbox by the
// application.
func Fetch(ctx context.Context, client *core.Site, user string, at vnet.SiteID, idx int) (Message, error) {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "fetch")
	bc.PutString(UserFolder, user)
	bc.PutString(IndexFolder, strconv.Itoa(idx))
	if err := client.RemoteMeet(ctx, at, AgMailbox, bc); err != nil {
		return Message{}, err
	}
	raw, err := bc.GetString(MsgFolder)
	if err != nil {
		return Message{}, err
	}
	return ParseMessage(raw)
}

// Delete removes message idx from a user's mailbox.
func Delete(ctx context.Context, client *core.Site, user string, at vnet.SiteID, idx int) error {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "delete")
	bc.PutString(UserFolder, user)
	bc.PutString(IndexFolder, strconv.Itoa(idx))
	return client.RemoteMeet(ctx, at, AgMailbox, bc)
}

// Receipts returns the delivery receipts deposited for a sender at a site.
func Receipts(site *core.Site, user string) []string {
	return site.Cabinet().Snapshot(receiptFolder(user)).Strings()
}
