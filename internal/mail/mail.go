// Package mail implements the paper's second evaluation application: "an
// interactive mail system where messages are implemented by agents".
//
// A message is a TacL agent that carries its own headers and body in its
// briefcase, jumps to the recipient's site, deposits itself in the
// recipient's mailbox (a site-local file cabinet folder), and — because a
// message is an agent, not inert data — optionally travels back to the
// sender's site to deposit a delivery receipt. Mailboxes are served by a
// mailbox agent; user programs read mail by meeting it.
package mail

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// AgMailbox is the mailbox agent registered at every mail site.
const AgMailbox = "mailbox"

// Mailbox briefcase protocol folders.
const (
	OpFolder      = "OP"      // deposit | list | fetch | delete | receipt
	UserFolder    = "USER"    // mailbox owner
	MsgFolder     = "MSG"     // encoded message (deposit) or fetched copy
	IndexFolder   = "INDEX"   // message index for fetch/delete
	HeadersFolder = "HEADERS" // list results
)

// Message is one piece of agent mail.
type Message struct {
	From    string // user@site
	To      string // user@site
	Subject string
	Body    string
}

// Encode renders the message as a single folder element. The body may
// contain any characters; it is stored after headers as the tail.
func (m Message) Encode() string {
	return strings.Join([]string{m.From, m.To, m.Subject, m.Body}, "\x1f")
}

// ParseMessage decodes an encoded message.
func ParseMessage(s string) (Message, error) {
	parts := strings.SplitN(s, "\x1f", 4)
	if len(parts) != 4 {
		return Message{}, fmt.Errorf("mail: malformed message %q", s)
	}
	return Message{From: parts[0], To: parts[1], Subject: parts[2], Body: parts[3]}, nil
}

// Address splits "user@site".
func Address(addr string) (user string, site vnet.SiteID, err error) {
	u, s, ok := strings.Cut(addr, "@")
	if !ok || u == "" || s == "" {
		return "", "", fmt.Errorf("mail: bad address %q", addr)
	}
	return u, vnet.SiteID(s), nil
}

func mboxFolder(user string) string    { return "MBOX:" + user }
func receiptFolder(user string) string { return "RECEIPTS:" + user }

// InstallMailbox registers the mailbox agent at a site.
func InstallMailbox(site *core.Site) {
	site.Register(AgMailbox, core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		op, err := bc.GetString(OpFolder)
		if err != nil {
			return fmt.Errorf("mailbox: missing OP: %w", err)
		}
		user, err := bc.GetString(UserFolder)
		if err != nil {
			return fmt.Errorf("mailbox: missing USER: %w", err)
		}
		cab := mc.Site.Cabinet()
		switch op {
		case "deposit":
			raw, err := bc.GetString(MsgFolder)
			if err != nil {
				return fmt.Errorf("mailbox: missing MSG: %w", err)
			}
			if _, err := ParseMessage(raw); err != nil {
				return err
			}
			cab.AppendString(mboxFolder(user), raw)
			return nil
		case "receipt":
			raw, err := bc.GetString(MsgFolder)
			if err != nil {
				return fmt.Errorf("mailbox: missing MSG: %w", err)
			}
			cab.AppendString(receiptFolder(user), raw)
			return nil
		case "list":
			headers := folder.New()
			for i, raw := range cab.Snapshot(mboxFolder(user)).Strings() {
				m, err := ParseMessage(raw)
				if err != nil {
					continue
				}
				headers.PushString(fmt.Sprintf("%d: %s: %s", i, m.From, m.Subject))
			}
			bc.Put(HeadersFolder, headers)
			return nil
		case "fetch":
			idx, err := mboxIndex(bc)
			if err != nil {
				return err
			}
			msgs := cab.Snapshot(mboxFolder(user))
			raw, err := msgs.StringAt(idx)
			if err != nil {
				return fmt.Errorf("mailbox: no message %d for %s: %w", idx, user, err)
			}
			bc.PutString(MsgFolder, raw)
			return nil
		case "delete":
			idx, err := mboxIndex(bc)
			if err != nil {
				return err
			}
			// In place under the cabinet's shard lock: a snapshot/remove/put
			// sequence here would silently drop any message deposited between
			// the snapshot and the put.
			if err := cab.RemoveAt(mboxFolder(user), idx); err != nil {
				return fmt.Errorf("mailbox: no message %d for %s: %w", idx, user, err)
			}
			return nil
		default:
			return fmt.Errorf("mailbox: unknown op %q", op)
		}
	}))
}

func mboxIndex(bc *folder.Briefcase) (int, error) {
	s, err := bc.GetString(IndexFolder)
	if err != nil {
		return 0, fmt.Errorf("mailbox: missing INDEX: %w", err)
	}
	idx, err := strconv.Atoi(s)
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("mailbox: bad INDEX %q", s)
	}
	return idx, nil
}

// messageScript is the mail agent: jump to the recipient's site, deposit
// the carried message, then (if a receipt was requested) travel on to the
// sender's site and deposit a receipt. The message is code + data moving
// itself — not a payload pushed by infrastructure.
const messageScript = `
	if {[bc_get PHASE 0] eq "outbound"} {
		bc_set PHASE 0 deliver
		jump [bc_get DEST 0]
	}
	if {[bc_get PHASE 0] eq "deliver"} {
		bc_push OP deposit
		meet mailbox
		bc_del OP
		if {[bc_get WANTRECEIPT 0] eq "1"} {
			bc_set PHASE 0 receipt
			jump [bc_get HOME 0]
		}
	}
	if {[bc_get PHASE 0] eq "receipt"} {
		bc_push OP receipt
		bc_set USER 0 [bc_get SENDER 0]
		meet mailbox
		bc_del OP
	}
`

// Send mails a message: it builds the message agent and injects it at the
// sender's site, from which it migrates itself. Send is synchronous: it
// returns once the message agent has finished its journey (including the
// receipt leg when requested).
func Send(ctx context.Context, from *core.Site, msg Message, wantReceipt bool) error {
	fromUser, fromSite, err := Address(msg.From)
	if err != nil {
		return err
	}
	if fromSite != from.ID() {
		return fmt.Errorf("mail: sender %s is not at site %s", msg.From, from.ID())
	}
	toUser, toSite, err := Address(msg.To)
	if err != nil {
		return err
	}
	bc := folder.NewBriefcase()
	bc.PutString("PHASE", "outbound")
	bc.PutString("DEST", string(toSite))
	bc.PutString("HOME", string(fromSite))
	bc.PutString(UserFolder, toUser)
	bc.PutString("SENDER", fromUser)
	bc.PutString(MsgFolder, msg.Encode())
	receipt := "0"
	if wantReceipt {
		receipt = "1"
	}
	bc.PutString("WANTRECEIPT", receipt)
	_, err = core.RunScript(ctx, from, messageScript, bc)
	return err
}

// List returns the headers in a user's mailbox at a site.
func List(ctx context.Context, client *core.Site, user string, at vnet.SiteID) ([]string, error) {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "list")
	bc.PutString(UserFolder, user)
	if err := client.RemoteMeet(ctx, at, AgMailbox, bc); err != nil {
		return nil, err
	}
	h, err := bc.Folder(HeadersFolder)
	if err != nil {
		return nil, err
	}
	return h.Strings(), nil
}

// Fetch retrieves message idx from a user's mailbox.
func Fetch(ctx context.Context, client *core.Site, user string, at vnet.SiteID, idx int) (Message, error) {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "fetch")
	bc.PutString(UserFolder, user)
	bc.PutString(IndexFolder, strconv.Itoa(idx))
	if err := client.RemoteMeet(ctx, at, AgMailbox, bc); err != nil {
		return Message{}, err
	}
	raw, err := bc.GetString(MsgFolder)
	if err != nil {
		return Message{}, err
	}
	return ParseMessage(raw)
}

// Delete removes message idx from a user's mailbox.
func Delete(ctx context.Context, client *core.Site, user string, at vnet.SiteID, idx int) error {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "delete")
	bc.PutString(UserFolder, user)
	bc.PutString(IndexFolder, strconv.Itoa(idx))
	return client.RemoteMeet(ctx, at, AgMailbox, bc)
}

// Receipts returns the delivery receipts deposited for a sender at a site.
func Receipts(site *core.Site, user string) []string {
	return site.Cabinet().Snapshot(receiptFolder(user)).Strings()
}
