package mail

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/folder"
)

// TestMailboxConcurrentStress hammers one mailbox with concurrent deposits,
// lists, fetches, and deletes. Run under -race it flushes out unsynchronized
// cabinet access; without -race it still pins the lost-update invariant the
// old delete path violated: delete did Snapshot → Remove → Put, so a deposit
// landing between the snapshot and the put vanished. The in-place RemoveAt
// keeps the count exact: final = deposits − successful deletes.
func TestMailboxConcurrentStress(t *testing.T) {
	sys := mailSystem(t, 1)
	site := sys.SiteAt(0)
	const (
		depositors   = 4
		perDepositor = 200
		readers      = 2
		deleters     = 2
	)

	var deleted atomic.Int64
	var depWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	for d := 0; d < depositors; d++ {
		depWG.Add(1)
		go func(d int) {
			defer depWG.Done()
			for i := 0; i < perDepositor; i++ {
				msg := Message{
					From:    "sender@site-0",
					To:      "stress@site-0",
					Subject: fmt.Sprintf("d%d-%d", d, i),
					Body:    "x",
				}
				bc := folder.NewBriefcase()
				bc.PutString(OpFolder, "deposit")
				bc.PutString(UserFolder, "stress")
				bc.PutString(MsgFolder, msg.Encode())
				if err := site.MeetClient(context.Background(), AgMailbox, bc); err != nil {
					t.Errorf("deposit: %v", err)
					return
				}
			}
		}(d)
	}
	for r := 0; r < readers; r++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				bc := folder.NewBriefcase()
				bc.PutString(UserFolder, "stress")
				if i%2 == 0 {
					bc.PutString(OpFolder, "list")
				} else {
					bc.PutString(OpFolder, "fetch")
					bc.PutString(IndexFolder, "0")
				}
				// Errors are expected (fetch from an emptied mailbox); only
				// data races and lost messages are failures.
				_ = site.MeetClient(context.Background(), AgMailbox, bc)
			}
		}()
	}
	for k := 0; k < deleters; k++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				bc := folder.NewBriefcase()
				bc.PutString(OpFolder, "delete")
				bc.PutString(UserFolder, "stress")
				bc.PutString(IndexFolder, "0")
				if err := site.MeetClient(context.Background(), AgMailbox, bc); err == nil {
					deleted.Add(1)
				}
			}
		}()
	}

	depWG.Wait()
	close(stop)
	churnWG.Wait()

	total := int64(depositors * perDepositor)
	got := int64(site.Cabinet().FolderLen("MBOX:stress"))
	want := total - deleted.Load()
	if got != want {
		t.Fatalf("mailbox holds %d messages, want %d (%d deposited, %d deleted) — deposits lost to a delete race",
			got, want, total, deleted.Load())
	}
}
