package folder

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCabinetAppendContains(t *testing.T) {
	c := NewCabinet()
	c.AppendString("SITES", "tromso")
	if !c.ContainsString("SITES", "tromso") {
		t.Fatal("missing appended element")
	}
	if c.ContainsString("SITES", "ithaca") {
		t.Fatal("phantom element")
	}
	if c.ContainsString("NOFOLDER", "x") {
		t.Fatal("phantom folder")
	}
}

func TestCabinetTestAndAppend(t *testing.T) {
	c := NewCabinet()
	if !c.TestAndAppendString("VISITED", "a") {
		t.Fatal("first TestAndAppend should add")
	}
	if c.TestAndAppendString("VISITED", "a") {
		t.Fatal("second TestAndAppend should not add")
	}
	if c.FolderLen("VISITED") != 1 {
		t.Fatalf("len = %d, want 1", c.FolderLen("VISITED"))
	}
}

func TestCabinetTestAndAppendConcurrent(t *testing.T) {
	// Exactly one of N concurrent agents may win the visit race per site.
	c := NewCabinet()
	const n = 64
	wins := make(chan bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- c.TestAndAppendString("VISITED", "site-1")
		}()
	}
	wg.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("winners = %d, want exactly 1", won)
	}
}

func TestCabinetSnapshotIsolated(t *testing.T) {
	c := NewCabinet()
	c.AppendString("F", "v")
	snap := c.Snapshot("F")
	snap.PushString("local-only")
	if c.FolderLen("F") != 1 {
		t.Fatal("snapshot mutation leaked into cabinet")
	}
	empty := c.Snapshot("ABSENT")
	if empty.Len() != 0 {
		t.Fatal("absent snapshot not empty")
	}
}

func TestCabinetPutReplacesAndReindexes(t *testing.T) {
	c := NewCabinet()
	c.AppendString("F", "old")
	c.Put("F", OfStrings("new1", "new2"))
	if c.ContainsString("F", "old") {
		t.Fatal("old element survived Put")
	}
	if !c.ContainsString("F", "new1") || !c.ContainsString("F", "new2") {
		t.Fatal("new elements not indexed")
	}
	// Put deep-copies its argument.
	src := OfStrings("x")
	c.Put("G", src)
	src.PushString("y")
	if c.FolderLen("G") != 1 {
		t.Fatal("Put did not copy")
	}
}

func TestCabinetDequeue(t *testing.T) {
	c := NewCabinet()
	c.AppendString("Q", "first")
	c.AppendString("Q", "second")
	e, err := c.Dequeue("Q")
	if err != nil || string(e) != "first" {
		t.Fatalf("Dequeue = %q, %v", e, err)
	}
	if c.ContainsString("Q", "first") {
		t.Fatal("dequeued element still indexed")
	}
	if !c.ContainsString("Q", "second") {
		t.Fatal("remaining element lost from index")
	}
	if _, err := c.Dequeue("MISSING"); !errors.Is(err, ErrNoFolder) {
		t.Fatalf("Dequeue missing = %v", err)
	}
	c.Dequeue("Q")
	if _, err := c.Dequeue("Q"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Dequeue empty = %v", err)
	}
}

func TestCabinetDequeueDuplicateIndex(t *testing.T) {
	// Two identical elements: dequeuing one must keep the other indexed.
	c := NewCabinet()
	c.AppendString("Q", "dup")
	c.AppendString("Q", "dup")
	if _, err := c.Dequeue("Q"); err != nil {
		t.Fatal(err)
	}
	if !c.ContainsString("Q", "dup") {
		t.Fatal("index dropped surviving duplicate")
	}
	if _, err := c.Dequeue("Q"); err != nil {
		t.Fatal(err)
	}
	if c.ContainsString("Q", "dup") {
		t.Fatal("index kept fully-drained element")
	}
}

func TestCabinetRemoveAt(t *testing.T) {
	c := NewCabinet()
	c.AppendString("F", "a")
	c.AppendString("F", "b")
	c.AppendString("F", "c")
	if err := c.RemoveAt("F", 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot("F").Strings(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after RemoveAt(1): %v", got)
	}
	if c.ContainsString("F", "b") {
		t.Fatal("removed element still indexed")
	}
	if !c.ContainsString("F", "a") || !c.ContainsString("F", "c") {
		t.Fatal("surviving elements lost from index")
	}
	if err := c.RemoveAt("F", 2); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("RemoveAt out of range = %v", err)
	}
	if err := c.RemoveAt("MISSING", 0); !errors.Is(err, ErrNoFolder) {
		t.Fatalf("RemoveAt missing folder = %v", err)
	}
}

func TestCabinetRemoveAtDuplicateIndex(t *testing.T) {
	// Two identical elements: removing one must keep the other indexed.
	c := NewCabinet()
	c.AppendString("F", "dup")
	c.AppendString("F", "dup")
	if err := c.RemoveAt("F", 0); err != nil {
		t.Fatal(err)
	}
	if !c.ContainsString("F", "dup") {
		t.Fatal("index dropped surviving duplicate")
	}
	if err := c.RemoveAt("F", 0); err != nil {
		t.Fatal(err)
	}
	if c.ContainsString("F", "dup") {
		t.Fatal("index kept fully-removed element")
	}
}

func TestCabinetRemoveAtConcurrentAppend(t *testing.T) {
	// The lost-update scenario RemoveAt exists for: appends racing removals
	// must never vanish. Final count = appends − successful removals.
	c := NewCabinet()
	const writers = 4
	const perWriter = 200
	var removed int
	var wg sync.WaitGroup
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.RemoveAt("F", 0) == nil {
				removed++
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.AppendString("F", fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-done
	if got, want := c.FolderLen("F"), writers*perWriter-removed; got != want {
		t.Fatalf("folder holds %d elements, want %d (%d appended, %d removed)",
			got, want, writers*perWriter, removed)
	}
}

func TestCabinetDelete(t *testing.T) {
	c := NewCabinet()
	c.AppendString("F", "v")
	c.Delete("F")
	if c.Len() != 0 || c.ContainsString("F", "v") {
		t.Fatal("Delete left residue")
	}
}

func TestCabinetNames(t *testing.T) {
	c := NewCabinet()
	c.AppendString("b", "1")
	c.AppendString("a", "1")
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCabinetFlushLoadRoundTrip(t *testing.T) {
	c := NewCabinet()
	c.AppendString("WEATHER", "obs1")
	c.AppendString("WEATHER", "obs2")
	c.AppendString("VISITED", "siteA")
	var buf bytes.Buffer
	if err := c.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	d := NewCabinet()
	d.AppendString("STALE", "should vanish")
	if err := d.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if d.ContainsString("STALE", "should vanish") {
		t.Fatal("Load did not replace contents")
	}
	if d.FolderLen("WEATHER") != 2 || !d.ContainsString("VISITED", "siteA") {
		t.Fatalf("round trip lost data: %v", d.Names())
	}
	// Index must be rebuilt: membership and duplicates work post-Load.
	if !d.TestAndAppendString("VISITED", "siteB") {
		t.Fatal("index broken after load")
	}
	if d.TestAndAppendString("VISITED", "siteA") {
		t.Fatal("loaded element not found in rebuilt index")
	}
}

func TestCabinetLoadGarbage(t *testing.T) {
	c := NewCabinet()
	if err := c.Load(bytes.NewReader([]byte{0xDE, 0xAD})); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestCabinetConcurrentMixedOps(t *testing.T) {
	c := NewCabinet()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("F%d", i%4)
			for j := 0; j < 50; j++ {
				c.AppendString(name, fmt.Sprintf("e%d-%d", i, j))
				c.ContainsString(name, "e0-0")
				c.Snapshot(name)
				c.FolderLen(name)
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, n := range c.Names() {
		total += c.FolderLen(n)
	}
	if total != 16*50 {
		t.Fatalf("lost appends: total=%d want %d", total, 16*50)
	}
}
