package folder

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Content-addressed folder deltas (wire protocol v2).
//
// Folder elements are immutable and frozen folders are immutable wholesale,
// so a folder's canonical encoding identifies its contents forever. The
// delta briefcase format exploits that: instead of re-shipping folder bytes
// a peer already holds, the encoder ships a 32-byte SHA-256 reference and
// both ends keep a bounded per-peer DeltaCache of hash → encoded bytes.
// The paradigm case is a signed roaming agent: its SIG folder (frozen at
// launch) and CODE folder are byte-identical on every hop of an itinerary,
// so after the first hop over a link the agent's own code stops crossing
// the wire.
//
//	briefcaseΔ := magicBriefcaseDelta ver count:uvarint { nameLen name entry }*
//	entry      := EntryFull folder            (below threshold; not cached)
//	            | EntryFullCached folder      (both ends cache under its hash)
//	            | EntryRef hash[32]           (peer resolves from its cache)
//
// The protocol invariant both ends maintain: a hash enters a DeltaCache on
// both sides of a link at once (the sender of an EntryFullCached stores the
// bytes it ships; the receiver stores the bytes it received), so holding an
// entry is evidence the peer holds it too. Eviction breaks the invariant in
// the safe direction only: a ref the peer cannot resolve comes back as an
// explicit miss, and the caller re-ships full bytes (see internal/core's
// meet2 handling). Receivers never trust a sender's hash — they hash the
// received bytes themselves, so a hostile peer cannot poison a cache entry
// for content it does not have.
const magicBriefcaseDelta = 0xB2

// Delta entry tags, exported so wire accounting (core.WireStats, recorders)
// can name them.
const (
	EntryFull       byte = 0x00
	EntryFullCached byte = 0x01
	EntryRef        byte = 0x02
)

// DeltaMinSize is the minimum canonical encoding size for a folder with no
// memoized digest to be worth content-addressing: such a folder pays a
// sender-side SHA-256 on every ship (and a receiver-side one when shipped
// full), so below this the hashing and cache bookkeeping cost more than
// just shipping the bytes.
const DeltaMinSize = 128

// DeltaMinSizeCached is the (lower) threshold for folders whose digest is
// already memoized — frozen folders, folders the codec shipped unchanged
// before, and folders the delta decoder materialized (which knows their
// bytes and hash for free). For these a repeat ship costs one cache probe,
// so a ref pays for itself as soon as it is smaller than the bytes it
// replaces. This is what keeps a ~90-byte SIG folder — principal, signed
// folder list, hex MAC — on the delta path at every hop of an itinerary.
const DeltaMinSizeCached = 48

// Hash is the SHA-256 of a folder's canonical encoding.
type Hash [32]byte

// HashBytes returns the content hash of an encoded folder.
func HashBytes(enc []byte) Hash { return sha256.Sum256(enc) }

// DeltaRecorder observes each eligible folder entry as it is encoded; the
// kernel uses it for wire accounting and tests use it to prove SIG bytes
// ship only once. tag is EntryFullCached or EntryRef; n is the canonical
// encoding size the entry represents — for a ref, the bytes that did NOT
// cross the wire. May be nil.
type DeltaRecorder func(name string, tag byte, n int)

// DeltaCache is one side's bounded hash → encoded-folder store for one
// peer. Entries are inserted by both the ship and the receive path and
// evicted second-chance (clock) once the byte budget is exceeded: a probe
// victim that has been referenced since its last consideration is given
// another pass, so the entries the protocol exists to keep — a roaming
// agent's SIG/CODE, hit on every meet — survive churn from one-shot
// folder traffic instead of sitting at the head of a FIFO. A peer flooding
// unique folders can still grow the cache only to its bound, at the price
// of evicting its own earlier entries, never of unbounded memory here.
type DeltaCache struct {
	mu       sync.Mutex
	maxBytes int
	bytes    int
	entries  map[Hash]*dentry
	order    []Hash // clock order; head is the next eviction probe
}

// dentry is one cache entry; ref is the second-chance bit, set on Get.
type dentry struct {
	enc []byte
	ref bool
}

// DefaultDeltaCacheBytes bounds one peer's cache when the kernel does not
// configure its own size.
const DefaultDeltaCacheBytes = 1 << 20

// NewDeltaCache returns an empty cache bounded to maxBytes of stored folder
// encodings (0 means DefaultDeltaCacheBytes).
func NewDeltaCache(maxBytes int) *DeltaCache {
	if maxBytes <= 0 {
		maxBytes = DefaultDeltaCacheBytes
	}
	return &DeltaCache{maxBytes: maxBytes, entries: make(map[Hash]*dentry)}
}

// Get returns the stored encoding for h, marking the entry recently used.
// The returned bytes are immutable and remain valid after eviction (the
// slice is never reused).
func (c *DeltaCache) Get(h Hash) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[h]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	e.ref = true
	enc := e.enc
	c.mu.Unlock()
	return enc, true
}

// PutCopy stores a private copy of enc under h and returns the stored
// slice; the caller may keep using (or recycling) enc.
func (c *DeltaCache) PutCopy(h Hash, enc []byte) []byte {
	return c.put(h, append([]byte(nil), enc...))
}

// PutShared stores enc itself under h. The caller asserts enc is immutable
// for the life of the process (a frozen folder's memoized encoding).
func (c *DeltaCache) PutShared(h Hash, enc []byte) []byte {
	return c.put(h, enc)
}

func (c *DeltaCache) put(h Hash, enc []byte) []byte {
	if len(enc) > c.maxBytes {
		// An entry that would evict the whole cache is not worth caching;
		// the folder simply ships full every time.
		return enc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[h]; ok {
		return prev.enc
	}
	c.entries[h] = &dentry{enc: enc}
	c.order = append(c.order, h)
	c.bytes += len(enc)
	// Second-chance eviction: a probed victim that was referenced since its
	// last consideration is recycled to the tail with its bit cleared, so
	// at most 2×len(order) probes reclaim enough bytes.
	for c.bytes > c.maxBytes && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		old, ok := c.entries[victim]
		if !ok {
			continue
		}
		if old.ref {
			old.ref = false
			c.order = append(c.order, victim)
			continue
		}
		c.bytes -= len(old.enc)
		delete(c.entries, victim)
	}
	return enc
}

// Forget drops h (after a peer reported a miss for it, meaning the mutual-
// insertion invariant no longer holds). The eviction-order slot is scrubbed
// too: left in place, a later re-insert of the same hash would be shadowed
// by the stale head slot and evicted long before its turn — re-missing
// exactly the entry the miss protocol just repaired. Forget is on the rare
// miss path, so the linear scan is fine.
func (c *DeltaCache) Forget(h Hash) {
	c.mu.Lock()
	if e, ok := c.entries[h]; ok {
		c.bytes -= len(e.enc)
		delete(c.entries, h)
		for i := range c.order {
			if c.order[i] == h {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
}

// Len reports the number of cached encodings.
func (c *DeltaCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the stored encoding bytes (the evicted `order` slack is
// bookkeeping, not payload).
func (c *DeltaCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// encodedFolderSize returns the exact canonical encoding size of f without
// encoding it.
func encodedFolderSize(f *Folder) int {
	size := 2 + uvarintLen(uint64(len(f.elems)))
	for _, e := range f.elems {
		size += uvarintLen(uint64(len(e))) + len(e)
	}
	return size
}

// AppendBriefcaseDelta encodes b in the delta format against the per-peer
// cache c. Eligible folders (canonical encoding ≥ DeltaMinSize, or ≥
// DeltaMinSizeCached with a memoized digest) ship as a 32-byte ref when
// refs approves their hash, and as cacheable full bytes otherwise —
// inserting into c on the way out, per the mutual-insertion invariant.
//
//   - refs decides whether a ref may be emitted for a hash and returns the
//     stable stored encoding when so. Request encoders pass the peer
//     cache's Get (or nil on the miss-retry path, forcing full bytes);
//     reply encoders pass a lookup over the request's pinned hashes, which
//     is what guarantees a reply ref is always resolvable by the caller.
//   - pin, when non-nil, is invoked with the cache-stable encoding of every
//     eligible folder shipped (ref or full); the kernel uses it to resolve
//     same-call reply refs without depending on cache residency.
//
// Encoding order is sorted folder names, so equal briefcases encode
// identically for a given cache state.
func AppendBriefcaseDelta(dst []byte, b *Briefcase, c *DeltaCache,
	refs func(Hash) ([]byte, bool), pin func(h Hash, enc []byte), rec DeltaRecorder) []byte {
	dst = append(dst, magicBriefcaseDelta, codecVersion)
	names := b.Names()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		f := b.folders[name]
		size := encodedFolderSize(f)
		if size < DeltaMinSizeCached {
			dst = append(dst, EntryFull)
			dst = AppendFolder(dst, f)
			continue
		}
		if enc, h, owned, ok := f.cachedDigest(); ok {
			// Known digest (frozen, previously shipped, or wire-decoded):
			// repeat ships cost one cache probe and, for a ref, 33 wire
			// bytes — no hashing.
			if refs != nil {
				if cached, hit := refs(h); hit {
					dst = append(dst, EntryRef)
					dst = append(dst, h[:]...)
					if pin != nil {
						pin(h, cached)
					}
					if rec != nil {
						rec(name, EntryRef, len(enc))
					}
					continue
				}
			}
			// Share self-contained encodings; copy ones that alias a
			// larger decode buffer, which must not be pinned by (and
			// hidden from the byte accounting of) a long-lived cache.
			var stored []byte
			if owned {
				stored = c.PutShared(h, enc)
			} else {
				stored = c.PutCopy(h, enc)
				f.setDigest(stored, h, true) // future ships share the tight copy
			}
			dst = append(dst, EntryFullCached)
			dst = append(dst, enc...)
			if pin != nil {
				pin(h, stored)
			}
			if rec != nil {
				rec(name, EntryFullCached, len(enc))
			}
			continue
		}
		if size < DeltaMinSize {
			// No memoized digest and too small to be worth hashing.
			dst = append(dst, EntryFull)
			dst = AppendFolder(dst, f)
			continue
		}
		// Un-memoized folder: encode into dst first, hash the fresh
		// segment, and rewind to a ref when the peer already holds it.
		dst = append(dst, EntryFullCached)
		mark := len(dst)
		dst = AppendFolder(dst, f)
		h := HashBytes(dst[mark:])
		encLen := len(dst) - mark
		if refs != nil {
			if cached, hit := refs(h); hit {
				dst = dst[:mark-1]
				dst = append(dst, EntryRef)
				dst = append(dst, h[:]...)
				if pin != nil {
					pin(h, cached)
				}
				f.setDigest(cached, h, true) // next ship of this folder skips the hash
				if rec != nil {
					rec(name, EntryRef, encLen)
				}
				continue
			}
		}
		stored := c.PutCopy(h, dst[mark:])
		if pin != nil {
			pin(h, stored)
		}
		f.setDigest(stored, h, true) // tight cache copy; dst may be recycled
		if rec != nil {
			rec(name, EntryFullCached, encLen)
		}
	}
	return dst
}

// DecodeBriefcaseDelta parses a delta-encoded briefcase, consuming the
// entire input. resolve maps a ref hash to its stored encoding (per-call
// pins first, then the peer cache); cached, when non-nil, is invoked for
// every EntryFullCached with the receiver-computed hash and the aliased
// encoding segment so the caller can insert it into its cache (copying —
// the segment aliases data) and pin it for the reply.
//
// When any ref fails to resolve the decode returns (nil, missing, nil):
// the input was well-formed but cannot be materialized, and the caller
// must answer with a miss so the peer re-ships full bytes. Decoded folders
// alias data and the resolver's stored encodings; the caller transfers
// ownership of data and must not modify it afterwards.
func DecodeBriefcaseDelta(data []byte, resolve func(Hash) ([]byte, bool),
	cached func(h Hash, enc []byte)) (*Briefcase, []Hash, error) {
	if len(data) < 2 || data[0] != magicBriefcaseDelta {
		return nil, nil, fmt.Errorf("%w: missing delta briefcase magic", ErrCodec)
	}
	if data[1] != codecVersion {
		return nil, nil, fmt.Errorf("%w: unsupported delta briefcase version %d", ErrCodec, data[1])
	}
	data = data[2:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: bad delta briefcase count", ErrCodec)
	}
	data = data[n:]
	b := NewBriefcase()
	var missing []Hash
	for i := uint64(0); i < count; i++ {
		nlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < nlen {
			return nil, nil, fmt.Errorf("%w: bad delta folder name %d", ErrCodec, i)
		}
		data = data[n:]
		name := string(data[:nlen])
		data = data[nlen:]
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("%w: folder %q: missing entry tag", ErrCodec, name)
		}
		tag := data[0]
		data = data[1:]
		switch tag {
		case EntryFull, EntryFullCached:
			start := data
			f, rest, err := decodeFolder(data)
			if err != nil {
				return nil, nil, fmt.Errorf("folder %q: %w", name, err)
			}
			if tag == EntryFullCached {
				enc := start[:len(start)-len(rest)]
				h := HashBytes(enc)
				// The decoder knows this folder's bytes and hash for free;
				// memoizing them is what lets an intermediate hop re-ship
				// the folder toward the next site without hashing.
				f.setDigest(enc[:len(enc):len(enc)], h, false)
				if cached != nil {
					cached(h, enc)
				}
			}
			b.Put(name, f)
			data = rest
		case EntryRef:
			if len(data) < len(Hash{}) {
				return nil, nil, fmt.Errorf("%w: folder %q: truncated ref", ErrCodec, name)
			}
			var h Hash
			copy(h[:], data)
			data = data[len(h):]
			enc, ok := resolve(h)
			if !ok {
				missing = append(missing, h)
				continue
			}
			f, rest, err := decodeFolder(enc)
			if err != nil || len(rest) != 0 {
				// A cache entry that does not decode cleanly is corrupt
				// bookkeeping, not a wire error; treat it as a miss so the
				// peer re-ships authoritative bytes.
				missing = append(missing, h)
				continue
			}
			f.setDigest(enc, h, true)
			b.Put(name, f)
		default:
			return nil, nil, fmt.Errorf("%w: folder %q: unknown entry tag %#x", ErrCodec, name, tag)
		}
	}
	if len(data) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after delta briefcase", ErrCodec, len(data))
	}
	if len(missing) > 0 {
		return nil, missing, nil
	}
	return b, nil, nil
}
