package folder

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// TestFlushUnderConcurrentMutation pins the point-in-time snapshot
// invariant the WAL's compactor (and tacomad's periodic flush) depend on:
// a Flush taken while writers mutate must capture, for every writer, an
// exact prefix of its per-folder appends, and must be causally consistent
// across folders — each writer appends to CAUSE before EFFECT, so no
// snapshot may ever show more EFFECT than CAUSE entries. Run under -race
// this also proves Flush and mutation are properly synchronized.
func TestFlushUnderConcurrentMutation(t *testing.T) {
	cab := NewCabinet()
	const writers, rounds, flushes = 4, 400, 25

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cab.AppendString(fmt.Sprintf("W%d", g), strconv.Itoa(i))
				cab.AppendString("CAUSE", fmt.Sprintf("%d-%d", g, i))
				cab.AppendString("EFFECT", fmt.Sprintf("%d-%d", g, i))
			}
		}(g)
	}

	images := make([][]byte, 0, flushes)
	go func() {
		defer close(stop)
		wg.Wait()
	}()
	for len(images) < flushes {
		var buf bytes.Buffer
		if err := cab.Flush(&buf); err != nil {
			t.Error(err)
			return
		}
		images = append(images, buf.Bytes())
	}
	<-stop

	for n, img := range images {
		b, err := DecodeBriefcase(img)
		if err != nil {
			t.Fatalf("flush %d: %v", n, err)
		}
		for g := 0; g < writers; g++ {
			f, err := b.Folder(fmt.Sprintf("W%d", g))
			if err != nil {
				continue // writer had not started when this flush ran
			}
			for i, s := range f.Strings() {
				if s != strconv.Itoa(i) {
					t.Fatalf("flush %d: W%d[%d] = %q: not an append prefix", n, g, i, s)
				}
			}
		}
		causes := map[string]bool{}
		if f, err := b.Folder("CAUSE"); err == nil {
			for _, s := range f.Strings() {
				causes[s] = true
			}
		}
		if f, err := b.Folder("EFFECT"); err == nil {
			for _, s := range f.Strings() {
				if !causes[s] {
					t.Fatalf("flush %d: EFFECT %q snapshot without its CAUSE — not point-in-time", n, s)
				}
			}
		}
	}
}

// TestLoadUnderConcurrentMutation drives Load, Flush, and mutations
// concurrently (the -race payoff is the synchronization proof) and then
// verifies the cabinet still satisfies its index invariant.
func TestLoadUnderConcurrentMutation(t *testing.T) {
	cab := NewCabinet()
	replacement := NewBriefcase()
	replacement.Put("BASE", OfStrings("r1", "r2"))
	img := EncodeBriefcase(replacement)

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cab.AppendString(fmt.Sprintf("M%d", g), strconv.Itoa(i))
				cab.TestAndAppendString("SEEN", fmt.Sprintf("%d-%d", g, i))
				if i%10 == 0 {
					// A concurrent Load may legally wipe M<g> between the
					// append and this dequeue; only unexpected errors fail.
					if _, err := cab.Dequeue(fmt.Sprintf("M%d", g)); err != nil &&
						!errors.Is(err, ErrNoFolder) && !errors.Is(err, ErrEmpty) {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := cab.Load(bytes.NewReader(img)); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := cab.Flush(&buf); err != nil {
				t.Error(err)
			}
			if _, err := DecodeBriefcase(buf.Bytes()); err != nil {
				t.Errorf("torn flush image: %v", err)
			}
		}
	}()
	wg.Wait()

	for _, name := range cab.Names() {
		f := cab.Snapshot(name)
		for i := 0; i < f.Len(); i++ {
			e, _ := f.At(i)
			if !cab.Contains(name, e) {
				t.Fatalf("index lost element %d of %q", i, name)
			}
		}
		if cab.FolderLen(name) != f.Len() {
			t.Fatalf("length mismatch on %q", name)
		}
	}
}

// memJournal records appends per folder, mimicking what a WAL would replay.
type memJournal struct {
	mu       sync.Mutex
	appends  map[string][]string
	loads    int
	deletes  map[string]int
	dequeues map[string]int
}

func newMemJournal() *memJournal {
	return &memJournal{
		appends:  map[string][]string{},
		deletes:  map[string]int{},
		dequeues: map[string]int{},
	}
}

func (m *memJournal) RecordAppend(name string, e []byte) {
	m.mu.Lock()
	m.appends[name] = append(m.appends[name], string(e))
	m.mu.Unlock()
}
func (m *memJournal) RecordPut(name string, f *Folder) {}
func (m *memJournal) RecordDequeue(name string) {
	m.mu.Lock()
	m.dequeues[name]++
	m.mu.Unlock()
}
func (m *memJournal) RecordDelete(name string) {
	m.mu.Lock()
	m.deletes[name]++
	m.mu.Unlock()
}
func (m *memJournal) RecordLoad(enc []byte) {
	m.mu.Lock()
	m.loads++
	m.mu.Unlock()
}

// TestJournalRecordsOrdered pins the Journal contract: records are emitted
// under the shard lock, so for any single folder the journal's append
// sequence is exactly the folder's element sequence — the property replay
// correctness rests on.
func TestJournalRecordsOrdered(t *testing.T) {
	cab := NewCabinet()
	j := newMemJournal()
	cab.SetJournal(Journal(j))

	const writers, rounds = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shared := fmt.Sprintf("SHARED%d", g%2) // contended across writers
			for i := 0; i < rounds; i++ {
				cab.AppendString(shared, fmt.Sprintf("%d/%d", g, i))
				cab.TestAndAppendString("DEDUP", strconv.Itoa(i)) // mostly duplicates
			}
		}(g)
	}
	wg.Wait()

	for _, name := range []string{"SHARED0", "SHARED1", "DEDUP"} {
		got := cab.Snapshot(name).Strings()
		want := j.appends[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d elements vs %d journal records", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: cabinet %q, journal %q — records out of order", name, i, got[i], want[i])
			}
		}
	}
	if len(j.appends["DEDUP"]) != rounds {
		t.Fatalf("DEDUP journaled %d appends, want %d (duplicates must not journal)",
			len(j.appends["DEDUP"]), rounds)
	}
	if j.loads != 0 || len(j.deletes) != 0 {
		t.Fatalf("unexpected records: %d loads, %v deletes", j.loads, j.deletes)
	}
}
