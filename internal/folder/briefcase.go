package folder

import (
	"fmt"
	"sort"
)

// Well-known folder names used by the TACOMA system agents, as in the paper.
const (
	// CodeFolder carries the agent's source code (the paper's CODE folder).
	CodeFolder = "CODE"
	// HostFolder names the destination site for rexec (the paper's HOST folder).
	HostFolder = "HOST"
	// ContactFolder names the agent to execute at the destination (CONTACT).
	ContactFolder = "CONTACT"
	// SitesFolder lists sites, used by the diffusion agent (SITES).
	SitesFolder = "SITES"
	// ResultFolder is the conventional folder for meet results.
	ResultFolder = "RESULT"
	// ErrorFolder is the conventional folder for meet error reports.
	ErrorFolder = "ERROR"
)

// Briefcase is a collection of named folders that accompanies an agent so
// that its future actions can depend on its past ones. A briefcase passed to
// meet is analogous to an argument list, with each folder holding the value
// of one argument.
//
// The zero value is an empty briefcase ready to use.
type Briefcase struct {
	folders map[string]*Folder
}

// NewBriefcase returns an empty briefcase.
func NewBriefcase() *Briefcase { return &Briefcase{} }

// ensureMap lazily allocates the folder map so the zero value works.
func (b *Briefcase) ensureMap() {
	if b.folders == nil {
		b.folders = make(map[string]*Folder)
	}
}

// Len reports the number of folders in the briefcase.
func (b *Briefcase) Len() int { return len(b.folders) }

// Has reports whether a folder with the given name exists.
func (b *Briefcase) Has(name string) bool {
	_, ok := b.folders[name]
	return ok
}

// Folder returns the named folder, or ErrNoFolder if absent.
// The returned folder is shared, not copied: mutations are visible to the
// briefcase, which is how meet participants exchange information.
func (b *Briefcase) Folder(name string) (*Folder, error) {
	f, ok := b.folders[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, name)
	}
	return f, nil
}

// Lookup returns the named folder or nil when absent — Folder without the
// error wrapping, for hot paths that probe optional folders per meet.
func (b *Briefcase) Lookup(name string) *Folder { return b.folders[name] }

// Ensure returns the named folder, creating it if absent.
func (b *Briefcase) Ensure(name string) *Folder {
	b.ensureMap()
	f, ok := b.folders[name]
	if !ok {
		f = New()
		b.folders[name] = f
	}
	return f
}

// Put installs a folder under the given name, replacing any existing one.
// The folder is stored by reference.
func (b *Briefcase) Put(name string, f *Folder) {
	b.ensureMap()
	if f == nil {
		f = New()
	}
	b.folders[name] = f
}

// PutString is a convenience that installs a single-element folder.
func (b *Briefcase) PutString(name, value string) {
	b.Put(name, OfStrings(value))
}

// GetString returns the first element of the named folder as a string.
// It is the common way to read a scalar argument.
func (b *Briefcase) GetString(name string) (string, error) {
	f, err := b.Folder(name)
	if err != nil {
		return "", err
	}
	return f.StringAt(0)
}

// Delete removes the named folder. Deleting an absent folder is a no-op.
func (b *Briefcase) Delete(name string) { delete(b.folders, name) }

// Names returns the folder names in sorted order.
func (b *Briefcase) Names() []string {
	names := make([]string, 0, len(b.folders))
	for name := range b.folders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size reports total payload bytes across all folders.
func (b *Briefcase) Size() int {
	n := 0
	for _, f := range b.folders {
		n += f.Size()
	}
	return n
}

// Clone returns a deep copy of the briefcase.
func (b *Briefcase) Clone() *Briefcase {
	c := NewBriefcase()
	for name, f := range b.folders {
		c.Put(name, f.Clone())
	}
	return c
}

// ReplaceAll makes b's contents identical to other (deep copy). The kernel
// uses it to fold the briefcase returned by a remote meet back into the
// caller's briefcase, preserving the caller's reference.
func (b *Briefcase) ReplaceAll(other *Briefcase) {
	b.folders = make(map[string]*Folder, other.Len())
	for name, f := range other.folders {
		b.folders[name] = f.Clone()
	}
}

// Merge copies every folder of other into b, replacing same-named folders.
func (b *Briefcase) Merge(other *Briefcase) {
	for name, f := range other.folders {
		b.Put(name, f.Clone())
	}
}

// Equal reports whether two briefcases hold identical folders.
func (b *Briefcase) Equal(other *Briefcase) bool {
	if b.Len() != other.Len() {
		return false
	}
	for name, f := range b.folders {
		g, ok := other.folders[name]
		if !ok || !f.Equal(g) {
			return false
		}
	}
	return true
}

// String renders a short diagnostic description.
func (b *Briefcase) String() string {
	return fmt.Sprintf("Briefcase(%d folders, %d bytes)", b.Len(), b.Size())
}
