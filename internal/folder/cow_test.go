package folder

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// --- copy-on-write semantics ---

func TestCloneIsolationAfterMutation(t *testing.T) {
	f := OfStrings("a", "b", "c")
	g := f.Clone()

	f.PushString("d")
	if g.Len() != 3 {
		t.Fatalf("clone saw original's push: len=%d", g.Len())
	}
	if err := g.Set(0, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.StringAt(0); s != "a" {
		t.Fatalf("original saw clone's set: %q", s)
	}
	if _, err := f.Pop(); err != nil {
		t.Fatal(err)
	}
	if got := g.Strings(); got[0] != "z" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("clone corrupted: %v", got)
	}
}

func TestCloneOfCloneChain(t *testing.T) {
	a := OfStrings("x")
	b := a.Clone()
	c := b.Clone()
	b.PushString("y")
	if a.Len() != 1 || c.Len() != 1 || b.Len() != 2 {
		t.Fatalf("chain isolation broken: a=%d b=%d c=%d", a.Len(), b.Len(), c.Len())
	}
}

// Pop transfers ownership; after a clone, the returned bytes must be a
// private copy so the caller mutating them cannot corrupt the clone.
func TestPopAfterCloneReturnsPrivateBytes(t *testing.T) {
	f := Of([]byte("hello"))
	g := f.Clone()
	e, err := f.Pop()
	if err != nil {
		t.Fatal(err)
	}
	for i := range e {
		e[i] = 'X'
	}
	if s, _ := g.StringAt(0); s != "hello" {
		t.Fatalf("mutating popped bytes corrupted clone: %q", s)
	}
}

func TestDequeueAfterCloneReturnsPrivateBytes(t *testing.T) {
	f := Of([]byte("front"), []byte("back"))
	g := f.Clone()
	e, err := f.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	e[0] = '?'
	if s, _ := g.StringAt(0); s != "front" {
		t.Fatalf("mutating dequeued bytes corrupted clone: %q", s)
	}
}

// Without any clone, Pop keeps its ownership-transfer contract and does not
// copy.
func TestPopWithoutCloneTransfersInPlace(t *testing.T) {
	f := New()
	f.PushString("solo")
	e, err := f.Pop()
	if err != nil || string(e) != "solo" {
		t.Fatalf("pop: %q %v", e, err)
	}
}

func TestPushCopiesArgument(t *testing.T) {
	e := []byte("abc")
	f := New()
	f.Push(e)
	e[0] = 'X'
	if s, _ := f.StringAt(0); s != "abc" {
		t.Fatalf("push aliased caller bytes: %q", s)
	}
}

func TestPushOwnedAliases(t *testing.T) {
	e := []byte("abc")
	f := New()
	f.PushOwned(e)
	if raw := f.RawAt(0); !bytes.Equal(raw, e) || &raw[0] != &e[0] {
		t.Fatal("PushOwned copied; expected aliasing")
	}
}

func TestCloneAllocsConstant(t *testing.T) {
	big := OfStrings()
	for i := 0; i < 4096; i++ {
		big.PushString(fmt.Sprintf("element-%d", i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if big.Clone().Len() != 4096 {
			t.Fatal("bad clone")
		}
	})
	if allocs > 2 {
		t.Fatalf("Clone allocates %v times; want O(1)", allocs)
	}
}

// Concurrent clones of one folder (the cabinet snapshots under a read lock)
// must be safe; run with -race.
func TestConcurrentClones(t *testing.T) {
	f := OfStrings("a", "b", "c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g := f.Clone()
				if g.Len() != 3 {
					t.Error("bad clone length")
					return
				}
				g.PushString("mine") // mutating the clone is private
			}
		}()
	}
	wg.Wait()
	if f.Len() != 3 {
		t.Fatalf("original mutated: len=%d", f.Len())
	}
}

// --- freeze semantics ---

func TestFreezePanicsOnMutate(t *testing.T) {
	f := OfStrings("sig").Freeze()
	if !f.IsFrozen() {
		t.Fatal("not frozen")
	}
	for name, mutate := range map[string]func(){
		"Push":    func() { f.Push([]byte("x")) },
		"Pop":     func() { f.Pop() },
		"Set":     func() { f.Set(0, []byte("x")) },
		"Clear":   func() { f.Clear() },
		"Dequeue": func() { f.Dequeue() },
		"Remove":  func() { f.Remove(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen folder did not panic", name)
				}
			}()
			mutate()
		}()
	}
	if s, _ := f.StringAt(0); s != "sig" {
		t.Fatalf("frozen folder changed: %q", s)
	}
}

func TestFrozenCloneIsMutable(t *testing.T) {
	f := OfStrings("v").Freeze()
	g := f.Clone()
	if g.IsFrozen() {
		t.Fatal("clone inherited frozen state")
	}
	g.PushString("w")
	if f.Len() != 1 || g.Len() != 2 {
		t.Fatalf("freeze/clone isolation broken: f=%d g=%d", f.Len(), g.Len())
	}
}

func TestFrozenFolderStillSerializes(t *testing.T) {
	f := OfStrings("a", "b").Freeze()
	back, err := DecodeFolder(EncodeFolder(f))
	if err != nil || !back.Equal(f) {
		t.Fatalf("frozen folder round trip: %v %v", back, err)
	}
}

// --- cabinet copy-on-write behavior ---

func TestCabinetSnapshotIsolation(t *testing.T) {
	c := NewCabinet()
	c.AppendString("F", "one")
	snap := c.Snapshot("F")
	c.AppendString("F", "two")
	if snap.Len() != 1 {
		t.Fatalf("snapshot saw later append: %v", snap.Strings())
	}
	snap.PushString("mine")
	if c.FolderLen("F") != 2 {
		t.Fatalf("mutating snapshot changed cabinet: %d", c.FolderLen("F"))
	}
}

func TestCabinetSnapshotAllocsConstant(t *testing.T) {
	c := NewCabinet()
	for i := 0; i < 2048; i++ {
		c.AppendString("BIG", fmt.Sprintf("e%d", i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if c.Snapshot("BIG").Len() != 2048 {
			t.Fatal("bad snapshot")
		}
	})
	if allocs > 2 {
		t.Fatalf("Snapshot allocates %v times; want O(1)", allocs)
	}
}
