package folder

// Journal observes every cabinet mutation for write-ahead logging. The
// paper's permanence story — "file cabinets can be flushed to disk when
// permanence is required" — needs more than a shutdown-time flush: a durable
// cabinet must survive a crash at any instant. A Journal attached with
// SetJournal is invoked at each mutation point (Append, Put, Dequeue, Delete,
// TestAndAppend's append half, Load) so an implementation can append a
// redo record to stable storage and replay it after a crash.
//
// Contract:
//
//   - Record* methods are called while the mutated shard's write lock is
//     held, immediately after the in-memory mutation is applied. That lock
//     is what gives the log its per-folder ordering guarantee: two appends
//     to one folder are recorded in the order they were applied. In return,
//     implementations must be fast and must never call back into the
//     cabinet (deadlock).
//   - Record* methods do not block for durability. The durability barrier
//     is the implementation's own commit primitive (store.WAL.Sync), invoked
//     by the kernel at transaction boundaries — the end of a depth-0 meet —
//     so a burst of mutations inside one meet, and across concurrent meets,
//     group-commits into one sync.
//   - Argument slices and folders are owned by the cabinet; implementations
//     must copy what they keep. Elements are immutable, so reading them
//     inside the call is safe without copying.
//
// internal/store implements Journal with a CRC-framed write-ahead log; the
// interface lives here so the folder package does not depend on the storage
// engine.
type Journal interface {
	// RecordAppend logs "element e appended to folder name" (also the
	// journal image of a successful TestAndAppend).
	RecordAppend(name string, e []byte)
	// RecordPut logs "folder name replaced by f". f must not be retained;
	// its encoding must be taken before returning.
	RecordPut(name string, f *Folder)
	// RecordDequeue logs "first element of folder name removed".
	RecordDequeue(name string)
	// RecordDelete logs "folder name removed entirely".
	RecordDelete(name string)
	// RecordLoad logs "cabinet contents replaced by this encoded
	// briefcase" (the wire-format bytes Load consumed).
	RecordLoad(enc []byte)
}
