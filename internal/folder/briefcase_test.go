package folder

import (
	"errors"
	"testing"
)

func TestBriefcaseZeroValue(t *testing.T) {
	var b Briefcase
	if b.Len() != 0 {
		t.Fatalf("zero briefcase len = %d", b.Len())
	}
	if _, err := b.Folder("X"); !errors.Is(err, ErrNoFolder) {
		t.Fatalf("Folder on empty = %v, want ErrNoFolder", err)
	}
	b.PutString("X", "v")
	got, err := b.GetString("X")
	if err != nil || got != "v" {
		t.Fatalf("GetString = %q, %v", got, err)
	}
}

func TestBriefcaseEnsureCreates(t *testing.T) {
	b := NewBriefcase()
	f := b.Ensure("NEW")
	f.PushString("payload")
	g, err := b.Folder("NEW")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Ensure folder not shared: len=%d", g.Len())
	}
	// Ensure on an existing folder returns the same folder.
	if b.Ensure("NEW") != f {
		t.Fatal("Ensure created a second folder")
	}
}

func TestBriefcaseFolderShared(t *testing.T) {
	b := NewBriefcase()
	b.PutString("ARG", "1")
	f, _ := b.Folder("ARG")
	f.PushString("2")
	g, _ := b.Folder("ARG")
	if g.Len() != 2 {
		t.Fatalf("folder not shared by reference: len=%d", g.Len())
	}
}

func TestBriefcasePutNil(t *testing.T) {
	b := NewBriefcase()
	b.Put("EMPTY", nil)
	f, err := b.Folder("EMPTY")
	if err != nil || f.Len() != 0 {
		t.Fatalf("Put(nil) = %v, %v", f, err)
	}
}

func TestBriefcaseDelete(t *testing.T) {
	b := NewBriefcase()
	b.PutString("A", "x")
	b.Delete("A")
	b.Delete("NONEXISTENT") // must not panic
	if b.Has("A") {
		t.Fatal("A survived Delete")
	}
}

func TestBriefcaseNamesSorted(t *testing.T) {
	b := NewBriefcase()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		b.PutString(n, "v")
	}
	names := b.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestBriefcaseCloneDeep(t *testing.T) {
	b := NewBriefcase()
	b.PutString("F", "orig")
	c := b.Clone()
	f, _ := c.Folder("F")
	f.PushString("added")
	orig, _ := b.Folder("F")
	if orig.Len() != 1 {
		t.Fatalf("clone mutated original: len=%d", orig.Len())
	}
	if !b.Equal(b.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestBriefcaseMerge(t *testing.T) {
	b := NewBriefcase()
	b.PutString("KEEP", "a")
	b.PutString("OVERWRITE", "old")
	o := NewBriefcase()
	o.PutString("OVERWRITE", "new")
	o.PutString("ADDED", "x")
	b.Merge(o)
	if got, _ := b.GetString("OVERWRITE"); got != "new" {
		t.Fatalf("OVERWRITE = %q", got)
	}
	if got, _ := b.GetString("KEEP"); got != "a" {
		t.Fatalf("KEEP = %q", got)
	}
	if !b.Has("ADDED") {
		t.Fatal("ADDED missing after merge")
	}
	// Merge copies: mutating the source later must not affect b.
	f, _ := o.Folder("ADDED")
	f.PushString("later")
	bf, _ := b.Folder("ADDED")
	if bf.Len() != 1 {
		t.Fatal("merge did not deep-copy")
	}
}

func TestBriefcaseEqual(t *testing.T) {
	a := NewBriefcase()
	a.PutString("X", "1")
	b := NewBriefcase()
	b.PutString("X", "1")
	if !a.Equal(b) {
		t.Fatal("equal briefcases not Equal")
	}
	b.PutString("Y", "2")
	if a.Equal(b) {
		t.Fatal("different lengths reported Equal")
	}
	c := NewBriefcase()
	c.PutString("X", "2")
	if a.Equal(c) {
		t.Fatal("different contents reported Equal")
	}
	d := NewBriefcase()
	d.PutString("Z", "1")
	if a.Equal(d) {
		t.Fatal("different names reported Equal")
	}
}

func TestBriefcaseSize(t *testing.T) {
	b := NewBriefcase()
	b.Put("A", Of([]byte("12"), []byte("345")))
	b.Put("B", Of([]byte("6")))
	if b.Size() != 6 {
		t.Fatalf("Size = %d, want 6", b.Size())
	}
}

func TestBriefcaseGetStringErrors(t *testing.T) {
	b := NewBriefcase()
	if _, err := b.GetString("MISSING"); !errors.Is(err, ErrNoFolder) {
		t.Fatalf("missing folder err = %v", err)
	}
	b.Put("EMPTY", New())
	if _, err := b.GetString("EMPTY"); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("empty folder err = %v", err)
	}
}
