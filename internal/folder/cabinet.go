package folder

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// cabinetShardCount is the number of lock stripes in a cabinet. Folders are
// assigned to shards by name hash, so agents working on different folders
// never contend on one mutex. A power of two keeps the modulo a mask.
const cabinetShardCount = 16

// NameHash is FNV-1a over a string, used to stripe folder names across
// cabinet shards (and agent names across the kernel's registry shards)
// without allocating.
func NameHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// cabShard is one lock stripe of a cabinet: a folder map plus the per-folder
// element index.
type cabShard struct {
	mu      sync.RWMutex
	folders map[string]*Folder
	index   map[string]map[string]int // folder name -> element content -> count
}

// FileCabinet groups site-local folders. Unlike a briefcase, a cabinet is
// bound to one site and rarely (never, in this implementation) moves, so it
// may be implemented with structures that optimize access time even when
// they would make the cabinet expensive to transfer: a cabinet keeps a
// per-folder element index keyed by element content so membership tests are
// O(1) instead of O(n), which is what flooding agents rely on when they
// check "was this site already visited?".
//
// Cabinets are shared by every agent executing at a site and are safe for
// concurrent use. The folder space is lock-striped by name hash, so meets
// touching different folders proceed without contention. They support the
// same operations as briefcases plus indexed membership, atomic
// test-and-set, and Flush/Load for permanence.
type FileCabinet struct {
	shards [cabinetShardCount]cabShard

	// journal, when set, receives a redo record for every mutation (see
	// Journal). Held in an atomic.Value so the common in-memory cabinet
	// pays one lock-free load per mutation and nothing else.
	journal atomic.Value // Journal
}

// SetJournal attaches a mutation journal. Pass the journal before the
// cabinet serves concurrent traffic; replayed recovery mutations must be
// applied before attaching, or they would be re-journaled.
func (c *FileCabinet) SetJournal(j Journal) { c.journal.Store(j) }

// journalHook returns the attached journal, or nil.
func (c *FileCabinet) journalHook() Journal {
	j, _ := c.journal.Load().(Journal)
	return j
}

// NewCabinet returns an empty file cabinet.
func NewCabinet() *FileCabinet {
	c := &FileCabinet{}
	for i := range c.shards {
		c.shards[i].folders = make(map[string]*Folder)
		c.shards[i].index = make(map[string]map[string]int)
	}
	return c
}

// shard returns the stripe owning the named folder.
func (c *FileCabinet) shard(name string) *cabShard {
	return &c.shards[NameHash(name)&(cabinetShardCount-1)]
}

// Append adds an element to the named folder, creating the folder if needed.
func (c *FileCabinet) Append(name string, e []byte) {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	stored := sh.appendLocked(name, e)
	if j := c.journalHook(); j != nil {
		// The journal gets the stored copy, not e: e must not flow into the
		// interface call, or escape analysis would heap-allocate every
		// caller's []byte(s) conversion even on journal-less cabinets.
		j.RecordAppend(name, stored)
	}
}

// AppendString adds a string element to the named folder.
func (c *FileCabinet) AppendString(name, s string) { c.Append(name, []byte(s)) }

// appendLocked stores a private copy of e and returns that copy (heap
// storage the cabinet owns for the element's lifetime — safe to hand to the
// journal without forcing e itself to escape).
func (sh *cabShard) appendLocked(name string, e []byte) []byte {
	f, ok := sh.folders[name]
	if !ok {
		f = New()
		sh.folders[name] = f
		sh.index[name] = make(map[string]int)
	}
	stored := clone(e)
	f.PushOwned(stored)
	sh.index[name][string(stored)]++
	return stored
}

// Contains reports whether the named folder holds an element equal to e.
// The lookup uses the cabinet's index and costs O(1).
func (c *FileCabinet) Contains(name string, e []byte) bool {
	sh := c.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	idx, ok := sh.index[name]
	if !ok {
		return false
	}
	return idx[string(e)] > 0
}

// ContainsString reports whether the named folder holds the string s.
func (c *FileCabinet) ContainsString(name, s string) bool {
	return c.Contains(name, []byte(s))
}

// TestAndAppend atomically checks membership and appends if absent.
// It returns true when the element was newly added, false when it was
// already present. This is the primitive the paper's flooding example
// needs: "record its visit in a site-local folder" must be atomic with
// checking whether the site was already visited.
func (c *FileCabinet) TestAndAppend(name string, e []byte) bool {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.index[name]; ok && idx[string(e)] > 0 {
		return false
	}
	stored := sh.appendLocked(name, e)
	if j := c.journalHook(); j != nil {
		j.RecordAppend(name, stored)
	}
	return true
}

// TestAndAppendString is TestAndAppend for string elements.
func (c *FileCabinet) TestAndAppendString(name, s string) bool {
	return c.TestAndAppend(name, []byte(s))
}

// Snapshot returns a copy of the named folder, or an empty folder if it does
// not exist. Agents receive copies so that cabinet internals never escape
// the lock; the copy is O(1) copy-on-write, so snapshotting a large folder
// costs nothing until someone mutates.
func (c *FileCabinet) Snapshot(name string) *Folder {
	sh := c.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.folders[name]
	if !ok {
		return New()
	}
	return f.Clone()
}

// Put replaces the named folder with a copy of f (copy-on-write).
func (c *FileCabinet) Put(name string, f *Folder) {
	cp := f.Clone()
	idx := make(map[string]int, cp.Len())
	for _, e := range cp.elems {
		idx[string(e)]++
	}
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.folders[name] = cp
	sh.index[name] = idx
	if j := c.journalHook(); j != nil {
		j.RecordPut(name, cp)
	}
}

// Dequeue removes and returns the first element of the named folder.
// It returns ErrNoFolder if the folder is absent and ErrEmpty if empty.
// Dequeue is how queued meeting requests are drained by brokers.
func (c *FileCabinet) Dequeue(name string) ([]byte, error) {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.folders[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, name)
	}
	e, err := f.Dequeue()
	if err != nil {
		return nil, err
	}
	idx := sh.index[name]
	if idx[string(e)] <= 1 {
		delete(idx, string(e))
	} else {
		idx[string(e)]--
	}
	if j := c.journalHook(); j != nil {
		j.RecordDequeue(name)
	}
	return e, nil
}

// RemoveAt removes element i of the named folder in place, under the shard
// lock, maintaining the membership index. It exists because the tempting
// alternative — Snapshot, Folder.Remove, Put — is a read-modify-write that
// silently discards any element appended between the snapshot and the put
// (the mailbox delete bug). It returns ErrNoFolder if the folder is absent
// and ErrBadIndex if i is out of range.
func (c *FileCabinet) RemoveAt(name string, i int) error {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.folders[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoFolder, name)
	}
	e, err := f.StringAt(i)
	if err != nil {
		return err
	}
	if err := f.Remove(i); err != nil {
		return err
	}
	idx := sh.index[name]
	if idx[e] <= 1 {
		delete(idx, e)
	} else {
		idx[e]--
	}
	if j := c.journalHook(); j != nil {
		// Journaled as a whole-folder put: replaying the post-removal image
		// reproduces the removal without a dedicated record type.
		j.RecordPut(name, f)
	}
	return nil
}

// Delete removes the named folder entirely.
func (c *FileCabinet) Delete(name string) {
	sh := c.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.folders, name)
	delete(sh.index, name)
	if j := c.journalHook(); j != nil {
		j.RecordDelete(name)
	}
}

// Len reports the number of folders in the cabinet.
func (c *FileCabinet) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.folders)
		sh.mu.RUnlock()
	}
	return n
}

// FolderLen reports the number of elements in the named folder (0 if absent).
func (c *FileCabinet) FolderLen(name string) int {
	sh := c.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.folders[name]
	if !ok {
		return 0
	}
	return f.Len()
}

// Names returns the folder names in sorted order.
func (c *FileCabinet) Names() []string {
	var names []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for name := range sh.folders {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// lockAll write- or read-locks every shard in index order (a fixed order, so
// two concurrent whole-cabinet operations cannot deadlock) and returns the
// matching unlock.
func (c *FileCabinet) lockAll(write bool) (unlock func()) {
	for i := range c.shards {
		if write {
			c.shards[i].mu.Lock()
		} else {
			c.shards[i].mu.RLock()
		}
	}
	return func() {
		for i := range c.shards {
			if write {
				c.shards[i].mu.Unlock()
			} else {
				c.shards[i].mu.RUnlock()
			}
		}
	}
}

// SnapshotAll returns a point-in-time briefcase copy of every folder. All
// shards are held read-locked together, so the image is consistent across
// folders; the copies are O(1) copy-on-write. If locked is non-nil it is
// invoked while the locks are still held — no mutation (and therefore no
// journal record) can be concurrent with the callback, which is how the
// write-ahead log rotates its segment at the exact point the snapshot
// represents.
func (c *FileCabinet) SnapshotAll(locked func()) *Briefcase {
	b := NewBriefcase()
	unlock := c.lockAll(false)
	for i := range c.shards {
		for name, f := range c.shards[i].folders {
			b.Put(name, f.Clone())
		}
	}
	if locked != nil {
		locked()
	}
	unlock()
	return b
}

// Flush writes the entire cabinet to w in the wire format, providing the
// paper's "file cabinets can be flushed to disk when permanence is
// required". All shards are held read-locked together, so the flushed image
// is a consistent point-in-time snapshot.
func (c *FileCabinet) Flush(w io.Writer) error {
	_, err := w.Write(EncodeBriefcase(c.SnapshotAll(nil)))
	return err
}

// Load replaces the cabinet contents with folders read from r.
func (c *FileCabinet) Load(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	b, err := DecodeBriefcase(data)
	if err != nil {
		return err
	}
	unlock := c.lockAll(true)
	defer unlock()
	for i := range c.shards {
		c.shards[i].folders = make(map[string]*Folder)
		c.shards[i].index = make(map[string]map[string]int)
	}
	for _, name := range b.Names() {
		f, _ := b.Folder(name)
		cp := f.Clone()
		idx := make(map[string]int, cp.Len())
		for _, e := range cp.elems {
			idx[string(e)]++
		}
		sh := c.shard(name)
		sh.folders[name] = cp
		sh.index[name] = idx
	}
	if j := c.journalHook(); j != nil {
		// Recorded while every shard is still write-locked, so the load's
		// position in the journal is consistent with all per-shard records.
		j.RecordLoad(data)
	}
	return nil
}
