package folder

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// FileCabinet groups site-local folders. Unlike a briefcase, a cabinet is
// bound to one site and rarely (never, in this implementation) moves, so it
// may be implemented with structures that optimize access time even when
// they would make the cabinet expensive to transfer: a cabinet keeps a
// per-folder element index keyed by element content so membership tests are
// O(1) instead of O(n), which is what flooding agents rely on when they
// check "was this site already visited?".
//
// Cabinets are shared by every agent executing at a site and are safe for
// concurrent use. They support the same operations as briefcases plus
// indexed membership, atomic test-and-set, and Flush/Load for permanence.
type FileCabinet struct {
	mu      sync.RWMutex
	folders map[string]*Folder
	index   map[string]map[string]int // folder name -> element content -> count
}

// NewCabinet returns an empty file cabinet.
func NewCabinet() *FileCabinet {
	return &FileCabinet{
		folders: make(map[string]*Folder),
		index:   make(map[string]map[string]int),
	}
}

// Append adds an element to the named folder, creating the folder if needed.
func (c *FileCabinet) Append(name string, e []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendLocked(name, e)
}

// AppendString adds a string element to the named folder.
func (c *FileCabinet) AppendString(name, s string) { c.Append(name, []byte(s)) }

func (c *FileCabinet) appendLocked(name string, e []byte) {
	f, ok := c.folders[name]
	if !ok {
		f = New()
		c.folders[name] = f
		c.index[name] = make(map[string]int)
	}
	f.Push(e)
	c.index[name][string(e)]++
}

// Contains reports whether the named folder holds an element equal to e.
// The lookup uses the cabinet's index and costs O(1).
func (c *FileCabinet) Contains(name string, e []byte) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx, ok := c.index[name]
	if !ok {
		return false
	}
	return idx[string(e)] > 0
}

// ContainsString reports whether the named folder holds the string s.
func (c *FileCabinet) ContainsString(name, s string) bool {
	return c.Contains(name, []byte(s))
}

// TestAndAppend atomically checks membership and appends if absent.
// It returns true when the element was newly added, false when it was
// already present. This is the primitive the paper's flooding example
// needs: "record its visit in a site-local folder" must be atomic with
// checking whether the site was already visited.
func (c *FileCabinet) TestAndAppend(name string, e []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx, ok := c.index[name]; ok && idx[string(e)] > 0 {
		return false
	}
	c.appendLocked(name, e)
	return true
}

// TestAndAppendString is TestAndAppend for string elements.
func (c *FileCabinet) TestAndAppendString(name, s string) bool {
	return c.TestAndAppend(name, []byte(s))
}

// Snapshot returns a deep copy of the named folder, or an empty folder if
// it does not exist. Agents receive copies so that cabinet internals never
// escape the lock.
func (c *FileCabinet) Snapshot(name string) *Folder {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.folders[name]
	if !ok {
		return New()
	}
	return f.Clone()
}

// Put replaces the named folder with a deep copy of f.
func (c *FileCabinet) Put(name string, f *Folder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := f.Clone()
	c.folders[name] = cp
	idx := make(map[string]int, cp.Len())
	for _, e := range cp.elems {
		idx[string(e)]++
	}
	c.index[name] = idx
}

// Dequeue removes and returns the first element of the named folder.
// It returns ErrNoFolder if the folder is absent and ErrEmpty if empty.
// Dequeue is how queued meeting requests are drained by brokers.
func (c *FileCabinet) Dequeue(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.folders[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, name)
	}
	e, err := f.Dequeue()
	if err != nil {
		return nil, err
	}
	idx := c.index[name]
	if idx[string(e)] <= 1 {
		delete(idx, string(e))
	} else {
		idx[string(e)]--
	}
	return e, nil
}

// Delete removes the named folder entirely.
func (c *FileCabinet) Delete(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.folders, name)
	delete(c.index, name)
}

// Len reports the number of folders in the cabinet.
func (c *FileCabinet) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.folders)
}

// FolderLen reports the number of elements in the named folder (0 if absent).
func (c *FileCabinet) FolderLen(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.folders[name]
	if !ok {
		return 0
	}
	return f.Len()
}

// Names returns the folder names in sorted order.
func (c *FileCabinet) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.folders))
	for name := range c.folders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Flush writes the entire cabinet to w in the wire format, providing the
// paper's "file cabinets can be flushed to disk when permanence is
// required".
func (c *FileCabinet) Flush(w io.Writer) error {
	c.mu.RLock()
	b := NewBriefcase()
	for name, f := range c.folders {
		b.Put(name, f.Clone())
	}
	c.mu.RUnlock()
	_, err := w.Write(EncodeBriefcase(b))
	return err
}

// Load replaces the cabinet contents with folders read from r.
func (c *FileCabinet) Load(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	b, err := DecodeBriefcase(data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.folders = make(map[string]*Folder)
	c.index = make(map[string]map[string]int)
	for _, name := range b.Names() {
		f, _ := b.Folder(name)
		cp := f.Clone()
		c.folders[name] = cp
		idx := make(map[string]int, cp.Len())
		for _, e := range cp.elems {
			idx[string(e)]++
		}
		c.index[name] = idx
	}
	return nil
}
