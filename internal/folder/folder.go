// Package folder implements the TACOMA data abstractions that accompany
// mobile agents: folders, briefcases, and file cabinets.
//
// A Folder is a list of uninterpreted byte elements. Because it is a list it
// can be used as a stack or as a queue, mirroring how paper documents are
// grouped. Folders are the only data representation agents exchange: agent
// code, arguments, results, queued meeting requests, and even whole
// serialized briefcases are all folder elements. Folders must be cheap to
// serialize and move, since moving them between sites is the common case.
//
// A Briefcase groups named folders and travels with an agent. A FileCabinet
// groups named folders bound to a site; it never moves, so it may spend
// memory on indexes that speed up access.
//
// Folders and Briefcases are owned by a single agent at a time and are not
// safe for concurrent use. FileCabinets are shared by every agent on a site
// and are safe for concurrent use.
//
// # Ownership and copy-on-write
//
// Stored elements are immutable: no folder operation ever rewrites the bytes
// of an element in place, only adds, removes, or replaces whole elements.
// That invariant is what makes the cheap paths safe:
//
//   - Clone is O(1). The original and the clone share storage; the first
//     structural mutation of either side copies the slot array (but never
//     the element bytes, which both sides may keep sharing).
//   - Pop and Dequeue transfer ownership of the returned element to the
//     caller. When the element may still be shared with a clone, a private
//     copy is returned instead.
//   - Push copies its argument (callers keep ownership of what they pass
//     in); PushOwned skips that copy for callers that hand the element over
//     and promise never to mutate it again — the codec's decode path.
//   - Freeze marks a folder permanently immutable. Mutating a frozen folder
//     is a programming error and panics; TacL builtins check IsFrozen first
//     and refuse with an error instead. The guard freezes the SIG folder it
//     installs so no native agent can corrupt a signature in place.
//
// Clone and Freeze may be called concurrently with reads (the cabinet clones
// under a read lock); the sharing state is therefore tracked atomically.
package folder

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Common errors returned by folder operations.
var (
	// ErrEmpty is returned when popping or dequeuing from an empty folder.
	ErrEmpty = errors.New("folder: empty")
	// ErrNoFolder is returned when a named folder does not exist.
	ErrNoFolder = errors.New("folder: no such folder")
	// ErrBadIndex is returned for out-of-range element access.
	ErrBadIndex = errors.New("folder: index out of range")
	// ErrFrozen is reported when a mutation reaches a frozen folder through
	// a path that can refuse politely (TacL builtins); direct mutation of a
	// frozen folder from Go panics instead.
	ErrFrozen = errors.New("folder: folder is frozen")
)

// Sharing state bits, tracked atomically so Clone/Freeze may race with reads.
const (
	// flagSlotsShared: the [][]byte slot array is shared with a clone; the
	// next structural mutation must copy it first.
	flagSlotsShared uint32 = 1 << iota
	// flagEltsShared: element byte slices may be referenced by a clone;
	// ownership-transferring reads (Pop, Dequeue) must copy out.
	flagEltsShared
	// flagFrozen: the folder is permanently immutable.
	flagFrozen
)

// Folder is an ordered list of uninterpreted byte elements.
// The zero value is an empty folder ready to use.
type Folder struct {
	elems [][]byte
	flags atomic.Uint32

	// digest memoizes the canonical encoding and its content hash while the
	// folder's contents are known unchanged: set when the folder is frozen,
	// when the wire codec ships it, or when the delta decoder materializes
	// it from the wire (which already knows both); invalidated by the next
	// structural mutation. It backs the content-addressed wire deltas: a
	// SIG folder is hashed once per process at the launch site, and at
	// every intermediate hop the decoded instance re-encodes toward the
	// next site without hashing at all.
	digest atomic.Pointer[folderDigest]
}

// folderDigest is a memoized canonical encoding + content hash. owned
// reports that enc is a tight, self-contained allocation (safe to share
// into long-lived caches); un-owned encodings alias a larger decode buffer
// — sharing one into a cache would pin the whole buffer while accounting
// only the segment, so cache inserts must copy those.
type folderDigest struct {
	enc   []byte
	hash  Hash
	owned bool
}

// cachedDigest returns the folder's memoized canonical encoding and content
// hash. For frozen folders it computes and caches them on first call; for
// mutable folders it only reports a digest some earlier encode or decode
// installed (and no mutation has invalidated since) — ok is false
// otherwise. owned mirrors folderDigest.owned.
func (f *Folder) cachedDigest() (enc []byte, h Hash, owned, ok bool) {
	if d := f.digest.Load(); d != nil {
		return d.enc, d.hash, d.owned, true
	}
	if !f.IsFrozen() {
		return nil, Hash{}, false, false
	}
	e := AppendFolder(make([]byte, 0, 16+f.Size()), f)
	d := &folderDigest{enc: e, hash: HashBytes(e), owned: true}
	// A concurrent first call may have published first; both computed the
	// same digest from the same frozen bytes, so either wins.
	f.digest.CompareAndSwap(nil, d)
	d = f.digest.Load()
	return d.enc, d.hash, d.owned, true
}

// setDigest installs a known (encoding, hash) pair. enc must be stable for
// the folder's lifetime and must be the folder's current canonical
// encoding; owned asserts it is a tight self-contained allocation (see
// folderDigest).
func (f *Folder) setDigest(enc []byte, h Hash, owned bool) {
	f.digest.Store(&folderDigest{enc: enc, hash: h, owned: owned})
}

// invalidateDigest drops the memoized digest; every structural mutation
// goes through here (via mutable or Clear).
func (f *Folder) invalidateDigest() {
	if f.digest.Load() != nil {
		f.digest.Store(nil)
	}
}

// New returns an empty folder.
func New() *Folder { return &Folder{} }

// Of returns a folder containing the given elements, copied.
func Of(elems ...[]byte) *Folder {
	f := New()
	for _, e := range elems {
		f.Push(e)
	}
	return f
}

// OfStrings returns a folder whose elements are the given strings.
func OfStrings(elems ...string) *Folder {
	f := New()
	for _, e := range elems {
		f.PushString(e)
	}
	return f
}

// mutable prepares the folder for a structural mutation: it panics if the
// folder is frozen and unshares the slot array if a clone still references
// it. Element byte slices are never copied here — they are immutable.
func (f *Folder) mutable() {
	fl := f.flags.Load()
	if fl&flagFrozen != 0 {
		panic("folder: mutation of frozen folder")
	}
	f.invalidateDigest()
	if fl&flagSlotsShared != 0 {
		f.elems = append(make([][]byte, 0, len(f.elems)+1), f.elems...)
		f.flags.And(^flagSlotsShared)
	}
}

// Freeze marks the folder permanently immutable and returns it. Reads,
// Clone (which yields a mutable copy-on-write clone), and serialization keep
// working; any mutation panics. TacL builtins consult IsFrozen and refuse
// with ErrFrozen instead of panicking.
func (f *Folder) Freeze() *Folder {
	f.flags.Or(flagFrozen | flagSlotsShared | flagEltsShared)
	return f
}

// IsFrozen reports whether the folder has been frozen.
func (f *Folder) IsFrozen() bool { return f.flags.Load()&flagFrozen != 0 }

// Len reports the number of elements in the folder.
func (f *Folder) Len() int { return len(f.elems) }

// Size reports the total number of payload bytes across all elements.
func (f *Folder) Size() int {
	n := 0
	for _, e := range f.elems {
		n += len(e)
	}
	return n
}

// At returns the i'th element without removing it. The returned slice is a
// copy; mutating it does not affect the folder.
func (f *Folder) At(i int) ([]byte, error) {
	if i < 0 || i >= len(f.elems) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(f.elems))
	}
	return clone(f.elems[i]), nil
}

// RawAt returns the i'th element without copying, or nil when out of range.
// The slice aliases folder memory and must not be mutated or retained; it
// exists for per-meet hot paths (the guard's principal parse) that cannot
// afford At's defensive copy.
func (f *Folder) RawAt(i int) []byte {
	if i < 0 || i >= len(f.elems) {
		return nil
	}
	return f.elems[i]
}

// StringAt returns the i'th element as a string, without copying (see
// asString).
func (f *Folder) StringAt(i int) (string, error) {
	if i < 0 || i >= len(f.elems) {
		return "", fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(f.elems))
	}
	return asString(f.elems[i]), nil
}

// Push appends an element to the end of the folder (stack push / enqueue).
// The element is copied.
func (f *Folder) Push(e []byte) {
	f.mutable()
	f.elems = append(f.elems, clone(e))
}

// PushOwned appends an element without copying, taking ownership: the caller
// must not mutate e afterwards. It is the zero-copy path the codec uses when
// the element already lives in a buffer whose ownership is transferred.
func (f *Folder) PushOwned(e []byte) {
	f.mutable()
	f.elems = append(f.elems, e)
}

// PushString appends a string element.
func (f *Folder) PushString(s string) {
	f.mutable()
	f.elems = append(f.elems, []byte(s))
}

// takeOut returns e, copied first when a clone may still reference it.
func (f *Folder) takeOut(e []byte) []byte {
	if f.flags.Load()&flagEltsShared != 0 {
		return clone(e)
	}
	return e
}

// Pop removes and returns the last element (stack discipline). Ownership of
// the returned slice transfers to the caller.
func (f *Folder) Pop() ([]byte, error) {
	if len(f.elems) == 0 {
		return nil, ErrEmpty
	}
	f.mutable()
	e := f.elems[len(f.elems)-1]
	f.elems[len(f.elems)-1] = nil
	f.elems = f.elems[:len(f.elems)-1]
	return f.takeOut(e), nil
}

// asString views element bytes as a string without copying. Sound because
// stored elements are write-once: no folder operation ever rewrites element
// bytes in place (Set swaps the slice pointer, clones protect shared
// elements), so the bytes behind the view are immutable for its lifetime.
// A view can pin the decode buffer an element was materialized from, which
// is fine for the transient strings the TacL lane produces; callers that
// retain results long-term should use the []byte accessors and copy.
func asString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// PopString removes and returns the last element as a string, without
// copying (see asString).
func (f *Folder) PopString() (string, error) {
	b, err := f.Pop()
	if err != nil {
		return "", err
	}
	return asString(b), nil
}

// Dequeue removes and returns the first element (queue discipline).
// Ownership of the returned slice transfers to the caller.
func (f *Folder) Dequeue() ([]byte, error) {
	if len(f.elems) == 0 {
		return nil, ErrEmpty
	}
	f.mutable()
	e := f.elems[0]
	f.elems[0] = nil
	f.elems = f.elems[1:]
	return f.takeOut(e), nil
}

// DequeueString removes and returns the first element as a string, without
// copying (see asString).
func (f *Folder) DequeueString() (string, error) {
	b, err := f.Dequeue()
	if err != nil {
		return "", err
	}
	return asString(b), nil
}

// Peek returns the last element without removing it.
func (f *Folder) Peek() ([]byte, error) {
	if len(f.elems) == 0 {
		return nil, ErrEmpty
	}
	return clone(f.elems[len(f.elems)-1]), nil
}

// Front returns the first element without removing it.
func (f *Folder) Front() ([]byte, error) {
	if len(f.elems) == 0 {
		return nil, ErrEmpty
	}
	return clone(f.elems[0]), nil
}

// Set replaces the i'th element.
func (f *Folder) Set(i int, e []byte) error {
	if i < 0 || i >= len(f.elems) {
		return fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(f.elems))
	}
	f.mutable()
	f.elems[i] = clone(e)
	return nil
}

// Remove deletes the i'th element, preserving order.
func (f *Folder) Remove(i int) error {
	if i < 0 || i >= len(f.elems) {
		return fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(f.elems))
	}
	f.mutable()
	copy(f.elems[i:], f.elems[i+1:])
	f.elems[len(f.elems)-1] = nil
	f.elems = f.elems[:len(f.elems)-1]
	return nil
}

// Clear removes all elements. A cleared folder references no shared storage,
// so its sharing state resets too.
func (f *Folder) Clear() {
	if f.flags.Load()&flagFrozen != 0 {
		panic("folder: mutation of frozen folder")
	}
	f.invalidateDigest()
	f.elems = nil
	f.flags.Store(0)
}

// Contains reports whether any element equals e byte-for-byte.
func (f *Folder) Contains(e []byte) bool {
	for _, x := range f.elems {
		if bytes.Equal(x, e) {
			return true
		}
	}
	return false
}

// ContainsString reports whether any element equals s.
func (f *Folder) ContainsString(s string) bool { return f.Contains([]byte(s)) }

// Strings returns all elements as strings, in order.
func (f *Folder) Strings() []string {
	out := make([]string, len(f.elems))
	for i, e := range f.elems {
		out[i] = string(e)
	}
	return out
}

// Elements returns a deep copy of all elements, in order.
func (f *Folder) Elements() [][]byte {
	out := make([][]byte, len(f.elems))
	for i, e := range f.elems {
		out[i] = clone(e)
	}
	return out
}

// Clone returns a copy of the folder in O(1): storage is shared until either
// side mutates (copy-on-write). Cloning a frozen folder yields an ordinary
// mutable folder. Clone is safe to call concurrently with reads.
func (f *Folder) Clone() *Folder {
	f.flags.Or(flagSlotsShared | flagEltsShared)
	g := &Folder{elems: f.elems}
	g.flags.Store(flagSlotsShared | flagEltsShared)
	// The clone starts with identical contents, so a memoized digest is
	// equally valid for it (and invalidates independently on mutation).
	g.digest.Store(f.digest.Load())
	return g
}

// Equal reports whether two folders hold identical element sequences.
func (f *Folder) Equal(g *Folder) bool {
	if f.Len() != g.Len() {
		return false
	}
	for i := range f.elems {
		if !bytes.Equal(f.elems[i], g.elems[i]) {
			return false
		}
	}
	return true
}

// Append moves nothing: it copies every element of g onto the end of f.
func (f *Folder) Append(g *Folder) {
	f.mutable()
	for _, e := range g.elems {
		f.elems = append(f.elems, clone(e))
	}
}

// String renders a short diagnostic description.
func (f *Folder) String() string {
	return fmt.Sprintf("Folder(%d elems, %d bytes)", f.Len(), f.Size())
}

func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
