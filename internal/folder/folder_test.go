package folder

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFolderZeroValue(t *testing.T) {
	var f Folder
	if f.Len() != 0 || f.Size() != 0 {
		t.Fatalf("zero folder not empty: len=%d size=%d", f.Len(), f.Size())
	}
	if _, err := f.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Pop on empty = %v, want ErrEmpty", err)
	}
	if _, err := f.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Dequeue on empty = %v, want ErrEmpty", err)
	}
	f.Push([]byte("x"))
	if f.Len() != 1 {
		t.Fatalf("len after push = %d", f.Len())
	}
}

func TestFolderStackDiscipline(t *testing.T) {
	f := OfStrings("a", "b", "c")
	got, err := f.PopString()
	if err != nil || got != "c" {
		t.Fatalf("Pop = %q, %v; want c", got, err)
	}
	got, _ = f.PopString()
	if got != "b" {
		t.Fatalf("second Pop = %q, want b", got)
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1", f.Len())
	}
}

func TestFolderQueueDiscipline(t *testing.T) {
	f := OfStrings("a", "b", "c")
	got, err := f.DequeueString()
	if err != nil || got != "a" {
		t.Fatalf("Dequeue = %q, %v; want a", got, err)
	}
	got, _ = f.DequeueString()
	if got != "b" {
		t.Fatalf("second Dequeue = %q, want b", got)
	}
}

func TestFolderMixedStackQueue(t *testing.T) {
	f := OfStrings("1", "2", "3", "4")
	front, _ := f.DequeueString()
	back, _ := f.PopString()
	if front != "1" || back != "4" {
		t.Fatalf("got front=%q back=%q", front, back)
	}
	if f.Len() != 2 {
		t.Fatalf("len = %d, want 2", f.Len())
	}
}

func TestFolderPushCopies(t *testing.T) {
	src := []byte("mutable")
	f := New()
	f.Push(src)
	src[0] = 'X'
	got, _ := f.StringAt(0)
	if got != "mutable" {
		t.Fatalf("push did not copy: %q", got)
	}
}

func TestFolderAtCopies(t *testing.T) {
	f := OfStrings("abc")
	b, _ := f.At(0)
	b[0] = 'X'
	got, _ := f.StringAt(0)
	if got != "abc" {
		t.Fatalf("At did not copy: %q", got)
	}
}

func TestFolderAtOutOfRange(t *testing.T) {
	f := OfStrings("a")
	for _, i := range []int{-1, 1, 99} {
		if _, err := f.At(i); !errors.Is(err, ErrBadIndex) {
			t.Errorf("At(%d) err = %v, want ErrBadIndex", i, err)
		}
	}
}

func TestFolderSetRemove(t *testing.T) {
	f := OfStrings("a", "b", "c")
	if err := f.Set(1, []byte("B")); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"B", "c"}
	got := f.Strings()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if err := f.Remove(5); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("Remove(5) = %v, want ErrBadIndex", err)
	}
	if err := f.Set(-1, nil); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("Set(-1) = %v, want ErrBadIndex", err)
	}
}

func TestFolderPeekFront(t *testing.T) {
	f := OfStrings("first", "last")
	p, err := f.Peek()
	if err != nil || string(p) != "last" {
		t.Fatalf("Peek = %q, %v", p, err)
	}
	fr, err := f.Front()
	if err != nil || string(fr) != "first" {
		t.Fatalf("Front = %q, %v", fr, err)
	}
	if f.Len() != 2 {
		t.Fatalf("peek/front must not consume; len=%d", f.Len())
	}
	empty := New()
	if _, err := empty.Peek(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Peek empty = %v", err)
	}
	if _, err := empty.Front(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Front empty = %v", err)
	}
}

func TestFolderContains(t *testing.T) {
	f := OfStrings("x", "y")
	if !f.ContainsString("x") || f.ContainsString("z") {
		t.Fatalf("Contains wrong: %v", f.Strings())
	}
}

func TestFolderCloneIndependence(t *testing.T) {
	f := OfStrings("a", "b")
	g := f.Clone()
	g.PushString("c")
	if f.Len() != 2 || g.Len() != 3 {
		t.Fatalf("clone not independent: f=%d g=%d", f.Len(), g.Len())
	}
	if !f.Equal(f.Clone()) {
		t.Fatal("clone not equal to original")
	}
	if f.Equal(g) {
		t.Fatal("diverged folders reported equal")
	}
}

func TestFolderAppend(t *testing.T) {
	f := OfStrings("a")
	g := OfStrings("b", "c")
	f.Append(g)
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	if g.Len() != 2 {
		t.Fatalf("append must not consume source; len=%d", g.Len())
	}
}

func TestFolderClear(t *testing.T) {
	f := OfStrings("a", "b")
	f.Clear()
	if f.Len() != 0 {
		t.Fatalf("len after clear = %d", f.Len())
	}
}

func TestFolderSize(t *testing.T) {
	f := Of([]byte("ab"), []byte("cde"))
	if f.Size() != 5 {
		t.Fatalf("Size = %d, want 5", f.Size())
	}
}

// Property: pushing then popping n elements returns them in reverse order.
func TestFolderLIFOProperty(t *testing.T) {
	prop := func(elems [][]byte) bool {
		f := New()
		for _, e := range elems {
			f.Push(e)
		}
		for i := len(elems) - 1; i >= 0; i-- {
			got, err := f.Pop()
			if err != nil {
				return false
			}
			if string(got) != string(elems[i]) {
				return false
			}
		}
		return f.Len() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: enqueue then dequeue preserves order (FIFO).
func TestFolderFIFOProperty(t *testing.T) {
	prop := func(elems [][]byte) bool {
		f := New()
		for _, e := range elems {
			f.Push(e)
		}
		for i := range elems {
			got, err := f.Dequeue()
			if err != nil || string(got) != string(elems[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Size is the sum of element lengths and Len the count.
func TestFolderSizeLenProperty(t *testing.T) {
	prop := func(elems [][]byte) bool {
		f := New()
		total := 0
		for _, e := range elems {
			f.Push(e)
			total += len(e)
		}
		return f.Size() == total && f.Len() == len(elems)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
