package folder

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. Folders must be easy to transfer between sites, so the codec
// is a flat, index-free byte layout:
//
//	folder    := magicF count:uvarint { len:uvarint bytes }*
//	briefcase := magicB count:uvarint { nameLen:uvarint name folder }*
//
// The format is recursive by construction: a folder element may itself be an
// encoded briefcase or folder, which is what lets brokers store queued
// (agent, briefcase) pairs inside ordinary folders.
const (
	magicFolder    = 0xF0
	magicBriefcase = 0xB0
	codecVersion   = 1
)

// ErrCodec is wrapped by all decode failures.
var ErrCodec = errors.New("folder: malformed encoding")

// EncodeFolder serializes f.
func EncodeFolder(f *Folder) []byte {
	buf := make([]byte, 0, 16+f.Size())
	buf = append(buf, magicFolder, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(f.Len()))
	for _, e := range f.elems {
		buf = binary.AppendUvarint(buf, uint64(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// DecodeFolder parses an encoded folder, consuming the entire input.
func DecodeFolder(data []byte) (*Folder, error) {
	f, rest, err := decodeFolder(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after folder", ErrCodec, len(rest))
	}
	return f, nil
}

func decodeFolder(data []byte) (*Folder, []byte, error) {
	if len(data) < 2 || data[0] != magicFolder {
		return nil, nil, fmt.Errorf("%w: missing folder magic", ErrCodec)
	}
	if data[1] != codecVersion {
		return nil, nil, fmt.Errorf("%w: unsupported folder version %d", ErrCodec, data[1])
	}
	data = data[2:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: bad folder count", ErrCodec)
	}
	data = data[n:]
	f := New()
	for i := uint64(0); i < count; i++ {
		elen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < elen {
			return nil, nil, fmt.Errorf("%w: bad element %d length", ErrCodec, i)
		}
		data = data[n:]
		f.Push(data[:elen])
		data = data[elen:]
	}
	return f, data, nil
}

// EncodeBriefcase serializes b. Folders are emitted in sorted name order so
// the encoding is deterministic; two equal briefcases always encode to the
// same bytes, which audit records depend on.
func EncodeBriefcase(b *Briefcase) []byte {
	buf := make([]byte, 0, 32+b.Size())
	buf = append(buf, magicBriefcase, codecVersion)
	names := b.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		f, _ := b.Folder(name)
		buf = append(buf, EncodeFolder(f)...)
	}
	return buf
}

// DecodeBriefcase parses an encoded briefcase, consuming the entire input.
func DecodeBriefcase(data []byte) (*Briefcase, error) {
	if len(data) < 2 || data[0] != magicBriefcase {
		return nil, fmt.Errorf("%w: missing briefcase magic", ErrCodec)
	}
	if data[1] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported briefcase version %d", ErrCodec, data[1])
	}
	data = data[2:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad briefcase count", ErrCodec)
	}
	data = data[n:]
	b := NewBriefcase()
	for i := uint64(0); i < count; i++ {
		nlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < nlen {
			return nil, fmt.Errorf("%w: bad folder name %d", ErrCodec, i)
		}
		data = data[n:]
		name := string(data[:nlen])
		data = data[nlen:]
		f, rest, err := decodeFolder(data)
		if err != nil {
			return nil, fmt.Errorf("folder %q: %w", name, err)
		}
		b.Put(name, f)
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after briefcase", ErrCodec, len(data))
	}
	return b, nil
}

// EncodedSize returns the exact wire size of the briefcase without
// allocating the encoding; the network simulator uses it for byte
// accounting.
func EncodedSize(b *Briefcase) int {
	size := 2 + uvarintLen(uint64(b.Len()))
	for _, name := range b.Names() {
		size += uvarintLen(uint64(len(name))) + len(name)
		f, _ := b.Folder(name)
		size += 2 + uvarintLen(uint64(f.Len()))
		for _, e := range f.elems {
			size += uvarintLen(uint64(len(e))) + len(e)
		}
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
