package folder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Wire format. Folders must be easy to transfer between sites, so the codec
// is a flat, index-free byte layout:
//
//	folder    := magicF count:uvarint { len:uvarint bytes }*
//	briefcase := magicB count:uvarint { nameLen:uvarint name folder }*
//
// The format is recursive by construction: a folder element may itself be an
// encoded briefcase or folder, which is what lets brokers store queued
// (agent, briefcase) pairs inside ordinary folders.
//
// Decoding is zero-copy: decoded elements alias the input buffer, so decode
// takes ownership of its input — callers must not modify or reuse the bytes
// afterwards. Encoding has append-style variants (AppendFolder,
// AppendBriefcase) that write into caller-provided buffers, and GetBuffer/
// PutBuffer expose a pooled scratch buffer for encode paths whose output
// provably does not escape (the transport's request framing).
const (
	magicFolder    = 0xF0
	magicBriefcase = 0xB0
	codecVersion   = 1
)

// ErrCodec is wrapped by all decode failures.
var ErrCodec = errors.New("folder: malformed encoding")

// bufPool recycles encode scratch buffers. Buffers whose capacity grew past
// maxPooledBuf are dropped rather than pinned in the pool forever.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

const maxPooledBuf = 1 << 20

// GetBuffer returns an empty pooled byte slice for encode scratch use.
// Return it with PutBuffer once the encoded bytes have been fully consumed
// (written to a socket, hashed, ...). Never PutBuffer a buffer whose bytes
// a decoded folder may still alias.
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer (or grown from one).
func PutBuffer(buf []byte) {
	if cap(buf) > maxPooledBuf {
		return
	}
	buf = buf[:0]
	bufPool.Put(&buf)
}

// AppendFolder appends the encoding of f to dst and returns the extended
// slice.
func AppendFolder(dst []byte, f *Folder) []byte {
	dst = append(dst, magicFolder, codecVersion)
	dst = binary.AppendUvarint(dst, uint64(f.Len()))
	for _, e := range f.elems {
		dst = binary.AppendUvarint(dst, uint64(len(e)))
		dst = append(dst, e...)
	}
	return dst
}

// EncodeFolder serializes f.
func EncodeFolder(f *Folder) []byte {
	return AppendFolder(make([]byte, 0, 16+f.Size()), f)
}

// DecodeFolder parses an encoded folder, consuming the entire input. The
// returned folder aliases data; the caller transfers ownership of the buffer
// and must not modify it afterwards.
func DecodeFolder(data []byte) (*Folder, error) {
	f, rest, err := decodeFolder(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after folder", ErrCodec, len(rest))
	}
	return f, nil
}

func decodeFolder(data []byte) (*Folder, []byte, error) {
	if len(data) < 2 || data[0] != magicFolder {
		return nil, nil, fmt.Errorf("%w: missing folder magic", ErrCodec)
	}
	if data[1] != codecVersion {
		return nil, nil, fmt.Errorf("%w: unsupported folder version %d", ErrCodec, data[1])
	}
	data = data[2:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: bad folder count", ErrCodec)
	}
	data = data[n:]
	// Preallocate the slot array, capping by the bytes actually present so a
	// forged count cannot balloon memory (every element costs at least one
	// length byte). Compare in uint64: a count >= 2^63 must clamp, not
	// overflow int into a negative make() capacity.
	slots := len(data)
	if count < uint64(slots) {
		slots = int(count)
	}
	f := &Folder{elems: make([][]byte, 0, slots)}
	for i := uint64(0); i < count; i++ {
		elen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < elen {
			return nil, nil, fmt.Errorf("%w: bad element %d length", ErrCodec, i)
		}
		data = data[n:]
		f.elems = append(f.elems, data[:elen:elen])
		data = data[elen:]
	}
	return f, data, nil
}

// AppendBriefcase appends the encoding of b to dst and returns the extended
// slice. Folders are emitted in sorted name order so the encoding is
// deterministic; two equal briefcases always encode to the same bytes, which
// audit records depend on.
func AppendBriefcase(dst []byte, b *Briefcase) []byte {
	dst = append(dst, magicBriefcase, codecVersion)
	names := b.Names()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = AppendFolder(dst, b.folders[name])
	}
	return dst
}

// EncodeBriefcase serializes b.
func EncodeBriefcase(b *Briefcase) []byte {
	return AppendBriefcase(make([]byte, 0, 32+b.Size()), b)
}

// DecodeBriefcase parses an encoded briefcase, consuming the entire input.
// The returned briefcase's folders alias data; the caller transfers
// ownership of the buffer and must not modify it afterwards.
func DecodeBriefcase(data []byte) (*Briefcase, error) {
	if len(data) < 2 || data[0] != magicBriefcase {
		return nil, fmt.Errorf("%w: missing briefcase magic", ErrCodec)
	}
	if data[1] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported briefcase version %d", ErrCodec, data[1])
	}
	data = data[2:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad briefcase count", ErrCodec)
	}
	data = data[n:]
	b := NewBriefcase()
	for i := uint64(0); i < count; i++ {
		nlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < nlen {
			return nil, fmt.Errorf("%w: bad folder name %d", ErrCodec, i)
		}
		data = data[n:]
		name := string(data[:nlen])
		data = data[nlen:]
		f, rest, err := decodeFolder(data)
		if err != nil {
			return nil, fmt.Errorf("folder %q: %w", name, err)
		}
		b.Put(name, f)
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after briefcase", ErrCodec, len(data))
	}
	return b, nil
}

// EncodedSize returns the exact wire size of the briefcase without
// allocating the encoding; the network simulator uses it for byte
// accounting.
func EncodedSize(b *Briefcase) int {
	size := 2 + uvarintLen(uint64(b.Len()))
	for _, name := range b.Names() {
		size += uvarintLen(uint64(len(name))) + len(name)
		f := b.folders[name]
		size += 2 + uvarintLen(uint64(f.Len()))
		for _, e := range f.elems {
			size += uvarintLen(uint64(len(e))) + len(e)
		}
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
