package folder

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// A forged element count near 2^64 must fail cleanly: converted to int it
// would go negative and panic make(). (Found by review; kept as a fixed
// regression alongside the fuzz corpus.)
func TestDecodeForgedCountNoPanic(t *testing.T) {
	folderFrame := binary.AppendUvarint([]byte{magicFolder, codecVersion}, math.MaxUint64)
	if _, err := DecodeFolder(folderFrame); err == nil {
		t.Fatal("forged folder count accepted")
	}
	bcFrame := []byte{magicBriefcase, codecVersion, 1, 1, 'F'}
	bcFrame = append(bcFrame, folderFrame...)
	if _, err := DecodeBriefcase(bcFrame); err == nil {
		t.Fatal("forged briefcase folder count accepted")
	}
}

// FuzzDecodeBriefcase checks the two codec safety properties the transport
// relies on: decoding arbitrary bytes never panics, and for any input that
// decodes, the decoded briefcase survives an encode/decode round trip
// unchanged (encode is canonical, so it also re-encodes to identical bytes).
func FuzzDecodeBriefcase(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magicBriefcase, codecVersion, 0})
	f.Add([]byte{magicFolder, codecVersion, 0})

	seed := NewBriefcase()
	seed.PutString("HOST", "site-1")
	seed.Put("CODE", OfStrings("jump site-1", "bc_push RESULT done"))
	seed.Put("BLOB", Of([]byte{0, 1, 2, 0xFF}, nil, []byte("x")))
	f.Add(EncodeBriefcase(seed))

	nested := NewBriefcase()
	nested.Put("INNER", Of(EncodeBriefcase(seed), EncodeFolder(OfStrings("a", "b"))))
	f.Add(EncodeBriefcase(nested))

	f.Fuzz(func(t *testing.T, data []byte) {
		bc, err := DecodeBriefcase(data)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		enc := EncodeBriefcase(bc)
		back, err := DecodeBriefcase(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bc.Equal(back) {
			t.Fatalf("round trip changed briefcase: %v != %v", bc, back)
		}
		if again := EncodeBriefcase(back); !bytes.Equal(enc, again) {
			t.Fatalf("encoding is not canonical: % x != % x", enc, again)
		}
	})
}

// FuzzCabinetLoad mirrors FuzzDecodeBriefcase for the cabinet restore path
// tacomad boots through: loading arbitrary bytes never panics, a failed
// load leaves the cabinet untouched, and a successful load rebuilds a
// membership index consistent with the folder contents and survives a
// Flush/Load round trip unchanged.
func FuzzCabinetLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magicBriefcase, codecVersion, 0})

	seed := NewBriefcase()
	seed.PutString("MBOX:alice", "a message")
	seed.Put("SEEN", OfStrings("roamer-1", "roamer-1", "roamer-2"))
	seed.Put("BLOB", Of([]byte{0, 1, 2, 0xFF}, nil, []byte("x")))
	f.Add(EncodeBriefcase(seed))

	f.Fuzz(func(t *testing.T, data []byte) {
		cab := NewCabinet()
		cab.AppendString("PRE", "existing")
		if err := cab.Load(bytes.NewReader(data)); err != nil {
			// Malformed input must fail cleanly and leave prior contents.
			if !cab.ContainsString("PRE", "existing") {
				t.Fatal("failed load clobbered the cabinet")
			}
			return
		}
		// Index consistency: every stored element is indexed, and lengths
		// agree between the index-backed and snapshot views.
		for _, name := range cab.Names() {
			fo := cab.Snapshot(name)
			if cab.FolderLen(name) != fo.Len() {
				t.Fatalf("folder %q: FolderLen %d, snapshot %d", name, cab.FolderLen(name), fo.Len())
			}
			for i := 0; i < fo.Len(); i++ {
				e, err := fo.At(i)
				if err != nil {
					t.Fatal(err)
				}
				if !cab.Contains(name, e) {
					t.Fatalf("folder %q: element %d missing from index", name, i)
				}
			}
		}
		// Flush/Load round trip: the loaded state re-persists unchanged.
		var buf bytes.Buffer
		if err := cab.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		cab2 := NewCabinet()
		if err := cab2.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-load of flushed image failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := cab2.Flush(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("Flush/Load round trip changed the cabinet image")
		}
	})
}

// FuzzDecodeFolder is the folder-level analogue; folders also arrive as raw
// elements (queued meeting requests) and must never panic the decoder.
func FuzzDecodeFolder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magicFolder, codecVersion, 0})
	f.Add(binary.AppendUvarint([]byte{magicFolder, codecVersion}, math.MaxUint64))
	f.Add(EncodeFolder(OfStrings("one", "two", "")))
	f.Add(EncodeFolder(Of([]byte{0xF0, 0x01}, nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		fo, err := DecodeFolder(data)
		if err != nil {
			return
		}
		enc := EncodeFolder(fo)
		back, err := DecodeFolder(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !fo.Equal(back) {
			t.Fatalf("round trip changed folder: %v != %v", fo, back)
		}
	})
}
