package folder

import (
	"bytes"
	"fmt"
	"testing"
)

func deltaFolder(fill byte, n int) *Folder {
	e := make([]byte, n)
	for i := range e {
		e[i] = fill
	}
	return Of(e)
}

func TestDeltaCacheBasics(t *testing.T) {
	c := NewDeltaCache(1 << 10)
	enc := EncodeFolder(deltaFolder('a', 100))
	h := HashBytes(enc)
	stored := c.PutCopy(h, enc)
	if !bytes.Equal(stored, enc) {
		t.Fatal("PutCopy mangled bytes")
	}
	enc[0] ^= 0xFF // caller may reuse its buffer; the cache must hold a copy
	got, ok := c.Get(h)
	if !ok || got[0] == enc[0] {
		t.Fatal("cache aliased the caller's buffer")
	}
	c.Forget(h)
	if _, ok := c.Get(h); ok {
		t.Fatal("Forget left the entry")
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d after Forget", c.Bytes())
	}
}

// TestDeltaCacheHostilePeerCannotPinUnboundedBytes floods a cache the way a
// hostile peer would — an endless stream of unique cacheable folders — and
// checks the byte bound holds throughout, old entries are evicted rather
// than new ones refused (so the attacker degrades itself to full sends,
// not the victim to unbounded memory), and the eviction bookkeeping stays
// consistent.
func TestDeltaCacheHostilePeerCannotPinUnboundedBytes(t *testing.T) {
	const maxBytes = 4 << 10
	c := NewDeltaCache(maxBytes)
	var hashes []Hash
	for i := 0; i < 1000; i++ {
		enc := EncodeFolder(OfStrings(fmt.Sprintf("unique-folder-%06d-%s", i, string(make([]byte, 100)))))
		h := HashBytes(enc)
		c.PutCopy(h, enc)
		hashes = append(hashes, h)
		if c.Bytes() > maxBytes {
			t.Fatalf("after %d inserts cache holds %d bytes > bound %d", i+1, c.Bytes(), maxBytes)
		}
	}
	if _, ok := c.Get(hashes[0]); ok {
		t.Fatal("oldest entry survived a 1000-entry flood of a 4KiB cache")
	}
	if _, ok := c.Get(hashes[len(hashes)-1]); !ok {
		t.Fatal("newest entry was refused — victim degraded instead of attacker")
	}
	// An entry bigger than the whole cache must not wipe it.
	before := c.Len()
	huge := EncodeFolder(deltaFolder('h', maxBytes+1))
	c.PutCopy(HashBytes(huge), huge)
	if c.Len() != before {
		t.Fatal("oversized entry disturbed the cache")
	}
}

// TestDeltaCacheForgetThenReinsert pins the miss-repair path: after Forget
// (a peer reported a miss) and re-insert, the entry must age as the newest
// in the cache — a stale eviction-order slot from before the Forget must
// not get it evicted ahead of genuinely older entries, which would re-miss
// exactly the entry the miss protocol just repaired.
func TestDeltaCacheForgetThenReinsert(t *testing.T) {
	entry := func(i int) ([]byte, Hash) {
		enc := EncodeFolder(OfStrings(fmt.Sprintf("entry-%03d-%s", i, string(make([]byte, 60)))))
		return enc, HashBytes(enc)
	}
	enc0, h0 := entry(0)
	c := NewDeltaCache(5 * len(enc0)) // room for ~5 entries
	c.PutCopy(h0, enc0)
	_, h1 := entry(1)
	enc1, _ := entry(1)
	c.PutCopy(h1, enc1)

	c.Forget(h0)
	c.PutCopy(h0, enc0) // repaired: h0 is now the newest entry

	// Fill until the oldest genuine entry (h1) evicts; h0 must survive it.
	for i := 2; i < 6; i++ {
		enc, h := entry(i)
		c.PutCopy(h, enc)
	}
	if _, ok := c.Get(h0); !ok {
		t.Fatal("re-inserted entry evicted via its stale pre-Forget order slot")
	}
	if _, ok := c.Get(h1); ok {
		t.Fatal("oldest entry survived while capacity forced an eviction")
	}
}

// TestDeltaEncodeWarmRefs pins the ref mechanics outside the kernel: second
// encode of the same briefcase against a warm cache must be much smaller
// and must decode identically through the receiver's cache.
func TestDeltaEncodeWarmRefs(t *testing.T) {
	bc := NewBriefcase()
	bc.Put("BIG", deltaFolder('x', 1000))
	bc.Put("FROZEN", deltaFolder('f', 500).Freeze())
	bc.PutString("SMALL", "tiny")

	tx, rx := NewDeltaCache(0), NewDeltaCache(0)
	receive := func(enc []byte) *Briefcase {
		t.Helper()
		got, missing, err := DecodeBriefcaseDelta(enc, rx.Get, func(h Hash, seg []byte) { rx.PutCopy(h, seg) })
		if err != nil || len(missing) > 0 {
			t.Fatalf("decode: err=%v missing=%d", err, len(missing))
		}
		return got
	}

	cold := AppendBriefcaseDelta(nil, bc, tx, tx.Get, nil, nil)
	if got := receive(cold); !bc.Equal(got) {
		t.Fatal("cold round trip changed briefcase")
	}
	warm := AppendBriefcaseDelta(nil, bc, tx, tx.Get, nil, nil)
	if got := receive(warm); !bc.Equal(got) {
		t.Fatal("warm round trip changed briefcase")
	}
	if len(warm) >= len(cold)/4 {
		t.Fatalf("warm encode %dB not much smaller than cold %dB — refs not taken", len(warm), len(cold))
	}
}

// FuzzDecodeDelta holds the delta decoder to the transport's safety bar:
// arbitrary bytes never panic, anything that decodes cleanly round-trips
// through a cold re-encode, warm re-encodes (refs) decode identically, and
// the miss path is lossless — refs against an empty receiver report exactly
// the missing hashes, and the forced-full fallback re-ships a briefcase
// that decodes equal. This is the codec half of the meet2 miss protocol.
func FuzzDecodeDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magicBriefcaseDelta, codecVersion, 0})
	f.Add([]byte{magicBriefcaseDelta, codecVersion, 1, 1, 'F', EntryRef})

	seed := NewBriefcase()
	seed.Put("CODE", OfStrings("bc_push TRAIL [host]", string(make([]byte, 100))))
	seed.PutString("HOST", "site-1")
	seed.Put("BLOB", deltaFolder('b', 80))
	f.Add(AppendBriefcaseDelta(nil, seed, NewDeltaCache(0), nil, nil, nil))
	warmTx := NewDeltaCache(0)
	AppendBriefcaseDelta(nil, seed, warmTx, warmTx.Get, nil, nil)
	f.Add(AppendBriefcaseDelta(nil, seed, warmTx, warmTx.Get, nil, nil)) // ref-bearing seed

	f.Fuzz(func(t *testing.T, data []byte) {
		empty := func(Hash) ([]byte, bool) { return nil, false }
		bc, missing, err := DecodeBriefcaseDelta(data, empty, nil)
		if err != nil {
			return // malformed input may fail, never panic
		}
		if bc == nil {
			if len(missing) == 0 {
				t.Fatal("nil briefcase with no missing hashes and no error")
			}
			return // unresolvable refs: nothing further to check from raw bytes
		}
		// Cold re-encode must round-trip.
		tx, rx := NewDeltaCache(0), NewDeltaCache(0)
		enc := AppendBriefcaseDelta(nil, bc, tx, tx.Get, nil, nil)
		back, miss2, err := DecodeBriefcaseDelta(enc, rx.Get, func(h Hash, seg []byte) { rx.PutCopy(h, seg) })
		if err != nil || len(miss2) > 0 {
			t.Fatalf("re-decode of fresh encoding failed: err=%v missing=%d", err, len(miss2))
		}
		if !bc.Equal(back) {
			t.Fatal("cold round trip changed briefcase")
		}
		// Warm re-encode (refs against tx) must decode identically via rx,
		// which holds the same entries per the mutual-insertion invariant.
		warm := AppendBriefcaseDelta(nil, bc, tx, tx.Get, nil, nil)
		back2, miss3, err := DecodeBriefcaseDelta(warm, rx.Get, func(h Hash, seg []byte) { rx.PutCopy(h, seg) })
		if err != nil || len(miss3) > 0 {
			t.Fatalf("warm decode failed: err=%v missing=%d", err, len(miss3))
		}
		if !bc.Equal(back2) {
			t.Fatal("warm round trip changed briefcase")
		}
		// Miss path: the same warm encoding against an empty receiver must
		// report misses (if it contains refs), and the forced-full fallback
		// must round-trip — the codec half of the meet2 retry.
		if _, missWarm, err := DecodeBriefcaseDelta(warm, empty, nil); err == nil && len(missWarm) > 0 {
			full := AppendBriefcaseDelta(nil, bc, NewDeltaCache(0), nil, nil, nil)
			back3, miss4, err := DecodeBriefcaseDelta(full, empty, nil)
			if err != nil || len(miss4) > 0 {
				t.Fatalf("forced-full fallback failed: err=%v missing=%d", err, len(miss4))
			}
			if !bc.Equal(back3) {
				t.Fatal("miss→full fallback changed briefcase")
			}
		}
	})
}
