package folder

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFolderCodecRoundTrip(t *testing.T) {
	f := Of([]byte("alpha"), nil, []byte{0, 1, 2, 255}, []byte("末尾"))
	enc := EncodeFolder(f)
	g, err := DecodeFolder(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("round trip mismatch: %v vs %v", f.Strings(), g.Strings())
	}
}

func TestFolderCodecEmpty(t *testing.T) {
	g, err := DecodeFolder(EncodeFolder(New()))
	if err != nil || g.Len() != 0 {
		t.Fatalf("empty round trip: %v, %v", g, err)
	}
}

func TestBriefcaseCodecRoundTrip(t *testing.T) {
	b := NewBriefcase()
	b.Put("CODE", OfStrings("proc main {} { return 1 }"))
	b.Put("HOST", OfStrings("site-7"))
	b.Put("DATA", Of([]byte{0xFF, 0x00}, []byte("binary\x00stuff")))
	b.Put("EMPTY", New())
	enc := EncodeBriefcase(b)
	c, err := DecodeBriefcase(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(c) {
		t.Fatal("briefcase round trip mismatch")
	}
}

func TestBriefcaseCodecDeterministic(t *testing.T) {
	// Same logical contents inserted in different orders encode identically.
	a := NewBriefcase()
	a.PutString("X", "1")
	a.PutString("Y", "2")
	b := NewBriefcase()
	b.PutString("Y", "2")
	b.PutString("X", "1")
	if !bytes.Equal(EncodeBriefcase(a), EncodeBriefcase(b)) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestCodecRecursive(t *testing.T) {
	// A folder element may itself be an encoded briefcase (broker queuing).
	inner := NewBriefcase()
	inner.PutString("AGENT", "queued-agent-code")
	outer := NewBriefcase()
	outer.Put("PENDING", Of(EncodeBriefcase(inner)))

	enc := EncodeBriefcase(outer)
	dec, err := DecodeBriefcase(enc)
	if err != nil {
		t.Fatal(err)
	}
	pending, _ := dec.Folder("PENDING")
	raw, _ := pending.At(0)
	inner2, err := DecodeBriefcase(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := inner2.GetString("AGENT")
	if got != "queued-agent-code" {
		t.Fatalf("nested briefcase lost: %q", got)
	}
}

func TestDecodeFolderErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty input":     {},
		"bad magic":       {0x00, codecVersion},
		"bad version":     {magicFolder, 99},
		"truncated count": {magicFolder, codecVersion},
		"short element":   EncodeFolder(Of([]byte("abcdef")))[:6],
	}
	for name, data := range cases {
		if _, err := DecodeFolder(data); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", name, err)
		}
	}
}

func TestDecodeBriefcaseErrors(t *testing.T) {
	good := EncodeBriefcase(func() *Briefcase {
		b := NewBriefcase()
		b.PutString("F", "v")
		return b
	}())
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   {magicFolder, codecVersion}, // folder magic where briefcase expected
		"bad version": {magicBriefcase, 42},
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0xAB),
	}
	for name, data := range cases {
		if _, err := DecodeBriefcase(data); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", name, err)
		}
	}
}

func TestDecodeFolderTrailing(t *testing.T) {
	enc := append(EncodeFolder(OfStrings("a")), 0x01)
	if _, err := DecodeFolder(enc); !errors.Is(err, ErrCodec) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestEncodedSizeExact(t *testing.T) {
	b := NewBriefcase()
	b.Put("CODE", OfStrings("some code", ""))
	b.Put("N", Of(bytes.Repeat([]byte{7}, 300))) // forces multi-byte uvarint
	if got, want := EncodedSize(b), len(EncodeBriefcase(b)); got != want {
		t.Fatalf("EncodedSize = %d, actual encoding = %d", got, want)
	}
}

// Property: encode/decode is the identity on folders.
func TestFolderCodecProperty(t *testing.T) {
	prop := func(elems [][]byte) bool {
		f := New()
		for _, e := range elems {
			f.Push(e)
		}
		g, err := DecodeFolder(EncodeFolder(f))
		return err == nil && f.Equal(g)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity on briefcases, and EncodedSize is
// always exact.
func TestBriefcaseCodecProperty(t *testing.T) {
	prop := func(names []string, payloads [][]byte) bool {
		b := NewBriefcase()
		for i, name := range names {
			f := New()
			if i < len(payloads) {
				f.Push(payloads[i])
			}
			b.Put(name, f)
		}
		enc := EncodeBriefcase(b)
		if len(enc) != EncodedSize(b) {
			return false
		}
		c, err := DecodeBriefcase(enc)
		return err == nil && b.Equal(c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeBriefcase(b *testing.B) {
	bc := NewBriefcase()
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 8; i++ {
		bc.Put(string(rune('A'+i)), Of(payload))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBriefcase(bc)
	}
}

func BenchmarkDecodeBriefcase(b *testing.B) {
	bc := NewBriefcase()
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 8; i++ {
		bc.Put(string(rune('A'+i)), Of(payload))
	}
	enc := EncodeBriefcase(bc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBriefcase(enc); err != nil {
			b.Fatal(err)
		}
	}
}
