package tacl

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
)

// Edge-semantics pins for the bytecode VM: park/jump signals crossing
// nested proc and loop boundaries, step budgets tripping inside a host
// command that itself evaluates TacL, and pooled-interpreter hygiene. All
// behavioral cases run through the three-engine matrix; any divergence from
// the reference interpreter fails.

type vmEdgeResult struct {
	out      string
	isErr    bool
	errText  string
	steps    int
	isJump   bool
	jumpDest string
	isPark   bool
	parkName string
	isBudget bool
	hostRuns int
}

func runVMEdge(src string, engine Engine, maxSteps int) vmEdgeResult {
	in := New()
	in.SetEngine(engine)
	in.MaxSteps = maxSteps
	in.Register("jump", func(_ *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("jump needs one arg")
		}
		return "", JumpSignal(args[0])
	})
	in.Register("park", func(_ *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("park needs one arg")
		}
		return "", ParkSignal(args[0])
	})
	// hosteval mimics kernel commands that run TacL internally (the guard's
	// ACL hooks, meet bodies): steps charged inside the host call must land
	// in the same budget accounting on every engine.
	hostRuns := 0
	in.Register("hosteval", func(in *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("hosteval needs one arg")
		}
		hostRuns++
		return in.EvalCached(args[0])
	})
	out, err := in.Eval(src)
	r := vmEdgeResult{out: out, steps: in.Steps, hostRuns: hostRuns}
	if err != nil {
		r.isErr = true
		r.errText = err.Error()
		if d, ok := IsJump(err); ok {
			r.isJump, r.jumpDest = true, d
		}
		if n, ok := IsPark(err); ok {
			r.isPark, r.parkName = true, n
		}
		r.isBudget = errors.Is(err, ErrBudget)
	}
	return r
}

var vmEdgeCorpus = []string{
	// Jump raised from a proc called inside nested loops.
	`proc hop {d} { jump $d }
set i 0
while {$i < 5} { if {$i == 2} { hop H2 }; set i [expr $i + 1] }`,
	// Park raised from a proc inside a foreach.
	`proc nap {n} { park $n }
foreach x {a b c} { if {$x eq "b"} { nap w1 } }`,
	// Jump from a loop inside a proc inside a loop inside a proc.
	`proc outer {d} { foreach q {1 2} { inner $d } }
proc inner {d} { while {1} { jump $d } }
outer dest9`,
	// Park from deep in a counted loop.
	`set i 0
while {1} { set i [expr $i + 1]; if {$i > 3} { park deep } }`,
	// Signals crossing a [cmd] substitution boundary (inlined by the VM).
	`set x [jump viaarg]; set x`,
	`while {1} { set x [park viaarg] }`,
	`proc relay {} { set r [jump relayed]; set r }
foreach q {a b} { relay }`,
	// Park raised while proc frames hold live slot arrays: the signal and
	// step count must agree, and nothing about the slotted state may leak
	// into a later activation (TestParkedInterpReuse covers the reuse).
	`proc work {n} { set acc 0; set i 0; while {$i < 10} { incr acc $i; incr i; if {$i == $n} { park mid } }; set acc }
work 4`,
	// Park under a diverted frame (upvar aliases the caller's slot).
	`proc f {vn} { upvar 1 $vn v; set v 1; park w2; set v 2 }
set t 0; f t`,
	// Park after a computed-name write spilled to the frame map.
	`proc f {} { set name x; set $name 5; park w3 }
f`,
	// Host command that evaluates TacL internally.
	`hosteval {set a 1; set b 2; set c 3}`,
	`set i 0
while {$i < 20} { hosteval {set t 1; set t 2; set t 3; set t 4}; set i [expr $i + 1] }`,
	`foreach x {a b c d} { hosteval {unknowncmd; set u 1} }`,
	// Errors inside the host-run script keep their text through both layers.
	`hosteval {set}`,
	`hosteval {while {1} {}}`,
}

func TestVMEdgeSemantics(t *testing.T) {
	for _, src := range vmEdgeCorpus {
		// Budgets from "trips almost immediately" through "mid-host-command"
		// to "never trips": the exact step at which ErrBudget fires — even
		// inside hosteval's nested EvalCached — must agree everywhere.
		// (No unlimited entry: some corpus scripts spin forever by design.)
		for _, budget := range []int{1, 2, 3, 5, 7, 11, 19, 40, 150, 1000} {
			ref := runVMEdge(src, EngineReference, budget)
			for _, e := range allEngines[:2] { // vm, ast
				got := runVMEdge(src, e.engine, budget)
				if got != ref {
					t.Errorf("engine %s budget %d src %q:\n got %+v\nwant %+v",
						e.name, budget, src, got, ref)
				}
			}
		}
	}
}

// TestVMBudgetMidHostCommand pins the precise failure step when the budget
// trips inside a host command's own EvalCached: the partial side effects
// before exhaustion must be identical, and the error must carry the inner
// script's line number on every engine.
func TestVMBudgetMidHostCommand(t *testing.T) {
	for _, e := range allEngines {
		in := New()
		in.SetEngine(e.engine)
		in.MaxSteps = 4
		var effects []string
		in.Register("mark", func(_ *Interp, args []string) (string, error) {
			effects = append(effects, args[0])
			return "", nil
		})
		in.Register("hosteval", func(in *Interp, args []string) (string, error) {
			return in.EvalCached(args[0])
		})
		_, err := in.Eval("mark a\nhosteval {mark b\nmark c\nmark d\nmark e}")
		if err == nil || !errors.Is(err, ErrBudget) {
			t.Fatalf("engine %v: want budget error, got %v", e.name, err)
		}
		// Steps: mark a, hosteval, mark b, mark c, then exhaustion charging
		// mark d (the inner script's line 3). The budget error surfaces
		// through hosteval's command frame, like any host command error.
		wantErr := fmt.Sprintf("tacl: line 2: hosteval: %v after 4 steps (line 3)", ErrBudget)
		if got := err.Error(); got != wantErr {
			t.Errorf("engine %v: error = %q, want %q", e.name, got, wantErr)
		}
		if got := fmt.Sprint(effects); got != "[a b c]" {
			t.Errorf("engine %v: effects = %v, want [a b c]", e.name, got)
		}
		if in.Steps != 5 {
			t.Errorf("engine %v: steps = %d, want 5", e.name, in.Steps)
		}
	}
}

// TestPutResetsVMState checks pooled-interpreter hygiene for the VM's
// per-activation machinery: loop frames returned to the freelist must not
// pin foreach element lists, and Put must clear the engine override and
// line state so the next activation starts from the default VM engine.
func TestPutResetsVMState(t *testing.T) {
	in := New()
	if _, err := in.Eval(`foreach x {alpha beta gamma} { set y $x }`); err != nil {
		t.Fatal(err)
	}
	if len(in.freeVMFrames) == 0 {
		t.Fatal("expected a pooled VM frame after a foreach script")
	}
	for _, fr := range in.freeVMFrames {
		for i, l := range fr.lists {
			if l != nil {
				t.Errorf("pooled frame slot %d still pins a foreach list: %v", i, l)
			}
		}
	}
	in.SetEngine(EngineReference)
	in.curLine = 7
	Put(in)
	if in.noVM || in.direct {
		t.Error("Put must reset the engine override to the default VM")
	}
	if in.curLine != 0 {
		t.Error("Put must clear line state")
	}
}

// TestVMStepAccountingMatchesReference spot-checks that step counts for a
// loop-heavy script are identical across engines at several budgets — the
// property the guard's cycle metering depends on.
func TestVMStepAccountingMatchesReference(t *testing.T) {
	src := `set n 0
set i 0
while {$i < 9} {
	foreach q {x y z} { set n [expr $n + 1] }
	set i [expr $i + 1]
}
set n`
	ref := runVMEdge(src, EngineReference, 0)
	if ref.isErr || ref.out != strconv.Itoa(27) {
		t.Fatalf("reference sanity: %+v", ref)
	}
	for _, e := range allEngines {
		got := runVMEdge(src, e.engine, 0)
		if got != ref {
			t.Errorf("engine %s: %+v != %+v", e.name, got, ref)
		}
	}
}
