package tacl

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

// Property: expr integer arithmetic matches Go's, with Tcl's flooring
// division/modulo semantics.
func TestExprIntegerArithmeticProperty(t *testing.T) {
	in := New()
	prop := func(a, b int32) bool {
		src := fmt.Sprintf("expr {%d + %d * 2 - (%d - %d)}", a, b, b, a)
		got, err := in.Eval(src)
		if err != nil {
			return false
		}
		want := int64(a) + int64(b)*2 - (int64(b) - int64(a))
		return got == strconv.FormatInt(want, 10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flooring division identity a == (a/b)*b + a%b with sign of the
// remainder following the divisor.
func TestExprFlooringDivModProperty(t *testing.T) {
	in := New()
	prop := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		q, err := in.Eval(fmt.Sprintf("expr {%d / %d}", a, b))
		if err != nil {
			return false
		}
		r, err := in.Eval(fmt.Sprintf("expr {%d %% %d}", a, b))
		if err != nil {
			return false
		}
		qi, _ := strconv.ParseInt(q, 10, 64)
		ri, _ := strconv.ParseInt(r, 10, 64)
		if qi*int64(b)+ri != int64(a) {
			return false
		}
		// Remainder takes the divisor's sign (or is zero).
		return ri == 0 || (ri > 0) == (b > 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison operators agree with Go on random integers.
func TestExprComparisonProperty(t *testing.T) {
	in := New()
	prop := func(a, b int16) bool {
		for op, want := range map[string]bool{
			"<":  a < b,
			"<=": a <= b,
			">":  a > b,
			">=": a >= b,
			"==": a == b,
			"!=": a != b,
		} {
			got, err := in.Eval(fmt.Sprintf("expr {%d %s %d}", a, op, b))
			if err != nil || got != FormatBool(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: set/get round-trips arbitrary strings through variables,
// including braces, quotes, and dollars, when passed as data.
func TestVariableRoundTripProperty(t *testing.T) {
	prop := func(value string) bool {
		in := New()
		in.SetGlobal("v", value)
		got, err := in.Eval(`set v`)
		return err == nil && got == value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lappend then lindex retrieves every element unchanged (list
// quoting is transparent), for newline-free strings.
func TestLappendLindexProperty(t *testing.T) {
	prop := func(elems []string) bool {
		in := New()
		for _, e := range elems {
			in.SetGlobal("e", e)
			if _, err := in.Eval(`lappend acc $e`); err != nil {
				return false
			}
		}
		if len(elems) == 0 {
			return true
		}
		for i, e := range elems {
			got, err := in.Eval(fmt.Sprintf(`lindex $acc %d`, i))
			if err != nil || got != e {
				return false
			}
		}
		n, err := in.Eval(`llength $acc`)
		return err == nil && n == strconv.Itoa(len(elems))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: string reverse is an involution and preserves length.
func TestStringReverseProperty(t *testing.T) {
	in := New()
	prop := func(s string) bool {
		in.SetGlobal("s", s)
		once, err := in.Eval(`string reverse $s`)
		if err != nil {
			return false
		}
		in.SetGlobal("s", once)
		twice, err := in.Eval(`string reverse $s`)
		return err == nil && twice == s && len(once) == len(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
