package tacl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Additional builtins: Tcl's switch, list surgery (lassign, linsert, lset,
// lrepeat), and the string subcommands agents keep reaching for. Registered
// alongside the core set.

func init() {
	extra := map[string]CmdFunc{
		"switch":  cmdSwitch,
		"lassign": cmdLassign,
		"linsert": cmdLinsert,
		"lset":    cmdLset,
		"lrepeat": cmdLrepeat,
		"upvar":   cmdUpvar,
		"uplevel": cmdUplevel,
	}
	for name, fn := range extra {
		extraBuiltins[name] = fn
	}
}

// extraBuiltins collects late-registered builtins; registerBuiltinsInto
// drains it so New() picks everything up regardless of file order.
var extraBuiltins = map[string]CmdFunc{}

// cmdSwitch implements Tcl's switch:
//
//	switch ?-exact|-glob? value {pattern body ?pattern body ...?}
//	switch ?-exact|-glob? value pattern body ?pattern body ...?
//
// "default" as the last pattern matches anything. A body of "-" falls
// through to the next body, as in Tcl.
func cmdSwitch(in *Interp, args []string) (string, error) {
	mode := "-exact"
	if len(args) > 0 && (args[0] == "-exact" || args[0] == "-glob") {
		mode = args[0]
		args = args[1:]
	}
	if len(args) < 2 {
		return "", errors.New(`wrong # args: should be "switch ?-exact|-glob? value pattern body ..."`)
	}
	value := args[0]
	rest := args[1:]
	var pairs []string
	if len(rest) == 1 {
		items, err := ParseList(rest[0])
		if err != nil {
			return "", err
		}
		pairs = items
	} else {
		pairs = rest
	}
	if len(pairs)%2 != 0 {
		return "", errors.New("switch: pattern with no body")
	}
	for i := 0; i < len(pairs); i += 2 {
		pattern, body := pairs[i], pairs[i+1]
		matched := pattern == "default" && i == len(pairs)-2
		if !matched {
			if mode == "-glob" {
				matched = globMatch(pattern, value)
			} else {
				matched = pattern == value
			}
		}
		if !matched {
			continue
		}
		// Fall through "-" bodies to the next non-"-" body.
		for body == "-" {
			i += 2
			if i >= len(pairs) {
				return "", fmt.Errorf("switch: no body specified for pattern %q", pairs[i-2])
			}
			body = pairs[i+1]
		}
		return in.EvalCached(body)
	}
	return "", nil
}

// cmdLassign distributes list elements into variables, returning the
// unassigned remainder. Extra variables are set to "".
func cmdLassign(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "lassign list varName ?varName ...?"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	for i, name := range args[1:] {
		if i < len(elems) {
			in.setVar(name, elems[i])
		} else {
			in.setVar(name, "")
		}
	}
	if len(args)-1 < len(elems) {
		return FormatList(elems[len(args)-1:]), nil
	}
	return "", nil
}

// cmdLinsert inserts elements before the given index.
func cmdLinsert(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, -1, "linsert list index element ?element ...?"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	i, err := listIndex(args[1], len(elems))
	if err != nil {
		return "", err
	}
	if args[1] == "end" {
		i = len(elems) // Tcl's linsert end appends
	}
	if i < 0 {
		i = 0
	}
	if i > len(elems) {
		i = len(elems)
	}
	out := make([]string, 0, len(elems)+len(args)-2)
	out = append(out, elems[:i]...)
	out = append(out, args[2:]...)
	out = append(out, elems[i:]...)
	return FormatList(out), nil
}

// cmdLset replaces one element of a list stored in a variable.
func cmdLset(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "lset varName index value"); err != nil {
		return "", err
	}
	cur, err := in.getVar(args[0])
	if err != nil {
		return "", err
	}
	elems, err := ParseList(cur)
	if err != nil {
		return "", err
	}
	i, err := listIndex(args[1], len(elems))
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(elems) {
		return "", fmt.Errorf("lset: index %q out of range", args[1])
	}
	elems[i] = args[2]
	v := FormatList(elems)
	in.setVar(args[0], v)
	return v, nil
}

// cmdLrepeat builds a list of count copies of the elements.
func cmdLrepeat(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "lrepeat count ?element ...?"); err != nil {
		return "", err
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return "", fmt.Errorf("lrepeat: bad count %q", args[0])
	}
	if n*len(args[1:]) > 1<<20 {
		return "", errors.New("lrepeat: result too large")
	}
	out := make([]string, 0, n*len(args[1:]))
	for i := 0; i < n; i++ {
		out = append(out, args[1:]...)
	}
	return FormatList(out), nil
}

// Extended string subcommands, merged into cmdString's dispatch via this
// hook (keeps the original switch readable).
func stringExtra(sub string, rest []string) (string, bool, error) {
	switch sub {
	case "last":
		if len(rest) != 2 {
			return "", true, errors.New(`wrong # args: should be "string last needle haystack"`)
		}
		return strconv.Itoa(strings.LastIndex(rest[1], rest[0])), true, nil
	case "replace":
		// string replace string first last ?newstring?
		if len(rest) != 3 && len(rest) != 4 {
			return "", true, errors.New(`wrong # args: should be "string replace string first last ?new?"`)
		}
		s := rest[0]
		first, err := listIndex(rest[1], len(s))
		if err != nil {
			return "", true, err
		}
		last, err := listIndex(rest[2], len(s))
		if err != nil {
			return "", true, err
		}
		if first < 0 {
			first = 0
		}
		if last >= len(s) {
			last = len(s) - 1
		}
		if first > last || first >= len(s) {
			return s, true, nil
		}
		repl := ""
		if len(rest) == 4 {
			repl = rest[3]
		}
		return s[:first] + repl + s[last+1:], true, nil
	case "reverse":
		if len(rest) != 1 {
			return "", true, errors.New(`wrong # args: should be "string reverse string"`)
		}
		b := []byte(rest[0])
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return string(b), true, nil
	case "map":
		// string map {from to ?from to ...?} string
		if len(rest) != 2 {
			return "", true, errors.New(`wrong # args: should be "string map mapping string"`)
		}
		pairs, err := ParseList(rest[0])
		if err != nil {
			return "", true, err
		}
		if len(pairs)%2 != 0 {
			return "", true, errors.New("string map: mapping must have an even number of elements")
		}
		return strings.NewReplacer(pairs...).Replace(rest[1]), true, nil
	case "is":
		// string is integer|double|alpha|digit value
		if len(rest) != 2 {
			return "", true, errors.New(`wrong # args: should be "string is class value"`)
		}
		v := rest[1]
		var ok bool
		switch rest[0] {
		case "integer":
			_, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			ok = err == nil
		case "double":
			_, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			ok = err == nil
		case "alpha":
			ok = v != ""
			for i := 0; i < len(v); i++ {
				if !isAlpha(v[i]) {
					ok = false
					break
				}
			}
		case "digit":
			ok = v != ""
			for i := 0; i < len(v); i++ {
				if v[i] < '0' || v[i] > '9' {
					ok = false
					break
				}
			}
		default:
			return "", true, fmt.Errorf("string is: unknown class %q", rest[0])
		}
		return FormatBool(ok), true, nil
	}
	return "", false, nil
}

// cmdUpvar links a local variable name to a variable in the caller's frame
// (level 1) or the global frame (#0) — Tcl's pass-by-name mechanism.
func cmdUpvar(in *Interp, args []string) (string, error) {
	if len(args) != 2 && len(args) != 3 {
		return "", errors.New(`wrong # args: should be "upvar ?level? otherVar localVar"`)
	}
	level := "1"
	if len(args) == 3 {
		level, args = args[0], args[1:]
	}
	other, local := args[0], args[1]
	f := in.currentFrame()
	if f == nil {
		return "", errors.New("upvar: not inside a proc")
	}
	// Any upvar link redirects resolution away from the frame's slot array;
	// divert its slot fast paths to the full resolver permanently.
	f.diverted = true
	switch level {
	case "#0":
		// Alias to a global: reuse the global-linking machinery, with a
		// rename when the names differ.
		if other == local {
			f.global[local] = true
			return "", nil
		}
		f.aliases = ensureAliases(f)
		f.aliases[local] = varRef{frame: nil, name: other}
		return "", nil
	case "1":
		parent := in.parentFrame()
		f.aliases = ensureAliases(f)
		f.aliases[local] = varRef{frame: parent, name: other}
		return "", nil
	default:
		return "", fmt.Errorf("upvar: unsupported level %q (only 1 and #0)", level)
	}
}

// cmdUplevel evaluates a script in the caller's scope (level 1) or the
// global scope (#0).
func cmdUplevel(in *Interp, args []string) (string, error) {
	if len(args) < 1 {
		return "", errors.New(`wrong # args: should be "uplevel ?level? script"`)
	}
	level := "1"
	if len(args) > 1 && (args[0] == "1" || args[0] == "#0") {
		level, args = args[0], args[1:]
	}
	src := strings.Join(args, " ")
	saved := in.frames
	switch level {
	case "#0":
		in.frames = nil
	case "1":
		if len(in.frames) > 0 {
			// Copy: a nested proc call would append to the shortened
			// stack and could clobber the saved top frame in the shared
			// backing array.
			in.frames = append([]*frame(nil), in.frames[:len(in.frames)-1]...)
		}
	}
	defer func() { in.frames = saved }()
	return in.EvalCached(src)
}
