package tacl

import (
	"bytes"
	"errors"
	"strconv"
	"testing"
)

// The equivalence suite pins all three execution engines to each other:
// the bytecode VM (default), the compiled-AST tree-walker (EngineAST), and
// the reference string-walking interpreter (EngineReference). Same results,
// same error text, same step counts, same StepHook billing, same puts
// output, same jump/budget behavior — any pairwise divergence fails.

var allEngines = []struct {
	name   string
	engine Engine
}{
	{"vm", EngineVM},
	{"ast", EngineAST},
	{"reference", EngineReference},
}

type equivResult struct {
	out      string
	isErr    bool
	errText  string
	steps    int
	hooks    int
	puts     string
	isJump   bool
	jumpDest string
	isBudget bool
}

func runEquiv(src string, engine Engine, maxSteps int) equivResult {
	in := New()
	in.SetEngine(engine)
	in.MaxSteps = maxSteps
	hooks := 0
	in.StepHook = func() error { hooks++; return nil }
	var buf bytes.Buffer
	in.Out = &buf
	// A stand-in for the kernel's migration command, so the suite can
	// assert the jump signal passes through both engines identically.
	in.Register("jump", func(_ *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("jump needs one arg")
		}
		return "", JumpSignal(args[0])
	})
	// A side-effecting host command, so the suite observes evaluation
	// order and count of [command] substitutions.
	probe := 0
	in.Register("probe", func(*Interp, []string) (string, error) {
		probe++
		return strconv.Itoa(probe), nil
	})
	out, err := in.Eval(src)
	r := equivResult{out: out, steps: in.Steps, hooks: hooks, puts: buf.String()}
	if err != nil {
		r.isErr = true
		r.errText = err.Error()
		if d, ok := IsJump(err); ok {
			r.isJump, r.jumpDest = true, d
		}
		r.isBudget = errors.Is(err, ErrBudget)
	}
	return r
}

// equivCorpus exercises the full builtin set through both engines.
var equivCorpus = []string{
	// Variables and arithmetic.
	`set x 5; set y [expr {$x * 3 + 1}]; expr {$y - $x}`,
	`set x 0; incr x; incr x 41; expr {$x}`,
	`set s a; append s b c; set s`,
	`set x 5; unset x; catch {set x} msg; set msg`,
	// Expression grammar: precedence, ternary, logic, floats, strings.
	`expr {1 + 2 * 3 - 4 / 2}`,
	`expr {7 % 3}`,
	`expr {-7 / 2}`,
	`expr {-7 % 3}`,
	`expr {2.5 * 2}`,
	`expr {10 / 4}`,
	`expr {10.0 / 4}`,
	`expr {1 < 2 && 2 < 1 || 3 > 2}`,
	`expr {1 > 2 ? "big" : "small"}`,
	`expr {!0 && !!1}`,
	`expr {"abc" eq "abc"}`,
	`expr {"abc" ne "abd"}`,
	`expr {abc < abd}`,
	`expr {"10" == 10}`,
	`expr {"1e2" == 100}`,
	`expr {{braced} eq "braced"}`,
	`expr {(1 + 2) * (3 - 1)}`,
	`expr {min(3, 1, 2)}`,
	`expr {max(3, 1, 2)}`,
	`expr {abs(-4)}`,
	`expr {abs(-4.5)}`,
	`expr {int(3.9)}`,
	`expr {double(3)}`,
	`expr {round(2.5)}`,
	`expr {floor(2.9) + ceil(2.1)}`,
	`expr {sqrt(16)}`,
	`expr {pow(2, 10)}`,
	`expr {fmod(7.5, 2)}`,
	`expr {true && on || off}`,
	`expr {+5 - -3}`,
	`set i 1; expr {$i == 1 ? [probe] : [probe]}`, // both branches evaluate
	`expr {[probe] + [probe]}`,
	// Expression errors.
	`expr {1 / 0}`,
	`expr {1.0 / 0}`,
	`expr {1 % 0}`,
	`expr {abc + 1}`,
	`expr {2.5 % 2}`,
	`expr {sqrt(-1)}`,
	`expr {nosuchfn(1)}`,
	`expr {sqrt(1, 2)}`,
	`expr {$nosuchvar + 1}`,
	`expr {1 +}`,
	`expr {(1 + 2}`,
	`expr {}`,
	`catch {expr {1 / 0}} msg; set msg`,
	// Malformed expressions with side-effecting operands: compilation
	// fails, and the fallback to the reference evaluator must preserve
	// the side effects (a=5), step counts, and error text exactly.
	`catch {expr {[set a 5] +}} msg; list [catch {set a} r] $r $msg`,
	`catch {expr {[probe] + [probe] @}} msg; list $msg [probe]`,
	// Control flow.
	`set r {}; if {1 < 2} { set r then } else { set r else }; set r`,
	`set r {}; if {1 > 2} { set r a } elseif {2 > 1} { set r b } else { set r c }; set r`,
	`set i 0; set sum 0; while {$i < 10} { incr sum $i; incr i }; set sum`,
	`set sum 0; for {set i 0} {$i < 5} {incr i} { incr sum $i }; set sum`,
	`set sum 0; foreach x {1 2 3 4} { incr sum $x }; set sum`,
	`set r {}; foreach x {a b c d} { if {$x eq "c"} { break }; append r $x }; set r`,
	`set r {}; foreach x {a b c d} { if {$x eq "b"} { continue }; append r $x }; set r`,
	`set i 0; while {1} { incr i; if {$i >= 3} { break } }; set i`,
	`set r {}; switch b {a {set r A} b {set r B} default {set r D}}; set r`,
	`set r {}; switch -glob "hello" {h* {set r glob} default {set r D}}; set r`,
	`set r {}; switch x {a - b {set r AB} default {set r D}}; set r`,
	// Procs, scopes, upvar, uplevel, global.
	`proc add {a b} { expr {$a + $b} }; add 2 3`,
	`proc greet {name {greeting hi}} { return "$greeting $name" }; greet bob`,
	`proc many {args} { llength $args }; many a b c d`,
	`proc fib {n} { if {$n < 2} { return $n }; expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]} }; fib 10`,
	`set g 10; proc bump {} { global g; incr g }; bump; bump; set g`,
	`proc inner {vn} { upvar 1 $vn v; set v changed }; proc outer {} { set local x; inner local; set local }; outer`,
	`set top 1; proc deep {} { upvar #0 top t; incr t 10 }; deep; set top`,
	`proc lvl {} { uplevel 1 {set fromup yes} }; proc caller {} { lvl; set fromup }; caller`,
	`proc esc {} { break }; catch {esc} msg; set msg`,
	`proc missing {a b} {}; catch {missing 1} msg; set msg`,
	// eval and catch.
	`eval set x 7 {;} incr x; set x`,
	`catch {error boom} msg; set msg`,
	`catch {nosuchcmd} msg; set msg`,
	`set code [catch {expr {1 + 1}} val]; list $code $val`,
	// Lists.
	`set l [list a b "c d"]; list [llength $l] [lindex $l 2] [lindex $l end]`,
	`set l {}; lappend l x y; lappend l z; set l`,
	`lrange {a b c d e} 1 3`,
	`lrange {a b c d e} 3 end`,
	`lsearch {a b c} b`,
	`lsearch {a b c} z`,
	`lreverse {1 2 3}`,
	`lsort {pear apple orange}`,
	`lsort -integer {10 2 33 4}`,
	`join {a b c} -`,
	`split a,b,,c ,`,
	`split abc {}`,
	`concat {a b} {} { c }`,
	`lassign {1 2 3 4} a b; list $a $b`,
	`linsert {a c} 1 b`,
	`set l {a b c}; lset l 1 B; set l`,
	`lrepeat 3 x y`,
	// Strings.
	`string length hello`,
	`string toupper mix; string tolower MIX`,
	`string trim "  pad  "`,
	`string index hello 1`,
	`string index hello end`,
	`string range hello 1 3`,
	`string repeat ab 3`,
	`string equal a a`,
	`string compare a b`,
	`string first ll hello`,
	`string last l hello`,
	`string match "h*o" hello`,
	`string replace hello 1 3 EY`,
	`string reverse abc`,
	`string map {a 1 b 2} abba`,
	`string is integer 42`,
	`string is double 4.2e1`,
	`string is alpha abc`,
	`string is digit 123x`,
	// format and info.
	`format "%s=%d (%05.1f) %x %%" k 42 2.5 255`,
	`format "%i|%d" 7.9 " 8 "`,
	`catch {format "%d" notanint} msg; set msg`,
	`info exists nope`,
	`set yes 1; info exists yes`,
	`proc p1 {} {}; proc p2 {} {}; info procs`,
	`info steps`,
	// puts output.
	`puts hello; puts -nonewline world`,
	// Slot-resolved variable store: statically-known names live in frame
	// slots, computed names spill to the frame map, and `global`/`upvar`
	// divert a frame entirely. These pin the slot↔map aliasing rules.
	`set name v; set $name 7; catch {set v} msg; list [info exists v] $msg`,
	`set v 1; set name v; set $name 9; incr v; set v`,
	`proc outer {} { proc inner {} { global g; incr g }; inner }; set g 5; outer; set g`,
	`set a 1; unset a; info exists a`,
	`set name b; set $name 2; unset $name; info exists b`,
	`set a 1; set name a; unset $name; catch {set a} msg; set msg`,
	`proc f {} { set loc 3; unset loc; info exists loc }; f`,
	`proc f {x} { upvar 1 $x v; set v 42; incr v }; set t 0; f t; set t`,
	`proc f {} { global gg; set gg 2; unset gg }; set gg 1; f; info exists gg`,
	`set c 0; catch { set c 1; error boom } msg; list $c $msg`,
	`proc f {} { global w; unset w; set w 8 }; set w 3; f; set w`,
	// Condition truthiness runs Truthy on the result text: a command
	// substitution yielding padded numerals must error ("expected
	// boolean") identically on every engine — the VM's fast paths must
	// not accidentally trim.
	`if {[format " %d " 2]} { set r yes }`,
	`while {[format " %d " 1]} { break }`,
	// Jump semantics: execution stops at the origin after a migration.
	`set x 1; jump site-b; set x 2`,
	`set i 0; while {$i < 10} { incr i; if {$i == 4} { jump dest } }`,
	// Parse errors.
	`set x {unclosed`,
	`set x "unclosed`,
	`expr {1 + [nosuch}`,
	`{a}b`,
}

func TestCompiledEquivalence(t *testing.T) {
	for _, src := range equivCorpus {
		ref := runEquiv(src, EngineReference, 10000)
		for _, e := range allEngines[:2] {
			if got := runEquiv(src, e.engine, 10000); got != ref {
				t.Errorf("divergence on %q:\n  %-9s %+v\n  reference %+v", src, e.name+":", got, ref)
			}
		}
	}
}

// TestCompiledEquivalenceBudget pins ErrBudget behavior: the compiled path
// must exhaust the same budget after the same number of steps and hook
// calls as the reference path, and catch must not trap it in either.
func TestCompiledEquivalenceBudget(t *testing.T) {
	srcs := []string{
		`set i 0; while {$i < 10000} { incr i }`,
		`catch {set i 0; while {$i < 10000} { incr i }} msg; set msg`,
		`proc spin {} { spin }; spin`,
		`for {set i 0} {1} {incr i} { set x $i }`,
		// Empty-body spins: the per-iteration charge must make these
		// exhaust the budget instead of hanging (the PR 3 step-budget gap).
		`while {1} {}`,
		`for {set i 0} {1} {} {}`,
		`foreach x {a b c d e f g h} {}; set x`,
	}
	for _, src := range srcs {
		for _, budget := range []int{1, 7, 50, 333} {
			ref := runEquiv(src, EngineReference, budget)
			for _, e := range allEngines[:2] {
				if got := runEquiv(src, e.engine, budget); got != ref {
					t.Errorf("budget %d divergence on %q:\n  %-9s %+v\n  reference %+v",
						budget, src, e.name+":", got, ref)
				}
			}
		}
	}
}

// TestScriptCacheSharing pins that the cached-parse path returns the same
// results as a cold parse: the same body text evaluated from two different
// interpreters shares one *Script, and execution remains independent.
func TestScriptCacheSharing(t *testing.T) {
	src := `set i 0; while {$i < 5} { incr i }; set i`
	// Admission is on second sight: the first call records the key, the
	// second stores the parse, and from then on the pointer is stable.
	if _, err := ParseCached(src); err != nil {
		t.Fatal(err)
	}
	s1, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("ParseCached returned distinct scripts for identical source after warm-up")
	}
	a, b := New(), New()
	ra, err := a.EvalScript(s1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.EvalScript(s2)
	if err != nil {
		t.Fatal(err)
	}
	if ra != "5" || rb != "5" {
		t.Fatalf("shared script produced %q / %q, want 5/5", ra, rb)
	}
}

// TestPooledInterpReset pins Put/Get hygiene: state from one activation
// (globals, procs, overrides, steps, hooks) must never leak into the next.
func TestPooledInterpReset(t *testing.T) {
	tbl := NewTable()
	in := Get(tbl)
	in.MaxSteps = 10
	in.StepHook = func() error { return nil }
	in.Register("custom", func(*Interp, []string) (string, error) { return "x", nil })
	if _, err := in.Eval(`set leak 1; proc ghost {} {}; custom`); err != nil {
		t.Fatal(err)
	}
	Put(in)

	in2 := Get(tbl)
	defer Put(in2)
	if in2.MaxSteps != 0 || in2.Steps != 0 || in2.StepHook != nil {
		t.Fatalf("pooled interp not reset: MaxSteps=%d Steps=%d hook=%v",
			in2.MaxSteps, in2.Steps, in2.StepHook != nil)
	}
	if _, ok := in2.Global("leak"); ok {
		t.Fatal("global leaked through the pool")
	}
	if out, err := in2.Eval(`info procs`); err != nil || out != "" {
		t.Fatalf("procs leaked through the pool: %q, %v", out, err)
	}
	if _, err := in2.Eval(`custom`); err == nil {
		t.Fatal("per-interp command leaked through the pool")
	}
}

// TestTableCommandsCached pins the Commands satellite: the sorted name list
// is stable, complete, and not re-sorted per call (same backing array until
// Register invalidates it).
func TestTableCommandsCached(t *testing.T) {
	tbl := NewTable()
	a := tbl.Names()
	b := tbl.Names()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("Names not cached between calls")
	}
	tbl.Register("zzz_custom", func(*Interp, []string) (string, error) { return "", nil })
	c := tbl.Names()
	found := false
	for _, n := range c {
		if n == "zzz_custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("Register did not invalidate cached Names")
	}
	in := Get(tbl)
	defer Put(in)
	in.Register("aaa_local", func(*Interp, []string) (string, error) { return "", nil })
	names := in.Commands()
	if names[0] != "aaa_local" {
		t.Fatalf("Commands() merge broken: first = %q", names[0])
	}
}
