package tacl

import (
	"reflect"
	"strconv"
	"sync"
	"unsafe"
)

// Reflection-free host bridge. The bytecode compiler resolves command names
// to process-wide symbols at compile time; each published table snapshot
// carries a dense []CmdFunc indexed by symbol id, so a host-command call in
// the VM is an atomic load plus an array index instead of a per-call map
// lookup. Per-activation overrides (Interp.Register, as the guard's Bind
// uses) and script-defined procs still win: the VM checks those maps first,
// exactly as the tree-walker's dispatch order does. Table.Register
// invalidates every inline cache at once by publishing a new snapshot.

// symbol is an interned command name. Symbols are process-wide and never
// freed; ids index the dense dispatch slot on each table snapshot.
type symbol struct {
	name string
	id   int32
}

var symtab = struct {
	mu sync.RWMutex
	m  map[string]*symbol
	n  int32
}{m: make(map[string]*symbol, 128)}

// maxScriptSyms caps how many symbols untrusted script compilation can
// intern. Host registration (builtins, site tables) interns without a cap;
// a hostile script full of distinct unknown command names compiles those
// calls to dynamic dispatch instead of growing the symbol table forever.
const maxScriptSyms = 1 << 13

func internSymLocked(name string) *symbol {
	s := symtab.m[name]
	if s == nil {
		s = &symbol{name: name, id: symtab.n}
		symtab.n++
		symtab.m[name] = s
	}
	return s
}

// internSym interns a trusted (host-registered) command name.
func internSym(name string) *symbol {
	symtab.mu.RLock()
	s := symtab.m[name]
	symtab.mu.RUnlock()
	if s != nil {
		return s
	}
	symtab.mu.Lock()
	defer symtab.mu.Unlock()
	return internSymLocked(name)
}

// internScriptSym interns a command name seen in script source, or returns
// nil once the script-driven portion of the symbol table is full (the
// compiler then emits a dynamic call for that command).
func internScriptSym(name string) *symbol {
	symtab.mu.RLock()
	s := symtab.m[name]
	symtab.mu.RUnlock()
	if s != nil {
		return s
	}
	symtab.mu.Lock()
	defer symtab.mu.Unlock()
	if s := symtab.m[name]; s != nil {
		return s
	}
	if symtab.n >= maxScriptSyms {
		return nil
	}
	return internSymLocked(name)
}

// Canonical control-flow builtins the compiler may inline. A table (or
// interpreter) that overrides one of these names clears the corresponding
// canon bit on its snapshot, and the VM's guard op falls back to generic
// dispatch for that construct.
const (
	kindIf = iota
	kindWhile
	kindFor
	kindForeach
	kindExpr
	kindSet
	kindIncr
	numCanonKinds
)

// canonNames mirrors canonicalBuiltins' names without referencing the
// builtin funcs: cmdShadowed (reachable from every builtin via runVM) needs
// the names at runtime, and referencing canonicalBuiltins there would form
// an initialization cycle through its cmd* function pointers.
var canonNames = [numCanonKinds]string{
	kindIf:      "if",
	kindWhile:   "while",
	kindFor:     "for",
	kindForeach: "foreach",
	kindExpr:    "expr",
	kindSet:     "set",
	kindIncr:    "incr",
}

var canonicalBuiltins = [numCanonKinds]struct {
	name string
	ptr  uintptr
}{
	kindIf:      {"if", reflect.ValueOf(cmdIf).Pointer()},
	kindWhile:   {"while", reflect.ValueOf(cmdWhile).Pointer()},
	kindFor:     {"for", reflect.ValueOf(cmdFor).Pointer()},
	kindForeach: {"foreach", reflect.ValueOf(cmdForeach).Pointer()},
	kindExpr:    {"expr", reflect.ValueOf(cmdExpr).Pointer()},
	kindSet:     {"set", reflect.ValueOf(cmdSet).Pointer()},
	kindIncr:    {"incr", reflect.ValueOf(cmdIncr).Pointer()},
}

// buildTableState builds a publishable snapshot for cmds: it interns every
// command name (host registration is trusted, so no cap), fills the dense
// symbol-indexed dispatch array, and records which inlinable builtins are
// still canonical. Cold path: runs only on NewTable/Register, never per
// command evaluation.
func buildTableState(cmds map[string]CmdFunc) *tableState {
	symtab.mu.Lock()
	for name := range cmds {
		internSymLocked(name)
	}
	dense := make([]CmdFunc, symtab.n)
	for name, s := range symtab.m {
		if fn, ok := cmds[name]; ok {
			dense[s.id] = fn
		}
	}
	symtab.mu.Unlock()
	var canon uint16
	for k, cb := range canonicalBuiltins {
		if fn, ok := cmds[cb.name]; ok && reflect.ValueOf(fn).Pointer() == cb.ptr {
			canon |= 1 << k
		}
	}
	return &tableState{cmds: cmds, dense: dense, canon: canon}
}

// byteArena bump-allocates small strings out of append-only pages. Pages
// are never rewritten or recycled — once handed out, a string view stays
// valid for its own lifetime and the page is garbage-collected when the
// last string into it dies — so the unsafe.String aliasing below is sound.
// It amortizes the one-allocation-per-result cost of hot string-producing
// commands (format) down to one page allocation per ~thousand results.
type byteArena struct {
	page []byte
}

const (
	arenaPageSize = 8 << 10
	// Strings larger than this get a private allocation; copying them into
	// a page would let one big result pin kilobytes of neighbors.
	arenaMaxCopy = arenaPageSize / 4
)

func (a *byteArena) copyString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > arenaMaxCopy {
		return string(b)
	}
	if cap(a.page)-len(a.page) < len(b) {
		a.page = make([]byte, 0, arenaPageSize)
	}
	off := len(a.page)
	a.page = append(a.page, b...)
	v := a.page[off : off+len(b)]
	return unsafe.String(&v[0], len(v))
}

// copyBytes returns an arena-backed copy of s with clipped capacity, so the
// new owner can never observe later arena appends (an append would reallocate).
func (a *byteArena) copyBytes(s string) []byte {
	if len(s) > arenaMaxCopy {
		return []byte(s)
	}
	if cap(a.page)-len(a.page) < len(s) {
		a.page = make([]byte, 0, arenaPageSize)
	}
	off := len(a.page)
	a.page = append(a.page, s...)
	return a.page[off : off+len(s) : off+len(s)]
}

// ArenaBytes returns a copy of s backed by the interpreter's append-only
// arena, owned by the caller. Pages are never rewritten or recycled, which
// makes the result safe to hand to Folder.PushOwned: a hot briefcase push
// costs no per-call allocation. An element retained long after the
// activation pins at most one arena page — the same deal folder decode
// buffers already make.
func (in *Interp) ArenaBytes(s string) []byte { return in.arena.copyBytes(s) }

// fastFormat is cmdFormat's allocation-free fast path: flag-free %s/%d/%%
// verbs with clean integer arguments, built in the interpreter's scratch
// buffer and returned through the arena. Anything else — flags, widths,
// float verbs, arity errors, integers needing TrimSpace or float fallback —
// bails to the reference implementation, so output and error text are
// byte-identical to the slow path in every case this function handles.
func fastFormat(in *Interp, spec string, vals []string) (string, bool) {
	buf := in.fmtBuf[:0]
	vi := 0
	for i := 0; i < len(spec); i++ {
		c := spec[i]
		if c != '%' {
			buf = append(buf, c)
			continue
		}
		i++
		if i >= len(spec) {
			return "", false
		}
		switch spec[i] {
		case '%':
			buf = append(buf, '%')
		case 'd':
			if vi >= len(vals) {
				return "", false
			}
			n, ok := fastAtoi(vals[vi])
			if !ok {
				var err error
				n, err = strconv.ParseInt(vals[vi], 10, 64)
				if err != nil {
					return "", false
				}
			}
			buf = strconv.AppendInt(buf, n, 10)
			vi++
		case 's':
			if vi >= len(vals) {
				return "", false
			}
			buf = append(buf, vals[vi]...)
			vi++
		default:
			return "", false
		}
	}
	if vi != len(vals) {
		return "", false
	}
	in.fmtBuf = buf
	return in.arena.copyString(buf), true
}
