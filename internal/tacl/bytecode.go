package tacl

import (
	"errors"
	"strings"
)

// Bytecode compiler. A parsed Script is lowered once into a flat register
// IR: a []vmOp stream with pooled constants, precompiled expressions,
// interned command symbols, and inlined control flow. The VM in vm.go
// executes the stream; the tree-walker in interp.go remains the reference
// the IR must be observationally identical to (results, error text, step
// accounting, side-effect order, jump/park semantics — pinned by the
// three-way equivalence suite and fuzz targets).
//
// Inlining policy: if/while/for/foreach/expr are flattened into the op
// stream only when the relevant words are braced literals (the universal
// idiom); each inlined construct is preceded by a guard op that falls back
// to generic dispatch when the name is shadowed by a proc, a per-interp
// override, or a non-canonical table entry, so redefinition semantics are
// preserved exactly. Anything else — including malformed construct grammar,
// whose error text the builtins own — compiles to a generic call.

// Opcodes. a/b/c index the program's pools or are pc targets; line is the
// source line for step charging and error decoration.
const (
	opStep        uint8 = iota // charge one step for the command at line
	opArgConst                 // push consts[a]
	opArgVar                   // push variable named consts[a]
	opArgScript                // push result of scripts[a] ([cmd] substitution)
	opArgWord                  // push result of multi-segment words[a]
	opCall                     // static call syms[a] with top b args
	opCallConst                // static call syms[b] with argLists[a] (all-const args)
	opCallDyn                  // dynamic call, top a words (args[0] is the name)
	opGuard                    // inline guard: if syms[a] shadowed, run cmds[c] generically, jump b
	opJump                     // jump to a
	opCondJump                 // eval exprs[a]; mark slot c (if >=0); jump b when false
	opLoopBottom               // charge step at line if slot a marked no progress; jump b
	opForeachInit              // pop list string, ParseList into slot a
	opForeachNext              // next element of slot a into var consts[c]; jump b when done
	opExpr                     // result = eval exprs[a] (inlined expr command)
	opResult                   // result = consts[a]
	opDepth                    // enter an inlined [cmd]: depth++ with ErrDepth check
	opArgResult                // leave an inlined [cmd]: depth--, push result register
)

type vmOp struct {
	code uint8
	kind uint8 // canon kind for opGuard
	line int32
	a    int32
	b    int32
	c    int32
}

// exprRef is a precompiled expression operand. prog == nil means the source
// failed expression compilation and the VM falls back to the reference
// string-walking evaluator at runtime (same rule as evalExpr). Pure
// expressions are folded at compile time; folding never captures errors, so
// a constant erroring expression still evaluates (and errors) at runtime.
type exprRef struct {
	src            string
	prog           *exprProg
	isConst        bool
	constVal       string
	constTruthy    bool
	constTruthyErr error
}

// region describes error-handling extents of the op stream. Loop regions
// intercept break/continue raised anywhere in the loop body (including from
// nested [cmd] substitution); decor regions add the construct's
// name-and-line frame to non-control errors, mirroring what evalCommand's
// decorate call does around each tree-walked builtin. Regions are properly
// nested, so the innermost region containing a pc is the smallest.
type region struct {
	start, end int32 // [start, end) op index range
	isLoop     bool
	// isDepth marks an inlined [cmd] substitution: an error propagating out
	// of the region undoes the opDepth increment, exactly as the
	// tree-walker's evalWord decrements depth before returning an error.
	isDepth bool
	name    string
	line    int32
	breakPC int32
	contPC  int32
	// scratch is the number of enclosing pending call arguments live at the
	// loop's resume pcs (nonzero when the loop sits inside an inlined [cmd]
	// that is itself an argument under construction). Error recovery restores
	// the arg stack to base+scratch instead of base, so a break escaping the
	// substitution does not discard the outer call's already-pushed words.
	scratch int32
}

type program struct {
	ops      []vmOp
	consts   []string
	exprs    []*exprRef
	syms     []*symbol
	words    []*word
	scripts  []*Script
	cmds     []*command
	argLists [][]string
	regions  []region
	numSlots int // loop state slots (marks / foreach lists)
}

const (
	maxInlineDepth = 32
	maxProgramOps  = 1 << 20
)

var errProgramTooLarge = errors.New("tacl: script too large for bytecode")

// compiled returns the script's bytecode program, compiling on first use.
// Compile failure is sticky: the script permanently falls back to the
// tree-walker, which is observationally identical.
func (s *Script) compiled() *program {
	if p := s.prog.Load(); p != nil {
		return p
	}
	if s.noVM.Load() {
		return nil
	}
	p, err := compileProgram(s)
	if err != nil {
		s.noVM.Store(true)
		return nil
	}
	s.prog.Store(p)
	return p
}

// Precompile lowers the script to bytecode ahead of its first execution, so
// cache layers can pay compilation at insert time instead of on the first
// activation's critical path. Safe to call concurrently and more than once.
func (s *Script) Precompile() { s.compiled() }

func compileProgram(s *Script) (p *program, err error) {
	// A compiler bug must degrade to the (identical) tree-walker, never
	// take down the site.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, errProgramTooLarge
		}
	}()
	c := &compiler{
		prog:     &program{},
		constIdx: make(map[string]int32),
		exprIdx:  make(map[string]int32),
		symIdx:   make(map[*symbol]int32),
	}
	c.compileCmds(s.cmds)
	if len(c.prog.ops) > maxProgramOps {
		return nil, errProgramTooLarge
	}
	return c.prog, nil
}

type compiler struct {
	prog     *program
	constIdx map[string]int32
	exprIdx  map[string]int32
	symIdx   map[*symbol]int32
	inline   int
	// pendingArgs tracks how many argument words of enclosing calls are on
	// the scratch stack at the current emission point (see region.scratch).
	pendingArgs int32
}

func (c *compiler) pc() int32 { return int32(len(c.prog.ops)) }

func (c *compiler) emit(op vmOp) int32 {
	c.prog.ops = append(c.prog.ops, op)
	return int32(len(c.prog.ops) - 1)
}

func (c *compiler) patchB(at, target int32) { c.prog.ops[at].b = target }

func (c *compiler) constRef(s string) int32 {
	if i, ok := c.constIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.consts))
	c.prog.consts = append(c.prog.consts, s)
	c.constIdx[s] = i
	return i
}

func (c *compiler) symRef(s *symbol) int32 {
	if i, ok := c.symIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.syms))
	c.prog.syms = append(c.prog.syms, s)
	c.symIdx[s] = i
	return i
}

func (c *compiler) wordRef(w *word) int32 {
	c.prog.words = append(c.prog.words, w)
	return int32(len(c.prog.words) - 1)
}

func (c *compiler) scriptRef(s *Script) int32 {
	c.prog.scripts = append(c.prog.scripts, s)
	return int32(len(c.prog.scripts) - 1)
}

func (c *compiler) cmdRef(cmd *command) int32 {
	c.prog.cmds = append(c.prog.cmds, cmd)
	return int32(len(c.prog.cmds) - 1)
}

func (c *compiler) argListRef(args []string) int32 {
	c.prog.argLists = append(c.prog.argLists, args)
	return int32(len(c.prog.argLists) - 1)
}

func (c *compiler) newSlot() int32 {
	c.prog.numSlots++
	return int32(c.prog.numSlots - 1)
}

func (c *compiler) addRegion(r region) { c.prog.regions = append(c.prog.regions, r) }

// exprRefIdx precompiles an expression operand, folding it when pure.
func (c *compiler) exprRefIdx(src string) int32 {
	if i, ok := c.exprIdx[src]; ok {
		return i
	}
	ref := &exprRef{src: src}
	if p, err := compileExprCached(src); err == nil {
		ref.prog = p
		if exprPure(p.root) {
			if v, err2 := p.root.eval(nil); err2 == nil {
				ref.isConst = true
				ref.constVal = v.text()
				ref.constTruthy, ref.constTruthyErr = Truthy(ref.constVal)
			}
		}
	}
	i := int32(len(c.prog.exprs))
	c.prog.exprs = append(c.prog.exprs, ref)
	c.exprIdx[src] = i
	return i
}

// exprPure reports whether an expression AST is free of variable and
// [command] references, i.e. safe to evaluate at compile time.
func exprPure(n exprNode) bool {
	switch x := n.(type) {
	case *constNode:
		return true
	case *notNode:
		return exprPure(x.x)
	case *negNode:
		return exprPure(x.x)
	case *andOrNode:
		return exprPure(x.l) && exprPure(x.r)
	case *eqNode:
		return exprPure(x.l) && exprPure(x.r)
	case *relNode:
		return exprPure(x.l) && exprPure(x.r)
	case *addNode:
		return exprPure(x.l) && exprPure(x.r)
	case *mulNode:
		return exprPure(x.l) && exprPure(x.r)
	case *ternaryNode:
		return exprPure(x.cond) && exprPure(x.then) && exprPure(x.els)
	case *callNode:
		for _, a := range x.args {
			if !exprPure(a) {
				return false
			}
		}
		return true
	default: // varNode, cmdNode
		return false
	}
}

// constWord returns a word's literal text when it is a single literal
// segment (braced words, bare words without substitution).
func constWord(w *word) (string, bool) {
	if len(w.segs) == 1 && w.segs[0].kind == segLit {
		return w.segs[0].text, true
	}
	return "", false
}

// constArgs returns the command's words as literals when every word is
// constant. The returned slice is shared across executions: CmdFuncs
// receive args read-only (nothing in the builtin set or host bridge
// mutates its argument slice).
func constArgs(cmd *command) ([]string, bool) {
	args := make([]string, len(cmd.words))
	for i := range cmd.words {
		s, ok := constWord(&cmd.words[i])
		if !ok {
			return nil, false
		}
		args[i] = s
	}
	return args, true
}

func (c *compiler) compileCmds(cmds []command) {
	for i := range cmds {
		c.compileCommand(&cmds[i])
	}
}

func (c *compiler) compileCommand(cmd *command) {
	line := int32(cmd.line)
	c.emit(vmOp{code: opStep, line: line})
	name, nameConst := constWord(&cmd.words[0])
	if nameConst && c.inline < maxInlineDepth {
		switch name {
		case "if":
			if c.tryIf(cmd) {
				return
			}
		case "while":
			if c.tryWhile(cmd) {
				return
			}
		case "for":
			if c.tryFor(cmd) {
				return
			}
		case "foreach":
			if c.tryForeach(cmd) {
				return
			}
		case "expr":
			if c.tryExpr(cmd) {
				return
			}
		}
	}
	if nameConst {
		if sym := internScriptSym(name); sym != nil {
			if args, ok := constArgs(cmd); ok {
				c.emit(vmOp{code: opCallConst, line: line, a: c.argListRef(args[1:]), b: c.symRef(sym)})
				return
			}
			saved := c.pendingArgs
			for i := 1; i < len(cmd.words); i++ {
				c.compileArg(&cmd.words[i])
				c.pendingArgs++
			}
			c.pendingArgs = saved
			c.emit(vmOp{code: opCall, line: line, a: c.symRef(sym), b: int32(len(cmd.words) - 1)})
			return
		}
	}
	saved := c.pendingArgs
	for i := range cmd.words {
		c.compileArg(&cmd.words[i])
		c.pendingArgs++
	}
	c.pendingArgs = saved
	c.emit(vmOp{code: opCallDyn, line: line, a: int32(len(cmd.words))})
}

func (c *compiler) compileArg(w *word) {
	if len(w.segs) == 1 {
		seg := &w.segs[0]
		switch seg.kind {
		case segLit:
			c.emit(vmOp{code: opArgConst, a: c.constRef(seg.text)})
			return
		case segVar:
			c.emit(vmOp{code: opArgVar, a: c.constRef(seg.text)})
			return
		case segCmd:
			// Inline the substitution's commands into this program: the hot
			// `set v [host_cmd ...]` shape then costs zero nested VM entries.
			// The depth ops reproduce evalWord's recursion accounting, and
			// the depth region undoes it on the error path.
			if c.inline < maxInlineDepth {
				c.inline++
				start := c.emit(vmOp{code: opDepth})
				if len(seg.script.cmds) == 0 {
					c.emit(vmOp{code: opResult, a: c.constRef("")})
				} else {
					c.compileCmds(seg.script.cmds)
				}
				end := c.pc()
				c.emit(vmOp{code: opArgResult})
				c.inline--
				c.addRegion(region{start: start, end: end, isDepth: true})
				return
			}
			c.emit(vmOp{code: opArgScript, a: c.scriptRef(seg.script)})
			return
		}
	}
	c.emit(vmOp{code: opArgWord, a: c.wordRef(w)})
}

// emitGuard emits the shadow check preceding an inlined construct. Returns
// the guard's op index (its jump-over target is patched by the caller), or
// -1 when the name cannot be interned (caller falls back to generic).
func (c *compiler) emitGuard(cmd *command, kind uint8, name string) int32 {
	sym := internScriptSym(name)
	if sym == nil {
		return -1
	}
	return c.emit(vmOp{
		code: opGuard, kind: kind, line: int32(cmd.line),
		a: c.symRef(sym), c: c.cmdRef(cmd),
	})
}

func (c *compiler) tryExpr(cmd *command) bool {
	args, ok := constArgs(cmd)
	if !ok || len(args) < 2 {
		return false
	}
	src := strings.Join(args[1:], " ")
	g := c.emitGuard(cmd, kindExpr, "expr")
	if g < 0 {
		return false
	}
	c.emit(vmOp{code: opExpr, line: int32(cmd.line), a: c.exprRefIdx(src)})
	c.patchB(g, c.pc())
	return true
}

func (c *compiler) tryWhile(cmd *command) bool {
	if len(cmd.words) != 3 {
		return false
	}
	cond, ok1 := constWord(&cmd.words[1])
	body, ok2 := constWord(&cmd.words[2])
	if !ok1 || !ok2 {
		return false
	}
	bodyScript, err := ParseCached(body)
	if err != nil {
		return false // generic call reproduces the parse error
	}
	g := c.emitGuard(cmd, kindWhile, "while")
	if g < 0 {
		return false
	}
	slot := c.newSlot()
	line := int32(cmd.line)
	top := c.pc()
	cj := c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(cond), c: slot})
	c.inline++
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	c.inline--
	bot := c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(cj, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: bot, scratch: c.pendingArgs})
	c.addRegion(region{start: top, end: exit, name: "while", line: line})
	return true
}

func (c *compiler) tryFor(cmd *command) bool {
	if len(cmd.words) != 5 {
		return false
	}
	var lit [4]string
	for i := 0; i < 4; i++ {
		s, ok := constWord(&cmd.words[i+1])
		if !ok {
			return false
		}
		lit[i] = s
	}
	initScript, err := ParseCached(lit[0])
	if err != nil {
		return false
	}
	stepScript, err := ParseCached(lit[2])
	if err != nil {
		return false
	}
	bodyScript, err := ParseCached(lit[3])
	if err != nil {
		return false
	}
	g := c.emitGuard(cmd, kindFor, "for")
	if g < 0 {
		return false
	}
	slot := c.newSlot()
	line := int32(cmd.line)
	c.inline++
	initStart := c.pc()
	c.compileCmds(initScript.cmds)
	top := c.pc()
	cj := c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(lit[1]), c: slot})
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	stepStart := c.pc()
	c.compileCmds(stepScript.cmds)
	c.inline--
	c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(cj, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: stepStart, scratch: c.pendingArgs})
	c.addRegion(region{start: initStart, end: exit, name: "for", line: line})
	return true
}

func (c *compiler) tryForeach(cmd *command) bool {
	if len(cmd.words) != 4 {
		return false
	}
	varName, ok1 := constWord(&cmd.words[1])
	body, ok2 := constWord(&cmd.words[3])
	if !ok1 || !ok2 {
		return false
	}
	bodyScript, err := ParseCached(body)
	if err != nil {
		return false
	}
	g := c.emitGuard(cmd, kindForeach, "foreach")
	if g < 0 {
		return false
	}
	slot := c.newSlot()
	line := int32(cmd.line)
	// The list word may be dynamic; its evaluation errors stay undecorated
	// (word-eval errors are raw in the tree-walker), so it sits outside the
	// decor region.
	c.compileArg(&cmd.words[2])
	initPC := c.emit(vmOp{code: opForeachInit, line: line, a: slot})
	top := c.emit(vmOp{code: opForeachNext, line: line, a: slot, c: c.constRef(varName)})
	c.inline++
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	c.inline--
	bot := c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(top, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: bot, scratch: c.pendingArgs})
	c.addRegion(region{start: initPC, end: exit, name: "foreach", line: line})
	return true
}

func (c *compiler) tryIf(cmd *command) bool {
	args, ok := constArgs(cmd)
	if !ok {
		return false
	}
	args = args[1:]
	type branch struct {
		cond    string
		body    *Script
		hasCond bool
	}
	var branches []branch
	i := 0
	for {
		if i+1 >= len(args) {
			return false // malformed: generic call owns the error text
		}
		body, err := ParseCached(args[i+1])
		if err != nil {
			return false
		}
		branches = append(branches, branch{cond: args[i], body: body, hasCond: true})
		i += 2
		if i >= len(args) {
			break
		}
		switch args[i] {
		case "elseif":
			i++
		case "else":
			if i+1 != len(args)-1 {
				return false
			}
			body, err := ParseCached(args[i+1])
			if err != nil {
				return false
			}
			branches = append(branches, branch{body: body})
			i = len(args)
		default:
			return false
		}
		if i >= len(args) {
			break
		}
	}
	g := c.emitGuard(cmd, kindIf, "if")
	if g < 0 {
		return false
	}
	line := int32(cmd.line)
	start := c.pc()
	emptyIdx := c.constRef("")
	var endJumps []int32
	c.inline++
	for _, b := range branches {
		var cj int32 = -1
		if b.hasCond {
			cj = c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(b.cond), c: -1})
		}
		if len(b.body.cmds) == 0 {
			c.emit(vmOp{code: opResult, a: emptyIdx})
		} else {
			c.compileCmds(b.body.cmds)
		}
		if b.hasCond {
			endJumps = append(endJumps, c.emit(vmOp{code: opJump}))
			c.patchB(cj, c.pc())
		}
	}
	c.inline--
	// All conditions false with no else: the if evaluates to "".
	if branches[len(branches)-1].hasCond {
		c.emit(vmOp{code: opResult, a: emptyIdx})
	}
	end := c.pc()
	for _, j := range endJumps {
		c.prog.ops[j].a = end
	}
	c.patchB(g, end)
	c.addRegion(region{start: start, end: end, name: "if", line: line})
	return true
}
