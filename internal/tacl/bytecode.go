package tacl

import (
	"errors"
	"strconv"
	"strings"
)

// Bytecode compiler. A parsed Script is lowered once into a flat register
// IR: a []vmOp stream with pooled constants, precompiled expressions,
// interned command symbols, and inlined control flow. The VM in vm.go
// executes the stream; the tree-walker in interp.go remains the reference
// the IR must be observationally identical to (results, error text, step
// accounting, side-effect order, jump/park semantics — pinned by the
// three-way equivalence suite and fuzz targets).
//
// Inlining policy: if/while/for/foreach/expr are flattened into the op
// stream only when the relevant words are braced literals (the universal
// idiom); each inlined construct is preceded by a guard op that falls back
// to generic dispatch when the name is shadowed by a proc, a per-interp
// override, or a non-canonical table entry, so redefinition semantics are
// preserved exactly. Anything else — including malformed construct grammar,
// whose error text the builtins own — compiles to a generic call.

// Opcodes. a/b/c index the program's pools or are pc targets; line is the
// source line for step charging and error decoration.
const (
	opStep        uint8 = iota // charge one step for the command at line
	opArgConst                 // push consts[a]
	opArgVar                   // push variable named consts[a]
	opArgScript                // push result of scripts[a] ([cmd] substitution)
	opArgWord                  // push result of multi-segment words[a]
	opCall                     // static call syms[a] with top b args
	opCallConst                // static call syms[b] with argLists[a] (all-const args)
	opCallDyn                  // dynamic call, top a words (args[0] is the name)
	opGuard                    // inline guard: if canon kind shadowed, run cmds[c] generically, jump b
	opJump                     // jump to a
	opCondJump                 // eval exprs[a]; mark slot c (if >=0); jump b when false
	opLoopBottom               // charge step at line if slot a marked no progress; jump b
	opForeachInit              // pop list string, ParseList into slot a
	opForeachNext              // next element of slot a into var consts[c]/var-slot d; jump b when done
	opExpr                     // result = eval exprs[a] (inlined expr command)
	opResult                   // result = consts[a]
	opDepth                    // enter an inlined [cmd]: depth++ with ErrDepth check
	opArgResult                // leave an inlined [cmd]: depth--, push result register
	opLoadSlot                 // push variable consts[a] from var slot b
	opStoreSlot                // inlined `set`: pop value into var slot b (name consts[a]); result = value
	opIncrSlot                 // inlined `incr`: var slot b (name consts[a]) += c; result = new value
)

type vmOp struct {
	code uint8
	kind uint8 // canon kind for opGuard
	line int32
	a    int32
	b    int32
	c    int32
	d    int32 // variable slot for opForeachNext (-1 = none)
}

// exprRef is a precompiled expression operand. prog == nil means the source
// failed expression compilation and the VM falls back to the reference
// string-walking evaluator at runtime (same rule as evalExpr). Pure
// expressions are folded at compile time; folding never captures errors, so
// a constant erroring expression still evaluates (and errors) at runtime.
type exprRef struct {
	src            string
	prog           *exprProg
	isConst        bool
	constVal       string
	constTruthy    bool
	constTruthyErr error

	// Fast form, set when the specialized AST is exactly
	// `slotVar op intConst`: the VM computes the result from a slot read and
	// one integer op, skipping the AST walk and exprVal conversions. Any
	// precondition miss (scope not bound to fastProg, diverted, slot not
	// live, value not a plain integer) falls back to the generic AST, whose
	// semantics the fast path reproduces bit-for-bit on the cases it takes.
	fastKind  uint8
	fastSlot  int32
	fastConst int64
	fastProg  *program
	// fastCmd is set (with fastKind == fastCmdSub) when the AST is exactly
	// one [command] substitution: the VM runs its layout-shared program
	// directly, skipping the AST node and the exprVal round-trip.
	fastCmd *slotCmdNode
}

// exprRef fast-form kinds. Additive results are int64 sums (same wraparound
// as applyAdditive's int path); relational results compare as float64 like
// applyRelational does when both sides are numeric.
const (
	fastNone = iota
	fastAdd
	fastSub
	fastLT
	fastLE
	fastGT
	fastGE
	fastCmdSub
)

// region describes error-handling extents of the op stream. Loop regions
// intercept break/continue raised anywhere in the loop body (including from
// nested [cmd] substitution); decor regions add the construct's
// name-and-line frame to non-control errors, mirroring what evalCommand's
// decorate call does around each tree-walked builtin. Regions are properly
// nested, so the innermost region containing a pc is the smallest.
type region struct {
	start, end int32 // [start, end) op index range
	isLoop     bool
	// isDepth marks an inlined [cmd] substitution: an error propagating out
	// of the region undoes the opDepth increment, exactly as the
	// tree-walker's evalWord decrements depth before returning an error.
	isDepth bool
	name    string
	line    int32
	breakPC int32
	contPC  int32
	// scratch is the number of enclosing pending call arguments live at the
	// loop's resume pcs (nonzero when the loop sits inside an inlined [cmd]
	// that is itself an argument under construction). Error recovery restores
	// the arg stack to base+scratch instead of base, so a break escaping the
	// substitution does not discard the outer call's already-pushed words.
	scratch int32
}

type program struct {
	ops      []vmOp
	consts   []string
	exprs    []*exprRef
	syms     []*symbol
	words    []*word
	scripts  []*Script
	cmds     []*command
	argLists [][]string
	regions  []region
	numSlots int // loop state slots (marks / foreach lists)
	// Variable layout: every statically-known variable name in this program
	// (set targets, $reads, foreach loop vars, incr targets, expression
	// $operands) owns a dense slot index. A scope bound to this program
	// stores those names in its slot array; varIdx is the resolution table
	// the name-based accessors consult at the terminal scope.
	varIdx   map[string]int32
	varNames []string
	// layout points at the program whose variable layout this program's
	// slot ops index: itself for independently compiled programs, the
	// enclosing parent for [cmd]-substitution bodies compiled against the
	// parent's slots (specializeExpr's cmdNode case). A scope bound to the
	// layout program satisfies every slot op of every program sharing it.
	layout *program
}

const (
	maxInlineDepth = 32
	maxProgramOps  = 1 << 20
	// maxVarSlots caps a program's variable layout; names past the cap (or
	// computed at runtime) live in the scope's overflow map instead. Keeps
	// per-frame slot arrays small enough to pool.
	maxVarSlots = 128
)

var errProgramTooLarge = errors.New("tacl: script too large for bytecode")

// compiled returns the script's bytecode program, compiling on first use.
// Compile failure is sticky: the script permanently falls back to the
// tree-walker, which is observationally identical.
func (s *Script) compiled() *program {
	if p := s.prog.Load(); p != nil {
		return p
	}
	if s.noVM.Load() {
		return nil
	}
	p, err := compileProgram(s)
	if err != nil {
		s.noVM.Store(true)
		return nil
	}
	s.prog.Store(p)
	return p
}

// Precompile lowers the script to bytecode ahead of its first execution, so
// cache layers can pay compilation at insert time instead of on the first
// activation's critical path. Safe to call concurrently and more than once.
func (s *Script) Precompile() { s.compiled() }

func compileProgram(s *Script) (p *program, err error) {
	// A compiler bug must degrade to the (identical) tree-walker, never
	// take down the site.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, errProgramTooLarge
		}
	}()
	c := &compiler{
		prog:     &program{varIdx: make(map[string]int32)},
		constIdx: make(map[string]int32),
		exprIdx:  make(map[string]int32),
		symIdx:   make(map[*symbol]int32),
	}
	c.prog.layout = c.prog
	c.compileCmds(s.cmds)
	if len(c.prog.ops) > maxProgramOps {
		return nil, errProgramTooLarge
	}
	return c.prog, nil
}

// compileProgramShared compiles a [cmd]-substitution body against the
// enclosing program's variable layout, so the body's slot ops index the
// very scope its parent binds — the nested activation keeps the slot fast
// path instead of dropping to name resolution. Fails soft (nil) and the
// caller keeps the generic cmdNode.
func compileProgramShared(s *Script, layout *program) (p *program) {
	defer func() {
		if r := recover(); r != nil {
			p = nil
		}
	}()
	c := &compiler{
		prog:     &program{layout: layout},
		constIdx: make(map[string]int32),
		exprIdx:  make(map[string]int32),
		symIdx:   make(map[*symbol]int32),
	}
	c.compileCmds(s.cmds)
	if len(c.prog.ops) > maxProgramOps {
		return nil
	}
	return c.prog
}

type compiler struct {
	prog     *program
	constIdx map[string]int32
	exprIdx  map[string]int32
	symIdx   map[*symbol]int32
	inline   int
	// pendingArgs tracks how many argument words of enclosing calls are on
	// the scratch stack at the current emission point (see region.scratch).
	pendingArgs int32
}

func (c *compiler) pc() int32 { return int32(len(c.prog.ops)) }

func (c *compiler) emit(op vmOp) int32 {
	c.prog.ops = append(c.prog.ops, op)
	return int32(len(c.prog.ops) - 1)
}

func (c *compiler) patchB(at, target int32) { c.prog.ops[at].b = target }

func (c *compiler) constRef(s string) int32 {
	if i, ok := c.constIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.consts))
	c.prog.consts = append(c.prog.consts, s)
	c.constIdx[s] = i
	return i
}

func (c *compiler) symRef(s *symbol) int32 {
	if i, ok := c.symIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.syms))
	c.prog.syms = append(c.prog.syms, s)
	c.symIdx[s] = i
	return i
}

func (c *compiler) wordRef(w *word) int32 {
	c.prog.words = append(c.prog.words, w)
	return int32(len(c.prog.words) - 1)
}

func (c *compiler) scriptRef(s *Script) int32 {
	c.prog.scripts = append(c.prog.scripts, s)
	return int32(len(c.prog.scripts) - 1)
}

func (c *compiler) cmdRef(cmd *command) int32 {
	c.prog.cmds = append(c.prog.cmds, cmd)
	return int32(len(c.prog.cmds) - 1)
}

func (c *compiler) argListRef(args []string) int32 {
	c.prog.argLists = append(c.prog.argLists, args)
	return int32(len(c.prog.argLists) - 1)
}

func (c *compiler) newSlot() int32 {
	c.prog.numSlots++
	return int32(c.prog.numSlots - 1)
}

// varRef assigns (or returns) name's slot in the program's variable layout,
// or -1 once the layout is full — the name then compiles to name-based ops
// and lives in the overflow map, consistently everywhere.
func (c *compiler) varRef(name string) int32 {
	lp := c.prog.layout
	if i, ok := lp.varIdx[name]; ok {
		return i
	}
	if len(lp.varNames) >= maxVarSlots {
		return -1
	}
	i := int32(len(lp.varNames))
	lp.varNames = append(lp.varNames, name)
	lp.varIdx[name] = i
	return i
}

func (c *compiler) addRegion(r region) { c.prog.regions = append(c.prog.regions, r) }

// exprRefIdx precompiles an expression operand, folding it when pure and
// otherwise specializing its $variable reads to this program's slots.
func (c *compiler) exprRefIdx(src string) int32 {
	if i, ok := c.exprIdx[src]; ok {
		return i
	}
	ref := &exprRef{src: src}
	if p, err := compileExprCached(src); err == nil {
		ref.prog = p
		if exprPure(p.root) {
			if v, err2 := p.root.eval(nil); err2 == nil {
				ref.isConst = true
				ref.constVal = v.text()
				ref.constTruthy, ref.constTruthyErr = Truthy(ref.constVal)
			}
		} else if root, changed := c.specializeExpr(p.root); changed {
			// The shared cached AST stays untouched (EngineAST keeps using
			// it); this program gets a private clone whose varNodes read
			// their slot directly when the program's scope is current.
			ref.prog = &exprProg{root: root}
			c.noteFastExpr(ref, root)
		}
	}
	i := int32(len(c.prog.exprs))
	c.prog.exprs = append(c.prog.exprs, ref)
	c.exprIdx[src] = i
	return i
}

// specializeExpr rewrites an expression AST's varNodes into slotVarNodes
// bound to this program's layout, cloning only the spine above a rewritten
// node. cmdNode bodies are ordinary scripts with their own compilation and
// are shared as-is.
func (c *compiler) specializeExpr(n exprNode) (exprNode, bool) {
	switch x := n.(type) {
	case *varNode:
		if i := c.varRef(x.name); i >= 0 {
			return &slotVarNode{name: x.name, prog: c.prog.layout, slot: i}, true
		}
	case *cmdNode:
		if p2 := compileProgramShared(x.body, c.prog.layout); p2 != nil {
			return &slotCmdNode{body: x.body, prog: p2}, true
		}
	case *notNode:
		if y, ch := c.specializeExpr(x.x); ch {
			return &notNode{x: y}, true
		}
	case *negNode:
		if y, ch := c.specializeExpr(x.x); ch {
			return &negNode{x: y}, true
		}
	case *andOrNode:
		l, cl := c.specializeExpr(x.l)
		r, cr := c.specializeExpr(x.r)
		if cl || cr {
			return &andOrNode{or: x.or, l: l, r: r}, true
		}
	case *eqNode:
		l, cl := c.specializeExpr(x.l)
		r, cr := c.specializeExpr(x.r)
		if cl || cr {
			return &eqNode{op: x.op, l: l, r: r}, true
		}
	case *relNode:
		l, cl := c.specializeExpr(x.l)
		r, cr := c.specializeExpr(x.r)
		if cl || cr {
			return &relNode{op: x.op, l: l, r: r}, true
		}
	case *addNode:
		l, cl := c.specializeExpr(x.l)
		r, cr := c.specializeExpr(x.r)
		if cl || cr {
			return &addNode{op: x.op, l: l, r: r}, true
		}
	case *mulNode:
		l, cl := c.specializeExpr(x.l)
		r, cr := c.specializeExpr(x.r)
		if cl || cr {
			return &mulNode{op: x.op, l: l, r: r}, true
		}
	case *ternaryNode:
		cond, cc := c.specializeExpr(x.cond)
		thenN, ct := c.specializeExpr(x.then)
		elseN, ce := c.specializeExpr(x.els)
		if cc || ct || ce {
			return &ternaryNode{cond: cond, then: thenN, els: elseN}, true
		}
	case *callNode:
		var args []exprNode
		changed := false
		for i, a := range x.args {
			y, ch := c.specializeExpr(a)
			if ch && args == nil {
				args = append([]exprNode(nil), x.args...)
			}
			if args != nil {
				args[i] = y
			}
			changed = changed || ch
		}
		if changed {
			return &callNode{name: x.name, args: args}, true
		}
	}
	return n, false
}

// noteFastExpr records the exprRef fast form when the specialized AST is
// exactly `slotVar op intConst` for an additive or relational op — the
// canonical loop-counter shapes (`$i < 100`, `$i + 1`).
func (c *compiler) noteFastExpr(ref *exprRef, root exprNode) {
	var kind uint8
	var l, r exprNode
	switch x := root.(type) {
	case *slotCmdNode:
		ref.fastKind = fastCmdSub
		ref.fastCmd = x
		return
	case *addNode:
		switch x.op {
		case '+':
			kind = fastAdd
		case '-':
			kind = fastSub
		default:
			return
		}
		l, r = x.l, x.r
	case *relNode:
		switch x.op {
		case "<":
			kind = fastLT
		case "<=":
			kind = fastLE
		case ">":
			kind = fastGT
		case ">=":
			kind = fastGE
		default:
			return
		}
		l, r = x.l, x.r
	default:
		return
	}
	sv, ok := l.(*slotVarNode)
	if !ok || sv.prog != c.prog.layout {
		return
	}
	cn, ok := r.(*constNode)
	if !ok || !cn.v.isInt {
		return
	}
	ref.fastKind = kind
	ref.fastSlot = sv.slot
	ref.fastConst = cn.v.i
	ref.fastProg = sv.prog
}

// exprPure reports whether an expression AST is free of variable and
// [command] references, i.e. safe to evaluate at compile time.
func exprPure(n exprNode) bool {
	switch x := n.(type) {
	case *constNode:
		return true
	case *notNode:
		return exprPure(x.x)
	case *negNode:
		return exprPure(x.x)
	case *andOrNode:
		return exprPure(x.l) && exprPure(x.r)
	case *eqNode:
		return exprPure(x.l) && exprPure(x.r)
	case *relNode:
		return exprPure(x.l) && exprPure(x.r)
	case *addNode:
		return exprPure(x.l) && exprPure(x.r)
	case *mulNode:
		return exprPure(x.l) && exprPure(x.r)
	case *ternaryNode:
		return exprPure(x.cond) && exprPure(x.then) && exprPure(x.els)
	case *callNode:
		for _, a := range x.args {
			if !exprPure(a) {
				return false
			}
		}
		return true
	default: // varNode, cmdNode
		return false
	}
}

// parseInt32 parses a base-10 integer constrained to int32 (it travels in a
// vmOp field); out-of-range deltas make the caller fall back to generic
// dispatch, which handles full int64.
func parseInt32(s string) (int64, error) {
	return strconv.ParseInt(s, 10, 32)
}

// constWord returns a word's literal text when it is a single literal
// segment (braced words, bare words without substitution).
func constWord(w *word) (string, bool) {
	if len(w.segs) == 1 && w.segs[0].kind == segLit {
		return w.segs[0].text, true
	}
	return "", false
}

// constArgs returns the command's words as literals when every word is
// constant. The returned slice is shared across executions: CmdFuncs
// receive args read-only (nothing in the builtin set or host bridge
// mutates its argument slice).
func constArgs(cmd *command) ([]string, bool) {
	args := make([]string, len(cmd.words))
	for i := range cmd.words {
		s, ok := constWord(&cmd.words[i])
		if !ok {
			return nil, false
		}
		args[i] = s
	}
	return args, true
}

func (c *compiler) compileCmds(cmds []command) {
	for i := range cmds {
		c.compileCommand(&cmds[i])
	}
}

func (c *compiler) compileCommand(cmd *command) {
	line := int32(cmd.line)
	c.emit(vmOp{code: opStep, line: line})
	name, nameConst := constWord(&cmd.words[0])
	if nameConst && c.inline < maxInlineDepth {
		switch name {
		case "if":
			if c.tryIf(cmd) {
				return
			}
		case "while":
			if c.tryWhile(cmd) {
				return
			}
		case "for":
			if c.tryFor(cmd) {
				return
			}
		case "foreach":
			if c.tryForeach(cmd) {
				return
			}
		case "expr":
			if c.tryExpr(cmd) {
				return
			}
		case "set":
			if c.trySet(cmd) {
				return
			}
		case "incr":
			if c.tryIncr(cmd) {
				return
			}
		}
	}
	if nameConst {
		if sym := internScriptSym(name); sym != nil {
			if args, ok := constArgs(cmd); ok {
				c.emit(vmOp{code: opCallConst, line: line, a: c.argListRef(args[1:]), b: c.symRef(sym)})
				return
			}
			saved := c.pendingArgs
			for i := 1; i < len(cmd.words); i++ {
				c.compileArg(&cmd.words[i])
				c.pendingArgs++
			}
			c.pendingArgs = saved
			c.emit(vmOp{code: opCall, line: line, a: c.symRef(sym), b: int32(len(cmd.words) - 1)})
			return
		}
	}
	saved := c.pendingArgs
	for i := range cmd.words {
		c.compileArg(&cmd.words[i])
		c.pendingArgs++
	}
	c.pendingArgs = saved
	c.emit(vmOp{code: opCallDyn, line: line, a: int32(len(cmd.words))})
}

func (c *compiler) compileArg(w *word) {
	if len(w.segs) == 1 {
		seg := &w.segs[0]
		switch seg.kind {
		case segLit:
			c.emit(vmOp{code: opArgConst, a: c.constRef(seg.text)})
			return
		case segVar:
			if slot := c.varRef(seg.text); slot >= 0 {
				c.emit(vmOp{code: opLoadSlot, a: c.constRef(seg.text), b: slot})
			} else {
				c.emit(vmOp{code: opArgVar, a: c.constRef(seg.text)})
			}
			return
		case segCmd:
			// Inline the substitution's commands into this program: the hot
			// `set v [host_cmd ...]` shape then costs zero nested VM entries.
			// The depth ops reproduce evalWord's recursion accounting, and
			// the depth region undoes it on the error path.
			if c.inline < maxInlineDepth {
				c.inline++
				start := c.emit(vmOp{code: opDepth})
				if len(seg.script.cmds) == 0 {
					c.emit(vmOp{code: opResult, a: c.constRef("")})
				} else {
					c.compileCmds(seg.script.cmds)
				}
				end := c.pc()
				c.emit(vmOp{code: opArgResult})
				c.inline--
				c.addRegion(region{start: start, end: end, isDepth: true})
				return
			}
			c.emit(vmOp{code: opArgScript, a: c.scriptRef(seg.script)})
			return
		}
	}
	c.emit(vmOp{code: opArgWord, a: c.wordRef(w)})
}

// emitGuard emits the shadow check preceding an inlined construct; the
// guard's jump-over target is patched by the caller. The check itself is
// the interpreter's cached canon mask (see Interp.cmdShadowed), so no
// symbol is needed — only the canon kind and the original command for the
// generic fallback.
func (c *compiler) emitGuard(cmd *command, kind uint8) int32 {
	return c.emit(vmOp{
		code: opGuard, kind: kind, line: int32(cmd.line), c: c.cmdRef(cmd),
	})
}

// trySet inlines the two-argument `set name value` when the target name is
// a static literal with a slot: the value word compiles as an ordinary
// argument and opStoreSlot moves it into the slot. One-argument reads and
// dynamic names keep generic dispatch.
func (c *compiler) trySet(cmd *command) bool {
	if len(cmd.words) != 3 {
		return false
	}
	name, ok := constWord(&cmd.words[1])
	if !ok {
		return false
	}
	slot := c.varRef(name)
	if slot < 0 {
		return false
	}
	g := c.emitGuard(cmd, kindSet)
	c.compileArg(&cmd.words[2])
	c.emit(vmOp{code: opStoreSlot, line: int32(cmd.line), a: c.constRef(name), b: slot})
	c.patchB(g, c.pc())
	return true
}

// tryIncr inlines `incr name ?delta?` for a slotted static name and a
// literal integer delta that fits int32. Non-integer deltas fall back to
// the generic call, which owns that error's text.
func (c *compiler) tryIncr(cmd *command) bool {
	if len(cmd.words) != 2 && len(cmd.words) != 3 {
		return false
	}
	name, ok := constWord(&cmd.words[1])
	if !ok {
		return false
	}
	delta := int64(1)
	if len(cmd.words) == 3 {
		ds, ok := constWord(&cmd.words[2])
		if !ok {
			return false
		}
		var err error
		delta, err = parseInt32(ds)
		if err != nil {
			return false
		}
	}
	slot := c.varRef(name)
	if slot < 0 {
		return false
	}
	g := c.emitGuard(cmd, kindIncr)
	c.emit(vmOp{code: opIncrSlot, line: int32(cmd.line), a: c.constRef(name), b: slot, c: int32(delta)})
	c.patchB(g, c.pc())
	return true
}

func (c *compiler) tryExpr(cmd *command) bool {
	args, ok := constArgs(cmd)
	if !ok || len(args) < 2 {
		return false
	}
	src := strings.Join(args[1:], " ")
	g := c.emitGuard(cmd, kindExpr)
	c.emit(vmOp{code: opExpr, line: int32(cmd.line), a: c.exprRefIdx(src)})
	c.patchB(g, c.pc())
	return true
}

func (c *compiler) tryWhile(cmd *command) bool {
	if len(cmd.words) != 3 {
		return false
	}
	cond, ok1 := constWord(&cmd.words[1])
	body, ok2 := constWord(&cmd.words[2])
	if !ok1 || !ok2 {
		return false
	}
	bodyScript, err := ParseCached(body)
	if err != nil {
		return false // generic call reproduces the parse error
	}
	g := c.emitGuard(cmd, kindWhile)
	slot := c.newSlot()
	line := int32(cmd.line)
	top := c.pc()
	cj := c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(cond), c: slot})
	c.inline++
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	c.inline--
	bot := c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(cj, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: bot, scratch: c.pendingArgs})
	c.addRegion(region{start: top, end: exit, name: "while", line: line})
	return true
}

func (c *compiler) tryFor(cmd *command) bool {
	if len(cmd.words) != 5 {
		return false
	}
	var lit [4]string
	for i := 0; i < 4; i++ {
		s, ok := constWord(&cmd.words[i+1])
		if !ok {
			return false
		}
		lit[i] = s
	}
	initScript, err := ParseCached(lit[0])
	if err != nil {
		return false
	}
	stepScript, err := ParseCached(lit[2])
	if err != nil {
		return false
	}
	bodyScript, err := ParseCached(lit[3])
	if err != nil {
		return false
	}
	g := c.emitGuard(cmd, kindFor)
	slot := c.newSlot()
	line := int32(cmd.line)
	c.inline++
	initStart := c.pc()
	c.compileCmds(initScript.cmds)
	top := c.pc()
	cj := c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(lit[1]), c: slot})
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	stepStart := c.pc()
	c.compileCmds(stepScript.cmds)
	c.inline--
	c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(cj, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: stepStart, scratch: c.pendingArgs})
	c.addRegion(region{start: initStart, end: exit, name: "for", line: line})
	return true
}

func (c *compiler) tryForeach(cmd *command) bool {
	if len(cmd.words) != 4 {
		return false
	}
	varName, ok1 := constWord(&cmd.words[1])
	body, ok2 := constWord(&cmd.words[3])
	if !ok1 || !ok2 {
		return false
	}
	bodyScript, err := ParseCached(body)
	if err != nil {
		return false
	}
	g := c.emitGuard(cmd, kindForeach)
	slot := c.newSlot()
	line := int32(cmd.line)
	// The list word may be dynamic; its evaluation errors stay undecorated
	// (word-eval errors are raw in the tree-walker), so it sits outside the
	// decor region.
	c.compileArg(&cmd.words[2])
	initPC := c.emit(vmOp{code: opForeachInit, line: line, a: slot})
	top := c.emit(vmOp{code: opForeachNext, line: line, a: slot, c: c.constRef(varName), d: c.varRef(varName)})
	c.inline++
	bodyStart := c.pc()
	c.compileCmds(bodyScript.cmds)
	bodyEnd := c.pc()
	c.inline--
	bot := c.emit(vmOp{code: opLoopBottom, line: line, a: slot, b: top})
	exit := c.emit(vmOp{code: opResult, a: c.constRef("")})
	end := c.pc()
	c.patchB(top, exit)
	c.patchB(g, end)
	c.addRegion(region{start: bodyStart, end: bodyEnd, isLoop: true, breakPC: exit, contPC: bot, scratch: c.pendingArgs})
	c.addRegion(region{start: initPC, end: exit, name: "foreach", line: line})
	return true
}

func (c *compiler) tryIf(cmd *command) bool {
	args, ok := constArgs(cmd)
	if !ok {
		return false
	}
	args = args[1:]
	type branch struct {
		cond    string
		body    *Script
		hasCond bool
	}
	var branches []branch
	i := 0
	for {
		if i+1 >= len(args) {
			return false // malformed: generic call owns the error text
		}
		body, err := ParseCached(args[i+1])
		if err != nil {
			return false
		}
		branches = append(branches, branch{cond: args[i], body: body, hasCond: true})
		i += 2
		if i >= len(args) {
			break
		}
		switch args[i] {
		case "elseif":
			i++
		case "else":
			if i+1 != len(args)-1 {
				return false
			}
			body, err := ParseCached(args[i+1])
			if err != nil {
				return false
			}
			branches = append(branches, branch{body: body})
			i = len(args)
		default:
			return false
		}
		if i >= len(args) {
			break
		}
	}
	g := c.emitGuard(cmd, kindIf)
	line := int32(cmd.line)
	start := c.pc()
	emptyIdx := c.constRef("")
	var endJumps []int32
	c.inline++
	for _, b := range branches {
		var cj int32 = -1
		if b.hasCond {
			cj = c.emit(vmOp{code: opCondJump, line: line, a: c.exprRefIdx(b.cond), c: -1})
		}
		if len(b.body.cmds) == 0 {
			c.emit(vmOp{code: opResult, a: emptyIdx})
		} else {
			c.compileCmds(b.body.cmds)
		}
		if b.hasCond {
			endJumps = append(endJumps, c.emit(vmOp{code: opJump}))
			c.patchB(cj, c.pc())
		}
	}
	c.inline--
	// All conditions false with no else: the if evaluates to "".
	if branches[len(branches)-1].hasCond {
		c.emit(vmOp{code: opResult, a: emptyIdx})
	}
	end := c.pc()
	for _, j := range endJumps {
		c.prog.ops[j].a = end
	}
	c.patchB(g, end)
	c.addRegion(region{start: start, end: end, name: "if", line: line})
	return true
}
