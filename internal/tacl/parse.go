// Package tacl implements TacL, the agent language of this TACOMA
// reproduction. The paper carried agents as Tcl procedures in the CODE
// folder of a briefcase, executed by a per-site Tcl interpreter; TacL plays
// the same role. The essential property is that agent code is an
// uninterpreted byte string any site can execute, so migration never has to
// serialize a running thread: state travels in the briefcase, and execution
// restarts from source at the destination.
//
// TacL follows Tcl's surface syntax: a script is a sequence of commands,
// a command is a sequence of words, and everything is a string. Words may
// be braced (literal), quoted (with substitution), or bare; $var and
// [command] substitutions work as in Tcl. Control structures are ordinary
// commands taking bodies as braced strings.
//
// Interpreters enforce a step budget so a runaway agent cannot pin a site;
// the paper proposes charging electronic cash for cycles, and the cash
// package builds exactly that on top of the budget hook.
//
// Three execution engines share these parse trees, selected per
// interpreter via SetEngine and ordered fastest-first: (1) the bytecode VM
// (bytecode.go/vm.go), the default, which lowers a Script to a flat
// register IR on first execution; (2) the tree-walking evaluator with
// compiled expression ASTs (interp.go/exprc.go), the automatic fallback
// when bytecode compilation fails; (3) the reference string-walking
// evaluator (expr.go), the differential-testing oracle the other two are
// pinned against. All three are observationally identical — results, error
// text, step accounting, side-effect order.
package tacl

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// segKind discriminates the parts of a word.
type segKind int

const (
	segLit segKind = iota // literal text
	segVar                // $name or ${name} variable substitution
	segCmd                // [script] command substitution
)

type segment struct {
	kind   segKind
	text   string  // literal text or variable name
	script *Script // parsed nested script for segCmd
}

// word is a sequence of segments concatenated after substitution.
type word struct {
	segs []segment
}

// command is one command invocation: a list of words, the first of which
// names the command.
type command struct {
	words []word
	line  int
}

// Script is a parsed TacL script. Scripts are immutable once parsed and
// safe to share between interpreter runs. The bytecode program is attached
// lazily on first execution (so every cache layer holding a *Script —
// process parse cache, site script cache — caches the compiled program for
// free) and is itself immutable once published.
type Script struct {
	cmds []command
	src  string

	prog atomic.Pointer[program] // compiled bytecode, nil until first VM run
	noVM atomic.Bool             // sticky compile failure: tree-walk forever
}

// Source returns the original text the script was parsed from.
func (s *Script) Source() string { return s.src }

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("tacl: parse error at line %d: %s", e.Line, e.Msg)
}

type parser struct {
	src  []byte
	pos  int
	line int
}

// Parse parses a TacL script.
func Parse(src string) (*Script, error) {
	p := &parser{src: []byte(src), line: 1}
	cmds, err := p.parseScript(0)
	if err != nil {
		return nil, err
	}
	return &Script{cmds: cmds, src: src}, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

// parseScript parses commands until EOF (depth 0) or an unbalanced ']'
// (depth > 0, for command substitution).
func (p *parser) parseScript(depth int) ([]command, error) {
	var cmds []command
	for {
		p.skipCommandSeparators()
		if p.eof() {
			if depth > 0 {
				return nil, p.errf("missing close-bracket")
			}
			return cmds, nil
		}
		if depth > 0 && p.peek() == ']' {
			return cmds, nil
		}
		if p.peek() == '#' {
			p.skipComment()
			continue
		}
		cmd, err := p.parseCommand(depth)
		if err != nil {
			return nil, err
		}
		if len(cmd.words) > 0 {
			cmds = append(cmds, cmd)
		}
	}
}

func (p *parser) skipCommandSeparators() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n', ';':
			p.advance()
		default:
			return
		}
	}
}

func (p *parser) skipComment() {
	for !p.eof() && p.peek() != '\n' {
		p.advance()
	}
}

func (p *parser) skipBlank() {
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			p.advance()
			continue
		}
		// Backslash-newline is a line continuation.
		if c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
			p.advance()
			p.advance()
			continue
		}
		return
	}
}

// parseCommand parses words until newline, ';', EOF, or closing ']'.
func (p *parser) parseCommand(depth int) (command, error) {
	cmd := command{line: p.line}
	for {
		p.skipBlank()
		if p.eof() {
			return cmd, nil
		}
		switch c := p.peek(); {
		case c == '\n' || c == ';':
			p.advance()
			return cmd, nil
		case depth > 0 && c == ']':
			return cmd, nil
		}
		w, err := p.parseWord(depth)
		if err != nil {
			return cmd, err
		}
		cmd.words = append(cmd.words, w)
	}
}

func (p *parser) parseWord(depth int) (word, error) {
	switch p.peek() {
	case '{':
		return p.parseBracedWord()
	case '"':
		return p.parseQuotedWord()
	default:
		return p.parseBareWord(depth)
	}
}

// parseBracedWord consumes {..balanced..}; no substitutions are performed.
func (p *parser) parseBracedWord() (word, error) {
	startLine := p.line
	p.advance() // '{'
	var sb strings.Builder
	nest := 1
	for {
		if p.eof() {
			p.line = startLine
			return word{}, p.errf("missing close-brace")
		}
		c := p.advance()
		switch c {
		case '{':
			nest++
		case '}':
			nest--
			if nest == 0 {
				if err := p.requireWordEnd(); err != nil {
					return word{}, err
				}
				return word{segs: []segment{{kind: segLit, text: sb.String()}}}, nil
			}
		case '\\':
			// Backslashes pass through braces verbatim, except that a
			// backslash-newline still continues the line, and escaped
			// braces do not count toward nesting.
			if !p.eof() && (p.peek() == '{' || p.peek() == '}' || p.peek() == '\\') {
				sb.WriteByte(c)
				sb.WriteByte(p.advance())
				continue
			}
		}
		if nest > 0 || c != '}' {
			sb.WriteByte(c)
		}
	}
}

// requireWordEnd checks that a quoted or braced word is followed by a word
// boundary, catching errors like {a}b.
func (p *parser) requireWordEnd() error {
	if p.eof() {
		return nil
	}
	switch p.peek() {
	case ' ', '\t', '\r', '\n', ';', ']':
		return nil
	}
	return p.errf("extra characters after close-brace or close-quote")
}

func (p *parser) parseQuotedWord() (word, error) {
	startLine := p.line
	p.advance() // '"'
	var w word
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			w.segs = append(w.segs, segment{kind: segLit, text: lit.String()})
			lit.Reset()
		}
	}
	for {
		if p.eof() {
			p.line = startLine
			return word{}, p.errf("missing close-quote")
		}
		switch c := p.peek(); c {
		case '"':
			p.advance()
			flush()
			if len(w.segs) == 0 {
				w.segs = []segment{{kind: segLit, text: ""}}
			}
			if err := p.requireWordEnd(); err != nil {
				return word{}, err
			}
			return w, nil
		case '\\':
			s, err := p.parseEscape()
			if err != nil {
				return word{}, err
			}
			lit.WriteString(s)
		case '$':
			flush()
			seg, err := p.parseVarSegment()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg)
		case '[':
			flush()
			seg, err := p.parseCmdSegment()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg)
		default:
			lit.WriteByte(p.advance())
		}
	}
}

func (p *parser) parseBareWord(depth int) (word, error) {
	var w word
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			w.segs = append(w.segs, segment{kind: segLit, text: lit.String()})
			lit.Reset()
		}
	}
	for {
		if p.eof() {
			break
		}
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' {
			break
		}
		if depth > 0 && c == ']' {
			break
		}
		switch c {
		case '\\':
			s, err := p.parseEscape()
			if err != nil {
				return word{}, err
			}
			lit.WriteString(s)
		case '$':
			flush()
			seg, err := p.parseVarSegment()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg)
		case '[':
			flush()
			seg, err := p.parseCmdSegment()
			if err != nil {
				return word{}, err
			}
			w.segs = append(w.segs, seg)
		default:
			lit.WriteByte(p.advance())
		}
	}
	flush()
	if len(w.segs) == 0 {
		w.segs = []segment{{kind: segLit, text: ""}}
	}
	return w, nil
}

func (p *parser) parseEscape() (string, error) {
	p.advance() // '\'
	if p.eof() {
		return "", p.errf("trailing backslash")
	}
	c := p.advance()
	switch c {
	case 'n':
		return "\n", nil
	case 't':
		return "\t", nil
	case 'r':
		return "\r", nil
	case '\n':
		return " ", nil // line continuation
	case 'a':
		return "\a", nil
	case '0':
		return "\x00", nil
	default:
		return string(c), nil
	}
}

// parseVarSegment parses $name or ${name}. A bare '$' with no valid name is
// literal, as in Tcl.
func (p *parser) parseVarSegment() (segment, error) {
	p.advance() // '$'
	if p.eof() {
		return segment{kind: segLit, text: "$"}, nil
	}
	if p.peek() == '{' {
		p.advance()
		var sb strings.Builder
		for {
			if p.eof() {
				return segment{}, p.errf("missing close-brace for variable name")
			}
			c := p.advance()
			if c == '}' {
				return segment{kind: segVar, text: sb.String()}, nil
			}
			sb.WriteByte(c)
		}
	}
	var sb strings.Builder
	for !p.eof() && isVarChar(p.peek()) {
		sb.WriteByte(p.advance())
	}
	if sb.Len() == 0 {
		return segment{kind: segLit, text: "$"}, nil
	}
	return segment{kind: segVar, text: sb.String()}, nil
}

func isVarChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// parseCmdSegment parses [script].
func (p *parser) parseCmdSegment() (segment, error) {
	startLine := p.line
	p.advance() // '['
	cmds, err := p.parseScript(1)
	if err != nil {
		return segment{}, err
	}
	if p.eof() || p.peek() != ']' {
		p.line = startLine
		return segment{}, p.errf("missing close-bracket")
	}
	p.advance() // ']'
	return segment{kind: segCmd, script: &Script{cmds: cmds}}, nil
}
