package tacl

import "sync"

// Process-wide compile caches. Scripts and compiled expressions are
// immutable once built, so any evaluation of the same source text can share
// one compiled form: a while condition parses once, a proc body parses
// once, and an agent script re-activated at a site parses once. Both caches
// are sharded 16 ways (like the kernel's agent registry) so concurrent
// activations rarely touch the same lock, and each shard is capped with
// random eviction so hostile or computed one-shot sources cannot grow the
// cache without bound.

const (
	cacheShards = 16
	// cacheShardCap is sized for legitimate reuse (distinct loop bodies,
	// conditions, and proc definitions in play at once), not for hostile
	// churn: 16×64 entries per cache bounds what computed one-shot sources
	// can pin while keeping every real workload's working set resident.
	cacheShardCap = 64
	// maxCacheableSrc bounds the size of a cached source: together with the
	// entry cap it bounds the caches' total footprint (a hostile agent can
	// route arbitrary computed strings through eval). Oversized sources
	// still parse — they just aren't retained.
	maxCacheableSrc = 8 << 10
)

type cacheShard[T any] struct {
	mu sync.RWMutex
	m  map[string]T
	// seen is the admission filter: a source is cached on second sight.
	// Substitution-generated one-shot sources (unbraced expr operands,
	// computed eval strings) then only churn this key set — they never
	// evict a hot compiled entry from m.
	seen map[string]struct{}
}

type compileCache[T any] struct {
	shards [cacheShards]cacheShard[T]
}

// shardIndex hashes a bounded prefix (FNV-1a) plus the length, so shard
// selection stays O(1) even for large scripts; the map lookup inside the
// shard does the exact matching.
func shardIndex(key string) int {
	h := uint32(2166136261)
	n := len(key)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	h ^= uint32(len(key))
	return int(h & (cacheShards - 1))
}

func (c *compileCache[T]) get(key string) (T, bool) {
	sh := &c.shards[shardIndex(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (c *compileCache[T]) put(key string, v T) {
	if len(key) > maxCacheableSrc {
		return
	}
	sh := &c.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[string]T, 64)
		sh.seen = make(map[string]struct{}, 64)
	}
	if _, ok := sh.seen[key]; !ok {
		// First sight: remember the key only. A source that is never
		// evaluated twice never earns a cache slot.
		if len(sh.seen) >= cacheShardCap {
			for k := range sh.seen {
				delete(sh.seen, k)
				break
			}
		}
		sh.seen[key] = struct{}{}
		return
	}
	delete(sh.seen, key)
	if len(sh.m) >= cacheShardCap {
		// Evict an arbitrary entry (map iteration order is effectively
		// random); hot entries that get evicted are simply re-compiled.
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[key] = v
}

var (
	scriptCache compileCache[*Script]
	exprCache   compileCache[*exprProg]
)

// ParseCached returns the parse of src, consulting the shared script cache.
// Parse errors are not cached; the error path is never hot.
func ParseCached(src string) (*Script, error) {
	if s, ok := scriptCache.get(src); ok {
		return s, nil
	}
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	scriptCache.put(src, s)
	return s, nil
}

// compileExprCached returns the compiled form of an expression, consulting
// the shared expression cache.
func compileExprCached(src string) (*exprProg, error) {
	if p, ok := exprCache.get(src); ok {
		return p, nil
	}
	p, err := compileExpr(src)
	if err != nil {
		return nil, err
	}
	exprCache.put(src, p)
	return p, nil
}
