package tacl

import (
	"strings"
	"testing"
)

func TestSwitchExact(t *testing.T) {
	evalCases(t, map[string]string{
		`switch b {a {set r 1} b {set r 2} c {set r 3}}`:   "2",
		`switch z {a {set r 1} default {set r dflt}}`:      "dflt",
		`switch z {a {set r 1} b {set r 2}}`:               "",
		`switch -exact b {a {set r 1} b {set r 2}}`:        "2",
		`set x c; switch $x {a {set r 1} c {set r got-c}}`: "got-c",
		`switch b a {set r 1} b {set r 2}`:                 "2", // inline form
	})
}

func TestSwitchGlob(t *testing.T) {
	evalCases(t, map[string]string{
		`switch -glob hello {h* {set r prefix} default {set r no}}`:   "prefix",
		`switch -glob hello {x* {set r no} ?ello {set r qmark}}`:      "qmark",
		`switch -glob hello {x* {set r no} default {set r fallthru}}`: "fallthru",
	})
}

func TestSwitchFallthrough(t *testing.T) {
	got := mustEval(t, `switch b {a - b - c {set r abc} default {set r no}}`)
	if got != "abc" {
		t.Fatalf("got %q", got)
	}
}

func TestSwitchErrors(t *testing.T) {
	in := New()
	if _, err := in.Eval(`switch`); err == nil {
		t.Fatal("bare switch succeeded")
	}
	if _, err := in.Eval(`switch v {a}`); err == nil {
		t.Fatal("pattern without body succeeded")
	}
	if _, err := in.Eval(`switch b {a - b -}`); err == nil {
		t.Fatal("trailing fallthrough succeeded")
	}
}

func TestLassign(t *testing.T) {
	evalCases(t, map[string]string{
		`lassign {1 2 3} a b; list $a $b`:  "1 2",
		`lassign {1 2 3} a b`:              "3", // remainder returned
		`lassign {1} a b c; list $a $b $c`: "1 {} {}",
		`lassign {x y} a b`:                "",
	})
}

func TestLinsert(t *testing.T) {
	evalCases(t, map[string]string{
		`linsert {a b c} 1 X`:   "a X b c",
		`linsert {a b c} 0 X Y`: "X Y a b c",
		`linsert {a b c} end X`: "a b c X",
		`linsert {a b c} 99 X`:  "a b c X",
		`linsert {} 0 only`:     "only",
	})
}

func TestLset(t *testing.T) {
	evalCases(t, map[string]string{
		`set l {a b c}; lset l 1 B; set l`: "a B c",
		`set l {a b c}; lset l end Z`:      "a b Z",
	})
	in := New()
	if _, err := in.Eval(`set l {a}; lset l 5 X`); err == nil {
		t.Fatal("out of range lset succeeded")
	}
	if _, err := in.Eval(`lset missing 0 X`); err == nil {
		t.Fatal("lset on unset variable succeeded")
	}
}

func TestLrepeat(t *testing.T) {
	evalCases(t, map[string]string{
		`lrepeat 3 x`:   "x x x",
		`lrepeat 2 a b`: "a b a b",
		`lrepeat 0 a`:   "",
	})
	in := New()
	if _, err := in.Eval(`lrepeat -1 x`); err == nil {
		t.Fatal("negative count succeeded")
	}
	if _, err := in.Eval(`lrepeat 99999999 a b c`); err == nil {
		t.Fatal("huge lrepeat succeeded")
	}
}

func TestStringExtras(t *testing.T) {
	evalCases(t, map[string]string{
		`string last l hello`:             "3",
		`string last zz hello`:            "-1",
		`string replace hello 1 3 EY`:     "hEYo",
		`string replace hello 0 end gone`: "gone",
		`string replace hello 9 12 x`:     "hello",
		`string reverse abc`:              "cba",
		`string reverse ""`:               "",
		`string map {a 1 b 2} abcab`:      "12c12",
		`string map {} plain`:             "plain",
		`string is integer 42`:            "1",
		`string is integer 4.2`:           "0",
		`string is double 4.2`:            "1",
		`string is double abc`:            "0",
		`string is alpha hello`:           "1",
		`string is alpha h3llo`:           "0",
		`string is digit 123`:             "1",
		`string is digit 12a`:             "0",
	})
}

func TestStringExtrasErrors(t *testing.T) {
	bad := []string{
		`string last onearg`,
		`string replace s 1`,
		`string map {odd} s`,
		`string is nosuchclass v`,
		`string reverse a b`,
	}
	for _, src := range bad {
		in := New()
		if _, err := in.Eval(src); err == nil {
			t.Errorf("%q succeeded", src)
		}
	}
}

func TestSwitchUsedForAgentDispatch(t *testing.T) {
	// The idiom agents use: dispatch on the current host.
	got := mustEval(t, `
		proc whereami {h} {
			switch -glob $h {
				site-0   {return origin}
				site-*   {return roaming}
				default  {return lost}
			}
		}
		list [whereami site-0] [whereami site-7] [whereami mars]
	`)
	if got != "origin roaming lost" {
		t.Fatalf("got %q", got)
	}
}

func TestExtrasListedInInfoCommands(t *testing.T) {
	in := New()
	out, err := in.Eval(`info commands`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"switch", "lassign", "linsert", "lset", "lrepeat"} {
		if !strings.Contains(out, want) {
			t.Errorf("info commands missing %q", want)
		}
	}
}

func TestUpvarCallerFrame(t *testing.T) {
	got := mustEval(t, `
		proc bump {varname} {
			upvar 1 $varname v
			incr v
		}
		proc caller {} {
			set count 10
			bump count
			bump count
			return $count
		}
		caller
	`)
	if got != "12" {
		t.Fatalf("count = %q, want 12", got)
	}
}

func TestUpvarGlobalLevel(t *testing.T) {
	got := mustEval(t, `
		set total 0
		proc add {n} {
			upvar #0 total t
			set t [expr {$t + $n}]
		}
		add 3; add 4
		set total
	`)
	if got != "7" {
		t.Fatalf("total = %q", got)
	}
}

func TestUpvarSameNameGlobal(t *testing.T) {
	got := mustEval(t, `
		set g 1
		proc f {} { upvar #0 g g; incr g }
		f
		set g
	`)
	if got != "2" {
		t.Fatalf("g = %q", got)
	}
}

func TestUpvarUnsetAndExists(t *testing.T) {
	got := mustEval(t, `
		proc wipe {varname} {
			upvar 1 $varname v
			set had [info exists v]
			unset v
			return $had
		}
		proc caller {} {
			set x here
			set had [wipe x]
			list $had [info exists x]
		}
		caller
	`)
	if got != "1 0" {
		t.Fatalf("got %q", got)
	}
}

func TestUpvarErrors(t *testing.T) {
	in := New()
	if _, err := in.Eval(`upvar 1 a b`); err == nil {
		t.Fatal("upvar at top level succeeded")
	}
	if _, err := in.Eval(`proc f {} { upvar 5 a b }; f`); err == nil {
		t.Fatal("unsupported level accepted")
	}
	if _, err := in.Eval(`proc f {} { upvar }; f`); err == nil {
		t.Fatal("bare upvar accepted")
	}
}

func TestUplevelRunsInCallerScope(t *testing.T) {
	got := mustEval(t, `
		proc setter {} {
			uplevel 1 {set injected by-setter}
		}
		proc caller {} {
			setter
			return $injected
		}
		caller
	`)
	if got != "by-setter" {
		t.Fatalf("injected = %q", got)
	}
}

func TestUplevelGlobalScope(t *testing.T) {
	got := mustEval(t, `
		proc deep {} { uplevel #0 {set g set-at-top} }
		proc mid {} { deep }
		mid
		set g
	`)
	if got != "set-at-top" {
		t.Fatalf("g = %q", got)
	}
}

func TestUplevelNestedCallsPreserveFrames(t *testing.T) {
	// A proc called from inside uplevel must not corrupt the suspended
	// frame (slice aliasing hazard).
	got := mustEval(t, `
		proc helper {} { return ok }
		proc middle {} {
			set mine precious
			uplevel 1 {helper}
			return $mine
		}
		proc outer {} { middle }
		outer
	`)
	if got != "precious" {
		t.Fatalf("mine = %q", got)
	}
}
