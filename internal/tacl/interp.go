package tacl

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Interp executes TacL scripts. Each agent activation gets a fresh
// interpreter; host commands (briefcase access, meet, migration) are
// registered by the kernel before the agent runs.
//
// An Interp is not safe for concurrent use; the kernel gives each agent
// activation its own.
type Interp struct {
	globals  map[string]string
	frames   []*frame
	procs    map[string]*procDef
	commands map[string]CmdFunc

	// MaxSteps bounds the number of command evaluations (0 = unlimited).
	// Exceeding it aborts the script with ErrBudget: TACOMA sites are
	// autonomous and must be able to bound what a visiting agent consumes.
	MaxSteps int
	// Steps counts command evaluations so far.
	Steps int
	// StepHook, if set, is invoked on every command evaluation; it can
	// return an error to abort the agent (used to charge electronic cash
	// for cycles).
	StepHook func() error
	// Out receives the output of puts.
	Out io.Writer

	depth int
}

// CmdFunc implements a command. args excludes the command name.
type CmdFunc func(in *Interp, args []string) (string, error)

type procDef struct {
	name   string
	params []procParam
	body   *Script
}

type procParam struct {
	name     string
	def      string
	hasDef   bool
	variadic bool
}

type frame struct {
	vars    map[string]string
	global  map[string]bool   // names linked to globals via the global command
	aliases map[string]varRef // names linked by upvar
}

// varRef names a variable in another scope: frame == nil means globals.
type varRef struct {
	frame *frame
	name  string
}

func ensureAliases(f *frame) map[string]varRef {
	if f.aliases == nil {
		f.aliases = make(map[string]varRef)
	}
	return f.aliases
}

// Interpreter-level errors.
var (
	// ErrBudget reports that the agent exceeded its step budget.
	ErrBudget = errors.New("tacl: step budget exhausted")
	// ErrDepth reports runaway recursion.
	ErrDepth = errors.New("tacl: recursion too deep")
)

// maxDepth bounds proc recursion and eval nesting.
const maxDepth = 200

// Control-flow signals travel as errors.
var (
	errBreak    = errors.New("tacl: break outside loop")
	errContinue = errors.New("tacl: continue outside loop")
)

type returnSignal struct{ value string }

func (r *returnSignal) Error() string { return "tacl: return outside proc" }

// jumpSignal aborts script execution after a successful migration; the
// kernel's jump command raises it so no code after jump runs at the origin.
type jumpSignal struct{ dest string }

func (j *jumpSignal) Error() string { return "tacl: agent jumped to " + j.dest }

// IsJump reports whether err is the post-migration stop signal and, if so,
// the destination site.
func IsJump(err error) (string, bool) {
	var js *jumpSignal
	if errors.As(err, &js) {
		return js.dest, true
	}
	return "", false
}

// JumpSignal constructs the stop signal for a migration to dest. Only the
// kernel's migration commands should raise it.
func JumpSignal(dest string) error { return &jumpSignal{dest: dest} }

// New creates an interpreter with the full builtin command set.
func New() *Interp {
	in := &Interp{
		globals:  make(map[string]string),
		procs:    make(map[string]*procDef),
		commands: make(map[string]CmdFunc),
		Out:      io.Discard,
	}
	registerBuiltins(in)
	return in
}

// Register installs (or replaces) a host command.
func (in *Interp) Register(name string, fn CmdFunc) { in.commands[name] = fn }

// Commands returns the names of all registered commands, sorted.
func (in *Interp) Commands() []string {
	names := make([]string, 0, len(in.commands))
	for n := range in.commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetGlobal sets a global variable.
func (in *Interp) SetGlobal(name, value string) { in.globals[name] = value }

// Global reads a global variable.
func (in *Interp) Global(name string) (string, bool) {
	v, ok := in.globals[name]
	return v, ok
}

// Eval parses and runs a script, returning the result of its last command.
func (in *Interp) Eval(src string) (string, error) {
	s, err := Parse(src)
	if err != nil {
		return "", err
	}
	return in.EvalScript(s)
}

// EvalScript runs a previously parsed script.
func (in *Interp) EvalScript(s *Script) (string, error) {
	var result string
	for i := range s.cmds {
		r, err := in.evalCommand(&s.cmds[i])
		if err != nil {
			return "", err
		}
		result = r
	}
	return result, nil
}

func (in *Interp) evalCommand(c *command) (string, error) {
	in.Steps++
	if in.MaxSteps > 0 && in.Steps > in.MaxSteps {
		return "", fmt.Errorf("%w after %d steps (line %d)", ErrBudget, in.Steps-1, c.line)
	}
	if in.StepHook != nil {
		if err := in.StepHook(); err != nil {
			return "", fmt.Errorf("tacl: line %d: %w", c.line, err)
		}
	}
	args := make([]string, 0, len(c.words))
	for i := range c.words {
		v, err := in.evalWord(&c.words[i])
		if err != nil {
			return "", err
		}
		args = append(args, v)
	}
	if len(args) == 0 {
		return "", nil
	}
	name, rest := args[0], args[1:]
	if p, ok := in.procs[name]; ok {
		return in.callProc(p, rest, c.line)
	}
	if fn, ok := in.commands[name]; ok {
		res, err := fn(in, rest)
		if err != nil && !isControl(err) {
			return "", decorate(err, name, c.line)
		}
		return res, err
	}
	return "", fmt.Errorf("tacl: line %d: unknown command %q", c.line, name)
}

// decorate adds command/line context to an error once, leaving sentinel
// wrapping intact for errors.Is.
func decorate(err error, name string, line int) error {
	var pe *ParseError
	if errors.As(err, &pe) {
		return err
	}
	var ue *userError
	if errors.As(err, &ue) {
		return err
	}
	if strings.HasPrefix(err.Error(), "tacl: line ") {
		return err
	}
	return fmt.Errorf("tacl: line %d: %s: %w", line, name, err)
}

func isControl(err error) bool {
	if err == errBreak || err == errContinue {
		return true
	}
	var rs *returnSignal
	var js *jumpSignal
	return errors.As(err, &rs) || errors.As(err, &js)
}

func (in *Interp) evalWord(w *word) (string, error) {
	if len(w.segs) == 1 && w.segs[0].kind == segLit {
		return w.segs[0].text, nil
	}
	var sb strings.Builder
	for i := range w.segs {
		seg := &w.segs[i]
		switch seg.kind {
		case segLit:
			sb.WriteString(seg.text)
		case segVar:
			v, err := in.getVar(seg.text)
			if err != nil {
				return "", err
			}
			sb.WriteString(v)
		case segCmd:
			in.depth++
			if in.depth > maxDepth {
				in.depth--
				return "", ErrDepth
			}
			v, err := in.EvalScript(seg.script)
			in.depth--
			if err != nil {
				return "", err
			}
			sb.WriteString(v)
		}
	}
	return sb.String(), nil
}

// currentFrame returns the active proc frame, or nil at top level (where
// variables are globals).
func (in *Interp) currentFrame() *frame {
	if len(in.frames) == 0 {
		return nil
	}
	return in.frames[len(in.frames)-1]
}

// parentFrame returns the frame below the current one (nil = top level,
// where variables are globals).
func (in *Interp) parentFrame() *frame {
	if len(in.frames) < 2 {
		return nil
	}
	return in.frames[len(in.frames)-2]
}

// resolve follows upvar aliases and global links to the map and key that
// actually store a name in frame f (nil map means the interpreter globals).
func (in *Interp) resolve(f *frame, name string) (map[string]string, string) {
	for depth := 0; f != nil && depth < maxDepth; depth++ {
		if ref, ok := f.aliases[name]; ok {
			f, name = ref.frame, ref.name
			continue
		}
		if f.global[name] {
			return in.globals, name
		}
		return f.vars, name
	}
	return in.globals, name
}

func (in *Interp) getVar(name string) (string, error) {
	vars, key := in.resolve(in.currentFrame(), name)
	if v, ok := vars[key]; ok {
		return v, nil
	}
	return "", fmt.Errorf("tacl: no such variable %q", name)
}

func (in *Interp) setVar(name, value string) {
	vars, key := in.resolve(in.currentFrame(), name)
	vars[key] = value
}

func (in *Interp) unsetVar(name string) error {
	vars, key := in.resolve(in.currentFrame(), name)
	if _, ok := vars[key]; !ok {
		return fmt.Errorf("tacl: no such variable %q", name)
	}
	delete(vars, key)
	return nil
}

func (in *Interp) varExists(name string) bool {
	vars, key := in.resolve(in.currentFrame(), name)
	_, ok := vars[key]
	return ok
}

func (in *Interp) callProc(p *procDef, args []string, line int) (string, error) {
	in.depth++
	if in.depth > maxDepth {
		in.depth--
		return "", fmt.Errorf("%w calling %q", ErrDepth, p.name)
	}
	defer func() { in.depth-- }()

	f := &frame{vars: make(map[string]string), global: make(map[string]bool)}
	i := 0
	for pi, param := range p.params {
		switch {
		case param.variadic:
			f.vars[param.name] = FormatList(args[i:])
			i = len(args)
		case i < len(args):
			f.vars[param.name] = args[i]
			i++
		case param.hasDef:
			f.vars[param.name] = param.def
		default:
			return "", fmt.Errorf("tacl: line %d: proc %q missing argument %q", line, p.name, p.params[pi].name)
		}
	}
	if i < len(args) {
		return "", fmt.Errorf("tacl: line %d: proc %q given %d args, takes %d", line, p.name, len(args), len(p.params))
	}

	in.frames = append(in.frames, f)
	defer func() { in.frames = in.frames[:len(in.frames)-1] }()

	res, err := in.EvalScript(p.body)
	var rs *returnSignal
	switch {
	case err == nil:
		return res, nil
	case errors.As(err, &rs):
		return rs.value, nil
	case err == errBreak || err == errContinue:
		return "", fmt.Errorf("tacl: %v escaped proc %q", err, p.name)
	default:
		return "", err
	}
}
