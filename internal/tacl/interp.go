package tacl

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Interp executes TacL scripts. Hot activation paths obtain interpreters
// from the pool (Get/Put) bound to a shared command Table, so a fresh
// activation costs no map allocations and no command registrations; New
// remains for one-off interpreters.
//
// An Interp is not safe for concurrent use; the kernel gives each agent
// activation its own.
type Interp struct {
	globals  map[string]string
	gscope   varScope // slot storage for top-level variables (see varScope)
	frames   []*frame
	procs    map[string]*procDef // lazily allocated by proc
	commands map[string]CmdFunc  // per-interp overrides; lazily allocated by Register
	table    *Table              // shared read-only command prototype

	// MaxSteps bounds the number of command evaluations (0 = unlimited).
	// Exceeding it aborts the script with ErrBudget: TACOMA sites are
	// autonomous and must be able to bound what a visiting agent consumes.
	MaxSteps int
	// Steps counts command evaluations so far.
	Steps int
	// StepHook, if set, is invoked on every command evaluation; it can
	// return an error to abort the agent (used to charge electronic cash
	// for cycles).
	StepHook func() error
	// YieldEvery, when positive, invokes Yield every YieldEvery command
	// evaluations. The kernel sets it so a long-running script running on a
	// bounded scheduler worker pool yields its worker between budget
	// slices; a yield is a preemption point, not an abort.
	YieldEvery int
	// Yield is the preemption callback paired with YieldEvery.
	Yield func()
	// Out receives the output of puts.
	Out io.Writer
	// Host carries an opaque per-activation binding context for host
	// commands registered on a shared Table: a command shared between all
	// activations reads its briefcase and site through in.Host instead of
	// closing over them, which is what lets one Table serve every
	// activation at a site.
	Host any

	depth int
	// direct selects the reference string-walking expr evaluator instead
	// of the compiled AST path; set via SetEngine(EngineReference).
	direct bool
	// noVM disables bytecode execution, forcing the compiled-AST
	// tree-walker; set via SetEngine(EngineAST) (EngineReference implies
	// it too).
	noVM bool
	// curLine is the source line of the command currently dispatching; the
	// loop builtins read it so their per-iteration step charge reports the
	// loop's own line.
	curLine int
	// freeFrames recycles proc call frames (and their maps) within this
	// interpreter's lifetime.
	freeFrames []*frame
	// freeVMFrames recycles VM loop-state frames, as freeFrames does for
	// proc frames.
	freeVMFrames []*vmFrame
	// arena bump-allocates small result strings for hot host commands.
	arena byteArena
	// fmtBuf is format's scratch buffer.
	fmtBuf []byte
	// argScratch is the argument arena: evalCommand appends each command's
	// evaluated words here and hands the command its sub-slice, restoring
	// the length afterwards. Nested evaluation stacks cleanly because a
	// nested command's region starts at or beyond its parent's end.
	argScratch []string
	// canonState/canonMask cache the guard ops' shadow check: canonMask has
	// a bit per inlinable canonical builtin (kind*) that is still canonical
	// for this interpreter — the table snapshot's canon bits minus any name
	// shadowed by a script proc or per-interp Register override. Recomputed
	// lazily whenever canonState no longer matches the table's published
	// snapshot; proc definition and Register invalidate it by nil-ing
	// canonState.
	canonState *tableState
	canonMask  uint16
	// nextYield is the smallest step count at which the yield cadence
	// could fire, derived from Steps/YieldEvery the last time the VM took
	// chargeStep's slow path. Steps below it provably have
	// Steps%YieldEvery != 0, so the hot step op skips the division. Zero
	// forces the slow path (recomputation); Put resets it.
	nextYield int
}

// CmdFunc implements a command. args excludes the command name.
type CmdFunc func(in *Interp, args []string) (string, error)

type procDef struct {
	name   string
	params []procParam
	body   *Script
}

type procParam struct {
	name     string
	def      string
	hasDef   bool
	variadic bool
}

type frame struct {
	vars    map[string]string
	global  map[string]bool   // names linked to globals via the global command
	aliases map[string]varRef // names linked by upvar
	varScope
}

// slotLive marks a slot as holding a variable; a zero meta byte is "unset".
const slotLive uint8 = 1

// varScope is the slot-resolved half of a variable scope (one per proc
// frame, plus Interp.gscope for top level). When a scope is bound to a
// compiled program, every variable name the compiler saw statically owns a
// dense slot index in that program's layout (program.varIdx), and the
// name's storage IS the slot — an array cell, no hashing. Names outside the
// layout (computed names, overflow past maxVarSlots) live in the scope's
// ordinary map. The placement rule is a function of (terminal scope layout,
// name) only, so the VM's slot ops, the tree-walking builtins, and the host
// Get/Set API all agree on where a variable lives; the three-way
// equivalence suite pins that agreement.
type varScope struct {
	prog  *program // layout owner; nil = unbound, everything in the map
	slots []string
	meta  []uint8
	// diverted is set once the scope gains a `global` link or an `upvar`
	// alias: slot fast paths (which skip alias resolution) stand down for
	// the rest of the frame's lifetime and all access goes through the full
	// resolver. Links are permanent per frame, so a sticky bool is exact.
	diverted bool
}

// bind sizes the scope's slot arrays for program p's variable layout. The
// caller guarantees the arrays are already scrubbed (clearScope).
func (sc *varScope) bind(p *program) {
	n := len(p.varNames)
	if cap(sc.slots) >= n {
		sc.slots = sc.slots[:n]
		sc.meta = sc.meta[:n]
	} else {
		sc.slots = make([]string, n)
		sc.meta = make([]uint8, n)
	}
	sc.prog = p
}

// clearScope unbinds the scope and drops every slot's string reference so a
// pooled frame or interpreter never pins a prior activation's values.
func (sc *varScope) clearScope() {
	for i := range sc.slots {
		sc.slots[i] = ""
	}
	for i := range sc.meta {
		sc.meta[i] = 0
	}
	sc.slots = sc.slots[:0]
	sc.meta = sc.meta[:0]
	sc.prog = nil
	sc.diverted = false
}

// slotOf returns name's slot index in the scope's bound layout, or -1.
func (sc *varScope) slotOf(name string) int32 {
	if sc.prog != nil {
		if i, ok := sc.prog.varIdx[name]; ok {
			return i
		}
	}
	return -1
}

// localSet writes a variable directly into frame f's own storage (slot when
// the bound layout knows the name, map otherwise) without alias resolution.
// Only for fresh frames — callProc's parameter binding, where no links can
// exist yet.
func (f *frame) localSet(name, value string) {
	if i := f.slotOf(name); i >= 0 {
		f.slots[i] = value
		f.meta[i] = slotLive
		return
	}
	f.vars[name] = value
}

// varRef names a variable in another scope: frame == nil means globals.
type varRef struct {
	frame *frame
	name  string
}

func ensureAliases(f *frame) map[string]varRef {
	if f.aliases == nil {
		f.aliases = make(map[string]varRef)
	}
	return f.aliases
}

// Interpreter-level errors.
var (
	// ErrBudget reports that the agent exceeded its step budget.
	ErrBudget = errors.New("tacl: step budget exhausted")
	// ErrDepth reports runaway recursion.
	ErrDepth = errors.New("tacl: recursion too deep")
)

// maxDepth bounds proc recursion and eval nesting.
const maxDepth = 200

// Control-flow signals travel as errors.
var (
	errBreak    = errors.New("tacl: break outside loop")
	errContinue = errors.New("tacl: continue outside loop")
)

type returnSignal struct{ value string }

func (r *returnSignal) Error() string { return "tacl: return outside proc" }

// jumpSignal aborts script execution after a successful migration; the
// kernel's jump command raises it so no code after jump runs at the origin.
type jumpSignal struct{ dest string }

func (j *jumpSignal) Error() string { return "tacl: agent jumped to " + j.dest }

// IsJump reports whether err is the post-migration stop signal and, if so,
// the destination site.
func IsJump(err error) (string, bool) {
	var js *jumpSignal
	if errors.As(err, &js) {
		return js.dest, true
	}
	return "", false
}

// JumpSignal constructs the stop signal for a migration to dest. Only the
// kernel's migration commands should raise it.
func JumpSignal(dest string) error { return &jumpSignal{dest: dest} }

// parkSignal aborts script execution after a successful park; the kernel's
// park command raises it so no code after park runs in this activation —
// the script restarts from the top when the agent is woken.
type parkSignal struct{ name string }

func (p *parkSignal) Error() string { return "tacl: agent parked as " + p.name }

// IsPark reports whether err is the post-park stop signal and, if so, the
// park name.
func IsPark(err error) (string, bool) {
	var ps *parkSignal
	if errors.As(err, &ps) {
		return ps.name, true
	}
	return "", false
}

// ParkSignal constructs the stop signal for a park under name. Only the
// kernel's park command should raise it.
func ParkSignal(name string) error { return &parkSignal{name: name} }

// Table is a shared, read-mostly command table: the prototype for many
// interpreters. Lookups are lock-free (an atomically published map
// snapshot); Register copies the map, so it belongs in setup code, not on
// hot paths. The sorted name list is cached on the snapshot and invalidated
// by Register, so Commands/info commands never re-sort an unchanged table.
type Table struct {
	mu    sync.Mutex
	state atomic.Pointer[tableState]
}

type tableState struct {
	cmds map[string]CmdFunc
	// dense is the VM's inline cache: the same commands indexed by interned
	// symbol id, so static dispatch is an atomic load plus an array index.
	// Rebuilt (with cmds) on every Register, which is what invalidates all
	// compiled call sites at once.
	dense []CmdFunc
	canon uint16   // bitmask of canonical inlinable builtins (kind* bits)
	names []string // sorted; nil until computed by Names
}

// NewTable returns a table preloaded with the full builtin command set.
func NewTable() *Table {
	base := builtinTable().state.Load().cmds
	cmds := make(map[string]CmdFunc, len(base)+32)
	for k, v := range base {
		cmds[k] = v
	}
	t := &Table{}
	t.state.Store(buildTableState(cmds))
	return t
}

// Register installs (or replaces) a command on the table. Not for hot
// paths: it copies the table so concurrent lookups stay lock-free.
func (t *Table) Register(name string, fn CmdFunc) {
	t.RegisterAll(map[string]CmdFunc{name: fn})
}

// RegisterAll installs a batch of commands with a single copy of the table.
func (t *Table) RegisterAll(cmds map[string]CmdFunc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.state.Load().cmds
	next := make(map[string]CmdFunc, len(old)+len(cmds))
	for k, v := range old {
		next[k] = v
	}
	for k, v := range cmds {
		next[k] = v
	}
	t.state.Store(buildTableState(next))
}

func (t *Table) lookup(name string) (CmdFunc, bool) {
	fn, ok := t.state.Load().cmds[name]
	return fn, ok
}

// Names returns the table's command names in sorted order. The list is
// computed once and cached until the next Register; callers must not
// mutate it.
func (t *Table) Names() []string {
	if st := t.state.Load(); st.names != nil {
		return st.names
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if st.names != nil {
		return st.names
	}
	names := make([]string, 0, len(st.cmds))
	for n := range st.cmds {
		names = append(names, n)
	}
	sort.Strings(names)
	t.state.Store(&tableState{cmds: st.cmds, dense: st.dense, canon: st.canon, names: names})
	return names
}

// builtinTable is the shared prototype holding the builtin command set,
// built once on first use (after all init-time builtin registration).
var (
	builtinOnce  sync.Once
	builtinProto *Table
)

func builtinTable() *Table {
	builtinOnce.Do(func() {
		cmds := make(map[string]CmdFunc, 64)
		registerBuiltinsInto(cmds)
		t := &Table{}
		t.state.Store(buildTableState(cmds))
		builtinProto = t
	})
	return builtinProto
}

// New creates an interpreter with the full builtin command set.
func New() *Interp {
	return &Interp{
		globals: make(map[string]string),
		table:   builtinTable(),
		Out:     io.Discard,
	}
}

// interpPool recycles interpreters across activations; see Get and Put.
var interpPool = sync.Pool{New: func() any {
	return &Interp{globals: make(map[string]string, 8), Out: io.Discard}
}}

// Get returns a pooled interpreter bound to the command table t. The
// interpreter arrives reset (no globals, procs, overrides, or steps); the
// caller sets MaxSteps, hooks, and Host, runs scripts, and hands the
// interpreter back with Put.
func Get(t *Table) *Interp {
	in := interpPool.Get().(*Interp)
	in.table = t
	return in
}

// Pool-hygiene caps: a pooled interpreter (or frame freelist entry) keeps
// its allocated maps and arrays for reuse, but one pathological activation
// — a giant script with hundreds of variables, a deep recursion, a huge
// argument list — must not size the pool's retained memory forever. State
// grown past these caps is dropped at Put/putFrame instead of recycled.
const (
	maxPooledVars    = 64   // map entries retained in globals / frame vars
	maxPooledSlots   = 64   // retained capacity of a scope's slot array
	maxPooledFrames  = 16   // retained proc-frame / VM-frame freelist length
	maxPooledScratch = 1024 // retained argument-arena capacity (strings)
)

// trimMapStr replaces a map that grew past the pool cap (Go maps never
// shrink their buckets) and clears a small one in place.
func trimMapStr(m map[string]string) map[string]string {
	if len(m) > maxPooledVars {
		return make(map[string]string, 8)
	}
	clear(m)
	return m
}

// Put resets in and returns it to the pool. The caller must not use in
// afterwards. Recycled interpreters keep their allocated maps and frame
// freelist, which is what makes repeat activations allocation-free.
func Put(in *Interp) {
	in.globals = trimMapStr(in.globals)
	in.gscope.clearScope()
	if cap(in.gscope.slots) > maxPooledSlots {
		in.gscope.slots = nil
		in.gscope.meta = nil
	}
	if in.procs != nil {
		clear(in.procs)
	}
	if in.commands != nil {
		clear(in.commands)
	}
	in.frames = in.frames[:0]
	if len(in.freeFrames) > maxPooledFrames {
		for i := maxPooledFrames; i < len(in.freeFrames); i++ {
			in.freeFrames[i] = nil
		}
		in.freeFrames = in.freeFrames[:maxPooledFrames]
	}
	if len(in.freeVMFrames) > maxPooledFrames {
		for i := maxPooledFrames; i < len(in.freeVMFrames); i++ {
			in.freeVMFrames[i] = nil
		}
		in.freeVMFrames = in.freeVMFrames[:maxPooledFrames]
	}
	// Clear the whole argument arena (not just its length) so string
	// headers from this activation don't pin large arguments for the
	// pool's lifetime.
	if cap(in.argScratch) > maxPooledScratch {
		in.argScratch = nil
	}
	scratch := in.argScratch[:cap(in.argScratch)]
	clear(scratch)
	in.argScratch = scratch[:0]
	in.table = nil
	in.canonState = nil
	in.canonMask = 0
	in.nextYield = 0
	in.MaxSteps = 0
	in.Steps = 0
	in.StepHook = nil
	in.YieldEvery = 0
	in.Yield = nil
	in.Out = io.Discard
	in.Host = nil
	in.depth = 0
	in.direct = false
	in.noVM = false
	in.curLine = 0
	// Pooled VM frames were already scrubbed of element references by
	// putVMFrame; the freelist itself (and the arena page, which outlives
	// activations by design) stays for reuse.
	interpPool.Put(in)
}

// Engine selects which execution engine runs scripts. Selection order at
// runtime: EngineVM lowers scripts to bytecode (vm.go) and falls back to
// EngineAST automatically when a script fails to compile; EngineAST
// tree-walks the parsed script with compiled expression ASTs (exprc.go);
// EngineReference additionally re-walks expression source strings on every
// evaluation (expr.go) — the slowest, most literal reading of the language,
// kept as the differential-testing oracle.
type Engine uint8

const (
	// EngineVM is the default: bytecode compilation + register VM.
	EngineVM Engine = iota
	// EngineAST forces the tree-walking evaluator with cached expression
	// ASTs (the PR 3 engine, now the VM's fallback tier).
	EngineAST
	// EngineReference forces the direct string-walking evaluator.
	EngineReference
)

// SetEngine pins the interpreter to an execution engine. The zero state is
// EngineVM; tests pin EngineAST/EngineReference to differentially check the
// VM.
func (in *Interp) SetEngine(e Engine) {
	in.direct = e == EngineReference
	in.noVM = e != EngineVM
}

// Register installs (or replaces) a host command for this interpreter only,
// shadowing any same-named command on the shared table.
func (in *Interp) Register(name string, fn CmdFunc) {
	if in.commands == nil {
		in.commands = make(map[string]CmdFunc, 8)
	}
	in.commands[name] = fn
	in.canonState = nil // the override may shadow an inlinable builtin
}

// Commands returns the names of all registered commands, sorted. With no
// per-interpreter registrations this is a copy of the shared table's cached
// sorted list — no re-sort per call.
func (in *Interp) Commands() []string {
	base := in.table.Names()
	if len(in.commands) == 0 {
		return append([]string(nil), base...)
	}
	seen := make(map[string]bool, len(base)+len(in.commands))
	out := make([]string, 0, len(base)+len(in.commands))
	for _, n := range base {
		seen[n] = true
		out = append(out, n)
	}
	for n := range in.commands {
		if !seen[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// SetGlobal sets a global variable, honoring the bound slot layout so host
// writes and script writes share one storage location per name.
func (in *Interp) SetGlobal(name, value string) {
	if i := in.gscope.slotOf(name); i >= 0 {
		in.gscope.slots[i] = value
		in.gscope.meta[i] = slotLive
		return
	}
	in.globals[name] = value
}

// Global reads a global variable (slot or map, per the bound layout).
func (in *Interp) Global(name string) (string, bool) {
	if i := in.gscope.slotOf(name); i >= 0 {
		if in.gscope.meta[i]&slotLive != 0 {
			return in.gscope.slots[i], true
		}
		return "", false
	}
	v, ok := in.globals[name]
	return v, ok
}

// Eval parses and runs a script, returning the result of its last command.
func (in *Interp) Eval(src string) (string, error) {
	s, err := Parse(src)
	if err != nil {
		return "", err
	}
	return in.EvalScript(s)
}

// EvalCached is Eval through the shared parse cache: the same source text
// parses once process-wide. Control-flow builtins run their bodies through
// it so a loop body is parsed exactly once, not once per iteration.
func (in *Interp) EvalCached(src string) (string, error) {
	s, err := ParseCached(src)
	if err != nil {
		return "", err
	}
	return in.EvalScript(s)
}

// EvalScript runs a previously parsed script. Unless the interpreter is
// pinned to a fallback engine, the script is lowered to bytecode on first
// use and executed by the VM; compile failure degrades permanently (for
// that script) to the tree-walker below, which is observationally
// identical.
func (in *Interp) EvalScript(s *Script) (string, error) {
	if !in.noVM && !in.direct {
		if p := s.compiled(); p != nil {
			return in.runVM(p)
		}
	}
	var result string
	for i := range s.cmds {
		r, err := in.evalCommand(&s.cmds[i])
		if err != nil {
			return "", err
		}
		result = r
	}
	return result, nil
}

// chargeStep accounts one command evaluation against the step budget and
// runs the yield/metering hooks. Shared verbatim by the tree-walker and the
// VM so step counts, budget error text, and preemption points are
// identical.
func (in *Interp) chargeStep(line int) error {
	in.Steps++
	if in.MaxSteps > 0 && in.Steps > in.MaxSteps {
		return fmt.Errorf("%w after %d steps (line %d)", ErrBudget, in.Steps-1, line)
	}
	if in.YieldEvery > 0 && in.Yield != nil && in.Steps%in.YieldEvery == 0 {
		in.Yield()
	}
	if in.StepHook != nil {
		if err := in.StepHook(); err != nil {
			return fmt.Errorf("tacl: line %d: %w", line, err)
		}
	}
	return nil
}

func (in *Interp) evalCommand(c *command) (string, error) {
	if err := in.chargeStep(c.line); err != nil {
		return "", err
	}
	return in.evalCommandTail(c)
}

// evalCommandTail evaluates a command's words and dispatches, without
// charging a step: the VM's guard ops call it for shadowed constructs whose
// step was already charged by opStep.
func (in *Interp) evalCommandTail(c *command) (string, error) {
	base := len(in.argScratch)
	defer func() { in.argScratch = in.argScratch[:base] }()
	for i := range c.words {
		v, err := in.evalWord(&c.words[i])
		if err != nil {
			return "", err
		}
		in.argScratch = append(in.argScratch, v)
	}
	args := in.argScratch[base:]
	if len(args) == 0 {
		return "", nil
	}
	return in.dispatchDyn(args, c.line)
}

// decorate adds command/line context to an error once, leaving sentinel
// wrapping intact for errors.Is.
func decorate(err error, name string, line int) error {
	var pe *ParseError
	if errors.As(err, &pe) {
		return err
	}
	var ue *userError
	if errors.As(err, &ue) {
		return err
	}
	if strings.HasPrefix(err.Error(), "tacl: line ") {
		return err
	}
	return fmt.Errorf("tacl: line %d: %s: %w", line, name, err)
}

func isControl(err error) bool {
	if err == errBreak || err == errContinue {
		return true
	}
	var rs *returnSignal
	var js *jumpSignal
	return errors.As(err, &rs) || errors.As(err, &js)
}

func (in *Interp) evalWord(w *word) (string, error) {
	// Single-segment words — bare literals, a lone $var, a lone [cmd] —
	// are the common case and need no string building.
	if len(w.segs) == 1 {
		seg := &w.segs[0]
		switch seg.kind {
		case segLit:
			return seg.text, nil
		case segVar:
			return in.getVar(seg.text)
		case segCmd:
			in.depth++
			if in.depth > maxDepth {
				in.depth--
				return "", ErrDepth
			}
			v, err := in.EvalScript(seg.script)
			in.depth--
			return v, err
		}
	}
	var sb strings.Builder
	for i := range w.segs {
		seg := &w.segs[i]
		switch seg.kind {
		case segLit:
			sb.WriteString(seg.text)
		case segVar:
			v, err := in.getVar(seg.text)
			if err != nil {
				return "", err
			}
			sb.WriteString(v)
		case segCmd:
			in.depth++
			if in.depth > maxDepth {
				in.depth--
				return "", ErrDepth
			}
			v, err := in.EvalScript(seg.script)
			in.depth--
			if err != nil {
				return "", err
			}
			sb.WriteString(v)
		}
	}
	return sb.String(), nil
}

// currentFrame returns the active proc frame, or nil at top level (where
// variables are globals).
func (in *Interp) currentFrame() *frame {
	if len(in.frames) == 0 {
		return nil
	}
	return in.frames[len(in.frames)-1]
}

// parentFrame returns the frame below the current one (nil = top level,
// where variables are globals).
func (in *Interp) parentFrame() *frame {
	if len(in.frames) < 2 {
		return nil
	}
	return in.frames[len(in.frames)-2]
}

// curScope returns the variable scope commands in the current frame write
// to: the top frame's, or the interpreter's global scope at top level.
func (in *Interp) curScope() *varScope {
	if n := len(in.frames); n > 0 {
		return &in.frames[n-1].varScope
	}
	return &in.gscope
}

// resolveLoc follows upvar aliases and global links to the terminal scope
// and map that store a name reached from frame f. Whether the name then
// lives in a slot or the map is the terminal scope's layout's decision
// (slotOf), applied identically by every accessor below.
func (in *Interp) resolveLoc(f *frame, name string) (*varScope, map[string]string, string) {
	for depth := 0; f != nil && depth < maxDepth; depth++ {
		if ref, ok := f.aliases[name]; ok {
			f, name = ref.frame, ref.name
			continue
		}
		if f.global[name] {
			break
		}
		return &f.varScope, f.vars, name
	}
	return &in.gscope, in.globals, name
}

func (in *Interp) getVar(name string) (string, error) {
	sc, vars, key := in.resolveLoc(in.currentFrame(), name)
	if i := sc.slotOf(key); i >= 0 {
		if sc.meta[i]&slotLive != 0 {
			return sc.slots[i], nil
		}
		return "", fmt.Errorf("tacl: no such variable %q", name)
	}
	if v, ok := vars[key]; ok {
		return v, nil
	}
	return "", fmt.Errorf("tacl: no such variable %q", name)
}

func (in *Interp) setVar(name, value string) {
	sc, vars, key := in.resolveLoc(in.currentFrame(), name)
	if i := sc.slotOf(key); i >= 0 {
		sc.slots[i] = value
		sc.meta[i] = slotLive
		return
	}
	vars[key] = value
}

func (in *Interp) unsetVar(name string) error {
	sc, vars, key := in.resolveLoc(in.currentFrame(), name)
	if i := sc.slotOf(key); i >= 0 {
		if sc.meta[i]&slotLive == 0 {
			return fmt.Errorf("tacl: no such variable %q", name)
		}
		sc.slots[i] = ""
		sc.meta[i] = 0
		return nil
	}
	if _, ok := vars[key]; !ok {
		return fmt.Errorf("tacl: no such variable %q", name)
	}
	delete(vars, key)
	return nil
}

func (in *Interp) varExists(name string) bool {
	sc, vars, key := in.resolveLoc(in.currentFrame(), name)
	if i := sc.slotOf(key); i >= 0 {
		return sc.meta[i]&slotLive != 0
	}
	_, ok := vars[key]
	return ok
}

// bindGlobalScope binds the top-level scope to program p's variable layout
// and migrates any globals already set through the map (SetGlobal before
// the first eval — the kernel's host/from bindings) into their slots, so a
// slotted name is never stored in both places. Called by runVM on the first
// variable-bearing program of an activation; later top-level programs
// (catch/eval bodies, a second EvalScript) keep the established layout and
// reach slots through the name path.
func (in *Interp) bindGlobalScope(p *program) {
	sc := &in.gscope
	sc.bind(p)
	if len(in.globals) > 0 {
		for i, name := range p.varNames {
			if v, ok := in.globals[name]; ok {
				sc.slots[i] = v
				sc.meta[i] = slotLive
				delete(in.globals, name)
			}
		}
	}
}

// getFrame takes a frame from the freelist or allocates one. Frames are
// recycled LIFO with proc calls, so the maps a deep call tree allocates are
// paid for once per interpreter, not once per call.
func (in *Interp) getFrame() *frame {
	if n := len(in.freeFrames); n > 0 {
		f := in.freeFrames[n-1]
		in.freeFrames = in.freeFrames[:n-1]
		return f
	}
	return &frame{vars: make(map[string]string), global: make(map[string]bool)}
}

func (in *Interp) putFrame(f *frame) {
	f.vars = trimMapStr(f.vars)
	if len(f.global) > maxPooledVars {
		f.global = make(map[string]bool)
	} else {
		clear(f.global)
	}
	f.aliases = nil
	f.clearScope()
	if cap(f.slots) > maxPooledSlots {
		f.slots = nil
		f.meta = nil
	}
	in.freeFrames = append(in.freeFrames, f)
}

func (in *Interp) callProc(p *procDef, args []string, line int) (string, error) {
	in.depth++
	if in.depth > maxDepth {
		in.depth--
		return "", fmt.Errorf("%w calling %q", ErrDepth, p.name)
	}
	defer func() { in.depth-- }()

	f := in.getFrame()
	// Bind the frame to the body's compiled layout before parameter
	// placement, so parameters land in their slots. Engine pins and compile
	// failures leave the frame unbound and everything goes through the map,
	// exactly as before slots existed.
	if !in.noVM && !in.direct {
		if pb := p.body.compiled(); pb != nil && len(pb.varNames) > 0 {
			f.bind(pb)
		}
	}
	i := 0
	for pi, param := range p.params {
		switch {
		case param.variadic:
			f.localSet(param.name, FormatList(args[i:]))
			i = len(args)
		case i < len(args):
			f.localSet(param.name, args[i])
			i++
		case param.hasDef:
			f.localSet(param.name, param.def)
		default:
			in.putFrame(f)
			return "", fmt.Errorf("tacl: line %d: proc %q missing argument %q", line, p.name, p.params[pi].name)
		}
	}
	if i < len(args) {
		in.putFrame(f)
		return "", fmt.Errorf("tacl: line %d: proc %q given %d args, takes %d", line, p.name, len(args), len(p.params))
	}

	in.frames = append(in.frames, f)
	defer func() {
		in.frames = in.frames[:len(in.frames)-1]
		in.putFrame(f)
	}()

	res, err := in.EvalScript(p.body)
	var rs *returnSignal
	switch {
	case err == nil:
		return res, nil
	case errors.As(err, &rs):
		return rs.value, nil
	case err == errBreak || err == errContinue:
		return "", fmt.Errorf("tacl: %v escaped proc %q", err, p.name)
	default:
		return "", err
	}
}
