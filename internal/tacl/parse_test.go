package tacl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"unclosed brace":     `set x {abc`,
		"unclosed quote":     `set x "abc`,
		"unclosed bracket":   `set x [expr 1`,
		"chars after brace":  `set x {a}b`,
		"chars after quote":  `set x "a"b`,
		"trailing backslash": "set x \\",
		"unclosed var brace": `set x ${name`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded", name, src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("%s: error is not a ParseError: %v", name, err)
			}
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	src := "set a 1\nset b 2\nset c {unclosed"
	_, err := Parse(src)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("message lacks line: %q", pe.Error())
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	for _, src := range []string{"", "   \n\n  ", "# just a comment", "# c1\n# c2\n"} {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if len(s.cmds) != 0 {
			t.Fatalf("Parse(%q) produced %d commands", src, len(s.cmds))
		}
	}
}

func TestParseSourcePreserved(t *testing.T) {
	src := `set x 1`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != src {
		t.Fatalf("Source = %q", s.Source())
	}
}

func TestParseEmptyWordForms(t *testing.T) {
	in := New()
	got, err := in.Eval(`set x ""; string length $x`)
	if err != nil || got != "0" {
		t.Fatalf("empty quoted word: %q, %v", got, err)
	}
	got, err = in.Eval(`set x {}; string length $x`)
	if err != nil || got != "0" {
		t.Fatalf("empty braced word: %q, %v", got, err)
	}
}

func TestParseDollarLiterals(t *testing.T) {
	in := New()
	// A $ not followed by a name is literal.
	got, err := in.Eval(`set x "cost: 5$"`)
	if err != nil || got != "cost: 5$" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestParseEscapedDollar(t *testing.T) {
	in := New()
	got, err := in.Eval(`set x "\$notavar"`)
	if err != nil || got != "$notavar" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestParseNestedBrackets(t *testing.T) {
	in := New()
	got, err := in.Eval(`set x [expr {[expr {1 + 1}] * [expr {2 + 1}]}]`)
	if err != nil || got != "6" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestParseBracedPreservesNewlines(t *testing.T) {
	in := New()
	got, err := in.Eval("set body {line1\nline2}; string length $body")
	if err != nil || got != "11" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestListFormatParseRoundTrip(t *testing.T) {
	cases := [][]string{
		{"a", "b", "c"},
		{"with space", "plain"},
		{"", "empty-first"},
		{"tab\there"},
		{"{inner}"},
		{"mixed {brace", "x"},
		{"trailing\\"},
		{"$dollar", "[bracket]", "semi;colon"},
		{`"quoted"`},
		{},
	}
	for _, elems := range cases {
		s := FormatList(elems)
		back, err := ParseList(s)
		if err != nil {
			t.Errorf("ParseList(FormatList(%q)) error: %v", elems, err)
			continue
		}
		if len(back) != len(elems) {
			t.Errorf("round trip %q -> %q -> %q", elems, s, back)
			continue
		}
		for i := range elems {
			if back[i] != elems[i] {
				t.Errorf("elem %d: %q -> %q (list %q)", i, elems[i], back[i], s)
			}
		}
	}
}

func TestListRoundTripProperty(t *testing.T) {
	prop := func(elems []string) bool {
		// The list syntax cannot represent carriage returns portably in
		// bare words; normalize the test inputs the way agents would.
		for i := range elems {
			elems[i] = strings.Map(func(r rune) rune {
				if r == '\r' {
					return ' '
				}
				return r
			}, elems[i])
		}
		back, err := ParseList(FormatList(elems))
		if err != nil || len(back) != len(elems) {
			return false
		}
		for i := range elems {
			if back[i] != elems[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseListErrors(t *testing.T) {
	for _, src := range []string{"{unclosed", `"unclosed`, `{a}b`, `"a"b`} {
		if _, err := ParseList(src); err == nil {
			t.Errorf("ParseList(%q) succeeded", src)
		}
	}
}

func TestTruthy(t *testing.T) {
	trues := []string{"1", "true", "TRUE", "yes", "on", "2", "-1", "0.5"}
	falses := []string{"0", "false", "no", "off", "", "0.0"}
	for _, s := range trues {
		if b, err := Truthy(s); err != nil || !b {
			t.Errorf("Truthy(%q) = %v, %v; want true", s, b, err)
		}
	}
	for _, s := range falses {
		if b, err := Truthy(s); err != nil || b {
			t.Errorf("Truthy(%q) = %v, %v; want false", s, b, err)
		}
	}
	if _, err := Truthy("banana"); err == nil {
		t.Error("Truthy(banana) succeeded")
	}
}
