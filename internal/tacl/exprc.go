package tacl

import (
	"errors"
	"fmt"
	"strings"
)

// Compiled expressions. The reference evaluator in expr.go re-scans the
// expression source on every evaluation — for a while-loop condition that
// means a full parse per iteration. compileExpr runs the same grammar once
// and produces an AST whose eval walks values only; the compiled form is
// immutable and shared through the expression cache, so every activation of
// the same script evaluates pre-compiled conditions.
//
// Tiering note: this compiled-AST engine (EngineAST) is now the middle tier
// of the execution stack. The bytecode VM in bytecode.go/vm.go is the
// default; it embeds these same exprProg trees for its opCondJump/opExpr
// operands, so the compiled-expression layer is shared by both upper tiers.
// EngineAST remains selectable (SetEngine) as the fallback when a script
// fails to compile to bytecode and as the equivalence oracle's middle rung;
// new evaluation features land in the VM first and here only to keep the
// three-way equivalence suite honest.
//
// Semantics are kept identical to the reference evaluator — including its
// quirks: ternary evaluates both branches, && and || evaluate both sides,
// operands evaluate left-to-right before operator type checks, and nested
// [command] substitution runs through the ordinary script interpreter (so
// step budgets and step hooks bill exactly the same commands in the same
// order). The equivalence suite and FuzzCompileEval enforce this.

type exprProg struct {
	root exprNode
}

type exprNode interface {
	eval(in *Interp) (exprVal, error)
}

// compileExpr compiles an expression source to its AST. Errors are the
// reference parser's errors, unwrapped; evalExpr adds the `expr %q:` frame.
func compileExpr(src string) (*exprProg, error) {
	p := &exprParser{src: src}
	n, err := p.compileTernary()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("trailing garbage at %d", p.pos)
	}
	return &exprProg{root: n}, nil
}

// --- AST nodes ---

type constNode struct{ v exprVal }

func (n *constNode) eval(*Interp) (exprVal, error) { return n.v, nil }

type varNode struct{ name string }

func (n *varNode) eval(in *Interp) (exprVal, error) {
	v, err := in.getVar(n.name)
	if err != nil {
		return exprVal{}, err
	}
	return strVal(v), nil
}

// slotVarNode is a varNode specialized by the bytecode compiler against one
// program's slot layout: when evaluation happens in a scope bound to that
// exact program (and not diverted by global/upvar links), the read is a
// direct slot index; otherwise it falls back to the full resolver.
type slotVarNode struct {
	name string
	prog *program
	slot int32
}

func (n *slotVarNode) eval(in *Interp) (exprVal, error) {
	if sc := in.curScope(); sc.prog == n.prog && !sc.diverted {
		if sc.meta[n.slot]&slotLive != 0 {
			return strVal(sc.slots[n.slot]), nil
		}
		return exprVal{}, fmt.Errorf("tacl: no such variable %q", n.name)
	}
	v, err := in.getVar(n.name)
	if err != nil {
		return exprVal{}, err
	}
	return strVal(v), nil
}

// cmdNode is a [command] substitution; the script inside the brackets is
// parsed at compile time and executed per evaluation.
type cmdNode struct{ body *Script }

func (n *cmdNode) eval(in *Interp) (exprVal, error) {
	res, err := in.EvalScript(n.body)
	if err != nil {
		return exprVal{}, err
	}
	return strVal(res), nil
}

// slotCmdNode is a cmdNode specialized by the bytecode compiler: the body
// is recompiled against the enclosing program's variable layout (see
// compileProgramShared), so the nested activation's variable ops keep the
// slot fast path. Behaviorally identical to cmdNode — EvalScript on the
// same body would run the body's independently compiled program instead.
type slotCmdNode struct {
	body *Script
	prog *program
}

func (n *slotCmdNode) eval(in *Interp) (exprVal, error) {
	var res string
	var err error
	if !in.noVM && !in.direct {
		res, err = in.runVM(n.prog)
	} else {
		res, err = in.EvalScript(n.body)
	}
	if err != nil {
		return exprVal{}, err
	}
	return strVal(res), nil
}

type notNode struct{ x exprNode }

func (n *notNode) eval(in *Interp) (exprVal, error) {
	v, err := n.x.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	b, err := v.truthy()
	if err != nil {
		return exprVal{}, err
	}
	return boolVal(!b), nil
}

type negNode struct{ x exprNode }

func (n *negNode) eval(in *Interp) (exprVal, error) {
	v, err := n.x.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	if err := v.needNum(); err != nil {
		return exprVal{}, err
	}
	if v.isInt {
		return numVal(-v.i), nil
	}
	return fltVal(-v.f), nil
}

// andOrNode mirrors the reference evaluator exactly: the left operand's
// truthiness is checked before the right operand is evaluated, and the
// right operand is always evaluated (no short-circuit).
type andOrNode struct {
	or   bool
	l, r exprNode
}

func (n *andOrNode) eval(in *Interp) (exprVal, error) {
	l, err := n.l.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	lb, err := l.truthy()
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	rb, err := r.truthy()
	if err != nil {
		return exprVal{}, err
	}
	if n.or {
		return boolVal(lb || rb), nil
	}
	return boolVal(lb && rb), nil
}

type eqNode struct {
	op   string // "eq", "ne", "==", "!="
	l, r exprNode
}

func (n *eqNode) eval(in *Interp) (exprVal, error) {
	l, err := n.l.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	return applyEquality(n.op, l, r), nil
}

type relNode struct {
	op   string // "<", "<=", ">", ">="
	l, r exprNode
}

func (n *relNode) eval(in *Interp) (exprVal, error) {
	l, err := n.l.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	return applyRelational(n.op, l, r), nil
}

type addNode struct {
	op   byte // '+' or '-'
	l, r exprNode
}

func (n *addNode) eval(in *Interp) (exprVal, error) {
	l, err := n.l.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	return applyAdditive(n.op, l, r)
}

type mulNode struct {
	op   byte // '*', '/', '%'
	l, r exprNode
}

func (n *mulNode) eval(in *Interp) (exprVal, error) {
	l, err := n.l.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	return applyMultiplicative(n.op, l, r)
}

// ternaryNode evaluates the condition's truthiness first, then — like the
// reference evaluator — evaluates BOTH branches before selecting one.
type ternaryNode struct {
	cond, then, els exprNode
}

func (n *ternaryNode) eval(in *Interp) (exprVal, error) {
	cond, err := n.cond.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	ok, err := cond.truthy()
	if err != nil {
		return exprVal{}, err
	}
	thenV, err := n.then.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	elseV, err := n.els.eval(in)
	if err != nil {
		return exprVal{}, err
	}
	if ok {
		return thenV, nil
	}
	return elseV, nil
}

type callNode struct {
	name string
	args []exprNode
}

func (n *callNode) eval(in *Interp) (exprVal, error) {
	args := make([]exprVal, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(in)
		if err != nil {
			return exprVal{}, err
		}
		args[i] = v
	}
	return applyFunc(n.name, args)
}

// --- shared operator application (used by both evaluators) ---

func applyEquality(op string, left, right exprVal) exprVal {
	switch op {
	case "eq":
		return boolVal(left.s == right.s)
	case "ne":
		return boolVal(left.s != right.s)
	case "==":
		if left.isFlt && right.isFlt {
			return boolVal(left.f == right.f)
		}
		return boolVal(left.s == right.s)
	default: // "!="
		if left.isFlt && right.isFlt {
			return boolVal(left.f != right.f)
		}
		return boolVal(left.s != right.s)
	}
}

func applyRelational(op string, left, right exprVal) exprVal {
	var res bool
	if left.isFlt && right.isFlt {
		switch op {
		case "<":
			res = left.f < right.f
		case "<=":
			res = left.f <= right.f
		case ">":
			res = left.f > right.f
		case ">=":
			res = left.f >= right.f
		}
	} else {
		c := strings.Compare(left.s, right.s)
		switch op {
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
	}
	return boolVal(res)
}

func applyAdditive(op byte, left, right exprVal) (exprVal, error) {
	if err := left.needNum(); err != nil {
		return exprVal{}, err
	}
	if err := right.needNum(); err != nil {
		return exprVal{}, err
	}
	if left.isInt && right.isInt {
		if op == '+' {
			return numVal(left.i + right.i), nil
		}
		return numVal(left.i - right.i), nil
	}
	if op == '+' {
		return fltVal(left.f + right.f), nil
	}
	return fltVal(left.f - right.f), nil
}

func applyMultiplicative(op byte, left, right exprVal) (exprVal, error) {
	if err := left.needNum(); err != nil {
		return exprVal{}, err
	}
	if err := right.needNum(); err != nil {
		return exprVal{}, err
	}
	switch op {
	case '*':
		if left.isInt && right.isInt {
			return numVal(left.i * right.i), nil
		}
		return fltVal(left.f * right.f), nil
	case '/':
		if left.isInt && right.isInt {
			if right.i == 0 {
				return exprVal{}, errors.New("division by zero")
			}
			return numVal(floorDiv(left.i, right.i)), nil
		}
		if right.f == 0 {
			return exprVal{}, errors.New("division by zero")
		}
		return fltVal(left.f / right.f), nil
	default: // '%'
		if !left.isInt || !right.isInt {
			return exprVal{}, errors.New("%% requires integers")
		}
		if right.i == 0 {
			return exprVal{}, errors.New("division by zero")
		}
		return numVal(floorMod(left.i, right.i)), nil
	}
}

// --- compile parser (same grammar and scanning as the reference parser) ---

func (p *exprParser) compileTernary() (exprNode, error) {
	cond, err := p.compileOr()
	if err != nil {
		return nil, err
	}
	if p.peekOp("?") == "" {
		return cond, nil
	}
	p.pos++
	thenN, err := p.compileTernary()
	if err != nil {
		return nil, err
	}
	if p.peekOp(":") == "" {
		return nil, errors.New("expected : in ternary")
	}
	p.pos++
	elseN, err := p.compileTernary()
	if err != nil {
		return nil, err
	}
	return &ternaryNode{cond: cond, then: thenN, els: elseN}, nil
}

func (p *exprParser) compileOr() (exprNode, error) {
	left, err := p.compileAnd()
	if err != nil {
		return nil, err
	}
	for p.peekOp("||") != "" {
		p.pos += 2
		right, err := p.compileAnd()
		if err != nil {
			return nil, err
		}
		left = &andOrNode{or: true, l: left, r: right}
	}
	return left, nil
}

func (p *exprParser) compileAnd() (exprNode, error) {
	left, err := p.compileEquality()
	if err != nil {
		return nil, err
	}
	for p.peekOp("&&") != "" {
		p.pos += 2
		right, err := p.compileEquality()
		if err != nil {
			return nil, err
		}
		left = &andOrNode{l: left, r: right}
	}
	return left, nil
}

func (p *exprParser) compileEquality() (exprNode, error) {
	left, err := p.compileRelational()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peekOp("==", "!=", "eq ", "ne ")
		if op == "" {
			// eq/ne at end of string (no trailing space)
			if p.peekOp("eq", "ne") != "" && p.pos+2 >= len(p.src) {
				op = p.src[p.pos : p.pos+2]
			} else {
				return left, nil
			}
		}
		op = strings.TrimSpace(op)
		p.pos += len(op)
		right, err := p.compileRelational()
		if err != nil {
			return nil, err
		}
		left = &eqNode{op: op, l: left, r: right}
	}
}

func (p *exprParser) compileRelational() (exprNode, error) {
	left, err := p.compileAdditive()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peekOp("<=", ">=", "<", ">")
		if op == "" {
			return left, nil
		}
		p.pos += len(op)
		right, err := p.compileAdditive()
		if err != nil {
			return nil, err
		}
		left = &relNode{op: op, l: left, r: right}
	}
}

func (p *exprParser) compileAdditive() (exprNode, error) {
	left, err := p.compileMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peekOp("+", "-")
		if op == "" {
			return left, nil
		}
		p.pos++
		right, err := p.compileMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &addNode{op: op[0], l: left, r: right}
	}
}

func (p *exprParser) compileMultiplicative() (exprNode, error) {
	left, err := p.compileUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peekOp("*", "/", "%")
		if op == "" {
			return left, nil
		}
		p.pos++
		right, err := p.compileUnary()
		if err != nil {
			return nil, err
		}
		left = &mulNode{op: op[0], l: left, r: right}
	}
}

func (p *exprParser) compileUnary() (exprNode, error) {
	p.skipWS()
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '!':
			p.pos++
			x, err := p.compileUnary()
			if err != nil {
				return nil, err
			}
			return &notNode{x: x}, nil
		case '-':
			p.pos++
			x, err := p.compileUnary()
			if err != nil {
				return nil, err
			}
			return &negNode{x: x}, nil
		case '+':
			p.pos++
			return p.compileUnary()
		}
	}
	return p.compilePrimary()
}

func (p *exprParser) compilePrimary() (exprNode, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, errors.New("unexpected end of expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		n, err := p.compileTernary()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, errors.New("missing )")
		}
		p.pos++
		return n, nil
	case c == '$':
		name, err := p.scanVarName()
		if err != nil {
			return nil, err
		}
		return &varNode{name: name}, nil
	case c == '[':
		script, err := p.scanBracketed()
		if err != nil {
			return nil, err
		}
		body, err := Parse(script)
		if err != nil {
			return nil, err
		}
		return &cmdNode{body: body}, nil
	case c == '"':
		s, err := p.scanQuoted()
		if err != nil {
			return nil, err
		}
		return &constNode{v: strVal(s)}, nil
	case c == '{':
		s, err := p.scanBraced()
		if err != nil {
			return nil, err
		}
		return &constNode{v: exprVal{s: s}}, nil // braced operands stay strings
	case c >= '0' && c <= '9' || c == '.':
		v, err := p.scanNumber()
		if err != nil {
			return nil, err
		}
		return &constNode{v: v}, nil
	case isAlpha(c):
		return p.compileIdentOrFunc()
	default:
		return nil, fmt.Errorf("unexpected character %q", c)
	}
}

func (p *exprParser) compileIdentOrFunc() (exprNode, error) {
	start := p.pos
	for p.pos < len(p.src) && isVarChar(p.src[p.pos]) {
		p.pos++
	}
	ident := p.src[start:p.pos]
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		return p.compileFuncCall(ident)
	}
	switch ident {
	case "true", "yes", "on":
		return &constNode{v: boolVal(true)}, nil
	case "false", "no", "off":
		return &constNode{v: boolVal(false)}, nil
	}
	return &constNode{v: exprVal{s: ident}}, nil
}

func (p *exprParser) compileFuncCall(name string) (exprNode, error) {
	p.pos++ // '('
	var args []exprNode
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
	} else {
		for {
			n, err := p.compileTernary()
			if err != nil {
				return nil, err
			}
			args = append(args, n)
			p.skipWS()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("missing ) in call to %s", name)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("bad argument list for %s", name)
		}
	}
	return &callNode{name: name, args: args}, nil
}
