package tacl

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mustEval(t *testing.T, src string) string {
	t.Helper()
	in := New()
	got, err := in.Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q) error: %v", src, err)
	}
	return got
}

func evalCases(t *testing.T, cases map[string]string) {
	t.Helper()
	for src, want := range cases {
		in := New()
		got, err := in.Eval(src)
		if err != nil {
			t.Errorf("Eval(%q) error: %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("Eval(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestSetAndGet(t *testing.T) {
	evalCases(t, map[string]string{
		`set x 5`:                          "5",
		`set x 5; set x`:                   "5",
		`set x hello; set y $x; set y`:     "hello",
		`set x 1; set y 2; expr {$x + $y}`: "3",
	})
}

func TestUnknownVariable(t *testing.T) {
	in := New()
	_, err := in.Eval(`set y $missing`)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownCommand(t *testing.T) {
	in := New()
	_, err := in.Eval(`frobnicate 1 2`)
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnset(t *testing.T) {
	in := New()
	if _, err := in.Eval(`set x 1; unset x`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Eval(`set y $x`); err == nil {
		t.Fatal("x survived unset")
	}
	if _, err := in.Eval(`unset nope`); err == nil {
		t.Fatal("unset of missing variable succeeded")
	}
}

func TestIncr(t *testing.T) {
	evalCases(t, map[string]string{
		`set x 5; incr x`:            "6",
		`set x 5; incr x 10`:         "15",
		`set x 5; incr x -7`:         "-2",
		`incr fresh`:                 "1", // auto-initializes to 0
		`incr fresh 3; incr fresh 3`: "6",
	})
	in := New()
	if _, err := in.Eval(`set x abc; incr x`); err == nil {
		t.Fatal("incr of non-integer succeeded")
	}
}

func TestAppendCommand(t *testing.T) {
	evalCases(t, map[string]string{
		`append s a b c`:             "abc",
		`set s x; append s y; set s`: "xy",
	})
}

func TestQuotedAndBracedWords(t *testing.T) {
	evalCases(t, map[string]string{
		`set x "hello world"`:         "hello world",
		`set x {no $subst here}`:      "no $subst here",
		`set v 5; set x "v is $v"`:    "v is 5",
		`set v 5; set x "v is ${v}x"`: "v is 5x",
		`set x "tab\there"`:           "tab\there",
		`set x {nested {braces} ok}`:  "nested {braces} ok",
	})
}

func TestCommandSubstitution(t *testing.T) {
	evalCases(t, map[string]string{
		`set x [expr {2 + 3}]`:                         "5",
		`set x "result: [expr {1 + 1}]"`:               "result: 2",
		`set a 2; set x [expr {$a * [expr {$a + 1}]}]`: "6",
	})
}

func TestIfElse(t *testing.T) {
	evalCases(t, map[string]string{
		`if {1} {set r yes}`:                                                      "yes",
		`if {0} {set r yes} else {set r no}`:                                      "no",
		`set x 5; if {$x > 3} {set r big} else {set r small}`:                     "big",
		`set x 2; if {$x > 3} {set r a} elseif {$x > 1} {set r b} else {set r c}`: "b",
		`set x 0; if {$x > 3} {set r a} elseif {$x > 1} {set r b} else {set r c}`: "c",
		`if {0} {set r yes}`:                                                      "",
	})
}

func TestWhileLoop(t *testing.T) {
	got := mustEval(t, `
		set sum 0
		set i 1
		while {$i <= 10} {
			set sum [expr {$sum + $i}]
			incr i
		}
		set sum
	`)
	if got != "55" {
		t.Fatalf("sum = %q, want 55", got)
	}
}

func TestForLoop(t *testing.T) {
	got := mustEval(t, `
		set fact 1
		for {set i 1} {$i <= 5} {incr i} {
			set fact [expr {$fact * $i}]
		}
		set fact
	`)
	if got != "120" {
		t.Fatalf("fact = %q, want 120", got)
	}
}

func TestForeach(t *testing.T) {
	got := mustEval(t, `
		set total 0
		foreach x {3 1 4 1 5} {
			set total [expr {$total + $x}]
		}
		set total
	`)
	if got != "14" {
		t.Fatalf("total = %q", got)
	}
}

func TestBreakContinue(t *testing.T) {
	got := mustEval(t, `
		set r {}
		foreach x {1 2 3 4 5} {
			if {$x == 2} { continue }
			if {$x == 4} { break }
			lappend r $x
		}
		set r
	`)
	if got != "1 3" {
		t.Fatalf("r = %q, want '1 3'", got)
	}
}

func TestBreakOutsideLoop(t *testing.T) {
	in := New()
	if _, err := in.Eval(`break`); err == nil {
		t.Fatal("bare break succeeded")
	}
}

func TestProcBasics(t *testing.T) {
	got := mustEval(t, `
		proc add {a b} { return [expr {$a + $b}] }
		add 2 3
	`)
	if got != "5" {
		t.Fatalf("add = %q", got)
	}
}

func TestProcDefaultArgs(t *testing.T) {
	got := mustEval(t, `
		proc greet {name {greeting hello}} { return "$greeting $name" }
		set a [greet world]
		set b [greet world hi]
		list $a $b
	`)
	if got != `{hello world} {hi world}` {
		t.Fatalf("got %q", got)
	}
}

func TestProcVariadic(t *testing.T) {
	got := mustEval(t, `
		proc count {first args} { return [llength $args] }
		count a b c d
	`)
	if got != "3" {
		t.Fatalf("count = %q", got)
	}
}

func TestProcArityErrors(t *testing.T) {
	in := New()
	if _, err := in.Eval(`proc f {a b} {}; f 1`); err == nil || !strings.Contains(err.Error(), "missing argument") {
		t.Fatalf("missing arg err = %v", err)
	}
	if _, err := in.Eval(`proc f {a} {}; f 1 2`); err == nil || !strings.Contains(err.Error(), "takes") {
		t.Fatalf("extra arg err = %v", err)
	}
}

func TestProcLocalScope(t *testing.T) {
	got := mustEval(t, `
		set x global-value
		proc f {} { set x local-value; return $x }
		f
		set x
	`)
	if got != "global-value" {
		t.Fatalf("global x = %q (proc leaked locals)", got)
	}
}

func TestGlobalCommand(t *testing.T) {
	got := mustEval(t, `
		set counter 0
		proc bump {} { global counter; incr counter }
		bump; bump; bump
		set counter
	`)
	if got != "3" {
		t.Fatalf("counter = %q", got)
	}
}

func TestProcImplicitReturn(t *testing.T) {
	got := mustEval(t, `
		proc last {} { set a 1; set b 2 }
		last
	`)
	if got != "2" {
		t.Fatalf("implicit return = %q", got)
	}
}

func TestProcEarlyReturn(t *testing.T) {
	got := mustEval(t, `
		proc f {x} {
			if {$x > 0} { return pos }
			return nonpos
		}
		list [f 5] [f -5]
	`)
	if got != "pos nonpos" {
		t.Fatalf("got %q", got)
	}
}

func TestRecursion(t *testing.T) {
	got := mustEval(t, `
		proc fib {n} {
			if {$n < 2} { return $n }
			return [expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}]
		}
		fib 10
	`)
	if got != "55" {
		t.Fatalf("fib(10) = %q", got)
	}
}

func TestRunawayRecursionBounded(t *testing.T) {
	in := New()
	_, err := in.Eval(`proc f {} { f }; f`)
	if !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
}

func TestStepBudget(t *testing.T) {
	in := New()
	in.MaxSteps = 100
	_, err := in.Eval(`while {1} { set x 1 }`)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestStepBudgetNotCatchable(t *testing.T) {
	in := New()
	in.MaxSteps = 50
	_, err := in.Eval(`catch { while {1} { set x 1 } } msg; set survived yes`)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("catch swallowed the budget error: %v", err)
	}
}

func TestStepHook(t *testing.T) {
	in := New()
	calls := 0
	in.StepHook = func() error {
		calls++
		if calls > 10 {
			return errors.New("cycles not paid for")
		}
		return nil
	}
	_, err := in.Eval(`while {1} {set x 1}`)
	if err == nil || !strings.Contains(err.Error(), "not paid") {
		t.Fatalf("err = %v", err)
	}
}

func TestYieldEvery(t *testing.T) {
	in := New()
	yields := 0
	in.YieldEvery = 10
	in.Yield = func() { yields++ }
	if _, err := in.Eval(`set i 0; while {$i < 40} {set i [expr {$i + 1}]}`); err != nil {
		t.Fatal(err)
	}
	// The exact count depends on how commands decompose into steps; what
	// matters: the hook fires periodically, about steps/YieldEvery times.
	if yields < 5 || yields > in.Steps/10+1 {
		t.Fatalf("yields = %d over %d steps with YieldEvery=10", yields, in.Steps)
	}

	// Unset (the default), it never fires.
	in2 := New()
	fired := false
	in2.Yield = func() { fired = true }
	if _, err := in2.Eval(`set x 1; set y 2`); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("Yield fired with YieldEvery unset")
	}
}

func TestParkSignal(t *testing.T) {
	err := ParkSignal("resident-1")
	if name, ok := IsPark(err); !ok || name != "resident-1" {
		t.Fatalf("IsPark = %q, %v", name, ok)
	}
	if _, ok := IsPark(errors.New("plain")); ok {
		t.Fatal("plain error detected as park signal")
	}
	if _, ok := IsJump(err); ok {
		t.Fatal("park signal detected as jump")
	}
}

func TestCatch(t *testing.T) {
	evalCases(t, map[string]string{
		`catch {error boom} msg; set msg`: "boom",
		`catch {error boom}`:              "1",
		`catch {set ok fine}`:             "0",
		`catch {set ok fine} v; set v`:    "fine",
		`catch {unknowncmd} m; string first "unknown command" $m; expr {[string first {unknown command} $m] >= 0}`: "1",
	})
}

func TestErrorCommand(t *testing.T) {
	in := New()
	_, err := in.Eval(`error "something failed"`)
	if err == nil || !strings.Contains(err.Error(), "something failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalCommand(t *testing.T) {
	evalCases(t, map[string]string{
		`eval {set x 5}`:               "5",
		`set cmd {set y 7}; eval $cmd`: "7",
		`eval set z 9; set z`:          "9",
	})
}

func TestPuts(t *testing.T) {
	in := New()
	var buf bytes.Buffer
	in.Out = &buf
	if _, err := in.Eval(`puts hello; puts -nonewline world`); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello\nworld" {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestListCommands(t *testing.T) {
	evalCases(t, map[string]string{
		`list a b c`:                          "a b c",
		`list "a b" c`:                        "{a b} c",
		`llength {a b c}`:                     "3",
		`llength {}`:                          "0",
		`lindex {a b c} 1`:                    "b",
		`lindex {a b c} end`:                  "c",
		`lindex {a b c} end-1`:                "b",
		`lindex {a b c} 99`:                   "",
		`lappend v a; lappend v "b c"; set v`: "a {b c}",
		`lrange {a b c d e} 1 3`:              "b c d",
		`lrange {a b c d e} 3 end`:            "d e",
		`lrange {a b c} 2 1`:                  "",
		`lsearch {a b c} b`:                   "1",
		`lsearch {a b c} z`:                   "-1",
		`lreverse {1 2 3}`:                    "3 2 1",
		`lsort {banana apple cherry}`:         "apple banana cherry",
		`lsort -integer {10 2 33 4}`:          "2 4 10 33",
		`join {a b c} -`:                      "a-b-c",
		`join {a b c}`:                        "a b c",
		`split a,b,c ,`:                       "a b c",
		`split "a b  c"`:                      "a b c",
		`concat {a b} {c d}`:                  "a b c d",
	})
}

func TestNestedListRoundTrip(t *testing.T) {
	got := mustEval(t, `
		set inner [list "x y" z]
		set outer [list $inner w]
		lindex [lindex $outer 0] 0
	`)
	if got != "x y" {
		t.Fatalf("nested list = %q", got)
	}
}

func TestStringCommands(t *testing.T) {
	evalCases(t, map[string]string{
		`string length hello`:        "5",
		`string tolower HeLLo`:       "hello",
		`string toupper hello`:       "HELLO",
		`string trim "  pad  "`:      "pad",
		`string index hello 1`:       "e",
		`string index hello end`:     "o",
		`string index hello 99`:      "",
		`string range hello 1 3`:     "ell",
		`string range hello 0 end`:   "hello",
		`string repeat ab 3`:         "ababab",
		`string equal a a`:           "1",
		`string equal a b`:           "0",
		`string compare a b`:         "-1",
		`string first ll hello`:      "2",
		`string first zz hello`:      "-1",
		`string match "h*o" hello`:   "1",
		`string match "h?llo" hello`: "1",
		`string match "x*" hello`:    "0",
	})
}

func TestFormatCommand(t *testing.T) {
	evalCases(t, map[string]string{
		`format "%d items" 42`:  "42 items",
		`format "%05d" 42`:      "00042",
		`format "%.2f" 3.14159`: "3.14",
		`format "%s=%d" key 7`:  "key=7",
		`format "100%%"`:        "100%",
		`format "%x" 255`:       "ff",
	})
	in := New()
	if _, err := in.Eval(`format "%d" notanumber`); err == nil {
		t.Fatal("integer format verb accepted non-number")
	}
	if _, err := in.Eval(`format "%d"`); err == nil {
		t.Fatal("format with missing args succeeded")
	}
}

func TestInfoCommands(t *testing.T) {
	evalCases(t, map[string]string{
		`info exists x`:            "0",
		`set x 1; info exists x`:   "1",
		`proc p {} {}; info procs`: "p",
	})
	in := New()
	out, err := in.Eval(`info commands`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "set") || !strings.Contains(out, "expr") {
		t.Fatalf("info commands missing builtins: %q", out)
	}
}

func TestComments(t *testing.T) {
	got := mustEval(t, `
		# this is a comment
		set x 1
		# another; set x 99
		set x
	`)
	if got != "1" {
		t.Fatalf("x = %q", got)
	}
}

func TestSemicolonSeparation(t *testing.T) {
	got := mustEval(t, `set a 1; set b 2; expr {$a + $b}`)
	if got != "3" {
		t.Fatalf("got %q", got)
	}
}

func TestLineContinuation(t *testing.T) {
	got := mustEval(t, "set x [expr {1 + \\\n 2}]")
	if got != "3" {
		t.Fatalf("got %q", got)
	}
}

func TestRegisterHostCommand(t *testing.T) {
	in := New()
	in.Register("double", func(in *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("double takes one arg")
		}
		return args[0] + args[0], nil
	})
	got, err := in.Eval(`double ab`)
	if err != nil || got != "abab" {
		t.Fatalf("double = %q, %v", got, err)
	}
}

func TestJumpSignalStopsScript(t *testing.T) {
	in := New()
	in.Register("jump", func(in *Interp, args []string) (string, error) {
		return "", JumpSignal(args[0])
	})
	executed := false
	in.Register("after_jump", func(in *Interp, args []string) (string, error) {
		executed = true
		return "", nil
	})
	_, err := in.Eval(`jump site-b; after_jump`)
	dest, ok := IsJump(err)
	if !ok || dest != "site-b" {
		t.Fatalf("err = %v, want jump to site-b", err)
	}
	if executed {
		t.Fatal("code after jump ran at origin")
	}
}

func TestJumpNotCatchable(t *testing.T) {
	in := New()
	in.Register("jump", func(in *Interp, args []string) (string, error) {
		return "", JumpSignal(args[0])
	})
	_, err := in.Eval(`catch {jump dest} m`)
	if _, ok := IsJump(err); !ok {
		t.Fatalf("catch swallowed jump: %v", err)
	}
}

func TestStepsCounted(t *testing.T) {
	in := New()
	if _, err := in.Eval(`set a 1; set b 2; set c 3`); err != nil {
		t.Fatal(err)
	}
	if in.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", in.Steps)
	}
}

func TestGlobalsAPI(t *testing.T) {
	in := New()
	in.SetGlobal("host", "tromso")
	got, err := in.Eval(`set host`)
	if err != nil || got != "tromso" {
		t.Fatalf("host = %q, %v", got, err)
	}
	if _, err := in.Eval(`set out done`); err != nil {
		t.Fatal(err)
	}
	if v, ok := in.Global("out"); !ok || v != "done" {
		t.Fatalf("Global(out) = %q, %v", v, ok)
	}
}

func TestDeepWhileNotDepthLimited(t *testing.T) {
	// Loops must not consume recursion depth.
	got := mustEval(t, `
		set i 0
		while {$i < 1000} { incr i }
		set i
	`)
	if got != "1000" {
		t.Fatalf("i = %q", got)
	}
}
